// Determinism tests for the parallel warp execution engine.
//
// The contract under test (DESIGN.md §1, executor.hpp): for any host thread
// count, a launch's results, metrics and fault behavior are bit-identical to
// the one-thread serial loop — warps only ever write thread-distinct data,
// per-warp metrics are reduced in ascending warp order, injected-fault event
// logs are merged in ascending warp order, and an aborting launch rethrows
// the fault of the lowest faulting warp id (first-fault-wins).  Every test
// here runs the same work at thread counts {1, 2, 7, 16} and asserts
// equality against the serial run.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "baselines/qms.hpp"
#include "knn/batch.hpp"
#include "knn/dataset.hpp"
#include "knn/ivf.hpp"
#include "knn/knn.hpp"
#include "knn/mutable.hpp"
#include "simt/device.hpp"
#include "simt/executor.hpp"
#include "simt/fault_injection.hpp"
#include "simt/lane_vec.hpp"
#include "simt/memory.hpp"
#include "simt/profiler.hpp"
#include "simt/sanitizer.hpp"
#include "simt/types.hpp"
#include "simt/warp.hpp"
#include "util/check.hpp"

namespace gpuksel {
namespace {

using simt::Device;
using simt::F32;
using simt::InjectKind;
using simt::InjectorConfig;
using simt::FaultInjector;
using simt::kFullMask;
using simt::kWarpSize;
using simt::LaunchPolicy;
using simt::U32;
using simt::WarpContext;
using simt::WarpExecutor;

constexpr unsigned kThreadCounts[] = {1, 2, 7, 16};

// --- executor unit behavior -------------------------------------------------

TEST(WarpExecutor, RunsEveryWarpExactlyOnce) {
  for (const unsigned threads : kThreadCounts) {
    WarpExecutor exec(threads);
    EXPECT_EQ(exec.thread_count(), threads);
    std::vector<std::atomic<int>> hits(97);
    exec.run(hits.size(), [&](std::uint32_t w) {
      hits[w].fetch_add(1, std::memory_order_relaxed);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
    EXPECT_FALSE(exec.last_abort().has_value());
    // The pool is persistent: a second run on the same executor.
    exec.run(hits.size(), [&](std::uint32_t w) {
      hits[w].fetch_add(1, std::memory_order_relaxed);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 2);
  }
}

TEST(WarpExecutor, ZeroWarpsIsANoOp) {
  WarpExecutor exec(4);
  exec.run(0, [](std::uint32_t) { FAIL() << "no warp should run"; });
  EXPECT_FALSE(exec.last_abort().has_value());
}

TEST(WarpExecutor, FirstFaultWinsLowestWarpId) {
  // Warp 12 throws immediately; warp 3 throws late (after a delay long
  // enough that warp 12's fault has almost certainly landed first in wall
  // time).  The serial loop would hit warp 3 first, so warp 3 must win for
  // every thread count.
  for (const unsigned threads : {2u, 4u, 16u}) {
    WarpExecutor exec(threads);
    try {
      exec.run(16, [&](std::uint32_t w) {
        if (w == 12) throw std::runtime_error("12");
        if (w == 3) {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
          throw std::runtime_error("3");
        }
      });
      FAIL() << "expected the launch to abort";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "3") << "threads=" << threads;
    }
    ASSERT_TRUE(exec.last_abort().has_value());
    EXPECT_EQ(exec.last_abort()->warp_id, 3u);
  }
}

TEST(WarpExecutor, ReusableAfterAbort) {
  WarpExecutor exec(4);
  EXPECT_THROW(exec.run(8,
                        [](std::uint32_t w) {
                          if (w == 5) throw std::runtime_error("boom");
                        }),
               std::runtime_error);
  ASSERT_TRUE(exec.last_abort().has_value());
  EXPECT_EQ(exec.last_abort()->warp_id, 5u);

  std::vector<std::atomic<int>> hits(8);
  exec.run(hits.size(), [&](std::uint32_t w) {
    hits[w].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_FALSE(exec.last_abort().has_value());
}

TEST(Device, WorkerThreadsKnobRoundTrips) {
  Device dev;
  EXPECT_GE(dev.worker_threads(), 1u);
  dev.set_worker_threads(5);
  EXPECT_EQ(dev.worker_threads(), 5u);
  dev.set_worker_threads(0);  // back to the environment default
  EXPECT_GE(dev.worker_threads(), 1u);
}

// --- launch determinism -----------------------------------------------------

/// A divergent multi-phase kernel with per-warp-disjoint output: each warp
/// streams its 32-element row, odd warps do extra masked work (so metrics are
/// sensitive to which warp contributed what), and results land in row
/// `warp_id` of the output buffer.
struct DivergentKernelRun {
  simt::KernelMetrics metrics;
  std::vector<float> output;
};

DivergentKernelRun run_divergent_kernel(unsigned threads,
                                        FaultInjector* injector = nullptr,
                                        bool ecc = true) {
  constexpr std::uint32_t kWarps = 48;
  std::vector<float> input(std::size_t{kWarps} * kWarpSize);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<float>((i * 2654435761u >> 8) % 1000) * 0.001f;
  }
  Device dev;
  dev.set_worker_threads(threads);
  dev.sanitizer().ecc = ecc;
  dev.sanitizer().nan_policy = NanPolicy::kSortLast;
  if (injector != nullptr) dev.set_fault_injector(injector);
  auto in = dev.upload(input);
  auto out = dev.alloc<float>(input.size(), 0.0f);
  const auto in_span = in.cspan();
  auto out_span = out.span();
  DivergentKernelRun run;
  run.metrics =
      dev.launch("divergent", kWarps, [&](WarpContext& ctx, std::uint32_t w) {
        const U32 lane = WarpContext::lane_id();
        U32 idx = ctx.add(kFullMask, lane, w * kWarpSize);
        F32 v = ctx.load(kFullMask, in_span, idx);
        // Odd warps square the lower half-warp (divergent extra work).
        if (w % 2 == 1) {
          const simt::LaneMask lower =
              ctx.pred(kFullMask, [&](int l) { return l < kWarpSize / 2; });
          F32 sq = v;
          ctx.alu(lower, sq, [&](int l) { return v[l] * v[l]; });
          v = ctx.select(kFullMask, lower, sq, v);
        }
        ctx.store(kFullMask, out_span, idx, v);
      });
  run.output = dev.download(out);
  return run;
}

TEST(LaunchDeterminism, MetricsAndResultsBitIdenticalAcrossThreadCounts) {
  const DivergentKernelRun serial = run_divergent_kernel(1);
  for (const unsigned threads : kThreadCounts) {
    const DivergentKernelRun parallel = run_divergent_kernel(threads);
    EXPECT_TRUE(parallel.metrics == serial.metrics) << "threads=" << threads;
    EXPECT_EQ(parallel.output, serial.output) << "threads=" << threads;
  }
}

TEST(LaunchDeterminism, LaneBackendIdenticalAcrossThreadCounts) {
  // The thread-count matrix crossed with the lane-engine backend: forcing
  // the scalar reference engine (lanevec::set_enabled(false)) must not
  // change a single bit of metrics or results at any thread count.
  const bool prev = simt::lanevec::enabled();
  const DivergentKernelRun serial = run_divergent_kernel(1);
  for (const unsigned threads : kThreadCounts) {
    for (const bool simd : {true, false}) {
      simt::lanevec::set_enabled(simd);
      const DivergentKernelRun run = run_divergent_kernel(threads);
      EXPECT_TRUE(run.metrics == serial.metrics)
          << "threads=" << threads << " simd=" << simd;
      EXPECT_EQ(run.output, serial.output)
          << "threads=" << threads << " simd=" << simd;
    }
  }
  simt::lanevec::set_enabled(prev);
}

TEST(LaunchDeterminism, LaneBackendIdenticalUnderInjectionAndNaN) {
  // Lane backend x thread count x armed sanitizer (NaN remap, ECC off) x
  // seeded uncapped NaN injection: the injector's event log, the metrics and
  // the remapped outputs must match the serial SIMD run bit for bit no
  // matter which engine executed the lanes.
  auto run = [&](unsigned threads, bool simd) {
    const bool prev = simt::lanevec::enabled();
    simt::lanevec::set_enabled(simd);
    InjectorConfig cfg;
    cfg.kind = InjectKind::kNanInject;
    cfg.period = 16;
    cfg.max_faults = 0;
    cfg.seed = 99;
    FaultInjector injector(cfg);
    const DivergentKernelRun r =
        run_divergent_kernel(threads, &injector, /*ecc=*/false);
    simt::lanevec::set_enabled(prev);
    return std::tuple(injector.events(), r.metrics, r.output);
  };
  const auto [serial_events, serial_metrics, serial_output] = run(1, true);
  ASSERT_FALSE(serial_events.empty()) << "injection never fired — vacuous";
  for (const unsigned threads : kThreadCounts) {
    for (const bool simd : {true, false}) {
      const auto [events, metrics, output] = run(threads, simd);
      EXPECT_EQ(events, serial_events)
          << "threads=" << threads << " simd=" << simd;
      EXPECT_TRUE(metrics == serial_metrics)
          << "threads=" << threads << " simd=" << simd;
      EXPECT_EQ(output, serial_output)
          << "threads=" << threads << " simd=" << simd;
    }
  }
}

TEST(LaunchDeterminism, LaneBackendKnnResultsIdentical) {
  // Full search pipeline crossed with the backend switch: neighbors and
  // cumulative device metrics are part of the bit-identity contract, not
  // just raw register state.
  const knn::Dataset refs = knn::make_uniform_dataset(300, 12, 31);
  const knn::Dataset queries = knn::make_uniform_dataset(40, 12, 32);
  const knn::BruteForceKnn searcher(refs);
  auto run = [&](unsigned threads, bool simd) {
    const bool prev = simt::lanevec::enabled();
    simt::lanevec::set_enabled(simd);
    Device dev;
    dev.set_worker_threads(threads);
    const knn::KnnResult result =
        searcher.search_gpu(dev, queries, 9, knn::GpuSearchOptions{});
    simt::lanevec::set_enabled(prev);
    return std::pair(result.neighbors, dev.cumulative());
  };
  const auto [serial_neighbors, serial_metrics] = run(1, true);
  for (const unsigned threads : kThreadCounts) {
    for (const bool simd : {true, false}) {
      const auto [neighbors, metrics] = run(threads, simd);
      EXPECT_EQ(neighbors, serial_neighbors)
          << "threads=" << threads << " simd=" << simd;
      EXPECT_TRUE(metrics == serial_metrics)
          << "threads=" << threads << " simd=" << simd;
    }
  }
}

TEST(LaunchDeterminism, KnnPipelineIdenticalAcrossThreadCounts) {
  const knn::Dataset refs = knn::make_uniform_dataset(300, 12, 31);
  const knn::Dataset queries = knn::make_uniform_dataset(40, 12, 32);
  const knn::BruteForceKnn searcher(refs);

  auto run = [&](unsigned threads) {
    Device dev;
    dev.set_worker_threads(threads);
    const knn::KnnResult result =
        searcher.search_gpu(dev, queries, 9, knn::GpuSearchOptions{});
    return std::pair(result.neighbors, dev.cumulative());
  };
  const auto [serial_neighbors, serial_metrics] = run(1);
  for (const unsigned threads : kThreadCounts) {
    const auto [neighbors, metrics] = run(threads);
    EXPECT_EQ(neighbors, serial_neighbors) << "threads=" << threads;
    EXPECT_TRUE(metrics == serial_metrics) << "threads=" << threads;
  }
}

TEST(LaunchDeterminism, BatchedKnnIdenticalAcrossThreadCounts) {
  // The batched pipeline launches two kernels per batch (tile scoring and the
  // cross-tile reduce); both go through the same per-warp-slot reduction, so
  // neighbors and cumulative metrics must be bit-identical for any thread
  // count.  Three batches of mixed sizes exercise partial warps too.
  const knn::Dataset refs = knn::make_uniform_dataset(220, 9, 51);
  auto run = [&](unsigned threads) {
    Device dev;
    dev.set_worker_threads(threads);
    knn::BatchedKnnOptions opts;
    opts.batch.tile_refs = 64;
    knn::BatchedKnn engine(refs, opts);
    engine.enqueue(knn::make_uniform_dataset(33, 9, 52), 7);
    engine.enqueue(knn::make_uniform_dataset(1, 9, 53), 7);
    engine.enqueue(knn::make_uniform_dataset(32, 9, 54), 7);
    std::vector<std::vector<std::vector<Neighbor>>> neighbors;
    for (const auto& result : engine.serve(dev)) {
      neighbors.push_back(result.neighbors);
    }
    return std::pair(neighbors, dev.cumulative());
  };
  const auto [serial_neighbors, serial_metrics] = run(1);
  for (const unsigned threads : kThreadCounts) {
    const auto [neighbors, metrics] = run(threads);
    EXPECT_EQ(neighbors, serial_neighbors) << "threads=" << threads;
    EXPECT_TRUE(metrics == serial_metrics) << "threads=" << threads;
  }
}

TEST(LaunchDeterminism, MutableIndexIdenticalAcrossThreadCounts) {
  // A fixed upsert/remove/search/compact schedule over the mutable index:
  // every search's neighbors, the serving device's cumulative metrics, and
  // the compaction device's cumulative metrics (IVF training + rebuilds run
  // there) must be bit-identical for any executor thread count.
  const knn::Dataset initial = knn::make_uniform_dataset(90, 6, 81);
  const knn::Dataset extra = knn::make_uniform_dataset(30, 6, 82);
  const knn::Dataset queries = knn::make_uniform_dataset(12, 6, 83);
  auto run = [&](unsigned threads) {
    Device dev;
    dev.set_worker_threads(threads);
    knn::MutableKnnOptions opts;
    opts.base = knn::MutableBase::kIvf;
    opts.ivf.nlist = 6;
    opts.ivf.nprobe = 6;  // exact regime: the differential contract holds
    knn::MutableKnn index(initial, opts);
    index.compaction_device().set_worker_threads(threads);
    std::vector<std::vector<std::vector<Neighbor>>> answers;
    for (std::uint32_t i = 0; i < extra.count; ++i) {
      index.upsert(1000 + i, {extra.row(i), extra.dim});
      if (i % 3 == 0) (void)index.remove(i);
      if (i % 11 == 10) {
        EXPECT_TRUE(index.compact());
      }
      answers.push_back(index.search(dev, queries, 8).neighbors);
    }
    return std::tuple(std::move(answers), dev.cumulative(),
                      index.compaction_device().cumulative(),
                      index.generation());
  };
  const auto [serial_answers, serial_metrics, serial_compaction_metrics,
              serial_generation] = run(1);
  for (const unsigned threads : kThreadCounts) {
    const auto [answers, metrics, compaction_metrics, generation] =
        run(threads);
    EXPECT_EQ(answers, serial_answers) << "threads=" << threads;
    EXPECT_TRUE(metrics == serial_metrics) << "threads=" << threads;
    EXPECT_TRUE(compaction_metrics == serial_compaction_metrics)
        << "threads=" << threads;
    EXPECT_EQ(generation, serial_generation) << "threads=" << threads;
  }
}

TEST(LaunchDeterminism, IvfTrainAndSearchIdenticalAcrossThreadsAndBackends) {
  // IVF training is host k-means++ plus one "ivf_train" assignment launch;
  // a pruned search launches coarse_quantize + list_scan + ivf_reduce.  The
  // trained geometry (centroids, list offsets, row permutation), the pruned
  // neighbors, and the cumulative device metrics must be bit-identical for
  // every executor thread count crossed with both lane-engine backends.
  const knn::Dataset refs =
      knn::make_gaussian_clusters(500, 7, 8, 0.1f, 91).points;
  const knn::Dataset queries = knn::make_uniform_dataset(96, 7, 92);
  auto run = [&](unsigned threads, bool simd) {
    const bool prev = simt::lanevec::enabled();
    simt::lanevec::set_enabled(simd);
    Device dev;
    dev.set_worker_threads(threads);
    knn::IvfOptions opts;
    opts.params.nlist = 8;
    opts.params.nprobe = 3;
    opts.batch.batch.tile_refs = 48;
    knn::IvfKnn engine(refs, opts);
    engine.train(dev);
    const knn::KnnResult result = engine.search_gpu(dev, queries, 9);
    simt::lanevec::set_enabled(prev);
    return std::tuple(engine.index().centroids, engine.index().list_begin,
                      engine.index().row_ids, result.neighbors,
                      dev.cumulative());
  };
  const auto [serial_centroids, serial_begin, serial_rows, serial_neighbors,
              serial_metrics] = run(1, true);
  for (const unsigned threads : kThreadCounts) {
    for (const bool simd : {true, false}) {
      const auto [centroids, begin, rows, neighbors, metrics] =
          run(threads, simd);
      EXPECT_EQ(centroids, serial_centroids)
          << "threads=" << threads << " simd=" << simd;
      EXPECT_EQ(begin, serial_begin)
          << "threads=" << threads << " simd=" << simd;
      EXPECT_EQ(rows, serial_rows)
          << "threads=" << threads << " simd=" << simd;
      EXPECT_EQ(neighbors, serial_neighbors)
          << "threads=" << threads << " simd=" << simd;
      EXPECT_TRUE(metrics == serial_metrics)
          << "threads=" << threads << " simd=" << simd;
    }
  }
}

TEST(LaunchDeterminism, IvfProfilesBitIdenticalAcrossThreadCounts) {
  // With host info excluded, a train + search profile — ivf_train,
  // coarse_quantize, list_scan, ivf_reduce region attribution and trace
  // spans — must serialize identically for any thread count.
  const knn::Dataset refs =
      knn::make_gaussian_clusters(240, 5, 6, 0.1f, 93).points;
  const knn::Dataset queries = knn::make_uniform_dataset(64, 5, 94);
  auto run = [&](unsigned threads) {
    Device dev;
    dev.set_worker_threads(threads);
    simt::Profiler prof;
    prof.set_include_host_info(false);
    dev.set_profiler(&prof);
    knn::IvfOptions opts;
    opts.params.nlist = 6;
    opts.params.nprobe = 2;
    opts.batch.batch.tile_refs = 32;
    knn::IvfKnn engine(refs, opts);
    engine.train(dev);
    (void)engine.search_gpu(dev, queries, 5);
    std::ostringstream report, trace, csv;
    prof.write_report(report);
    prof.write_trace(trace);
    prof.write_regions_csv(csv);
    return std::tuple(report.str(), trace.str(), csv.str());
  };
  const auto [serial_report, serial_trace, serial_csv] = run(1);
  for (const unsigned threads : {1u, 2u, 7u}) {
    const auto [report, trace, csv] = run(threads);
    EXPECT_EQ(report, serial_report) << "threads=" << threads;
    EXPECT_EQ(trace, serial_trace) << "threads=" << threads;
    EXPECT_EQ(csv, serial_csv) << "threads=" << threads;
  }
}

TEST(LaunchDeterminism, BatchedProfilesBitIdenticalAcrossThreadCounts) {
  // With host info excluded, the serialized profile of a batched serve —
  // per-launch totals, batch_tile_score / tile_copy / batch_reduce region
  // attribution, trace spans — must compare equal as strings across thread
  // counts.
  const knn::Dataset refs = knn::make_uniform_dataset(150, 6, 61);
  const knn::Dataset queries = knn::make_uniform_dataset(40, 6, 62);
  auto run = [&](unsigned threads) {
    Device dev;
    dev.set_worker_threads(threads);
    simt::Profiler prof;
    prof.set_include_host_info(false);
    dev.set_profiler(&prof);
    knn::BatchedKnnOptions opts;
    opts.batch.tile_refs = 48;
    knn::BatchedKnn engine(refs, opts);
    (void)engine.search_gpu(dev, queries, 11);
    std::ostringstream report, trace, csv;
    prof.write_report(report);
    prof.write_trace(trace);
    prof.write_regions_csv(csv);
    return std::tuple(report.str(), trace.str(), csv.str());
  };
  const auto [serial_report, serial_trace, serial_csv] = run(1);
  for (const unsigned threads : {1u, 2u, 7u}) {
    const auto [report, trace, csv] = run(threads);
    EXPECT_EQ(report, serial_report) << "threads=" << threads;
    EXPECT_EQ(trace, serial_trace) << "threads=" << threads;
    EXPECT_EQ(csv, serial_csv) << "threads=" << threads;
  }
}

TEST(LaunchDeterminism, QmsSerialPolicyCorrectUnderThreadedDevice) {
  // QMS shares per-query scratch across warps, so its launch pins
  // LaunchPolicy::kSerial; a many-threaded device must not change results.
  std::vector<float> matrix(16 * 512);
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    matrix[i] = static_cast<float>((i * 40503u + 7) % 4096);
  }
  auto run = [&](unsigned threads) {
    Device dev;
    dev.set_worker_threads(threads);
    return baselines::qms_select(dev, matrix, 16, 512, 24).neighbors;
  };
  const auto serial = run(1);
  for (const unsigned threads : kThreadCounts) {
    EXPECT_EQ(run(threads), serial) << "threads=" << threads;
  }
}

TEST(LaunchDeterminism, ProfilesBitIdenticalAcrossThreadCounts) {
  // The whole profile — per-warp metrics, region attribution, trace spans —
  // must be bit-identical for any executor thread count; only the two host
  // fields (wall_seconds, worker_threads) may differ, and
  // set_include_host_info(false) zeroes them so the serialized exports can
  // be compared as strings.
  auto run = [&](unsigned threads) {
    constexpr std::uint32_t kWarps = 24;
    Device dev;
    dev.set_worker_threads(threads);
    simt::Profiler prof;
    prof.set_include_host_info(false);
    dev.set_profiler(&prof);
    auto buf = dev.alloc<float>(std::size_t{kWarps} * kWarpSize, 0.0f);
    auto span = buf.span();
    dev.launch("profiled", kWarps, [&](WarpContext& ctx, std::uint32_t w) {
      const U32 lane = WarpContext::lane_id();
      U32 idx = ctx.add(kFullMask, lane, w * kWarpSize);
      // Divergent region trip counts: warp w flushes w % 3 + 1 times.
      for (std::uint32_t it = 0; it <= w % 3; ++it) {
        const auto flush = ctx.region("flush");
        ctx.store(kFullMask, span, idx, static_cast<float>(it));
        {
          const auto sort = ctx.region("sort");
          const F32 v = ctx.load(kFullMask, span, idx);
          ctx.issue(kFullMask, w % 5);
          (void)v;
        }
      }
      ctx.issue(kFullMask, 2);  // unattributed tail
    });
    std::ostringstream report, trace, csv;
    prof.write_report(report);
    prof.write_trace(trace);
    prof.write_regions_csv(csv);
    return std::tuple(report.str(), trace.str(), csv.str());
  };
  const auto [serial_report, serial_trace, serial_csv] = run(1);
  for (const unsigned threads : {1u, 2u, 7u}) {
    const auto [report, trace, csv] = run(threads);
    EXPECT_EQ(report, serial_report) << "threads=" << threads;
    EXPECT_EQ(trace, serial_trace) << "threads=" << threads;
    EXPECT_EQ(csv, serial_csv) << "threads=" << threads;
  }
}

// --- fault determinism ------------------------------------------------------

TEST(FaultDeterminism, UncappedInjectionEventLogIdenticalAcrossThreadCounts) {
  // max_faults = 0 keeps injection decisions order-free, so the launch runs
  // in parallel, stages events per warp, and merges them in warp order; with
  // NaN remapping (kSortLast) and ECC off nothing throws, so the full event
  // log is comparable.
  auto run = [&](unsigned threads) {
    InjectorConfig cfg;
    cfg.kind = InjectKind::kNanInject;
    cfg.period = 16;
    cfg.max_faults = 0;
    cfg.seed = 99;
    FaultInjector injector(cfg);
    const DivergentKernelRun r =
        run_divergent_kernel(threads, &injector, /*ecc=*/false);
    return std::tuple(injector.events(), r.metrics, r.output);
  };
  const auto [serial_events, serial_metrics, serial_output] = run(1);
  ASSERT_FALSE(serial_events.empty()) << "injection never fired — vacuous";
  for (const unsigned threads : kThreadCounts) {
    const auto [events, metrics, output] = run(threads);
    EXPECT_EQ(events, serial_events) << "threads=" << threads;
    EXPECT_TRUE(metrics == serial_metrics) << "threads=" << threads;
    EXPECT_EQ(output, serial_output) << "threads=" << threads;
  }
}

TEST(FaultDeterminism, AbortingLaunchRethrowsSerialFaultForAnyThreadCount) {
  // Uncapped bit flips with ECC on: several warps would fault; the rethrown
  // fault and the event log up to it must match the serial run exactly.
  auto run = [&](unsigned threads) {
    InjectorConfig cfg;
    cfg.kind = InjectKind::kBitFlip;
    cfg.period = 64;
    cfg.max_faults = 0;
    cfg.seed = 5;
    FaultInjector injector(cfg);
    FaultRecord record{};
    try {
      (void)run_divergent_kernel(threads, &injector, /*ecc=*/true);
      ADD_FAILURE() << "expected SimtFaultError, threads=" << threads;
    } catch (const SimtFaultError& e) {
      record = e.record();
    }
    return std::pair(record, injector.events());
  };
  const auto [serial_record, serial_events] = run(1);
  EXPECT_EQ(serial_record.kind, FaultKind::kEccMismatch);
  for (const unsigned threads : kThreadCounts) {
    const auto [record, events] = run(threads);
    EXPECT_EQ(record.kind, serial_record.kind) << "threads=" << threads;
    EXPECT_EQ(record.warp_id, serial_record.warp_id) << "threads=" << threads;
    EXPECT_EQ(record.instruction, serial_record.instruction)
        << "threads=" << threads;
    EXPECT_EQ(record.lane, serial_record.lane) << "threads=" << threads;
    EXPECT_EQ(events, serial_events) << "threads=" << threads;
  }
}

TEST(FaultDeterminism, BoundedBudgetFallsBackToSerialAndStaysIdentical) {
  // A live bounded budget is inherently order-dependent, so the launch must
  // run serially regardless of the device's thread count — and therefore
  // produce the identical event log.
  auto run = [&](unsigned threads) {
    InjectorConfig cfg;
    cfg.kind = InjectKind::kNanInject;
    cfg.period = 8;
    cfg.max_faults = 3;
    cfg.seed = 17;
    FaultInjector injector(cfg);
    const DivergentKernelRun r =
        run_divergent_kernel(threads, &injector, /*ecc=*/false);
    return std::tuple(injector.events(), r.metrics, r.output);
  };
  const auto [serial_events, serial_metrics, serial_output] = run(1);
  EXPECT_EQ(serial_events.size(), 3u);
  for (const unsigned threads : kThreadCounts) {
    const auto [events, metrics, output] = run(threads);
    EXPECT_EQ(events, serial_events) << "threads=" << threads;
    EXPECT_TRUE(metrics == serial_metrics) << "threads=" << threads;
    EXPECT_EQ(output, serial_output) << "threads=" << threads;
  }
}

TEST(FaultDeterminism, BatchedServeIdenticalUnderUncappedInjection) {
  // Seeded NaN injection into the batched pipeline: with an order-free budget
  // (max_faults = 0), ECC off, and the kSortLast policy remapping every
  // injected NaN, both batched kernels still run in parallel — and the event
  // log, neighbors, and metrics must all match the serial run bit for bit.
  const knn::Dataset refs = knn::make_uniform_dataset(180, 8, 71);
  const knn::Dataset queries = knn::make_uniform_dataset(33, 8, 72);
  auto run = [&](unsigned threads) {
    InjectorConfig cfg;
    cfg.kind = InjectKind::kNanInject;
    cfg.period = 32;
    cfg.max_faults = 0;
    cfg.seed = 23;
    FaultInjector injector(cfg);
    Device dev;
    dev.set_worker_threads(threads);
    dev.sanitizer().ecc = false;
    dev.set_fault_injector(&injector);
    knn::BatchedKnnOptions opts;
    opts.batch.tile_refs = 64;
    opts.nan_policy = NanPolicy::kSortLast;
    knn::BatchedKnn engine(refs, opts);
    const knn::KnnResult result = engine.search_gpu(dev, queries, 9);
    return std::tuple(injector.events(), result.neighbors, dev.cumulative());
  };
  const auto [serial_events, serial_neighbors, serial_metrics] = run(1);
  ASSERT_FALSE(serial_events.empty()) << "injection never fired — vacuous";
  for (const unsigned threads : kThreadCounts) {
    const auto [events, neighbors, metrics] = run(threads);
    EXPECT_EQ(events, serial_events) << "threads=" << threads;
    EXPECT_EQ(neighbors, serial_neighbors) << "threads=" << threads;
    EXPECT_TRUE(metrics == serial_metrics) << "threads=" << threads;
  }
}

TEST(FaultDeterminism, ParallelSafeReflectsBudgetState) {
  InjectorConfig cfg;
  cfg.kind = InjectKind::kNanInject;
  cfg.period = 1;
  cfg.max_faults = 1;
  FaultInjector injector(cfg);
  injector.begin_launch("k", 1);
  EXPECT_FALSE(injector.parallel_safe());  // live bounded budget
  ASSERT_TRUE(injector.on_global_access(0, kFullMask, true, true));
  injector.end_launch();
  injector.begin_launch("k", 1);
  EXPECT_TRUE(injector.parallel_safe());  // budget spent: decisions constant

  InjectorConfig uncapped = cfg;
  uncapped.max_faults = 0;
  FaultInjector free_injector(uncapped);
  free_injector.begin_launch("k", 4);
  EXPECT_TRUE(free_injector.parallel_safe());

  InjectorConfig filtered = cfg;
  filtered.kernel_filter = "other";
  FaultInjector off_injector(filtered);
  off_injector.begin_launch("k", 4);
  EXPECT_TRUE(off_injector.parallel_safe());  // filter rejects the launch
}

}  // namespace
}  // namespace gpuksel
