// Unit tests for WarpQueue: per-insert lockstep equivalence with the scalar
// queues, for every queue kind, across 32 independent lanes at once.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/kernels/select_kernels.hpp"
#include "core/kernels/warp_queue.hpp"
#include "core/queues/heap_queue.hpp"
#include "core/queues/insertion_queue.hpp"
#include "core/queues/merge_queue.hpp"
#include "util/rng.hpp"

namespace gpuksel::kernels {
namespace {

using simt::F32;
using simt::KernelMetrics;
using simt::U32;
using simt::WarpContext;

/// Harness: 32 lanes, each with its own scalar reference queue; feeds the
/// same candidate stream to both and compares after every insert.
class WarpQueueHarness {
 public:
  WarpQueueHarness(QueueKind kind, std::uint32_t k, std::uint32_t m,
                   bool aligned, MergeStrategy strategy)
      : kind_(kind),
        k_(k),
        capacity_(kind == QueueKind::kMerge ? merge_capacity(k, m) : k),
        dq_(std::size_t{capacity_} * 32),
        iq_(std::size_t{capacity_} * 32),
        sd_(std::size_t{capacity_} * 32),
        si_(std::size_t{capacity_} * 32),
        ctx_(metrics_, 0),
        flag_(ctx_, 2, 0),
        queue_(ctx_,
               ThreadArrayView{dq_.span(), iq_.span(), 32, capacity_,
                               QueueLayout::kInterleaved},
               U32::iota(), simt::kFullMask, kind, m, aligned, &flag_,
               strategy,
               ThreadArrayView{sd_.span(), si_.span(), 32, capacity_,
                               QueueLayout::kInterleaved},
               /*cache_head=*/true) {
    queue_.init();
    for (int l = 0; l < simt::kWarpSize; ++l) {
      switch (kind) {
        case QueueKind::kInsertion:
          ins_.push_back(std::make_unique<InsertionQueue>(k));
          break;
        case QueueKind::kHeap:
          heap_.push_back(std::make_unique<HeapQueue>(k));
          break;
        case QueueKind::kMerge:
          merge_.push_back(std::make_unique<MergeQueue>(k, m, nullptr,
                                                        strategy));
          break;
      }
    }
  }

  /// Offers candidate (dist[l], index) to every lane and cross-checks the
  /// accept decision and the retained set against the scalar queues.
  void step(const F32& dist, std::uint32_t index) {
    const EntryLanes cand{dist, U32::filled(index)};
    const simt::LaneMask want = queue_.accepts(simt::kFullMask, cand);
    for (int l = 0; l < simt::kWarpSize; ++l) {
      const bool scalar_accepts = scalar_try_insert(l, dist[l], index);
      ASSERT_EQ(simt::lane_active(want, l), scalar_accepts)
          << "lane " << l << " index " << index;
    }
    if (want) queue_.insert(want, cand);
  }

  /// Sorted retained set of lane l from the device buffers.
  std::vector<Neighbor> device_sorted(int l) const {
    std::vector<Neighbor> out;
    for (std::uint32_t j = 0; j < capacity_; ++j) {
      const std::size_t flat = std::size_t{j} * 32 + l;
      const Neighbor n{dq_.host()[flat], iq_.host()[flat]};
      if (!is_empty_slot(n)) out.push_back(n);
    }
    std::sort(out.begin(), out.end());
    if (out.size() > k_) out.resize(k_);
    return out;
  }

  std::vector<Neighbor> scalar_sorted(int l) const {
    switch (kind_) {
      case QueueKind::kInsertion: return ins_[l]->extract_sorted();
      case QueueKind::kHeap: return heap_[l]->extract_sorted();
      case QueueKind::kMerge: return merge_[l]->extract_sorted();
    }
    return {};
  }

 private:
  bool scalar_try_insert(int l, float d, std::uint32_t i) {
    switch (kind_) {
      case QueueKind::kInsertion: return ins_[l]->try_insert(d, i);
      case QueueKind::kHeap: return heap_[l]->try_insert(d, i);
      case QueueKind::kMerge: return merge_[l]->try_insert(d, i);
    }
    return false;
  }

  QueueKind kind_;
  std::uint32_t k_;
  std::uint32_t capacity_;
  simt::DeviceBuffer<float> dq_;
  simt::DeviceBuffer<std::uint32_t> iq_;
  simt::DeviceBuffer<float> sd_;
  simt::DeviceBuffer<std::uint32_t> si_;
  KernelMetrics metrics_;
  WarpContext ctx_;
  simt::SharedArray<int> flag_;
  WarpQueue queue_;
  std::vector<std::unique_ptr<InsertionQueue>> ins_;
  std::vector<std::unique_ptr<HeapQueue>> heap_;
  std::vector<std::unique_ptr<MergeQueue>> merge_;
};

struct WqCase {
  QueueKind kind;
  std::uint32_t k;
  std::uint32_t m;
  bool aligned;
  MergeStrategy strategy;
};

class WarpQueueStepTest : public ::testing::TestWithParam<WqCase> {};

TEST_P(WarpQueueStepTest, LockstepInsertsMatchScalarQueues) {
  const auto& p = GetParam();
  WarpQueueHarness h(p.kind, p.k, p.m, p.aligned, p.strategy);
  Rng rng(4242);
  for (std::uint32_t i = 0; i < 600; ++i) {
    F32 dist;
    for (int l = 0; l < simt::kWarpSize; ++l) {
      dist[l] = rng.uniform_float();
    }
    h.step(dist, i);
    if (i % 50 == 0) {
      for (int l = 0; l < simt::kWarpSize; l += 7) {
        ASSERT_EQ(h.device_sorted(l), h.scalar_sorted(l))
            << "lane " << l << " after insert " << i;
      }
    }
  }
  for (int l = 0; l < simt::kWarpSize; ++l) {
    EXPECT_EQ(h.device_sorted(l), h.scalar_sorted(l)) << "final lane " << l;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, WarpQueueStepTest,
    ::testing::Values(
        WqCase{QueueKind::kInsertion, 16, 8, true,
               MergeStrategy::kReverseBitonic},
        WqCase{QueueKind::kInsertion, 1, 8, true,
               MergeStrategy::kReverseBitonic},
        WqCase{QueueKind::kHeap, 16, 8, true, MergeStrategy::kReverseBitonic},
        WqCase{QueueKind::kHeap, 33, 8, true, MergeStrategy::kReverseBitonic},
        WqCase{QueueKind::kMerge, 32, 8, true,
               MergeStrategy::kReverseBitonic},
        WqCase{QueueKind::kMerge, 32, 8, false,
               MergeStrategy::kReverseBitonic},
        WqCase{QueueKind::kMerge, 32, 8, true, MergeStrategy::kTwoPointer},
        WqCase{QueueKind::kMerge, 64, 2, true,
               MergeStrategy::kReverseBitonic},
        WqCase{QueueKind::kMerge, 5, 8, true,
               MergeStrategy::kReverseBitonic}),
    [](const auto& info) {
      const auto& p = info.param;
      return std::string(queue_kind_name(p.kind)) + "_k" +
             std::to_string(p.k) + "_m" + std::to_string(p.m) +
             (p.aligned ? "_al" : "_un") +
             (p.strategy == MergeStrategy::kTwoPointer ? "_2p" : "_bi");
    });

TEST(WarpQueueTest, TwoPointerWithoutScratchThrows) {
  simt::KernelMetrics m;
  simt::WarpContext ctx(m, 0);
  simt::DeviceBuffer<float> d(32 * 32);
  simt::DeviceBuffer<std::uint32_t> i(32 * 32);
  const ThreadArrayView view{d.span(), i.span(), 32, 32,
                             QueueLayout::kInterleaved};
  EXPECT_THROW(WarpQueue(ctx, view, U32::iota(), simt::kFullMask,
                         QueueKind::kMerge, 8, true, nullptr,
                         MergeStrategy::kTwoPointer, ThreadArrayView{}),
               gpuksel::PreconditionError);
}

}  // namespace
}  // namespace gpuksel::kernels
