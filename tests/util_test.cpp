// Unit tests for src/util: rng, stats, table, csv, cli.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <initializer_list>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace gpuksel {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) differing += a() != b();
  EXPECT_GT(differing, 24);
}

TEST(Rng, UniformFloatInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const float v = rng.uniform_float();
    ASSERT_GE(v, 0.0f);
    ASSERT_LT(v, 1.0f);
  }
}

TEST(Rng, UniformFloatRoughlyUniformMean) {
  Rng rng(11);
  double sum = 0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform_float();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformBelowRespectsBound) {
  Rng rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_LT(rng.uniform_below(bound), bound);
    }
  }
}

TEST(Rng, UniformFloatsHelperMatchesSeed) {
  const auto a = uniform_floats(64, 5);
  const auto b = uniform_floats(64, 5);
  EXPECT_EQ(a, b);
  const auto c = uniform_floats(64, 6);
  EXPECT_NE(a, c);
}

TEST(Rng, RandomPermutationIsPermutation) {
  const auto p = random_permutation(257, 9);
  std::set<std::uint32_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 257u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 256u);
}

TEST(Stats, RunningStatsBasics) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.13809, 1e-4);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, EmptyStatsAreZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Stats, MedianSingleElement) {
  EXPECT_DOUBLE_EQ(median({42.0}), 42.0);
}

TEST(Stats, GeometricMean) {
  EXPECT_DOUBLE_EQ(geometric_mean(std::vector<double>{2.0, 8.0}), 4.0);
  EXPECT_DOUBLE_EQ(geometric_mean(std::vector<double>{}), 0.0);
}

TEST(Stats, GeometricMeanZeroAndNegativeInputs) {
  // Regression: std::log(0) / std::log(-x) used to leak NaN or -inf
  // underflow into the mean; a zero factor zeroes the product and negative
  // factors make it undefined, so both come back as 0.
  EXPECT_DOUBLE_EQ(geometric_mean(std::vector<double>{0.0, 4.0}), 0.0);
  EXPECT_DOUBLE_EQ(geometric_mean(std::vector<double>{-2.0, 8.0}), 0.0);
  EXPECT_DOUBLE_EQ(geometric_mean(std::vector<double>{0.0}), 0.0);
  EXPECT_FALSE(std::isnan(geometric_mean(std::vector<double>{-1.0, -1.0})));
}

TEST(Stats, Percentile) {
  std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 5.5);
}

TEST(Stats, PercentileEdgeCases) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 50), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 100), 7.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
  // Out-of-range p clamps rather than indexing out of bounds.
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0}, -10), 1.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0}, 140), 2.0);
}

TEST(Table, PrintsAlignedGrid) {
  Table t("Title", {"a", "long-header"});
  t.begin_row().add("x").add(1.5, 1);
  t.begin_row().add("yyyy").add_int(42);
  const std::string s = t.str();
  EXPECT_NE(s.find("Title"), std::string::npos);
  EXPECT_NE(s.find("long-header"), std::string::npos);
  EXPECT_NE(s.find("1.5"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  // Every grid line has the same width.
  std::istringstream is(s);
  std::string line;
  std::getline(is, line);  // title
  std::size_t width = 0;
  while (std::getline(is, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(Table, NanRendersAsDash) {
  Table t("", {"v"});
  t.begin_row().add(std::nan(""), 2);
  EXPECT_NE(t.str().find("| - "), std::string::npos);
}

TEST(Table, TooManyCellsThrows) {
  Table t("", {"only"});
  t.begin_row().add("1");
  EXPECT_THROW(t.add("2"), PreconditionError);
}

TEST(Table, AddBeforeBeginRowThrows) {
  Table t("", {"c"});
  EXPECT_THROW(t.add("x"), PreconditionError);
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("q\"q"), "\"q\"\"q\"");
  EXPECT_EQ(csv_escape("n\nn"), "\"n\nn\"");
}

TEST(Cli, ParsesAndStripsFlags) {
  const char* raw[] = {"prog", "--n=128", "--paper-scale", "--benchmark_filter=x",
                       "positional", nullptr};
  char* argv[6];
  for (int i = 0; i < 5; ++i) argv[i] = const_cast<char*>(raw[i]);
  argv[5] = nullptr;
  int argc = 5;
  CliFlags flags(argc, argv);
  EXPECT_EQ(flags.get_int("n", 0), 128);
  EXPECT_TRUE(flags.get_bool("paper_scale", false));
  EXPECT_FALSE(flags.has("missing"));
  EXPECT_EQ(flags.get("missing", "d"), "d");
  // benchmark_* and positionals stay for google-benchmark.
  EXPECT_EQ(argc, 3);
  EXPECT_STREQ(argv[1], "--benchmark_filter=x");
  EXPECT_STREQ(argv[2], "positional");
}

TEST(Cli, DashAndUnderscoreEquivalent) {
  const char* raw[] = {"prog", "--paper-scale=0", nullptr};
  char* argv[3];
  argv[0] = const_cast<char*>(raw[0]);
  argv[1] = const_cast<char*>(raw[1]);
  argv[2] = nullptr;
  int argc = 2;
  CliFlags flags(argc, argv);
  EXPECT_FALSE(flags.get_bool("paper_scale", true));
}

namespace {
CliFlags make_flags(std::initializer_list<const char*> args) {
  static std::vector<std::string> storage;
  storage.assign({"prog"});
  storage.insert(storage.end(), args.begin(), args.end());
  static std::vector<char*> argv;
  argv.clear();
  for (auto& s : storage) argv.push_back(s.data());
  argv.push_back(nullptr);
  int argc = static_cast<int>(storage.size());
  return CliFlags(argc, argv.data());
}
}  // namespace

TEST(Cli, RequireIntAcceptsWellFormedAndDefaults) {
  const CliFlags flags = make_flags({"--threads=7"});
  EXPECT_EQ(flags.require_int("threads", 0, 0, 4096), 7);
  // Absent flag falls back to the default without validation noise.
  EXPECT_EQ(flags.require_int("warps", 2, 1, 1 << 22), 2);
}

TEST(Cli, RequireIntRejectsMalformedText) {
  // Regression: get_int silently returned the default for --threads=abc, so
  // a typo'd CI smoke job green-ran the default configuration.
  const CliFlags flags = make_flags({"--threads=abc"});
  try {
    (void)flags.require_int("threads", 0, 0, 4096);
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--threads=abc"), std::string::npos) << what;
    EXPECT_NE(what.find("[0, 4096]"), std::string::npos) << what;
  }
}

TEST(Cli, RequireIntRejectsOutOfRange) {
  const CliFlags batch = make_flags({"--batch=-1"});
  EXPECT_THROW((void)batch.require_int("batch", 16, 1, 1 << 20),
               PreconditionError);
  const CliFlags huge = make_flags({"--threads=99999999999999999999"});
  EXPECT_THROW((void)huge.require_int("threads", 0, 0, 4096),
               PreconditionError);
  // Trailing garbage after a valid prefix is malformed, not truncated.
  const CliFlags trailing = make_flags({"--threads=8x"});
  EXPECT_THROW((void)trailing.require_int("threads", 0, 0, 4096),
               PreconditionError);
}

TEST(Check, ThrowsWithMessage) {
  try {
    GPUKSEL_CHECK(1 == 2, "custom detail");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("custom detail"), std::string::npos);
  }
}

}  // namespace
}  // namespace gpuksel
