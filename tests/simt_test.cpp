// Unit tests for the SIMT simulator: mask algebra, predicated execution,
// votes/shuffles, memory transaction counting, shared-memory bank conflicts,
// launcher accounting and the cost model.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "simt/cost_model.hpp"
#include "simt/device.hpp"
#include "simt/memory.hpp"
#include "simt/metrics.hpp"
#include "simt/types.hpp"
#include "simt/warp.hpp"
#include "simt/warp_ops.hpp"

namespace gpuksel::simt {
namespace {

TEST(Masks, Basics) {
  EXPECT_EQ(popcount(kFullMask), 32);
  EXPECT_EQ(popcount(LaneMask{0}), 0);
  EXPECT_EQ(first_lanes(0), 0u);
  EXPECT_EQ(first_lanes(1), 1u);
  EXPECT_EQ(first_lanes(32), kFullMask);
  EXPECT_TRUE(lane_active(lane_bit(5), 5));
  EXPECT_FALSE(lane_active(lane_bit(5), 6));
  EXPECT_EQ(lowest_lane(lane_bit(9) | lane_bit(20)), 9);
  EXPECT_EQ(lowest_lane(0), kWarpSize);
}

TEST(WarpVarTest, IotaAndFilled) {
  const auto v = U32::iota();
  for (int i = 0; i < kWarpSize; ++i) EXPECT_EQ(v[i], std::uint32_t(i));
  const auto f = F32::filled(2.5f);
  for (int i = 0; i < kWarpSize; ++i) EXPECT_EQ(f[i], 2.5f);
}

class WarpFixture : public ::testing::Test {
 protected:
  KernelMetrics metrics_;
  WarpContext ctx_{metrics_, 0};
};

TEST_F(WarpFixture, IssueAccountsUsefulSlots) {
  ctx_.issue(kFullMask);
  EXPECT_EQ(metrics_.instructions, 1u);
  EXPECT_EQ(metrics_.useful_lane_slots, 32u);
  ctx_.issue(lane_bit(0) | lane_bit(7), 3);
  EXPECT_EQ(metrics_.instructions, 4u);
  EXPECT_EQ(metrics_.useful_lane_slots, 32u + 6u);
}

TEST_F(WarpFixture, SimtEfficiencyReflectsDivergence) {
  ctx_.issue(kFullMask, 10);
  EXPECT_DOUBLE_EQ(metrics_.simt_efficiency(), 1.0);
  ctx_.issue(lane_bit(0), 10);  // 10 instructions with one useful lane
  EXPECT_NEAR(metrics_.simt_efficiency(), (320.0 + 10.0) / 640.0, 1e-12);
}

TEST_F(WarpFixture, PredicatedAluLeavesInactiveLanesUntouched) {
  U32 v = U32::filled(7u);
  ctx_.mov(first_lanes(4), v, 99u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v[i], 99u);
  for (int i = 4; i < kWarpSize; ++i) EXPECT_EQ(v[i], 7u);
}

TEST_F(WarpFixture, AddAndSelect) {
  const U32 a = U32::iota();
  U32 b = ctx_.add(kFullMask, a, 5u);
  for (int i = 0; i < kWarpSize; ++i) EXPECT_EQ(b[i], std::uint32_t(i + 5));
  const LaneMask take = 0xaaaaaaaau;
  const U32 sel = ctx_.select(kFullMask, take, a, b);
  for (int i = 0; i < kWarpSize; ++i) {
    EXPECT_EQ(sel[i], lane_active(take, i) ? a[i] : b[i]);
  }
}

TEST_F(WarpFixture, CompareProducesRestrictedMask) {
  const U32 a = U32::iota();
  const LaneMask lt = ctx_.cmp_lt(first_lanes(16), a, 8u);
  EXPECT_EQ(lt, first_lanes(8));  // lanes 0..7 only, and within the mask
}

TEST_F(WarpFixture, Votes) {
  const LaneMask pred = lane_bit(3) | lane_bit(30);
  EXPECT_TRUE(ctx_.any(kFullMask, pred));
  EXPECT_FALSE(ctx_.any(first_lanes(3), pred));
  EXPECT_FALSE(ctx_.all(kFullMask, pred));
  EXPECT_TRUE(ctx_.all(lane_bit(3), pred));
  EXPECT_EQ(ctx_.ballot(first_lanes(8), pred), lane_bit(3));
}

TEST_F(WarpFixture, ShuffleXorSwapsPartners) {
  const U32 v = U32::iota();
  const U32 s = ctx_.shfl_xor(kFullMask, v, 1);
  for (int i = 0; i < kWarpSize; ++i) EXPECT_EQ(s[i], std::uint32_t(i ^ 1));
}

TEST_F(WarpFixture, ShuffleBroadcast) {
  U32 v = U32::iota();
  const U32 b = ctx_.shfl_bcast(kFullMask, v, 13);
  for (int i = 0; i < kWarpSize; ++i) EXPECT_EQ(b[i], 13u);
}

// --- global memory transaction model --------------------------------------

class MemoryFixture : public WarpFixture {
 protected:
  DeviceBuffer<float> buf_{1024};

  void SetUp() override {
    auto& h = buf_.host();
    std::iota(h.begin(), h.end(), 0.0f);
  }
};

TEST_F(MemoryFixture, ContiguousFloatLoadIsOneTransaction) {
  // 32 consecutive floats = 128 bytes = exactly one segment.
  const F32 v = ctx_.load(kFullMask, buf_.cspan(), U32::iota());
  EXPECT_EQ(metrics_.global_load_tx, 1u);
  EXPECT_EQ(metrics_.global_requests, 1u);
  EXPECT_EQ(v[31], 31.0f);
}

TEST_F(MemoryFixture, BroadcastLoadIsOneTransaction) {
  (void)ctx_.load(kFullMask, buf_.cspan(), U32::filled(100u));
  EXPECT_EQ(metrics_.global_load_tx, 1u);
}

TEST_F(MemoryFixture, Stride2CoversTwoSegments) {
  (void)ctx_.load(kFullMask, buf_.cspan(), U32::iota(0u, 2u));
  EXPECT_EQ(metrics_.global_load_tx, 2u);
}

TEST_F(MemoryFixture, Stride32ScattersTo32Transactions) {
  (void)ctx_.load(kFullMask, buf_.cspan(), U32::iota(0u, 32u));
  EXPECT_EQ(metrics_.global_load_tx, 32u);
  EXPECT_DOUBLE_EQ(metrics_.transactions_per_request(), 32.0);
}

TEST_F(MemoryFixture, MaskedLoadOnlyCountsActiveLanes) {
  (void)ctx_.load(first_lanes(1), buf_.cspan(), U32::iota(0u, 32u));
  EXPECT_EQ(metrics_.global_load_tx, 1u);
}

TEST_F(MemoryFixture, StoreWritesOnlyActiveLanes) {
  ctx_.store(first_lanes(2), buf_.span(), U32::iota(), F32::filled(-1.0f));
  EXPECT_EQ(buf_.host()[0], -1.0f);
  EXPECT_EQ(buf_.host()[1], -1.0f);
  EXPECT_EQ(buf_.host()[2], 2.0f);
  EXPECT_EQ(metrics_.global_store_tx, 1u);
}

TEST_F(MemoryFixture, SubspanKeepsSegmentAlignment) {
  // Elements 16..47 straddle a 128-byte boundary relative to the buffer.
  const auto sub = buf_.cspan().subspan(16, 64);
  (void)ctx_.load(kFullMask, sub, U32::iota());
  EXPECT_EQ(metrics_.global_load_tx, 2u);
}

// --- shared memory bank model ----------------------------------------------

TEST_F(WarpFixture, SharedConflictFreeAccess) {
  SharedArray<float> s(ctx_, 64);
  s.write(kFullMask, U32::iota(), F32::filled(1.0f));
  EXPECT_EQ(metrics_.shared_requests, 1u);
  EXPECT_EQ(metrics_.shared_conflict_replays, 0u);
}

TEST_F(WarpFixture, SharedBroadcastIsFree) {
  SharedArray<float> s(ctx_, 64);
  (void)s.read_bcast(kFullMask, 7);
  EXPECT_EQ(metrics_.shared_conflict_replays, 0u);
}

TEST_F(WarpFixture, SharedTwoWayConflictReplaysOnce) {
  SharedArray<float> s(ctx_, 64);
  // Lane i accesses word 32 + i for i<16 and word i-16 for i>=16: lanes i and
  // i+16 hit the same bank with different words -> 2-way conflict.
  U32 idx;
  for (int i = 0; i < kWarpSize; ++i) {
    idx[i] = i < 16 ? 32 + i : i - 16;
  }
  (void)s.read(kFullMask, idx);
  EXPECT_EQ(metrics_.shared_requests, 1u);
  EXPECT_EQ(metrics_.shared_conflict_replays, 1u);
}

TEST_F(WarpFixture, SharedSameWordSameBankBroadcasts) {
  SharedArray<float> s(ctx_, 64);
  // All lanes read word 3: one bank, one word -> broadcast, no replay.
  (void)s.read(kFullMask, U32::filled(3u));
  EXPECT_EQ(metrics_.shared_conflict_replays, 0u);
}

TEST_F(WarpFixture, SharedAlternatingWordsReplayPerDistinctWord) {
  // Regression: the bank serializes once per *distinct* word, not once per
  // word *change*.  Lanes alternate between words 0 and 32 — both bank 0 —
  // so the bank serves exactly 2 distinct words (degree 2, 1 replay).  The
  // old accounting compared each lane only against the last word seen in the
  // bank, so the A,B,A,B... pattern re-counted every alternation: degree 32.
  SharedArray<float> s(ctx_, 64);
  U32 idx;
  for (int i = 0; i < kWarpSize; ++i) {
    idx[i] = (i % 2) * 32;
  }
  (void)s.read(kFullMask, idx);
  EXPECT_EQ(metrics_.shared_requests, 1u);
  EXPECT_EQ(metrics_.shared_conflict_replays, 1u);
}

TEST_F(WarpFixture, SharedRevisitedWordDoesNotRecount) {
  // Three active lanes touch words 0, 32, 0 (all bank 0): two distinct words
  // -> degree 2.  Last-word tracking counted the return to word 0 as a third
  // replay.
  SharedArray<float> s(ctx_, 64);
  U32 idx;
  idx[0] = 0;
  idx[1] = 32;
  idx[2] = 0;
  (void)s.read(first_lanes(3), idx);
  EXPECT_EQ(metrics_.shared_requests, 1u);
  EXPECT_EQ(metrics_.shared_conflict_replays, 1u);
}

// --- warp collectives -------------------------------------------------------

TEST_F(WarpFixture, ReduceMinKeyedFindsArgmin) {
  KeyedLanes in;
  for (int i = 0; i < kWarpSize; ++i) {
    in.keys[i] = static_cast<float>((i * 7) % 32);
    in.values[i] = 1000 + i;
  }
  const KeyedLanes out = reduce_min_keyed(ctx_, kFullMask, in);
  for (int i = 0; i < kWarpSize; ++i) {
    EXPECT_EQ(out.keys[i], 0.0f);
    EXPECT_EQ(out.values[i], 1000u);  // (0*7)%32 == 0 at lane 0
  }
}

TEST_F(WarpFixture, ReduceMinKeyedBreaksTiesByValue) {
  KeyedLanes in;
  in.keys = F32::filled(5.0f);
  for (int i = 0; i < kWarpSize; ++i) in.values[i] = 100 - i;
  const KeyedLanes out = reduce_min_keyed(ctx_, kFullMask, in);
  EXPECT_EQ(out.values[0], 100u - 31u);
}

TEST_F(WarpFixture, ReduceMaxAllLanesAgree) {
  F32 v;
  for (int i = 0; i < kWarpSize; ++i) v[i] = static_cast<float>(i % 9);
  const F32 out = reduce_max(ctx_, kFullMask, v);
  for (int i = 0; i < kWarpSize; ++i) EXPECT_EQ(out[i], 8.0f);
}

TEST_F(WarpFixture, ReduceSumIgnoresInactiveLanes) {
  const U32 v = U32::filled(1u);
  const U32 out = reduce_sum(ctx_, first_lanes(10), v);
  EXPECT_EQ(out[0], 10u);
}

TEST_F(WarpFixture, PrefixSumExclusive) {
  const U32 v = U32::filled(2u);
  const U32 out = prefix_sum_exclusive(ctx_, v);
  for (int i = 0; i < kWarpSize; ++i) EXPECT_EQ(out[i], std::uint32_t(2 * i));
}

// --- device ------------------------------------------------------------------

TEST(DeviceTest, LaunchSumsWarpMetrics) {
  Device dev;
  const auto m = dev.launch(4, [](WarpContext& ctx, std::uint32_t) {
    ctx.issue(kFullMask, 10);
  });
  EXPECT_EQ(m.instructions, 40u);
  EXPECT_EQ(dev.last_launch().instructions, 40u);
  dev.launch(1, [](WarpContext& ctx, std::uint32_t) { ctx.issue(kFullMask); });
  EXPECT_EQ(dev.cumulative().instructions, 41u);
  dev.reset_stats();
  EXPECT_EQ(dev.cumulative().instructions, 0u);
}

TEST(DeviceTest, TransfersAreCounted) {
  Device dev;
  std::vector<float> host(100, 1.0f);
  auto buf = dev.upload(host);
  EXPECT_EQ(dev.transfers().bytes_h2d, 400u);
  auto back = dev.download(buf);
  EXPECT_EQ(dev.transfers().bytes_d2h, 400u);
  EXPECT_EQ(back, host);
}

TEST(DeviceTest, WarpIdsArePassedThrough) {
  Device dev;
  // Each warp writes its own slot: valid under any launch schedule,
  // including parallel host threads.
  std::vector<std::uint32_t> seen(3, 99u);
  dev.launch(3, [&](WarpContext&, std::uint32_t w) { seen[w] = w; });
  EXPECT_EQ(seen, (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST_F(WarpFixture, MovImmCpyBehave) {
  U32 a = U32::filled(1u);
  const U32 b = ctx_.imm(kFullMask, 9u);
  for (int i = 0; i < kWarpSize; ++i) EXPECT_EQ(b[i], 9u);
  ctx_.cpy(first_lanes(2), a, b);
  EXPECT_EQ(a[0], 9u);
  EXPECT_EQ(a[1], 9u);
  EXPECT_EQ(a[2], 1u);
}

TEST_F(WarpFixture, SubAndMul) {
  const U32 a = U32::iota(10u);
  const U32 b = U32::filled(3u);
  const U32 d = ctx_.sub(kFullMask, a, b);
  EXPECT_EQ(d[0], 7u);
  EXPECT_EQ(d[5], 12u);
  const U32 m = ctx_.mul(kFullMask, b, 4u);
  EXPECT_EQ(m[31], 12u);
}

TEST_F(WarpFixture, ShuffleDynamicSource) {
  const U32 v = U32::iota(100u);
  U32 from;
  for (int i = 0; i < kWarpSize; ++i) from[i] = 31 - i;
  const U32 s = ctx_.shfl(kFullMask, v, from);
  for (int i = 0; i < kWarpSize; ++i) {
    EXPECT_EQ(s[i], 100u + std::uint32_t(31 - i));
  }
}

TEST_F(WarpFixture, StoreImmediateOverload) {
  DeviceBuffer<float> buf(64);
  ctx_.store(first_lanes(4), buf.span(), U32::iota(), 2.5f);
  EXPECT_EQ(buf.host()[3], 2.5f);
  EXPECT_EQ(buf.host()[4], 0.0f);
}

TEST_F(WarpFixture, SharedMaskedWriteLeavesOthers) {
  SharedArray<float> s(ctx_, 32, 7.0f);
  s.write(first_lanes(3), U32::iota(), F32::filled(1.0f));
  EXPECT_EQ(s.host()[0], 1.0f);
  EXPECT_EQ(s.host()[2], 1.0f);
  EXPECT_EQ(s.host()[3], 7.0f);
}

TEST_F(WarpFixture, SharedWriteBcastSetsOneSlot) {
  SharedArray<int> s(ctx_, 4, 0);
  s.write_bcast(kFullMask, 2, 5);
  EXPECT_EQ(s.host()[2], 5);
  EXPECT_EQ(s.host()[1], 0);
  const auto v = s.read_bcast(kFullMask, 2);
  for (int i = 0; i < kWarpSize; ++i) EXPECT_EQ(v[i], 5);
}

TEST_F(WarpFixture, ReduceMinKeyedRespectsMask) {
  KeyedLanes in;
  in.keys = F32::iota(0.0f);  // lane 0 holds the global min
  in.values = U32::iota(0u);
  // Exclude lane 0: min over lanes 1..31 is key 1.
  const KeyedLanes out = reduce_min_keyed(ctx_, kFullMask & ~lane_bit(0), in);
  EXPECT_EQ(out.keys[1], 1.0f);
  EXPECT_EQ(out.values[1], 1u);
}

TEST(MetricsTest, AdditionAccumulates) {
  KernelMetrics a, b;
  a.instructions = 5;
  a.global_load_tx = 2;
  b.instructions = 7;
  b.shared_requests = 3;
  const KernelMetrics c = a + b;
  EXPECT_EQ(c.instructions, 12u);
  EXPECT_EQ(c.global_load_tx, 2u);
  EXPECT_EQ(c.shared_requests, 3u);
}

TEST(MetricsTest, EmptyMetricsEfficiencyIsOne) {
  KernelMetrics m;
  EXPECT_DOUBLE_EQ(m.simt_efficiency(), 1.0);
  EXPECT_DOUBLE_EQ(m.transactions_per_request(), 0.0);
}

TEST(DeviceSpanTest, SubspanOutOfRangeThrows) {
  DeviceBuffer<float> buf(16);
  EXPECT_THROW(buf.span().subspan(10, 7), gpuksel::PreconditionError);
  const auto ok = buf.span().subspan(10, 6);
  EXPECT_EQ(ok.size(), 6u);
}

// --- cost model ----------------------------------------------------------------

TEST(CostModelTest, InstructionBoundKernel) {
  const CostModel cm = c2075_model();
  KernelMetrics m;
  m.instructions = static_cast<std::uint64_t>(cm.issue_rate());  // 1 second
  EXPECT_NEAR(cm.kernel_seconds(m), 1.0, 1e-9);
}

TEST(CostModelTest, MemoryBoundKernel) {
  const CostModel cm = c2075_model();
  KernelMetrics m;
  m.global_load_tx = static_cast<std::uint64_t>(cm.dram_bandwidth / 128.0);
  EXPECT_NEAR(cm.kernel_seconds(m), 1.0, 1e-9);
}

TEST(CostModelTest, RooflineTakesTheMax) {
  const CostModel cm = c2075_model();
  KernelMetrics m;
  m.instructions = static_cast<std::uint64_t>(cm.issue_rate());      // 1 s
  m.global_load_tx = static_cast<std::uint64_t>(cm.dram_bandwidth / 256.0);
  EXPECT_NEAR(cm.kernel_seconds(m), 1.0, 1e-9);  // memory only needs 0.5 s
}

TEST(CostModelTest, ScalingMultipliesWork) {
  const CostModel cm = c2075_model();
  KernelMetrics m;
  m.instructions = 1000;
  EXPECT_NEAR(cm.kernel_seconds_scaled(m, 8.0), 8.0 * cm.kernel_seconds(m),
              1e-12);
}

TEST(CostModelTest, ScalingPreservesDerivedRatios) {
  // Regression: kernel_seconds_scaled used to scale only instructions and
  // transactions, so efficiency/coalescing ratios of a scaled KernelMetrics
  // were silently wrong by the scale factor.  scale_metrics must scale every
  // counter together, keeping the ratios invariant.
  KernelMetrics m;
  m.instructions = 1000;
  m.useful_lane_slots = 17'500;  // efficiency 0.546875
  m.global_load_tx = 300;
  m.global_store_tx = 100;
  m.global_requests = 250;  // 1.6 tx/request
  m.shared_requests = 40;
  m.shared_conflict_replays = 7;
  for (const double scale : {2.0, 128.0, 4096.0}) {
    const KernelMetrics s = scale_metrics(m, scale);
    EXPECT_DOUBLE_EQ(s.simt_efficiency(), m.simt_efficiency())
        << "scale " << scale;
    EXPECT_DOUBLE_EQ(s.transactions_per_request(),
                     m.transactions_per_request())
        << "scale " << scale;
    EXPECT_EQ(s.instructions, static_cast<std::uint64_t>(scale) * 1000);
    EXPECT_EQ(s.shared_requests, static_cast<std::uint64_t>(scale) * 40);
    EXPECT_EQ(s.shared_conflict_replays,
              static_cast<std::uint64_t>(scale) * 7);
  }
}

TEST(CostModelTest, TransferCalibratedToPaperDataCopy) {
  // The paper's Table I reports 0.46 s to copy the 2^13 x 2^15 float matrix.
  const CostModel cm = c2075_model();
  const std::uint64_t bytes = 8192ull * 32768ull * 4ull;
  EXPECT_NEAR(cm.transfer_seconds(bytes), 0.46, 0.02);
}

TEST(CostModelTest, ZeroByteTransferIsFree) {
  // Regression: an empty upload (empty batch, zero-row delta) issues no copy,
  // so it must not be charged the per-transfer PCIe latency floor.
  const CostModel cm = c2075_model();
  EXPECT_EQ(cm.transfer_seconds(0), 0.0);
  // The first real byte still pays the launch overhead.
  EXPECT_GT(cm.transfer_seconds(1), cm.pcie_latency_s);
}

}  // namespace
}  // namespace gpuksel::simt
