// Tests for the SIMT sanitizer and the deterministic fault injector.
//
// Two layers: direct sanitizer unit tests (each check fires with full
// kernel/warp/instruction context and stays silent on clean kernels), and
// whole-pipeline injection runs asserting the robustness contract — every
// injected fault is either caught as SimtFaultError with context or the run
// produces results identical to the fault-free run, and search_gpu with
// fallback_to_host answers correctly under every fault class.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <vector>

#include "knn/dataset.hpp"
#include "knn/knn.hpp"
#include "simt/device.hpp"
#include "simt/fault_injection.hpp"
#include "simt/memory.hpp"
#include "simt/sanitizer.hpp"
#include "simt/types.hpp"
#include "simt/warp.hpp"
#include "util/check.hpp"

namespace gpuksel {
namespace {

using simt::Device;
using simt::DeviceBuffer;
using simt::F32;
using simt::FaultInjector;
using simt::InjectKind;
using simt::InjectorConfig;
using simt::kFullMask;
using simt::kWarpSize;
using simt::U32;
using simt::WarpContext;

// --- sanitizer checks -------------------------------------------------------

TEST(Sanitizer, OutOfBoundsLoadFaultsWithContext) {
  Device dev;
  auto buf = dev.alloc<float>(64, 0.0f);
  const auto span = buf.cspan();
  try {
    dev.launch("oob_kernel", 2, [&](WarpContext& ctx, std::uint32_t) {
      (void)ctx.load(kFullMask, span, U32::filled(64));
    });
    FAIL() << "expected SimtFaultError";
  } catch (const SimtFaultError& e) {
    EXPECT_EQ(e.kind(), FaultKind::kOutOfBounds);
    EXPECT_EQ(e.kernel(), "oob_kernel");
    EXPECT_EQ(e.warp_id(), 0u);
    EXPECT_GE(e.instruction(), 1u);
    EXPECT_EQ(e.record().kind, FaultKind::kOutOfBounds);
  }
}

TEST(Sanitizer, OutOfBoundsStoreFaults) {
  Device dev;
  auto buf = dev.alloc<float>(16, 0.0f);
  auto span = buf.span();
  EXPECT_THROW(dev.launch("oob_store", 1,
                          [&](WarpContext& ctx, std::uint32_t) {
                            ctx.store(kFullMask, span, U32::filled(1000), 1.0f);
                          }),
               SimtFaultError);
}

TEST(Sanitizer, UninitializedReadFaultsAndStoreCures) {
  Device dev;
  auto buf = dev.alloc<float>(64);  // no fill: poisoned
  auto span = buf.span();
  EXPECT_THROW(dev.launch("poison_read", 1,
                          [&](WarpContext& ctx, std::uint32_t) {
                            (void)ctx.load(kFullMask, span, U32::iota());
                          }),
               SimtFaultError);
  // Storing first initializes exactly the written elements.
  F32 seen{};
  dev.launch("store_then_load", 1, [&](WarpContext& ctx, std::uint32_t) {
    ctx.store(kFullMask, span, U32::iota(), 3.5f);
    seen = ctx.load(kFullMask, span, U32::iota());
  });
  for (int i = 0; i < kWarpSize; ++i) EXPECT_EQ(seen[i], 3.5f);
}

TEST(Sanitizer, FilledAllocAndUploadCountAsInitialized) {
  Device dev;
  auto filled = dev.alloc<float>(32, 1.25f);
  auto uploaded = dev.upload(std::vector<float>(32, 2.5f));
  auto fspan = filled.span();
  auto uspan = uploaded.span();
  EXPECT_NO_THROW(dev.launch("init_reads", 1,
                             [&](WarpContext& ctx, std::uint32_t) {
                               (void)ctx.load(kFullMask, fspan, U32::iota());
                               (void)ctx.load(kFullMask, uspan, U32::iota());
                             }));
}

TEST(Sanitizer, HostWriteRefreshesShadow) {
  Device dev;
  auto buf = dev.alloc<float>(64);  // poisoned
  std::iota(buf.host().begin(), buf.host().end(), 0.0f);  // host memcpy
  auto span = buf.span();  // refresh point
  F32 seen{};
  EXPECT_NO_THROW(dev.launch("host_init", 1,
                             [&](WarpContext& ctx, std::uint32_t) {
                               seen = ctx.load(kFullMask, span, U32::iota());
                             }));
  EXPECT_EQ(seen[7], 7.0f);
}

TEST(Sanitizer, EccDetectsCorruptionBehindShadow) {
  Device dev;
  auto buf = dev.alloc<float>(32, 1.0f);
  auto span = buf.span();
  // Corrupt device memory without going through a store or host(): the
  // shadow checksum still describes the old value.
  span.at(7) = 2.0f;
  try {
    dev.launch("ecc_kernel", 1, [&](WarpContext& ctx, std::uint32_t) {
      (void)ctx.load(kFullMask, span, U32::iota());
    });
    FAIL() << "expected SimtFaultError";
  } catch (const SimtFaultError& e) {
    EXPECT_EQ(e.kind(), FaultKind::kEccMismatch);
    EXPECT_EQ(e.kernel(), "ecc_kernel");
  }
}

TEST(Sanitizer, StoreCollisionFaults) {
  Device dev;
  auto buf = dev.alloc<float>(64, 0.0f);
  auto span = buf.span();
  EXPECT_THROW(dev.launch("collide", 1,
                          [&](WarpContext& ctx, std::uint32_t) {
                            ctx.store(kFullMask, span, U32::filled(5), 1.0f);
                          }),
               SimtFaultError);
}

TEST(Sanitizer, SharedOutOfBoundsFaults) {
  Device dev;
  EXPECT_THROW(
      dev.launch("shared_oob", 1,
                 [&](WarpContext& ctx, std::uint32_t) {
                   simt::SharedArray<float> s(ctx, 4);
                   (void)s.read(kFullMask, U32::iota());
                 }),
      SimtFaultError);
}

TEST(Sanitizer, SharedWriteCollisionFaults) {
  Device dev;
  EXPECT_THROW(
      dev.launch("shared_collide", 1,
                 [&](WarpContext& ctx, std::uint32_t) {
                   simt::SharedArray<float> s(ctx, 8);
                   s.write(kFullMask, U32::filled(3), F32::filled(1.0f));
                 }),
      SimtFaultError);
}

TEST(Sanitizer, ShuffleFromInactiveLaneFaults) {
  Device dev;
  try {
    dev.launch("bad_shuffle", 1, [&](WarpContext& ctx, std::uint32_t) {
      const F32 v = F32::filled(1.0f);
      // Lane 0 reads lane 16, which the mask leaves inactive.
      (void)ctx.shfl_xor(simt::first_lanes(16), v, 16);
    });
    FAIL() << "expected SimtFaultError";
  } catch (const SimtFaultError& e) {
    EXPECT_EQ(e.kind(), FaultKind::kShuffleInactiveSource);
  }
}

TEST(Sanitizer, NanRejectFaultsOnNanLoad) {
  Device dev;
  dev.sanitizer().nan_policy = NanPolicy::kReject;
  std::vector<float> host(32, 1.0f);
  host[3] = std::numeric_limits<float>::quiet_NaN();
  auto buf = dev.upload(host);
  const auto span = buf.cspan();
  try {
    dev.launch("nan_kernel", 1, [&](WarpContext& ctx, std::uint32_t) {
      (void)ctx.load(kFullMask, span, U32::iota());
    });
    FAIL() << "expected SimtFaultError";
  } catch (const SimtFaultError& e) {
    EXPECT_EQ(e.kind(), FaultKind::kNanDistance);
  }
}

TEST(Sanitizer, NanSortLastRemapsToInfinity) {
  Device dev;
  dev.sanitizer().nan_policy = NanPolicy::kSortLast;
  std::vector<float> host(32, 1.0f);
  host[3] = std::numeric_limits<float>::quiet_NaN();
  auto buf = dev.upload(host);
  const auto span = buf.cspan();
  F32 seen{};
  EXPECT_NO_THROW(dev.launch("nan_remap", 1,
                             [&](WarpContext& ctx, std::uint32_t) {
                               seen = ctx.load(kFullMask, span, U32::iota());
                             }));
  EXPECT_TRUE(std::isinf(seen[3]));
  EXPECT_EQ(seen[4], 1.0f);
}

TEST(Sanitizer, OffConfigRestoresPermissiveMachine) {
  Device dev;
  dev.sanitizer() = simt::SanitizerConfig::off();
  auto buf = dev.alloc<float>(64);  // would fault under poison
  auto span = buf.span();
  EXPECT_NO_THROW(dev.launch("legacy", 1,
                             [&](WarpContext& ctx, std::uint32_t) {
                               (void)ctx.load(kFullMask, span, U32::iota());
                               ctx.store(kFullMask, span, U32::filled(5), 1.0f);
                             }));
}

TEST(Sanitizer, ConfigToStringNames) {
  EXPECT_EQ(simt::to_string(simt::SanitizerConfig{}),
            "bounds+poison+ecc+lockstep nan=propagate");
  EXPECT_EQ(simt::to_string(simt::SanitizerConfig::off()), "off nan=propagate");
}

// --- DeviceSpan regression --------------------------------------------------

TEST(DeviceSpanRegression, SubspanRejectsOverflowingFirst) {
  DeviceBuffer<float> buf(16);
  const auto span = buf.span();
  // first + count would wrap around std::size_t and pass a naive check.
  EXPECT_THROW(
      (void)span.subspan(std::numeric_limits<std::size_t>::max() - 3, 8),
      PreconditionError);
  EXPECT_THROW((void)span.subspan(10, 7), PreconditionError);
  EXPECT_NO_THROW((void)span.subspan(10, 6));
  EXPECT_NO_THROW((void)span.subspan(16, 0));
}

TEST(DeviceSpanRegression, SubspanCarriesShadow) {
  Device dev;
  auto buf = dev.alloc<float>(64);
  auto sub = buf.span().subspan(8, 8);
  EXPECT_THROW(dev.launch("sub_poison", 1,
                          [&](WarpContext& ctx, std::uint32_t) {
                            (void)ctx.load(simt::first_lanes(8), sub,
                                           U32::iota());
                          }),
               SimtFaultError);
}

// --- fault injector unit behavior -------------------------------------------

TEST(FaultInjectorUnit, PeriodMustBePositive) {
  InjectorConfig cfg;
  cfg.period = 0;
  EXPECT_THROW(FaultInjector{cfg}, PreconditionError);
}

TEST(FaultInjectorUnit, StoresOnlyTakeAddressFaults) {
  InjectorConfig cfg;
  cfg.kind = InjectKind::kBitFlip;
  cfg.period = 1;
  FaultInjector inj(cfg);
  inj.begin_launch("k", 1);
  EXPECT_FALSE(
      inj.on_global_access(0, kFullMask, /*is_load=*/false, /*is_float=*/true)
          .has_value());
  EXPECT_TRUE(
      inj.on_global_access(0, kFullMask, /*is_load=*/true, /*is_float=*/true)
          .has_value());
}

TEST(FaultInjectorUnit, NanClassesNeedFloatLoads) {
  InjectorConfig cfg;
  cfg.kind = InjectKind::kNanInject;
  cfg.period = 1;
  FaultInjector inj(cfg);
  inj.begin_launch("k", 1);
  EXPECT_FALSE(
      inj.on_global_access(0, kFullMask, /*is_load=*/true, /*is_float=*/false)
          .has_value());
  const auto planned =
      inj.on_global_access(0, kFullMask, /*is_load=*/true, /*is_float=*/true);
  ASSERT_TRUE(planned.has_value());
  EXPECT_TRUE(simt::lane_active(kFullMask, planned->lane));
  EXPECT_EQ(inj.fault_count(), 1u);
}

TEST(FaultInjectorUnit, MaxFaultsCapsInjections) {
  InjectorConfig cfg;
  cfg.kind = InjectKind::kOobIndex;
  cfg.period = 1;
  cfg.max_faults = 2;
  FaultInjector inj(cfg);
  inj.begin_launch("k", 1);
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (inj.on_global_access(0, kFullMask, true, true)) ++fired;
  }
  EXPECT_EQ(fired, 2);
}

TEST(FaultInjectorUnit, KernelFilterGatesInjection) {
  InjectorConfig cfg;
  cfg.kind = InjectKind::kOobIndex;
  cfg.period = 1;
  cfg.kernel_filter = "target";
  FaultInjector inj(cfg);
  inj.begin_launch("other", 1);
  EXPECT_FALSE(inj.on_global_access(0, kFullMask, true, true).has_value());
  inj.begin_launch("target", 1);
  EXPECT_TRUE(inj.on_global_access(0, kFullMask, true, true).has_value());
}

}  // namespace
}  // namespace gpuksel

// --- whole-pipeline injection runs ------------------------------------------

namespace gpuksel::knn {
namespace {

struct FaultClass {
  simt::InjectKind kind;
  bool ecc;                ///< device ECC check for this scenario
  NanPolicy policy;        ///< NaN policy for this scenario
  FaultKind expected;      ///< fault kind the sanitizer reports
  const char* name;
};

// Bit flips are caught by the ECC shadow; NaN injection and lane drops (which
// poison the dropped lane with NaN) are caught by the reject policy with ECC
// disabled, exercising the NaN detector itself; OOB indices are caught by the
// always-on bounds check.
const FaultClass kFaultClasses[] = {
    {simt::InjectKind::kBitFlip, true, NanPolicy::kPropagate,
     FaultKind::kEccMismatch, "bit-flip"},
    {simt::InjectKind::kNanInject, false, NanPolicy::kReject,
     FaultKind::kNanDistance, "nan-inject"},
    {simt::InjectKind::kLaneDrop, false, NanPolicy::kReject,
     FaultKind::kNanDistance, "lane-drop"},
    {simt::InjectKind::kOobIndex, true, NanPolicy::kPropagate,
     FaultKind::kOutOfBounds, "oob-index"},
};

class FaultInjectionPipeline : public ::testing::Test {
 protected:
  FaultInjectionPipeline()
      : refs_(make_uniform_dataset(200, 16, 21)),
        queries_(make_uniform_dataset(16, 16, 22)),
        knn_(refs_) {}

  static constexpr std::uint32_t kK = 5;

  Dataset refs_;
  Dataset queries_;
  BruteForceKnn knn_;
};

TEST_F(FaultInjectionPipeline, EveryFaultClassDetectedOrMasked) {
  for (const FaultClass& fc : kFaultClasses) {
    GpuSearchOptions opts;
    opts.nan_policy = fc.policy;

    simt::Device clean_dev;
    clean_dev.sanitizer().ecc = fc.ecc;
    const KnnResult baseline = knn_.search_gpu(clean_dev, queries_, kK, opts);
    ASSERT_TRUE(baseline.faults.empty()) << fc.name;

    int detected = 0;
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
      simt::Device dev;
      dev.sanitizer().ecc = fc.ecc;
      simt::InjectorConfig cfg;
      cfg.kind = fc.kind;
      cfg.seed = seed;
      cfg.period = 1;  // fault the first eligible access
      cfg.max_faults = 1;
      simt::FaultInjector injector(cfg);
      dev.set_fault_injector(&injector);
      try {
        const KnnResult faulted = knn_.search_gpu(dev, queries_, kK, opts);
        // Not detected: the robustness contract demands the fault was masked,
        // i.e. the output is exactly the fault-free output.
        EXPECT_EQ(faulted.neighbors, baseline.neighbors) << fc.name;
      } catch (const SimtFaultError& e) {
        ++detected;
        EXPECT_EQ(e.kind(), fc.expected) << fc.name;
        EXPECT_FALSE(e.kernel().empty()) << fc.name;
        EXPECT_GE(e.instruction(), 1u) << fc.name;
      }
      EXPECT_GE(injector.fault_count(), 1u)
          << fc.name << ": injection never fired — test is vacuous";
    }
    EXPECT_GE(detected, 1) << fc.name << ": no seed produced a detection";
  }
}

TEST_F(FaultInjectionPipeline, HostFallbackAnswersEveryFaultClass) {
  for (const FaultClass& fc : kFaultClasses) {
    GpuSearchOptions opts;
    opts.nan_policy = fc.policy;
    opts.fallback_to_host = true;

    const KnnResult host =
        knn_.search(queries_, kK, Algo::kMergeQueue, fc.policy);

    for (const std::uint64_t seed : {11u, 12u}) {
      simt::Device dev;
      dev.sanitizer().ecc = fc.ecc;
      simt::InjectorConfig cfg;
      cfg.kind = fc.kind;
      cfg.seed = seed;
      cfg.period = 1;
      cfg.max_faults = 1;
      simt::FaultInjector injector(cfg);
      dev.set_fault_injector(&injector);

      const KnnResult result = knn_.search_gpu(dev, queries_, kK, opts);
      ASSERT_TRUE(result.used_host_fallback) << fc.name;
      EXPECT_EQ(result.neighbors, host.neighbors)
          << fc.name << ": fallback must be oracle-correct";
      ASSERT_EQ(result.faults.size(), 1u) << fc.name;
      EXPECT_EQ(result.faults[0].kind, fc.expected) << fc.name;
      EXPECT_FALSE(result.faults[0].kernel.empty()) << fc.name;
    }
  }
}

TEST_F(FaultInjectionPipeline, WithoutFallbackTheFaultPropagates) {
  GpuSearchOptions opts;  // fallback_to_host defaults to false
  simt::Device dev;
  simt::InjectorConfig cfg;
  cfg.kind = simt::InjectKind::kOobIndex;
  cfg.period = 1;
  simt::FaultInjector injector(cfg);
  dev.set_fault_injector(&injector);
  EXPECT_THROW((void)knn_.search_gpu(dev, queries_, kK, opts), SimtFaultError);
}

TEST_F(FaultInjectionPipeline, KernelFilterTargetsOnePhase) {
  GpuSearchOptions opts;
  simt::Device clean_dev;
  const KnnResult baseline = knn_.search_gpu(clean_dev, queries_, kK, opts);

  // A filter that matches no launch: the injector stays silent and the run
  // is bit-identical to fault-free — the "masked" arm of the contract.
  {
    simt::Device dev;
    simt::InjectorConfig cfg;
    cfg.kind = simt::InjectKind::kOobIndex;
    cfg.period = 1;
    cfg.kernel_filter = "no_such_kernel";
    simt::FaultInjector injector(cfg);
    dev.set_fault_injector(&injector);
    const KnnResult result = knn_.search_gpu(dev, queries_, kK, opts);
    EXPECT_EQ(result.neighbors, baseline.neighbors);
    EXPECT_EQ(injector.fault_count(), 0u);
  }
  // Targeting the top-down phase only: the distance and build launches run
  // untouched and the fault surfaces inside hp_topdown.
  {
    simt::Device dev;
    simt::InjectorConfig cfg;
    cfg.kind = simt::InjectKind::kOobIndex;
    cfg.period = 1;
    cfg.kernel_filter = "hp_topdown";
    simt::FaultInjector injector(cfg);
    dev.set_fault_injector(&injector);
    try {
      (void)knn_.search_gpu(dev, queries_, kK, opts);
      FAIL() << "expected SimtFaultError from hp_topdown";
    } catch (const SimtFaultError& e) {
      EXPECT_EQ(e.kernel(), "hp_topdown");
      EXPECT_EQ(e.kind(), FaultKind::kOutOfBounds);
    }
  }
}

TEST_F(FaultInjectionPipeline, InjectionIsDeterministicAcrossRuns) {
  // NaN injection under kSortLast with ECC off does not fault — each injected
  // NaN is remapped to +inf — so the pipeline runs to completion and the
  // whole event log can be compared across two identical runs.
  GpuSearchOptions opts;
  opts.nan_policy = NanPolicy::kSortLast;

  const auto run = [&](simt::FaultInjector& injector) {
    simt::Device dev;
    dev.sanitizer().ecc = false;
    dev.set_fault_injector(&injector);
    return knn_.search_gpu(dev, queries_, kK, opts);
  };

  simt::InjectorConfig cfg;
  cfg.kind = simt::InjectKind::kNanInject;
  cfg.seed = 42;
  cfg.period = 101;
  cfg.max_faults = 5;

  simt::FaultInjector first(cfg);
  simt::FaultInjector second(cfg);
  const KnnResult r1 = run(first);
  const KnnResult r2 = run(second);

  EXPECT_GE(first.fault_count(), 1u) << "period too sparse — nothing injected";
  EXPECT_EQ(first.events(), second.events());
  EXPECT_EQ(r1.neighbors, r2.neighbors);

  simt::InjectorConfig other = cfg;
  other.seed = 43;
  simt::FaultInjector third(other);
  (void)run(third);
  EXPECT_NE(first.events(), third.events());
}

}  // namespace
}  // namespace gpuksel::knn
