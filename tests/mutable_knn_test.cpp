// Tests for the mutable index: the differential contract (search over the
// mutated set is byte-identical to a fresh engine over the logically-current
// rows), upsert/remove semantics, compaction (sync, threshold, async with
// the stale-epoch abort), and the delta-scaling transfer accounting.
#include <gtest/gtest.h>

#include <cstdint>
#include <semaphore>
#include <span>
#include <vector>

#include "knn/batch.hpp"
#include "knn/dataset.hpp"
#include "knn/ivf.hpp"
#include "knn/mutable.hpp"
#include "simt/device.hpp"
#include "util/check.hpp"

namespace gpuksel::knn {
namespace {

std::span<const float> row_of(const Dataset& data, std::uint32_t i) {
  return {data.row(i), data.dim};
}

/// The contract's right-hand side: a fresh exact engine over exactly the
/// rows the mutable index currently serves.
std::vector<std::vector<Neighbor>> fresh_answer(MutableKnn& index,
                                                const Dataset& queries,
                                                std::uint32_t k) {
  simt::Device dev;
  BatchedKnn fresh(index.materialize(), index.options().batch);
  return fresh.search_gpu(dev, queries, k).neighbors;
}

void expect_differential(MutableKnn& index, const Dataset& queries,
                         std::uint32_t k, const char* where) {
  simt::Device dev;
  const auto got = index.search(dev, queries, k);
  EXPECT_EQ(got.neighbors, fresh_answer(index, queries, k)) << where;
  // And the host mirror agrees (the repo-wide host == GPU contract).
  EXPECT_EQ(index.search_host(queries, k).neighbors, got.neighbors) << where;
}

TEST(MutableKnnTest, PureBaseMatchesFreshEngine) {
  MutableKnn index(make_uniform_dataset(120, 6, 31));
  const auto queries = make_uniform_dataset(17, 6, 32);
  expect_differential(index, queries, 5, "pure base");
}

TEST(MutableKnnTest, UpsertsEnterResultsExactly) {
  MutableKnn index(make_uniform_dataset(90, 5, 33));
  const auto extra = make_uniform_dataset(25, 5, 34);
  for (std::uint32_t i = 0; i < extra.count; ++i) {
    index.insert(row_of(extra, i));
  }
  EXPECT_EQ(index.delta_rows(), 25u);
  EXPECT_EQ(index.live_rows(), 115u);
  const auto queries = make_uniform_dataset(13, 5, 35);
  expect_differential(index, queries, 7, "after inserts");
}

TEST(MutableKnnTest, RemovedRowsNeverSurface) {
  MutableKnn index(make_uniform_dataset(80, 4, 36));
  const auto queries = make_uniform_dataset(11, 4, 37);
  // Remove rows that are certainly near the queries: every query's current
  // nearest neighbor.
  simt::Device dev;
  const auto before = index.search(dev, queries, 1);
  const auto& ids = index.live_ids();
  for (const auto& list : before.neighbors) {
    ASSERT_FALSE(list.empty());
    (void)index.remove(ids[list[0].index]);
  }
  EXPECT_GT(index.tombstones(), 0u);
  expect_differential(index, queries, 6, "after removes");
}

TEST(MutableKnnTest, UpsertReplacesExistingId) {
  const auto initial = make_uniform_dataset(40, 3, 38);
  MutableKnn index(initial);
  // Move row id 7 far away: it must vanish from results near its old spot.
  const std::vector<float> far(3, 100.0f);
  index.upsert(7, far);
  EXPECT_EQ(index.live_rows(), 40u);  // a replace is not a net insert
  EXPECT_EQ(index.tombstones(), 1u);
  EXPECT_EQ(index.delta_rows(), 1u);
  Dataset query;
  query.count = 1;
  query.dim = 3;
  query.values.assign(initial.row(7), initial.row(7) + 3);
  const auto res = index.search_host(query, 1);
  const auto& ids = index.live_ids();
  // The old copy is gone; whoever is nearest now, it holds the new value.
  EXPECT_NE(ids[res.neighbors[0][0].index], 7u);
  const auto queries = make_uniform_dataset(9, 3, 39);
  expect_differential(index, queries, 4, "after replace");
}

TEST(MutableKnnTest, RemoveUnknownIdIsFalse) {
  MutableKnn index(make_uniform_dataset(10, 3, 40));
  EXPECT_FALSE(index.remove(1234));
  EXPECT_TRUE(index.remove(3));
  EXPECT_FALSE(index.remove(3));  // already dead
  EXPECT_EQ(index.stats().removes, 1u);
}

TEST(MutableKnnTest, FullyDeletedSetServesEmptyLists) {
  MutableKnn index(make_uniform_dataset(6, 3, 41));
  for (std::uint32_t id = 0; id < 6; ++id) EXPECT_TRUE(index.remove(id));
  EXPECT_EQ(index.live_rows(), 0u);
  const auto queries = make_uniform_dataset(4, 3, 42);
  simt::Device dev;
  const auto res = index.search(dev, queries, 3);
  ASSERT_EQ(res.neighbors.size(), 4u);
  for (const auto& list : res.neighbors) EXPECT_TRUE(list.empty());
  EXPECT_EQ(index.search_host(queries, 3).neighbors, res.neighbors);
}

TEST(MutableKnnTest, KLargerThanLiveReturnsEveryLiveRow) {
  MutableKnn index(make_uniform_dataset(12, 4, 43));
  for (std::uint32_t id = 0; id < 8; ++id) EXPECT_TRUE(index.remove(id));
  const auto extra = make_uniform_dataset(3, 4, 44);
  for (std::uint32_t i = 0; i < extra.count; ++i) index.insert(row_of(extra, i));
  EXPECT_EQ(index.live_rows(), 7u);
  const auto queries = make_uniform_dataset(5, 4, 45);
  simt::Device dev;
  const auto res = index.search(dev, queries, 20);
  for (const auto& list : res.neighbors) EXPECT_EQ(list.size(), 7u);
  expect_differential(index, queries, 20, "k > live");
}

TEST(MutableKnnTest, IvfBaseExactRegimeHoldsTheContract) {
  MutableKnnOptions opts;
  opts.base = MutableBase::kIvf;
  opts.ivf.nlist = 8;
  opts.ivf.nprobe = 8;  // exact regime: every list probed
  MutableKnn index(make_uniform_dataset(150, 5, 46), opts);
  const auto extra = make_uniform_dataset(20, 5, 47);
  for (std::uint32_t i = 0; i < extra.count; ++i) index.insert(row_of(extra, i));
  for (std::uint32_t id = 0; id < 10; ++id) EXPECT_TRUE(index.remove(id));
  const auto queries = make_uniform_dataset(12, 5, 48);
  expect_differential(index, queries, 6, "ivf exact regime");
}

TEST(MutableKnnTest, CompactFoldsDeltaAndTombstonesIntoTheBase) {
  MutableKnn index(make_uniform_dataset(70, 4, 49));
  const auto extra = make_uniform_dataset(15, 4, 50);
  for (std::uint32_t i = 0; i < extra.count; ++i) index.insert(row_of(extra, i));
  for (std::uint32_t id = 0; id < 5; ++id) EXPECT_TRUE(index.remove(id));
  const auto queries = make_uniform_dataset(10, 4, 51);
  const auto before = fresh_answer(index, queries, 5);
  const std::uint64_t gen = index.generation();
  EXPECT_TRUE(index.compact());
  EXPECT_EQ(index.generation(), gen + 1);
  EXPECT_EQ(index.delta_rows(), 0u);
  EXPECT_EQ(index.tombstones(), 0u);
  EXPECT_EQ(index.base_rows(), 80u);
  EXPECT_EQ(index.stats().compactions, 1u);
  // Compaction preserves the logical rows: the answer is unchanged.
  simt::Device dev;
  EXPECT_EQ(index.search(dev, queries, 5).neighbors, before);
  // Ids survive compaction in logical order.
  const auto& ids = index.live_ids();
  EXPECT_EQ(ids.size(), 80u);
  EXPECT_EQ(ids.front(), 5u);  // 0..4 were removed
  // Nothing left to compact.
  EXPECT_FALSE(index.compact());
}

TEST(MutableKnnTest, CompactionRunsOffTheServingDevice) {
  MutableKnnOptions opts;
  opts.base = MutableBase::kIvf;  // the IVF rebuild actually launches kernels
  opts.ivf.nlist = 4;
  opts.ivf.nprobe = 4;
  MutableKnn index(make_uniform_dataset(60, 4, 52), opts);
  const auto extra = make_uniform_dataset(10, 4, 53);
  for (std::uint32_t i = 0; i < extra.count; ++i) index.insert(row_of(extra, i));
  const auto queries = make_uniform_dataset(5, 4, 84);
  simt::Device dev;
  (void)index.search(dev, queries, 3);
  const std::uint64_t instr = dev.cumulative().instructions;
  const std::uint64_t h2d = dev.transfers().bytes_h2d;
  EXPECT_TRUE(index.compact());
  // The serving device saw neither a launch nor a byte from the rebuild;
  // the training work happened on the private compaction device.
  EXPECT_EQ(dev.cumulative().instructions, instr);
  EXPECT_EQ(dev.transfers().bytes_h2d, h2d);
  EXPECT_GT(index.compaction_device().cumulative().instructions, 0u);
}

TEST(MutableKnnTest, MaybeCompactHonorsThresholds) {
  MutableKnnOptions opts;
  opts.min_compact_rows = 16;
  opts.max_delta_fraction = 0.25;
  MutableKnn index(make_uniform_dataset(30, 3, 54), opts);
  const auto extra = make_uniform_dataset(20, 3, 55);
  // Below every threshold: no compaction.
  index.insert(row_of(extra, 0));
  EXPECT_FALSE(index.maybe_compact());
  // Push the delta fraction over 25%.
  for (std::uint32_t i = 1; i < 12; ++i) index.insert(row_of(extra, i));
  EXPECT_TRUE(index.maybe_compact());
  EXPECT_EQ(index.delta_rows(), 0u);
  EXPECT_EQ(index.stats().compactions, 1u);
}

TEST(MutableKnnTest, MinCompactRowsSuppressesSmallSets) {
  MutableKnnOptions opts;
  opts.min_compact_rows = 1000;
  MutableKnn index(make_uniform_dataset(20, 3, 56), opts);
  const auto extra = make_uniform_dataset(15, 3, 57);
  for (std::uint32_t i = 0; i < extra.count; ++i) index.insert(row_of(extra, i));
  EXPECT_FALSE(index.maybe_compact());
  EXPECT_EQ(index.delta_rows(), 15u);
}

TEST(MutableKnnTest, AsyncCompactionAdoptsWhenNothingMutated) {
  MutableKnn index(make_uniform_dataset(50, 4, 58));
  const auto extra = make_uniform_dataset(10, 4, 59);
  for (std::uint32_t i = 0; i < extra.count; ++i) index.insert(row_of(extra, i));
  ASSERT_TRUE(index.compact_async());
  index.finish_compaction();
  EXPECT_EQ(index.stats().compactions, 1u);
  EXPECT_EQ(index.delta_rows(), 0u);
  const auto queries = make_uniform_dataset(8, 4, 60);
  expect_differential(index, queries, 5, "after async compaction");
}

TEST(MutableKnnTest, AsyncCompactionAbortsWhenAMutationLands) {
  MutableKnn index(make_uniform_dataset(50, 4, 61));
  const auto extra = make_uniform_dataset(12, 4, 62);
  for (std::uint32_t i = 0; i + 1 < extra.count; ++i) {
    index.insert(row_of(extra, i));
  }
  // Hold the rebuilt snapshot back until the mutation has landed, pinning
  // the mutation-before-publication interleaving deterministically.
  std::binary_semaphore publish_gate{0};
  index.set_rebuild_hook([&publish_gate] { publish_gate.acquire(); });
  ASSERT_TRUE(index.compact_async());
  index.insert(row_of(extra, extra.count - 1));
  publish_gate.release();
  index.finish_compaction();
  EXPECT_EQ(index.stats().compactions, 0u);
  EXPECT_EQ(index.stats().compactions_aborted, 1u);
  EXPECT_EQ(index.delta_rows(), 12u);  // nothing was folded
  const auto queries = make_uniform_dataset(8, 4, 63);
  expect_differential(index, queries, 5, "after aborted compaction");
}

TEST(MutableKnnTest, DeltaBytesScaleWithTheDeltaNotTheBase) {
  // Two indexes with very different base sizes pay *identical* upload bytes
  // across the upsert/query loop: the base never moves over the link again.
  std::vector<std::uint64_t> loop_bytes;
  for (const std::uint32_t base_rows : {64u, 1024u}) {
    MutableKnn index(make_uniform_dataset(base_rows, 8, 64));
    const auto queries = make_uniform_dataset(4, 8, 65);
    simt::Device dev;
    (void)index.search(dev, queries, 3);  // base upload happens here
    const auto extra = make_uniform_dataset(6, 8, 66);
    const std::uint64_t h2d_before = dev.transfers().bytes_h2d;
    for (std::uint32_t i = 0; i < extra.count; ++i) {
      index.insert(row_of(extra, i));
      (void)index.search(dev, queries, 3);
    }
    const MutableStats s = index.stats();
    // Every appended row crossed once (8 floats), nothing else from the
    // delta path; the identity ties the meter to the sync counters.
    EXPECT_EQ(s.delta_bytes_uploaded,
              4u * (s.delta_rows_synced * 8u + s.tombstone_words_synced))
        << "base_rows=" << base_rows;
    EXPECT_EQ(s.delta_rows_synced, 6u) << "base_rows=" << base_rows;
    EXPECT_EQ(s.tombstone_words_synced, 0u);
    loop_bytes.push_back(dev.transfers().bytes_h2d - h2d_before);
  }
  // Query uploads and merge slabs are delta- and k-sized, so the marginal
  // cost of serving upserts is independent of the base row count.
  ASSERT_EQ(loop_bytes.size(), 2u);
  EXPECT_EQ(loop_bytes[0], loop_bytes[1]);
}

TEST(MutableKnnTest, TombstoneSyncIsOneWordPerKill) {
  MutableKnn index(make_uniform_dataset(40, 4, 67));
  const auto queries = make_uniform_dataset(3, 4, 68);
  simt::Device dev;
  (void)index.search(dev, queries, 2);
  EXPECT_TRUE(index.remove(5));
  (void)index.search(dev, queries, 2);
  EXPECT_TRUE(index.remove(9));
  EXPECT_TRUE(index.remove(11));
  (void)index.search(dev, queries, 2);
  const MutableStats s = index.stats();
  EXPECT_EQ(s.tombstone_words_synced, 3u);
  EXPECT_EQ(s.delta_bytes_uploaded,
            4u * (s.delta_rows_synced * 4u + s.tombstone_words_synced));
}

TEST(MutableKnnTest, ServingReusesPooledBlocksAcrossCompaction) {
  MutableKnn index(make_uniform_dataset(60, 4, 69));
  const auto queries = make_uniform_dataset(6, 4, 70);
  const auto extra = make_uniform_dataset(8, 4, 71);
  simt::Device dev;
  for (std::uint32_t i = 0; i < extra.count; ++i) index.insert(row_of(extra, i));
  (void)index.search(dev, queries, 4);
  EXPECT_TRUE(index.compact());
  for (std::uint32_t i = 0; i < extra.count; ++i) {
    index.upsert(1000 + i, row_of(extra, i));
  }
  (void)index.search(dev, queries, 4);
  // The new generation's delta shard and merge slabs landed in recycled
  // blocks released by the previous generation.
  EXPECT_GT(dev.pool().stats().blocks_reused, 0u);
  const auto& p = dev.pool().stats();
  EXPECT_EQ(p.bytes_requested,
            p.bytes_served_from_pool + p.bytes_freshly_allocated);
}

TEST(MutableKnnTest, RejectsMalformedInput) {
  MutableKnn index(make_uniform_dataset(10, 4, 72));
  const std::vector<float> short_row(3, 0.0f);
  EXPECT_THROW(index.upsert(0, short_row), PreconditionError);
  simt::Device dev;
  const auto queries = make_uniform_dataset(2, 4, 73);
  EXPECT_THROW((void)index.search(dev, queries, 0), PreconditionError);
  const auto wrong_dim = make_uniform_dataset(2, 5, 74);
  EXPECT_THROW((void)index.search(dev, wrong_dim, 3), PreconditionError);
  EXPECT_THROW(MutableKnn(Dataset{}, {}), PreconditionError);
}

}  // namespace
}  // namespace gpuksel::knn
