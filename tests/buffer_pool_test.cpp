// Tests for the device buffer pool: the exactly-partitioning accounting
// contract, best-fit block reuse, trim, and the Device integration (pooled
// uploads charge the link like plain uploads but recycle storage).
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "simt/buffer_pool.hpp"
#include "simt/device.hpp"

namespace gpuksel::simt {
namespace {

/// The accounting contract: every request lands on exactly one side.
void expect_partition(const PoolStats& s) {
  EXPECT_EQ(s.bytes_requested,
            s.bytes_served_from_pool + s.bytes_freshly_allocated);
  EXPECT_LE(s.blocks_reused, s.blocks_acquired);
}

TEST(BufferPoolTest, FreshAcquisitionIsAccountedAsFresh) {
  BufferPool pool;
  auto buf = pool.acquire<float>(100, 1.5f);
  EXPECT_EQ(buf.size(), 100u);
  EXPECT_EQ(buf.host()[99], 1.5f);
  const PoolStats& s = pool.stats();
  EXPECT_EQ(s.bytes_requested, 400u);
  EXPECT_EQ(s.bytes_freshly_allocated, 400u);
  EXPECT_EQ(s.bytes_served_from_pool, 0u);
  EXPECT_EQ(s.blocks_acquired, 1u);
  EXPECT_EQ(s.blocks_reused, 0u);
  expect_partition(s);
}

TEST(BufferPoolTest, ReleasedBlockIsReusedBestFit) {
  BufferPool pool;
  auto big = pool.acquire<float>(128);
  auto small = pool.acquire<float>(32);
  pool.release(std::move(big));
  pool.release(std::move(small));
  EXPECT_EQ(pool.free_blocks(), 2u);
  EXPECT_EQ(pool.stats().blocks_released, 2u);
  // 20 elements fit both blocks: best fit picks the 32-capacity one.
  auto reused = pool.acquire<float>(20, 7.0f);
  EXPECT_EQ(reused.size(), 20u);
  EXPECT_EQ(reused.host()[0], 7.0f);
  EXPECT_EQ(pool.free_blocks(), 1u);
  const PoolStats& s = pool.stats();
  EXPECT_EQ(s.blocks_reused, 1u);
  EXPECT_EQ(s.bytes_served_from_pool, 20u * sizeof(float));
  // The remaining free block is the 128-capacity one.
  EXPECT_EQ(s.bytes_resident, 128u * sizeof(float));
  expect_partition(s);
}

TEST(BufferPoolTest, TooSmallFreeBlocksAreNotReused) {
  BufferPool pool;
  pool.release(pool.acquire<float>(16));
  auto buf = pool.acquire<float>(64);
  const PoolStats& s = pool.stats();
  EXPECT_EQ(s.blocks_reused, 0u);
  EXPECT_EQ(s.bytes_freshly_allocated, (16u + 64u) * sizeof(float));
  EXPECT_EQ(pool.free_blocks(), 1u);  // the small block stays available
  expect_partition(s);
}

TEST(BufferPoolTest, FloatAndU32FreeListsAreIndependent) {
  BufferPool pool;
  pool.release(pool.acquire<float>(64));
  // A u32 request must not consume the float block.
  auto u = pool.acquire<std::uint32_t>(64, 3u);
  EXPECT_EQ(u.host()[63], 3u);
  EXPECT_EQ(pool.stats().blocks_reused, 0u);
  EXPECT_EQ(pool.free_blocks(), 1u);
  expect_partition(pool.stats());
}

TEST(BufferPoolTest, TrimDropsEveryFreeBlockAndReportsBytes) {
  BufferPool pool;
  pool.release(pool.acquire<float>(100));
  pool.release(pool.acquire<std::uint32_t>(50));
  const std::uint64_t resident = pool.stats().bytes_resident;
  EXPECT_GE(resident, 100u * sizeof(float) + 50u * sizeof(std::uint32_t));
  EXPECT_EQ(pool.trim(), resident);
  EXPECT_EQ(pool.free_blocks(), 0u);
  EXPECT_EQ(pool.stats().bytes_resident, 0u);
  EXPECT_EQ(pool.stats().blocks_trimmed, 2u);
  // A trimmed pool serves the next request fresh.
  auto buf = pool.acquire<float>(10);
  EXPECT_EQ(pool.stats().blocks_reused, 0u);
  expect_partition(pool.stats());
}

TEST(BufferPoolTest, ReleasingAnEmptyBufferIsIgnored) {
  BufferPool pool;
  pool.release(DeviceBuffer<float>{});
  EXPECT_EQ(pool.free_blocks(), 0u);
  EXPECT_EQ(pool.stats().blocks_released, 0u);
}

TEST(BufferPoolTest, FillCopiesHostContentsIntoRecycledBlock) {
  BufferPool pool;
  pool.release(pool.acquire<float>(8, -1.0f));
  std::vector<float> host(8);
  std::iota(host.begin(), host.end(), 0.0f);
  auto buf = pool.fill(std::span<const float>(host));
  EXPECT_EQ(pool.stats().blocks_reused, 1u);
  // Recycling is storage-only: the old contents are fully overwritten.
  for (std::size_t i = 0; i < host.size(); ++i) {
    EXPECT_EQ(buf.host()[i], static_cast<float>(i));
  }
  expect_partition(pool.stats());
}

TEST(DevicePoolTest, PooledUploadChargesTheLinkAndRecyclesStorage) {
  Device dev;
  std::vector<float> a(256, 1.0f);
  std::vector<float> b(256, 2.0f);
  auto d_a = dev.upload_pooled(std::span<const float>(a));
  EXPECT_EQ(dev.transfers().bytes_h2d, 256u * sizeof(float));
  dev.release(std::move(d_a));
  auto d_b = dev.upload_pooled(std::span<const float>(b));
  // The second upload charges the link like the first but reuses the block.
  EXPECT_EQ(dev.transfers().bytes_h2d, 2u * 256u * sizeof(float));
  EXPECT_EQ(dev.pool().stats().blocks_reused, 1u);
  EXPECT_EQ(dev.download(d_b), b);
}

TEST(DevicePoolTest, AllocPooledDoesNotChargeTheLink) {
  Device dev;
  auto buf = dev.alloc_pooled<std::uint32_t>(64, 1u);
  EXPECT_EQ(dev.transfers().bytes_h2d, 0u);
  EXPECT_EQ(buf.size(), 64u);
  EXPECT_EQ(dev.download(buf), std::vector<std::uint32_t>(64, 1u));
}

TEST(DevicePoolTest, UploadIntoChargesOnlyTheCopiedBytes) {
  Device dev;
  auto buf = dev.alloc_pooled<float>(100, 0.0f);
  const std::vector<float> patch{5.0f, 6.0f, 7.0f};
  dev.upload_into(buf, 10, std::span<const float>(patch));
  EXPECT_EQ(dev.transfers().bytes_h2d, 3u * sizeof(float));
  const auto host = dev.download(buf);
  EXPECT_EQ(host[9], 0.0f);
  EXPECT_EQ(host[10], 5.0f);
  EXPECT_EQ(host[12], 7.0f);
  EXPECT_EQ(host[13], 0.0f);
}

TEST(DevicePoolTest, UploadIntoOutOfRangeIsAnError) {
  Device dev;
  auto buf = dev.alloc_pooled<float>(4, 0.0f);
  const std::vector<float> patch{1.0f, 2.0f};
  EXPECT_THROW(dev.upload_into(buf, 3, std::span<const float>(patch)),
               PreconditionError);
}

}  // namespace
}  // namespace gpuksel::simt
