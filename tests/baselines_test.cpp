// Tests for the baseline algorithms: CPU heap selection, radix select,
// bucket select, Truncated Bitonic Sort and Quick Multi-Select.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "baselines/bucket_select.hpp"
#include "baselines/cpu_select.hpp"
#include "baselines/qms.hpp"
#include "baselines/radix_select.hpp"
#include "baselines/tbs.hpp"
#include "core/kselect.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace gpuksel::baselines {
namespace {

std::vector<float> query_major_matrix(std::uint32_t q, std::uint32_t n,
                                      std::uint64_t seed) {
  return uniform_floats(std::size_t{q} * n, seed);
}

std::vector<std::vector<Neighbor>> oracle_all(const std::vector<float>& m,
                                              std::uint32_t q, std::uint32_t n,
                                              std::uint32_t k) {
  std::vector<std::vector<Neighbor>> out(q);
  for (std::uint32_t qq = 0; qq < q; ++qq) {
    out[qq] = select_k_oracle(
        std::span<const float>(m.data() + std::size_t{qq} * n, n), k);
  }
  return out;
}

// --- CPU heap -----------------------------------------------------------------

TEST(CpuSelect, SingleListMatchesOracle) {
  const auto data = uniform_floats(5000, 1);
  EXPECT_EQ(cpu_heap_select(data, 64), select_k_oracle(data, 64));
}

TEST(CpuSelect, SmallAndEdgeCases) {
  const auto data = uniform_floats(10, 2);
  EXPECT_EQ(cpu_heap_select(data, 1), select_k_oracle(data, 1));
  EXPECT_EQ(cpu_heap_select(data, 10), select_k_oracle(data, 10));
  EXPECT_EQ(cpu_heap_select(data, 99), select_k_oracle(data, 99));
  EXPECT_THROW(cpu_heap_select(data, 0), PreconditionError);
}

TEST(CpuSelect, AllQueriesParallelMatchesOracle) {
  const std::uint32_t q = 37, n = 500, k = 16;
  const auto matrix = query_major_matrix(q, n, 3);
  EXPECT_EQ(cpu_select_all(matrix, q, n, k, 4), oracle_all(matrix, q, n, k));
  EXPECT_EQ(cpu_select_all(matrix, q, n, k, 1), oracle_all(matrix, q, n, k));
}

// --- float<->ordered mapping ----------------------------------------------------

TEST(OrderedFloat, PreservesOrdering) {
  const float values[] = {-100.0f, -1.5f, -0.0f, 0.0f, 1e-20f, 0.5f, 1e20f};
  for (std::size_t i = 0; i + 1 < std::size(values); ++i) {
    EXPECT_LE(float_to_ordered(values[i]), float_to_ordered(values[i + 1]))
        << values[i] << " vs " << values[i + 1];
  }
}

TEST(OrderedFloat, RoundTrips) {
  for (float v : {-3.25f, 0.0f, 7.5f, 1e-10f, -1e10f}) {
    EXPECT_EQ(ordered_to_float(float_to_ordered(v)), v);
  }
}

// --- radix / bucket select ------------------------------------------------------

struct ScalarCase {
  std::uint32_t k;
  std::size_t n;
};

class ScalarBaselineTest : public ::testing::TestWithParam<ScalarCase> {};

TEST_P(ScalarBaselineTest, RadixMatchesOracle) {
  const auto& p = GetParam();
  const auto data = uniform_floats(p.n, 40 + p.k);
  EXPECT_EQ(radix_select(data, p.k), select_k_oracle(data, p.k));
}

TEST_P(ScalarBaselineTest, BucketMatchesOracle) {
  const auto& p = GetParam();
  const auto data = uniform_floats(p.n, 41 + p.k);
  EXPECT_EQ(bucket_select(data, p.k), select_k_oracle(data, p.k));
}

INSTANTIATE_TEST_SUITE_P(Grid, ScalarBaselineTest,
                         ::testing::Values(ScalarCase{1, 10},
                                           ScalarCase{8, 100},
                                           ScalarCase{64, 10000},
                                           ScalarCase{500, 600},
                                           ScalarCase{1024, 1 << 15}),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param.k) + "_n" +
                                  std::to_string(info.param.n);
                         });

TEST(RadixSelect, DuplicateHeavyInputExact) {
  Rng rng(5);
  std::vector<float> data(8192);
  for (auto& v : data) v = static_cast<float>(rng.uniform_below(4)) * 0.1f;
  EXPECT_EQ(radix_select(data, 100), select_k_oracle(data, 100));
}

TEST(BucketSelect, ConstantInputFallsBackToSort) {
  std::vector<float> data(5000, 0.5f);
  EXPECT_EQ(bucket_select(data, 32), select_k_oracle(data, 32));
}

TEST(BucketSelect, SkewedDistributionStillExact) {
  // 99% of mass at one value, the k smallest hidden in the tail.
  Rng rng(6);
  std::vector<float> data(10000, 0.9f);
  for (int i = 0; i < 100; ++i) {
    data[rng.uniform_below(10000)] = rng.uniform_float() * 0.01f;
  }
  EXPECT_EQ(bucket_select(data, 64), select_k_oracle(data, 64));
}

// --- TBS ------------------------------------------------------------------------

struct WarpBaselineCase {
  std::uint32_t k;
  std::uint32_t q;
  std::uint32_t n;
};

class TbsTest : public ::testing::TestWithParam<WarpBaselineCase> {};

TEST_P(TbsTest, MatchesOracle) {
  const auto& p = GetParam();
  const auto matrix = query_major_matrix(p.q, p.n, 70 + p.k);
  simt::Device dev;
  const auto out = tbs_select(dev, matrix, p.q, p.n, p.k);
  EXPECT_EQ(out.neighbors, oracle_all(matrix, p.q, p.n, p.k));
}

INSTANTIATE_TEST_SUITE_P(Grid, TbsTest,
                         ::testing::Values(WarpBaselineCase{1, 8, 100},
                                           WarpBaselineCase{16, 8, 1000},
                                           WarpBaselineCase{33, 4, 500},
                                           WarpBaselineCase{128, 4, 2000},
                                           WarpBaselineCase{512, 2, 1024},
                                           WarpBaselineCase{8, 1, 7}),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param.k) + "_q" +
                                  std::to_string(info.param.q) + "_n" +
                                  std::to_string(info.param.n);
                         });

TEST(Tbs, RejectsOversizedK) {
  const auto matrix = query_major_matrix(1, 2048, 71);
  simt::Device dev;
  EXPECT_THROW((void)tbs_select(dev, matrix, 1, 2048, 513), PreconditionError);
}

TEST(Tbs, SynchronousOperationHasPerfectEfficiency) {
  // TBS's selling point: no divergence at all.
  const auto matrix = query_major_matrix(4, 2048, 72);
  simt::Device dev;
  const auto out = tbs_select(dev, matrix, 4, 2048, 64);
  EXPECT_GT(out.metrics.simt_efficiency(), 0.99);
}

// --- QMS ------------------------------------------------------------------------

class QmsTest : public ::testing::TestWithParam<WarpBaselineCase> {};

TEST_P(QmsTest, MatchesOracle) {
  const auto& p = GetParam();
  const auto matrix = query_major_matrix(p.q, p.n, 80 + p.k);
  simt::Device dev;
  const auto out = qms_select(dev, matrix, p.q, p.n, p.k);
  EXPECT_EQ(out.neighbors, oracle_all(matrix, p.q, p.n, p.k));
}

INSTANTIATE_TEST_SUITE_P(Grid, QmsTest,
                         ::testing::Values(WarpBaselineCase{1, 8, 100},
                                           WarpBaselineCase{16, 8, 1000},
                                           WarpBaselineCase{33, 4, 500},
                                           WarpBaselineCase{128, 4, 2000},
                                           WarpBaselineCase{1024, 2, 4096},
                                           WarpBaselineCase{8, 1, 7},
                                           WarpBaselineCase{50, 2, 50}),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param.k) + "_q" +
                                  std::to_string(info.param.q) + "_n" +
                                  std::to_string(info.param.n);
                         });

TEST(Qms, DuplicateHeavyInputExact) {
  Rng rng(7);
  std::vector<float> matrix(4 * 3000);
  for (auto& v : matrix) v = static_cast<float>(rng.uniform_below(5)) * 0.1f;
  simt::Device dev;
  const auto out = qms_select(dev, matrix, 4, 3000, 64);
  EXPECT_EQ(out.neighbors, oracle_all(matrix, 4, 3000, 64));
}

TEST(Qms, SortedAndReverseSortedInputs) {
  // Median-of-three handles pre-sorted data without quadratic blowup; just
  // verify exactness here.
  std::vector<float> matrix(2 * 4096);
  for (std::uint32_t i = 0; i < 4096; ++i) {
    matrix[i] = static_cast<float>(i);
    matrix[4096 + i] = static_cast<float>(4096 - i);
  }
  simt::Device dev;
  const auto out = qms_select(dev, matrix, 2, 4096, 32);
  EXPECT_EQ(out.neighbors, oracle_all(matrix, 2, 4096, 32));
}

}  // namespace
}  // namespace gpuksel::baselines
