// Tests for the Hierarchical Partition kernels: level structure helpers,
// kernel-vs-scalar bit-identity across queue/buffer configurations and group
// sizes, and the build/search metric split.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/kernels/hp_kernels.hpp"
#include "core/kselect.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace gpuksel::kernels {
namespace {

std::vector<float> make_matrix(std::uint32_t q, std::uint32_t n,
                               MatrixLayout layout, std::uint64_t seed) {
  std::vector<float> out(std::size_t{q} * n);
  for (std::uint32_t qq = 0; qq < q; ++qq) {
    const auto row = uniform_floats(n, seed * 2654435761u + qq);
    for (std::uint32_t r = 0; r < n; ++r) {
      const std::size_t idx = layout == MatrixLayout::kReferenceMajor
                                  ? std::size_t{r} * q + qq
                                  : std::size_t{qq} * n + r;
      out[idx] = row[r];
    }
  }
  return out;
}

std::vector<std::vector<Neighbor>> oracle_all(const std::vector<float>& m,
                                              std::uint32_t q, std::uint32_t n,
                                              MatrixLayout layout,
                                              std::uint32_t k) {
  std::vector<std::vector<Neighbor>> out(q);
  std::vector<float> row(n);
  for (std::uint32_t qq = 0; qq < q; ++qq) {
    for (std::uint32_t r = 0; r < n; ++r) {
      row[r] = layout == MatrixLayout::kReferenceMajor
                   ? m[std::size_t{r} * q + qq]
                   : m[std::size_t{qq} * n + r];
    }
    out[qq] = select_k_oracle(row, k);
  }
  return out;
}

TEST(HpLevelSizes, MatchesCeilDivisionChain) {
  EXPECT_EQ(hp_level_sizes(100, 4, 3),
            (std::vector<std::uint32_t>{100, 25, 7, 2}));
  EXPECT_EQ(hp_level_sizes(16, 4, 16), (std::vector<std::uint32_t>{16}));
  EXPECT_EQ(hp_level_sizes(17, 4, 16), (std::vector<std::uint32_t>{17, 5}));
}

TEST(HpLevelSizes, BadParamsThrow) {
  EXPECT_THROW(hp_level_sizes(10, 1, 2), PreconditionError);
  EXPECT_THROW(hp_level_sizes(10, 4, 0), PreconditionError);
}

TEST(HpExtraElements, MatchesPaperBound) {
  // ~ N/(G-1) with per-level ceil slack.
  const auto extra = hp_extra_elements(1 << 15, 4, 256);
  EXPECT_NEAR(static_cast<double>(extra), (1 << 15) / 3.0, 64.0);
}

struct HpKernelCase {
  QueueKind queue;
  BufferMode buffer;
  std::uint32_t group;
  std::uint32_t k;
  std::uint32_t q;
  std::uint32_t n;
};

class HpKernelTest : public ::testing::TestWithParam<HpKernelCase> {};

TEST_P(HpKernelTest, MatchesScalarOracle) {
  const auto& p = GetParam();
  SelectConfig cfg;
  cfg.queue = p.queue;
  cfg.buffer = p.buffer;
  const auto matrix = make_matrix(p.q, p.n, cfg.layout, 60);
  simt::Device dev;
  const auto out = hp_select(dev, matrix, p.q, p.n, p.k, cfg, p.group);
  EXPECT_EQ(out.neighbors, oracle_all(matrix, p.q, p.n, cfg.layout, p.k));
}

std::vector<HpKernelCase> hp_kernel_cases() {
  std::vector<HpKernelCase> cases;
  for (QueueKind queue :
       {QueueKind::kInsertion, QueueKind::kHeap, QueueKind::kMerge}) {
    for (BufferMode mode : {BufferMode::kNone, BufferMode::kFullSorted}) {
      for (std::uint32_t g : {2u, 4u, 8u}) {
        cases.push_back({queue, mode, g, 16, 48, 1200});
      }
    }
  }
  // k values around level boundaries, ragged tails, odd query counts.
  cases.push_back({QueueKind::kMerge, BufferMode::kFull, 4, 1, 33, 997});
  cases.push_back({QueueKind::kMerge, BufferMode::kNone, 6, 64, 17, 777});
  cases.push_back({QueueKind::kInsertion, BufferMode::kBufferOnly, 3, 8, 40, 444});
  // Trivial hierarchy: n <= k falls back to the flat kernel.
  cases.push_back({QueueKind::kHeap, BufferMode::kNone, 4, 64, 40, 50});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, HpKernelTest, ::testing::ValuesIn(hp_kernel_cases()),
    [](const auto& info) {
      std::string name = std::string(queue_kind_name(info.param.queue)) + "_" +
                         std::string(buffer_mode_name(info.param.buffer)) +
                         "_g" + std::to_string(info.param.group) + "_k" +
                         std::to_string(info.param.k) + "_q" +
                         std::to_string(info.param.q) + "_n" +
                         std::to_string(info.param.n);
      std::string clean;
      for (char c : name) {
        clean += (c == '+') ? 'P' : c;
      }
      return clean;
    });

TEST(HpKernelMetrics, BuildIsChargedSeparatelyAndIsRegular) {
  SelectConfig cfg;
  const auto matrix = make_matrix(64, 4096, cfg.layout, 61);
  simt::Device dev;
  const auto out = hp_select(dev, matrix, 64, 4096, 32, cfg, 4);
  EXPECT_GT(out.build_metrics.instructions, 0u);
  EXPECT_GT(out.metrics.instructions, 0u);
  // Construction is streaming and lockstep: near-perfect SIMT efficiency.
  EXPECT_GT(out.build_metrics.simt_efficiency(), 0.95);
}

TEST(HpKernelMetrics, SearchVisitsFarLessThanFlatScan) {
  SelectConfig cfg;
  const auto matrix = make_matrix(64, 1 << 14, cfg.layout, 62);
  simt::Device dev;
  const auto flat = flat_select(dev, matrix, 64, 1 << 14, 32, cfg);
  const auto hp = hp_select(dev, matrix, 64, 1 << 14, 32, cfg, 4);
  const auto hp_total =
      hp.metrics.instructions + hp.build_metrics.instructions;
  EXPECT_LT(hp_total, flat.metrics.instructions);
  // The search phase alone costs well under half the flat scan (the paper's
  // Fig. 7/8 improvements at comparable parameters are 3-6x).
  EXPECT_LT(hp.metrics.instructions, flat.metrics.instructions / 2);
}

TEST(HpKernel, TrivialHierarchyEqualsFlatKernel) {
  SelectConfig cfg;
  const auto matrix = make_matrix(32, 20, cfg.layout, 63);
  simt::Device d1, d2;
  const auto flat = flat_select(d1, matrix, 32, 20, 32, cfg);
  const auto hp = hp_select(d2, matrix, 32, 20, 32, cfg, 4);
  EXPECT_EQ(hp.neighbors, flat.neighbors);
  EXPECT_EQ(hp.build_metrics.instructions, 0u);
}

TEST(HpKernel, TwoPointerAndRowMajorVariantsMatchOracle) {
  const auto matrix = make_matrix(40, 1500, MatrixLayout::kReferenceMajor, 64);
  simt::Device dev;
  const auto expected = oracle_all(matrix, 40, 1500, MatrixLayout::kReferenceMajor, 20);
  {
    SelectConfig cfg;
    cfg.queue = QueueKind::kMerge;
    cfg.merge_strategy = MergeStrategy::kTwoPointer;
    EXPECT_EQ(hp_select(dev, matrix, 40, 1500, 20, cfg, 4).neighbors, expected);
  }
  {
    SelectConfig cfg;
    cfg.queue_layout = QueueLayout::kRowMajor;
    cfg.cache_head = false;
    EXPECT_EQ(hp_select(dev, matrix, 40, 1500, 20, cfg, 4).neighbors, expected);
  }
}

TEST(HpKernel, HeavyTiesStillExact) {
  // Few distinct values force maximal tie pressure through group minima and
  // queue comparisons.
  const std::uint32_t q = 40, n = 2000, k = 24;
  std::vector<float> matrix(std::size_t{q} * n);
  Rng rng(99);
  for (auto& v : matrix) {
    v = static_cast<float>(rng.uniform_below(3)) * 0.25f;
  }
  SelectConfig cfg;
  simt::Device dev;
  const auto out = hp_select(dev, matrix, q, n, k, cfg, 4);
  EXPECT_EQ(out.neighbors, oracle_all(matrix, q, n, cfg.layout, k));
}

}  // namespace
}  // namespace gpuksel::kernels
