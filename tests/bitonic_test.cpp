// Tests for the bitonic merge networks, including the Reverse Bitonic Merge
// (Fig. 2b) the Merge Queue depends on.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/queues/bitonic.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace gpuksel {
namespace {

std::vector<Neighbor> random_entries(std::size_t n, std::uint64_t seed) {
  const auto vals = uniform_floats(n, seed);
  std::vector<Neighbor> out(n);
  for (std::uint32_t i = 0; i < n; ++i) out[i] = Neighbor{vals[i], i};
  return out;
}

bool is_descending(const std::vector<Neighbor>& v) {
  return std::is_sorted(v.begin(), v.end(),
                        [](const Neighbor& a, const Neighbor& b) {
                          return b < a;
                        });
}

TEST(CompareExchange, PutsLargerFirst) {
  std::vector<Neighbor> v{{1.0f, 0}, {2.0f, 1}};
  EXPECT_TRUE(compare_exchange_desc(v, 0, 1));
  EXPECT_EQ(v[0].dist, 2.0f);
  EXPECT_FALSE(compare_exchange_desc(v, 0, 1));  // already ordered
}

TEST(CompareExchange, CounterRecordsBothSlotsOnSwap) {
  UpdateCounter c(2);
  std::vector<Neighbor> v{{1.0f, 0}, {2.0f, 1}};
  compare_exchange_desc(v, 0, 1, &c);
  EXPECT_EQ(c.total(), 2u);
  compare_exchange_desc(v, 0, 1, &c);  // no swap, no writes
  EXPECT_EQ(c.total(), 2u);
}

class ReverseMergeSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ReverseMergeSizes, MergesTwoDescendingHalves) {
  const std::size_t n = GetParam();
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    auto v = random_entries(n, 100 + seed);
    const std::size_t half = n / 2;
    std::sort(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(half),
              [](const Neighbor& a, const Neighbor& b) { return b < a; });
    std::sort(v.begin() + static_cast<std::ptrdiff_t>(half), v.end(),
              [](const Neighbor& a, const Neighbor& b) { return b < a; });
    auto expected = v;
    std::sort(expected.begin(), expected.end(),
              [](const Neighbor& a, const Neighbor& b) { return b < a; });
    reverse_bitonic_merge_descending(v);
    EXPECT_EQ(v, expected) << "n=" << n << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, ReverseMergeSizes,
                         ::testing::Values(2, 4, 8, 16, 32, 64, 128, 256, 512,
                                           1024));

TEST(ReverseMerge, NonPowerOfTwoThrows) {
  auto v = random_entries(6, 1);
  EXPECT_THROW(reverse_bitonic_merge_descending(v), PreconditionError);
}

TEST(ReverseMerge, DuplicateValuesStayConsistent) {
  // All-equal distances: ordering falls back to indices; the network must
  // still produce a strictly (dist, index)-descending output.
  std::vector<Neighbor> v(16);
  for (std::uint32_t i = 0; i < 16; ++i) v[i] = Neighbor{0.5f, i};
  // halves descending by index
  std::vector<Neighbor> arranged{{0.5f, 7}, {0.5f, 6}, {0.5f, 5}, {0.5f, 4},
                                 {0.5f, 3}, {0.5f, 2}, {0.5f, 1}, {0.5f, 0},
                                 {0.5f, 15}, {0.5f, 14}, {0.5f, 13}, {0.5f, 12},
                                 {0.5f, 11}, {0.5f, 10}, {0.5f, 9}, {0.5f, 8}};
  reverse_bitonic_merge_descending(arranged);
  EXPECT_TRUE(is_descending(arranged));
}

TEST(BitonicMerge, MergesBitonicSequence) {
  // Ascending then descending = bitonic.
  std::vector<Neighbor> v;
  for (std::uint32_t i = 0; i < 8; ++i) v.push_back({static_cast<float>(i), i});
  for (std::uint32_t i = 0; i < 8; ++i) {
    v.push_back({static_cast<float>(8 - i), 8 + i});
  }
  bitonic_merge_descending(v);
  EXPECT_TRUE(is_descending(v));
}

class BitonicSortSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitonicSortSizes, SortsDescending) {
  auto v = random_entries(GetParam(), 7);
  auto expected = v;
  std::sort(expected.begin(), expected.end(),
            [](const Neighbor& a, const Neighbor& b) { return b < a; });
  bitonic_sort_descending(v);
  EXPECT_EQ(v, expected);
}

TEST_P(BitonicSortSizes, SortsAscending) {
  auto v = random_entries(GetParam(), 8);
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  bitonic_sort_ascending(v);
  EXPECT_EQ(v, expected);
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, BitonicSortSizes,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64, 256, 1024));

TEST(MergeCompareCount, MatchesHalfNLogN) {
  EXPECT_EQ(bitonic_merge_compare_count(1), 0u);
  EXPECT_EQ(bitonic_merge_compare_count(2), 1u);
  EXPECT_EQ(bitonic_merge_compare_count(8), 12u);
  EXPECT_EQ(bitonic_merge_compare_count(1024), 512u * 10u);
}

TEST(MergeCompareCount, ReverseMergeUsesExactlyTheFixedBudget) {
  // The network shape is data-independent: a merge of size n performs
  // n/2*log2(n) compare-exchanges; each swap writes two slots.  Count swaps
  // with a counter and bound them by twice the compare budget.
  for (std::size_t n : {8u, 64u, 256u}) {
    UpdateCounter c(n);
    auto v = random_entries(n, 17);
    std::sort(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(n / 2),
              [](const Neighbor& a, const Neighbor& b) { return b < a; });
    std::sort(v.begin() + static_cast<std::ptrdiff_t>(n / 2), v.end(),
              [](const Neighbor& a, const Neighbor& b) { return b < a; });
    reverse_bitonic_merge_descending(v, &c);
    EXPECT_LE(c.total(), 2 * bitonic_merge_compare_count(n));
  }
}

}  // namespace
}  // namespace gpuksel
