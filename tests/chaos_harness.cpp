#include "chaos_harness.hpp"

#include <future>
#include <memory>
#include <sstream>
#include <utility>

#include "knn/dataset.hpp"

namespace gpuksel::serve::chaos {

namespace {

ShardedKnnOptions engine_options(const ChaosScenario& scenario) {
  ShardedKnnOptions opts;
  opts.num_shards = scenario.num_shards;
  opts.index_type = scenario.index_type;
  opts.ivf.nlist = scenario.ivf_nlist;
  opts.ivf.nprobe = scenario.ivf_nprobe;
  opts.batch.batch.tile_refs = scenario.tile_refs;
  opts.health = scenario.health;
  return opts;
}

knn::Dataset request_queries(const ChaosScenario& scenario, std::uint32_t seed,
                             std::uint32_t request) {
  // Every request gets its own deterministic batch; the prime spreads the
  // per-request seeds away from the dataset seed.
  return knn::make_uniform_dataset(scenario.queries, scenario.dim,
                                   seed * 7919u + request);
}

}  // namespace

ChaosRun run_scenario(const ChaosScenario& scenario, std::uint32_t seed) {
  ChaosRun run;
  const knn::Dataset refs =
      knn::make_uniform_dataset(scenario.refs, scenario.dim, seed);

  // Pass 1: fault-free ground truth over the identical request stream.
  {
    ShardedKnn clean(refs, engine_options(scenario));
    run.baseline.reserve(scenario.num_requests);
    for (std::uint32_t r = 0; r < scenario.num_requests; ++r) {
      run.baseline.push_back(
          clean.search(request_queries(scenario, seed, r), scenario.k)
              .neighbors);
    }
  }

  // Pass 2: the same stream through the full serving stack with the fault
  // schedule attached.  Injector lifetime must cover the scheduler's.
  ShardedKnn engine(refs, engine_options(scenario));
  std::vector<std::unique_ptr<simt::FaultInjector>> injectors;
  injectors.reserve(scenario.faults.size());
  for (const ShardFaultPlan& plan : scenario.faults) {
    injectors.push_back(std::make_unique<simt::FaultInjector>(plan.config));
    engine.shard(plan.shard).device().set_fault_injector(
        injectors.back().get());
  }
  {
    Scheduler sched(engine, scenario.scheduler);
    std::vector<std::future<ServeResponse>> futures;
    futures.reserve(scenario.num_requests);
    for (std::uint32_t r = 0; r < scenario.num_requests; ++r) {
      futures.push_back(
          sched.submit(request_queries(scenario, seed, r), scenario.k));
    }
    run.responses.reserve(scenario.num_requests);
    for (auto& fut : futures) run.responses.push_back(fut.get());
    run.scheduler = sched.counters();
    sched.shutdown();
  }

  run.shards.reserve(engine.num_shards());
  for (std::uint32_t s = 0; s < engine.num_shards(); ++s) {
    ShardHealthSnapshot snap;
    snap.state = engine.shard(s).health().state();
    snap.counters = engine.shard(s).health().counters();
    snap.transitions = engine.shard(s).health().transitions();
    snap.totals = engine.totals()[s];
    snap.device_cumulative = engine.shard(s).device().cumulative();
    run.shards.push_back(std::move(snap));
  }
  std::ostringstream os;
  engine.write_shard_report(os, &run.scheduler);
  run.report_json = os.str();
  return run;
}

std::vector<std::string> check_invariants(const ChaosScenario& scenario,
                                          const ChaosRun& run) {
  std::vector<std::string> violations;
  const auto fail = [&](std::string msg) {
    violations.push_back(scenario.name + ": " + std::move(msg));
  };

  // No request lost: every submitted future resolved with a response.
  if (run.responses.size() != scenario.num_requests) {
    fail("expected " + std::to_string(scenario.num_requests) +
         " responses, got " + std::to_string(run.responses.size()));
    return violations;
  }
  // Exactness: scenarios carry no deadlines and a fault budget the policy
  // absorbs, so every response must be kOk and — degraded or not —
  // byte-identical to the fault-free baseline (the host recompute shares
  // the kernel's FP op order).
  for (std::uint32_t r = 0; r < scenario.num_requests; ++r) {
    const ServeResponse& resp = run.responses[r];
    if (resp.status != RequestStatus::kOk) {
      fail("request " + std::to_string(r) + " not kOk: " + resp.error);
      continue;
    }
    if (!resp.served) {
      fail("request " + std::to_string(r) + " kOk but not marked served");
    }
    if (resp.result.neighbors != run.baseline[r]) {
      fail("request " + std::to_string(r) +
           " diverges from the fault-free baseline");
    }
  }

  // Scheduler admission/outcome partition; nothing pending, nothing
  // double-counted.
  const SchedulerCounters& sc = run.scheduler;
  if (sc.submitted != sc.admitted + sc.rejected) {
    fail("scheduler: submitted != admitted + rejected");
  }
  const std::uint64_t outcomes = sc.served_ok + sc.timed_out_at_dequeue +
                                 sc.timed_out_after_serve + sc.failed +
                                 sc.shed_expired;
  if (sc.admitted != outcomes + sc.pending) {
    fail("scheduler: admitted != outcomes + pending");
  }
  if (sc.pending != 0) fail("scheduler: queue not drained");
  if (sc.degraded > sc.served_ok) fail("scheduler: degraded > served_ok");

  // Per-shard health + accounting partitions.
  for (std::size_t s = 0; s < run.shards.size(); ++s) {
    const ShardHealthSnapshot& snap = run.shards[s];
    const HealthCounters& hc = snap.counters;
    const auto shard_fail = [&](const std::string& msg) {
      fail("shard " + std::to_string(s) + ": " + msg);
    };
    if (hc.healthy_served + hc.suspect_served + hc.quarantined_served +
            hc.probes_served !=
        hc.requests) {
      shard_fail("served-by-state counters do not partition requests");
    }
    if (hc.probes_served != hc.probe_successes + hc.probe_failures) {
      shard_fail("probe outcomes do not partition probes_served");
    }
    const bool in_quarantine = snap.state == HealthState::kQuarantined ||
                               snap.state == HealthState::kProbing;
    if (hc.quarantine_entries != hc.quarantine_exits + (in_quarantine ? 1 : 0)) {
      shard_fail("quarantine entries/exits inconsistent with final state");
    }
    if (hc.requests != snap.totals.requests) {
      shard_fail("health request clock diverges from service totals");
    }
    if (snap.transitions.size() >
        std::min<std::uint64_t>(hc.transitions,
                                ShardHealth::kMaxLoggedTransitions)) {
      shard_fail("transition log longer than the transition counter");
    }
    for (std::size_t t = 1; t < snap.transitions.size(); ++t) {
      if (snap.transitions[t].from != snap.transitions[t - 1].to) {
        shard_fail("transition log does not chain at entry " +
                   std::to_string(t));
      }
    }
    // Every device instruction belongs to exactly one attempt: the useful
    // and wasted metrics must partition the device's cumulative counters.
    simt::KernelMetrics sum = snap.totals.useful_metrics;
    sum += snap.totals.wasted_metrics;
    if (!(sum == snap.device_cumulative)) {
      shard_fail("useful + wasted metrics do not partition the device total");
    }
  }
  return violations;
}

}  // namespace gpuksel::serve::chaos
