// Cross-module integration tests: the full paper pipeline end to end, all
// selection implementations (scalar, SIMT kernels, baselines) agreeing on the
// same workload, and the modeled-cost plumbing.
#include <gtest/gtest.h>

#include <vector>

#include "baselines/cpu_select.hpp"
#include "baselines/qms.hpp"
#include "baselines/radix_select.hpp"
#include "baselines/tbs.hpp"
#include "core/kernels/hp_kernels.hpp"
#include "core/kselect.hpp"
#include "knn/dataset.hpp"
#include "knn/distance.hpp"
#include "knn/knn.hpp"
#include "simt/cost_model.hpp"
#include "util/rng.hpp"

namespace gpuksel {
namespace {

using kernels::BufferMode;
using kernels::MatrixLayout;
using kernels::QueueKind;
using kernels::SelectConfig;

TEST(Integration, EveryImplementationAgreesOnOneWorkload) {
  // The paper's synthetic setup in miniature: 128-d uniform tuples, squared
  // Euclidean distances, k-selection by every method in the repository.
  const std::uint32_t q = 36, n = 900, dim = 32, k = 24;
  const auto queries = knn::make_uniform_dataset(q, dim, 100);
  const auto refs = knn::make_uniform_dataset(n, dim, 101);
  const auto qmajor = knn::distance_matrix_host(
      queries.values, refs.values, q, n, dim, MatrixLayout::kQueryMajor);
  const auto rmajor = knn::distance_matrix_host(
      queries.values, refs.values, q, n, dim, MatrixLayout::kReferenceMajor);

  // Reference: scalar merge queue per query.
  std::vector<std::vector<Neighbor>> expected(q);
  for (std::uint32_t qq = 0; qq < q; ++qq) {
    expected[qq] = select_k_smallest(
        std::span<const float>(qmajor.data() + std::size_t{qq} * n, n), k);
  }

  // CPU baseline.
  EXPECT_EQ(baselines::cpu_select_all(qmajor, q, n, k, 2), expected);

  // Scalar radix per query.
  for (std::uint32_t qq = 0; qq < q; ++qq) {
    EXPECT_EQ(baselines::radix_select(
                  std::span<const float>(qmajor.data() + std::size_t{qq} * n, n),
                  k),
              expected[qq]);
  }

  // SIMT kernels: every queue, with and without buf+hp.
  simt::Device dev;
  for (QueueKind queue :
       {QueueKind::kInsertion, QueueKind::kHeap, QueueKind::kMerge}) {
    SelectConfig cfg;
    cfg.queue = queue;
    EXPECT_EQ(kernels::flat_select(dev, rmajor, q, n, k, cfg).neighbors,
              expected);
    cfg.buffer = BufferMode::kFullSorted;
    EXPECT_EQ(kernels::hp_select(dev, rmajor, q, n, k, cfg, 4).neighbors,
              expected);
  }

  // State-of-the-art baselines (query-major kernels).
  EXPECT_EQ(baselines::tbs_select(dev, qmajor, q, n, k).neighbors, expected);
  EXPECT_EQ(baselines::qms_select(dev, qmajor, q, n, k).neighbors, expected);
}

TEST(Integration, FullGpuPipelineProducesModeledCosts) {
  const auto refs = knn::make_uniform_dataset(600, 32, 102);
  const auto queries = knn::make_uniform_dataset(64, 32, 103);
  const knn::BruteForceKnn knn_index(refs);
  simt::Device dev;
  knn::GpuSearchOptions opts;
  const auto result = knn_index.search_gpu(dev, queries, 16, opts);
  EXPECT_GT(result.distance_metrics.instructions, 0u);
  EXPECT_GT(result.select_metrics.instructions, 0u);
  EXPECT_GT(result.modeled_seconds, 0.0);
  // Transfers were charged on the device (matrix upload happens in both
  // stages of the pipeline).
  EXPECT_GT(dev.transfers().bytes_h2d, 0u);
}

TEST(Integration, OptimizedMergeQueueBeatsOriginalInsertionQueue) {
  // The headline claim of the paper at miniature scale: the fully optimized
  // merge queue costs far less than the original (unbuffered, flat-scan)
  // insertion queue under the cost model.
  const std::uint32_t q = 64, n = 1 << 13, k = 128;
  const auto matrix = uniform_floats(std::size_t{q} * n, 104);
  simt::Device dev;
  const auto cm = simt::c2075_model();

  SelectConfig original;
  original.queue = QueueKind::kInsertion;
  const auto base = kernels::flat_select(dev, matrix, q, n, k, original);

  SelectConfig optimized;
  optimized.queue = QueueKind::kMerge;
  optimized.aligned_merge = true;
  optimized.buffer = BufferMode::kFullSorted;
  const auto best = kernels::hp_select(dev, matrix, q, n, k, optimized, 4);

  const double t_base = cm.kernel_seconds(base.metrics);
  const double t_best = cm.kernel_seconds(best.metrics) +
                        cm.kernel_seconds(best.build_metrics);
  EXPECT_LT(t_best * 3.0, t_base);  // at least 3x at this miniature scale
  EXPECT_EQ(base.neighbors, best.neighbors);
}

TEST(Integration, ModeledDataCopyDominatesCpuSideSelection) {
  // The paper's argument for GPU-side selection: shipping the distance
  // matrix across PCIe costs more than it saves (Table I discussion).
  const auto cm = simt::c2075_model();
  const std::uint64_t q = 8192, n = 32768;
  const double copy = cm.transfer_seconds(q * n * sizeof(float));
  // CPU 16 at k=2^8, N=2^15 in the paper: 0.08 s; data copy 0.46-0.49 s.
  EXPECT_GT(copy, 0.4);
}

}  // namespace
}  // namespace gpuksel
