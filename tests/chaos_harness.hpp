// Deterministic chaos harness for the serving stack.
//
// A ChaosScenario describes a workload (reference set, request stream) plus
// a seeded fault schedule: per-shard FaultInjector configs whose budgets
// (max_faults) bound how long each failure persists.  run_scenario() first
// serves the whole request stream fault-free to capture the ground-truth
// answers, then replays the identical stream through
// Scheduler -> ShardedKnn -> DeviceShard with the injectors attached, and
// snapshots every shard's health machine, cumulative totals and device
// counters plus the scheduler's admission/outcome counters.
//
// Everything is deterministic: the injector is a pure function of
// (seed, warp, access ordinal), the health machine runs on the
// served-request clock, and the scheduler's single FIFO worker serves
// requests in submit order — so a scenario replays bit-identically and
// check_invariants() can assert exact resilience properties:
//   * no request lost or double-completed (every future resolves exactly
//     once; the scheduler counters partition),
//   * every non-degraded response byte-identical to the fault-free run,
//   * degraded responses still byte-identical (host recompute shares the
//     kernel's FP op order) — checked for all kOk responses,
//   * per-shard health counters partition the shard's request count,
//   * useful + wasted metrics partition each device's cumulative counters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/scheduler.hpp"
#include "simt/fault_injection.hpp"

namespace gpuksel::serve::chaos {

/// One shard's fault schedule: the injector config is attached to that
/// shard's device for the whole chaos pass.  A bounded max_faults budget
/// models a transient failure (the shard recovers once the budget drains);
/// max_faults == 0 models a persistent one.
struct ShardFaultPlan {
  std::uint32_t shard = 0;
  simt::InjectorConfig config;
};

struct ChaosScenario {
  std::string name;
  // Workload shape (kept small: scenarios run many requests, twice).
  std::uint32_t refs = 96;
  std::uint32_t dim = 4;
  std::uint32_t queries = 8;
  std::uint32_t k = 6;
  std::uint32_t num_shards = 3;
  std::uint32_t tile_refs = 16;
  std::uint32_t num_requests = 24;
  /// kIvf shards the inverted lists of one globally trained index instead of
  /// row slices; the fault-free pass uses the identical index, so the
  /// byte-identity invariant covers the pruned (approximate) results too.
  IndexType index_type = IndexType::kFlat;
  std::uint32_t ivf_nlist = 8;   ///< kIvf only
  std::uint32_t ivf_nprobe = 4;  ///< kIvf only
  std::vector<ShardFaultPlan> faults;
  HealthOptions health;
  SchedulerOptions scheduler;
};

/// Final state of one shard after the chaos pass.
struct ShardHealthSnapshot {
  HealthState state = HealthState::kHealthy;
  HealthCounters counters;
  std::vector<HealthTransition> transitions;
  ShardTotals totals;
  simt::KernelMetrics device_cumulative;
};

struct ChaosRun {
  /// Chaos-pass responses in submit order (== serve order: FIFO worker).
  std::vector<ServeResponse> responses;
  /// Fault-free ground truth, same order.
  std::vector<std::vector<std::vector<Neighbor>>> baseline;
  std::vector<ShardHealthSnapshot> shards;
  SchedulerCounters scheduler;
  /// gpuksel.shards.v1 report of the chaos engine, scheduler section
  /// included.
  std::string report_json;
};

/// Derives the request stream and runs the fault-free + chaos passes.
/// `seed` perturbs the dataset and every per-request query batch.
[[nodiscard]] ChaosRun run_scenario(const ChaosScenario& scenario,
                                    std::uint32_t seed);

/// Structural invariants every scenario must satisfy regardless of its fault
/// schedule.  Returns human-readable violations (empty == pass).
[[nodiscard]] std::vector<std::string> check_invariants(
    const ChaosScenario& scenario, const ChaosRun& run);

}  // namespace gpuksel::serve::chaos
