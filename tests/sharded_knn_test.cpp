// Tests for the multi-device sharded serving layer: the differential matrix
// (sharded vs single-device vs the CPU heap baseline) across seeded feature
// distributions, shard counts, uneven splits, k > shard size and ties that
// cross shard boundaries; shard fault policy (retry once, then exclude with
// host recompute); metrics/profile aggregation and the shards.v1 report.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/cpu_select.hpp"
#include "core/kernels/pipeline.hpp"
#include "core/kernels/shard_merge.hpp"
#include "knn/batch.hpp"
#include "knn/dataset.hpp"
#include "serve/sharded_knn.hpp"
#include "simt/device.hpp"
#include "simt/fault_injection.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace gpuksel::serve {
namespace {

/// Feature distributions stressing cross-shard behaviour: ties and duplicate
/// rows land in *different* shards, so the merge's (dist, index) tie-break
/// is what keeps the result identical to the single-device scan.
knn::Dataset make_feature_set(std::uint32_t count, std::uint32_t dim,
                              std::uint32_t shape, Rng& rng) {
  knn::Dataset d;
  d.count = count;
  d.dim = dim;
  d.values.resize(std::size_t{count} * dim);
  switch (shape) {
    case 0:  // continuous uniform
      for (auto& v : d.values) v = rng.uniform_float();
      break;
    case 1:  // few-valued features: heavy duplicate distances
      for (auto& v : d.values) {
        v = static_cast<float>(rng.uniform_below(3)) * 0.25f;
      }
      break;
    case 2:  // all-constant: every distance equal, pure index tie-breaking
      for (auto& v : d.values) v = 0.5f;
      break;
    default:  // duplicated rows: exact duplicate distances across shards
      for (std::uint32_t i = 0; i < count; ++i) {
        for (std::uint32_t dd = 0; dd < dim; ++dd) {
          Rng row_rng(0xd0b1e + (i % 7) * 131 + dd);
          d.values[std::size_t{i} * dim + dd] = row_rng.uniform_float();
        }
      }
      break;
  }
  return d;
}

ShardedKnnOptions sharded_options(std::uint32_t num_shards,
                                  std::uint32_t tile_refs = 16) {
  ShardedKnnOptions opts;
  opts.num_shards = num_shards;
  opts.batch.batch.tile_refs = tile_refs;
  return opts;
}

/// The single-device answer the sharded path must match bit-for-bit.
std::vector<std::vector<Neighbor>> single_device(const knn::Dataset& refs,
                                                 const knn::Dataset& queries,
                                                 std::uint32_t k) {
  simt::Device dev;
  knn::BatchedKnnOptions opts;
  opts.batch.tile_refs = 16;
  knn::BatchedKnn engine(refs, opts);
  return engine.search_gpu(dev, queries, k).neighbors;
}

/// The CPU heap baseline over the device-computed distance matrix.
std::vector<std::vector<Neighbor>> cpu_reference(const knn::Dataset& refs,
                                                 const knn::Dataset& queries,
                                                 std::uint32_t k) {
  simt::Device dev;
  auto dm = kernels::gpu_distance_matrix(
      dev, knn::to_dim_major(queries), refs.values, queries.count, refs.count,
      refs.dim, kernels::MatrixLayout::kQueryMajor);
  return baselines::cpu_select_all(dm.matrix.host(), queries.count,
                                   refs.count, k, 1);
}

TEST(ShardedKnnTest, DifferentialMatrixMatchesSingleDeviceAndCpuSelect) {
  // 4 feature distributions x shard counts {1, 2, 3, 8} x k {1, 5, 16}.
  // N = 67 is deliberately indivisible by every shard count (uneven splits),
  // and k = 16 exceeds the 8-shard slice size (8 or 9 rows): every shard's
  // partial is ragged and the merge must still be exact.
  Rng rng(0x5a4d);
  const std::uint32_t n = 67, dim = 6, q = 33;
  for (std::uint32_t shape = 0; shape < 4; ++shape) {
    const knn::Dataset refs = make_feature_set(n, dim, shape, rng);
    const knn::Dataset queries = make_feature_set(q, dim, 0, rng);
    for (const std::uint32_t k : {1u, 5u, 16u}) {
      const auto expected = single_device(refs, queries, k);
      ASSERT_EQ(expected, cpu_reference(refs, queries, k))
          << "shape " << shape << " k " << k;
      for (const std::uint32_t shards : {1u, 2u, 3u, 8u}) {
        ShardedKnn engine(refs, sharded_options(shards));
        const auto got = engine.search(queries, k);
        EXPECT_EQ(got.neighbors, expected)
            << "shape " << shape << " shards " << shards << " k " << k;
        EXPECT_FALSE(got.degraded);
      }
    }
  }
}

TEST(ShardedKnnTest, UnevenShardsPartitionTheReferenceRange) {
  const knn::Dataset refs = knn::make_uniform_dataset(67, 4, 3);
  ShardedKnn engine(refs, sharded_options(8));
  std::uint32_t next = 0;
  for (std::uint32_t s = 0; s < engine.num_shards(); ++s) {
    EXPECT_EQ(engine.shard(s).begin(), next);
    const std::uint32_t rows = engine.shard(s).rows();
    EXPECT_TRUE(rows == 8 || rows == 9) << "shard " << s;
    next += rows;
  }
  EXPECT_EQ(next, refs.count);
}

TEST(ShardedKnnTest, KLargerThanEveryShardIsExact) {
  // k = 40 with 4 shards of ~9 rows: every partial holds its entire shard.
  Rng rng(0x77);
  const knn::Dataset refs = make_feature_set(37, 5, 3, rng);
  const knn::Dataset queries = make_feature_set(9, 5, 0, rng);
  const auto expected = single_device(refs, queries, 40);
  ASSERT_EQ(expected.front().size(), 37u);  // min(k, n) convention
  ShardedKnn engine(refs, sharded_options(4));
  EXPECT_EQ(engine.search(queries, 40).neighbors, expected);
}

TEST(ShardedKnnTest, AllTiedCandidatesResolveAcrossShardBoundaries) {
  // Every reference row identical: all distances tie and the global top-k
  // must be exactly indices 0..k-1 — candidates from shard 0 beating every
  // other shard purely on the index tie-break.
  Rng rng(0x99);
  const knn::Dataset refs = make_feature_set(24, 3, 2, rng);
  const knn::Dataset queries = make_feature_set(5, 3, 0, rng);
  ShardedKnn engine(refs, sharded_options(3));
  const auto got = engine.search(queries, 6);
  for (const auto& list : got.neighbors) {
    ASSERT_EQ(list.size(), 6u);
    for (std::uint32_t j = 0; j < 6; ++j) EXPECT_EQ(list[j].index, j);
  }
  EXPECT_EQ(got.neighbors, single_device(refs, queries, 6));
}

TEST(ShardedKnnTest, SequentialFanoutMatchesParallel) {
  Rng rng(0xf0);
  const knn::Dataset refs = make_feature_set(50, 4, 0, rng);
  const knn::Dataset queries = make_feature_set(17, 4, 0, rng);
  ShardedKnnOptions par = sharded_options(4);
  ShardedKnnOptions seq = sharded_options(4);
  seq.parallel_fanout = false;
  ShardedKnn a(refs, par);
  ShardedKnn b(refs, seq);
  const auto ra = a.search(queries, 7);
  const auto rb = b.search(queries, 7);
  EXPECT_EQ(ra.neighbors, rb.neighbors);
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(ra.shards[s].metrics, rb.shards[s].metrics) << "shard " << s;
  }
  EXPECT_EQ(ra.merge_metrics, rb.merge_metrics);
  EXPECT_EQ(ra.modeled_seconds, rb.modeled_seconds);
}

TEST(ShardedKnnTest, ModeledLatencyIsSlowestShardPlusMerge) {
  const knn::Dataset refs = knn::make_uniform_dataset(60, 4, 5);
  const knn::Dataset queries = knn::make_uniform_dataset(10, 4, 6);
  ShardedKnn engine(refs, sharded_options(3));
  const auto res = engine.search(queries, 4);
  double slowest = 0.0;
  for (const ShardStats& st : res.shards) {
    EXPECT_GT(st.modeled_seconds, 0.0);
    slowest = std::max(slowest, st.modeled_seconds);
  }
  EXPECT_GT(res.merge_seconds, 0.0);
  EXPECT_DOUBLE_EQ(res.modeled_seconds, slowest + res.merge_seconds);
}

TEST(ShardedKnnTest, FaultyShardIsRetriedOnceThenExcludedExactly) {
  // Unlimited fault budget on shard 1's device: the first attempt and the
  // retry both fault, the shard degrades to the host recompute — and the
  // merged answer is still byte-identical to the healthy single-device run.
  Rng rng(0xfa);
  const knn::Dataset refs = make_feature_set(45, 4, 1, rng);
  const knn::Dataset queries = make_feature_set(11, 4, 0, rng);
  const auto expected = single_device(refs, queries, 8);

  ShardedKnn engine(refs, sharded_options(3));
  simt::FaultInjector injector(simt::InjectorConfig{
      simt::InjectKind::kOobIndex, /*seed=*/5, /*period=*/32, /*max_faults=*/0,
      /*kernel_filter=*/"batch_tile_score"});
  engine.shard(1).device().set_fault_injector(&injector);

  const auto got = engine.search(queries, 8);
  EXPECT_EQ(got.neighbors, expected);
  EXPECT_TRUE(got.degraded);
  EXPECT_TRUE(got.shards[1].excluded);
  EXPECT_EQ(got.shards[1].retries, 1u);
  EXPECT_GE(got.shards[1].faults.size(), 2u);  // first attempt + retry
  EXPECT_EQ(got.shards[1].modeled_seconds, 0.0);  // no successful GPU attempt
  for (const std::uint32_t s : {0u, 2u}) {
    EXPECT_FALSE(got.shards[s].excluded);
    EXPECT_EQ(got.shards[s].retries, 0u);
    EXPECT_TRUE(got.shards[s].faults.empty());
  }
  EXPECT_EQ(engine.degraded_requests(), 1u);
  EXPECT_EQ(engine.totals()[1].exclusions, 1u);
}

TEST(ShardedKnnTest, TransientFaultSurvivesViaRetry) {
  // A budget of one fault: the first attempt faults and spends it, the retry
  // runs clean — the transient-fault model the retry policy exists for.
  Rng rng(0xfb);
  const knn::Dataset refs = make_feature_set(45, 4, 0, rng);
  const knn::Dataset queries = make_feature_set(11, 4, 0, rng);
  const auto expected = single_device(refs, queries, 8);

  ShardedKnn engine(refs, sharded_options(3));
  simt::FaultInjector injector(simt::InjectorConfig{
      simt::InjectKind::kOobIndex, /*seed=*/5, /*period=*/32, /*max_faults=*/1,
      /*kernel_filter=*/"batch_tile_score"});
  engine.shard(1).device().set_fault_injector(&injector);

  const auto got = engine.search(queries, 8);
  EXPECT_EQ(got.neighbors, expected);
  EXPECT_FALSE(got.degraded);
  EXPECT_FALSE(got.shards[1].excluded);
  EXPECT_EQ(got.shards[1].retries, 1u);
  EXPECT_EQ(got.shards[1].faults.size(), 1u);
  EXPECT_GT(got.shards[1].modeled_seconds, 0.0);
}

TEST(ShardedKnnTest, ExclusionDisabledPropagatesTheFault) {
  ShardedKnnOptions opts = sharded_options(3);
  opts.exclude_faulty_shards = false;
  ShardedKnn engine(knn::make_uniform_dataset(45, 4, 7), opts);
  simt::FaultInjector injector(simt::InjectorConfig{
      simt::InjectKind::kOobIndex, /*seed=*/5, /*period=*/32, /*max_faults=*/0,
      /*kernel_filter=*/"batch_tile_score"});
  engine.shard(2).device().set_fault_injector(&injector);
  EXPECT_THROW((void)engine.search(knn::make_uniform_dataset(6, 4, 8), 4),
               SimtFaultError);
}

TEST(ShardedKnnTest, EmptyBatchIsServedWithoutLaunching) {
  ShardedKnn engine(knn::make_uniform_dataset(30, 4, 9), sharded_options(2));
  const auto res = engine.search(knn::Dataset{}, 3);
  EXPECT_TRUE(res.neighbors.empty());
  EXPECT_FALSE(res.degraded);
  EXPECT_EQ(engine.merge_device().cumulative().instructions, 0u);
}

TEST(ShardedKnnTest, PreconditionsAreChecked) {
  const knn::Dataset refs = knn::make_uniform_dataset(10, 4, 1);
  EXPECT_THROW(ShardedKnn(refs, sharded_options(0)), PreconditionError);
  EXPECT_THROW(ShardedKnn(refs, sharded_options(11)), PreconditionError);
  ShardedKnn engine(refs, sharded_options(2));
  EXPECT_THROW((void)engine.search(knn::make_uniform_dataset(3, 4, 2), 0),
               PreconditionError);
  EXPECT_THROW((void)engine.search(knn::make_uniform_dataset(3, 5, 2), 3),
               PreconditionError);
}

TEST(ShardedKnnTest, ProfilerAggregationPrefixesEveryDevice) {
  ShardedKnn engine(knn::make_uniform_dataset(40, 4, 11), sharded_options(2));
  engine.attach_profilers();
  (void)engine.search(knn::make_uniform_dataset(8, 4, 12), 5);
  simt::Profiler sink;
  engine.drain_profiles(sink, "svc/");
  ASSERT_FALSE(sink.records().empty());
  bool saw_shard0 = false, saw_shard1 = false, saw_merge = false;
  for (std::size_t i = 0; i < sink.records().size(); ++i) {
    const auto& rec = sink.records()[i];
    EXPECT_EQ(rec.launch_index, i);  // renumbered into one sequence
    saw_shard0 = saw_shard0 || rec.kernel.rfind("svc/shard0/", 0) == 0;
    saw_shard1 = saw_shard1 || rec.kernel.rfind("svc/shard1/", 0) == 0;
    saw_merge = saw_merge || rec.kernel == "svc/merge/shard_merge";
  }
  EXPECT_TRUE(saw_shard0);
  EXPECT_TRUE(saw_shard1);
  EXPECT_TRUE(saw_merge);
  // Drained: a second drain adds nothing.
  const std::size_t count = sink.records().size();
  engine.drain_profiles(sink, "svc/");
  EXPECT_EQ(sink.records().size(), count);
}

TEST(ShardedKnnTest, ShardReportPartitionsTotalsExactly) {
  ShardedKnn engine(knn::make_uniform_dataset(50, 4, 13), sharded_options(3));
  (void)engine.search(knn::make_uniform_dataset(9, 4, 14), 6);
  (void)engine.search(knn::make_uniform_dataset(5, 4, 15), 3);

  // The invariant the report's "total" block encodes: every launch ran on
  // exactly one device, so per-device cumulatives partition the sum.
  simt::KernelMetrics sum;
  for (std::uint32_t s = 0; s < engine.num_shards(); ++s) {
    sum += engine.shard(s).device().cumulative();
  }
  sum += engine.merge_device().cumulative();
  EXPECT_GT(sum.instructions, 0u);

  std::ostringstream os;
  engine.write_shard_report(os);
  const std::string report = os.str();
  EXPECT_NE(report.find("\"schema\": \"gpuksel.shards.v1\""),
            std::string::npos);
  EXPECT_NE(report.find("\"num_shards\": 3"), std::string::npos);
  EXPECT_NE(report.find("\"requests\": 2"), std::string::npos);
  EXPECT_NE(report.find("\"instructions\": " +
                        std::to_string(sum.instructions)),
            std::string::npos);
}

TEST(ShardedKnnTest, WastedWorkIsAccountedAndPartitionsDeviceTotals) {
  // Fault the *reduce* launch: every tile launch of the attempt completes
  // first, so the aborted attempt leaves real executed-but-discarded work
  // behind — exactly what wasted_metrics must capture.
  const knn::Dataset refs = knn::make_uniform_dataset(45, 4, 21);
  const knn::Dataset queries = knn::make_uniform_dataset(11, 4, 22);
  const auto expected = single_device(refs, queries, 8);

  ShardedKnn engine(refs, sharded_options(3));
  simt::FaultInjector injector(simt::InjectorConfig{
      simt::InjectKind::kOobIndex, /*seed=*/5, /*period=*/32, /*max_faults=*/0,
      /*kernel_filter=*/"batch_reduce"});
  engine.shard(1).device().set_fault_injector(&injector);

  const auto got = engine.search(queries, 8);
  EXPECT_EQ(got.neighbors, expected);
  const ShardStats& st = got.shards[1];
  EXPECT_TRUE(st.excluded);
  EXPECT_EQ(st.failed_attempts, 2u);
  EXPECT_GT(st.wasted_metrics.instructions, 0u);
  EXPECT_GT(st.wasted_seconds, 0.0);
  EXPECT_EQ(st.metrics, simt::KernelMetrics{});  // no successful attempt
  // The sync-detection + host-recompute penalty is charged against the
  // clean siblings' per-row estimate and rides the request latency.
  EXPECT_GT(st.penalty_seconds, 0.0);
  EXPECT_GE(got.modeled_seconds,
            st.wasted_seconds + st.penalty_seconds + got.merge_seconds);
  // useful + wasted partition each shard device's cumulative counters.
  for (std::uint32_t s = 0; s < engine.num_shards(); ++s) {
    simt::KernelMetrics sum = engine.totals()[s].useful_metrics;
    sum += engine.totals()[s].wasted_metrics;
    EXPECT_EQ(sum, engine.shard(s).device().cumulative()) << "shard " << s;
  }
}

TEST(ShardedKnnTest, QuarantineStopsGpuAttemptsAndStaysExact) {
  ShardedKnnOptions opts = sharded_options(3);
  opts.health.window = 2;
  opts.health.suspect_faults = 1;
  opts.health.quarantine_faults = 1;
  opts.health.probe_interval = 100;  // no probes in this test
  const knn::Dataset refs = knn::make_uniform_dataset(45, 4, 23);
  ShardedKnn engine(refs, opts);
  simt::FaultInjector injector(simt::InjectorConfig{
      simt::InjectKind::kOobIndex, /*seed=*/5, /*period=*/32, /*max_faults=*/0,
      /*kernel_filter=*/"batch_tile_score"});
  engine.shard(1).device().set_fault_injector(&injector);

  // Request 0 pays the retry tax and trips the quarantine threshold.
  const knn::Dataset q0 = knn::make_uniform_dataset(9, 4, 24);
  const auto first = engine.search(q0, 6);
  EXPECT_EQ(first.neighbors, single_device(refs, q0, 6));
  EXPECT_EQ(first.shards[1].retries, 1u);
  EXPECT_EQ(engine.shard(1).health().state(), HealthState::kQuarantined);

  // Subsequent requests are host-served: zero new device work, zero new
  // retries — the quarantine win — and still byte-exact.
  const simt::KernelMetrics frozen = engine.shard(1).device().cumulative();
  for (std::uint32_t r = 0; r < 3; ++r) {
    const knn::Dataset q = knn::make_uniform_dataset(7, 4, 30 + r);
    const auto res = engine.search(q, 5);
    EXPECT_EQ(res.neighbors, single_device(refs, q, 5));
    EXPECT_TRUE(res.shards[1].quarantine_served);
    EXPECT_TRUE(res.shards[1].excluded);
    EXPECT_EQ(res.shards[1].retries, 0u);
    EXPECT_EQ(res.shards[1].failed_attempts, 0u);
  }
  EXPECT_EQ(engine.shard(1).device().cumulative(), frozen);
  EXPECT_EQ(engine.totals()[1].retries, 1u);
  EXPECT_EQ(engine.shard(1).health().counters().quarantined_served, 3u);
}

TEST(ShardedKnnTest, ProbeReadmitsTheShardAfterTheFaultBudgetDrains) {
  ShardedKnnOptions opts = sharded_options(3);
  opts.health.window = 2;
  opts.health.suspect_faults = 1;
  opts.health.quarantine_faults = 1;
  opts.health.probe_interval = 2;
  opts.health.probe_successes = 1;
  const knn::Dataset refs = knn::make_uniform_dataset(45, 4, 25);
  ShardedKnn engine(refs, opts);
  // Budget 3: request 0 burns two attempts, the first probe burns the last
  // fault, the second probe runs clean and re-admits the shard.
  simt::FaultInjector injector(simt::InjectorConfig{
      simt::InjectKind::kOobIndex, /*seed=*/5, /*period=*/8, /*max_faults=*/3,
      /*kernel_filter=*/"batch_tile_score"});
  engine.shard(1).device().set_fault_injector(&injector);

  std::vector<bool> degraded;
  for (std::uint32_t r = 0; r < 6; ++r) {
    const knn::Dataset q = knn::make_uniform_dataset(8, 4, 40 + r);
    const auto res = engine.search(q, 5);
    EXPECT_EQ(res.neighbors, single_device(refs, q, 5)) << "request " << r;
    degraded.push_back(res.degraded);
  }
  // 0: fault+fault -> quarantined; 1: host; 2: probe faults -> quarantined;
  // 3: host; 4: probe clean -> healthy, GPU answer served; 5: healthy.
  EXPECT_EQ(degraded, (std::vector<bool>{true, true, true, true, false,
                                         false}));
  const HealthCounters& hc = engine.shard(1).health().counters();
  EXPECT_EQ(hc.probe_failures, 1u);
  EXPECT_EQ(hc.probe_successes, 1u);
  EXPECT_EQ(hc.quarantine_entries, 1u);
  EXPECT_EQ(hc.quarantine_exits, 1u);
  EXPECT_EQ(engine.shard(1).health().state(), HealthState::kHealthy);
}

TEST(ShardedKnnTest, DeadlineBudgetSkipsTheRetryAndDegradesImmediately) {
  const knn::Dataset refs = knn::make_uniform_dataset(45, 4, 26);
  const knn::Dataset queries = knn::make_uniform_dataset(9, 4, 27);
  const auto expected = single_device(refs, queries, 6);
  ShardedKnn engine(refs, sharded_options(3));
  simt::FaultInjector injector(simt::InjectorConfig{
      simt::InjectKind::kOobIndex, /*seed=*/5, /*period=*/32, /*max_faults=*/0,
      /*kernel_filter=*/"batch_tile_score"});
  engine.shard(1).device().set_fault_injector(&injector);

  // An already-spent budget can never cover a second attempt: the shard
  // must degrade without retrying, still byte-exact via the host path.
  const auto res =
      engine.search(queries, 6, std::chrono::steady_clock::now());
  EXPECT_EQ(res.neighbors, expected);
  EXPECT_TRUE(res.shards[1].budget_skipped_retry);
  EXPECT_EQ(res.shards[1].retries, 0u);
  EXPECT_EQ(res.shards[1].failed_attempts, 1u);
  EXPECT_TRUE(res.shards[1].excluded);
  EXPECT_EQ(engine.totals()[1].budget_skipped_retries, 1u);

  // A generous budget keeps the usual retry-once policy.
  const auto relaxed = engine.search(
      queries, 6, std::chrono::steady_clock::now() + std::chrono::hours(1));
  EXPECT_EQ(relaxed.neighbors, expected);
  EXPECT_EQ(relaxed.shards[1].retries, 1u);
  EXPECT_FALSE(relaxed.shards[1].budget_skipped_retry);
}

TEST(ShardedKnnTest, FailedRequestStillLandsInCumulativeTotals) {
  // With exclusion disabled the second fault fails the whole request, but
  // the device work (and fault evidence) must still be absorbed into the
  // totals so the useful + wasted partition stays exact.
  ShardedKnnOptions opts = sharded_options(3);
  opts.exclude_faulty_shards = false;
  const knn::Dataset refs = knn::make_uniform_dataset(45, 4, 28);
  ShardedKnn engine(refs, opts);
  simt::FaultInjector injector(simt::InjectorConfig{
      simt::InjectKind::kOobIndex, /*seed=*/5, /*period=*/32, /*max_faults=*/0,
      /*kernel_filter=*/"batch_reduce"});
  engine.shard(2).device().set_fault_injector(&injector);
  EXPECT_THROW((void)engine.search(knn::make_uniform_dataset(6, 4, 29), 4),
               SimtFaultError);
  EXPECT_EQ(engine.requests(), 1u);
  EXPECT_EQ(engine.totals()[2].requests, 1u);
  EXPECT_EQ(engine.totals()[2].faults, 2u);
  for (std::uint32_t s = 0; s < engine.num_shards(); ++s) {
    simt::KernelMetrics sum = engine.totals()[s].useful_metrics;
    sum += engine.totals()[s].wasted_metrics;
    EXPECT_EQ(sum, engine.shard(s).device().cumulative()) << "shard " << s;
  }
}

TEST(ShardedKnnTest, HealthIsForcedOffWithoutExclusion) {
  // Quarantined service is host recompute; with exclusion disabled there is
  // no legal degraded path, so the health machine must not engage.
  ShardedKnnOptions opts = sharded_options(2);
  opts.exclude_faulty_shards = false;
  opts.health.quarantine_faults = 1;
  opts.health.window = 1;
  ShardedKnn engine(knn::make_uniform_dataset(30, 4, 31), opts);
  EXPECT_FALSE(engine.shard(0).health().options().enabled);
  (void)engine.search(knn::make_uniform_dataset(4, 4, 32), 3);
  EXPECT_EQ(engine.shard(0).health().state(), HealthState::kHealthy);
}

TEST(ShardedKnnTest, ShardReportCarriesHealthAndWastedSections) {
  ShardedKnnOptions opts = sharded_options(3);
  opts.health.window = 2;
  opts.health.quarantine_faults = 1;
  ShardedKnn engine(knn::make_uniform_dataset(45, 4, 33), opts);
  simt::FaultInjector injector(simt::InjectorConfig{
      simt::InjectKind::kOobIndex, /*seed=*/5, /*period=*/32, /*max_faults=*/0,
      /*kernel_filter=*/"batch_tile_score"});
  engine.shard(1).device().set_fault_injector(&injector);
  (void)engine.search(knn::make_uniform_dataset(8, 4, 34), 5);
  (void)engine.search(knn::make_uniform_dataset(8, 4, 35), 5);

  std::ostringstream os;
  engine.write_shard_report(os);
  const std::string report = os.str();
  EXPECT_NE(report.find("\"schema\": \"gpuksel.shards.v1\""),
            std::string::npos);
  for (const char* key :
       {"\"health\"", "\"state\": \"quarantined\"", "\"transition_log\"",
        "\"wasted_seconds\"", "\"penalty_seconds\"", "\"useful_metrics\"",
        "\"wasted_metrics\"", "\"quarantined_served\"",
        "\"budget_skipped_retries\""}) {
    EXPECT_NE(report.find(key), std::string::npos) << key;
  }
  // No scheduler attached: the section is omitted.
  EXPECT_EQ(report.find("\"scheduler\""), std::string::npos);
}

ShardedKnnOptions ivf_sharded_options(std::uint32_t num_shards,
                                      std::uint32_t nlist,
                                      std::uint32_t nprobe) {
  ShardedKnnOptions opts = sharded_options(num_shards);
  opts.index_type = IndexType::kIvf;
  opts.ivf.nlist = nlist;
  opts.ivf.nprobe = nprobe;
  return opts;
}

/// The single-device IVF answer list-sharded serving must match byte for
/// byte: same params, same seed, so the same trained index.
std::vector<std::vector<Neighbor>> single_device_ivf(
    const knn::Dataset& refs, const knn::Dataset& queries, std::uint32_t k,
    std::uint32_t nlist, std::uint32_t nprobe) {
  simt::Device dev;
  knn::IvfOptions opts;
  opts.params.nlist = nlist;
  opts.params.nprobe = nprobe;
  opts.batch.batch.tile_refs = 16;
  knn::IvfKnn engine(refs, opts);
  engine.train(dev);
  return engine.search_gpu(dev, queries, k).neighbors;
}

TEST(ShardedIvfTest, MatchesSingleDeviceIvfAtEveryProbeWidth) {
  // List-sharded serving is a pure partition of the pruned scan: every shard
  // selects probes against the full centroid set, so the merged answer must
  // be byte-identical to the single-device IvfKnn at the same nprobe — and,
  // at nprobe == nlist, to the flat full scan.
  Rng rng(0x1f5);
  const std::uint32_t nlist = 8;
  for (const std::uint32_t shape : {0u, 3u}) {
    const knn::Dataset refs = make_feature_set(80, 5, shape, rng);
    const knn::Dataset queries = make_feature_set(13, 5, 0, rng);
    for (const std::uint32_t k : {1u, 5u, 16u}) {
      for (const std::uint32_t nprobe : {1u, 2u, nlist}) {
        const auto expected =
            single_device_ivf(refs, queries, k, nlist, nprobe);
        for (const std::uint32_t shards : {1u, 2u, 3u}) {
          ShardedKnn engine(refs, ivf_sharded_options(shards, nlist, nprobe));
          const auto got = engine.search(queries, k);
          EXPECT_EQ(got.neighbors, expected)
              << "shape " << shape << " shards " << shards << " k " << k
              << " nprobe " << nprobe;
          EXPECT_FALSE(got.degraded);
        }
      }
    }
  }
}

TEST(ShardedIvfTest, FullProbeEqualsFlatShardedAndSingleDevice) {
  // The serving-stack face of the exactness contract: probing every list
  // through three IVF shards == the flat sharded engine == one device.
  Rng rng(0x1f6);
  const knn::Dataset refs = make_feature_set(67, 6, 1, rng);
  const knn::Dataset queries = make_feature_set(11, 6, 0, rng);
  const auto expected = single_device(refs, queries, 9);
  ShardedKnn flat(refs, sharded_options(3));
  ShardedKnn ivf(refs, ivf_sharded_options(3, 8, 8));
  EXPECT_EQ(flat.search(queries, 9).neighbors, expected);
  EXPECT_EQ(ivf.search(queries, 9).neighbors, expected);
}

TEST(ShardedIvfTest, ListRangesPartitionTheListsAndRows) {
  const knn::Dataset refs = knn::make_uniform_dataset(90, 4, 41);
  ShardedKnn engine(refs, ivf_sharded_options(3, 16, 4));
  EXPECT_EQ(engine.index_type(), IndexType::kIvf);
  EXPECT_EQ(engine.ivf_nlist(), 16u);
  EXPECT_EQ(engine.ivf_nprobe(), 4u);
  std::uint32_t next_list = 0;
  std::uint32_t next_row = 0;
  std::uint32_t rows = 0;
  for (std::uint32_t s = 0; s < engine.num_shards(); ++s) {
    const auto [lo, hi] = engine.shard_lists(s);
    EXPECT_EQ(lo, next_list) << "shard " << s;
    EXPECT_LT(lo, hi) << "shard " << s;
    next_list = hi;
    EXPECT_GE(engine.shard(s).rows(), 1u) << "shard " << s;
    EXPECT_EQ(engine.shard(s).begin(), next_row) << "shard " << s;
    next_row += engine.shard(s).rows();
    rows += engine.shard(s).rows();
    ASSERT_NE(engine.shard(s).ivf_engine(), nullptr);
    // Every shard carries the full quantizer: probe selection is global.
    EXPECT_EQ(engine.shard(s).ivf_engine()->index().nlist, 16u);
  }
  EXPECT_EQ(next_list, engine.ivf_nlist());
  EXPECT_EQ(rows, refs.count);
}

TEST(ShardedIvfTest, SetNprobeRetunesEveryShard) {
  Rng rng(0x1f7);
  const knn::Dataset refs = make_feature_set(70, 5, 0, rng);
  const knn::Dataset queries = make_feature_set(9, 5, 0, rng);
  ShardedKnn engine(refs, ivf_sharded_options(2, 8, 2));
  EXPECT_EQ(engine.search(queries, 6).neighbors,
            single_device_ivf(refs, queries, 6, 8, 2));
  engine.set_nprobe(8);
  EXPECT_EQ(engine.ivf_nprobe(), 8u);
  // Widened to every list, the served answer snaps to the exact one.
  EXPECT_EQ(engine.search(queries, 6).neighbors,
            single_device(refs, queries, 6));
  // Flat engines have no probe knob.
  ShardedKnn flat(refs, sharded_options(2));
  EXPECT_THROW(flat.set_nprobe(4), PreconditionError);
}

TEST(ShardedIvfTest, FaultedListScanDegradesToTheHostMirrorExactly) {
  // Unlimited fault budget on shard 1's list_scan: both attempts fault, the
  // shard host-serves via IvfKnn::search_host — and the merged answer stays
  // byte-identical to the clean run at the same nprobe.
  Rng rng(0x1f8);
  const knn::Dataset refs = make_feature_set(80, 5, 0, rng);
  const knn::Dataset queries = make_feature_set(12, 5, 0, rng);
  const auto expected = single_device_ivf(refs, queries, 7, 8, 3);

  ShardedKnn engine(refs, ivf_sharded_options(3, 8, 3));
  simt::FaultInjector injector(simt::InjectorConfig{
      simt::InjectKind::kOobIndex, /*seed=*/5, /*period=*/16, /*max_faults=*/0,
      /*kernel_filter=*/"list_scan"});
  engine.shard(1).device().set_fault_injector(&injector);

  const auto got = engine.search(queries, 7);
  EXPECT_EQ(got.neighbors, expected);
  EXPECT_TRUE(got.degraded);
  EXPECT_TRUE(got.shards[1].excluded);
  EXPECT_EQ(got.shards[1].retries, 1u);
  EXPECT_GE(got.shards[1].faults.size(), 2u);
  // useful + wasted still partition each device's cumulative counters.
  for (std::uint32_t s = 0; s < engine.num_shards(); ++s) {
    simt::KernelMetrics sum = engine.totals()[s].useful_metrics;
    sum += engine.totals()[s].wasted_metrics;
    EXPECT_EQ(sum, engine.shard(s).device().cumulative()) << "shard " << s;
  }
}

TEST(ShardedIvfTest, QuarantinedShardHostServesTheListPartition) {
  ShardedKnnOptions opts = ivf_sharded_options(3, 8, 3);
  opts.health.window = 2;
  opts.health.suspect_faults = 1;
  opts.health.quarantine_faults = 1;
  opts.health.probe_interval = 100;  // no probes in this test
  Rng rng(0x1f9);
  const knn::Dataset refs = make_feature_set(80, 5, 0, rng);
  ShardedKnn engine(refs, opts);
  simt::FaultInjector injector(simt::InjectorConfig{
      simt::InjectKind::kOobIndex, /*seed=*/5, /*period=*/16, /*max_faults=*/0,
      /*kernel_filter=*/"list_scan"});
  engine.shard(1).device().set_fault_injector(&injector);

  // Request 0 trips the quarantine threshold.
  const knn::Dataset q0 = make_feature_set(10, 5, 0, rng);
  EXPECT_EQ(engine.search(q0, 6).neighbors,
            single_device_ivf(refs, q0, 6, 8, 3));
  EXPECT_EQ(engine.shard(1).health().state(), HealthState::kQuarantined);

  // Quarantined service: zero new device work on the shard, still the exact
  // pruned answer — the host mirror serves the list partition.
  const simt::KernelMetrics frozen = engine.shard(1).device().cumulative();
  for (std::uint32_t r = 0; r < 3; ++r) {
    const knn::Dataset q = make_feature_set(8, 5, 0, rng);
    const auto res = engine.search(q, 5);
    EXPECT_EQ(res.neighbors, single_device_ivf(refs, q, 5, 8, 3));
    EXPECT_TRUE(res.shards[1].quarantine_served);
    EXPECT_EQ(res.shards[1].failed_attempts, 0u);
  }
  EXPECT_EQ(engine.shard(1).device().cumulative(), frozen);
}

TEST(ShardedIvfTest, ReportCarriesIndexTypeAndListRanges) {
  ShardedKnn engine(knn::make_uniform_dataset(60, 4, 43),
                    ivf_sharded_options(2, 8, 4));
  (void)engine.search(knn::make_uniform_dataset(7, 4, 44), 5);
  std::ostringstream os;
  engine.write_shard_report(os);
  const std::string report = os.str();
  for (const char* key :
       {"\"index_type\": \"ivf\"", "\"ivf\": {\"nlist\": 8, \"nprobe\": 4}",
        "\"list_lo\"", "\"list_hi\""}) {
    EXPECT_NE(report.find(key), std::string::npos) << key;
  }
  // Flat engines keep the old report shape (plus the explicit type tag).
  ShardedKnn flat(knn::make_uniform_dataset(30, 4, 45), sharded_options(2));
  std::ostringstream fs;
  flat.write_shard_report(fs);
  EXPECT_NE(fs.str().find("\"index_type\": \"flat\""), std::string::npos);
  EXPECT_EQ(fs.str().find("\"list_lo\""), std::string::npos);
}

TEST(ShardedIvfTest, NeedsOneNonEmptyListPerShard) {
  // All-constant rows collapse into a single non-empty list: there is no
  // list cut giving two shards a row each, and the constructor says so.
  Rng rng(0x1fa);
  const knn::Dataset refs = make_feature_set(24, 3, 2, rng);
  EXPECT_THROW(ShardedKnn(refs, ivf_sharded_options(2, 8, 2)),
               PreconditionError);
  // One shard owning everything is fine.
  ShardedKnn engine(refs, ivf_sharded_options(1, 8, 8));
  const knn::Dataset queries = make_feature_set(5, 3, 0, rng);
  EXPECT_EQ(engine.search(queries, 6).neighbors,
            single_device(refs, queries, 6));
}

TEST(ShardMergeTest, MergesRaggedPartialsWithSentinelPadding) {
  // Hand-built partials with ragged lengths: shard 0 has 2 candidates for
  // query 0 and none for query 1; shard 1 has 1 and 3.
  std::vector<std::vector<std::vector<Neighbor>>> partials(2);
  partials[0] = {{{0.25f, 3u}, {0.5f, 0u}}, {}};
  partials[1] = {{{0.25f, 7u}}, {{0.1f, 9u}, {0.2f, 11u}, {0.3f, 12u}}};
  simt::Device dev;
  const auto out = kernels::shard_merge(dev, partials, 2, 2, {});
  ASSERT_EQ(out.neighbors.size(), 2u);
  EXPECT_EQ(out.neighbors[0],
            (std::vector<Neighbor>{{0.25f, 3u}, {0.25f, 7u}}));
  EXPECT_EQ(out.neighbors[1],
            (std::vector<Neighbor>{{0.1f, 9u}, {0.2f, 11u}}));
  EXPECT_GT(out.metrics.instructions, 0u);
}

// --- mutable sharded serving ------------------------------------------------

ShardedKnnOptions mutable_options(std::uint32_t num_shards) {
  ShardedKnnOptions opts = sharded_options(num_shards);
  opts.index_type = IndexType::kMutable;
  opts.mutable_index.min_compact_rows = 48;
  return opts;
}

/// Host-side model of the logically-current rows, keyed by global id.
/// std::map keeps ids sorted, so the reference engine's row order is the
/// id order and result positions map straight back to ids.
using LiveModel = std::map<std::uint32_t, std::vector<float>>;

std::vector<std::vector<Neighbor>> model_reference(const LiveModel& model,
                                                   std::uint32_t dim,
                                                   const knn::Dataset& queries,
                                                   std::uint32_t k) {
  knn::Dataset refs;
  refs.dim = dim;
  refs.count = static_cast<std::uint32_t>(model.size());
  std::vector<std::uint32_t> ids;
  for (const auto& [id, row] : model) {
    ids.push_back(id);
    refs.values.insert(refs.values.end(), row.begin(), row.end());
  }
  simt::Device dev;
  const knn::BruteForceKnn engine(std::move(refs));
  auto lists = engine.search_gpu(dev, queries, k).neighbors;
  for (auto& list : lists) {
    for (Neighbor& n : list) n.index = ids[n.index];
  }
  return lists;
}

TEST(ShardedMutableTest, StreamingMutationsMatchTheIdOrderedReference) {
  // A mixed stream of replaces, minted inserts and removes over a 3-shard
  // mutable deployment: after every batch the sharded answer (global ids)
  // must match a brute-force engine over the live rows in id order.
  const std::uint32_t n = 60, dim = 5;
  Rng rng(0x3de5);
  const knn::Dataset initial = knn::make_uniform_dataset(n, dim, 0xb0);
  const knn::Dataset queries = knn::make_uniform_dataset(11, dim, 0xb1);
  ShardedKnn engine(initial, mutable_options(3));
  LiveModel model;
  for (std::uint32_t i = 0; i < n; ++i) {
    model[i] = {initial.row(i), initial.row(i) + dim};
  }
  EXPECT_EQ(engine.search(queries, 7).neighbors,
            model_reference(model, dim, queries, 7));

  std::vector<float> row(dim);
  for (int batch = 0; batch < 6; ++batch) {
    for (int op = 0; op < 8; ++op) {
      for (auto& v : row) v = rng.uniform_float();
      const auto kind = rng.uniform_below(4);
      if (kind == 0 && !model.empty()) {
        // replace a random live id (initial or minted — routing must stick)
        auto it = model.begin();
        std::advance(it, rng.uniform_below(model.size()));
        engine.upsert(it->first, row);
        it->second = row;
      } else if (kind == 1 && model.size() > 20) {
        auto it = model.begin();
        std::advance(it, rng.uniform_below(model.size()));
        EXPECT_TRUE(engine.remove(it->first));
        model.erase(it);
      } else {
        const std::uint32_t id = engine.insert(row);
        EXPECT_FALSE(model.contains(id)) << "minted id must be fresh";
        model[id] = row;
      }
    }
    EXPECT_EQ(engine.live_rows(), model.size());
    EXPECT_EQ(engine.search(queries, 7).neighbors,
              model_reference(model, dim, queries, 7))
        << "batch " << batch;
  }
  // An initial-range id stays routable after death (remove is idempotent),
  // but an id insert() never minted has no owning shard — that is an error.
  if (model.contains(0)) {
    EXPECT_TRUE(engine.remove(0));
    model.erase(0);
  }
  EXPECT_FALSE(engine.remove(0));
  EXPECT_THROW((void)engine.remove(0xdeadu), PreconditionError);
}

TEST(ShardedMutableTest, MintedIdsRouteToTheLeastLiveShardAndStick) {
  const std::uint32_t n = 30, dim = 4;
  const knn::Dataset initial = knn::make_uniform_dataset(n, dim, 0xb2);
  ShardedKnn engine(initial, mutable_options(3));
  // Drain shard 1's initial slice (ids 10..19) to make it the least-live.
  for (std::uint32_t id = 10; id < 18; ++id) EXPECT_TRUE(engine.remove(id));
  const std::vector<float> row(dim, 0.25f);
  const std::uint32_t minted = engine.insert(row);
  EXPECT_EQ(minted, n);  // ids continue after the initial range
  const std::uint32_t before = engine.shard(1).rows();
  // The fresh insert landed on the drained shard, and a replace of the
  // minted id must not migrate it.
  EXPECT_EQ(before, 3u);  // 2 initial survivors + the minted row
  engine.upsert(minted, std::vector<float>(dim, 0.75f));
  EXPECT_EQ(engine.shard(1).rows(), before);
  EXPECT_TRUE(engine.remove(minted));
  EXPECT_EQ(engine.shard(1).rows(), before - 1);
}

TEST(ShardedMutableTest, ReportCarriesMutableAndPoolSections) {
  const knn::Dataset initial = knn::make_uniform_dataset(40, 4, 0xb3);
  const knn::Dataset queries = knn::make_uniform_dataset(6, 4, 0xb4);
  ShardedKnn engine(initial, mutable_options(2));
  const std::vector<float> row(4, 0.5f);
  (void)engine.insert(row);
  EXPECT_TRUE(engine.remove(3));
  (void)engine.search(queries, 5);
  std::ostringstream os;
  engine.write_shard_report(os);
  const std::string report = os.str();
  EXPECT_NE(report.find("\"index_type\": \"mutable\""), std::string::npos);
  EXPECT_NE(report.find("\"live_rows\""), std::string::npos);
  EXPECT_NE(report.find("\"mutable\""), std::string::npos);
  EXPECT_NE(report.find("\"delta_rows\""), std::string::npos);
  EXPECT_NE(report.find("\"pool\""), std::string::npos);
  EXPECT_NE(report.find("\"bytes_served_from_pool\""), std::string::npos);
  // The pool accounting partition holds on every serving device.
  for (std::uint32_t s = 0; s < engine.num_shards(); ++s) {
    const simt::PoolStats& p = engine.shard(s).device().pool().stats();
    EXPECT_EQ(p.bytes_requested,
              p.bytes_served_from_pool + p.bytes_freshly_allocated)
        << "shard " << s;
  }
}

TEST(ShardedMutableTest, RefusesAnIvfBase) {
  ShardedKnnOptions opts = mutable_options(2);
  opts.mutable_index.base = knn::MutableBase::kIvf;
  EXPECT_THROW(ShardedKnn(knn::make_uniform_dataset(20, 3, 0xb5), opts),
               PreconditionError);
}

TEST(ShardMergeTest, RejectsMismatchedShardQueryCounts) {
  std::vector<std::vector<std::vector<Neighbor>>> partials(2);
  partials[0] = {{{0.5f, 0u}}};
  partials[1] = {{{0.5f, 1u}}, {{0.5f, 2u}}};
  simt::Device dev;
  EXPECT_THROW((void)kernels::shard_merge(dev, partials, 2, 1, {}),
               PreconditionError);
}

}  // namespace
}  // namespace gpuksel::serve
