// Tests for Random Ball Cover and the additional §II-C baselines
// (Sample Select, Clustered-Sort).
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "baselines/clustered_sort.hpp"
#include "baselines/sample_select.hpp"
#include "core/kselect.hpp"
#include "knn/knn.hpp"
#include "knn/rbc.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace gpuksel {
namespace {

TEST(RbcIndex, BallsPartitionThePoints) {
  const auto points = knn::make_uniform_dataset(500, 8, 1);
  const knn::RandomBallCover rbc(points, 20, 2);
  std::set<std::uint32_t> seen;
  std::size_t total = 0;
  for (std::uint32_t r = 0; r < rbc.representatives(); ++r) {
    for (const std::uint32_t p : rbc.ball(r)) {
      EXPECT_TRUE(seen.insert(p).second) << "point in two balls";
      ++total;
    }
  }
  EXPECT_EQ(total, 500u);
}

TEST(RbcIndex, BadParamsThrow) {
  const auto points = knn::make_uniform_dataset(10, 4, 3);
  EXPECT_THROW(knn::RandomBallCover(points, 0, 1), PreconditionError);
  EXPECT_THROW(knn::RandomBallCover(points, 11, 1), PreconditionError);
}

TEST(RbcQuery, FullProbeEqualsExactSearch) {
  // Probing every ball visits every point: results must match brute force.
  const auto points = knn::make_uniform_dataset(300, 8, 4);
  const auto queries = knn::make_uniform_dataset(20, 8, 5);
  const knn::RandomBallCover rbc(points, 16, 6);
  const knn::BruteForceKnn exact(points);
  const auto truth = exact.search(queries, 10);
  const auto approx = rbc.query_batch(queries, 10, /*probe=*/16);
  EXPECT_EQ(approx, truth.neighbors);
  EXPECT_DOUBLE_EQ(knn::RandomBallCover::recall(approx, truth.neighbors), 1.0);
}

TEST(RbcQuery, RecallIncreasesWithProbe) {
  const auto points = knn::make_uniform_dataset(2000, 16, 7);
  const auto queries = knn::make_uniform_dataset(32, 16, 8);
  const knn::RandomBallCover rbc(points, 64, 9);
  const knn::BruteForceKnn exact(points);
  const auto truth = exact.search(queries, 8).neighbors;
  double prev = 0.0;
  for (const std::uint32_t probe : {1u, 8u, 64u}) {
    const double r = knn::RandomBallCover::recall(
        rbc.query_batch(queries, 8, probe), truth);
    EXPECT_GE(r + 1e-9, prev) << "probe=" << probe;
    prev = r;
  }
  EXPECT_DOUBLE_EQ(prev, 1.0);  // full probe is exact
}

TEST(RbcQuery, SupportsKBeyond32) {
  // The motivating limitation of the original RBC (odd-even sort, k <= 32).
  const auto points = knn::make_uniform_dataset(1000, 8, 10);
  const auto queries = knn::make_uniform_dataset(4, 8, 11);
  const knn::RandomBallCover rbc(points, 25, 12);
  const auto out = rbc.query_batch(queries, 100, 25);
  for (const auto& nbrs : out) {
    EXPECT_EQ(nbrs.size(), 100u);
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  }
}

// --- sample select ------------------------------------------------------------

TEST(SampleSelect, MatchesOracleAcrossSizes) {
  for (std::size_t n : {std::size_t{10}, std::size_t{500}, std::size_t{20000}}) {
    for (std::uint32_t k : {1u, 7u, 128u}) {
      const auto data = uniform_floats(n, 90 + n + k);
      EXPECT_EQ(baselines::sample_select(data, k), select_k_oracle(data, k))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(SampleSelect, DuplicateHeavyInputExact) {
  Rng rng(13);
  std::vector<float> data(8192);
  for (auto& v : data) v = static_cast<float>(rng.uniform_below(3)) * 0.5f;
  EXPECT_EQ(baselines::sample_select(data, 200), select_k_oracle(data, 200));
}

TEST(SampleSelect, DeterministicForSeed) {
  const auto data = uniform_floats(5000, 14);
  EXPECT_EQ(baselines::sample_select(data, 64, 1),
            baselines::sample_select(data, 64, 1));
}

TEST(SampleSelect, BadParamsThrow) {
  const auto data = uniform_floats(16, 15);
  EXPECT_THROW(baselines::sample_select(data, 0), PreconditionError);
  EXPECT_THROW(baselines::sample_select(data, 4, 0, 1), PreconditionError);
}

// --- clustered sort -------------------------------------------------------------

TEST(ClusteredSort, MatchesOraclePerQuery) {
  const std::uint32_t q = 23, n = 400, k = 16;
  const auto matrix = uniform_floats(std::size_t{q} * n, 16);
  const auto out = baselines::clustered_sort_select(matrix, q, n, k);
  ASSERT_EQ(out.size(), q);
  for (std::uint32_t qq = 0; qq < q; ++qq) {
    EXPECT_EQ(out[qq],
              select_k_oracle(
                  std::span<const float>(matrix.data() + std::size_t{qq} * n, n),
                  k))
        << "query " << qq;
  }
}

TEST(ClusteredSort, KLargerThanNReturnsAll) {
  const auto matrix = uniform_floats(3 * 5, 17);
  const auto out = baselines::clustered_sort_select(matrix, 3, 5, 100);
  for (const auto& nbrs : out) EXPECT_EQ(nbrs.size(), 5u);
}

TEST(ClusteredSort, SizeMismatchThrows) {
  const auto matrix = uniform_floats(10, 18);
  EXPECT_THROW(baselines::clustered_sort_select(matrix, 3, 4, 2),
               PreconditionError);
}

}  // namespace
}  // namespace gpuksel
