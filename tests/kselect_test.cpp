// Tests for the public scalar API: select_k_smallest across all algorithms,
// the buffered-search reference semantics, and edge cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/buffered_search.hpp"
#include "core/kselect.hpp"
#include "core/queues/heap_queue.hpp"
#include "core/queues/insertion_queue.hpp"
#include "core/queues/merge_queue.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace gpuksel {
namespace {

const Algo kAllAlgos[] = {Algo::kInsertionQueue, Algo::kHeapQueue,
                          Algo::kMergeQueue, Algo::kStdSort,
                          Algo::kStdNthElement};

struct SelectCase {
  Algo algo;
  std::uint32_t k;
  std::size_t n;
};

class SelectAlgoTest : public ::testing::TestWithParam<SelectCase> {};

TEST_P(SelectAlgoTest, MatchesOracle) {
  const auto& p = GetParam();
  const auto data = uniform_floats(p.n, 1234 + p.n + p.k);
  EXPECT_EQ(select_k_smallest(data, p.k, p.algo), select_k_oracle(data, p.k));
}

std::vector<SelectCase> select_cases() {
  std::vector<SelectCase> cases;
  for (Algo algo : kAllAlgos) {
    for (std::uint32_t k : {1u, 7u, 32u, 100u, 1024u}) {
      for (std::size_t n : {std::size_t{1}, std::size_t{100},
                            std::size_t{1024}, std::size_t{10000}}) {
        cases.push_back({algo, k, n});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, SelectAlgoTest,
                         ::testing::ValuesIn(select_cases()),
                         [](const auto& info) {
                           std::string name(algo_name(info.param.algo));
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name + "_k" + std::to_string(info.param.k) +
                                  "_n" + std::to_string(info.param.n);
                         });

TEST(SelectApi, KZeroThrows) {
  const auto data = uniform_floats(10, 1);
  EXPECT_THROW(select_k_smallest(data, 0), PreconditionError);
}

TEST(SelectApi, KLargerThanNReturnsEverything) {
  const auto data = uniform_floats(10, 2);
  for (Algo algo : kAllAlgos) {
    const auto result = select_k_smallest(data, 50, algo);
    EXPECT_EQ(result.size(), 10u) << algo_name(algo);
    EXPECT_TRUE(std::is_sorted(result.begin(), result.end()));
  }
}

TEST(SelectApi, ResultsAscendingAndUnique) {
  const auto data = uniform_floats(5000, 3);
  const auto result = select_k_smallest(data, 128);
  EXPECT_EQ(result.size(), 128u);
  for (std::size_t i = 1; i < result.size(); ++i) {
    EXPECT_TRUE(result[i - 1] < result[i]);
  }
}

TEST(SelectApi, AlgoNamesAreDistinct) {
  std::vector<std::string_view> names;
  for (Algo algo : kAllAlgos) names.push_back(algo_name(algo));
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST(SelectApi, HpEntryPointMatchesOracle) {
  const auto data = uniform_floats(4096, 4);
  for (std::uint32_t g : {2u, 4u, 8u}) {
    for (Algo algo :
         {Algo::kInsertionQueue, Algo::kHeapQueue, Algo::kMergeQueue}) {
      EXPECT_EQ(select_k_smallest_hp(data, 64, g, algo),
                select_k_oracle(data, 64))
          << algo_name(algo) << " G=" << g;
    }
  }
}

TEST(SelectApi, ChunkedSelectMatchesOracle) {
  const auto data = uniform_floats(10000, 6);
  for (std::size_t chunk : {std::size_t{1}, std::size_t{100},
                            std::size_t{1000}, std::size_t{1 << 14}}) {
    for (std::uint32_t k : {1u, 16u, 300u}) {
      EXPECT_EQ(select_k_smallest_chunked(data, k, chunk),
                select_k_oracle(data, k))
          << "chunk=" << chunk << " k=" << k;
    }
  }
}

TEST(SelectApi, ChunkedSelectWorksWithEveryAlgo) {
  const auto data = uniform_floats(3000, 7);
  for (Algo algo : kAllAlgos) {
    EXPECT_EQ(select_k_smallest_chunked(data, 64, 512, algo),
              select_k_oracle(data, 64))
        << algo_name(algo);
  }
}

TEST(SelectApi, ChunkedSelectBadParamsThrow) {
  const auto data = uniform_floats(10, 8);
  EXPECT_THROW(select_k_smallest_chunked(data, 0, 4), PreconditionError);
  EXPECT_THROW(select_k_smallest_chunked(data, 2, 0), PreconditionError);
}

TEST(SelectApi, HpRejectsNonQueueAlgos) {
  const auto data = uniform_floats(64, 5);
  EXPECT_THROW(select_k_smallest_hp(data, 8, 4, Algo::kStdSort),
               PreconditionError);
}

TEST(SelectApi, EmptyDlistThrowsEverywhere) {
  const std::vector<float> empty;
  EXPECT_THROW(select_k_smallest(empty, 1), PreconditionError);
  EXPECT_THROW(select_k_smallest_hp(empty, 1, 4), PreconditionError);
  EXPECT_THROW(select_k_smallest_chunked(empty, 1, 4), PreconditionError);
}

TEST(SelectApi, HpBadParamsThrow) {
  const auto data = uniform_floats(64, 9);
  EXPECT_THROW(select_k_smallest_hp(data, 0, 4), PreconditionError);
  EXPECT_THROW(select_k_smallest_hp(data, 8, 0), PreconditionError);
  EXPECT_THROW(select_k_smallest_hp(data, 8, 1), PreconditionError);
}

// --- NaN policy ---------------------------------------------------------------

TEST(NanPolicyApi, PropagateLeavesNansAlone) {
  std::vector<float> data = {1.0f, std::nanf(""), 2.0f};
  EXPECT_EQ(apply_nan_policy(data, NanPolicy::kPropagate), 0u);
  EXPECT_TRUE(std::isnan(data[1]));
}

TEST(NanPolicyApi, RejectThrowsOnNan) {
  std::vector<float> data = {1.0f, std::nanf(""), 2.0f};
  EXPECT_THROW(apply_nan_policy(data, NanPolicy::kReject), PreconditionError);
  // A NaN-free list passes untouched.
  std::vector<float> clean = {1.0f, 2.0f};
  EXPECT_EQ(apply_nan_policy(clean, NanPolicy::kReject), 0u);
}

TEST(NanPolicyApi, SortLastRemapsNansToInfinity) {
  std::vector<float> data = {3.0f, std::nanf(""), 1.0f, std::nanf("")};
  EXPECT_EQ(apply_nan_policy(data, NanPolicy::kSortLast), 2u);
  EXPECT_TRUE(std::isinf(data[1]));
  EXPECT_TRUE(std::isinf(data[3]));
  EXPECT_EQ(data[0], 3.0f);
  EXPECT_EQ(data[2], 1.0f);
}

TEST(NanPolicyApi, OracleWithSortLastRanksNansAfterRealCandidates) {
  const std::vector<float> data = {3.0f, std::nanf(""), 1.0f, 2.0f};
  const auto top3 = select_k_oracle(data, 3, NanPolicy::kSortLast);
  ASSERT_EQ(top3.size(), 3u);
  EXPECT_EQ(top3[0].index, 2u);
  EXPECT_EQ(top3[1].index, 3u);
  EXPECT_EQ(top3[2].index, 0u);
}

// --- buffered search reference semantics -------------------------------------

struct BufferCase {
  std::uint32_t k;
  std::uint32_t bsize;
  bool sorted;
};

class BufferedSearchTest : public ::testing::TestWithParam<BufferCase> {};

TEST_P(BufferedSearchTest, SameResultsAsDirectScan) {
  const auto& p = GetParam();
  const auto data = uniform_floats(20000, 900 + p.k);
  MergeQueue direct(p.k);
  for (std::uint32_t i = 0; i < data.size(); ++i) {
    direct.try_insert(data[i], i);
  }
  MergeQueue buffered(p.k);
  buffered_select(data, buffered, p.bsize, p.sorted);
  EXPECT_EQ(buffered.extract_sorted(), direct.extract_sorted());
}

TEST_P(BufferedSearchTest, WorksForAllQueueKinds) {
  const auto& p = GetParam();
  const auto data = uniform_floats(5000, 901 + p.bsize);
  const auto oracle = select_k_oracle(data, p.k);
  InsertionQueue qi(p.k);
  HeapQueue qh(p.k);
  MergeQueue qm(p.k);
  buffered_select(data, qi, p.bsize, p.sorted);
  buffered_select(data, qh, p.bsize, p.sorted);
  buffered_select(data, qm, p.bsize, p.sorted);
  EXPECT_EQ(qi.extract_sorted(), oracle);
  EXPECT_EQ(qh.extract_sorted(), oracle);
  EXPECT_EQ(qm.extract_sorted(), oracle);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BufferedSearchTest,
    ::testing::Values(BufferCase{8, 1, true}, BufferCase{8, 16, true},
                      BufferCase{64, 16, true}, BufferCase{64, 16, false},
                      BufferCase{256, 4, true}, BufferCase{256, 64, false}),
    [](const auto& info) {
      return "k" + std::to_string(info.param.k) + "_b" +
             std::to_string(info.param.bsize) +
             (info.param.sorted ? "_sorted" : "_unsorted");
    });

TEST(BufferedSearchStatsTest, LocalSortRejectsLateCandidates) {
  // With a sorted buffer, draining smallest-first lowers the queue head so
  // larger buffered candidates get rejected without insertion.  Statistically
  // certain on a large random input.
  const auto data = uniform_floats(1 << 15, 42);
  MergeQueue sorted_q(256);
  const auto sorted_stats = buffered_select(data, sorted_q, 32, true);
  EXPECT_GT(sorted_stats.rejected_late, 0u);
  EXPECT_EQ(sorted_stats.buffered,
            sorted_stats.inserted + sorted_stats.rejected_late);

  MergeQueue unsorted_q(256);
  const auto unsorted_stats = buffered_select(data, unsorted_q, 32, false);
  // Local Sort never increases the number of insertions.
  EXPECT_LE(sorted_stats.inserted, unsorted_stats.inserted);
}

TEST(BufferedSearchStatsTest, FlushesCountIncludesFinalPartial) {
  const auto data = uniform_floats(100, 43);
  InsertionQueue q(100);  // accepts everything
  const auto stats = buffered_select(data, q, 16, true);
  EXPECT_EQ(stats.buffered, 100u);
  EXPECT_EQ(stats.flushes, 7u);  // 6 full + 1 final partial
}

TEST(BufferedSearchStatsTest, ZeroBufferSizeThrows) {
  const auto data = uniform_floats(10, 44);
  MergeQueue q(4);
  EXPECT_THROW(buffered_select(data, q, 0, true), PreconditionError);
}

}  // namespace
}  // namespace gpuksel
