// Scalar-vs-SIMD differential suite for the lane engine (lane_vec.hpp).
//
// The vector backend's contract (DESIGN.md §12) is bit-identity: with the
// vector tier live or forced to the scalar reference via
// lanevec::set_enabled(false), every warp op must produce byte-identical
// registers (all 32 lanes, active or not), identical predicate masks,
// identical metrics, and identical faults.  Each test here runs the same
// work under both backends and compares at that granularity, sweeping
// randomized masks (empty / full / sparse / divergent), NaN and subnormal
// payloads, the sanitizer's checked paths, and live fault injection.
//
// On a build without a compiled vector tier (GPUKSEL_SIMD=OFF) both runs
// take the scalar path and the comparisons are self-checks — still valid,
// just vacuous; BackendReportsItsTier documents which case ran.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <limits>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/kernels/pipeline.hpp"
#include "core/kernels/select_kernels.hpp"
#include "knn/dataset.hpp"
#include "knn/ivf.hpp"
#include "knn/knn.hpp"
#include "simt/device.hpp"
#include "simt/fault_injection.hpp"
#include "simt/lane_vec.hpp"
#include "simt/memory.hpp"
#include "simt/profiler.hpp"
#include "simt/sanitizer.hpp"
#include "simt/types.hpp"
#include "simt/warp.hpp"
#include "simt/warp_ops.hpp"
#include "util/rng.hpp"

namespace gpuksel {
namespace {

using simt::Device;
using simt::F32;
using simt::FaultInjector;
using simt::InjectKind;
using simt::InjectorConfig;
using simt::kFullMask;
using simt::KernelMetrics;
using simt::kWarpSize;
using simt::LaneMask;
using simt::U32;
using simt::WarpContext;
using simt::WarpVar;

/// Restores the backend switch on scope exit so a failing test cannot leak a
/// disabled vector tier into later tests.
class ScopedBackend {
 public:
  explicit ScopedBackend(bool on) : prev_(simt::lanevec::enabled()) {
    simt::lanevec::set_enabled(on);
  }
  ~ScopedBackend() { simt::lanevec::set_enabled(prev_); }
  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;

 private:
  bool prev_;
};

/// Runs `fn` once per backend and returns {simd_result, scalar_result}.
template <typename Fn>
auto run_both(Fn&& fn) {
  auto simd = [&] {
    ScopedBackend b(true);
    return fn();
  }();
  auto scalar = [&] {
    ScopedBackend b(false);
    return fn();
  }();
  return std::pair(std::move(simd), std::move(scalar));
}

/// Exact object-representation view of a register: NaN payloads, signed
/// zeros and subnormals all compare by their bits, not their values.
template <typename T>
std::array<std::uint32_t, kWarpSize> bits(const WarpVar<T>& v) {
  static_assert(sizeof(T) == 4);
  std::array<std::uint32_t, kWarpSize> out{};
  std::memcpy(out.data(), v.lanes.data(), sizeof(out));
  return out;
}

/// Deterministic xorshift so mask/payload sweeps are reproducible.
struct XorShift {
  std::uint64_t s = 0x9e3779b97f4a7c15ull;
  std::uint32_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return static_cast<std::uint32_t>(s >> 16);
  }
};

std::vector<LaneMask> sweep_masks() {
  std::vector<LaneMask> masks = {
      0u,          kFullMask,   0x80000001u, 0x55555555u,
      0xaaaaaaaau, 0x0000ffffu, 0xffff0000u, 0x00010000u,
  };
  XorShift rng{0x1234abcdull};
  for (int i = 0; i < 6; ++i) masks.push_back(rng.next());
  return masks;
}

/// Float payloads covering the awkward corners: NaNs with distinct payload
/// bits, subnormals, signed zeros and infinities mixed into random data.
/// `phase` rotates which lanes get which corner — operand pairs built with
/// different phases never have NaN on the same lane, keeping adds inside the
/// bit-identity contract (both-NaN add payloads are unspecified; see
/// lanevec::add) while still driving every NaN-vs-finite path.
F32 awkward_floats(std::uint32_t salt, int phase = 0) {
  XorShift rng{std::uint64_t{salt} | 1u};
  F32 v{};
  for (int i = 0; i < kWarpSize; ++i) {
    switch ((i + phase) % 8) {
      case 3: {
        const std::uint32_t nan_bits = 0x7fc00000u | (rng.next() & 0xffffu);
        std::memcpy(&v[i], &nan_bits, 4);
        break;
      }
      case 5: {
        const std::uint32_t sub_bits = rng.next() & 0x007fffffu;  // subnormal
        std::memcpy(&v[i], &sub_bits, 4);
        break;
      }
      case 6:
        v[i] = (rng.next() & 1u) ? -0.0f
                                 : std::numeric_limits<float>::infinity();
        break;
      default:
        v[i] = static_cast<float>(static_cast<std::int32_t>(rng.next())) *
               0x1p-16f;
    }
  }
  return v;
}

U32 random_u32(std::uint32_t salt) {
  XorShift rng{std::uint64_t{salt} | 1u};
  U32 v{};
  for (int i = 0; i < kWarpSize; ++i) v[i] = rng.next();
  return v;
}

// --- register-level ops -----------------------------------------------------

TEST(SimdLaneDifferential, AluOpsBitIdentical) {
  for (const LaneMask m : sweep_masks()) {
    const F32 fa = awkward_floats(m * 2654435761u + 1);
    const F32 fb = awkward_floats(m * 2654435761u + 2, /*phase=*/4);
    const U32 ua = random_u32(m + 11);
    const U32 ub = random_u32(m + 12);
    auto run = [&] {
      KernelMetrics metrics;
      WarpContext ctx(metrics, 0);
      F32 facc = fa;
      ctx.add_sq(m, facc, fb);
      const auto results = std::tuple(
          bits(ctx.add(m, fa, fb)), bits(ctx.sub(m, fa, fb)),
          bits(ctx.add(m, ua, ub)), bits(ctx.add(m, ua, 977u)),
          bits(ctx.mul(m, ua, 33u)), bits(ctx.mad(m, ua, 7u, 13u)),
          bits(ctx.mad(m, ua, 5u, ub)), bits(ctx.lane_offset(m, 1000u)),
          bits(ctx.select(kFullMask, m, fa, fb)), bits(facc),
          bits(ctx.imm(m, 42u)), bits(ctx.shift_up_zero(m, ua, 3)));
      return std::pair(results, metrics);
    };
    const auto [simd, scalar] = run_both(run);
    EXPECT_EQ(simd.first, scalar.first) << "mask=0x" << std::hex << m;
    EXPECT_TRUE(simd.second == scalar.second) << "mask=0x" << std::hex << m;
  }
}

TEST(SimdLaneDifferential, PredicatesBitIdentical) {
  for (const LaneMask m : sweep_masks()) {
    const F32 fa = awkward_floats(m ^ 0xdeadu);
    F32 fb = awkward_floats(m ^ 0xbeefu);
    fb[7] = fa[7];  // force float ties so lex_lt exercises the index leg
    fb[19] = fa[19];
    const U32 ua = random_u32(m + 21);
    const U32 ub = random_u32(m + 22);
    auto run = [&] {
      KernelMetrics metrics;
      WarpContext ctx(metrics, 0);
      const auto results = std::tuple(
          ctx.cmp_lt(m, fa, fb), ctx.cmp_lt(m, ua, 1u << 30),
          ctx.cmp_le(m, fa, fb), ctx.cmp_gt(m, ua, ub),
          ctx.cmp_gt(m, ua, 1u << 29), ctx.cmp_ge(m, fa, fb),
          ctx.cmp_eq(m, ua, ub), ctx.cmp_eq(m, ua, ua[3]),
          ctx.lex_lt(m, fa, ua, fb, ub), ctx.iota_lt(m, 5u, 17u),
          ctx.inc_lt(m, ua, 1u << 28), ctx.ballot(m, 0x0f0f0f0fu),
          ctx.any(m, 0x40u), ctx.all(m, kFullMask));
      return std::pair(results, metrics);
    };
    const auto [simd, scalar] = run_both(run);
    EXPECT_EQ(simd.first, scalar.first) << "mask=0x" << std::hex << m;
    EXPECT_TRUE(simd.second == scalar.second) << "mask=0x" << std::hex << m;
  }
}

TEST(SimdLaneDifferential, ShufflesBitIdentical) {
  // Full-mask shuffles with identity / rotate / reverse / butterfly source
  // patterns; the divergent mask keeps lane parity so every active lane's
  // butterfly source stays active (lockstep-fault parity is covered at the
  // Device level by SanitizerFaultParity).
  const F32 src = awkward_floats(0x5117);
  const U32 usrc = random_u32(0x5118);
  U32 ident{}, rot{}, rev{};
  for (int i = 0; i < kWarpSize; ++i) {
    ident[i] = static_cast<std::uint32_t>(i);
    rot[i] = static_cast<std::uint32_t>((i + 5) % kWarpSize);
    rev[i] = static_cast<std::uint32_t>(kWarpSize - 1 - i);
  }
  for (const LaneMask m : {kFullMask, LaneMask{0x55555555u}}) {
    auto run = [&] {
      KernelMetrics metrics;
      WarpContext ctx(metrics, 0);
      auto results = std::tuple(
          bits(ctx.shfl(m, src, ident)), bits(ctx.shfl_xor(m, usrc, 2)),
          bits(ctx.shfl_xor(m, src, 4)), bits(ctx.shfl_xor(m, usrc, 16)),
          bits(ctx.shfl_bcast(m, src, 0)),
          m == kFullMask ? bits(ctx.shfl(m, src, rot)) : bits(src),
          m == kFullMask ? bits(ctx.shfl(m, usrc, rev)) : bits(usrc));
      return std::pair(results, metrics);
    };
    const auto [simd, scalar] = run_both(run);
    EXPECT_EQ(simd.first, scalar.first) << "mask=0x" << std::hex << m;
    EXPECT_TRUE(simd.second == scalar.second) << "mask=0x" << std::hex << m;
  }
}

TEST(SimdLaneDifferential, WarpReductionsBitIdentical) {
  for (const LaneMask m : sweep_masks()) {
    const F32 keys = awkward_floats(m + 0x900du);
    const U32 vals = random_u32(m + 0x900eu);
    auto run = [&] {
      KernelMetrics metrics;
      WarpContext ctx(metrics, 0);
      const auto keyed = simt::reduce_min_keyed(ctx, m, {keys, vals});
      const F32 mx = simt::reduce_max(ctx, m, keys);
      const U32 sum = simt::reduce_sum(ctx, m, vals);
      U32 small{};
      for (int i = 0; i < kWarpSize; ++i) small[i] = vals[i] & 0xffu;
      const U32 scan = simt::prefix_sum_exclusive(ctx, small);
      return std::pair(std::tuple(bits(keyed.keys), bits(keyed.values),
                                  bits(mx), bits(sum), bits(scan)),
                       metrics);
    };
    const auto [simd, scalar] = run_both(run);
    EXPECT_EQ(simd.first, scalar.first) << "mask=0x" << std::hex << m;
    EXPECT_TRUE(simd.second == scalar.second) << "mask=0x" << std::hex << m;
  }
}

// --- shared-memory bank accounting ------------------------------------------

/// Reference bank-conflict degree: max over banks of the number of distinct
/// words served, computed the obvious way with std::set.
int reference_degree(LaneMask m, const U32& words) {
  std::set<std::uint32_t> per_bank[kWarpSize];
  for (int i = 0; i < kWarpSize; ++i) {
    if (m & (1u << i)) per_bank[words[i] % kWarpSize].insert(words[i]);
  }
  std::size_t degree = 1;
  for (const auto& bank : per_bank) degree = std::max(degree, bank.size());
  return static_cast<int>(degree);
}

std::vector<U32> shared_word_patterns() {
  std::vector<U32> patterns;
  patterns.push_back(U32::iota());      // conflict-free, one word per bank
  patterns.push_back(U32::filled(3u));  // broadcast
  U32 alt{};                            // A,B,A,B... all in bank 0
  for (int i = 0; i < kWarpSize; ++i) alt[i] = (i % 2) ? 32u : 0u;
  patterns.push_back(alt);
  U32 trio{};  // words 0,32,0 in bank 0, the rest conflict-free
  for (int i = 0; i < kWarpSize; ++i) {
    trio[i] = i < 3 ? (i % 2) * 32u : static_cast<std::uint32_t>(i);
  }
  patterns.push_back(trio);
  for (std::uint32_t salt = 0; salt < 4; ++salt) {
    U32 r = random_u32(salt + 0x77u);
    for (int i = 0; i < kWarpSize; ++i) r[i] %= 96;  // force real collisions
    patterns.push_back(r);
  }
  return patterns;
}

TEST(SimdLaneDifferential, SharedDegreeMatchesSetReference) {
  // Both backends must model a bank replay per *distinct* word (satellite
  // regression: last-word tracking overcounted alternating patterns), and
  // the AVX fast paths must agree with the histogram on every shape.
  for (const LaneMask m : sweep_masks()) {
    for (const U32& words : shared_word_patterns()) {
      const int expect = reference_degree(m, words);
      const auto [simd, scalar] =
          run_both([&] { return simt::lanevec::shared_degree(m, words); });
      EXPECT_EQ(simd, expect) << "mask=0x" << std::hex << m;
      EXPECT_EQ(scalar, expect) << "mask=0x" << std::hex << m;
    }
  }
}

TEST(SimdLaneDifferential, SharedBankMetricsBitIdentical) {
  // End-to-end through SharedArray: requests, replays and issue charges must
  // match between backends for every mask x word-pattern combination.
  for (const LaneMask m : sweep_masks()) {
    for (const U32& words : shared_word_patterns()) {
      auto run = [&] {
        KernelMetrics metrics;
        WarpContext ctx(metrics, 0);
        simt::SharedArray<float> s(ctx, 96);
        s.write(kFullMask, U32::iota(), F32::filled(1.0f));
        (void)s.read(m, words);
        s.write(m, words, F32::filled(2.0f));
        return metrics;
      };
      const auto [simd, scalar] = run_both(run);
      EXPECT_TRUE(simd == scalar) << "mask=0x" << std::hex << m;
    }
  }
}

// --- memory system under the sanitizer --------------------------------------

TEST(SimdLaneDifferential, CheckedLoadStoreBitIdentical) {
  // Coalesced, strided and bank-conflicting access under the default
  // sanitizer (bounds + poison + ecc + lockstep all live): outputs, the
  // shadow-driven checks and the transaction/conflict metrics must match.
  auto run = [&] {
    Device dev;
    dev.set_worker_threads(1);
    simt::DeviceBuffer<float> in(256);
    for (std::size_t i = 0; i < in.size(); ++i) {
      in.host()[i] = static_cast<float>(i) * 0.25f - 20.0f;
    }
    simt::DeviceBuffer<float> out(256, 0.0f);
    simt::DeviceBuffer<std::uint32_t> uout(256, 0u);
    const auto in_span = in.cspan();
    auto out_span = out.span();
    auto uout_span = uout.span();
    const auto metrics = dev.launch(
        "diff_mem", 2, [&](WarpContext& ctx, std::uint32_t w) {
          const LaneMask m = (w == 0) ? kFullMask : LaneMask{0x0ffff00fu};
          const U32 lane = WarpContext::lane_id();
          const U32 coalesced = ctx.add(m, lane, w * 32u);
          const U32 strided = ctx.mad(m, lane, 7u, w);
          const F32 a = ctx.load(m, in_span, coalesced);
          const F32 b = ctx.load(m, in_span, strided);
          const F32 s = ctx.add(m, a, b);
          ctx.store(m, out_span, coalesced, s);
          ctx.store(m, uout_span, strided, ctx.mul(m, lane, 3u));
          // Shared scratch with a deliberate 2-way bank conflict (lane*2).
          simt::SharedArray<std::uint32_t> sh(ctx, 64, 0u);
          sh.write(m, ctx.mul(m, lane, 2u), lane);
          (void)sh.read(m, ctx.mul(m, lane, 2u));
        });
    return std::tuple(out.host(), uout.host(), metrics);
  };
  const auto [simd, scalar] = run_both(run);
  EXPECT_EQ(std::get<0>(simd), std::get<0>(scalar));
  EXPECT_EQ(std::get<1>(simd), std::get<1>(scalar));
  EXPECT_TRUE(std::get<2>(simd) == std::get<2>(scalar));
}

/// Captures a fault as its full what() string: kernel, warp, lane and detail
/// must all match across backends.
template <typename Fn>
std::string fault_message(Fn&& fn) {
  try {
    fn();
  } catch (const std::exception& e) {
    return e.what();
  }
  return "(no fault)";
}

TEST(SimdLaneDifferential, SanitizerFaultParity) {
  // The vector detectors only answer "any violation?"; attribution reruns
  // the scalar walk.  Same fault kind, same (lowest) lane, same message.
  auto oob = [&] {
    return fault_message([&] {
      Device dev;
      dev.set_worker_threads(1);
      simt::DeviceBuffer<float> buf(64, 1.0f);
      const auto span = buf.cspan();
      (void)dev.launch("oob", 1, [&](WarpContext& ctx, std::uint32_t) {
        const U32 idx = ctx.mad(kFullMask, WarpContext::lane_id(), 3u, 0u);
        (void)ctx.load(kFullMask, span, idx);
      });
    });
  };
  auto uninit = [&] {
    return fault_message([&] {
      Device dev;
      dev.set_worker_threads(1);
      auto buf = simt::DeviceBuffer<float>::uninitialized(64);
      const auto span = buf.cspan();
      (void)dev.launch("uninit", 1, [&](WarpContext& ctx, std::uint32_t) {
        (void)ctx.load(LaneMask{0x00000110u}, span, WarpContext::lane_id());
      });
    });
  };
  auto collide = [&] {
    return fault_message([&] {
      Device dev;
      dev.set_worker_threads(1);
      simt::DeviceBuffer<float> buf(64, 0.0f);
      auto span = buf.span();
      (void)dev.launch("collide", 1, [&](WarpContext& ctx, std::uint32_t) {
        U32 idx = WarpContext::lane_id();
        ctx.alu(kFullMask, idx, [&](int i) { return i == 9 ? 4u : idx[i]; });
        ctx.store(kFullMask, span, idx, F32::filled(1.0f));
      });
    });
  };
  auto shuffle = [&] {
    return fault_message([&] {
      Device dev;
      dev.set_worker_threads(1);
      (void)dev.launch("shuffle", 1, [&](WarpContext& ctx, std::uint32_t) {
        // Lanes 0 and 1 source lanes 4 and 5, which are inactive.
        (void)ctx.shfl_xor(LaneMask{0x00000003u}, F32::filled(2.0f), 4);
      });
    });
  };
  auto check = [&](auto& fn, const char* what) {
    const auto [simd, scalar] = run_both(fn);
    EXPECT_NE(simd, "(no fault)") << what;
    EXPECT_EQ(simd, scalar) << what;
  };
  check(oob, "global out-of-bounds");
  check(uninit, "uninitialized read");
  check(collide, "store collision");
  check(shuffle, "inactive shuffle source");
}

TEST(SimdLaneDifferential, FaultInjectionBitIdentical) {
  // A live injector disables the unchecked fast path; injected corruption
  // (deterministic in warp id and per-warp access ordinal) must pick the
  // same victims and produce the same downstream results under either
  // backend.  ECC off + kSortLast so injected NaNs reroute instead of
  // faulting (the same recipe as the fault-determinism suite).
  auto run = [&] {
    Device dev;
    dev.set_worker_threads(1);
    dev.sanitizer().ecc = false;
    dev.sanitizer().nan_policy = NanPolicy::kSortLast;
    InjectorConfig icfg;
    icfg.kind = InjectKind::kNanInject;
    icfg.seed = 7;
    icfg.period = 64;
    icfg.max_faults = 0;  // unlimited: order-free decisions
    FaultInjector injector(icfg);
    dev.set_fault_injector(&injector);
    const auto matrix = uniform_floats(std::size_t{64} * 512, 99);
    kernels::SelectConfig cfg;
    cfg.buffer = kernels::BufferMode::kFullSorted;
    const auto out = kernels::flat_select(dev, matrix, 64, 512, 16, cfg);
    dev.set_fault_injector(nullptr);
    return std::tuple(out.neighbors, out.metrics, injector.events());
  };
  const auto [simd, scalar] = run_both(run);
  EXPECT_EQ(std::get<0>(simd), std::get<0>(scalar));
  EXPECT_TRUE(std::get<1>(simd) == std::get<1>(scalar));
  EXPECT_EQ(std::get<2>(simd), std::get<2>(scalar));
  EXPECT_FALSE(std::get<2>(simd).empty()) << "injection never fired — vacuous";
}

// --- end-to-end: results, metrics, profiles, thread counts ------------------

TEST(SimdLaneDifferential, PipelineProfileByteIdenticalAcrossThreadCounts) {
  // The tentpole acceptance gate: distance + selection results, metrics and
  // the exported profile are byte-identical between backends at every
  // executor thread count the determinism suite uses.
  const auto queries = uniform_floats(std::size_t{64} * 8, 3);
  const auto refs = uniform_floats(std::size_t{512} * 8, 4);
  auto run = [&](unsigned threads) {
    Device dev;
    dev.set_worker_threads(threads);
    simt::Profiler prof;
    prof.set_include_host_info(false);  // wall time is the only legal delta
    dev.set_profiler(&prof);
    const auto dist =
        kernels::gpu_distance_matrix(dev, queries, refs, 64, 512, 8);
    kernels::SelectConfig cfg;
    cfg.buffer = kernels::BufferMode::kFullSorted;
    const auto out = kernels::flat_select(
        dev, std::as_const(dist.matrix).host(), 64, 512, 32, cfg);
    std::ostringstream report;
    prof.write_report(report);
    return std::tuple(out.neighbors, dist.metrics, out.metrics, report.str());
  };
  const auto baseline = [&] {
    ScopedBackend b(false);
    return run(1);
  }();
  for (const unsigned threads : {1u, 2u, 7u, 16u}) {
    for (const bool simd : {true, false}) {
      ScopedBackend b(simd);
      const auto got = run(threads);
      EXPECT_EQ(std::get<0>(got), std::get<0>(baseline))
          << "threads=" << threads << " simd=" << simd;
      EXPECT_TRUE(std::get<1>(got) == std::get<1>(baseline))
          << "threads=" << threads << " simd=" << simd;
      EXPECT_TRUE(std::get<2>(got) == std::get<2>(baseline))
          << "threads=" << threads << " simd=" << simd;
      EXPECT_EQ(std::get<3>(got), std::get<3>(baseline))
          << "threads=" << threads << " simd=" << simd;
    }
  }
}

TEST(SimdLaneDifferential, IvfTrainAndSearchByteIdenticalAcrossBackends) {
  // The pruned IVF path end to end: k-means++ training (host sampling plus
  // the ivf_train assignment launch), the coarse_quantize / list_scan /
  // ivf_reduce pipeline, and the host mirror must all be byte-identical
  // between backends at the thread counts the determinism suite uses — the
  // fig13 determinism gate at test scale.
  const knn::Dataset refs =
      knn::make_gaussian_clusters(360, 6, 8, 0.1f, 5).points;
  const knn::Dataset queries = knn::make_uniform_dataset(64, 6, 6);
  auto run = [&](unsigned threads) {
    Device dev;
    dev.set_worker_threads(threads);
    knn::IvfOptions opts;
    opts.params.nlist = 8;
    opts.params.nprobe = 3;
    opts.batch.batch.tile_refs = 32;
    knn::IvfKnn engine(refs, opts);
    engine.train(dev);
    const knn::KnnResult device = engine.search_gpu(dev, queries, 7);
    const knn::KnnResult host = engine.search_host(queries, 7);
    EXPECT_EQ(device.neighbors, host.neighbors)
        << "host mirror diverged, threads=" << threads
        << " simd=" << simt::lanevec::enabled();
    return std::tuple(engine.index().centroids, engine.index().list_begin,
                      engine.index().row_ids, device.neighbors,
                      dev.cumulative());
  };
  const auto baseline = [&] {
    ScopedBackend b(false);
    return run(1);
  }();
  for (const unsigned threads : {1u, 2u, 7u, 16u}) {
    for (const bool simd : {true, false}) {
      ScopedBackend b(simd);
      const auto got = run(threads);
      EXPECT_EQ(std::get<0>(got), std::get<0>(baseline))
          << "threads=" << threads << " simd=" << simd;
      EXPECT_EQ(std::get<1>(got), std::get<1>(baseline))
          << "threads=" << threads << " simd=" << simd;
      EXPECT_EQ(std::get<2>(got), std::get<2>(baseline))
          << "threads=" << threads << " simd=" << simd;
      EXPECT_EQ(std::get<3>(got), std::get<3>(baseline))
          << "threads=" << threads << " simd=" << simd;
      EXPECT_TRUE(std::get<4>(got) == std::get<4>(baseline))
          << "threads=" << threads << " simd=" << simd;
    }
  }
}

TEST(SimdLaneDifferential, BackendReportsItsTier) {
  // Smoke-check the dispatch plumbing itself: the compiled tier name is one
  // of the known backends, and the runtime switch actually flips enabled().
  const std::string name = simt::lanevec::backend_name();
  EXPECT_TRUE(name == "avx512" || name == "avx2" || name == "scalar") << name;
  if (simt::lanevec::compiled()) {
    ScopedBackend on(true);
    EXPECT_TRUE(simt::lanevec::enabled());
    {
      ScopedBackend off(false);
      EXPECT_FALSE(simt::lanevec::enabled());
    }
    EXPECT_TRUE(simt::lanevec::enabled());  // scope restore works
  } else {
    ScopedBackend on(true);
    EXPECT_FALSE(simt::lanevec::enabled()) << "scalar build cannot enable SIMD";
  }
}

}  // namespace
}  // namespace gpuksel
