// Randomized differential testing: for hundreds of random (N, k, data
// distribution, configuration) draws, every implementation in the repository
// must agree exactly with the oracle — the broadest net over tie handling,
// boundary sizes and configuration interactions.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "baselines/bucket_select.hpp"
#include "baselines/cpu_select.hpp"
#include "baselines/qms.hpp"
#include "baselines/radix_select.hpp"
#include "baselines/sample_select.hpp"
#include "baselines/tbs.hpp"
#include "core/kernels/hp_kernels.hpp"
#include "core/kernels/pipeline.hpp"
#include "core/kselect.hpp"
#include "knn/batch.hpp"
#include "knn/dataset.hpp"
#include "knn/knn.hpp"
#include "knn/mutable.hpp"
#include "util/rng.hpp"

namespace gpuksel {
namespace {

using kernels::BufferMode;

using kernels::QueueKind;
using kernels::QueueLayout;
using kernels::SelectConfig;

/// One random scenario drawn from `rng`.
struct Scenario {
  std::uint32_t n;
  std::uint32_t k;
  std::vector<float> data;
};

Scenario draw_scenario(Rng& rng) {
  Scenario s;
  s.n = 1 + static_cast<std::uint32_t>(rng.uniform_below(3000));
  s.k = 1 + static_cast<std::uint32_t>(rng.uniform_below(300));
  s.data.resize(s.n);
  // Mix distributions: continuous, few-valued (tie-heavy), constant.
  const auto dist = rng.uniform_below(4);
  for (auto& v : s.data) {
    switch (dist) {
      case 0: v = rng.uniform_float(); break;
      case 1: v = static_cast<float>(rng.uniform_below(5)) * 0.125f; break;
      case 2: v = 0.5f; break;
      default: v = rng.uniform_float() * 1e-6f; break;
    }
  }
  return s;
}

TEST(FuzzDifferential, ScalarAlgorithmsAgree) {
  Rng rng(0xfa57);
  for (int round = 0; round < 200; ++round) {
    const Scenario s = draw_scenario(rng);
    const auto oracle = select_k_oracle(s.data, s.k);
    for (Algo algo : {Algo::kInsertionQueue, Algo::kHeapQueue,
                      Algo::kMergeQueue, Algo::kStdSort, Algo::kStdNthElement}) {
      ASSERT_EQ(select_k_smallest(s.data, s.k, algo), oracle)
          << "round " << round << " algo " << algo_name(algo) << " n=" << s.n
          << " k=" << s.k;
    }
    ASSERT_EQ(baselines::radix_select(s.data, s.k), oracle) << round;
    ASSERT_EQ(baselines::bucket_select(s.data, s.k), oracle) << round;
    ASSERT_EQ(baselines::sample_select(s.data, s.k), oracle) << round;
    const std::size_t chunk = 1 + rng.uniform_below(s.n);
    ASSERT_EQ(select_k_smallest_chunked(s.data, s.k, chunk), oracle) << round;
  }
}

TEST(FuzzDifferential, ScalarHpAgrees) {
  Rng rng(0xfa58);
  for (int round = 0; round < 100; ++round) {
    const Scenario s = draw_scenario(rng);
    const auto g = 2 + static_cast<std::uint32_t>(rng.uniform_below(7));
    ASSERT_EQ(select_k_smallest_hp(s.data, s.k, g, Algo::kMergeQueue),
              select_k_oracle(s.data, s.k))
        << "round " << round << " n=" << s.n << " k=" << s.k << " G=" << g;
  }
}

TEST(FuzzDifferential, KernelConfigurationsAgree) {
  Rng rng(0xfa59);
  for (int round = 0; round < 40; ++round) {
    // A small multi-query instance with a random kernel configuration.
    const std::uint32_t q = 1 + static_cast<std::uint32_t>(rng.uniform_below(40));
    const std::uint32_t n = 1 + static_cast<std::uint32_t>(rng.uniform_below(500));
    const std::uint32_t k = 1 + static_cast<std::uint32_t>(rng.uniform_below(80));
    std::vector<float> matrix(std::size_t{q} * n);
    const bool ties = rng.uniform_below(2) == 0;
    for (auto& v : matrix) {
      v = ties ? static_cast<float>(rng.uniform_below(4)) * 0.25f
               : rng.uniform_float();
    }

    SelectConfig cfg;
    cfg.queue = static_cast<QueueKind>(rng.uniform_below(3));
    cfg.buffer = static_cast<BufferMode>(rng.uniform_below(4));
    cfg.aligned_merge = rng.uniform_below(2) == 0;
    cfg.merge_strategy = static_cast<MergeStrategy>(rng.uniform_below(2));
    cfg.queue_layout = static_cast<QueueLayout>(rng.uniform_below(2));
    cfg.cache_head = rng.uniform_below(2) == 0;
    cfg.buffer_size = 1u << (2 + rng.uniform_below(4));
    cfg.merge_m = 1u << rng.uniform_below(5);

    // Oracle per query (reference-major layout).
    std::vector<std::vector<Neighbor>> expected(q);
    std::vector<float> row(n);
    for (std::uint32_t qq = 0; qq < q; ++qq) {
      for (std::uint32_t r = 0; r < n; ++r) {
        row[r] = matrix[std::size_t{r} * q + qq];
      }
      expected[qq] = select_k_oracle(row, k);
    }

    simt::Device dev;
    ASSERT_EQ(kernels::flat_select(dev, matrix, q, n, k, cfg).neighbors,
              expected)
        << "round " << round << " q=" << q << " n=" << n << " k=" << k;
    const auto g = 2 + static_cast<std::uint32_t>(rng.uniform_below(7));
    ASSERT_EQ(kernels::hp_select(dev, matrix, q, n, k, cfg, g).neighbors,
              expected)
        << "round " << round << " G=" << g;
  }
}

TEST(FuzzDifferential, AdversarialDistributionsAgree) {
  // Distributions crafted to stress the corners random draws rarely hit:
  // pure tie-breaking, worst-case arrival order, subnormal magnitudes, and
  // NaN/Inf-laced input under the kSortLast policy.
  Rng rng(0xfa5b);
  for (int round = 0; round < 120; ++round) {
    const auto n = 1 + static_cast<std::uint32_t>(rng.uniform_below(2000));
    auto k = 1 + static_cast<std::uint32_t>(rng.uniform_below(200));
    std::vector<float> data(n);
    const auto shape = rng.uniform_below(4);
    switch (shape) {
      case 0:  // all-equal: every result is decided by index tie-breaking
        for (auto& v : data) v = 0.25f;
        break;
      case 1:  // strictly descending: every scan step displaces the worst
        for (std::uint32_t i = 0; i < n; ++i) {
          data[i] = static_cast<float>(n - i);
        }
        break;
      case 2:  // subnormal magnitudes (with exact ties mixed in)
        for (auto& v : data) {
          v = static_cast<float>(rng.uniform_below(16)) * 1e-41f;
        }
        break;
      default:  // NaN/Inf-laced
        for (auto& v : data) {
          const auto r = rng.uniform_below(8);
          if (r == 0) {
            v = std::numeric_limits<float>::quiet_NaN();
          } else if (r == 1) {
            v = std::numeric_limits<float>::infinity();
          } else {
            v = rng.uniform_float();
          }
        }
        break;
    }

    // All comparisons run over the kSortLast-sanitized list.  k is capped to
    // the finite candidate count: kSortLast guarantees NaNs never displace a
    // real candidate, so within that range every algorithm must agree.
    std::vector<float> clean = data;
    apply_nan_policy(clean, NanPolicy::kSortLast);
    auto finite = static_cast<std::uint32_t>(std::count_if(
        clean.begin(), clean.end(), [](float v) { return std::isfinite(v); }));
    if (finite == 0) {
      clean[0] = 0.5f;
      finite = 1;
    }
    k = std::min(k, finite);

    const auto oracle = select_k_oracle(clean, k);
    for (Algo algo : {Algo::kInsertionQueue, Algo::kHeapQueue,
                      Algo::kMergeQueue, Algo::kStdSort, Algo::kStdNthElement}) {
      ASSERT_EQ(select_k_smallest(clean, k, algo), oracle)
          << "round " << round << " shape " << shape << " algo "
          << algo_name(algo) << " n=" << n << " k=" << k;
    }
    const std::size_t chunk = 1 + rng.uniform_below(n);
    ASSERT_EQ(select_k_smallest_chunked(clean, k, chunk), oracle)
        << "round " << round << " shape " << shape;
    const auto g = 2 + static_cast<std::uint32_t>(rng.uniform_below(7));
    ASSERT_EQ(select_k_smallest_hp(clean, k, g), oracle)
        << "round " << round << " shape " << shape << " G=" << g;
    if (shape != 3) {  // selection-by-value baselines expect finite input
      ASSERT_EQ(baselines::radix_select(clean, k), oracle)
          << "round " << round << " shape " << shape;
      ASSERT_EQ(baselines::bucket_select(clean, k), oracle)
          << "round " << round << " shape " << shape;
      ASSERT_EQ(baselines::sample_select(clean, k), oracle)
          << "round " << round << " shape " << shape;
    }
  }
}

TEST(FuzzDifferential, DeviceNanSortLastAgrees) {
  // End-to-end check of the sanitizer's load-time NaN remap: raw NaN-laced
  // distances go to the device, the kSortLast policy remaps them as they are
  // loaded, and the selection kernel must match the sanitized scalar oracle.
  Rng rng(0xfa5c);
  for (int round = 0; round < 20; ++round) {
    const auto n = 1 + static_cast<std::uint32_t>(rng.uniform_below(400));
    auto k = 1 + static_cast<std::uint32_t>(rng.uniform_below(60));
    std::vector<float> data(n);
    for (auto& v : data) {
      v = rng.uniform_below(6) == 0 ? std::numeric_limits<float>::quiet_NaN()
                                    : rng.uniform_float();
    }
    std::vector<float> clean = data;
    apply_nan_policy(clean, NanPolicy::kSortLast);
    auto finite = static_cast<std::uint32_t>(std::count_if(
        clean.begin(), clean.end(), [](float v) { return std::isfinite(v); }));
    if (finite == 0) {
      data[0] = 0.5f;
      clean[0] = 0.5f;
      finite = 1;
    }
    k = std::min(k, finite);

    const std::vector<std::vector<Neighbor>> expected = {
        select_k_oracle(clean, k)};
    simt::Device dev;
    dev.sanitizer().nan_policy = NanPolicy::kSortLast;
    ASSERT_EQ(kernels::flat_select(dev, data, 1, n, k, SelectConfig{}).neighbors,
              expected)
        << "round " << round << " n=" << n << " k=" << k;
  }
}

/// Feature-space distributions for the batched differential matrix; each
/// stresses a different corner of the sharded pipeline (tie-breaking across
/// shard boundaries, duplicate distances, subnormal accumulation, NaNs).
knn::Dataset make_feature_set(std::uint32_t count, std::uint32_t dim,
                              std::uint32_t shape, Rng& rng) {
  knn::Dataset d;
  d.count = count;
  d.dim = dim;
  d.values.resize(std::size_t{count} * dim);
  switch (shape) {
    case 0:  // continuous uniform
      for (auto& v : d.values) v = rng.uniform_float();
      break;
    case 1:  // few-valued features: heavy duplicate distances
      for (auto& v : d.values) {
        v = static_cast<float>(rng.uniform_below(3)) * 0.25f;
      }
      break;
    case 2:  // all-constant: every distance equal, pure index tie-breaking
      for (auto& v : d.values) v = 0.5f;
      break;
    case 3:  // subnormal magnitudes: squared diffs underflow and tie
      for (auto& v : d.values) {
        v = static_cast<float>(rng.uniform_below(8)) * 1e-21f;
      }
      break;
    case 4:  // duplicated rows: exact duplicate distances across shards
      for (std::uint32_t i = 0; i < count; ++i) {
        for (std::uint32_t dd = 0; dd < dim; ++dd) {
          Rng row_rng(0xd0b1e + (i % 7) * 131 + dd);
          d.values[std::size_t{i} * dim + dd] = row_rng.uniform_float();
        }
      }
      break;
    case 5:  // strongly ordered: row i at distance ~(count-i)^2 * dim
      for (std::uint32_t i = 0; i < count; ++i) {
        for (std::uint32_t dd = 0; dd < dim; ++dd) {
          d.values[std::size_t{i} * dim + dd] = static_cast<float>(count - i);
        }
      }
      break;
    case 6:  // coarse grid: continuous draw snapped to 1/8 steps (many ties)
      for (auto& v : d.values) {
        v = std::floor(rng.uniform_float() * 8.0f) * 0.125f;
      }
      break;
    default:  // NaN-laced rows (served under kSortLast); row 0 stays clean
      for (std::uint32_t i = 0; i < count; ++i) {
        const bool poison = i > 0 && rng.uniform_below(5) == 0;
        for (std::uint32_t dd = 0; dd < dim; ++dd) {
          d.values[std::size_t{i} * dim + dd] =
              poison && dd == rng.uniform_below(dim)
                  ? std::numeric_limits<float>::quiet_NaN()
                  : rng.uniform_float();
        }
      }
      break;
  }
  return d;
}

/// References whose distances to *every* query are finite under kSortLast:
/// the per-lane queues reject non-finite candidates (nothing beats the
/// FLT_MAX sentinel), so agreement with the CPU reference is asserted for
/// k capped to this count — the same convention the adversarial scalar
/// tests use.
std::uint32_t finite_row_count(const knn::Dataset& refs) {
  std::uint32_t finite = 0;
  for (std::uint32_t i = 0; i < refs.count; ++i) {
    bool ok = true;
    for (std::uint32_t dd = 0; dd < refs.dim; ++dd) {
      ok = ok && std::isfinite(refs.values[std::size_t{i} * refs.dim + dd]);
    }
    finite += ok ? 1u : 0u;
  }
  return finite;
}

TEST(FuzzDifferential, BatchedMatchesPerQueryGpuAndCpuSelect) {
  // The batched serving matrix: 8 feature distributions x 4 batch shapes
  // (single query, sub-warp, exactly one warp, warp-plus-one).  Every cell
  // must agree bit-for-bit with (a) per-query BruteForceKnn::search_gpu —
  // the fused tile kernel replicates gpu_distance_matrix's FP op order, so
  // even distances are bitwise-identical — and (b) the CPU heap baseline
  // over the device-computed distance matrix.
  Rng rng(0xba7c);
  const std::uint32_t batch_shapes[] = {1, 7, 32, 33};
  for (std::uint32_t shape = 0; shape < 8; ++shape) {
    for (std::size_t bi = 0; bi < 4; ++bi) {
      const std::uint32_t q = batch_shapes[bi];
      const std::uint32_t dim = 1 + static_cast<std::uint32_t>(rng.uniform_below(6));
      const std::uint32_t n =
          40 + static_cast<std::uint32_t>(rng.uniform_below(120));
      const knn::Dataset refs = make_feature_set(n, dim, shape, rng);
      const knn::Dataset queries = make_feature_set(q, dim, 0, rng);
      // Tiles deliberately small so k > n-per-shard is the common case.
      const std::uint32_t tile =
          1 + static_cast<std::uint32_t>(rng.uniform_below(48));
      std::uint32_t k;
      switch ((shape + bi) % 3) {
        case 0: k = n; break;         // k == n: keep everything
        case 1: k = tile + 3; break;  // k > n-per-shard, always
        default:
          k = 1 + static_cast<std::uint32_t>(rng.uniform_below(n));
          break;
      }
      const NanPolicy policy =
          shape == 7 ? NanPolicy::kSortLast : NanPolicy::kPropagate;
      k = std::min(k, finite_row_count(refs));

      knn::BatchedKnnOptions opts;
      opts.batch.tile_refs = tile;
      opts.nan_policy = policy;
      simt::Device bdev;
      knn::BatchedKnn batched(refs, opts);
      const auto got = batched.search_gpu(bdev, queries, k).neighbors;
      ASSERT_EQ(got.size(), q);

      // (a) the scalar GPU path, one search per query.
      const knn::BruteForceKnn scalar(refs);
      knn::GpuSearchOptions sopts;
      sopts.nan_policy = policy;
      for (std::uint32_t qq = 0; qq < q; ++qq) {
        knn::Dataset one;
        one.count = 1;
        one.dim = dim;
        one.values.assign(
            queries.values.begin() + std::size_t{qq} * dim,
            queries.values.begin() + (std::size_t{qq} + 1) * dim);
        simt::Device dev;
        ASSERT_EQ(got[qq], scalar.search_gpu(dev, one, k, sopts).neighbors[0])
            << "shape " << shape << " batch " << q << " query " << qq
            << " n=" << n << " k=" << k << " tile=" << tile;
      }

      // (b) the CPU heap baseline over the device-computed matrix (same
      // floats the kernels see, sanitized under the same NaN policy).
      simt::Device mdev;
      mdev.sanitizer().nan_policy = policy;
      auto dm = kernels::gpu_distance_matrix(
          mdev, knn::to_dim_major(queries), refs.values, q, n, dim,
          kernels::MatrixLayout::kQueryMajor);
      std::vector<float> matrix = dm.matrix.host();
      apply_nan_policy(matrix, policy);
      ASSERT_EQ(got, baselines::cpu_select_all(matrix, q, n, k, 1))
          << "shape " << shape << " batch " << q << " n=" << n << " k=" << k
          << " tile=" << tile;
    }
  }
}

TEST(FuzzDifferential, BatchedQueueServesMixedBatchesExactly) {
  // The FIFO front end with heterogeneous batch shapes and k values in one
  // serve() call, against the one-shot batched path and the scalar pipeline.
  Rng rng(0xba7d);
  const std::uint32_t dim = 5, n = 150;
  const knn::Dataset refs = make_feature_set(n, dim, 1, rng);
  const knn::BruteForceKnn scalar(refs);
  knn::BatchedKnnOptions opts;
  opts.batch.tile_refs = 32;
  simt::Device dev;
  knn::BatchedKnn batched(refs, opts);
  std::vector<knn::Dataset> batches;
  std::vector<std::uint32_t> ks;
  for (const std::uint32_t q : {1u, 32u, 33u, 7u}) {
    batches.push_back(make_feature_set(q, dim, 0, rng));
    ks.push_back(1 + static_cast<std::uint32_t>(rng.uniform_below(60)));
    batched.enqueue(batches.back(), ks.back());
  }
  const auto results = batched.serve(dev);
  ASSERT_EQ(results.size(), batches.size());
  for (std::size_t i = 0; i < batches.size(); ++i) {
    simt::Device sdev;
    ASSERT_EQ(results[i].neighbors,
              scalar.search_gpu(sdev, batches[i], ks[i]).neighbors)
        << "batch " << i << " q=" << batches[i].count << " k=" << ks[i];
  }
}

TEST(FuzzDifferential, MutableIndexMatchesFreshRebuildEveryStep) {
  // The streaming-index differential matrix: {flat, IVF-exact} bases x
  // k in {1, 5, 16}, a random interleaving of inserts, replaces, removes and
  // compactions, and after *every* op the mutable answer must be
  // byte-identical to a fresh exact engine built over the logically-current
  // rows.  The IVF base runs at nprobe == nlist, where pruning is a no-op
  // and the contract holds even while a delta/tombstones exist.
  Rng rng(0x3017);
  const std::uint32_t dim = 4;
  for (const bool ivf_base : {false, true}) {
    for (const std::uint32_t k : {1u, 5u, 16u}) {
      knn::MutableKnnOptions mopts;
      if (ivf_base) {
        mopts.base = knn::MutableBase::kIvf;
        mopts.ivf.nlist = 4;
        mopts.ivf.nprobe = 4;
      }
      mopts.min_compact_rows = 32;
      knn::MutableKnn index(knn::make_uniform_dataset(60, dim, 0x90 + k),
                            mopts);
      const knn::Dataset queries =
          knn::make_uniform_dataset(6, dim, 0x91 + k);
      simt::Device dev;
      std::vector<float> row(dim);
      for (int op = 0; op < 40; ++op) {
        const auto kind = rng.uniform_below(8);
        for (auto& v : row) v = rng.uniform_float();
        if (kind < 3) {
          (void)index.insert(row);
        } else if (kind < 5) {
          const auto& ids = index.live_ids();
          if (!ids.empty()) {
            index.upsert(ids[rng.uniform_below(ids.size())], row);
          }
        } else if (kind < 7) {
          const auto& ids = index.live_ids();
          if (!ids.empty()) {
            ASSERT_TRUE(index.remove(ids[rng.uniform_below(ids.size())]));
          }
        } else {
          (void)index.compact();
        }
        (void)index.maybe_compact();

        const auto got = index.search(dev, queries, k).neighbors;
        if (index.live_rows() == 0) {
          for (const auto& list : got) ASSERT_TRUE(list.empty());
          continue;
        }
        simt::Device fresh_dev;
        knn::BatchedKnn fresh(index.materialize(), mopts.batch);
        ASSERT_EQ(got, fresh.search_gpu(fresh_dev, queries, k).neighbors)
            << (ivf_base ? "ivf" : "flat") << " base, k=" << k
            << ", op=" << op;
        ASSERT_EQ(index.search_host(queries, k).neighbors, got)
            << (ivf_base ? "ivf" : "flat") << " base, k=" << k
            << ", op=" << op;
      }
    }
  }
}

TEST(FuzzDifferential, WarpBaselinesAgree) {
  Rng rng(0xfa5a);
  for (int round = 0; round < 30; ++round) {
    const std::uint32_t q = 1 + static_cast<std::uint32_t>(rng.uniform_below(8));
    const std::uint32_t n = 1 + static_cast<std::uint32_t>(rng.uniform_below(800));
    const std::uint32_t k = 1 + static_cast<std::uint32_t>(rng.uniform_below(200));
    std::vector<float> matrix(std::size_t{q} * n);
    for (auto& v : matrix) v = rng.uniform_float();

    std::vector<std::vector<Neighbor>> expected(q);
    for (std::uint32_t qq = 0; qq < q; ++qq) {
      expected[qq] = select_k_oracle(
          std::span<const float>(matrix.data() + std::size_t{qq} * n, n), k);
    }
    simt::Device dev;
    ASSERT_EQ(baselines::qms_select(dev, matrix, q, n, k).neighbors, expected)
        << "QMS round " << round << " q=" << q << " n=" << n << " k=" << k;
    if (k <= baselines::kTbsMaxK) {
      ASSERT_EQ(baselines::tbs_select(dev, matrix, q, n, k).neighbors,
                expected)
          << "TBS round " << round;
    }
  }
}

}  // namespace
}  // namespace gpuksel
