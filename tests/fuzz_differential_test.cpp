// Randomized differential testing: for hundreds of random (N, k, data
// distribution, configuration) draws, every implementation in the repository
// must agree exactly with the oracle — the broadest net over tie handling,
// boundary sizes and configuration interactions.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "baselines/bucket_select.hpp"
#include "baselines/qms.hpp"
#include "baselines/radix_select.hpp"
#include "baselines/sample_select.hpp"
#include "baselines/tbs.hpp"
#include "core/kernels/hp_kernels.hpp"
#include "core/kselect.hpp"
#include "util/rng.hpp"

namespace gpuksel {
namespace {

using kernels::BufferMode;

using kernels::QueueKind;
using kernels::QueueLayout;
using kernels::SelectConfig;

/// One random scenario drawn from `rng`.
struct Scenario {
  std::uint32_t n;
  std::uint32_t k;
  std::vector<float> data;
};

Scenario draw_scenario(Rng& rng) {
  Scenario s;
  s.n = 1 + static_cast<std::uint32_t>(rng.uniform_below(3000));
  s.k = 1 + static_cast<std::uint32_t>(rng.uniform_below(300));
  s.data.resize(s.n);
  // Mix distributions: continuous, few-valued (tie-heavy), constant.
  const auto dist = rng.uniform_below(4);
  for (auto& v : s.data) {
    switch (dist) {
      case 0: v = rng.uniform_float(); break;
      case 1: v = static_cast<float>(rng.uniform_below(5)) * 0.125f; break;
      case 2: v = 0.5f; break;
      default: v = rng.uniform_float() * 1e-6f; break;
    }
  }
  return s;
}

TEST(FuzzDifferential, ScalarAlgorithmsAgree) {
  Rng rng(0xfa57);
  for (int round = 0; round < 200; ++round) {
    const Scenario s = draw_scenario(rng);
    const auto oracle = select_k_oracle(s.data, s.k);
    for (Algo algo : {Algo::kInsertionQueue, Algo::kHeapQueue,
                      Algo::kMergeQueue, Algo::kStdSort, Algo::kStdNthElement}) {
      ASSERT_EQ(select_k_smallest(s.data, s.k, algo), oracle)
          << "round " << round << " algo " << algo_name(algo) << " n=" << s.n
          << " k=" << s.k;
    }
    ASSERT_EQ(baselines::radix_select(s.data, s.k), oracle) << round;
    ASSERT_EQ(baselines::bucket_select(s.data, s.k), oracle) << round;
    ASSERT_EQ(baselines::sample_select(s.data, s.k), oracle) << round;
    const std::size_t chunk = 1 + rng.uniform_below(s.n);
    ASSERT_EQ(select_k_smallest_chunked(s.data, s.k, chunk), oracle) << round;
  }
}

TEST(FuzzDifferential, ScalarHpAgrees) {
  Rng rng(0xfa58);
  for (int round = 0; round < 100; ++round) {
    const Scenario s = draw_scenario(rng);
    const auto g = 2 + static_cast<std::uint32_t>(rng.uniform_below(7));
    ASSERT_EQ(select_k_smallest_hp(s.data, s.k, g, Algo::kMergeQueue),
              select_k_oracle(s.data, s.k))
        << "round " << round << " n=" << s.n << " k=" << s.k << " G=" << g;
  }
}

TEST(FuzzDifferential, KernelConfigurationsAgree) {
  Rng rng(0xfa59);
  for (int round = 0; round < 40; ++round) {
    // A small multi-query instance with a random kernel configuration.
    const std::uint32_t q = 1 + static_cast<std::uint32_t>(rng.uniform_below(40));
    const std::uint32_t n = 1 + static_cast<std::uint32_t>(rng.uniform_below(500));
    const std::uint32_t k = 1 + static_cast<std::uint32_t>(rng.uniform_below(80));
    std::vector<float> matrix(std::size_t{q} * n);
    const bool ties = rng.uniform_below(2) == 0;
    for (auto& v : matrix) {
      v = ties ? static_cast<float>(rng.uniform_below(4)) * 0.25f
               : rng.uniform_float();
    }

    SelectConfig cfg;
    cfg.queue = static_cast<QueueKind>(rng.uniform_below(3));
    cfg.buffer = static_cast<BufferMode>(rng.uniform_below(4));
    cfg.aligned_merge = rng.uniform_below(2) == 0;
    cfg.merge_strategy = static_cast<MergeStrategy>(rng.uniform_below(2));
    cfg.queue_layout = static_cast<QueueLayout>(rng.uniform_below(2));
    cfg.cache_head = rng.uniform_below(2) == 0;
    cfg.buffer_size = 1u << (2 + rng.uniform_below(4));
    cfg.merge_m = 1u << rng.uniform_below(5);

    // Oracle per query (reference-major layout).
    std::vector<std::vector<Neighbor>> expected(q);
    std::vector<float> row(n);
    for (std::uint32_t qq = 0; qq < q; ++qq) {
      for (std::uint32_t r = 0; r < n; ++r) {
        row[r] = matrix[std::size_t{r} * q + qq];
      }
      expected[qq] = select_k_oracle(row, k);
    }

    simt::Device dev;
    ASSERT_EQ(kernels::flat_select(dev, matrix, q, n, k, cfg).neighbors,
              expected)
        << "round " << round << " q=" << q << " n=" << n << " k=" << k;
    const auto g = 2 + static_cast<std::uint32_t>(rng.uniform_below(7));
    ASSERT_EQ(kernels::hp_select(dev, matrix, q, n, k, cfg, g).neighbors,
              expected)
        << "round " << round << " G=" << g;
  }
}

TEST(FuzzDifferential, AdversarialDistributionsAgree) {
  // Distributions crafted to stress the corners random draws rarely hit:
  // pure tie-breaking, worst-case arrival order, subnormal magnitudes, and
  // NaN/Inf-laced input under the kSortLast policy.
  Rng rng(0xfa5b);
  for (int round = 0; round < 120; ++round) {
    const auto n = 1 + static_cast<std::uint32_t>(rng.uniform_below(2000));
    auto k = 1 + static_cast<std::uint32_t>(rng.uniform_below(200));
    std::vector<float> data(n);
    const auto shape = rng.uniform_below(4);
    switch (shape) {
      case 0:  // all-equal: every result is decided by index tie-breaking
        for (auto& v : data) v = 0.25f;
        break;
      case 1:  // strictly descending: every scan step displaces the worst
        for (std::uint32_t i = 0; i < n; ++i) {
          data[i] = static_cast<float>(n - i);
        }
        break;
      case 2:  // subnormal magnitudes (with exact ties mixed in)
        for (auto& v : data) {
          v = static_cast<float>(rng.uniform_below(16)) * 1e-41f;
        }
        break;
      default:  // NaN/Inf-laced
        for (auto& v : data) {
          const auto r = rng.uniform_below(8);
          if (r == 0) {
            v = std::numeric_limits<float>::quiet_NaN();
          } else if (r == 1) {
            v = std::numeric_limits<float>::infinity();
          } else {
            v = rng.uniform_float();
          }
        }
        break;
    }

    // All comparisons run over the kSortLast-sanitized list.  k is capped to
    // the finite candidate count: kSortLast guarantees NaNs never displace a
    // real candidate, so within that range every algorithm must agree.
    std::vector<float> clean = data;
    apply_nan_policy(clean, NanPolicy::kSortLast);
    auto finite = static_cast<std::uint32_t>(std::count_if(
        clean.begin(), clean.end(), [](float v) { return std::isfinite(v); }));
    if (finite == 0) {
      clean[0] = 0.5f;
      finite = 1;
    }
    k = std::min(k, finite);

    const auto oracle = select_k_oracle(clean, k);
    for (Algo algo : {Algo::kInsertionQueue, Algo::kHeapQueue,
                      Algo::kMergeQueue, Algo::kStdSort, Algo::kStdNthElement}) {
      ASSERT_EQ(select_k_smallest(clean, k, algo), oracle)
          << "round " << round << " shape " << shape << " algo "
          << algo_name(algo) << " n=" << n << " k=" << k;
    }
    const std::size_t chunk = 1 + rng.uniform_below(n);
    ASSERT_EQ(select_k_smallest_chunked(clean, k, chunk), oracle)
        << "round " << round << " shape " << shape;
    const auto g = 2 + static_cast<std::uint32_t>(rng.uniform_below(7));
    ASSERT_EQ(select_k_smallest_hp(clean, k, g), oracle)
        << "round " << round << " shape " << shape << " G=" << g;
    if (shape != 3) {  // selection-by-value baselines expect finite input
      ASSERT_EQ(baselines::radix_select(clean, k), oracle)
          << "round " << round << " shape " << shape;
      ASSERT_EQ(baselines::bucket_select(clean, k), oracle)
          << "round " << round << " shape " << shape;
      ASSERT_EQ(baselines::sample_select(clean, k), oracle)
          << "round " << round << " shape " << shape;
    }
  }
}

TEST(FuzzDifferential, DeviceNanSortLastAgrees) {
  // End-to-end check of the sanitizer's load-time NaN remap: raw NaN-laced
  // distances go to the device, the kSortLast policy remaps them as they are
  // loaded, and the selection kernel must match the sanitized scalar oracle.
  Rng rng(0xfa5c);
  for (int round = 0; round < 20; ++round) {
    const auto n = 1 + static_cast<std::uint32_t>(rng.uniform_below(400));
    auto k = 1 + static_cast<std::uint32_t>(rng.uniform_below(60));
    std::vector<float> data(n);
    for (auto& v : data) {
      v = rng.uniform_below(6) == 0 ? std::numeric_limits<float>::quiet_NaN()
                                    : rng.uniform_float();
    }
    std::vector<float> clean = data;
    apply_nan_policy(clean, NanPolicy::kSortLast);
    auto finite = static_cast<std::uint32_t>(std::count_if(
        clean.begin(), clean.end(), [](float v) { return std::isfinite(v); }));
    if (finite == 0) {
      data[0] = 0.5f;
      clean[0] = 0.5f;
      finite = 1;
    }
    k = std::min(k, finite);

    const std::vector<std::vector<Neighbor>> expected = {
        select_k_oracle(clean, k)};
    simt::Device dev;
    dev.sanitizer().nan_policy = NanPolicy::kSortLast;
    ASSERT_EQ(kernels::flat_select(dev, data, 1, n, k, SelectConfig{}).neighbors,
              expected)
        << "round " << round << " n=" << n << " k=" << k;
  }
}

TEST(FuzzDifferential, WarpBaselinesAgree) {
  Rng rng(0xfa5a);
  for (int round = 0; round < 30; ++round) {
    const std::uint32_t q = 1 + static_cast<std::uint32_t>(rng.uniform_below(8));
    const std::uint32_t n = 1 + static_cast<std::uint32_t>(rng.uniform_below(800));
    const std::uint32_t k = 1 + static_cast<std::uint32_t>(rng.uniform_below(200));
    std::vector<float> matrix(std::size_t{q} * n);
    for (auto& v : matrix) v = rng.uniform_float();

    std::vector<std::vector<Neighbor>> expected(q);
    for (std::uint32_t qq = 0; qq < q; ++qq) {
      expected[qq] = select_k_oracle(
          std::span<const float>(matrix.data() + std::size_t{qq} * n, n), k);
    }
    simt::Device dev;
    ASSERT_EQ(baselines::qms_select(dev, matrix, q, n, k).neighbors, expected)
        << "QMS round " << round << " q=" << q << " n=" << n << " k=" << k;
    if (k <= baselines::kTbsMaxK) {
      ASSERT_EQ(baselines::tbs_select(dev, matrix, q, n, k).neighbors,
                expected)
          << "TBS round " << round;
    }
  }
}

}  // namespace
}  // namespace gpuksel
