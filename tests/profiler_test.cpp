// Tests for the per-kernel SIMT profiler: region nesting and exclusive-self
// attribution, per-warp metrics partitioning the launch aggregate, trace and
// report export well-formedness, the span cap, and the cost-model breakdown.
#include <gtest/gtest.h>

#include <cctype>
#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "core/kernels/batch_pipeline.hpp"
#include "simt/device.hpp"
#include "simt/metrics.hpp"
#include "simt/profiler.hpp"
#include "simt/types.hpp"
#include "simt/warp.hpp"

namespace gpuksel::simt {
namespace {

/// Minimal JSON well-formedness checker (no JSON library in the toolchain):
/// validates balanced braces/brackets outside strings, string escape syntax,
/// and that the document is a single object.  Enough to catch the classic
/// emission bugs (trailing commas are additionally rejected).
bool json_well_formed(const std::string& text, std::string* why = nullptr) {
  const auto fail = [&](const std::string& msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  char prev_token = '\0';  // last structural char outside strings
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[':
        stack.push_back(c);
        prev_token = c;
        break;
      case '}': case ']': {
        if (prev_token == ',') return fail("trailing comma");
        if (stack.empty()) return fail("unbalanced close");
        const char open = stack.back();
        stack.pop_back();
        if ((c == '}') != (open == '{')) return fail("mismatched close");
        prev_token = c;
        break;
      }
      case ',':
        if (prev_token == ',' || prev_token == '{' || prev_token == '[') {
          return fail("empty element");
        }
        prev_token = ',';
        break;
      default:
        if (!std::isspace(static_cast<unsigned char>(c))) prev_token = '\0';
    }
  }
  if (in_string) return fail("unterminated string");
  if (!stack.empty()) return fail("unbalanced open");
  return true;
}

KernelMetrics sum_regions(const std::vector<RegionStats>& regions) {
  KernelMetrics total;
  for (const RegionStats& r : regions) total += r.self;
  return total;
}

/// A kernel with nested regions and divergent per-warp work: warp w does
/// (w + 1) outer iterations, each opening "outer" with a nested "inner".
void run_nested_kernel(Device& dev, std::size_t num_warps) {
  auto buf = dev.alloc<float>(64 * num_warps, 0.0f);
  auto span = buf.span();
  dev.launch("nested", num_warps, [&](WarpContext& ctx, std::uint32_t w) {
    const LaneMask m = kFullMask;
    for (std::uint32_t it = 0; it <= w; ++it) {
      const auto outer = ctx.region("outer");
      U32 idx;
      ctx.alu(m, idx, [&](int i) {
        return static_cast<std::uint32_t>(w * 64 + i);
      });
      ctx.store(m, span, idx, 1.0f);
      {
        const auto inner = ctx.region("inner");
        const F32 v = ctx.load(m, span, idx);
        ctx.issue(m);
        (void)v;
      }
      ctx.issue(m, 2);  // back in "outer" after "inner" closed
    }
    ctx.issue(m, 3);  // outside any region: unattributed
  });
}

TEST(WarpProfileTest, SelfAttributionAndNesting) {
  KernelMetrics m;
  WarpProfile p;
  // outer: 5 instructions before inner, inner: 3, outer after inner: 2.
  m.instructions = 10;
  p.enter("outer", m);
  m.instructions += 5;
  m.global_load_tx += 4;
  p.enter("inner", m);
  m.instructions += 3;
  m.shared_requests += 2;
  p.exit(m);  // inner
  m.instructions += 2;
  p.exit(m);  // outer
  m.instructions += 7;  // unattributed tail
  p.finalize(m);

  ASSERT_EQ(p.regions().size(), 2u);
  const RegionStats& outer = p.regions()[0];
  const RegionStats& inner = p.regions()[1];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.calls, 1u);
  EXPECT_EQ(outer.self.instructions, 7u);  // 5 + 2, inner's 3 excluded
  EXPECT_EQ(outer.self.global_load_tx, 4u);
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(inner.self.instructions, 3u);
  EXPECT_EQ(inner.self.shared_requests, 2u);
  // attributed() is the inclusive top-level sum: 10 of the 17 instructions
  // issued after entry (the 10 before entry and 7 after exit are not).
  EXPECT_EQ(p.attributed().instructions, 10u);

  ASSERT_EQ(p.spans().size(), 2u);
  // Spans are appended at close: inner closes first.
  EXPECT_STREQ(p.spans()[0].name, "inner");
  EXPECT_EQ(p.spans()[0].depth, 1u);
  EXPECT_EQ(p.spans()[0].begin_instructions, 15u);
  EXPECT_EQ(p.spans()[0].end_instructions, 18u);
  EXPECT_STREQ(p.spans()[1].name, "outer");
  EXPECT_EQ(p.spans()[1].depth, 0u);
  EXPECT_EQ(p.spans()[1].begin_instructions, 10u);
  EXPECT_EQ(p.spans()[1].end_instructions, 20u);
}

TEST(WarpProfileTest, FinalizeClosesOpenRegions) {
  KernelMetrics m;
  WarpProfile p;
  p.enter("left_open", m);
  m.instructions = 4;
  p.finalize(m);
  ASSERT_EQ(p.regions().size(), 1u);
  EXPECT_EQ(p.regions()[0].self.instructions, 4u);
  EXPECT_TRUE(p.regions()[0].self == p.attributed());
}

TEST(WarpProfileTest, SpanCapCountsDrops) {
  KernelMetrics m;
  WarpProfile p;
  p.set_span_capacity(2);
  for (int i = 0; i < 5; ++i) {
    p.enter("r", m);
    m.instructions += 1;
    p.exit(m);
  }
  p.finalize(m);
  EXPECT_EQ(p.spans().size(), 2u);
  EXPECT_EQ(p.dropped_spans(), 3u);
  // Region stats stay exact past the cap.
  ASSERT_EQ(p.regions().size(), 1u);
  EXPECT_EQ(p.regions()[0].calls, 5u);
  EXPECT_EQ(p.regions()[0].self.instructions, 5u);
}

TEST(ProfilerTest, RegionsPartitionLaunchAggregate) {
  Device dev;
  dev.set_worker_threads(1);
  Profiler prof;
  dev.set_profiler(&prof);
  run_nested_kernel(dev, 3);

  ASSERT_EQ(prof.records().size(), 1u);
  const KernelRecord& rec = prof.records()[0];
  EXPECT_EQ(rec.kernel, "nested");
  EXPECT_EQ(rec.num_warps, 3u);
  EXPECT_TRUE(rec.total == dev.last_launch());

  // Launch-aggregate region self metrics sum exactly to the aggregate.
  EXPECT_TRUE(sum_regions(rec.regions) == rec.total);
  // And per warp: warp_regions[w] partitions per_warp[w].
  ASSERT_EQ(rec.warp_regions.size(), 3u);
  KernelMetrics warp_sum;
  for (std::size_t w = 0; w < 3; ++w) {
    EXPECT_TRUE(sum_regions(rec.warp_regions[w]) == rec.per_warp[w])
        << "warp " << w;
    warp_sum += rec.per_warp[w];
  }
  EXPECT_TRUE(warp_sum == rec.total);

  // The synthetic region exists (the kernel issues outside regions) and is
  // ordered last in the aggregate.
  ASSERT_FALSE(rec.regions.empty());
  EXPECT_EQ(rec.regions.back().name, kUnattributedRegion);
  // Divergent trip counts: warp w opens "outer" w+1 times.
  EXPECT_EQ(rec.warp_regions[2][0].name, "outer");
  EXPECT_EQ(rec.warp_regions[2][0].calls, 3u);
}

TEST(ProfilerTest, BatchRegionsPartitionEveryLaunchAggregate) {
  // The batched serving pipeline (batch_pipeline.hpp) instruments its two
  // kernel classes with regions; for every launch it records, the region
  // self metrics — including "(unattributed)" — must sum exactly to the
  // launch aggregate, per warp and in total.
  constexpr std::uint32_t kNumQueries = 10;
  constexpr std::uint32_t kRefs = 96;
  constexpr std::uint32_t kDim = 4;
  Device dev;
  Profiler prof;
  dev.set_profiler(&prof);

  std::vector<float> refs(std::size_t{kRefs} * kDim);
  for (std::size_t i = 0; i < refs.size(); ++i) {
    refs[i] = static_cast<float>((i * 2654435761u >> 7) % 997) * 0.001f;
  }
  std::vector<float> queries(std::size_t{kNumQueries} * kDim);  // dim-major
  for (std::size_t i = 0; i < queries.size(); ++i) {
    queries[i] = static_cast<float>((i * 40503u + 11) % 997) * 0.001f;
  }
  auto d_refs = dev.upload(refs);
  kernels::BatchConfig cfg;
  cfg.tile_refs = 32;  // 3 tile launches + 1 reduce launch
  const kernels::BatchOutput out = kernels::batched_select(
      dev, d_refs, queries, kNumQueries, kRefs, kDim, /*k=*/5, cfg);
  EXPECT_EQ(out.num_tiles, 3u);

  ASSERT_EQ(prof.records().size(), 4u);
  KernelMetrics tile_total;
  for (std::size_t i = 0; i < prof.records().size(); ++i) {
    const KernelRecord& rec = prof.records()[i];
    EXPECT_EQ(rec.kernel, i < 3 ? "batch_tile_score" : "batch_reduce");
    // Aggregate partition: region selves sum exactly to the launch total.
    EXPECT_TRUE(sum_regions(rec.regions) == rec.total) << "launch " << i;
    // Per-warp partition too.
    ASSERT_EQ(rec.warp_regions.size(), rec.per_warp.size());
    KernelMetrics warp_sum;
    for (std::size_t w = 0; w < rec.per_warp.size(); ++w) {
      EXPECT_TRUE(sum_regions(rec.warp_regions[w]) == rec.per_warp[w])
          << "launch " << i << " warp " << w;
      warp_sum += rec.per_warp[w];
    }
    EXPECT_TRUE(warp_sum == rec.total) << "launch " << i;
    // The expected named regions are present.
    const auto has = [&](const std::string& name) {
      for (const RegionStats& r : rec.regions)
        if (r.name == name) return true;
      return false;
    };
    if (i < 3) {
      EXPECT_TRUE(has("batch_tile_score")) << "launch " << i;
      EXPECT_TRUE(has("tile_copy")) << "launch " << i;
      tile_total += rec.total;
    } else {
      EXPECT_TRUE(has("batch_reduce"));
      EXPECT_TRUE(rec.total == out.reduce_metrics);
    }
  }
  // The pipeline's reported tile metrics are exactly the recorded launches.
  EXPECT_TRUE(tile_total == out.tile_metrics);
}

TEST(ProfilerTest, RecordsCostBreakdown) {
  Device dev;
  dev.set_worker_threads(1);
  Profiler prof;
  dev.set_profiler(&prof);
  run_nested_kernel(dev, 2);
  const KernelRecord& rec = prof.records()[0];
  const CostModel& cm = prof.cost_model();
  EXPECT_DOUBLE_EQ(rec.instruction_seconds, cm.instruction_seconds(rec.total));
  EXPECT_DOUBLE_EQ(rec.memory_seconds, cm.memory_seconds(rec.total));
  EXPECT_DOUBLE_EQ(rec.kernel_seconds, cm.kernel_seconds(rec.total));
  EXPECT_EQ(rec.memory_bound, rec.memory_seconds > rec.instruction_seconds);
  EXPECT_EQ(rec.worker_threads, 1u);
  EXPECT_GE(rec.wall_seconds, 0.0);
}

TEST(ProfilerTest, MultipleLaunchesIndexInOrder) {
  Device dev;
  dev.set_worker_threads(1);
  Profiler prof;
  dev.set_profiler(&prof);
  run_nested_kernel(dev, 1);
  run_nested_kernel(dev, 2);
  ASSERT_EQ(prof.records().size(), 2u);
  EXPECT_EQ(prof.records()[0].launch_index, 0u);
  EXPECT_EQ(prof.records()[1].launch_index, 1u);
  prof.clear();
  EXPECT_TRUE(prof.records().empty());
}

TEST(ProfilerTest, ReportAndTraceAreWellFormedJson) {
  Device dev;
  dev.set_worker_threads(1);
  Profiler prof;
  dev.set_profiler(&prof);
  run_nested_kernel(dev, 3);
  run_nested_kernel(dev, 1);

  std::string why;
  std::ostringstream report;
  prof.write_report(report);
  EXPECT_TRUE(json_well_formed(report.str(), &why)) << why;
  EXPECT_NE(report.str().find("\"kernel\": \"nested\""), std::string::npos);
  EXPECT_NE(report.str().find("\"outer\""), std::string::npos);

  std::ostringstream trace;
  prof.write_trace(trace);
  EXPECT_TRUE(json_well_formed(trace.str(), &why)) << why;
  // Chrome trace_event essentials: complete events with pid/tid/ts/dur.
  EXPECT_NE(trace.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.str().find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(trace.str().find("\"ph\": \"M\""), std::string::npos);

  std::ostringstream csv;
  prof.write_regions_csv(csv);
  const std::string header = csv.str().substr(0, csv.str().find('\n'));
  EXPECT_EQ(header,
            "kernel,launch_index,region,calls,instructions,useful_lane_slots,"
            "simt_efficiency,global_load_tx,global_store_tx,global_requests,"
            "shared_requests,shared_conflict_replays");
}

TEST(ProfilerTest, EmptyProfilerExportsAreWellFormed) {
  Profiler prof;
  std::string why;
  std::ostringstream report, trace;
  prof.write_report(report);
  prof.write_trace(trace);
  EXPECT_TRUE(json_well_formed(report.str(), &why)) << why;
  EXPECT_TRUE(json_well_formed(trace.str(), &why)) << why;
}

TEST(ProfilerTest, UnprofiledLaunchWithoutRegionsStillPartitions) {
  // A kernel with no region annotations: everything lands in
  // "(unattributed)" and the partition invariant still holds.
  Device dev;
  dev.set_worker_threads(1);
  Profiler prof;
  dev.set_profiler(&prof);
  dev.launch("plain", 2, [&](WarpContext& ctx, std::uint32_t) {
    ctx.issue(kFullMask, 5);
  });
  const KernelRecord& rec = prof.records()[0];
  ASSERT_EQ(rec.regions.size(), 1u);
  EXPECT_EQ(rec.regions[0].name, kUnattributedRegion);
  EXPECT_TRUE(sum_regions(rec.regions) == rec.total);
}

TEST(ProfilerTest, HostInfoToggleZeroesOnlyHostFields) {
  Device dev;
  dev.set_worker_threads(1);
  Profiler prof;
  dev.set_profiler(&prof);
  run_nested_kernel(dev, 2);

  std::ostringstream with_host;
  prof.write_report(with_host);
  prof.set_include_host_info(false);
  std::ostringstream without_host;
  prof.write_report(without_host);
  EXPECT_NE(without_host.str().find("\"worker_threads\": 0"),
            std::string::npos);
  EXPECT_NE(without_host.str().find("\"wall_seconds\": 0"), std::string::npos);
  // The toggle must not perturb anything else: stripping the two host lines
  // makes the exports identical.
  const auto strip = [](const std::string& s) {
    std::istringstream is(s);
    std::string line, out;
    while (std::getline(is, line)) {
      if (line.find("\"wall_seconds\"") != std::string::npos ||
          line.find("\"worker_threads\"") != std::string::npos) {
        continue;
      }
      out += line;
      out += '\n';
    }
    return out;
  };
  EXPECT_EQ(strip(with_host.str()), strip(without_host.str()));
}

TEST(ProfilerTest, DetachedDeviceRecordsNothing) {
  Device dev;
  dev.set_worker_threads(1);
  Profiler prof;
  dev.set_profiler(&prof);
  run_nested_kernel(dev, 1);
  dev.set_profiler(nullptr);
  run_nested_kernel(dev, 1);
  EXPECT_EQ(prof.records().size(), 1u);
}

}  // namespace
}  // namespace gpuksel::simt
