// Tests for the k-NN pipeline: datasets, host distance computation, the
// simulated-GPU distance kernel, and the BruteForceKnn front end.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "core/kernels/pipeline.hpp"
#include "knn/dataset.hpp"
#include "knn/distance.hpp"
#include "knn/knn.hpp"
#include "util/check.hpp"

namespace gpuksel::knn {
namespace {

TEST(Dataset, UniformDatasetShapeAndRange) {
  const auto d = make_uniform_dataset(100, 16, 1);
  EXPECT_EQ(d.count, 100u);
  EXPECT_EQ(d.dim, 16u);
  EXPECT_EQ(d.values.size(), 1600u);
  for (float v : d.values) {
    ASSERT_GE(v, 0.0f);
    ASSERT_LT(v, 1.0f);
  }
}

TEST(Dataset, DeterministicBySeed) {
  EXPECT_EQ(make_uniform_dataset(10, 4, 7).values,
            make_uniform_dataset(10, 4, 7).values);
  EXPECT_NE(make_uniform_dataset(10, 4, 7).values,
            make_uniform_dataset(10, 4, 8).values);
}

TEST(Dataset, GaussianClustersLabelsInRange) {
  const auto d = make_gaussian_clusters(200, 8, 5, 0.05f, 2);
  EXPECT_EQ(d.labels.size(), 200u);
  std::set<std::uint32_t> labels(d.labels.begin(), d.labels.end());
  EXPECT_LE(labels.size(), 5u);
  for (auto l : d.labels) EXPECT_LT(l, 5u);
}

TEST(Dataset, GaussianPointsClusterAroundTheirMeans) {
  // Two points with the same label should usually be closer than points from
  // different labels when sigma is small.
  const auto d = make_gaussian_clusters(100, 16, 3, 0.01f, 3);
  double same_sum = 0, cross_sum = 0;
  int same_n = 0, cross_n = 0;
  for (std::uint32_t i = 0; i < 50; ++i) {
    for (std::uint32_t j = i + 1; j < 50; ++j) {
      const float dist =
          squared_euclidean(d.points.row(i), d.points.row(j), 16);
      if (d.labels[i] == d.labels[j]) {
        same_sum += dist;
        ++same_n;
      } else {
        cross_sum += dist;
        ++cross_n;
      }
    }
  }
  ASSERT_GT(same_n, 0);
  ASSERT_GT(cross_n, 0);
  EXPECT_LT(same_sum / same_n, cross_sum / cross_n);
}

TEST(Dataset, DimMajorTransposeRoundTrips) {
  const auto d = make_uniform_dataset(7, 5, 4);
  const auto t = to_dim_major(d);
  for (std::uint32_t i = 0; i < 7; ++i) {
    for (std::uint32_t dd = 0; dd < 5; ++dd) {
      EXPECT_EQ(t[dd * 7 + i], d.values[i * 5 + dd]);
    }
  }
}

TEST(Distance, SquaredEuclideanBasics) {
  const float a[] = {0, 0, 0};
  const float b[] = {1, 2, 2};
  EXPECT_FLOAT_EQ(squared_euclidean(a, b, 3), 9.0f);
  EXPECT_FLOAT_EQ(squared_euclidean(a, a, 3), 0.0f);
}

TEST(Distance, HostMatrixMatchesNaive) {
  const auto queries = make_uniform_dataset(6, 8, 5);
  const auto refs = make_uniform_dataset(11, 8, 6);
  const auto m = distance_matrix_host(queries.values, refs.values, 6, 11, 8,
                                      kernels::MatrixLayout::kQueryMajor);
  for (std::uint32_t q = 0; q < 6; ++q) {
    for (std::uint32_t r = 0; r < 11; ++r) {
      EXPECT_FLOAT_EQ(m[std::size_t{q} * 11 + r],
                      squared_euclidean(queries.row(q), refs.row(r), 8));
    }
  }
}

TEST(Distance, LayoutsHoldSameValues) {
  const auto queries = make_uniform_dataset(5, 4, 7);
  const auto refs = make_uniform_dataset(9, 4, 8);
  const auto qm = distance_matrix_host(queries.values, refs.values, 5, 9, 4,
                                       kernels::MatrixLayout::kQueryMajor);
  const auto rm = distance_matrix_host(queries.values, refs.values, 5, 9, 4,
                                       kernels::MatrixLayout::kReferenceMajor);
  for (std::uint32_t q = 0; q < 5; ++q) {
    for (std::uint32_t r = 0; r < 9; ++r) {
      EXPECT_EQ(qm[std::size_t{q} * 9 + r], rm[std::size_t{r} * 5 + q]);
    }
  }
}

TEST(DistanceKernel, MatchesHostComputation) {
  const std::uint32_t q = 40, n = 70, dim = 24;
  const auto queries = make_uniform_dataset(q, dim, 9);
  const auto refs = make_uniform_dataset(n, dim, 10);
  const auto host = distance_matrix_host(
      queries.values, refs.values, q, n, dim,
      kernels::MatrixLayout::kReferenceMajor);
  simt::Device dev;
  const auto gpu = kernels::gpu_distance_matrix(
      dev, to_dim_major(queries), refs.values, q, n, dim,
      kernels::MatrixLayout::kReferenceMajor);
  ASSERT_EQ(gpu.matrix.size(), host.size());
  for (std::size_t i = 0; i < host.size(); ++i) {
    ASSERT_NEAR(gpu.matrix.host()[i], host[i], 1e-4f) << "at " << i;
  }
}

TEST(DistanceKernel, NearPerfectSimtEfficiency) {
  const std::uint32_t q = 64, n = 128, dim = 32;
  const auto queries = make_uniform_dataset(q, dim, 11);
  const auto refs = make_uniform_dataset(n, dim, 12);
  simt::Device dev;
  const auto out = kernels::gpu_distance_matrix(dev, to_dim_major(queries),
                                                refs.values, q, n, dim);
  EXPECT_GT(out.metrics.simt_efficiency(), 0.98);
}

TEST(DistanceKernel, SizeMismatchThrows) {
  simt::Device dev;
  std::vector<float> queries(10), refs(10);
  EXPECT_THROW(kernels::gpu_distance_matrix(dev, queries, refs, 3, 2, 4),
               PreconditionError);
}

TEST(BruteForceKnnTest, SelfQueryFindsItselfFirst) {
  const auto data = make_uniform_dataset(50, 16, 13);
  const BruteForceKnn knn(data);
  const auto result = knn.search(data, 3);
  ASSERT_EQ(result.neighbors.size(), 50u);
  for (std::uint32_t i = 0; i < 50; ++i) {
    ASSERT_EQ(result.neighbors[i].size(), 3u);
    EXPECT_EQ(result.neighbors[i][0].index, i);  // itself, distance 0
    EXPECT_FLOAT_EQ(result.neighbors[i][0].dist, 0.0f);
  }
}

TEST(BruteForceKnnTest, AllScalarAlgosAgree) {
  const auto refs = make_uniform_dataset(200, 8, 14);
  const auto queries = make_uniform_dataset(20, 8, 15);
  const BruteForceKnn knn(refs);
  const auto base = knn.search(queries, 10, Algo::kMergeQueue);
  for (Algo algo : {Algo::kInsertionQueue, Algo::kHeapQueue, Algo::kStdSort,
                    Algo::kStdNthElement}) {
    EXPECT_EQ(knn.search(queries, 10, algo).neighbors, base.neighbors);
  }
}

TEST(BruteForceKnnTest, GpuPipelineMatchesHost) {
  const auto refs = make_uniform_dataset(300, 16, 16);
  const auto queries = make_uniform_dataset(40, 16, 17);
  const BruteForceKnn knn(refs);
  const auto host = knn.search(queries, 8);
  simt::Device dev;
  for (const bool hp : {false, true}) {
    GpuSearchOptions opts;
    opts.use_hierarchical_partition = hp;
    const auto gpu = knn.search_gpu(dev, queries, 8, opts);
    ASSERT_EQ(gpu.neighbors.size(), host.neighbors.size());
    for (std::size_t i = 0; i < host.neighbors.size(); ++i) {
      ASSERT_EQ(gpu.neighbors[i].size(), host.neighbors[i].size()) << i;
      for (std::size_t j = 0; j < host.neighbors[i].size(); ++j) {
        // Distance values come from different summation orders; indices and
        // near-equal distances must agree.
        EXPECT_EQ(gpu.neighbors[i][j].index, host.neighbors[i][j].index);
        EXPECT_NEAR(gpu.neighbors[i][j].dist, host.neighbors[i][j].dist, 1e-4f);
      }
    }
    EXPECT_GT(gpu.modeled_seconds, 0.0);
  }
}

TEST(BruteForceKnnTest, DimMismatchThrows) {
  const BruteForceKnn knn(make_uniform_dataset(10, 4, 18));
  const auto queries = make_uniform_dataset(5, 8, 19);
  EXPECT_THROW((void)knn.search(queries, 2), PreconditionError);
}

}  // namespace
}  // namespace gpuksel::knn
