// Tests for the scalar Hierarchical Partition: construction (Algorithm 4),
// memory overhead, and the top-down completeness property — the k smallest
// are never pruned, including under heavy ties.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/hierarchical_partition.hpp"
#include "core/kselect.hpp"
#include "core/queues/heap_queue.hpp"
#include "core/queues/insertion_queue.hpp"
#include "core/queues/merge_queue.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace gpuksel {
namespace {

TEST(HpConstruction, LevelSizesFollowCeilDivision) {
  const auto data = uniform_floats(100, 1);
  const HierarchicalPartition hp(data, 4, 3);
  // 100 -> 25 -> 7 -> 2 (stop: 2 <= k=3)
  ASSERT_EQ(hp.level_count(), 4u);
  EXPECT_EQ(hp.level(0).size(), 100u);
  EXPECT_EQ(hp.level(1).size(), 25u);
  EXPECT_EQ(hp.level(2).size(), 7u);
  EXPECT_EQ(hp.level(3).size(), 2u);
}

TEST(HpConstruction, GroupMinimaAreCorrect) {
  const auto data = uniform_floats(1000, 2);
  const HierarchicalPartition hp(data, 4, 8);
  for (std::size_t l = 1; l < hp.level_count(); ++l) {
    const auto child = hp.level(l - 1);
    const auto parent = hp.level(l);
    for (std::size_t g = 0; g < parent.size(); ++g) {
      const std::size_t first = g * 4;
      const std::size_t last = std::min(child.size(), first + 4);
      float expected = child[first];
      for (std::size_t j = first + 1; j < last; ++j) {
        expected = std::min(expected, child[j]);
      }
      ASSERT_EQ(parent[g], expected) << "level " << l << " group " << g;
    }
  }
}

TEST(HpConstruction, RaggedTailGroupHandled) {
  // 10 elements, G=4: last group has 2 elements.
  std::vector<float> data{9, 8, 7, 6, 5, 4, 3, 2, 1, 0.5f};
  const HierarchicalPartition hp(data, 4, 2);
  ASSERT_GE(hp.level_count(), 2u);
  const auto l1 = hp.level(1);
  ASSERT_EQ(l1.size(), 3u);
  EXPECT_EQ(l1[0], 6.0f);
  EXPECT_EQ(l1[1], 2.0f);
  EXPECT_EQ(l1[2], 0.5f);
}

TEST(HpConstruction, TrivialWhenNAtMostK) {
  const auto data = uniform_floats(16, 3);
  const HierarchicalPartition hp(data, 4, 16);
  EXPECT_EQ(hp.level_count(), 1u);
  EXPECT_EQ(hp.extra_memory_elements(), 0u);
}

TEST(HpConstruction, ExtraMemoryBoundedByNOverGMinus1) {
  for (std::uint32_t g : {2u, 4u, 6u, 8u}) {
    const auto data = uniform_floats(1 << 15, 4);
    const HierarchicalPartition hp(data, g, 256);
    // Geometric series bound: N/(G-1) plus rounding slack per level.
    const std::size_t bound =
        (1u << 15) / (g - 1) + hp.level_count() * g;
    EXPECT_LE(hp.extra_memory_elements(), bound) << "G=" << g;
  }
}

TEST(HpConstruction, BadParamsThrow) {
  const auto data = uniform_floats(8, 5);
  EXPECT_THROW(HierarchicalPartition(data, 1, 4), PreconditionError);
  EXPECT_THROW(HierarchicalPartition(data, 4, 0), PreconditionError);
}

// --- top-down completeness property -----------------------------------------

struct HpCase {
  std::uint32_t g;
  std::uint32_t k;
  std::size_t n;
};

class HpSelectTest : public ::testing::TestWithParam<HpCase> {};

TEST_P(HpSelectTest, MatchesOracleWithEveryQueue) {
  const auto& p = GetParam();
  const auto data = uniform_floats(p.n, 600 + p.n + p.g);
  const auto oracle = select_k_oracle(data, p.k);
  const HierarchicalPartition hp(data, p.g, p.k);
  EXPECT_EQ(hp.select([](std::uint32_t k) { return InsertionQueue(k); }),
            oracle);
  EXPECT_EQ(hp.select([](std::uint32_t k) { return HeapQueue(k); }), oracle);
  EXPECT_EQ(hp.select([](std::uint32_t k) { return MergeQueue(k); }), oracle);
}

std::vector<HpCase> hp_cases() {
  std::vector<HpCase> cases;
  for (std::uint32_t g : {2u, 3u, 4u, 8u}) {
    for (std::uint32_t k : {1u, 2u, 16u, 100u}) {
      for (std::size_t n :
           {std::size_t{1}, std::size_t{17}, std::size_t{1024},
            std::size_t{10000}}) {
        cases.push_back({g, k, n});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, HpSelectTest, ::testing::ValuesIn(hp_cases()),
                         [](const auto& info) {
                           return "g" + std::to_string(info.param.g) + "_k" +
                                  std::to_string(info.param.k) + "_n" +
                                  std::to_string(info.param.n);
                         });

TEST(HpSelectTies, HeavyDuplicatesNeverLoseTrueNeighbors) {
  // Adversarial tie scenario: many elements share the exact minimum value.
  // The completeness argument depends on (value, position) ordering; this
  // pins it.
  Rng rng(7);
  std::vector<float> data(4096);
  for (auto& v : data) {
    v = static_cast<float>(rng.uniform_below(3)) * 0.1f;  // only 3 values
  }
  for (std::uint32_t g : {2u, 4u, 8u}) {
    const HierarchicalPartition hp(data, g, 64);
    EXPECT_EQ(hp.select([](std::uint32_t k) { return MergeQueue(k); }),
              select_k_oracle(data, 64))
        << "G=" << g;
  }
}

TEST(HpSelectTies, AllEqualInput) {
  std::vector<float> data(1000, 0.75f);
  const HierarchicalPartition hp(data, 4, 10);
  const auto result =
      hp.select([](std::uint32_t k) { return MergeQueue(k); });
  ASSERT_EQ(result.size(), 10u);
  // With all-equal values the k smallest are the k lowest indices.
  for (std::uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(result[i].index, i);
    EXPECT_EQ(result[i].dist, 0.75f);
  }
}

TEST(HpSelectSearchCost, VisitsFarFewerElementsThanN) {
  // The headline claim: top-down search touches ~G*k*log_G(N/k) elements.
  // Count via an instrumented counting queue adapter.
  std::uint64_t visits = 0;
  struct CountingQueue {
    CountingQueue(std::uint32_t k, std::uint64_t* v) : inner(k), visits(v) {}
    InsertionQueue inner;
    std::uint64_t* visits;
    bool try_insert(float d, std::uint32_t i) {
      ++*visits;
      return inner.try_insert(d, i);
    }
    [[nodiscard]] std::vector<Neighbor> extract_sorted() const {
      return inner.extract_sorted();
    }
  };
  const std::size_t n = 1 << 15;
  const std::uint32_t k = 64;
  const std::uint32_t g = 4;
  const auto data = uniform_floats(n, 8);
  const HierarchicalPartition hp(data, g, k);
  (void)hp.select(
      [&](std::uint32_t kk) { return CountingQueue(kk, &visits); });
  // Bound: one queue insert attempt per candidate-group element per level.
  const double levels = std::ceil(std::log2(double(n) / k) / std::log2(g));
  EXPECT_LT(visits, static_cast<std::uint64_t>(2.0 * g * k * (levels + 1)));
  EXPECT_LT(visits, n / 4);  // the actual point
}

}  // namespace
}  // namespace gpuksel
