// Tests for the three scalar queue structures: correctness against a
// partial-sort oracle, structural invariants, update instrumentation, and
// the Merge Queue's lazy-update behaviour.
#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <vector>

#include "core/kselect.hpp"
#include "core/neighbor.hpp"
#include "core/queues/heap_queue.hpp"
#include "core/queues/insertion_queue.hpp"
#include "core/queues/merge_queue.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace gpuksel {
namespace {

template <typename Queue>
std::vector<Neighbor> run_queue(Queue& queue, std::span<const float> data) {
  for (std::uint32_t i = 0; i < data.size(); ++i) {
    queue.try_insert(data[i], i);
  }
  return queue.extract_sorted();
}

// Adversarial input shapes shared by the parameterized suites.
std::vector<float> make_input(const std::string& shape, std::size_t n,
                              std::uint64_t seed) {
  std::vector<float> v;
  if (shape == "random") {
    v = uniform_floats(n, seed);
  } else if (shape == "sorted") {
    v = uniform_floats(n, seed);
    std::sort(v.begin(), v.end());
  } else if (shape == "reverse") {
    v = uniform_floats(n, seed);
    std::sort(v.begin(), v.end(), std::greater<>());
  } else if (shape == "constant") {
    v.assign(n, 0.25f);
  } else if (shape == "organpipe") {
    v.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t half = n / 2;
      v[i] = static_cast<float>(i < half ? i : n - i) / static_cast<float>(n);
    }
  } else if (shape == "fewvalues") {
    Rng rng(seed);
    v.resize(n);
    for (auto& x : v) x = static_cast<float>(rng.uniform_below(4)) * 0.1f;
  }
  return v;
}

const char* const kShapes[] = {"random",   "sorted",    "reverse",
                               "constant", "organpipe", "fewvalues"};

struct QueueCase {
  std::string shape;
  std::uint32_t k;
  std::size_t n;
};

class QueueOracleTest : public ::testing::TestWithParam<QueueCase> {};

TEST_P(QueueOracleTest, InsertionQueueMatchesOracle) {
  const auto& p = GetParam();
  const auto data = make_input(p.shape, p.n, 77);
  InsertionQueue q(p.k);
  EXPECT_EQ(run_queue(q, data), select_k_oracle(data, p.k));
}

TEST_P(QueueOracleTest, HeapQueueMatchesOracle) {
  const auto& p = GetParam();
  const auto data = make_input(p.shape, p.n, 77);
  HeapQueue q(p.k);
  EXPECT_EQ(run_queue(q, data), select_k_oracle(data, p.k));
}

TEST_P(QueueOracleTest, MergeQueueMatchesOracle) {
  const auto& p = GetParam();
  const auto data = make_input(p.shape, p.n, 77);
  MergeQueue q(p.k);
  EXPECT_EQ(run_queue(q, data), select_k_oracle(data, p.k));
}

TEST_P(QueueOracleTest, MergeQueueOtherMsMatchOracle) {
  const auto& p = GetParam();
  const auto data = make_input(p.shape, p.n, 78);
  for (std::uint32_t m : {1u, 2u, 32u}) {
    MergeQueue q(p.k, m);
    EXPECT_EQ(run_queue(q, data), select_k_oracle(data, p.k)) << "m=" << m;
  }
}

std::vector<QueueCase> queue_cases() {
  std::vector<QueueCase> cases;
  for (const char* shape : kShapes) {
    for (std::uint32_t k : {1u, 2u, 3u, 8u, 17u, 64u, 256u}) {
      for (std::size_t n : {std::size_t{1}, std::size_t{5}, std::size_t{64},
                            std::size_t{1000}, std::size_t{4096}}) {
        cases.push_back({shape, k, n});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Shapes, QueueOracleTest,
                         ::testing::ValuesIn(queue_cases()),
                         [](const auto& info) {
                           return info.param.shape + "_k" +
                                  std::to_string(info.param.k) + "_n" +
                                  std::to_string(info.param.n);
                         });

// --- structure-specific behaviour ------------------------------------------

TEST(InsertionQueueTest, RejectsWorseThanHead) {
  InsertionQueue q(2);
  EXPECT_TRUE(q.try_insert(0.5f, 0));
  EXPECT_TRUE(q.try_insert(0.3f, 1));
  EXPECT_FALSE(q.try_insert(0.9f, 2));  // worse than head 0.5
  EXPECT_TRUE(q.try_insert(0.4f, 3));   // replaces 0.5
  EXPECT_FALSE(q.try_insert(0.4f, 9));  // ties on dist, larger index: reject
  EXPECT_TRUE(q.try_insert(0.4f, 2));   // ties on dist, smaller index: accept
}

TEST(InsertionQueueTest, SlotsStayDescending) {
  const auto data = uniform_floats(500, 3);
  InsertionQueue q(16);
  for (std::uint32_t i = 0; i < data.size(); ++i) {
    q.try_insert(data[i], i);
    EXPECT_TRUE(std::is_sorted(
        q.slots().begin(), q.slots().end(),
        [](const Neighbor& a, const Neighbor& b) { return b < a; }));
  }
}

TEST(InsertionQueueTest, KZeroThrows) {
  EXPECT_THROW(InsertionQueue(0), PreconditionError);
}

TEST(HeapQueueTest, HeapPropertyMaintained) {
  const auto data = uniform_floats(500, 4);
  HeapQueue q(31);
  for (std::uint32_t i = 0; i < data.size(); ++i) {
    q.try_insert(data[i], i);
    const auto& s = q.slots();
    for (std::size_t parent = 0; parent < s.size(); ++parent) {
      for (std::size_t child : {2 * parent + 1, 2 * parent + 2}) {
        if (child < s.size()) {
          EXPECT_FALSE(s[parent] < s[child]) << "heap violated at " << parent;
        }
      }
    }
  }
}

TEST(HeapQueueTest, HeadIsMaximum) {
  const auto data = uniform_floats(200, 5);
  HeapQueue q(8);
  for (std::uint32_t i = 0; i < data.size(); ++i) {
    q.try_insert(data[i], i);
    for (const Neighbor& n : q.slots()) {
      EXPECT_FALSE(q.head() < n);
    }
  }
}

TEST(MergeQueueTest, CapacityRounding) {
  EXPECT_EQ(MergeQueue(4, 8).capacity(), 4u);  // k <= m: single level
  EXPECT_EQ(MergeQueue(8, 8).capacity(), 8u);
  EXPECT_EQ(MergeQueue(9, 8).capacity(), 16u);  // rounded to m*2^j
  EXPECT_EQ(MergeQueue(64, 8).capacity(), 64u);
  EXPECT_EQ(MergeQueue(65, 8).capacity(), 128u);
  EXPECT_EQ(MergeQueue(1024, 8).capacity(), 1024u);
}

TEST(MergeQueueTest, LevelStartsDoubling) {
  const MergeQueue q(64, 8);
  EXPECT_EQ(q.level_starts(), (std::vector<std::uint32_t>{0, 8, 16, 32}));
}

TEST(MergeQueueTest, NonPowerOfTwoMThrows) {
  EXPECT_THROW(MergeQueue(64, 3), PreconditionError);
  EXPECT_THROW(MergeQueue(64, 0), PreconditionError);
}

TEST(MergeQueueTest, InvariantHoldsAfterEveryInsert) {
  const auto data = uniform_floats(2000, 6);
  MergeQueue q(64, 8);
  for (std::uint32_t i = 0; i < data.size(); ++i) {
    q.try_insert(data[i], i);
    ASSERT_TRUE(q.invariant_holds()) << "after insert " << i;
  }
}

TEST(MergeQueueTest, LazyUpdateSkipsMergesForAscendingInput) {
  // Ascending input: once the queue fills, nothing more is accepted, and the
  // fill itself only ever lands at the level-0 head — nearly no merges.
  MergeQueue q(32, 8);
  for (std::uint32_t i = 0; i < 1000; ++i) {
    q.try_insert(static_cast<float>(i), i);
  }
  EXPECT_LE(q.merge_count(), 8u);
}

TEST(MergeQueueTest, DescendingInputMergesLazily) {
  // Every element is accepted (each is the new minimum); merges must happen
  // but far less often than once per insert thanks to Lazy Update.
  MergeQueue q(64, 8);
  const std::uint32_t inserts = 4096;
  for (std::uint32_t i = 0; i < inserts; ++i) {
    q.try_insert(static_cast<float>(inserts - i), i);
  }
  EXPECT_GT(q.merge_count(), 0u);
  EXPECT_LT(q.merge_count(), inserts / 2);
}

TEST(MergeQueueTest, HeadIsGlobalMaximum) {
  const auto data = uniform_floats(3000, 8);
  MergeQueue q(128, 8);
  for (std::uint32_t i = 0; i < data.size(); ++i) {
    q.try_insert(data[i], i);
    for (const Neighbor& n : q.slots()) {
      ASSERT_FALSE(q.head() < n);
    }
  }
}

TEST(MergeQueueTest, TwoPointerStrategyMatchesBitonic) {
  const auto data = uniform_floats(5000, 12);
  for (std::uint32_t k : {8u, 64u, 257u}) {
    MergeQueue bitonic(k, 8, nullptr, MergeStrategy::kReverseBitonic);
    MergeQueue linear(k, 8, nullptr, MergeStrategy::kTwoPointer);
    for (std::uint32_t i = 0; i < data.size(); ++i) {
      bitonic.try_insert(data[i], i);
      linear.try_insert(data[i], i);
      ASSERT_TRUE(linear.invariant_holds());
    }
    EXPECT_EQ(linear.extract_sorted(), bitonic.extract_sorted()) << "k=" << k;
    EXPECT_EQ(linear.extract_sorted(), select_k_oracle(data, k));
  }
}

TEST(MergeQueueTest, TwoPointerNeedsFewerUpdates) {
  // The sequential merge moves each element at most once per merge; the
  // bitonic network swaps up to n/2*log2(n) pairs.
  const auto data = uniform_floats(1 << 14, 13);
  UpdateCounter cb(256), cl(256);
  MergeQueue bitonic(256, 8, &cb, MergeStrategy::kReverseBitonic);
  MergeQueue linear(256, 8, &cl, MergeStrategy::kTwoPointer);
  for (std::uint32_t i = 0; i < data.size(); ++i) {
    bitonic.try_insert(data[i], i);
    linear.try_insert(data[i], i);
  }
  EXPECT_LT(cl.total(), cb.total());
}

// --- update instrumentation (the Fig. 5 quantities) --------------------------

TEST(UpdateCounterTest, InsertionQueueUpdatesDecayTowardTail) {
  const auto data = uniform_floats(1 << 15, 9);
  const std::uint32_t k = 64;
  UpdateCounter counter(k);
  InsertionQueue q(k, &counter);
  run_queue(q, data);
  const auto& per_pos = counter.per_position();
  // Head region is written far more than the tail (paper Fig. 5a).
  EXPECT_GT(per_pos[0], 4 * per_pos[k - 1] + 1);
  std::uint64_t head_sum = 0;
  std::uint64_t tail_sum = 0;
  for (std::uint32_t i = 0; i < k / 4; ++i) head_sum += per_pos[i];
  for (std::uint32_t i = 3 * k / 4; i < k; ++i) tail_sum += per_pos[i];
  EXPECT_GT(head_sum, 2 * tail_sum);
}

TEST(UpdateCounterTest, TotalsOrderInsertionAboveHeapAndMerge) {
  const auto data = uniform_floats(1 << 15, 10);
  const std::uint32_t k = 256;
  UpdateCounter ci(k), ch(k), cm(MergeQueue(k, 8).capacity());
  InsertionQueue qi(k, &ci);
  HeapQueue qh(k, &ch);
  MergeQueue qm(k, 8, &cm);
  run_queue(qi, data);
  run_queue(qh, data);
  run_queue(qm, data);
  // Paper Fig. 5b: insertion >> merge >= heap (merge slightly above heap).
  EXPECT_GT(ci.total(), 3 * cm.total());
  EXPECT_GE(cm.total(), ch.total());
}

TEST(UpdateCounterTest, ResetClears) {
  UpdateCounter c(4);
  c.record(0);
  c.record(3);
  EXPECT_EQ(c.total(), 2u);
  c.reset();
  EXPECT_EQ(c.total(), 0u);
}

TEST(UpdateCounterTest, OutOfRangePositionIgnored) {
  UpdateCounter c(2);
  c.record(5);
  EXPECT_EQ(c.total(), 0u);
}

}  // namespace
}  // namespace gpuksel
