// Tests for the batched multi-query serving layer: the BatchedKnn queue
// front end, the sharded tile pipeline's exactness against the scalar GPU
// path, edge-case batch shapes (empty, single query, k == n) and fault
// recovery.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "core/kernels/batch_pipeline.hpp"
#include "knn/batch.hpp"
#include "knn/dataset.hpp"
#include "knn/knn.hpp"
#include "simt/device.hpp"
#include "simt/fault_injection.hpp"
#include "util/check.hpp"

namespace gpuksel::knn {
namespace {

BatchedKnnOptions tiled_options(std::uint32_t tile_refs) {
  BatchedKnnOptions opts;
  opts.batch.tile_refs = tile_refs;
  return opts;
}

/// The scalar-pipeline reference the batched path must match bit-for-bit.
std::vector<std::vector<Neighbor>> scalar_gpu(const BruteForceKnn& knn,
                                              const Dataset& queries,
                                              std::uint32_t k) {
  simt::Device dev;
  return knn.search_gpu(dev, queries, k).neighbors;
}

TEST(BatchedKnnTest, MatchesScalarGpuPathExactly) {
  const auto refs = make_uniform_dataset(200, 8, 21);
  const auto queries = make_uniform_dataset(45, 8, 22);
  const BruteForceKnn scalar(refs);
  const auto expected = scalar_gpu(scalar, queries, 10);
  for (const std::uint32_t tile : {16u, 64u, 256u}) {
    simt::Device dev;
    BatchedKnn knn(refs, tiled_options(tile));
    const auto got = knn.search_gpu(dev, queries, 10);
    EXPECT_EQ(got.neighbors, expected) << "tile_refs=" << tile;
    EXPECT_GT(got.modeled_seconds, 0.0);
  }
}

TEST(BatchedKnnTest, EmptyBatchIsServedWithoutLaunching) {
  simt::Device dev;
  BatchedKnn knn(make_uniform_dataset(30, 4, 23), tiled_options(8));
  const auto result = knn.search_gpu(dev, Dataset{}, 3);
  EXPECT_TRUE(result.neighbors.empty());
  EXPECT_EQ(dev.transfers().bytes_h2d, 0u);  // not even the refs upload
  EXPECT_EQ(dev.cumulative().instructions, 0u);
}

TEST(BruteForceKnnTest, EmptyBatchIsValidOnBothPaths) {
  const BruteForceKnn knn(make_uniform_dataset(30, 4, 23));
  EXPECT_TRUE(knn.search(Dataset{}, 3).neighbors.empty());
  simt::Device dev;
  EXPECT_TRUE(knn.search_gpu(dev, Dataset{}, 3).neighbors.empty());
  EXPECT_EQ(dev.cumulative().instructions, 0u);
}

TEST(BatchedKnnTest, SingleQueryMatchesScalarPath) {
  const auto refs = make_uniform_dataset(100, 6, 24);
  const auto queries = make_uniform_dataset(1, 6, 25);
  const BruteForceKnn scalar(refs);
  simt::Device dev;
  BatchedKnn knn(refs, tiled_options(16));
  EXPECT_EQ(knn.search_gpu(dev, queries, 5).neighbors,
            scalar_gpu(scalar, queries, 5));
}

TEST(BatchedKnnTest, KEqualsNReturnsEveryReference) {
  const std::uint32_t n = 60;
  const auto refs = make_uniform_dataset(n, 5, 26);
  const auto queries = make_uniform_dataset(9, 5, 27);
  const BruteForceKnn scalar(refs);
  simt::Device dev;
  BatchedKnn knn(refs, tiled_options(16));  // k spans several tiles
  const auto got = knn.search_gpu(dev, queries, n);
  EXPECT_EQ(got.neighbors, scalar_gpu(scalar, queries, n));
  for (const auto& nbrs : got.neighbors) EXPECT_EQ(nbrs.size(), n);
}

TEST(BatchedKnnTest, KLargerThanNIsClampedLikeScalarPath) {
  const auto refs = make_uniform_dataset(20, 4, 28);
  const auto queries = make_uniform_dataset(3, 4, 29);
  const BruteForceKnn scalar(refs);
  simt::Device dev;
  BatchedKnn knn(refs, tiled_options(7));
  const auto got = knn.search_gpu(dev, queries, 50);
  EXPECT_EQ(got.neighbors, scalar_gpu(scalar, queries, 50));
  for (const auto& nbrs : got.neighbors) EXPECT_EQ(nbrs.size(), 20u);
}

TEST(BatchedKnnTest, ServeDrainsTheQueueInFifoOrder) {
  const auto refs = make_uniform_dataset(80, 6, 30);
  const auto b0 = make_uniform_dataset(33, 6, 31);  // non-multiple of warp
  const auto b1 = make_uniform_dataset(1, 6, 32);
  const auto b2 = make_uniform_dataset(32, 6, 33);
  const BruteForceKnn scalar(refs);
  simt::Device dev;
  BatchedKnn knn(refs, tiled_options(32));
  EXPECT_EQ(knn.enqueue(b0, 4), 0u);
  EXPECT_EQ(knn.enqueue(b1, 7), 1u);
  EXPECT_EQ(knn.enqueue(b2, 4), 2u);
  EXPECT_EQ(knn.pending(), 3u);
  const auto results = knn.serve(dev);
  EXPECT_EQ(knn.pending(), 0u);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].neighbors, scalar_gpu(scalar, b0, 4));
  EXPECT_EQ(results[1].neighbors, scalar_gpu(scalar, b1, 7));
  EXPECT_EQ(results[2].neighbors, scalar_gpu(scalar, b2, 4));
  EXPECT_TRUE(knn.serve(dev).empty());  // an empty queue serves to nothing
}

TEST(BatchedKnnTest, ReferenceUploadAmortizesAcrossBatches) {
  const std::uint32_t n = 64, dim = 8, q = 16;
  const auto refs = make_uniform_dataset(n, dim, 34);
  const auto queries = make_uniform_dataset(q, dim, 35);
  simt::Device dev;
  BatchedKnn knn(refs, tiled_options(16));
  (void)knn.search_gpu(dev, queries, 4);
  const std::uint64_t first = dev.transfers().bytes_h2d;
  EXPECT_EQ(first, (std::size_t{n} * dim + std::size_t{q} * dim) * sizeof(float));
  (void)knn.search_gpu(dev, queries, 4);
  // Second batch moves only its queries: the reference set is resident.
  EXPECT_EQ(dev.transfers().bytes_h2d - first,
            std::size_t{q} * dim * sizeof(float));
}

TEST(BatchedKnnTest, SetRefsInvalidatesTheResidentUploadEvenAtSameSize) {
  // Regression: the upload cache used to key on (device, byte size) only, so
  // swapping in a same-shaped reference set kept serving the *old* vectors
  // from device memory.  The cache now also keys on the host pointer.
  const std::uint32_t n = 64, dim = 8;
  const auto refs_a = make_uniform_dataset(n, dim, 44);
  const auto refs_b = make_uniform_dataset(n, dim, 45);  // same shape
  const auto queries = make_uniform_dataset(10, dim, 46);
  simt::Device dev;
  BatchedKnn knn(refs_a, tiled_options(16));
  const auto before = knn.search_gpu(dev, queries, 5).neighbors;
  const std::uint64_t uploaded = dev.transfers().bytes_h2d;

  knn.set_refs(refs_b);
  const auto after = knn.search_gpu(dev, queries, 5).neighbors;
  // The new reference set was re-uploaded (refs + queries moved again)...
  EXPECT_EQ(dev.transfers().bytes_h2d - uploaded,
            (std::size_t{n} * dim + std::size_t{10} * dim) * sizeof(float));
  // ...and the answers come from the new vectors.
  EXPECT_NE(after, before);
  simt::Device clean;
  EXPECT_EQ(after,
            BruteForceKnn(refs_b).search_gpu(clean, queries, 5).neighbors);

  // set_refs with batches still pending would strand queued work: refused.
  knn.enqueue(queries, 3);
  EXPECT_THROW(knn.set_refs(refs_a), PreconditionError);
}

TEST(BatchedKnnTest, GenerationBumpsOnEverySetRefs) {
  // Regression for the stale-centroid guard: derived state built over the
  // reference set (the IVF trained index) snapshots generation() and refuses
  // to serve once it lags.  The counter must bump on *every* set_refs — even
  // one swapping in byte-identical rows — and never on a plain search.
  const auto refs = make_uniform_dataset(40, 4, 91);
  const auto queries = make_uniform_dataset(5, 4, 93);
  BatchedKnn knn(refs, tiled_options(16));
  const std::uint64_t g0 = knn.generation();
  simt::Device dev;
  (void)knn.search_gpu(dev, queries, 3);
  EXPECT_EQ(knn.generation(), g0);  // serving does not advance the epoch
  knn.set_refs(make_uniform_dataset(40, 4, 91));  // same bytes, new epoch
  EXPECT_EQ(knn.generation(), g0 + 1);
  knn.set_refs(make_uniform_dataset(12, 4, 92));
  EXPECT_EQ(knn.generation(), g0 + 2);
}

TEST(BatchedKnnTest, FaultWithFallbackReAnswersOnHost) {
  const auto refs = make_uniform_dataset(50, 4, 36);
  const auto queries = make_uniform_dataset(8, 4, 37);
  simt::FaultInjector injector(simt::InjectorConfig{
      simt::InjectKind::kOobIndex, /*seed=*/5, /*period=*/64, /*max_faults=*/1,
      /*kernel_filter=*/"batch_tile_score"});
  simt::Device dev;
  dev.set_fault_injector(&injector);
  auto opts = tiled_options(16);
  opts.fallback_to_host = true;
  BatchedKnn knn(refs, opts);
  const auto result = knn.search_gpu(dev, queries, 5);
  EXPECT_TRUE(result.used_host_fallback);
  ASSERT_EQ(result.faults.size(), 1u);
  EXPECT_EQ(result.faults[0].kind, FaultKind::kOutOfBounds);
  EXPECT_EQ(result.neighbors, knn.host().search(queries, 5).neighbors);
}

TEST(BatchedKnnTest, FaultWithoutFallbackKeepsBatchQueued) {
  const auto refs = make_uniform_dataset(50, 4, 36);
  const auto queries = make_uniform_dataset(8, 4, 37);
  simt::FaultInjector injector(simt::InjectorConfig{
      simt::InjectKind::kOobIndex, /*seed=*/5, /*period=*/64, /*max_faults=*/1,
      /*kernel_filter=*/"batch_tile_score"});
  simt::Device dev;
  dev.set_fault_injector(&injector);
  BatchedKnn knn(refs, tiled_options(16));
  knn.enqueue(queries, 5);
  EXPECT_THROW((void)knn.serve(dev), SimtFaultError);
  EXPECT_EQ(knn.pending(), 1u);  // the faulting batch stays at the head
  dev.set_fault_injector(nullptr);
  const auto results = knn.serve(dev);  // retry succeeds fault-free
  ASSERT_EQ(results.size(), 1u);
  simt::Device clean;
  EXPECT_EQ(results[0].neighbors,
            knn.host().search_gpu(clean, queries, 5).neighbors);
}

TEST(BatchedKnnTest, ComputedNanDistancesFollowTheSortLastPolicy) {
  // A NaN feature makes every distance to that reference NaN *in registers*
  // (the fused kernel never loads a distance); under kSortLast those rank
  // after every real candidate, exactly like the two-kernel scalar path.
  auto refs = make_uniform_dataset(40, 4, 38);
  refs.values[5 * 4 + 2] = std::numeric_limits<float>::quiet_NaN();
  const auto queries = make_uniform_dataset(6, 4, 39);
  const std::uint32_t k = 12;  // < 39 finite candidates
  GpuSearchOptions scalar_opts;
  scalar_opts.nan_policy = NanPolicy::kSortLast;
  simt::Device sdev;
  const auto expected =
      BruteForceKnn(refs).search_gpu(sdev, queries, k, scalar_opts).neighbors;
  auto opts = tiled_options(16);
  opts.nan_policy = NanPolicy::kSortLast;
  simt::Device dev;
  BatchedKnn knn(refs, opts);
  EXPECT_EQ(knn.search_gpu(dev, queries, k).neighbors, expected);
}

TEST(BatchedKnnTest, ComputedNanDistancesFaultUnderReject) {
  auto refs = make_uniform_dataset(40, 4, 38);
  refs.values[5 * 4 + 2] = std::numeric_limits<float>::quiet_NaN();
  const auto queries = make_uniform_dataset(6, 4, 39);
  auto opts = tiled_options(16);
  opts.nan_policy = NanPolicy::kReject;
  simt::Device dev;
  BatchedKnn knn(refs, opts);
  try {
    (void)knn.search_gpu(dev, queries, 3);
    FAIL() << "expected a NaN-distance fault";
  } catch (const SimtFaultError& e) {
    EXPECT_EQ(e.record().kind, FaultKind::kNanDistance);
  }
}

TEST(BatchedKnnTest, PreconditionViolationsThrow) {
  BatchedKnn knn(make_uniform_dataset(10, 4, 40), tiled_options(4));
  simt::Device dev;
  EXPECT_THROW((void)knn.search_gpu(dev, make_uniform_dataset(2, 8, 41), 2),
               PreconditionError);  // dim mismatch
  EXPECT_THROW((void)knn.search_gpu(dev, make_uniform_dataset(2, 4, 41), 0),
               PreconditionError);  // k == 0
  EXPECT_THROW(knn.enqueue(make_uniform_dataset(2, 8, 41), 2),
               PreconditionError);
  BatchedKnnOptions bad;
  bad.batch.tile_refs = 0;
  EXPECT_THROW(BatchedKnn(make_uniform_dataset(10, 4, 40), bad),
               PreconditionError);
}

TEST(BatchPipelineTest, TileCountCoversTheReferenceSet) {
  EXPECT_EQ(kernels::batch_num_tiles(100, 32), 4u);
  EXPECT_EQ(kernels::batch_num_tiles(96, 32), 3u);
  EXPECT_EQ(kernels::batch_num_tiles(1, 32), 1u);
  EXPECT_EQ(kernels::batch_num_tiles(100, 1), 100u);
}

TEST(BatchPipelineTest, EveryQueueConfigurationStaysExact) {
  const auto refs = make_uniform_dataset(90, 5, 42);
  const auto queries = make_uniform_dataset(17, 5, 43);
  const BruteForceKnn scalar(refs);
  const auto expected = scalar_gpu(scalar, queries, 9);
  for (const auto queue : {kernels::QueueKind::kInsertion,
                           kernels::QueueKind::kHeap,
                           kernels::QueueKind::kMerge}) {
    for (const auto buffer :
         {kernels::BufferMode::kNone, kernels::BufferMode::kFullSorted}) {
      auto opts = tiled_options(16);
      opts.batch.select.queue = queue;
      opts.batch.select.buffer = buffer;
      simt::Device dev;
      BatchedKnn knn(refs, opts);
      EXPECT_EQ(knn.search_gpu(dev, queries, 9).neighbors, expected)
          << kernels::queue_kind_name(queue) << "/"
          << kernels::buffer_mode_name(buffer);
    }
  }
}

TEST(BatchedKnnTest, SetRefsInvalidatesTheCachedUploadEvenAtEqualSize) {
  // Regression: the cached device upload used to be keyed on (count, dim),
  // so replacing the reference set with one of identical shape could serve
  // stale rows (the ABA problem).  The generation key makes the swap stick.
  const auto first = make_uniform_dataset(50, 4, 90);
  auto second = make_uniform_dataset(50, 4, 91);  // same shape, new content
  const auto queries = make_uniform_dataset(7, 4, 92);
  simt::Device dev;
  BatchedKnn knn(first, tiled_options(16));
  const auto before = knn.search_gpu(dev, queries, 5).neighbors;
  const std::uint64_t gen = knn.generation();
  const std::uint64_t h2d = dev.transfers().bytes_h2d;
  knn.set_refs(second);
  EXPECT_EQ(knn.generation(), gen + 1);
  const auto after = knn.search_gpu(dev, queries, 5).neighbors;
  // The new rows crossed the link again and the answers come from them.
  EXPECT_GE(dev.transfers().bytes_h2d, h2d + 50u * 4u * sizeof(float));
  EXPECT_NE(after, before);
  const BruteForceKnn fresh(std::move(second));
  EXPECT_EQ(after, scalar_gpu(fresh, queries, 5));
  // The stale block is not leaked: it recycles through the device pool.
  EXPECT_GT(dev.pool().stats().blocks_reused, 0u);
}

}  // namespace
}  // namespace gpuksel::knn
