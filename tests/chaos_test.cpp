// Chaos-harness driver: replays seeded fault schedules through the full
// Scheduler -> ShardedKnn -> DeviceShard stack and asserts the resilience
// invariants (see chaos_harness.hpp) plus scenario-specific health
// trajectories — quarantine entered within the window, GPU retries stopped
// while quarantined, re-admission after the injector budget drains, and
// byte-exactness of every response against the fault-free run.  Every
// scenario runs on 3 fixed seeds; CI runs this binary under TSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "chaos_harness.hpp"
#include "knn/dataset.hpp"
#include "knn/mutable.hpp"
#include "simt/fault_injection.hpp"

namespace gpuksel::serve::chaos {
namespace {

constexpr std::uint32_t kSeeds[] = {11, 22, 33};

simt::InjectorConfig tile_faults(std::uint32_t budget) {
  return simt::InjectorConfig{simt::InjectKind::kOobIndex, /*seed=*/5,
                              /*period=*/8, /*max_faults=*/budget,
                              /*kernel_filter=*/"batch_tile_score"};
}

std::string join(const std::vector<std::string>& violations) {
  std::string all;
  for (const std::string& v : violations) all += v + "\n";
  return all;
}

/// Runs the scenario on one seed and asserts the structural invariants.
ChaosRun run_checked(const ChaosScenario& scenario, std::uint32_t seed) {
  ChaosRun run = run_scenario(scenario, seed);
  const std::vector<std::string> violations = check_invariants(scenario, run);
  EXPECT_TRUE(violations.empty())
      << "seed " << seed << ":\n" << join(violations);
  return run;
}

bool has_transition(const ChaosRun& run, std::uint32_t shard,
                    HealthState from, HealthState to) {
  const auto& log = run.shards[shard].transitions;
  return std::any_of(log.begin(), log.end(), [&](const HealthTransition& t) {
    return t.from == from && t.to == to;
  });
}

TEST(ChaosTest, TransientBurstIsAbsorbedByTheRetryPolicy) {
  ChaosScenario sc;
  sc.name = "transient-burst";
  sc.num_requests = 12;
  // One fault total: the first faulted attempt drains the budget, so the
  // retry (and everything after) is clean — no exclusion, no quarantine.
  sc.faults.push_back(ShardFaultPlan{1, tile_faults(/*budget=*/1)});
  for (std::uint32_t seed : kSeeds) {
    SCOPED_TRACE(testing::Message() << "seed " << seed);
    const ChaosRun run = run_checked(sc, seed);
    const ShardHealthSnapshot& shard = run.shards[1];
    EXPECT_EQ(shard.totals.failed_attempts, 1u);
    EXPECT_EQ(shard.totals.faults, 1u);
    EXPECT_EQ(shard.totals.retries, 1u);
    EXPECT_EQ(shard.totals.exclusions, 0u);
    EXPECT_EQ(shard.counters.quarantine_entries, 0u);
    EXPECT_TRUE(shard.state == HealthState::kHealthy ||
                shard.state == HealthState::kSuspect);
    for (const ServeResponse& resp : run.responses) {
      EXPECT_FALSE(resp.result.degraded);
    }
  }
}

TEST(ChaosTest, PersistentShardIsQuarantinedAndReadmitted) {
  ChaosScenario sc;
  sc.name = "persistent-single-shard";
  sc.num_requests = 30;
  sc.health.window = 4;
  sc.health.suspect_faults = 1;
  sc.health.quarantine_faults = 2;
  sc.health.probe_interval = 3;
  sc.health.probe_successes = 2;
  // Budget 10: ~2 pre-quarantine requests burn 2 attempts each, probes burn
  // the rest one at a time, then clean probes re-admit the shard.
  sc.faults.push_back(ShardFaultPlan{1, tile_faults(/*budget=*/10)});
  for (std::uint32_t seed : kSeeds) {
    SCOPED_TRACE(testing::Message() << "seed " << seed);
    const ChaosRun run = run_checked(sc, seed);
    const ShardHealthSnapshot& shard = run.shards[1];
    // The whole budget surfaced as recorded faults, and the shard recovered.
    EXPECT_EQ(shard.totals.faults, 10u);
    EXPECT_EQ(shard.counters.quarantine_entries, 1u);
    EXPECT_EQ(shard.counters.quarantine_exits, 1u);
    EXPECT_EQ(shard.state, HealthState::kHealthy);
    EXPECT_GE(shard.counters.probe_failures, 1u);
    EXPECT_GE(shard.counters.probe_successes, sc.health.probe_successes);
    // Quarantine was entered within the window: retries (one per faulted
    // pre-quarantine request) stop once GPU attempts do.
    EXPECT_LE(shard.totals.retries, sc.health.window);
    const auto entry = std::find_if(
        shard.transitions.begin(), shard.transitions.end(),
        [](const HealthTransition& t) {
          return t.to == HealthState::kQuarantined &&
                 t.from != HealthState::kProbing;
        });
    ASSERT_NE(entry, shard.transitions.end());
    EXPECT_LT(entry->request, sc.health.window);
    // After re-admission the final requests are served clean on the GPU.
    const ServeResponse& last = run.responses.back();
    EXPECT_FALSE(last.result.shards[1].excluded);
    EXPECT_EQ(last.result.shards[1].health_state, HealthState::kHealthy);
    // Untouched shards never left healthy.
    EXPECT_EQ(run.shards[0].counters.transitions, 0u);
    EXPECT_EQ(run.shards[2].counters.transitions, 0u);
  }
}

TEST(ChaosTest, CorrelatedMultiShardFaultsRecoverIndependently) {
  ChaosScenario sc;
  sc.name = "correlated-multi-shard";
  sc.num_requests = 30;
  sc.health.window = 4;
  sc.health.quarantine_faults = 2;
  sc.health.probe_interval = 3;
  sc.health.probe_successes = 2;
  sc.faults.push_back(ShardFaultPlan{0, tile_faults(/*budget=*/6)});
  sc.faults.push_back(ShardFaultPlan{2, tile_faults(/*budget=*/6)});
  for (std::uint32_t seed : kSeeds) {
    SCOPED_TRACE(testing::Message() << "seed " << seed);
    const ChaosRun run = run_checked(sc, seed);
    for (std::uint32_t s : {0u, 2u}) {
      const ShardHealthSnapshot& shard = run.shards[s];
      EXPECT_EQ(shard.totals.faults, 6u) << "shard " << s;
      EXPECT_EQ(shard.counters.quarantine_entries, 1u) << "shard " << s;
      EXPECT_EQ(shard.counters.quarantine_exits, 1u) << "shard " << s;
      EXPECT_EQ(shard.state, HealthState::kHealthy) << "shard " << s;
    }
    // The middle shard rode through two faulty siblings untouched.
    EXPECT_EQ(run.shards[1].counters.transitions, 0u);
    EXPECT_EQ(run.shards[1].totals.faults, 0u);
  }
}

TEST(ChaosTest, FaultDuringProbeReturnsTheShardToQuarantine) {
  ChaosScenario sc;
  sc.name = "fault-during-probe";
  sc.num_requests = 24;
  sc.health.window = 4;
  sc.health.quarantine_faults = 2;
  sc.health.probe_interval = 2;
  sc.health.probe_successes = 2;
  // Budget 5: two pre-quarantine requests burn 4, the first probe burns the
  // last one — a fault *during the probe* — and only the next probes are
  // clean enough to re-admit.
  sc.faults.push_back(ShardFaultPlan{1, tile_faults(/*budget=*/5)});
  for (std::uint32_t seed : kSeeds) {
    SCOPED_TRACE(testing::Message() << "seed " << seed);
    const ChaosRun run = run_checked(sc, seed);
    const ShardHealthSnapshot& shard = run.shards[1];
    EXPECT_EQ(shard.totals.faults, 5u);
    EXPECT_GE(shard.counters.probe_failures, 1u);
    EXPECT_TRUE(has_transition(run, 1, HealthState::kProbing,
                               HealthState::kQuarantined));
    EXPECT_EQ(shard.counters.quarantine_exits, 1u);
    EXPECT_EQ(shard.state, HealthState::kHealthy);
  }
}

TEST(ChaosTest, IvfListScanFaultsQuarantineAndRecoverTheListShard) {
  // The same persistent-faulter trajectory through the pruned index: a
  // list-sharded IVF engine whose middle shard faults inside the list_scan
  // kernel must quarantine it, host-serve its list partition (bit-exact, so
  // every response still matches the fault-free IVF baseline — including the
  // approximate nprobe < nlist ones), and re-admit it once the budget
  // drains.
  ChaosScenario sc;
  sc.name = "ivf-list-scan";
  sc.index_type = IndexType::kIvf;
  sc.ivf_nlist = 8;
  sc.ivf_nprobe = 4;
  sc.num_requests = 30;
  sc.health.window = 4;
  sc.health.suspect_faults = 1;
  sc.health.quarantine_faults = 2;
  sc.health.probe_interval = 3;
  sc.health.probe_successes = 2;
  sc.faults.push_back(ShardFaultPlan{
      1, simt::InjectorConfig{simt::InjectKind::kOobIndex, /*seed=*/5,
                              /*period=*/8, /*max_faults=*/6,
                              /*kernel_filter=*/"list_scan"}});
  for (std::uint32_t seed : kSeeds) {
    SCOPED_TRACE(testing::Message() << "seed " << seed);
    const ChaosRun run = run_checked(sc, seed);
    const ShardHealthSnapshot& shard = run.shards[1];
    // Enough of the budget surfaced to cross the quarantine threshold, and
    // the shard recovered before the stream ended.
    EXPECT_GE(shard.totals.faults, sc.health.quarantine_faults);
    EXPECT_LE(shard.totals.faults, 6u);
    EXPECT_GE(shard.counters.quarantine_entries, 1u);
    EXPECT_EQ(shard.counters.quarantine_entries,
              shard.counters.quarantine_exits);
    EXPECT_GE(shard.counters.quarantined_served, 1u);
    EXPECT_EQ(shard.state, HealthState::kHealthy);
    // Quarantined service is the host mirror over the shard's list range;
    // check_invariants already proved every response byte-identical.
    EXPECT_EQ(run.shards[0].counters.transitions, 0u);
    EXPECT_EQ(run.shards[2].counters.transitions, 0u);
    EXPECT_NE(run.report_json.find("\"index_type\": \"ivf\""),
              std::string::npos);
    EXPECT_NE(run.report_json.find("\"list_lo\""), std::string::npos);
  }
}

// The health section of the shards report must reflect the chaos pass and
// stay well-formed (the exact partition is asserted structurally by
// check_invariants; CI additionally json-parses the report).
TEST(ChaosTest, ShardReportCarriesHealthAndSchedulerSections) {
  ChaosScenario sc;
  sc.name = "report-smoke";
  sc.num_requests = 10;
  sc.health.quarantine_faults = 2;
  sc.health.window = 4;
  sc.faults.push_back(ShardFaultPlan{1, tile_faults(/*budget=*/4)});
  const ChaosRun run = run_checked(sc, kSeeds[0]);
  EXPECT_NE(run.report_json.find("\"health\""), std::string::npos);
  EXPECT_NE(run.report_json.find("\"transition_log\""), std::string::npos);
  EXPECT_NE(run.report_json.find("\"wasted_seconds\""), std::string::npos);
  EXPECT_NE(run.report_json.find("\"scheduler\""), std::string::npos);
  EXPECT_NE(run.report_json.find("\"quarantine_entries\""), std::string::npos);
}

// A fault injected into the compaction device mid-rebuild must leave the old
// snapshot serving byte-exact answers, be counted as a failed compaction,
// and not poison later (clean) compactions.
TEST(ChaosTest, FaultDuringCompactionLeavesTheOldSnapshotServing) {
  knn::MutableKnnOptions opts;
  opts.base = knn::MutableBase::kIvf;  // rebuild launches ivf_train
  opts.ivf.nlist = 4;
  opts.ivf.nprobe = 4;
  knn::MutableKnn index(knn::make_uniform_dataset(80, 5, 77), opts);
  const knn::Dataset extra = knn::make_uniform_dataset(12, 5, 78);
  for (std::uint32_t i = 0; i < extra.count; ++i) {
    index.upsert(1000 + i, {extra.row(i), extra.dim});
  }
  const knn::Dataset queries = knn::make_uniform_dataset(9, 5, 79);
  simt::Device dev;
  const auto before = index.search(dev, queries, 6).neighbors;

  simt::FaultInjector injector(simt::InjectorConfig{
      simt::InjectKind::kOobIndex, /*seed=*/7, /*period=*/4,
      /*max_faults=*/1, /*kernel_filter=*/"ivf_train"});
  index.compaction_device().set_fault_injector(&injector);

  // Synchronous rebuild faults: nothing is adopted, the delta stays, and
  // the served answer is unchanged.
  EXPECT_FALSE(index.compact());
  EXPECT_EQ(index.stats().compactions_failed, 1u);
  EXPECT_EQ(index.stats().compactions, 0u);
  EXPECT_GE(injector.fault_count(), 1u);
  EXPECT_EQ(index.delta_rows(), extra.count);
  EXPECT_EQ(index.search(dev, queries, 6).neighbors, before);

  // Same schedule through the async path (the injector budget refills).
  injector.reset();
  ASSERT_TRUE(index.compact_async());
  index.finish_compaction();
  EXPECT_EQ(index.stats().compactions_failed, 2u);
  EXPECT_EQ(index.search(dev, queries, 6).neighbors, before);

  // With the injector detached the rebuild completes and folds the delta —
  // and the answer is still byte-identical (compaction preserves rows).
  index.compaction_device().set_fault_injector(nullptr);
  EXPECT_TRUE(index.compact());
  EXPECT_EQ(index.stats().compactions, 1u);
  EXPECT_EQ(index.delta_rows(), 0u);
  EXPECT_EQ(index.search(dev, queries, 6).neighbors, before);
}

}  // namespace
}  // namespace gpuksel::serve::chaos
