// Tests for the simulated-GPU flat-scan selection kernels: every (queue,
// buffer-mode, alignment, layout) combination must reproduce the scalar
// oracle exactly, and the metrics must show the SIMT effects the paper's
// optimizations exist for.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/kernels/select_kernels.hpp"
#include "core/kselect.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace gpuksel::kernels {
namespace {

/// Builds a Q x N matrix of uniform distances in the requested layout.
std::vector<float> make_matrix(std::uint32_t q, std::uint32_t n,
                               MatrixLayout layout, std::uint64_t seed) {
  std::vector<float> out(std::size_t{q} * n);
  for (std::uint32_t qq = 0; qq < q; ++qq) {
    const auto row = uniform_floats(n, seed * 1315423911u + qq);
    for (std::uint32_t r = 0; r < n; ++r) {
      const std::size_t idx = layout == MatrixLayout::kReferenceMajor
                                  ? std::size_t{r} * q + qq
                                  : std::size_t{qq} * n + r;
      out[idx] = row[r];
    }
  }
  return out;
}

/// Scalar oracle per query.
std::vector<std::vector<Neighbor>> oracle_all(const std::vector<float>& m,
                                              std::uint32_t q, std::uint32_t n,
                                              MatrixLayout layout,
                                              std::uint32_t k) {
  std::vector<std::vector<Neighbor>> out(q);
  std::vector<float> row(n);
  for (std::uint32_t qq = 0; qq < q; ++qq) {
    for (std::uint32_t r = 0; r < n; ++r) {
      row[r] = layout == MatrixLayout::kReferenceMajor
                   ? m[std::size_t{r} * q + qq]
                   : m[std::size_t{qq} * n + r];
    }
    out[qq] = select_k_oracle(row, k);
  }
  return out;
}

struct KernelCase {
  QueueKind queue;
  BufferMode buffer;
  bool aligned;
  std::uint32_t k;
  std::uint32_t q;
  std::uint32_t n;
};

class FlatKernelTest : public ::testing::TestWithParam<KernelCase> {};

TEST_P(FlatKernelTest, MatchesScalarOracle) {
  const auto& p = GetParam();
  SelectConfig cfg;
  cfg.queue = p.queue;
  cfg.buffer = p.buffer;
  cfg.aligned_merge = p.aligned;
  const auto matrix = make_matrix(p.q, p.n, cfg.layout, 50);
  simt::Device dev;
  const auto out = flat_select(dev, matrix, p.q, p.n, p.k, cfg);
  EXPECT_EQ(out.neighbors, oracle_all(matrix, p.q, p.n, cfg.layout, p.k));
  EXPECT_GT(out.metrics.instructions, 0u);
}

std::vector<KernelCase> kernel_cases() {
  std::vector<KernelCase> cases;
  const BufferMode modes[] = {BufferMode::kNone, BufferMode::kBufferOnly,
                              BufferMode::kFull, BufferMode::kFullSorted};
  for (QueueKind queue :
       {QueueKind::kInsertion, QueueKind::kHeap, QueueKind::kMerge}) {
    for (BufferMode mode : modes) {
      for (std::uint32_t k : {1u, 8u, 33u, 64u}) {
        cases.push_back({queue, mode, true, k, 48, 700});
      }
    }
  }
  // Unaligned merge variants.
  for (BufferMode mode : modes) {
    cases.push_back({QueueKind::kMerge, mode, false, 32, 48, 700});
  }
  // Edge shapes: one query, tiny n, k > n, exactly one warp.
  cases.push_back({QueueKind::kMerge, BufferMode::kFull, true, 16, 1, 5});
  cases.push_back({QueueKind::kInsertion, BufferMode::kNone, true, 4, 33, 1});
  cases.push_back({QueueKind::kHeap, BufferMode::kFullSorted, true, 100, 32, 40});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FlatKernelTest, ::testing::ValuesIn(kernel_cases()),
    [](const auto& info) {
      std::string name = std::string(queue_kind_name(info.param.queue)) + "_" +
                         std::string(buffer_mode_name(info.param.buffer)) +
                         (info.param.aligned ? "_al" : "_un") + "_k" +
                         std::to_string(info.param.k) + "_q" +
                         std::to_string(info.param.q) + "_n" +
                         std::to_string(info.param.n);
      std::string clean;
      for (char c : name) {
        clean += (c == '+') ? 'P' : c;
      }
      return clean;
    });

TEST(FlatKernel, QueryMajorLayoutMatchesToo) {
  SelectConfig cfg;
  cfg.layout = MatrixLayout::kQueryMajor;
  const auto matrix = make_matrix(40, 500, cfg.layout, 51);
  simt::Device dev;
  const auto out = flat_select(dev, matrix, 40, 500, 16, cfg);
  EXPECT_EQ(out.neighbors, oracle_all(matrix, 40, 500, cfg.layout, 16));
}

TEST(FlatKernel, DeterministicAcrossRuns) {
  SelectConfig cfg;
  cfg.buffer = BufferMode::kFullSorted;
  const auto matrix = make_matrix(32, 300, cfg.layout, 52);
  simt::Device d1, d2;
  const auto a = flat_select(d1, matrix, 32, 300, 32, cfg);
  const auto b = flat_select(d2, matrix, 32, 300, 32, cfg);
  EXPECT_EQ(a.neighbors, b.neighbors);
  EXPECT_EQ(a.metrics.instructions, b.metrics.instructions);
  EXPECT_EQ(a.metrics.global_tx(), b.metrics.global_tx());
}

TEST(FlatKernel, InvalidConfigsThrow) {
  const auto matrix = make_matrix(32, 64, MatrixLayout::kReferenceMajor, 53);
  simt::Device dev;
  SelectConfig cfg;
  EXPECT_THROW(flat_select(dev, matrix, 32, 64, 0, cfg), PreconditionError);
  cfg.buffer = BufferMode::kFullSorted;
  cfg.buffer_size = 12;  // Local Sort needs a power of two
  EXPECT_THROW(flat_select(dev, matrix, 32, 64, 8, cfg), PreconditionError);
  EXPECT_THROW(flat_select(dev, matrix, 31, 64, 8, SelectConfig{}),
               PreconditionError);  // size mismatch
}

TEST(FlatKernel, TwoPointerMergeStrategyMatchesOracle) {
  SelectConfig cfg;
  cfg.queue = QueueKind::kMerge;
  cfg.merge_strategy = MergeStrategy::kTwoPointer;
  const auto matrix = make_matrix(48, 900, cfg.layout, 55);
  simt::Device dev;
  for (const bool aligned : {false, true}) {
    cfg.aligned_merge = aligned;
    const auto out = flat_select(dev, matrix, 48, 900, 64, cfg);
    EXPECT_EQ(out.neighbors, oracle_all(matrix, 48, 900, cfg.layout, 64));
  }
}

TEST(FlatKernel, RowMajorQueueLayoutMatchesOracle) {
  SelectConfig cfg;
  cfg.queue_layout = QueueLayout::kRowMajor;
  cfg.cache_head = false;  // the fully naive Algorithm-1 implementation
  const auto matrix = make_matrix(40, 600, cfg.layout, 56);
  simt::Device dev;
  for (QueueKind queue :
       {QueueKind::kInsertion, QueueKind::kHeap, QueueKind::kMerge}) {
    cfg.queue = queue;
    const auto out = flat_select(dev, matrix, 40, 600, 24, cfg);
    EXPECT_EQ(out.neighbors, oracle_all(matrix, 40, 600, cfg.layout, 24))
        << queue_kind_name(queue);
  }
}

TEST(FlatKernel, MemoryHeadReadMatchesCachedHead) {
  const auto matrix = make_matrix(40, 600, MatrixLayout::kReferenceMajor, 57);
  simt::Device dev;
  SelectConfig cached;
  cached.cache_head = true;
  SelectConfig uncached;
  uncached.cache_head = false;
  const auto a = flat_select(dev, matrix, 40, 600, 32, cached);
  const auto b = flat_select(dev, matrix, 40, 600, 32, uncached);
  EXPECT_EQ(a.neighbors, b.neighbors);
  // The two modes trade per-element head loads against per-insert refreshes;
  // they must at least account differently while agreeing on results.
  EXPECT_NE(b.metrics.instructions, a.metrics.instructions);
}

// --- metric properties: the paper's phenomena --------------------------------

simt::KernelMetrics run_metrics(QueueKind queue, BufferMode mode, bool aligned,
                                MatrixLayout layout, std::uint32_t k,
                                std::uint32_t n, std::uint32_t q = 64) {
  SelectConfig cfg;
  cfg.queue = queue;
  cfg.buffer = mode;
  cfg.aligned_merge = aligned;
  cfg.layout = layout;
  const auto matrix = make_matrix(q, n, layout, 54);
  simt::Device dev;
  return flat_select(dev, matrix, q, n, k, cfg).metrics;
}

TEST(KernelMetricsProperties, BufferedSearchRaisesInsertionQueueEfficiency) {
  const auto plain = run_metrics(QueueKind::kInsertion, BufferMode::kNone,
                                 true, MatrixLayout::kReferenceMajor, 64, 4096);
  const auto buffered =
      run_metrics(QueueKind::kInsertion, BufferMode::kFullSorted, true,
                  MatrixLayout::kReferenceMajor, 64, 4096);
  EXPECT_GT(buffered.simt_efficiency(), plain.simt_efficiency());
  // And it reduces total issue slots (the actual speedup source).
  EXPECT_LT(buffered.instructions, plain.instructions);
}

TEST(KernelMetricsProperties, AlignedMergeBeatsUnaligned) {
  const auto unaligned = run_metrics(QueueKind::kMerge, BufferMode::kNone,
                                     false, MatrixLayout::kReferenceMajor, 256,
                                     4096);
  const auto aligned = run_metrics(QueueKind::kMerge, BufferMode::kNone, true,
                                   MatrixLayout::kReferenceMajor, 256, 4096);
  EXPECT_LT(aligned.instructions, unaligned.instructions);
  EXPECT_GT(aligned.simt_efficiency(), unaligned.simt_efficiency());
}

TEST(KernelMetricsProperties, ReferenceMajorScanCoalesces) {
  // Isolate the distance-matrix layout effect by using the optimized queue
  // configuration (interleaved queues, cached head), so the scan loads
  // dominate the transaction count.
  SelectConfig cfg;
  cfg.queue = QueueKind::kHeap;
  cfg.queue_layout = QueueLayout::kInterleaved;
  cfg.cache_head = true;
  simt::Device dev;
  cfg.layout = MatrixLayout::kReferenceMajor;
  const auto m1 = make_matrix(64, 2048, cfg.layout, 54);
  const auto coalesced = flat_select(dev, m1, 64, 2048, 16, cfg).metrics;
  cfg.layout = MatrixLayout::kQueryMajor;
  const auto m2 = make_matrix(64, 2048, cfg.layout, 54);
  const auto strided = flat_select(dev, m2, 64, 2048, 16, cfg).metrics;
  EXPECT_LT(coalesced.global_load_tx, strided.global_load_tx / 4);
}

TEST(KernelMetricsProperties, InsertionQueueIssuesMostInstructions) {
  const auto ins = run_metrics(QueueKind::kInsertion, BufferMode::kNone, true,
                               MatrixLayout::kReferenceMajor, 128, 4096);
  const auto heap = run_metrics(QueueKind::kHeap, BufferMode::kNone, true,
                                MatrixLayout::kReferenceMajor, 128, 4096);
  EXPECT_GT(ins.instructions, heap.instructions);
}

TEST(KernelMetricsProperties, RowMajorQueuesCostMoreTransactions) {
  SelectConfig opt;
  opt.queue = QueueKind::kMerge;
  const auto matrix = make_matrix(64, 2048, opt.layout, 58);
  simt::Device dev;
  const auto interleaved = flat_select(dev, matrix, 64, 2048, 64, opt).metrics;
  SelectConfig naive = opt;
  naive.queue_layout = QueueLayout::kRowMajor;
  const auto row = flat_select(dev, matrix, 64, 2048, 64, naive).metrics;
  EXPECT_GT(row.global_tx(), 2 * interleaved.global_tx());
}

TEST(KernelMetricsProperties, TwoPointerTradesInstructionsForGathers) {
  // The sequential merge does fewer compare instructions but divergent
  // gathers; at minimum it must differ measurably from the network while
  // producing identical results (checked elsewhere).
  SelectConfig bitonic;
  bitonic.queue = QueueKind::kMerge;
  const auto matrix = make_matrix(64, 4096, bitonic.layout, 59);
  simt::Device dev;
  const auto net = flat_select(dev, matrix, 64, 4096, 256, bitonic).metrics;
  SelectConfig twoptr = bitonic;
  twoptr.merge_strategy = MergeStrategy::kTwoPointer;
  const auto seq = flat_select(dev, matrix, 64, 4096, 256, twoptr).metrics;
  EXPECT_NE(net.instructions, seq.instructions);
  EXPECT_GT(seq.transactions_per_request(), net.transactions_per_request());
}

TEST(KernelMetricsProperties, EfficiencyWithinBounds) {
  const auto m = run_metrics(QueueKind::kMerge, BufferMode::kFull, true,
                             MatrixLayout::kReferenceMajor, 32, 1024);
  EXPECT_GE(m.simt_efficiency(), 1.0 / 32.0);
  EXPECT_LE(m.simt_efficiency(), 1.0);
}

}  // namespace
}  // namespace gpuksel::kernels

namespace gpuksel::kernels {
namespace {

// --- ThreadArrayView layout math ----------------------------------------------

TEST(ThreadArrayViewTest, InterleavedFlatIndexing) {
  simt::KernelMetrics m;
  simt::WarpContext ctx(m, 0);
  simt::DeviceBuffer<float> d(8 * 64);
  simt::DeviceBuffer<std::uint32_t> i(8 * 64);
  const ThreadArrayView v{d.span(), i.span(), 64, 8,
                          QueueLayout::kInterleaved};
  const U32 thread = U32::iota();
  const U32 idx = v.flat(ctx, simt::kFullMask, thread, 3);
  for (int l = 0; l < simt::kWarpSize; ++l) {
    EXPECT_EQ(idx[l], 3u * 64u + static_cast<std::uint32_t>(l));
  }
}

TEST(ThreadArrayViewTest, RowMajorFlatIndexing) {
  simt::KernelMetrics m;
  simt::WarpContext ctx(m, 0);
  simt::DeviceBuffer<float> d(8 * 64);
  simt::DeviceBuffer<std::uint32_t> i(8 * 64);
  const ThreadArrayView v{d.span(), i.span(), 64, 8, QueueLayout::kRowMajor};
  const U32 thread = U32::iota();
  const U32 idx = v.flat(ctx, simt::kFullMask, thread, 3);
  for (int l = 0; l < simt::kWarpSize; ++l) {
    EXPECT_EQ(idx[l], static_cast<std::uint32_t>(l) * 8u + 3u);
  }
}

TEST(ThreadArrayViewTest, InterleavedLockstepAccessCoalesces) {
  simt::KernelMetrics mi, mr;
  simt::DeviceBuffer<float> d(8 * 64);
  simt::DeviceBuffer<std::uint32_t> i(8 * 64);
  {
    simt::WarpContext ctx(mi, 0);
    const ThreadArrayView v{d.span(), i.span(), 64, 8,
                            QueueLayout::kInterleaved};
    (void)v.load(ctx, simt::kFullMask, U32::iota(), 2);
  }
  {
    simt::WarpContext ctx(mr, 0);
    const ThreadArrayView v{d.span(), i.span(), 64, 8,
                            QueueLayout::kRowMajor};
    (void)v.load(ctx, simt::kFullMask, U32::iota(), 2);
  }
  EXPECT_LE(mi.global_load_tx, 2u);   // 32 consecutive floats
  EXPECT_GE(mr.global_load_tx, 8u);   // strided by 8 floats per lane
}

TEST(ThreadArrayViewTest, SentinelFillAndEntryRoundTrip) {
  simt::KernelMetrics m;
  simt::WarpContext ctx(m, 0);
  simt::DeviceBuffer<float> d(4 * 32);
  simt::DeviceBuffer<std::uint32_t> i(4 * 32);
  const ThreadArrayView v{d.span(), i.span(), 32, 4,
                          QueueLayout::kInterleaved};
  const U32 thread = U32::iota();
  v.fill_sentinel(ctx, simt::kFullMask, thread);
  for (float x : d.host()) EXPECT_EQ(x, simt::kFloatSentinel);
  const EntryLanes e{F32::filled(0.5f), U32::filled(7u)};
  v.store(ctx, simt::lane_bit(3), thread, 1, e);
  const EntryLanes back = v.load(ctx, simt::lane_bit(3), thread, 1);
  EXPECT_EQ(back.dist[3], 0.5f);
  EXPECT_EQ(back.index[3], 7u);
}

TEST(EntryLtTest, LexicographicWithTies) {
  simt::KernelMetrics m;
  simt::WarpContext ctx(m, 0);
  EntryLanes a{F32::filled(1.0f), U32::filled(5u)};
  EntryLanes b{F32::filled(1.0f), U32::filled(6u)};
  EXPECT_EQ(entry_lt(ctx, simt::kFullMask, a, b), simt::kFullMask);
  EXPECT_EQ(entry_lt(ctx, simt::kFullMask, b, a), 0u);
  b.dist = F32::filled(0.5f);
  EXPECT_EQ(entry_lt(ctx, simt::kFullMask, b, a), simt::kFullMask);
}

}  // namespace
}  // namespace gpuksel::kernels
