// Recall/exactness differential suite for the IVF pruned index.
//
// The exactness contract: with nprobe == nlist every reference row is scanned
// exactly once and IvfKnn must be byte-identical to BatchedKnn and the scalar
// host selection.  Below nlist the result is approximate, so the suite pins
// the properties that remain exact: probe sets are prefixes of one sorted
// centroid list (recall monotone in nprobe), the host mirror is bit-identical
// to the device path at every nprobe, and the bench's default operating point
// clears a measured recall floor.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "knn/batch.hpp"
#include "knn/dataset.hpp"
#include "knn/ivf.hpp"
#include "knn/knn.hpp"
#include "knn/rbc.hpp"
#include "simt/device.hpp"
#include "simt/fault_injection.hpp"
#include "simt/profiler.hpp"
#include "util/check.hpp"

namespace gpuksel::knn {
namespace {

IvfOptions ivf_options(std::uint32_t nlist, std::uint32_t nprobe,
                       std::uint32_t tile_refs = 64) {
  IvfOptions opts;
  opts.params.nlist = nlist;
  opts.params.nprobe = nprobe;
  opts.batch.batch.tile_refs = tile_refs;
  return opts;
}

IvfKnn trained_ivf(simt::Device& dev, const Dataset& refs, IvfOptions opts) {
  IvfKnn ivf(refs, std::move(opts));
  ivf.train(dev);
  return ivf;
}

/// A reference set where every row appears twice: duplicate distances force
/// the (dist, index) tie-break on both the coarse and scan paths, and the
/// all-duplicate k-means sample exercises the uniform-seeding fallback.
Dataset duplicated_rows(std::uint32_t unique_rows, std::uint32_t dim,
                        std::uint64_t seed) {
  const Dataset base = make_uniform_dataset(unique_rows, dim, seed);
  Dataset out;
  out.count = unique_rows * 2;
  out.dim = dim;
  out.values.reserve(std::size_t{out.count} * dim);
  out.values.insert(out.values.end(), base.values.begin(), base.values.end());
  out.values.insert(out.values.end(), base.values.begin(), base.values.end());
  return out;
}

TEST(IvfKnnTest, ExactWhenProbingAllLists) {
  // Distribution x k matrix: nprobe == nlist must be byte-identical to the
  // batched pipeline, the scalar host selection, and the IVF host mirror.
  struct Case {
    const char* name;
    Dataset refs;
  };
  const std::vector<Case> cases = {
      {"uniform", make_uniform_dataset(300, 6, 101)},
      {"clustered", make_gaussian_clusters(300, 6, 8, 0.08f, 102).points},
      {"duplicates", duplicated_rows(150, 6, 103)},
  };
  const auto queries = make_uniform_dataset(37, 6, 104);
  for (const auto& c : cases) {
    const BruteForceKnn scalar(c.refs);
    for (const std::uint32_t k : {1u, 5u, 16u}) {
      const auto expected = scalar.search(queries, k).neighbors;
      simt::Device bdev;
      BatchedKnn batched(c.refs, ivf_options(16, 16).batch);
      ASSERT_EQ(batched.search_gpu(bdev, queries, k).neighbors, expected)
          << c.name << " k=" << k;  // the baseline itself is exact
      simt::Device dev;
      auto ivf = trained_ivf(dev, c.refs, ivf_options(16, 16));
      EXPECT_EQ(ivf.search_gpu(dev, queries, k).neighbors, expected)
          << c.name << " k=" << k;
      EXPECT_EQ(ivf.search_host(queries, k).neighbors, expected)
          << c.name << " k=" << k;
    }
  }
}

TEST(IvfKnnTest, RecallIsMonotoneInNprobeAndReachesOne) {
  const Dataset refs = make_gaussian_clusters(2000, 8, 16, 0.05f, 110).points;
  const auto queries = make_gaussian_clusters(48, 8, 16, 0.05f, 111).points;
  const std::uint32_t k = 10, nlist = 32;
  const BruteForceKnn scalar(refs);
  const auto truth = scalar.search(queries, k).neighbors;
  simt::Device dev;
  auto ivf = trained_ivf(dev, refs, ivf_options(nlist, 1));
  double prev = -1.0;
  for (const std::uint32_t nprobe : {1u, 2u, 4u, 8u, 16u, 32u}) {
    ivf.set_nprobe(nprobe);
    const auto got = ivf.search_gpu(dev, queries, k).neighbors;
    const double r = RandomBallCover::recall(got, truth);
    // Probe sets are prefixes of one sorted centroid list, so the candidate
    // set only grows with nprobe — recall cannot drop.
    EXPECT_GE(r, prev) << "nprobe=" << nprobe;
    prev = r;
  }
  EXPECT_EQ(prev, 1.0);  // nprobe == nlist is exact
}

TEST(IvfKnnTest, RecallFloorAtBenchOperatingPoint) {
  // Mirrors fig13's operating ratio (nprobe/nlist = 1/8) at test scale: the
  // clustered workload must clear the recall floor the CI gate enforces,
  // while pruning cuts modeled time well below the full scan's.  The batch
  // must be large enough to fill the task warps (q * nprobe / nlist >= 32
  // tasks per list) or masked-off lanes eat the pruning win — the same
  // batching requirement real GPU IVF has.
  const std::uint32_t n = 20000, q = 256, dim = 8, k = 10;
  const Dataset all = make_gaussian_clusters(n + q, dim, 64, 0.05f, 120).points;
  Dataset refs, queries;
  refs.dim = queries.dim = dim;
  refs.count = n;
  queries.count = q;
  refs.values.assign(all.values.begin(),
                     all.values.begin() + std::size_t{n} * dim);
  queries.values.assign(all.values.begin() + std::size_t{n} * dim,
                        all.values.end());

  simt::Device bdev;
  BatchedKnn batched(refs, ivf_options(64, 8, 256).batch);
  const auto exact = batched.search_gpu(bdev, queries, k);

  simt::Device dev;
  auto ivf = trained_ivf(dev, refs, ivf_options(64, 8, 256));
  const auto got = ivf.search_gpu(dev, queries, k);
  EXPECT_GE(RandomBallCover::recall(got.neighbors, exact.neighbors), 0.95);
  // The full 5x gate runs at bench scale in CI; at this scale the pruned scan
  // must already be several times cheaper than the full scan.
  EXPECT_LT(got.modeled_seconds * 4.0, exact.modeled_seconds);
}

TEST(IvfKnnTest, HostMirrorIsBitIdenticalAtEveryNprobe) {
  const Dataset refs = make_gaussian_clusters(600, 5, 12, 0.1f, 130).points;
  const auto queries = make_uniform_dataset(29, 5, 131);
  simt::Device dev;
  auto ivf = trained_ivf(dev, refs, ivf_options(24, 1));
  for (const std::uint32_t nprobe : {1u, 3u, 7u, 24u}) {
    ivf.set_nprobe(nprobe);
    EXPECT_EQ(ivf.search_gpu(dev, queries, 9).neighbors,
              ivf.search_host(queries, 9).neighbors)
        << "nprobe=" << nprobe;
  }
}

TEST(IvfKnnTest, FewerRowsThanListsClampsNlist) {
  const Dataset refs = make_uniform_dataset(10, 4, 140);
  const auto queries = make_uniform_dataset(6, 4, 141);
  simt::Device dev;
  auto ivf = trained_ivf(dev, refs, ivf_options(16, 16));
  EXPECT_EQ(ivf.index().nlist, 10u);  // min(nlist, n)
  const BruteForceKnn scalar(refs);
  EXPECT_EQ(ivf.search_gpu(dev, queries, 3).neighbors,
            scalar.search(queries, 3).neighbors);
}

TEST(IvfKnnTest, AllDuplicateRowsCollapseToOneListAndStayExact) {
  // Every row identical: k-means++ falls back to uniform seeding, every row
  // lands in list 0 (lexicographic assignment), lists 1..7 are empty — the
  // empty-list path in both the scan (no warps) and the shard math.
  Dataset refs;
  refs.count = 40;
  refs.dim = 4;
  refs.values.assign(std::size_t{40} * 4, 0.25f);
  const auto queries = make_uniform_dataset(5, 4, 150);
  simt::Device dev;
  auto ivf = trained_ivf(dev, refs, ivf_options(8, 1));
  const auto& lb = ivf.index().list_begin;
  EXPECT_EQ(lb.front(), 0u);
  EXPECT_EQ(lb[1], 40u);  // list 0 holds everything...
  EXPECT_EQ(lb.back(), 40u);  // ...and the rest are empty
  const BruteForceKnn scalar(refs);
  const auto expected = scalar.search(queries, 6).neighbors;
  EXPECT_EQ(ivf.search_gpu(dev, queries, 6).neighbors, expected);
  ivf.set_nprobe(8);  // probing empty lists adds nothing and breaks nothing
  EXPECT_EQ(ivf.search_gpu(dev, queries, 6).neighbors, expected);
}

TEST(IvfKnnTest, KLargerThanProbedRowsReturnsWhatWasScanned) {
  const Dataset refs = make_gaussian_clusters(200, 4, 16, 0.05f, 160).points;
  const auto queries = make_uniform_dataset(11, 4, 161);
  const std::uint32_t k = 50;  // larger than any single list (~200/16 rows)
  simt::Device dev;
  auto ivf = trained_ivf(dev, refs, ivf_options(16, 1));
  const auto got = ivf.search_gpu(dev, queries, k);
  const auto host = ivf.search_host(queries, k);
  EXPECT_EQ(got.neighbors, host.neighbors);
  for (const auto& nbrs : got.neighbors) {
    EXPECT_GE(nbrs.size(), 1u);
    EXPECT_LT(nbrs.size(), k);  // one list cannot fill k = 50
  }
  // With every list probed, clamping matches the exact path's min(k, n).
  ivf.set_nprobe(16);
  const BruteForceKnn scalar(refs);
  EXPECT_EQ(ivf.search_gpu(dev, queries, 250).neighbors,
            scalar.search(queries, 250).neighbors);
}

TEST(IvfKnnTest, EmptyQueryBatchIsServedForFree) {
  simt::Device dev;
  auto ivf = trained_ivf(dev, make_uniform_dataset(50, 4, 170),
                         ivf_options(8, 2));
  const auto before = dev.cumulative().instructions;
  EXPECT_TRUE(ivf.search_gpu(dev, Dataset{}, 3).neighbors.empty());
  EXPECT_TRUE(ivf.search_host(Dataset{}, 3).neighbors.empty());
  EXPECT_EQ(dev.cumulative().instructions, before);
}

TEST(IvfKnnTest, StaleCentroidGuardAfterSetRefs) {
  // Regression: replacing the reference set must invalidate the trained
  // index — serving stale centroids against new rows is a silent-wrong-answer
  // bug.  Both set_refs entry points bump the generation the guard checks.
  const auto refs_a = make_uniform_dataset(60, 4, 180);
  const auto refs_b = make_uniform_dataset(60, 4, 181);
  const auto queries = make_uniform_dataset(7, 4, 182);
  simt::Device dev;
  auto ivf = trained_ivf(dev, refs_a, ivf_options(8, 8));
  ASSERT_TRUE(ivf.trained());

  // The guard fires even when only the inner engine is touched.
  ivf.batched().set_refs(refs_b);
  EXPECT_FALSE(ivf.trained());
  EXPECT_THROW((void)ivf.search_gpu(dev, queries, 3), PreconditionError);
  EXPECT_THROW((void)ivf.search_host(queries, 3), PreconditionError);

  // Retraining against the new rows restores service, bit-exact.
  ivf.train(dev);
  ASSERT_TRUE(ivf.trained());
  EXPECT_EQ(ivf.search_gpu(dev, queries, 3).neighbors,
            BruteForceKnn(refs_b).search(queries, 3).neighbors);

  // The convenience forwarder guards identically.
  ivf.set_refs(refs_a);
  EXPECT_FALSE(ivf.trained());
  EXPECT_THROW((void)ivf.search_gpu(dev, queries, 3), PreconditionError);
}

TEST(IvfKnnTest, ProfilerRegionsPartitionEveryIvfLaunch) {
  simt::Profiler prof;
  simt::Device dev;
  dev.set_profiler(&prof);
  const Dataset refs = make_gaussian_clusters(400, 6, 8, 0.1f, 190).points;
  auto ivf = trained_ivf(dev, refs, ivf_options(16, 4));
  (void)ivf.search_gpu(dev, make_uniform_dataset(20, 6, 191), 5);

  std::vector<std::string> seen;
  for (const auto& rec : prof.records()) {
    seen.push_back(rec.kernel);
    simt::KernelMetrics sum;
    std::uint64_t unattributed = 0;
    for (const auto& region : rec.regions) {
      sum += region.self;
      if (region.name == simt::kUnattributedRegion) {
        unattributed = region.self.instructions;
      }
    }
    // Region self metrics partition the launch total exactly, and the IVF
    // kernels wrap their whole body in a named region: nothing unattributed.
    EXPECT_EQ(sum.instructions, rec.total.instructions) << rec.kernel;
    EXPECT_EQ(unattributed, 0u) << rec.kernel;
  }
  for (const char* kernel :
       {"ivf_train", "coarse_quantize", "list_scan", "ivf_reduce"}) {
    EXPECT_NE(std::find(seen.begin(), seen.end(), kernel), seen.end())
        << kernel << " launch missing";
  }
}

TEST(IvfKnnTest, FaultDuringListScanFallsBackToHostMirror) {
  const Dataset refs = make_gaussian_clusters(300, 4, 8, 0.1f, 200).points;
  const auto queries = make_uniform_dataset(9, 4, 201);
  auto opts = ivf_options(8, 2);
  opts.batch.fallback_to_host = true;
  simt::Device dev;
  auto ivf = trained_ivf(dev, refs, opts);
  const auto clean = ivf.search_gpu(dev, queries, 5);
  ASSERT_TRUE(clean.faults.empty());

  simt::FaultInjector injector(simt::InjectorConfig{
      simt::InjectKind::kOobIndex, /*seed=*/5, /*period=*/64, /*max_faults=*/1,
      /*kernel_filter=*/"list_scan"});
  dev.set_fault_injector(&injector);
  const auto result = ivf.search_gpu(dev, queries, 5);
  dev.set_fault_injector(nullptr);
  EXPECT_TRUE(result.used_host_fallback);
  ASSERT_EQ(result.faults.size(), 1u);
  EXPECT_EQ(result.faults[0].kind, FaultKind::kOutOfBounds);
  // The host mirror is bit-identical to the fault-free device answer, so the
  // fallback satisfies every recall property the clean path does.
  EXPECT_EQ(result.neighbors, clean.neighbors);
}

TEST(IvfKnnTest, NanPolicySortLastMatchesBatchedWhenExact) {
  auto refs = make_uniform_dataset(80, 4, 210);
  refs.values[7 * 4 + 1] = std::numeric_limits<float>::quiet_NaN();
  const auto queries = make_uniform_dataset(6, 4, 211);
  auto opts = ivf_options(8, 8);
  opts.batch.nan_policy = NanPolicy::kSortLast;
  simt::Device bdev;
  BatchedKnn batched(refs, opts.batch);
  const auto expected = batched.search_gpu(bdev, queries, 10).neighbors;
  simt::Device dev;
  auto ivf = trained_ivf(dev, refs, opts);
  EXPECT_EQ(ivf.search_gpu(dev, queries, 10).neighbors, expected);
  EXPECT_EQ(ivf.search_host(queries, 10).neighbors, expected);
}

TEST(IvfKnnTest, PreconditionViolationsThrow) {
  const auto refs = make_uniform_dataset(30, 4, 220);
  const auto queries = make_uniform_dataset(4, 4, 221);
  simt::Device dev;
  IvfKnn untrained(refs, ivf_options(4, 2));
  EXPECT_THROW((void)untrained.search_gpu(dev, queries, 3), PreconditionError);
  EXPECT_THROW((void)untrained.search_host(queries, 3), PreconditionError);

  auto ivf = trained_ivf(dev, refs, ivf_options(4, 2));
  EXPECT_THROW((void)ivf.search_gpu(dev, queries, 0), PreconditionError);
  EXPECT_THROW((void)ivf.search_gpu(dev, make_uniform_dataset(2, 8, 222), 3),
               PreconditionError);  // dim mismatch
  EXPECT_THROW(ivf.set_nprobe(0), PreconditionError);
  IvfOptions bad;
  bad.params.nlist = 0;
  EXPECT_THROW(IvfKnn(refs, bad), PreconditionError);
}

}  // namespace
}  // namespace gpuksel::knn
