// Tests for the async admission scheduler: exactness through the queue,
// deadline expiry at dequeue, bounded-queue backpressure (blocking submit
// unblocks without deadlock), pause/resume, shutdown semantics, and fault
// propagation as kFailed vs degraded-but-kOk.  The backpressure and shutdown
// tests exercise real cross-thread blocking and are run under TSan in CI.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <optional>
#include <thread>
#include <vector>

#include "knn/dataset.hpp"
#include "serve/scheduler.hpp"
#include "serve/sharded_knn.hpp"
#include "simt/fault_injection.hpp"

namespace gpuksel::serve {
namespace {

using std::chrono::nanoseconds;

ShardedKnnOptions engine_options(std::uint32_t shards) {
  ShardedKnnOptions opts;
  opts.num_shards = shards;
  opts.batch.batch.tile_refs = 16;
  return opts;
}

knn::Dataset queries_batch(std::uint32_t count, std::uint32_t seed) {
  return knn::make_uniform_dataset(count, 4, seed);
}

TEST(SchedulerTest, ServesRequestsExactlyLikeTheEngine) {
  const auto refs = knn::make_uniform_dataset(50, 4, 1);
  ShardedKnn direct(refs, engine_options(3));
  ShardedKnn served(refs, engine_options(3));
  Scheduler sched(served);

  std::vector<std::future<ServeResponse>> futures;
  for (std::uint32_t i = 0; i < 4; ++i) {
    futures.push_back(sched.submit(queries_batch(9, 10 + i), 6));
  }
  for (std::uint32_t i = 0; i < 4; ++i) {
    ServeResponse resp = futures[i].get();
    ASSERT_EQ(resp.status, RequestStatus::kOk) << resp.error;
    EXPECT_EQ(resp.result.neighbors,
              direct.search(queries_batch(9, 10 + i), 6).neighbors);
  }
  sched.shutdown();
  EXPECT_EQ(served.requests(), 4u);
}

TEST(SchedulerTest, ExpiredDeadlineTimesOutWithoutTouchingTheEngine) {
  ShardedKnn engine(knn::make_uniform_dataset(30, 4, 2), engine_options(2));
  Scheduler sched(engine);
  sched.pause();  // deadline is checked when the worker dequeues
  auto stale = sched.submit(queries_batch(5, 3), 4, nanoseconds{0});
  auto fresh = sched.submit(queries_batch(5, 4), 4);
  sched.resume();
  EXPECT_EQ(stale.get().status, RequestStatus::kTimedOut);
  ServeResponse ok = fresh.get();
  ASSERT_EQ(ok.status, RequestStatus::kOk) << ok.error;
  // Only the undeadlined request reached the engine.
  EXPECT_EQ(engine.requests(), 1u);
}

TEST(SchedulerTest, BoundedQueueBackpressureUnblocksWithoutDeadlock) {
  ShardedKnn engine(knn::make_uniform_dataset(30, 4, 5), engine_options(2));
  Scheduler sched(engine, SchedulerOptions{/*queue_capacity=*/1});
  sched.pause();
  auto first = sched.submit(queries_batch(4, 6), 3);
  ASSERT_EQ(sched.pending(), 1u);

  // Queue is full: non-blocking admission refuses...
  EXPECT_FALSE(sched.try_submit(queries_batch(4, 7), 3).has_value());

  // ...and a blocking submit parks until the worker frees a slot.
  std::promise<void> submitted;
  std::future<ServeResponse> second;
  std::thread submitter([&] {
    second = sched.submit(queries_batch(4, 8), 3);
    submitted.set_value();
  });
  EXPECT_EQ(submitted.get_future().wait_for(std::chrono::milliseconds(50)),
            std::future_status::timeout);

  sched.resume();  // worker drains the queue, space_cv_ releases the submitter
  submitter.join();
  EXPECT_EQ(first.get().status, RequestStatus::kOk);
  EXPECT_EQ(second.get().status, RequestStatus::kOk);
  EXPECT_EQ(engine.requests(), 2u);
}

TEST(SchedulerTest, ShutdownDrainsPendingRequests) {
  ShardedKnn engine(knn::make_uniform_dataset(30, 4, 9), engine_options(2));
  auto sched = std::make_unique<Scheduler>(engine);
  sched->pause();
  auto a = sched->submit(queries_batch(4, 10), 3);
  auto b = sched->submit(queries_batch(4, 11), 3);
  sched->shutdown();  // drains even while paused
  EXPECT_EQ(a.get().status, RequestStatus::kOk);
  EXPECT_EQ(b.get().status, RequestStatus::kOk);
  EXPECT_EQ(engine.requests(), 2u);
}

TEST(SchedulerTest, SubmitAfterShutdownFailsImmediately) {
  ShardedKnn engine(knn::make_uniform_dataset(30, 4, 12), engine_options(2));
  Scheduler sched(engine);
  sched.shutdown();
  ServeResponse resp = sched.submit(queries_batch(4, 13), 3).get();
  EXPECT_EQ(resp.status, RequestStatus::kFailed);
  EXPECT_EQ(resp.error, "scheduler is shut down");
  auto attempt = sched.try_submit(queries_batch(4, 14), 3);
  ASSERT_TRUE(attempt.has_value());
  EXPECT_EQ(attempt->get().status, RequestStatus::kFailed);
}

TEST(SchedulerTest, EngineFaultSurfacesAsFailedResponse) {
  ShardedKnnOptions opts = engine_options(2);
  opts.exclude_faulty_shards = false;
  ShardedKnn engine(knn::make_uniform_dataset(30, 4, 15), opts);
  simt::FaultInjector injector(simt::InjectorConfig{
      simt::InjectKind::kOobIndex, /*seed=*/5, /*period=*/32, /*max_faults=*/0,
      /*kernel_filter=*/"batch_tile_score"});
  engine.shard(0).device().set_fault_injector(&injector);
  Scheduler sched(engine);
  ServeResponse resp = sched.submit(queries_batch(4, 16), 3).get();
  EXPECT_EQ(resp.status, RequestStatus::kFailed);
  EXPECT_FALSE(resp.error.empty());
}

TEST(SchedulerTest, ExcludedShardStillAnswersOkButDegraded) {
  ShardedKnn engine(knn::make_uniform_dataset(30, 4, 17), engine_options(2));
  simt::FaultInjector injector(simt::InjectorConfig{
      simt::InjectKind::kOobIndex, /*seed=*/5, /*period=*/32, /*max_faults=*/0,
      /*kernel_filter=*/"batch_tile_score"});
  engine.shard(0).device().set_fault_injector(&injector);
  Scheduler sched(engine);
  ServeResponse resp = sched.submit(queries_batch(4, 18), 3).get();
  ASSERT_EQ(resp.status, RequestStatus::kOk) << resp.error;
  EXPECT_TRUE(resp.result.degraded);
  EXPECT_TRUE(resp.result.shards[0].excluded);
}

TEST(SchedulerTest, DestructorShutsDownCleanly) {
  ShardedKnn engine(knn::make_uniform_dataset(30, 4, 19), engine_options(2));
  std::future<ServeResponse> fut;
  {
    Scheduler sched(engine);
    fut = sched.submit(queries_batch(4, 20), 3);
  }  // ~Scheduler drains and joins
  EXPECT_EQ(fut.get().status, RequestStatus::kOk);
}

}  // namespace
}  // namespace gpuksel::serve
