// Tests for the async admission scheduler: exactness through the queue,
// deadline expiry at dequeue, bounded-queue backpressure (blocking submit
// unblocks without deadlock), pause/resume, shutdown semantics, and fault
// propagation as kFailed vs degraded-but-kOk.  The backpressure and shutdown
// tests exercise real cross-thread blocking and are run under TSan in CI.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <optional>
#include <thread>
#include <vector>

#include "knn/dataset.hpp"
#include "serve/scheduler.hpp"
#include "serve/sharded_knn.hpp"
#include "simt/fault_injection.hpp"

namespace gpuksel::serve {
namespace {

using std::chrono::nanoseconds;

ShardedKnnOptions engine_options(std::uint32_t shards) {
  ShardedKnnOptions opts;
  opts.num_shards = shards;
  opts.batch.batch.tile_refs = 16;
  return opts;
}

knn::Dataset queries_batch(std::uint32_t count, std::uint32_t seed) {
  return knn::make_uniform_dataset(count, 4, seed);
}

TEST(SchedulerTest, ServesRequestsExactlyLikeTheEngine) {
  const auto refs = knn::make_uniform_dataset(50, 4, 1);
  ShardedKnn direct(refs, engine_options(3));
  ShardedKnn served(refs, engine_options(3));
  Scheduler sched(served);

  std::vector<std::future<ServeResponse>> futures;
  for (std::uint32_t i = 0; i < 4; ++i) {
    futures.push_back(sched.submit(queries_batch(9, 10 + i), 6));
  }
  for (std::uint32_t i = 0; i < 4; ++i) {
    ServeResponse resp = futures[i].get();
    ASSERT_EQ(resp.status, RequestStatus::kOk) << resp.error;
    EXPECT_EQ(resp.result.neighbors,
              direct.search(queries_batch(9, 10 + i), 6).neighbors);
  }
  sched.shutdown();
  EXPECT_EQ(served.requests(), 4u);
}

TEST(SchedulerTest, ExpiredDeadlineTimesOutWithoutTouchingTheEngine) {
  ShardedKnn engine(knn::make_uniform_dataset(30, 4, 2), engine_options(2));
  Scheduler sched(engine);
  sched.pause();  // deadline is checked when the worker dequeues
  auto stale = sched.submit(queries_batch(5, 3), 4, nanoseconds{0});
  auto fresh = sched.submit(queries_batch(5, 4), 4);
  sched.resume();
  EXPECT_EQ(stale.get().status, RequestStatus::kTimedOut);
  ServeResponse ok = fresh.get();
  ASSERT_EQ(ok.status, RequestStatus::kOk) << ok.error;
  // Only the undeadlined request reached the engine.
  EXPECT_EQ(engine.requests(), 1u);
}

TEST(SchedulerTest, BoundedQueueBackpressureUnblocksWithoutDeadlock) {
  ShardedKnn engine(knn::make_uniform_dataset(30, 4, 5), engine_options(2));
  Scheduler sched(engine, SchedulerOptions{/*queue_capacity=*/1});
  sched.pause();
  auto first = sched.submit(queries_batch(4, 6), 3);
  ASSERT_EQ(sched.pending(), 1u);

  // Queue is full: non-blocking admission refuses...
  EXPECT_FALSE(sched.try_submit(queries_batch(4, 7), 3).has_value());

  // ...and a blocking submit parks until the worker frees a slot.
  std::promise<void> submitted;
  std::future<ServeResponse> second;
  std::thread submitter([&] {
    second = sched.submit(queries_batch(4, 8), 3);
    submitted.set_value();
  });
  EXPECT_EQ(submitted.get_future().wait_for(std::chrono::milliseconds(50)),
            std::future_status::timeout);

  sched.resume();  // worker drains the queue, space_cv_ releases the submitter
  submitter.join();
  EXPECT_EQ(first.get().status, RequestStatus::kOk);
  EXPECT_EQ(second.get().status, RequestStatus::kOk);
  EXPECT_EQ(engine.requests(), 2u);
}

TEST(SchedulerTest, ShutdownDrainsPendingRequests) {
  ShardedKnn engine(knn::make_uniform_dataset(30, 4, 9), engine_options(2));
  auto sched = std::make_unique<Scheduler>(engine);
  sched->pause();
  auto a = sched->submit(queries_batch(4, 10), 3);
  auto b = sched->submit(queries_batch(4, 11), 3);
  sched->shutdown();  // drains even while paused
  EXPECT_EQ(a.get().status, RequestStatus::kOk);
  EXPECT_EQ(b.get().status, RequestStatus::kOk);
  EXPECT_EQ(engine.requests(), 2u);
}

TEST(SchedulerTest, SubmitAfterShutdownFailsImmediately) {
  ShardedKnn engine(knn::make_uniform_dataset(30, 4, 12), engine_options(2));
  Scheduler sched(engine);
  sched.shutdown();
  ServeResponse resp = sched.submit(queries_batch(4, 13), 3).get();
  EXPECT_EQ(resp.status, RequestStatus::kFailed);
  EXPECT_EQ(resp.error, "scheduler is shut down");
  auto attempt = sched.try_submit(queries_batch(4, 14), 3);
  ASSERT_TRUE(attempt.has_value());
  EXPECT_EQ(attempt->get().status, RequestStatus::kFailed);
}

TEST(SchedulerTest, EngineFaultSurfacesAsFailedResponse) {
  ShardedKnnOptions opts = engine_options(2);
  opts.exclude_faulty_shards = false;
  ShardedKnn engine(knn::make_uniform_dataset(30, 4, 15), opts);
  simt::FaultInjector injector(simt::InjectorConfig{
      simt::InjectKind::kOobIndex, /*seed=*/5, /*period=*/32, /*max_faults=*/0,
      /*kernel_filter=*/"batch_tile_score"});
  engine.shard(0).device().set_fault_injector(&injector);
  Scheduler sched(engine);
  ServeResponse resp = sched.submit(queries_batch(4, 16), 3).get();
  EXPECT_EQ(resp.status, RequestStatus::kFailed);
  EXPECT_FALSE(resp.error.empty());
}

TEST(SchedulerTest, ExcludedShardStillAnswersOkButDegraded) {
  ShardedKnn engine(knn::make_uniform_dataset(30, 4, 17), engine_options(2));
  simt::FaultInjector injector(simt::InjectorConfig{
      simt::InjectKind::kOobIndex, /*seed=*/5, /*period=*/32, /*max_faults=*/0,
      /*kernel_filter=*/"batch_tile_score"});
  engine.shard(0).device().set_fault_injector(&injector);
  Scheduler sched(engine);
  ServeResponse resp = sched.submit(queries_batch(4, 18), 3).get();
  ASSERT_EQ(resp.status, RequestStatus::kOk) << resp.error;
  EXPECT_TRUE(resp.result.degraded);
  EXPECT_TRUE(resp.result.shards[0].excluded);
}

TEST(SchedulerTest, DeadlineExpiringDuringServiceReportsTimedOutWithStats) {
  // The engine is sized so one request takes far longer than the timeout,
  // while the timeout comfortably covers the worker's dequeue latency: the
  // deadline check at dequeue passes, the re-check after the engine returns
  // fires.  Retried with growing timeouts to ride out scheduler jitter on a
  // loaded machine.
  ShardedKnnOptions opts = engine_options(2);
  opts.batch.batch.tile_refs = 32;
  ShardedKnn engine(knn::make_uniform_dataset(2048, 16, 21), opts);
  Scheduler sched(engine);
  bool observed = false;
  for (std::uint32_t attempt = 0; attempt < 5 && !observed; ++attempt) {
    const auto timeout = std::chrono::milliseconds(20 * (attempt + 1));
    ServeResponse resp =
        sched.submit(knn::make_uniform_dataset(96, 16, 22 + attempt), 16,
                     timeout)
            .get();
    if (resp.status == RequestStatus::kTimedOut && resp.served) {
      observed = true;
      // The partial result and its stats are attached despite the timeout.
      EXPECT_EQ(resp.result.neighbors.size(), 96u);
      EXPECT_EQ(resp.result.shards.size(), 2u);
      EXPECT_GT(resp.result.modeled_seconds, 0.0);
    }
  }
  EXPECT_TRUE(observed) << "service never outlived the deadline";
  EXPECT_GE(sched.counters().timed_out_after_serve, 1u);
}

TEST(SchedulerTest, RejectNewestShedsImmediatelyWhenFull) {
  ShardedKnn engine(knn::make_uniform_dataset(30, 4, 23), engine_options(2));
  SchedulerOptions opts;
  opts.queue_capacity = 1;
  opts.overload = OverloadPolicy::kRejectNewest;
  Scheduler sched(engine, opts);
  sched.pause();
  auto admitted = sched.submit(queries_batch(4, 24), 3);
  ServeResponse shed = sched.submit(queries_batch(4, 25), 3).get();
  EXPECT_EQ(shed.status, RequestStatus::kShed);
  EXPECT_FALSE(shed.error.empty());
  EXPECT_FALSE(sched.try_submit(queries_batch(4, 26), 3).has_value());
  sched.resume();
  EXPECT_EQ(admitted.get().status, RequestStatus::kOk);
  const SchedulerCounters c = sched.counters();
  EXPECT_EQ(c.submitted, 3u);
  EXPECT_EQ(c.admitted, 1u);
  EXPECT_EQ(c.rejected, 2u);
  EXPECT_EQ(c.submitted, c.admitted + c.rejected);
}

TEST(SchedulerTest, ShedOldestExpiredMakesRoomForFreshWork) {
  ShardedKnn engine(knn::make_uniform_dataset(30, 4, 27), engine_options(2));
  SchedulerOptions opts;
  opts.queue_capacity = 2;
  opts.overload = OverloadPolicy::kShedOldestExpired;
  Scheduler sched(engine, opts);
  sched.pause();
  auto stale = sched.submit(queries_batch(4, 28), 3, nanoseconds{0});
  auto fresh = sched.submit(queries_batch(4, 29), 3);
  // Queue full; the already-expired head is swept (kTimedOut) to admit this.
  auto newest = sched.submit(queries_batch(4, 30), 3);
  EXPECT_EQ(stale.get().status, RequestStatus::kTimedOut);
  sched.resume();
  EXPECT_EQ(fresh.get().status, RequestStatus::kOk);
  EXPECT_EQ(newest.get().status, RequestStatus::kOk);
  const SchedulerCounters c = sched.counters();
  EXPECT_EQ(c.shed_expired, 1u);
  EXPECT_EQ(c.admitted, 3u);
  EXPECT_EQ(c.served_ok, 2u);
  // Nothing expired to sweep: the newest is shed instead.
  sched.pause();
  auto a = sched.submit(queries_batch(4, 31), 3);
  auto b = sched.submit(queries_batch(4, 32), 3);
  EXPECT_EQ(sched.submit(queries_batch(4, 33), 3).get().status,
            RequestStatus::kShed);
  sched.resume();
  EXPECT_EQ(a.get().status, RequestStatus::kOk);
  EXPECT_EQ(b.get().status, RequestStatus::kOk);
}

TEST(SchedulerTest, PauseResumeRacesConcurrentSubmitters) {
  // 8 threads hammer submit/try_submit while the main thread toggles
  // pause/resume: every obtained future must resolve, nothing may be lost
  // or double-completed, and the counters must partition.  Run under TSan
  // in CI.
  ShardedKnn engine(knn::make_uniform_dataset(30, 4, 34), engine_options(2));
  SchedulerOptions opts;
  opts.queue_capacity = 4;
  opts.overload = OverloadPolicy::kRejectNewest;  // submitters never block
  Scheduler sched(engine, opts);

  constexpr std::uint32_t kThreads = 8;
  constexpr std::uint32_t kPerThread = 6;
  std::vector<std::vector<std::future<ServeResponse>>> futures(kThreads);
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (std::uint32_t i = 0; i < kPerThread; ++i) {
        const std::uint32_t seed = 100 + t * kPerThread + i;
        if (t % 2 == 0) {
          futures[t].push_back(sched.submit(queries_batch(3, seed), 2));
        } else if (auto fut = sched.try_submit(queries_batch(3, seed), 2)) {
          futures[t].push_back(std::move(*fut));
        }
      }
    });
  }
  for (std::uint32_t toggle = 0; toggle < 20; ++toggle) {
    sched.pause();
    std::this_thread::yield();
    sched.resume();
  }
  for (std::thread& s : submitters) s.join();
  sched.resume();

  std::uint64_t resolved_ok = 0;
  std::uint64_t obtained = 0;
  for (auto& per_thread : futures) {
    for (auto& fut : per_thread) {
      ++obtained;
      ServeResponse resp = fut.get();  // must resolve: nothing lost
      if (resp.status == RequestStatus::kOk) ++resolved_ok;
    }
  }
  sched.shutdown();
  const SchedulerCounters c = sched.counters();
  EXPECT_EQ(c.submitted, std::uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(c.submitted, c.admitted + c.rejected);
  // kShed futures resolve without reaching the engine; every admitted
  // request was served exactly once (no deadlines, no failures here).
  EXPECT_EQ(c.served_ok, resolved_ok);
  EXPECT_EQ(c.admitted, c.served_ok);
  EXPECT_EQ(engine.requests(), c.served_ok);
  EXPECT_LE(c.served_ok, obtained);
  EXPECT_EQ(c.pending, 0u);
}

TEST(SchedulerTest, ShutdownWhileProbeRequestsAreInFlight) {
  // Drive a shard into quarantine, then shut down while probe-carrying
  // requests are mid-queue/mid-serve: the drain must complete every future
  // exactly once with no deadlock (TSan-checked in CI).
  ShardedKnnOptions opts = engine_options(2);
  opts.health.window = 2;
  opts.health.suspect_faults = 1;
  opts.health.quarantine_faults = 1;
  opts.health.probe_interval = 1;  // every quarantined request probes
  ShardedKnn engine(knn::make_uniform_dataset(30, 4, 36), opts);
  simt::FaultInjector injector(simt::InjectorConfig{
      simt::InjectKind::kOobIndex, /*seed=*/5, /*period=*/8, /*max_faults=*/0,
      /*kernel_filter=*/"batch_tile_score"});
  engine.shard(0).device().set_fault_injector(&injector);
  auto sched = std::make_unique<Scheduler>(engine);

  // Quarantine shard 0 (both attempts fault, exclusion degrades it).
  ServeResponse first = sched->submit(queries_batch(4, 37), 3).get();
  ASSERT_EQ(first.status, RequestStatus::kOk) << first.error;
  ASSERT_EQ(engine.shard(0).health().state(), HealthState::kQuarantined);

  // Every further request carries a probe; shut down while they're in
  // flight.
  std::vector<std::future<ServeResponse>> probes;
  for (std::uint32_t r = 0; r < 4; ++r) {
    probes.push_back(sched->submit(queries_batch(4, 40 + r), 3));
  }
  sched->shutdown();  // drains the queue, probe work included
  for (auto& fut : probes) {
    ServeResponse resp = fut.get();
    EXPECT_EQ(resp.status, RequestStatus::kOk) << resp.error;
    EXPECT_TRUE(resp.result.degraded);
  }
  EXPECT_GE(engine.shard(0).health().counters().probes_served, 1u);
}

TEST(SchedulerTest, DestructorShutsDownCleanly) {
  ShardedKnn engine(knn::make_uniform_dataset(30, 4, 19), engine_options(2));
  std::future<ServeResponse> fut;
  {
    Scheduler sched(engine);
    fut = sched.submit(queries_batch(4, 20), 3);
  }  // ~Scheduler drains and joins
  EXPECT_EQ(fut.get().status, RequestStatus::kOk);
}

}  // namespace
}  // namespace gpuksel::serve
