#!/usr/bin/env bash
# Runs the Table I bench serially and with the parallel warp executor and
# emits BENCH_sim_throughput.json: wall seconds, simulated warps/second and
# the speedup, plus the modeled GPU seconds of the paper's best variant
# (which are thread-count-invariant — the executor changes how fast the
# simulator runs, never what it computes).
#
# Both runs pass --profile=, so the structured per-kernel profile replaces
# stdout scraping: the simulated warp count is summed from the profile's
# KernelRecords, and determinism is asserted by byte-comparing the two
# profiles (written without host info, the only fields allowed to differ).
# A "parallelism_valid" field flags results captured where the requested
# thread count exceeds the host's cores (speedup is meaningless there).
#
# The batched serving bench (fig10) gets the same treatment and emits
# BENCH_batched_throughput.json: queries/sec per batch size, the b=1 -> full
# speedup, and the kernel-launch count — with the serial/parallel determinism
# checks applied to its CSV (fully modeled, so byte-identical) and profile.
#
# The sharded serving bench (fig11) emits BENCH_sharded_scaling.json:
# queries/sec and speedup per shard count, the merge's latency share, and the
# gpuksel.shards.v1 report of the widest run — under the same determinism
# gates.
#
# Every emitter refuses (non-zero exit) a profile whose kernel list is
# missing or empty: a benchmark that silently stopped profiling would
# otherwise publish kernel_launches = 0 as if it were a measurement.
#
# The availability bench (fig12) emits BENCH_availability.json: availability,
# degraded fraction and queries/sec per injected fault rate, with and without
# the shard health machine, plus the gpuksel.shards.v1 health report of the
# heaviest quarantine run.  Its emitter additionally gates on the health
# counters partitioning exactly and on the acceptance shape (availability
# >= 99% with quarantine; qps collapse without it at the persistent rate).
#
# The IVF recall/qps bench (fig13) emits BENCH_ivf_recall.json: the bench's
# own gpuksel.ivf_recall.v1 payload (recall, queries/sec and speedup per
# nprobe plus the recorded operating point), re-emitted only after the same
# serial/parallel determinism gates and the acceptance gates — recall
# monotone in nprobe, exact at nprobe == nlist, and the operating point at
# recall@k >= 0.95 with >= 5x the full-scan throughput on >= 1e5 rows.
#
# The streaming-upsert bench (fig14) emits BENCH_mutable_upserts.json: the
# bench's own gpuksel.mutable_upserts.v1 payload (per-phase qps, H2D bytes and
# answer digests for a mixed upsert/remove/compact workload at two base
# sizes), re-emitted only after a serial/parallel byte-compare of the whole
# payload and the acceptance gates — the delta transfer identity, the buffer
# pool's exact accounting partition, and per-upsert delta bytes equal across
# an 8x base-size spread (upload cost scales with the delta, not the base).
#
# Usage: scripts/bench_to_json.sh [build_dir] [out_json] [out_batched_json] \
#                                 [out_sharded_json] [out_availability_json] \
#                                 [out_ivf_json] [out_mutable_json]
#   WARPS=n    sampled warps per configuration (default 8)
#   IVF_WARPS=n  fig13 query warps (default 8: the recorded operating point
#              needs enough queries to fill the pruned scan's task warps)
#   THREADS=n  parallel thread count (default: nproc)
#   SCALAR_BUILD_DIR=dir  optional GPUKSEL_SIMD=OFF build tree: adds a
#              scalar-*build* leg to the lane-engine section.  The runtime
#              GPUKSEL_SIMD=0 leg still executes auto-vectorizable loops
#              compiled with AVX flags; the OFF build is the honest scalar
#              baseline (it is also what CI's throughput smoke compares).
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_JSON="${2:-BENCH_sim_throughput.json}"
OUT_BATCHED_JSON="${3:-BENCH_batched_throughput.json}"
OUT_SHARDED_JSON="${4:-BENCH_sharded_scaling.json}"
OUT_AVAIL_JSON="${5:-BENCH_availability.json}"
OUT_IVF_JSON="${6:-BENCH_ivf_recall.json}"
OUT_MUTABLE_JSON="${7:-BENCH_mutable_upserts.json}"
WARPS="${WARPS:-8}"
IVF_WARPS="${IVF_WARPS:-8}"
THREADS="${THREADS:-$(nproc)}"
BENCH="${BUILD_DIR}/bench/table1_execution_time"
BENCH_BATCHED="${BUILD_DIR}/bench/fig10_batched_throughput"
BENCH_SHARDED="${BUILD_DIR}/bench/fig11_sharded_scaling"
BENCH_AVAIL="${BUILD_DIR}/bench/fig12_availability"
BENCH_IVF="${BUILD_DIR}/bench/fig13_recall_qps"
BENCH_MUTABLE="${BUILD_DIR}/bench/fig14_streaming_upserts"

if [[ ! -x "${BENCH}" || ! -x "${BENCH_BATCHED}" || ! -x "${BENCH_SHARDED}" \
      || ! -x "${BENCH_AVAIL}" || ! -x "${BENCH_IVF}" \
      || ! -x "${BENCH_MUTABLE}" ]]; then
  echo "error: ${BENCH}, ${BENCH_BATCHED}, ${BENCH_SHARDED}, ${BENCH_AVAIL}, ${BENCH_IVF} or ${BENCH_MUTABLE} not found — build the repo first" >&2
  exit 1
fi

TMPDIR_RUN=$(mktemp -d)
trap 'rm -rf "${TMPDIR_RUN}"' EXIT

run_once() {
  local bench="$1" threads="$2" csv="$3" profile="$4" t0 t1
  shift 4
  t0=$(date +%s%N)
  "${bench}" --warps="${WARPS}" --threads="${threads}" --csv="${csv}" \
    --profile="${profile}" "$@" >/dev/null
  t1=$(date +%s%N)
  awk "BEGIN{printf \"%.6f\", (${t1} - ${t0}) / 1e9}"
}

CSV_SERIAL="${TMPDIR_RUN}/serial.csv"
CSV_PARALLEL="${TMPDIR_RUN}/parallel.csv"
CSV_SCALAR="${TMPDIR_RUN}/scalar.csv"
PROFILE_SERIAL="${TMPDIR_RUN}/serial.json"
PROFILE_PARALLEL="${TMPDIR_RUN}/parallel.json"
PROFILE_SCALAR="${TMPDIR_RUN}/scalar.json"

SERIAL_S=$(run_once "${BENCH}" 1 "${CSV_SERIAL}" "${PROFILE_SERIAL}")
PARALLEL_S=$(run_once "${BENCH}" "${THREADS}" "${CSV_PARALLEL}" "${PROFILE_PARALLEL}")
# Scalar lane-engine leg: same bench, vector backend disabled at run time.
# Everything modeled must match the SIMD runs byte for byte; only wall time
# may differ, and that difference is the lane-engine speedup we record.
SCALAR_S=$(GPUKSEL_SIMD=0 run_once "${BENCH}" 1 "${CSV_SCALAR}" "${PROFILE_SCALAR}")

# Optional scalar-build leg: the same bench from a GPUKSEL_SIMD=OFF tree,
# compiled without any AVX flags, held to the same bit-identity gates.
SCALAR_BUILD_S=""
if [[ -n "${SCALAR_BUILD_DIR:-}" ]]; then
  BENCH_OFF="${SCALAR_BUILD_DIR}/bench/table1_execution_time"
  if [[ ! -x "${BENCH_OFF}" ]]; then
    echo "error: SCALAR_BUILD_DIR set but ${BENCH_OFF} not found" >&2
    exit 1
  fi
  CSV_OFF="${TMPDIR_RUN}/scalar_build.csv"
  PROFILE_OFF="${TMPDIR_RUN}/scalar_build.json"
  SCALAR_BUILD_S=$(run_once "${BENCH_OFF}" 1 "${CSV_OFF}" "${PROFILE_OFF}")
  if ! cmp -s <(grep -v '^CPU ' "${CSV_SERIAL}") \
              <(grep -v '^CPU ' "${CSV_OFF}"); then
    echo "error: SIMD and scalar-build runs disagree — bit-identity violated" >&2
    exit 1
  fi
  if ! cmp -s <(grep -vE '"(wall_seconds|worker_threads)":' "${PROFILE_SERIAL}") \
              <(grep -vE '"(wall_seconds|worker_threads)":' "${PROFILE_OFF}"); then
    echo "error: SIMD and scalar-build profiles disagree — bit-identity violated" >&2
    exit 1
  fi
fi

# Prior recording (if one exists): carrying the previously committed serial
# warps/second forward documents how much this regeneration moved the number.
PRIOR_WPS=""
if [[ -f "${OUT_JSON}" ]]; then
  PRIOR_WPS=$(python3 -c '
import json, sys
try:
    with open(sys.argv[1]) as f:
        print(json.load(f)["serial"]["warps_per_second"])
except Exception:
    pass' "${OUT_JSON}")
fi

# The CPU rows are measured host wall-clock (non-deterministic); every
# simulated row is modeled from metrics and must be bit-identical.
if ! cmp -s <(grep -v '^CPU ' "${CSV_SERIAL}") \
            <(grep -v '^CPU ' "${CSV_PARALLEL}"); then
  echo "error: serial and parallel runs disagree — determinism violated" >&2
  exit 1
fi

# Same contract on the full profiles: everything except the two host fields
# (wall_seconds, worker_threads) must be byte-identical.
if ! cmp -s <(grep -vE '"(wall_seconds|worker_threads)":' "${PROFILE_SERIAL}") \
            <(grep -vE '"(wall_seconds|worker_threads)":' "${PROFILE_PARALLEL}"); then
  echo "error: serial and parallel profiles disagree — determinism violated" >&2
  exit 1
fi

# SIMD-vs-scalar lane engine: identical results and metrics are the contract
# that makes the recorded speedup meaningful at all.
LANE_OUTPUTS_IDENTICAL=true
if ! cmp -s <(grep -v '^CPU ' "${CSV_SERIAL}") \
            <(grep -v '^CPU ' "${CSV_SCALAR}"); then
  echo "error: SIMD and scalar lane-engine runs disagree — bit-identity violated" >&2
  exit 1
fi
if ! cmp -s <(grep -vE '"(wall_seconds|worker_threads)":' "${PROFILE_SERIAL}") \
            <(grep -vE '"(wall_seconds|worker_threads)":' "${PROFILE_SCALAR}"); then
  echo "error: SIMD and scalar lane-engine profiles disagree — bit-identity violated" >&2
  exit 1
fi

# Modeled seconds of the paper's best GPU variant, summed over all columns.
MODELED_S=$(awk -F, '/^Merge Queue aligned\+buf\+hp/ {
  s = 0
  for (i = 2; i <= NF; ++i) if ($i + 0 == $i) s += $i
  printf "%.4f", s
}' "${CSV_SERIAL}")

python3 - "$OUT_JSON" "${PROFILE_SERIAL}" <<EOF
import json, sys
serial_s, parallel_s, scalar_s = ${SERIAL_S}, ${PARALLEL_S}, ${SCALAR_S}
scalar_build_s = float("${SCALAR_BUILD_S}") if "${SCALAR_BUILD_S}" else None
prior_wps = float("${PRIOR_WPS}") if "${PRIOR_WPS}" else None
threads, host_cores = ${THREADS}, $(nproc)
lane_outputs_identical = "${LANE_OUTPUTS_IDENTICAL}" == "true"
with open(sys.argv[2]) as f:
    profile = json.load(f)
kernels = profile.get("kernels")
if not kernels:
    sys.exit(f"error: profile {sys.argv[2]} has a missing or empty kernel "
             "list — refusing to emit kernel_launches")
total_warps = sum(k["num_warps"] for k in kernels)
# A "parallel" leg that ran one thread measured nothing: validity requires
# both that every requested thread had its own core and that more than one
# thread actually ran.
parallelism_valid = threads <= host_cores and threads > 1
if host_cores == 1 and parallelism_valid:
    sys.exit("error: host has 1 core but the emitter claims "
             "parallelism_valid — refusing to publish a degenerate speedup")
out = {
    "bench": "table1_execution_time",
    "warps_flag": ${WARPS},
    "total_simulated_warps": total_warps,
    "kernel_launches": len(kernels),
    "host_cores": host_cores,
    # Speedup only means something when every requested thread can run on
    # its own core; oversubscribed runs just measure scheduler churn, and a
    # single-thread "parallel" leg measures nothing at all.
    "parallelism_valid": parallelism_valid,
    "serial": {
        "threads": 1,
        "wall_seconds": serial_s,
        "warps_per_second": round(total_warps / serial_s, 1),
    },
    "parallel": {
        "threads": threads,
        "wall_seconds": parallel_s,
        "warps_per_second": round(total_warps / parallel_s, 1),
    },
    "speedup": round(serial_s / parallel_s, 3),
    "lane_engine": {
        # Scalar reference engine vs the SIMD lane engine, single thread.
        # The speedup is only published when every modeled output matched
        # byte for byte (the script aborts on any mismatch upstream).
        "outputs_identical": lane_outputs_identical,
        "scalar": {
            "wall_seconds": scalar_s,
            "warps_per_second": round(total_warps / scalar_s, 1),
        },
        "simd": {
            "wall_seconds": serial_s,
            "warps_per_second": round(total_warps / serial_s, 1),
        },
    },
    "modeled_gpu_seconds_best_variant": ${MODELED_S:-0},
    "outputs_identical": True,
}
if lane_outputs_identical:
    out["lane_engine"]["speedup"] = round(scalar_s / serial_s, 3)
if scalar_build_s is not None:
    # GPUKSEL_SIMD=OFF build: compiled without AVX flags, so unlike the
    # runtime-disabled leg above its hot loops are not auto-vectorized.
    # This is the comparison CI's throughput smoke asserts (>= 5x).
    out["lane_engine"]["scalar_build"] = {
        "wall_seconds": scalar_build_s,
        "warps_per_second": round(total_warps / scalar_build_s, 1),
    }
    out["lane_engine"]["speedup_vs_scalar_build"] = round(
        scalar_build_s / serial_s, 3)
if prior_wps:
    # Serial warps/second of the JSON this run replaced — the improvement
    # the lane engine landed relative to the last committed recording.
    out["serial"]["prior_recorded_warps_per_second"] = prior_wps
    out["serial"]["improvement_vs_prior_recording"] = round(
        total_warps / serial_s / prior_wps, 2)
if not out["parallelism_valid"]:
    out["note"] = (f"captured with {threads} thread(s) on {host_cores} "
                   "host core(s): the serial/parallel speedup is not "
                   "meaningful")
with open(sys.argv[1], "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")
print(json.dumps(out, indent=2))
EOF

# --- serving availability under faults (fig12) -------------------------------

AVAIL_CSV_SERIAL="${TMPDIR_RUN}/avail_serial.csv"
AVAIL_CSV_PARALLEL="${TMPDIR_RUN}/avail_parallel.csv"
AVAIL_PROFILE_SERIAL="${TMPDIR_RUN}/avail_serial.json"
AVAIL_PROFILE_PARALLEL="${TMPDIR_RUN}/avail_parallel.json"
AVAIL_HEALTH_SERIAL="${TMPDIR_RUN}/health_serial.json"
AVAIL_HEALTH_PARALLEL="${TMPDIR_RUN}/health_parallel.json"

AVAIL_SERIAL_S=$(run_once "${BENCH_AVAIL}" 1 \
  "${AVAIL_CSV_SERIAL}" "${AVAIL_PROFILE_SERIAL}" \
  --health-json="${AVAIL_HEALTH_SERIAL}")
AVAIL_PARALLEL_S=$(run_once "${BENCH_AVAIL}" "${THREADS}" \
  "${AVAIL_CSV_PARALLEL}" "${AVAIL_PROFILE_PARALLEL}" \
  --health-json="${AVAIL_HEALTH_PARALLEL}")

# Every fig12 value — latencies, availability, the health report — is modeled
# and the injector runs with an unlimited (parallel-safe) budget, so serial
# and parallel runs must agree byte-for-byte.
if ! cmp -s "${AVAIL_CSV_SERIAL}" "${AVAIL_CSV_PARALLEL}"; then
  echo "error: availability serial and parallel runs disagree — determinism violated" >&2
  exit 1
fi
if ! cmp -s <(grep -vE '"(wall_seconds|worker_threads)":' "${AVAIL_PROFILE_SERIAL}") \
            <(grep -vE '"(wall_seconds|worker_threads)":' "${AVAIL_PROFILE_PARALLEL}"); then
  echo "error: availability serial and parallel profiles disagree — determinism violated" >&2
  exit 1
fi
if ! cmp -s "${AVAIL_HEALTH_SERIAL}" "${AVAIL_HEALTH_PARALLEL}"; then
  echo "error: availability serial and parallel health reports disagree — determinism violated" >&2
  exit 1
fi

python3 - "${OUT_AVAIL_JSON}" "${AVAIL_CSV_SERIAL}" "${AVAIL_HEALTH_SERIAL}" <<EOF
import csv, json, sys
with open(sys.argv[2]) as f:
    rows = list(csv.DictReader(f))
with open(sys.argv[3]) as f:
    report = json.load(f)

# The health counters must partition exactly: every served request is
# attributed to exactly one state, every probe has exactly one outcome, and
# the entry/exit balance matches the final state.
for shard in report["shards"]:
    h = shard["health"]
    sid = shard["shard"]
    served = (h["healthy_served"] + h["suspect_served"]
              + h["quarantined_served"] + h["probes_served"])
    if served != h["requests"]:
        sys.exit(f"error: shard {sid} health: served-by-state {served} != "
                 f"requests {h['requests']}")
    if h["probe_successes"] + h["probe_failures"] != h["probes_served"]:
        sys.exit(f"error: shard {sid} health: probe outcomes do not "
                 "partition probes_served")
    open_episode = 1 if h["state"] in ("quarantined", "probing") else 0
    if h["quarantine_entries"] - h["quarantine_exits"] != open_episode:
        sys.exit(f"error: shard {sid} health: entries - exits != "
                 f"{open_episode} for state {h['state']}")

by_mode = {}
for r in rows:
    by_mode.setdefault(r["mode"], []).append(r)
baseline_qps = float(by_mode["none"][0]["queries_per_second"])
heavy_period = min(int(r["fault_period"]) for r in rows if r["mode"] != "none")

# Acceptance shape: the health machine holds availability >= 99% at every
# injected rate; without it the persistent rate collapses throughput.
for r in by_mode.get("quarantine", []):
    if float(r["availability"]) < 0.99:
        sys.exit(f"error: quarantine availability "
                 f"{r['availability']} < 0.99 at period {r['fault_period']}")
for r in by_mode.get("no-quarantine", []):
    if int(r["fault_period"]) == heavy_period:
        if float(r["queries_per_second"]) > 0.5 * baseline_qps:
            sys.exit("error: no-quarantine qps did not collapse at the "
                     f"persistent rate (period {heavy_period})")

out = {
    "bench": "fig12_availability",
    "slo_note": "availability = fraction of requests within 3x the worst "
                "fault-free modeled latency",
    "by_mode": [
        {
            "mode": r["mode"],
            "fault_period": int(r["fault_period"]),
            "request_fault_rate": round(float(r["request_fault_rate"]), 4),
            "availability": round(float(r["availability"]), 4),
            "degraded_fraction": round(float(r["degraded_fraction"]), 4),
            "queries_per_second": round(float(r["queries_per_second"]), 1),
            "quarantine_entries": int(r["quarantine_entries"]),
            "quarantine_exits": int(r["quarantine_exits"]),
            "probe_successes": int(r["probe_successes"]),
            "probe_failures": int(r["probe_failures"]),
        }
        for r in rows
    ],
    "qps_collapse_no_quarantine": round(
        baseline_qps /
        float(by_mode["no-quarantine"][-1]["queries_per_second"]), 3),
    "health_report": report,
    "outputs_identical": True,
}
with open(sys.argv[1], "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")
print(json.dumps(out, indent=2))
EOF

# --- batched serving throughput (fig10) -------------------------------------

BATCH_CSV_SERIAL="${TMPDIR_RUN}/batched_serial.csv"
BATCH_CSV_PARALLEL="${TMPDIR_RUN}/batched_parallel.csv"
BATCH_PROFILE_SERIAL="${TMPDIR_RUN}/batched_serial.json"
BATCH_PROFILE_PARALLEL="${TMPDIR_RUN}/batched_parallel.json"

BATCH_SERIAL_S=$(run_once "${BENCH_BATCHED}" 1 \
  "${BATCH_CSV_SERIAL}" "${BATCH_PROFILE_SERIAL}")
BATCH_PARALLEL_S=$(run_once "${BENCH_BATCHED}" "${THREADS}" \
  "${BATCH_CSV_PARALLEL}" "${BATCH_PROFILE_PARALLEL}")

# Every fig10 row is modeled from metrics — no host-measured rows to exclude.
if ! cmp -s "${BATCH_CSV_SERIAL}" "${BATCH_CSV_PARALLEL}"; then
  echo "error: batched serial and parallel runs disagree — determinism violated" >&2
  exit 1
fi
if ! cmp -s <(grep -vE '"(wall_seconds|worker_threads)":' "${BATCH_PROFILE_SERIAL}") \
            <(grep -vE '"(wall_seconds|worker_threads)":' "${BATCH_PROFILE_PARALLEL}"); then
  echo "error: batched serial and parallel profiles disagree — determinism violated" >&2
  exit 1
fi

python3 - "${OUT_BATCHED_JSON}" "${BATCH_CSV_SERIAL}" "${BATCH_PROFILE_SERIAL}" <<EOF
import csv, json, sys
with open(sys.argv[2]) as f:
    rows = list(csv.DictReader(f))
with open(sys.argv[3]) as f:
    profile = json.load(f)
kernels = profile.get("kernels")
if not kernels:
    sys.exit(f"error: profile {sys.argv[3]} has a missing or empty kernel "
             "list — refusing to emit kernel_launches")
batched_kernels = [k for k in kernels
                   if k["kernel"] in ("batch_tile_score", "batch_reduce")]
by_batch = [
    {
        "batch_size": int(r["batch_size"]),
        "batches": int(r["batches"]),
        "modeled_seconds": float(r["modeled_seconds"]),
        "queries_per_second": round(float(r["queries_per_second"]), 1),
        "speedup_vs_b1": round(float(r["speedup_vs_b1"]), 3),
        "simt_efficiency": round(float(r["simt_efficiency"]), 4),
        "tile_score_share": round(float(r["tile_score_share"]), 4),
        "tile_copy_share": round(float(r["tile_copy_share"]), 4),
    }
    for r in rows
]
full = max(by_batch, key=lambda r: r["batch_size"])
out = {
    "bench": "fig10_batched_throughput",
    "warps_flag": ${WARPS},
    "queries": ${WARPS} * 32,
    "kernel_launches": len(kernels),
    "batched_kernel_launches": len(batched_kernels),
    "by_batch_size": by_batch,
    "speedup_full_batch_vs_b1": full["speedup_vs_b1"],
    "outputs_identical": True,
}
with open(sys.argv[1], "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")
print(json.dumps(out, indent=2))
EOF

# --- sharded serving scaling (fig11) -----------------------------------------

SHARD_CSV_SERIAL="${TMPDIR_RUN}/sharded_serial.csv"
SHARD_CSV_PARALLEL="${TMPDIR_RUN}/sharded_parallel.csv"
SHARD_PROFILE_SERIAL="${TMPDIR_RUN}/sharded_serial.json"
SHARD_PROFILE_PARALLEL="${TMPDIR_RUN}/sharded_parallel.json"
SHARD_REPORT_SERIAL="${TMPDIR_RUN}/shards_serial.json"
SHARD_REPORT_PARALLEL="${TMPDIR_RUN}/shards_parallel.json"

SHARD_SERIAL_S=$(run_once "${BENCH_SHARDED}" 1 \
  "${SHARD_CSV_SERIAL}" "${SHARD_PROFILE_SERIAL}" \
  --shards-json="${SHARD_REPORT_SERIAL}")
SHARD_PARALLEL_S=$(run_once "${BENCH_SHARDED}" "${THREADS}" \
  "${SHARD_CSV_PARALLEL}" "${SHARD_PROFILE_PARALLEL}" \
  --shards-json="${SHARD_REPORT_PARALLEL}")

# Every fig11 value — per-shard metrics, the merge, the shards.v1 report —
# is modeled, so serial and parallel runs must agree byte-for-byte.
if ! cmp -s "${SHARD_CSV_SERIAL}" "${SHARD_CSV_PARALLEL}"; then
  echo "error: sharded serial and parallel runs disagree — determinism violated" >&2
  exit 1
fi
if ! cmp -s <(grep -vE '"(wall_seconds|worker_threads)":' "${SHARD_PROFILE_SERIAL}") \
            <(grep -vE '"(wall_seconds|worker_threads)":' "${SHARD_PROFILE_PARALLEL}"); then
  echo "error: sharded serial and parallel profiles disagree — determinism violated" >&2
  exit 1
fi
if ! cmp -s "${SHARD_REPORT_SERIAL}" "${SHARD_REPORT_PARALLEL}"; then
  echo "error: sharded serial and parallel shard reports disagree — determinism violated" >&2
  exit 1
fi

python3 - "${OUT_SHARDED_JSON}" "${SHARD_CSV_SERIAL}" "${SHARD_PROFILE_SERIAL}" \
  "${SHARD_REPORT_SERIAL}" <<EOF
import csv, json, sys
with open(sys.argv[2]) as f:
    rows = list(csv.DictReader(f))
with open(sys.argv[3]) as f:
    profile = json.load(f)
kernels = profile.get("kernels")
if not kernels:
    sys.exit(f"error: profile {sys.argv[3]} has a missing or empty kernel "
             "list — refusing to emit kernel_launches")
with open(sys.argv[4]) as f:
    report = json.load(f)
by_shards = [
    {
        "shard_count": int(r["shard_count"]),
        "modeled_seconds": float(r["modeled_seconds"]),
        "queries_per_second": round(float(r["queries_per_second"]), 1),
        "speedup_vs_s1": round(float(r["speedup_vs_s1"]), 3),
        "merge_share": round(float(r["merge_share"]), 4),
        "simt_efficiency": round(float(r["simt_efficiency"]), 4),
    }
    for r in rows
]
widest = max(by_shards, key=lambda r: r["shard_count"])
out = {
    "bench": "fig11_sharded_scaling",
    "warps_flag": ${WARPS},
    "queries": ${WARPS} * 32,
    "kernel_launches": len(kernels),
    "by_shard_count": by_shards,
    "speedup_widest_vs_s1": widest["speedup_vs_s1"],
    "merge_share_widest": widest["merge_share"],
    "shard_report": report,
    "outputs_identical": True,
}
with open(sys.argv[1], "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")
print(json.dumps(out, indent=2))
EOF

# --- IVF recall vs qps (fig13) ------------------------------------------------

IVF_CSV_SERIAL="${TMPDIR_RUN}/ivf_serial.csv"
IVF_CSV_PARALLEL="${TMPDIR_RUN}/ivf_parallel.csv"
IVF_PROFILE_SERIAL="${TMPDIR_RUN}/ivf_serial.json"
IVF_PROFILE_PARALLEL="${TMPDIR_RUN}/ivf_parallel.json"
IVF_JSON_SERIAL="${TMPDIR_RUN}/ivf_recall_serial.json"
IVF_JSON_PARALLEL="${TMPDIR_RUN}/ivf_recall_parallel.json"

# fig13 runs at its own warp count: the recorded operating point needs
# enough queries (warps * 32) to fill the pruned scan's task warps.
"${BENCH_IVF}" --warps="${IVF_WARPS}" --threads=1 \
  --csv="${IVF_CSV_SERIAL}" --profile="${IVF_PROFILE_SERIAL}" \
  --ivf-json="${IVF_JSON_SERIAL}" >/dev/null
"${BENCH_IVF}" --warps="${IVF_WARPS}" --threads="${THREADS}" \
  --csv="${IVF_CSV_PARALLEL}" --profile="${IVF_PROFILE_PARALLEL}" \
  --ivf-json="${IVF_JSON_PARALLEL}" >/dev/null

# Training is host-side k-means over a seeded sample and every recall/qps
# value is modeled, so serial and parallel runs must agree byte-for-byte —
# including the emitted recall JSON itself.
if ! cmp -s "${IVF_CSV_SERIAL}" "${IVF_CSV_PARALLEL}"; then
  echo "error: ivf serial and parallel runs disagree — determinism violated" >&2
  exit 1
fi
if ! cmp -s <(grep -vE '"(wall_seconds|worker_threads)":' "${IVF_PROFILE_SERIAL}") \
            <(grep -vE '"(wall_seconds|worker_threads)":' "${IVF_PROFILE_PARALLEL}"); then
  echo "error: ivf serial and parallel profiles disagree — determinism violated" >&2
  exit 1
fi
if ! cmp -s "${IVF_JSON_SERIAL}" "${IVF_JSON_PARALLEL}"; then
  echo "error: ivf serial and parallel recall reports disagree — determinism violated" >&2
  exit 1
fi

python3 - "${OUT_IVF_JSON}" "${IVF_JSON_SERIAL}" <<EOF
import json, sys
with open(sys.argv[2]) as f:
    report = json.load(f)
if report.get("schema") != "gpuksel.ivf_recall.v1":
    sys.exit(f"error: unexpected ivf recall schema {report.get('schema')!r}")
curve = report["curve"]
if not curve:
    sys.exit("error: ivf recall curve is empty")

# Recall must be monotone non-decreasing in nprobe (probed-list nesting) and
# exact once every list is probed.
for prev, cur in zip(curve, curve[1:]):
    if cur["nprobe"] <= prev["nprobe"]:
        sys.exit("error: ivf curve nprobe values not increasing")
    if cur["recall"] < prev["recall"]:
        sys.exit(f"error: recall dropped from nprobe {prev['nprobe']} "
                 f"({prev['recall']}) to {cur['nprobe']} ({cur['recall']})")
full = curve[-1]
if full["nprobe"] != report["nlist"] or full["recall"] != 1.0:
    sys.exit("error: nprobe == nlist curve point is not exact "
             f"(nprobe {full['nprobe']}, recall {full['recall']})")

# The acceptance gate: the recorded operating point holds recall@k >= 0.95
# with at least 5x the full-scan throughput on a >= 1e5-row reference set.
op = report["operating_point"]
if report["rows"] < 100_000:
    sys.exit(f"error: fig13 reference set shrank to {report['rows']} rows")
if op["recall"] < 0.95:
    sys.exit(f"error: operating-point recall {op['recall']} < 0.95")
if op["speedup_vs_full_scan"] < 5.0:
    sys.exit(f"error: operating-point speedup {op['speedup_vs_full_scan']} < 5x")

with open(sys.argv[1], "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(json.dumps({k: report[k] for k in
                  ("schema", "rows", "nlist", "operating_point")}, indent=2))
EOF

# --- streaming upserts on a mutable reference set (fig14) ---------------------

MUTABLE_CSV_SERIAL="${TMPDIR_RUN}/mutable_serial.csv"
MUTABLE_CSV_PARALLEL="${TMPDIR_RUN}/mutable_parallel.csv"
MUTABLE_PROFILE_SERIAL="${TMPDIR_RUN}/mutable_serial.json"
MUTABLE_PROFILE_PARALLEL="${TMPDIR_RUN}/mutable_parallel.json"
MUTABLE_JSON_SERIAL="${TMPDIR_RUN}/mutable_upserts_serial.json"
MUTABLE_JSON_PARALLEL="${TMPDIR_RUN}/mutable_upserts_parallel.json"

"${BENCH_MUTABLE}" --warps="${WARPS}" --threads=1 \
  --csv="${MUTABLE_CSV_SERIAL}" --profile="${MUTABLE_PROFILE_SERIAL}" \
  --mutable-json="${MUTABLE_JSON_SERIAL}" >/dev/null
"${BENCH_MUTABLE}" --warps="${WARPS}" --threads="${THREADS}" \
  --csv="${MUTABLE_CSV_PARALLEL}" --profile="${MUTABLE_PROFILE_PARALLEL}" \
  --mutable-json="${MUTABLE_JSON_PARALLEL}" >/dev/null

# Every fig14 value — per-phase qps, transfer counters, pool stats, answer
# digests — is modeled or counted, so serial and parallel runs must agree
# byte-for-byte, including the emitted upsert JSON itself.
if ! cmp -s "${MUTABLE_CSV_SERIAL}" "${MUTABLE_CSV_PARALLEL}"; then
  echo "error: mutable serial and parallel runs disagree — determinism violated" >&2
  exit 1
fi
if ! cmp -s <(grep -vE '"(wall_seconds|worker_threads)":' "${MUTABLE_PROFILE_SERIAL}") \
            <(grep -vE '"(wall_seconds|worker_threads)":' "${MUTABLE_PROFILE_PARALLEL}"); then
  echo "error: mutable serial and parallel profiles disagree — determinism violated" >&2
  exit 1
fi
if ! cmp -s "${MUTABLE_JSON_SERIAL}" "${MUTABLE_JSON_PARALLEL}"; then
  echo "error: mutable serial and parallel upsert reports disagree — determinism violated" >&2
  exit 1
fi

python3 - "${OUT_MUTABLE_JSON}" "${MUTABLE_JSON_SERIAL}" <<EOF
import json, sys
with open(sys.argv[2]) as f:
    report = json.load(f)
if report.get("schema") != "gpuksel.mutable_upserts.v1":
    sys.exit(f"error: unexpected mutable upsert schema {report.get('schema')!r}")
runs = report["runs"]
if len(runs) != 2 or runs[0]["rows"] >= runs[1]["rows"]:
    sys.exit("error: fig14 must report a small and a large base run")

dim = report["dim"]
for run in runs:
    stats, pool = run["stats"], run["pool"]
    # The delta transfer identity: every uploaded byte is a synced delta row
    # (dim floats) or a 4-byte tombstone mask word.
    expect = 4 * (stats["delta_rows_synced"] * dim
                  + stats["tombstone_words_synced"])
    if stats["delta_bytes_uploaded"] != expect:
        sys.exit(f"error: run rows={run['rows']}: delta_bytes_uploaded "
                 f"{stats['delta_bytes_uploaded']} != identity {expect}")
    # The buffer pool's accounting must partition exactly.
    if pool["bytes_requested"] != (pool["bytes_served_from_pool"]
                                   + pool["bytes_freshly_allocated"]):
        sys.exit(f"error: run rows={run['rows']}: pool bytes do not partition")
    if pool["blocks_reused"] == 0:
        sys.exit(f"error: run rows={run['rows']}: the pool never reused a "
                 "block across the phase loop")
    if not run["phases"]:
        sys.exit("error: fig14 run has no phases")

# The headline acceptance gate: both runs execute the identical mutation
# schedule, so their delta-sync traffic must be exactly equal even though the
# bases differ by 8x — per-upsert upload bytes scale with the delta, never
# with the base row count.
small, large = runs[0]["stats"], runs[1]["stats"]
if small["delta_bytes_uploaded"] != large["delta_bytes_uploaded"]:
    sys.exit(f"error: delta traffic scaled with the base: "
             f"{small['delta_bytes_uploaded']} B at {runs[0]['rows']} rows vs "
             f"{large['delta_bytes_uploaded']} B at {runs[1]['rows']} rows")
# And the base upload itself must scale with the base (sanity: the two runs
# really did build different-sized snapshots).
if runs[1]["base_upload_bytes"] <= runs[0]["base_upload_bytes"]:
    sys.exit("error: the large run's base upload is not larger than the "
             "small run's")

with open(sys.argv[1], "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(json.dumps({"schema": report["schema"],
                  "runs": [r["rows"] for r in runs],
                  "delta_scaling": report["delta_scaling"]}, indent=2))
EOF
