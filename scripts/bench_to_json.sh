#!/usr/bin/env bash
# Runs the Table I bench serially and with the parallel warp executor and
# emits BENCH_sim_throughput.json: wall seconds, simulated warps/second and
# the speedup, plus the modeled GPU seconds of the paper's best variant
# (which are thread-count-invariant — the executor changes how fast the
# simulator runs, never what it computes).
#
# Both runs pass --profile=, so the structured per-kernel profile replaces
# stdout scraping: the simulated warp count is summed from the profile's
# KernelRecords, and determinism is asserted by byte-comparing the two
# profiles (written without host info, the only fields allowed to differ).
# A "parallelism_valid" field flags results captured where the requested
# thread count exceeds the host's cores (speedup is meaningless there).
#
# Usage: scripts/bench_to_json.sh [build_dir] [out_json]
#   WARPS=n    sampled warps per configuration (default 2)
#   THREADS=n  parallel thread count (default: nproc)
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_JSON="${2:-BENCH_sim_throughput.json}"
WARPS="${WARPS:-2}"
THREADS="${THREADS:-$(nproc)}"
BENCH="${BUILD_DIR}/bench/table1_execution_time"

if [[ ! -x "${BENCH}" ]]; then
  echo "error: ${BENCH} not found — build the repo first" >&2
  exit 1
fi

TMPDIR_RUN=$(mktemp -d)
trap 'rm -rf "${TMPDIR_RUN}"' EXIT

run_once() {
  local threads="$1" csv="$2" profile="$3" t0 t1
  t0=$(date +%s%N)
  "${BENCH}" --warps="${WARPS}" --threads="${threads}" --csv="${csv}" \
    --profile="${profile}" >/dev/null
  t1=$(date +%s%N)
  awk "BEGIN{printf \"%.6f\", (${t1} - ${t0}) / 1e9}"
}

CSV_SERIAL="${TMPDIR_RUN}/serial.csv"
CSV_PARALLEL="${TMPDIR_RUN}/parallel.csv"
PROFILE_SERIAL="${TMPDIR_RUN}/serial.json"
PROFILE_PARALLEL="${TMPDIR_RUN}/parallel.json"

SERIAL_S=$(run_once 1 "${CSV_SERIAL}" "${PROFILE_SERIAL}")
PARALLEL_S=$(run_once "${THREADS}" "${CSV_PARALLEL}" "${PROFILE_PARALLEL}")

# The CPU rows are measured host wall-clock (non-deterministic); every
# simulated row is modeled from metrics and must be bit-identical.
if ! cmp -s <(grep -v '^CPU ' "${CSV_SERIAL}") \
            <(grep -v '^CPU ' "${CSV_PARALLEL}"); then
  echo "error: serial and parallel runs disagree — determinism violated" >&2
  exit 1
fi

# Same contract on the full profiles: everything except the two host fields
# (wall_seconds, worker_threads) must be byte-identical.
if ! cmp -s <(grep -vE '"(wall_seconds|worker_threads)":' "${PROFILE_SERIAL}") \
            <(grep -vE '"(wall_seconds|worker_threads)":' "${PROFILE_PARALLEL}"); then
  echo "error: serial and parallel profiles disagree — determinism violated" >&2
  exit 1
fi

# Modeled seconds of the paper's best GPU variant, summed over all columns.
MODELED_S=$(awk -F, '/^Merge Queue aligned\+buf\+hp/ {
  s = 0
  for (i = 2; i <= NF; ++i) if ($i + 0 == $i) s += $i
  printf "%.4f", s
}' "${CSV_SERIAL}")

python3 - "$OUT_JSON" "${PROFILE_SERIAL}" <<EOF
import json, sys
serial_s, parallel_s = ${SERIAL_S}, ${PARALLEL_S}
threads, host_cores = ${THREADS}, $(nproc)
with open(sys.argv[2]) as f:
    profile = json.load(f)
total_warps = sum(k["num_warps"] for k in profile["kernels"])
out = {
    "bench": "table1_execution_time",
    "warps_flag": ${WARPS},
    "total_simulated_warps": total_warps,
    "kernel_launches": len(profile["kernels"]),
    "host_cores": host_cores,
    # Speedup only means something when every requested thread can run on
    # its own core; oversubscribed runs just measure scheduler churn.
    "parallelism_valid": threads <= host_cores,
    "serial": {
        "threads": 1,
        "wall_seconds": serial_s,
        "warps_per_second": round(total_warps / serial_s, 1),
    },
    "parallel": {
        "threads": threads,
        "wall_seconds": parallel_s,
        "warps_per_second": round(total_warps / parallel_s, 1),
    },
    "speedup": round(serial_s / parallel_s, 3),
    "modeled_gpu_seconds_best_variant": ${MODELED_S:-0},
    "outputs_identical": True,
}
if not out["parallelism_valid"]:
    out["note"] = (f"captured with {threads} threads on {host_cores} "
                   "host core(s): speedup is not meaningful")
with open(sys.argv[1], "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")
print(json.dumps(out, indent=2))
EOF
