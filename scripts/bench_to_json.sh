#!/usr/bin/env bash
# Runs the Table I bench serially and with the parallel warp executor and
# emits BENCH_sim_throughput.json: wall seconds, simulated warps/second and
# the speedup, plus the modeled GPU seconds of the paper's best variant
# (which are thread-count-invariant — the executor changes how fast the
# simulator runs, never what it computes).
#
# Usage: scripts/bench_to_json.sh [build_dir] [out_json]
#   WARPS=n    sampled warps per configuration (default 2)
#   THREADS=n  parallel thread count (default: nproc)
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_JSON="${2:-BENCH_sim_throughput.json}"
WARPS="${WARPS:-2}"
THREADS="${THREADS:-$(nproc)}"
BENCH="${BUILD_DIR}/bench/table1_execution_time"

if [[ ! -x "${BENCH}" ]]; then
  echo "error: ${BENCH} not found — build the repo first" >&2
  exit 1
fi

# Simulated warps across all Table I configurations at --warps=W:
# 10 distance launches of 1 warp, 8 flat/hp rows (4xW + 4x2W = 12W) and QMS
# (32W warp-per-query) over 10 columns, TBS (32W) over 9 columns (k=2^10 is
# unsupported, as published).
TOTAL_WARPS=$((10 + 728 * WARPS))

run_once() {
  local threads="$1" csv="$2" t0 t1
  t0=$(date +%s%N)
  "${BENCH}" --warps="${WARPS}" --threads="${threads}" --csv="${csv}" \
    >/dev/null
  t1=$(date +%s%N)
  awk "BEGIN{printf \"%.6f\", (${t1} - ${t0}) / 1e9}"
}

CSV_SERIAL=$(mktemp)
CSV_PARALLEL=$(mktemp)
trap 'rm -f "${CSV_SERIAL}" "${CSV_PARALLEL}"' EXIT

SERIAL_S=$(run_once 1 "${CSV_SERIAL}")
PARALLEL_S=$(run_once "${THREADS}" "${CSV_PARALLEL}")

# The CPU rows are measured host wall-clock (non-deterministic); every
# simulated row is modeled from metrics and must be bit-identical.
if ! cmp -s <(grep -v '^CPU ' "${CSV_SERIAL}") \
            <(grep -v '^CPU ' "${CSV_PARALLEL}"); then
  echo "error: serial and parallel runs disagree — determinism violated" >&2
  exit 1
fi

# Modeled seconds of the paper's best GPU variant, summed over all columns.
MODELED_S=$(awk -F, '/^Merge Queue aligned\+buf\+hp/ {
  s = 0
  for (i = 2; i <= NF; ++i) if ($i + 0 == $i) s += $i
  printf "%.4f", s
}' "${CSV_SERIAL}")

python3 - "$OUT_JSON" <<EOF
import json, sys
serial_s, parallel_s = ${SERIAL_S}, ${PARALLEL_S}
out = {
    "bench": "table1_execution_time",
    "warps_flag": ${WARPS},
    "total_simulated_warps": ${TOTAL_WARPS},
    "host_cores": $(nproc),
    "serial": {
        "threads": 1,
        "wall_seconds": serial_s,
        "warps_per_second": round(${TOTAL_WARPS} / serial_s, 1),
    },
    "parallel": {
        "threads": ${THREADS},
        "wall_seconds": parallel_s,
        "warps_per_second": round(${TOTAL_WARPS} / parallel_s, 1),
    },
    "speedup": round(serial_s / parallel_s, 3),
    "modeled_gpu_seconds_best_variant": ${MODELED_S:-0},
    "outputs_identical": True,
}
with open(sys.argv[1], "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")
print(json.dumps(out, indent=2))
EOF
