#!/usr/bin/env sh
# Runs every bench binary in sequence, teeing the combined output.
#
#   scripts/run_all_benches.sh [build-dir] [extra flags...]
#
# Extra flags are passed to every binary (e.g. --warps=4, --paper-scale).
set -eu

build_dir=${1:-build}
[ $# -ge 1 ] && shift

for b in "$build_dir"/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "==================================================================="
  echo "== $b $*"
  echo "==================================================================="
  "$b" "$@"
  echo
done
