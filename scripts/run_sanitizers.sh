#!/usr/bin/env bash
# Build and run the full test suite under AddressSanitizer + UBSan.
#
# Usage: scripts/run_sanitizers.sh [sanitizers] [build-dir]
#   sanitizers  comma-separated -fsanitize= list (default: address,undefined)
#   build-dir   configure directory (default: build-asan)
#
# This is the compiler-level complement of the repo's own SIMT sanitizer
# (src/simt/sanitizer.hpp): the simulated-GPU checks catch kernel-level bugs,
# ASan/UBSan catch host-level ones in the simulator itself.
set -euo pipefail

SANITIZERS="${1:-address,undefined}"
BUILD_DIR="${2:-build-asan}"
ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

cmake -B "${ROOT}/${BUILD_DIR}" -S "${ROOT}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DGPUKSEL_SANITIZE="${SANITIZERS}"
cmake --build "${ROOT}/${BUILD_DIR}" -j
ctest --test-dir "${ROOT}/${BUILD_DIR}" --output-on-failure -j"$(nproc)"
