// Ablation — merge strategy inside the Merge Queue (paper §V future work).
//
// The paper's Reverse Bitonic network performs n/2*log2(n) compare-exchanges
// but in a fixed, lockstep, coalesced pattern; the classic two-pointer merge
// moves each element once but with data-dependent (divergent, gathered) read
// pointers.  This bench quantifies the trade-off that justifies the paper's
// choice — and shows where the sequential merge would win.
#include <iostream>

#include "bench/bench_common.hpp"

namespace {

using namespace gpuksel;
using namespace gpuksel::bench;
using kernels::QueueKind;
using kernels::SelectConfig;

constexpr std::uint32_t kN = 1 << 15;

std::string name(MergeStrategy st, bool aligned, std::uint32_t k) {
  return std::string("ablation_merge_strategy/") +
         (st == MergeStrategy::kReverseBitonic ? "bitonic" : "two_pointer") +
         (aligned ? "_aligned" : "_unaligned") + "/k" + std::to_string(k);
}

SelectConfig cfg_of(MergeStrategy st, bool aligned) {
  SelectConfig cfg;
  cfg.queue = QueueKind::kMerge;
  cfg.aligned_merge = aligned;
  cfg.merge_strategy = st;
  return cfg;
}

void report(const Scale& scale) {
  auto& store = ResultStore::instance();
  Table t("Ablation — merge strategy (merge queue, N=2^15, modeled)",
          {"log2(k)", "variant", "seconds", "instr", "mem tx", "simt eff"});
  CsvWriter csv(scale.csv_path,
                {"log2k", "strategy", "aligned", "seconds", "instr", "mem_tx"});
  for (std::uint32_t logk = 6; logk <= 10; logk += 2) {
    const std::uint32_t k = 1u << logk;
    for (const bool aligned : {true, false}) {
      for (MergeStrategy st :
           {MergeStrategy::kReverseBitonic, MergeStrategy::kTwoPointer}) {
        const auto r = store.get_or_run(name(st, aligned, k), [&] {
          return run_flat(scale, kN, k, cfg_of(st, aligned));
        });
        const std::string label =
            std::string(st == MergeStrategy::kReverseBitonic ? "bitonic"
                                                             : "two-pointer") +
            (aligned ? " aligned" : " unaligned");
        t.begin_row()
            .add_int(logk)
            .add(label)
            .add(format_seconds(r.seconds))
            .add_int(static_cast<long long>(r.metrics.instructions))
            .add_int(static_cast<long long>(r.metrics.global_tx()))
            .add(r.metrics.simt_efficiency(), 3);
        csv.write_row({std::to_string(logk),
                       st == MergeStrategy::kReverseBitonic ? "bitonic"
                                                            : "two_pointer",
                       aligned ? "1" : "0", std::to_string(r.seconds),
                       std::to_string(r.metrics.instructions),
                       std::to_string(r.metrics.global_tx())});
      }
    }
  }
  t.print(std::cout);
  std::cout << "Expected: the network needs more compare instructions but "
               "keeps lockstep, coalesced accesses; the two-pointer merge "
               "trades them for divergent gathers — the regularity argument "
               "of paper §III-C made quantitative.\n";
}

}  // namespace

int main(int argc, char** argv) {
  return bench_main(
      argc, argv, "ablation_merge_strategy.csv",
      [](const Scale& scale) {
        for (std::uint32_t logk = 6; logk <= 10; logk += 2) {
          const std::uint32_t k = 1u << logk;
          for (const bool aligned : {true, false}) {
            for (MergeStrategy st : {MergeStrategy::kReverseBitonic,
                                     MergeStrategy::kTwoPointer}) {
              register_run(name(st, aligned, k), [=] {
                return run_flat(scale, kN, k, cfg_of(st, aligned));
              });
            }
          }
        }
      },
      report);
}
