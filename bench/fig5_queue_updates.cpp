// Fig. 5 — Number of updates in the three queue types during k-selection.
//
//  (a) updates at each queue position, N = 2^15, k = 2^6;
//  (b) total updates per queue as k grows, k in [2^5, 2^10], N = 2^15.
//
// These are algorithmic counts (scalar instrumented queues), averaged over a
// batch of query lists.  Paper shape: the insertion queue's updates decay
// ~linearly with position and its total explodes with k; heap and merge stay
// flat-ish with merge slightly above heap.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/bench_common.hpp"
#include "core/queues/heap_queue.hpp"
#include "core/queues/insertion_queue.hpp"
#include "core/queues/merge_queue.hpp"

namespace {

using namespace gpuksel;

constexpr std::uint32_t kN = 1 << 15;

enum class Kind { kInsertion, kHeap, kMerge };

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kInsertion: return "insertion";
    case Kind::kHeap: return "heap";
    case Kind::kMerge: return "merge";
  }
  return "?";
}

/// Average per-position update counts over `queries` random lists.
std::vector<double> run_counts(Kind kind, std::uint32_t k,
                               std::uint32_t queries, std::uint64_t seed) {
  const std::uint32_t capacity =
      kind == Kind::kMerge ? MergeQueue(k).capacity() : k;
  UpdateCounter counter(capacity);
  for (std::uint32_t q = 0; q < queries; ++q) {
    const auto data = uniform_floats(kN, seed + q);
    if (kind == Kind::kInsertion) {
      InsertionQueue queue(k, &counter);
      for (std::uint32_t i = 0; i < data.size(); ++i) {
        queue.try_insert(data[i], i);
      }
    } else if (kind == Kind::kHeap) {
      HeapQueue queue(k, &counter);
      for (std::uint32_t i = 0; i < data.size(); ++i) {
        queue.try_insert(data[i], i);
      }
    } else {
      MergeQueue queue(k, 8, &counter);
      for (std::uint32_t i = 0; i < data.size(); ++i) {
        queue.try_insert(data[i], i);
      }
    }
  }
  std::vector<double> avg(counter.per_position().size());
  for (std::size_t i = 0; i < avg.size(); ++i) {
    avg[i] = static_cast<double>(counter.per_position()[i]) / queries;
  }
  return avg;
}

double total(const std::vector<double>& per_pos) {
  double t = 0;
  for (double v : per_pos) t += v;
  return t;
}

void BM_QueueUpdates(benchmark::State& state) {
  const auto kind = static_cast<Kind>(state.range(0));
  const auto k = static_cast<std::uint32_t>(state.range(1));
  double updates = 0;
  for (auto _ : state) {
    updates = total(run_counts(kind, k, 4, 42));
  }
  state.counters["updates_per_query"] = updates;
  state.SetLabel(kind_name(kind));
}

void print_tables() {
  const std::uint32_t queries = 16;

  // (a) per-position profile at k = 2^6 (printed in 8-position buckets).
  const std::uint32_t ka = 1 << 6;
  const auto ins = run_counts(Kind::kInsertion, ka, queries, 7);
  const auto heap = run_counts(Kind::kHeap, ka, queries, 7);
  const auto merge = run_counts(Kind::kMerge, ka, queries, 7);
  Table ta("Fig 5a — avg updates per queue position (N=2^15, k=2^6)",
           {"positions", "insertion", "heap", "merge"});
  for (std::uint32_t b = 0; b < ka; b += 8) {
    double si = 0, sh = 0, sm = 0;
    for (std::uint32_t i = b; i < b + 8; ++i) {
      si += ins[i];
      sh += heap[i];
      sm += i < merge.size() ? merge[i] : 0.0;
    }
    ta.begin_row()
        .add(std::to_string(b) + ".." + std::to_string(b + 7))
        .add(si / 8, 1)
        .add(sh / 8, 1)
        .add(sm / 8, 1);
  }
  ta.print(std::cout);
  std::cout << "Paper shape: insertion decays ~linearly from ~550 at the "
               "head; heap/merge level-structured and much flatter.\n\n";

  // (b) totals vs k.
  Table tb("Fig 5b — total updates per query vs k (N=2^15)",
           {"log2(k)", "insertion", "heap", "merge", "merge/heap"});
  gpuksel::CsvWriter csv("fig5_totals.csv",
                         {"log2k", "insertion", "heap", "merge"});
  for (std::uint32_t logk = 5; logk <= 10; ++logk) {
    const std::uint32_t k = 1u << logk;
    const double ti = total(run_counts(Kind::kInsertion, k, queries, 11));
    const double th = total(run_counts(Kind::kHeap, k, queries, 11));
    const double tm = total(run_counts(Kind::kMerge, k, queries, 11));
    tb.begin_row()
        .add_int(logk)
        .add(ti, 0)
        .add(th, 0)
        .add(tm, 0)
        .add(tm / th, 2);
    csv.write_row({std::to_string(logk), std::to_string(ti),
                   std::to_string(th), std::to_string(tm)});
  }
  tb.print(std::cout);
  std::cout << "Paper shape: insertion grows dramatically with k; heap and "
               "merge grow slowly, merge slightly above heap (matching the "
               "O(k) / O(log k) / O(log^2 k) analysis).\n";
}

}  // namespace

int main(int argc, char** argv) {
  for (int kind = 0; kind < 3; ++kind) {
    for (std::uint32_t logk = 5; logk <= 10; ++logk) {
      const std::string name = std::string("fig5/updates/") +
                               kind_name(static_cast<Kind>(kind)) + "/k" +
                               std::to_string(1u << logk);
      benchmark::RegisterBenchmark(name.c_str(), BM_QueueUpdates)
          ->Args({kind, static_cast<long>(1u << logk)})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_tables();
  return 0;
}
