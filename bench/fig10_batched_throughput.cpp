// Fig. 10 (extension) — Batched serving throughput vs batch size.
//
// Fixed workload (N references, k) served through BatchedKnn: the same Q
// queries are pushed through the queue in batches of b and the modeled GPU
// time of every launch is summed.  Small batches waste the machine twice —
// warps run with idle lanes (a batch of 1 keeps 31 of 32 lanes masked for
// every tile) and each batch re-stages every distance tile for itself.  As b
// grows toward the warp width, queries/sec rises steeply, then flattens once
// warps are full; the amortization is visible in the profiler, where the
// fixed tile_copy cost shrinks relative to the batch_tile_score region.
//
// No paper counterpart (the paper benches selection only); the shape to
// expect is FAISS-style batched-throughput scaling.
#include <iostream>
#include <map>

#include "bench/bench_common.hpp"
#include "knn/batch.hpp"
#include "knn/dataset.hpp"

namespace {

using namespace gpuksel;
using namespace gpuksel::bench;

constexpr std::uint32_t kN = 1024;      // references
constexpr std::uint32_t kDim = 16;
constexpr std::uint32_t kK = 16;
constexpr std::uint32_t kTileRefs = 128;  // 8 tiles over kN

struct BatchedRun {
  double seconds = 0.0;            ///< modeled GPU seconds for all Q queries
  std::uint32_t batches = 0;
  simt::KernelMetrics metrics;     ///< summed over every launch
  double tile_score_share = 0.0;   ///< batch_tile_score instr / all instr
  double tile_copy_share = 0.0;    ///< tile_copy instr / all instr
};

std::map<std::uint32_t, BatchedRun>& runs() {
  static std::map<std::uint32_t, BatchedRun> store;
  return store;
}

std::vector<std::uint32_t> batch_sizes(std::uint32_t total) {
  std::vector<std::uint32_t> sizes;
  for (const std::uint32_t b : {1u, 2u, 4u, 8u, 16u, 32u, 48u}) {
    if (b <= total) sizes.push_back(b);
  }
  if (sizes.empty() || sizes.back() != total) sizes.push_back(total);
  return sizes;
}

BatchedRun run_batched(const Scale& scale, std::uint32_t batch) {
  const std::uint32_t total = scale.queries();
  const auto refs = knn::make_uniform_dataset(kN, kDim, 1);
  const auto queries = knn::make_uniform_dataset(total, kDim, 2);

  // Region shares need this run's KernelRecords; reuse the --profile=
  // profiler when present (reading only the records this run appends), else
  // a run-local one.
  simt::Profiler local;
  simt::Profiler* prof =
      scale.profiler != nullptr ? scale.profiler.get() : &local;
  simt::Device dev;
  scale.configure(dev);
  dev.set_profiler(prof);
  const std::size_t first_record = prof->records().size();

  knn::BatchedKnnOptions opts;
  opts.batch.tile_refs = kTileRefs;
  knn::BatchedKnn engine(refs, opts);
  for (std::uint32_t q0 = 0; q0 < total; q0 += batch) {
    const std::uint32_t b = std::min(batch, total - q0);
    knn::Dataset slice;
    slice.count = b;
    slice.dim = kDim;
    slice.values.assign(
        queries.values.begin() + std::size_t{q0} * kDim,
        queries.values.begin() + (std::size_t{q0} + b) * kDim);
    engine.enqueue(std::move(slice), kK);
  }

  BatchedRun run;
  run.batches = static_cast<std::uint32_t>(engine.pending());
  for (const auto& result : engine.serve(dev)) {
    run.seconds += result.modeled_seconds;
    run.metrics += result.distance_metrics + result.select_metrics;
  }

  std::uint64_t all = 0, score = 0, copy = 0;
  const auto& records = prof->records();
  for (std::size_t i = first_record; i < records.size(); ++i) {
    all += records[i].total.instructions;
    for (const auto& region : records[i].regions) {
      if (region.name == "batch_tile_score") score += region.self.instructions;
      if (region.name == "tile_copy") copy += region.self.instructions;
    }
  }
  if (all > 0) {
    run.tile_score_share = static_cast<double>(score) / static_cast<double>(all);
    run.tile_copy_share = static_cast<double>(copy) / static_cast<double>(all);
  }
  return run;
}

const BatchedRun& run(const Scale& scale, std::uint32_t batch) {
  auto& store = runs();
  if (const auto it = store.find(batch); it != store.end()) return it->second;
  return store.emplace(batch, run_batched(scale, batch)).first->second;
}

void report(const Scale& scale) {
  const auto sizes = batch_sizes(scale.queries());
  const double base_qps = scale.queries() / run(scale, 1).seconds;
  Table t("Fig 10 — batched serving throughput (N=" + std::to_string(kN) +
              ", k=" + std::to_string(kK) + ", Q=" +
              std::to_string(scale.queries()) + ", modeled)",
          {"batch", "batches", "time", "queries/s", "vs b=1", "simt eff",
           "score share", "copy share"});
  CsvWriter csv(scale.csv_path,
                {"batch_size", "batches", "modeled_seconds",
                 "queries_per_second", "speedup_vs_b1", "simt_efficiency",
                 "tile_score_share", "tile_copy_share"});
  for (const std::uint32_t b : sizes) {
    const BatchedRun& r = run(scale, b);
    const double qps = scale.queries() / r.seconds;
    t.begin_row()
        .add_int(b)
        .add_int(r.batches)
        .add(format_seconds(r.seconds))
        .add(qps, 1)
        .add(qps / base_qps, 2)
        .add(r.metrics.simt_efficiency(), 3)
        .add(r.tile_score_share, 3)
        .add(r.tile_copy_share, 3);
    csv.write_row({std::to_string(b), std::to_string(r.batches),
                   std::to_string(r.seconds), std::to_string(qps),
                   std::to_string(qps / base_qps),
                   std::to_string(r.metrics.simt_efficiency()),
                   std::to_string(r.tile_score_share),
                   std::to_string(r.tile_copy_share)});
  }
  t.print(std::cout);
  std::cout << "Throughput should rise with batch size until warps are full "
               "(b=32), then flatten;\nthe staged-tile copy cost amortizes: "
               "copy share falls as score share rises.\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  return bench_main(
      argc, argv, "fig10.csv",
      [](const Scale& scale) {
        for (const std::uint32_t b : batch_sizes(scale.queries())) {
          register_run("fig10/batch" + std::to_string(b), [scale, b] {
            const BatchedRun& r = run(scale, b);
            return RunResult{r.seconds, r.metrics};
          });
        }
      },
      report);
}
