// Ablation — distance-matrix layout (coalescing).
//
// Thread-per-query kernels scan element i of all 32 queries in lockstep:
// with the reference-major layout those 32 addresses are consecutive (one
// 128-byte transaction); query-major strides them N floats apart (32
// transactions).  This bench isolates the coalescing model by running the
// same selection in both layouts and reporting transactions and modeled
// time.
#include <iostream>

#include "bench/bench_common.hpp"

namespace {

using namespace gpuksel;
using namespace gpuksel::bench;
using kernels::MatrixLayout;
using kernels::QueueKind;
using kernels::SelectConfig;

constexpr std::uint32_t kN = 1 << 14;
constexpr std::uint32_t kK = 1 << 7;

std::string name(QueueKind queue, MatrixLayout layout) {
  return std::string("ablation_layout/") +
         std::string(kernels::queue_kind_name(queue)) + "/" +
         (layout == MatrixLayout::kReferenceMajor ? "ref_major"
                                                  : "query_major");
}

RunResult run(const Scale& scale, QueueKind queue, MatrixLayout layout) {
  SelectConfig cfg;
  cfg.queue = queue;
  cfg.layout = layout;
  // NOTE: the matrix content differs between layouts here (fresh uniform
  // draw), which is fine — the bench compares costs, and selection cost on
  // uniform data is distribution-stable.
  return run_flat(scale, kN, kK, cfg);
}

void report(const Scale& scale) {
  auto& store = ResultStore::instance();
  Table t("Ablation — matrix layout (k=2^7, N=2^14, modeled)",
          {"queue", "layout", "mem tx", "tx/request", "seconds", "slowdown"});
  CsvWriter csv(scale.csv_path,
                {"queue", "layout", "mem_tx", "tx_per_request", "seconds"});
  for (QueueKind queue :
       {QueueKind::kInsertion, QueueKind::kHeap, QueueKind::kMerge}) {
    double ref_secs = 0;
    for (MatrixLayout layout :
         {MatrixLayout::kReferenceMajor, MatrixLayout::kQueryMajor}) {
      const auto r = store.get_or_run(
          name(queue, layout), [&] { return run(scale, queue, layout); });
      if (layout == MatrixLayout::kReferenceMajor) ref_secs = r.seconds;
      const char* lname = layout == MatrixLayout::kReferenceMajor
                              ? "ref-major"
                              : "query-major";
      t.begin_row()
          .add(std::string(kernels::queue_kind_name(queue)))
          .add(lname)
          .add_int(static_cast<long long>(r.metrics.global_tx()))
          .add(r.metrics.transactions_per_request(), 2)
          .add(format_seconds(r.seconds))
          .add(r.seconds / ref_secs, 2);
      csv.write_row({std::string(kernels::queue_kind_name(queue)), lname,
                     std::to_string(r.metrics.global_tx()),
                     std::to_string(r.metrics.transactions_per_request()),
                     std::to_string(r.seconds)});
    }
  }
  t.print(std::cout);
  std::cout << "Expected: query-major scans generate ~32x the scan "
               "transactions and push the kernels further into the memory "
               "roofline.\n";
}

}  // namespace

int main(int argc, char** argv) {
  return bench_main(
      argc, argv, "ablation_layout.csv",
      [](const Scale& scale) {
        for (QueueKind queue : {QueueKind::kInsertion, QueueKind::kHeap,
                                QueueKind::kMerge}) {
          for (MatrixLayout layout :
               {MatrixLayout::kReferenceMajor, MatrixLayout::kQueryMajor}) {
            register_run(name(queue, layout),
                         [=] { return run(scale, queue, layout); });
          }
        }
      },
      report);
}
