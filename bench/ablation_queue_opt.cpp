// Ablation — implementation-level queue optimizations (beyond the paper).
//
// Two knobs the paper never discusses but that calibration showed matter
// enormously:
//   * queue layout: CUDA-local-memory interleaving (lockstep slot accesses
//     coalesce) vs naive row-major per-thread arrays (every access scatters
//     into up to 32 transactions);
//   * head caching: keeping the threshold in a register vs re-reading
//     dqueue[0] from memory per element (the literal Algorithm 1).
// The calibrated default (interleaved + cached) reproduces the paper's
// Table I magnitudes; this bench shows what each de-optimization costs.
#include <iostream>

#include "bench/bench_common.hpp"

namespace {

using namespace gpuksel;
using namespace gpuksel::bench;
using kernels::QueueKind;
using kernels::QueueLayout;
using kernels::SelectConfig;

constexpr std::uint32_t kN = 1 << 15;
constexpr std::uint32_t kK = 1 << 8;

struct Variant {
  const char* label;
  QueueLayout layout;
  bool cache_head;
};

constexpr Variant kVariants[] = {
    {"interleaved+cached (default)", QueueLayout::kInterleaved, true},
    {"interleaved+memory-head", QueueLayout::kInterleaved, false},
    {"row-major+cached", QueueLayout::kRowMajor, true},
    {"row-major+memory-head (naive)", QueueLayout::kRowMajor, false},
};

std::string name(QueueKind queue, const Variant& v) {
  return std::string("ablation_queue_opt/") +
         std::string(kernels::queue_kind_name(queue)) + "/" +
         (v.layout == QueueLayout::kInterleaved ? "ilv" : "row") +
         (v.cache_head ? "_cached" : "_mem");
}

SelectConfig cfg_of(QueueKind queue, const Variant& v) {
  SelectConfig cfg;
  cfg.queue = queue;
  cfg.aligned_merge = queue == QueueKind::kMerge;
  cfg.queue_layout = v.layout;
  cfg.cache_head = v.cache_head;
  return cfg;
}

void report(const Scale& scale) {
  auto& store = ResultStore::instance();
  Table t("Ablation — queue layout & head caching (k=2^8, N=2^15, modeled)",
          {"queue", "variant", "seconds", "mem tx", "slowdown"});
  CsvWriter csv(scale.csv_path,
                {"queue", "layout", "cache_head", "seconds", "mem_tx"});
  for (QueueKind queue :
       {QueueKind::kInsertion, QueueKind::kHeap, QueueKind::kMerge}) {
    double base = 0.0;
    for (const Variant& v : kVariants) {
      const auto r = store.get_or_run(
          name(queue, v), [&] { return run_flat(scale, kN, kK, cfg_of(queue, v)); });
      if (base == 0.0) base = r.seconds;
      t.begin_row()
          .add(std::string(kernels::queue_kind_name(queue)))
          .add(v.label)
          .add(format_seconds(r.seconds))
          .add_int(static_cast<long long>(r.metrics.global_tx()))
          .add(r.seconds / base, 2);
      csv.write_row({std::string(kernels::queue_kind_name(queue)),
                     v.layout == QueueLayout::kInterleaved ? "interleaved"
                                                           : "row_major",
                     v.cache_head ? "1" : "0", std::to_string(r.seconds),
                     std::to_string(r.metrics.global_tx())});
    }
  }
  t.print(std::cout);
  std::cout << "Expected: the naive variant costs several x, dominated by "
               "uncoalesced queue traffic — why real GPU selection code puts "
               "per-thread state in (interleaved) local memory.\n";
}

}  // namespace

int main(int argc, char** argv) {
  return bench_main(
      argc, argv, "ablation_queue_opt.csv",
      [](const Scale& scale) {
        for (QueueKind queue : {QueueKind::kInsertion, QueueKind::kHeap,
                                QueueKind::kMerge}) {
          for (const Variant& v : kVariants) {
            register_run(name(queue, v), [=] {
              return run_flat(scale, kN, kK, cfg_of(queue, v));
            });
          }
        }
      },
      report);
}
