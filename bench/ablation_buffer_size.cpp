// Ablation — Buffered Search buffer size (the paper uses a fixed small
// buffer; this sweep shows the trade-off: tiny buffers drain too often to
// align the warp, huge buffers add staging traffic and per-element checks
// for diminishing alignment gains).
#include <iostream>

#include "bench/bench_common.hpp"

namespace {

using namespace gpuksel;
using namespace gpuksel::bench;
using kernels::BufferMode;
using kernels::QueueKind;
using kernels::SelectConfig;

constexpr std::uint32_t kN = 1 << 15;
constexpr std::uint32_t kK = 1 << 8;
constexpr std::uint32_t kSizes[] = {2, 4, 8, 16, 32, 64};

std::string name(QueueKind queue, std::uint32_t bsize) {
  return std::string("ablation_buffer_size/") +
         std::string(kernels::queue_kind_name(queue)) + "/b" +
         std::to_string(bsize);
}

SelectConfig cfg_b(QueueKind queue, std::uint32_t bsize) {
  SelectConfig cfg;
  cfg.queue = queue;
  cfg.aligned_merge = false;
  cfg.buffer = BufferMode::kFullSorted;
  cfg.buffer_size = bsize;
  return cfg;
}

SelectConfig cfg_base(QueueKind queue) {
  SelectConfig cfg;
  cfg.queue = queue;
  cfg.aligned_merge = false;
  return cfg;
}

void report(const Scale& scale) {
  auto& store = ResultStore::instance();
  Table t("Ablation — buffer size (full+sorted, k=2^8, N=2^15; improvement "
          "over unbuffered)",
          {"queue", "b=2", "b=4", "b=8", "b=16", "b=32", "b=64"});
  CsvWriter csv(scale.csv_path, {"queue", "bsize", "improvement"});
  for (QueueKind queue :
       {QueueKind::kInsertion, QueueKind::kHeap, QueueKind::kMerge}) {
    const double base =
        store
            .get_or_run(name(queue, 0),
                        [&] { return run_flat(scale, kN, kK, cfg_base(queue)); })
            .seconds;
    Table& row = t.begin_row().add(std::string(kernels::queue_kind_name(queue)));
    for (const std::uint32_t b : kSizes) {
      const double secs =
          store
              .get_or_run(name(queue, b),
                          [&] { return run_flat(scale, kN, kK, cfg_b(queue, b)); })
              .seconds;
      row.add(base / secs, 2);
      csv.write_row({std::string(kernels::queue_kind_name(queue)),
                     std::to_string(b), std::to_string(base / secs)});
    }
  }
  t.print(std::cout);
  std::cout << "Expected: improvement rises then flattens; the default "
               "bsize=16 sits near the knee.\n";
}

}  // namespace

int main(int argc, char** argv) {
  return bench_main(
      argc, argv, "ablation_buffer_size.csv",
      [](const Scale& scale) {
        for (QueueKind queue : {QueueKind::kInsertion, QueueKind::kHeap,
                                QueueKind::kMerge}) {
          register_run(name(queue, 0),
                       [=] { return run_flat(scale, kN, kK, cfg_base(queue)); });
          for (const std::uint32_t b : kSizes) {
            register_run(name(queue, b), [=] {
              return run_flat(scale, kN, kK, cfg_b(queue, b));
            });
          }
        }
      },
      report);
}
