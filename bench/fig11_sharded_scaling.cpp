// Fig. 11 (extension) — Sharded serving throughput vs shard count.
//
// Fixed workload (N references, Q queries, k) served through ShardedKnn at
// shard counts {1, 2, 4, 8}: every shard scans only N/S references, shards
// run concurrently, and the request's modeled latency is the slowest shard
// plus the cross-shard merge.  Queries/sec rises toward S× as long as the
// merge (S·k candidates per query) stays small against the per-shard scan;
// the merge share column shows the scaling tax growing with S.
//
// No paper counterpart (the paper is single-GPU); the shape to expect is the
// near-linear multi-GPU scaling of Johnson et al.'s sharded mode.
//
// --shards-json=<path> additionally dumps the gpuksel.shards.v1 report of
// the largest shard count run (the partition check CI consumes).
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "knn/dataset.hpp"
#include "serve/sharded_knn.hpp"
#include "util/check.hpp"

namespace {

using namespace gpuksel;
using namespace gpuksel::bench;

constexpr std::uint32_t kN = 2048;  // references
constexpr std::uint32_t kDim = 16;
constexpr std::uint32_t kK = 16;
constexpr std::uint32_t kTileRefs = 128;

std::string& shards_json_path() {
  static std::string path;
  return path;
}

struct ShardedScalingRun {
  double seconds = 0.0;  ///< modeled request latency (max shard + merge)
  double merge_share = 0.0;  ///< merge seconds / request seconds
  simt::KernelMetrics metrics;  ///< all shard launches + the merge launch
  std::string report;  ///< gpuksel.shards.v1 JSON
};

std::map<std::uint32_t, ShardedScalingRun>& runs() {
  static std::map<std::uint32_t, ShardedScalingRun> store;
  return store;
}

ShardedScalingRun run_sharded(const Scale& scale, std::uint32_t num_shards) {
  const auto refs = knn::make_uniform_dataset(kN, kDim, 1);
  const auto queries = knn::make_uniform_dataset(scale.queries(), kDim, 2);

  serve::ShardedKnnOptions opts;
  opts.num_shards = num_shards;
  opts.batch.batch.tile_refs = kTileRefs;
  opts.worker_threads = scale.threads;
  serve::ShardedKnn engine(refs, opts);
  if (scale.profiler != nullptr) engine.attach_profilers();

  const auto res = engine.search(queries, kK);
  GPUKSEL_CHECK(!res.degraded, "fault-free bench run came back degraded");

  ShardedScalingRun run;
  run.seconds = res.modeled_seconds;
  run.merge_share =
      res.modeled_seconds > 0.0 ? res.merge_seconds / res.modeled_seconds : 0.0;
  for (const serve::ShardStats& st : res.shards) run.metrics += st.metrics;
  run.metrics += res.merge_metrics;
  if (scale.profiler != nullptr) {
    engine.drain_profiles(*scale.profiler,
                          "s" + std::to_string(num_shards) + "/");
  }
  std::ostringstream report;
  engine.write_shard_report(report);
  run.report = report.str();
  return run;
}

const ShardedScalingRun& run(const Scale& scale, std::uint32_t num_shards) {
  auto& store = runs();
  if (const auto it = store.find(num_shards); it != store.end()) {
    return it->second;
  }
  return store.emplace(num_shards, run_sharded(scale, num_shards))
      .first->second;
}

std::vector<std::uint32_t> shard_counts() { return {1u, 2u, 4u, 8u}; }

void report(const Scale& scale) {
  const double base_qps = scale.queries() / run(scale, 1).seconds;
  Table t("Fig 11 — sharded serving scaling (N=" + std::to_string(kN) +
              ", k=" + std::to_string(kK) + ", Q=" +
              std::to_string(scale.queries()) + ", modeled)",
          {"shards", "time (us)", "queries/s", "vs S=1", "merge share",
           "simt eff"});
  CsvWriter csv(scale.csv_path,
                {"shard_count", "modeled_seconds", "queries_per_second",
                 "speedup_vs_s1", "merge_share", "simt_efficiency"});
  for (const std::uint32_t s : shard_counts()) {
    const ShardedScalingRun& r = run(scale, s);
    const double qps = scale.queries() / r.seconds;
    t.begin_row()
        .add_int(s)
        .add(r.seconds * 1e6, 1)
        .add(qps, 1)
        .add(qps / base_qps, 2)
        .add(r.merge_share, 3)
        .add(r.metrics.simt_efficiency(), 3);
    csv.write_row({std::to_string(s), std::to_string(r.seconds),
                   std::to_string(qps), std::to_string(qps / base_qps),
                   std::to_string(r.merge_share),
                   std::to_string(r.metrics.simt_efficiency())});
  }
  t.print(std::cout);
  std::cout << "Each shard scans N/S references concurrently, so latency "
               "falls near S-fold until\nthe cross-shard merge (S*k "
               "candidates per query) starts to dominate.\n\n";
  if (!shards_json_path().empty()) {
    std::ofstream os(shards_json_path());
    GPUKSEL_CHECK(os.is_open(),
                  "cannot open shard report file: " + shards_json_path());
    os << run(scale, shard_counts().back()).report;
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Read the fig11-specific flag without consuming anything: bench_main's
  // CliFlags strips every --key=value (including this one) before handing
  // argv to google-benchmark.
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (const std::string prefix = "--shards-json=";
        arg.rfind(prefix, 0) == 0) {
      shards_json_path() = arg.substr(prefix.size());
    }
  }
  return bench_main(
      argc, argv, "fig11.csv",
      [](const Scale& scale) {
        for (const std::uint32_t s : shard_counts()) {
          register_run("fig11/shards" + std::to_string(s), [scale, s] {
            const ShardedScalingRun& r = run(scale, s);
            return RunResult{r.seconds, r.metrics};
          });
        }
      },
      report);
}
