// Shared harness for the figure/table benches.
//
// Every bench binary follows the same pattern:
//  1. parse workload flags (--warps=, --paper-scale, --csv=...) with CliFlags;
//  2. register one google-benchmark per configuration, reporting the *modeled
//     GPU seconds* (cost model x simulator metrics, scaled to the paper's
//     Q = 2^13 queries) as manual time, with SIMT efficiency and memory
//     counters attached;
//  3. after RunSpecifiedBenchmarks(), print the paper-shaped table with the
//     published numbers alongside, and optionally dump a CSV.
//
// Simulations are deterministic, so each configuration runs exactly once and
// its result is memoized for both the benchmark report and the tables.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/kernels/hp_kernels.hpp"
#include "core/kernels/select_kernels.hpp"
#include "simt/cost_model.hpp"
#include "simt/profiler.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace gpuksel::bench {

/// Number of queries the paper runs (Q = 2^13); modeled times are scaled to
/// this count from the sampled warps actually simulated.
inline constexpr std::uint32_t kPaperQueries = 8192;

/// Workload scale shared by all benches.
struct Scale {
  std::uint32_t warps = 8;  ///< simulated warps (32 queries each)
  std::string csv_path;     ///< optional CSV dump
  /// Host threads for the simulator's warp executor: 0 = device default
  /// (GPUKSEL_THREADS env, else hardware concurrency), 1 = serial loop.
  unsigned threads = 0;
  /// --profile=<path>: per-kernel profile report path; the trace and region
  /// CSV land next to it as <base>.trace.json / <base>.regions.csv.
  std::string profile_path;
  /// --sanitize: arm the full sanitizer (bounds/poison/ECC/lockstep) for the
  /// simulated kernels.  Benches default to the unchecked fast path — the
  /// configuration whose wall-clock the throughput JSON records — because
  /// sanitizer checks never charge metrics, so every modeled number and
  /// paper table is byte-identical either way; re-arm when chasing a kernel
  /// bug surfaced by a bench workload.
  bool sanitize = false;
  /// Shared so the const Scale copies handed to the setup/report callbacks
  /// all record into one profiler.
  std::shared_ptr<simt::Profiler> profiler;

  [[nodiscard]] std::uint32_t queries() const noexcept {
    return warps * simt::kWarpSize;
  }
  [[nodiscard]] double factor() const noexcept {
    return static_cast<double>(kPaperQueries) / queries();
  }

  /// Applies the thread knob (and the profiler, when --profile= was given)
  /// to a freshly constructed device.
  void configure(simt::Device& dev) const {
    dev.set_worker_threads(threads);
    if (!sanitize) dev.sanitizer() = simt::SanitizerConfig::off();
    if (profiler != nullptr) dev.set_profiler(profiler.get());
  }

  static Scale from_flags(const CliFlags& flags, const char* default_csv) {
    Scale s;
    // Strict parses: a malformed or out-of-range --warps/--threads aborts the
    // bench with a usage error instead of silently running the default
    // configuration (which would let a typo'd CI smoke job pass vacuously).
    s.warps =
        static_cast<std::uint32_t>(flags.require_int("warps", 8, 1, 1 << 22));
    if (flags.get_bool("paper_scale", false)) {
      s.warps = kPaperQueries / simt::kWarpSize;
    }
    s.csv_path = flags.get("csv", default_csv);
    s.threads =
        static_cast<unsigned>(flags.require_int("threads", 0, 0, 4096));
    s.profile_path = flags.get("profile", "");
    s.sanitize = flags.get_bool("sanitize", false);
    if (!s.profile_path.empty()) {
      s.profiler = std::make_shared<simt::Profiler>();
    }
    return s;
  }

  /// Writes the accumulated profile (report + trace + region CSV); no-op
  /// without --profile=.
  void write_profile() const {
    if (profiler == nullptr) return;
    std::string base = profile_path;
    if (const auto dot = base.rfind(".json");
        dot != std::string::npos && dot == base.size() - 5) {
      base.resize(dot);
    }
    profiler->write_files(profile_path, base + ".trace.json",
                          base + ".regions.csv");
  }
};

/// One simulated configuration's outcome.
struct RunResult {
  double seconds = 0.0;  ///< modeled GPU seconds at paper scale
  simt::KernelMetrics metrics;
};

/// Memoizing store: each named configuration simulates once.
class ResultStore {
 public:
  RunResult get_or_run(const std::string& name,
                       const std::function<RunResult()>& fn) {
    const auto it = results_.find(name);
    if (it != results_.end()) return it->second;
    const RunResult r = fn();
    results_.emplace(name, r);
    return r;
  }

  static ResultStore& instance() {
    static ResultStore store;
    return store;
  }

 private:
  std::map<std::string, RunResult> results_;
};

/// Registers a google-benchmark that reports the memoized modeled time.
inline void register_run(const std::string& name,
                         std::function<RunResult()> fn) {
  benchmark::RegisterBenchmark(
      name.c_str(),
      [name, fn = std::move(fn)](benchmark::State& state) {
        const RunResult r = ResultStore::instance().get_or_run(name, fn);
        for (auto _ : state) {
          state.SetIterationTime(r.seconds);
        }
        state.counters["simt_eff"] = r.metrics.simt_efficiency();
        state.counters["instr"] =
            static_cast<double>(r.metrics.instructions);
        state.counters["mem_tx"] = static_cast<double>(r.metrics.global_tx());
      })
      ->UseManualTime()
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

/// Memoized uniform_floats: one bench binary regenerates the same synthetic
/// matrix for every algorithm row and k-column that shares its (size, seed),
/// so cache the deterministic result.  Paper-scale matrices (gigabytes) stay
/// uncached to keep the peak footprint at one live copy.
inline const std::vector<float>& uniform_floats_cached(std::size_t count,
                                                       std::uint64_t seed) {
  constexpr std::size_t kCacheableFloats = std::size_t{1} << 26;  // 256 MiB
  static std::map<std::pair<std::size_t, std::uint64_t>, std::vector<float>>
      cache;
  static std::vector<float> scratch;
  if (count > kCacheableFloats) {
    scratch = uniform_floats(count, seed);
    return scratch;
  }
  const auto [it, fresh] = cache.try_emplace({count, seed});
  if (fresh) it->second = uniform_floats(count, seed);
  return it->second;
}

/// Uniform random reference-major distance matrix (the paper's synthetic
/// distances: k-selection is oblivious to how they were produced, §IV).
inline const std::vector<float>& matrix_ref_major(std::uint32_t q,
                                                 std::uint32_t n,
                                                 std::uint64_t seed) {
  return uniform_floats_cached(std::size_t{q} * n, seed);
}

/// Query-major variant for the warp-per-query baselines.
inline const std::vector<float>& matrix_query_major(std::uint32_t q,
                                                    std::uint32_t n,
                                                    std::uint64_t seed) {
  return uniform_floats_cached(std::size_t{q} * n,
                               seed ^ 0x9e3779b97f4a7c15ULL);
}

/// Runs the flat-scan kernel and converts to paper-scale modeled seconds.
inline RunResult run_flat(const Scale& scale, std::uint32_t n, std::uint32_t k,
                          const kernels::SelectConfig& cfg,
                          std::uint64_t seed = 1) {
  const auto& matrix = matrix_ref_major(scale.queries(), n, seed);
  simt::Device dev;
  scale.configure(dev);
  const auto out =
      kernels::flat_select(dev, matrix, scale.queries(), n, k, cfg);
  const auto cm = simt::c2075_model();
  return RunResult{cm.kernel_seconds_scaled(out.metrics, scale.factor()),
                   out.metrics};
}

/// Runs build + top-down search; seconds include construction (as the
/// paper's figures do).
inline RunResult run_hp(const Scale& scale, std::uint32_t n, std::uint32_t k,
                        const kernels::SelectConfig& cfg, std::uint32_t group,
                        std::uint64_t seed = 1) {
  const auto& matrix = matrix_ref_major(scale.queries(), n, seed);
  simt::Device dev;
  scale.configure(dev);
  const auto out =
      kernels::hp_select(dev, matrix, scale.queries(), n, k, cfg, group);
  const auto cm = simt::c2075_model();
  const double secs =
      cm.kernel_seconds_scaled(out.build_metrics, scale.factor()) +
      cm.kernel_seconds_scaled(out.metrics, scale.factor());
  return RunResult{secs, out.metrics + out.build_metrics};
}

/// Standard bench main body: parse flags, call `setup(scale)` to register
/// benchmarks, run them, then call `report(scale)` for the paper tables.
inline int bench_main(int argc, char** argv, const char* default_csv,
                      const std::function<void(const Scale&)>& setup,
                      const std::function<void(const Scale&)>& report) {
  CliFlags flags(argc, argv);
  Scale scale;
  try {
    scale = Scale::from_flags(flags, default_csv);
  } catch (const PreconditionError& e) {
    std::fprintf(stderr, "flag error: %s\n", e.what());
    return 2;
  }
  setup(scale);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  report(scale);
  scale.write_profile();
  return 0;
}

}  // namespace gpuksel::bench
