// Fig. 8 — Hierarchical Partition improvement vs N (k = 2^8, G in
// {2,4,6,8}), construction time included.
//
// Paper shape: improvement *increases* with N (more elements pruned); peaks
// ~8.94x (insertion), ~3.0x (heap), ~6.23x (merge) at N = 2^16; G = 4 best.
#include <iostream>

#include "bench/bench_common.hpp"

namespace {

using namespace gpuksel;
using namespace gpuksel::bench;
using kernels::QueueKind;
using kernels::SelectConfig;

constexpr std::uint32_t kK = 1 << 8;
constexpr std::uint32_t kGroups[] = {2, 4, 6, 8};

SelectConfig make_cfg(QueueKind queue) {
  SelectConfig cfg;
  cfg.queue = queue;
  cfg.aligned_merge = false;
  return cfg;
}

std::string flat_name(QueueKind queue, std::uint32_t n) {
  return std::string("fig8/") + std::string(kernels::queue_kind_name(queue)) +
         "/flat/n" + std::to_string(n);
}
std::string hp_name(QueueKind queue, std::uint32_t g, std::uint32_t n) {
  return std::string("fig8/") + std::string(kernels::queue_kind_name(queue)) +
         "/hp_g" + std::to_string(g) + "/n" + std::to_string(n);
}

void report(const Scale& scale) {
  auto& store = ResultStore::instance();
  const QueueKind queues[] = {QueueKind::kInsertion, QueueKind::kHeap,
                              QueueKind::kMerge};
  const char* paper_peaks[] = {"8.94x", "3.0x", "6.23x"};
  CsvWriter csv(scale.csv_path, {"queue", "log2n", "G", "improvement"});
  for (std::size_t qi = 0; qi < 3; ++qi) {
    const QueueKind queue = queues[qi];
    Table t(std::string("Fig 8") + static_cast<char>('a' + qi) + " — " +
                std::string(kernels::queue_kind_name(queue)) +
                " queue: HP improvement vs N (k=2^8, modeled)",
            {"log2(N)", "base (s)", "G=2", "G=4", "G=6", "G=8"});
    for (std::uint32_t logn = 13; logn <= 16; ++logn) {
      const std::uint32_t n = 1u << logn;
      const double base =
          store
              .get_or_run(flat_name(queue, n),
                          [&] { return run_flat(scale, n, kK, make_cfg(queue)); })
              .seconds;
      Table& row = t.begin_row().add_int(logn).add(format_seconds(base));
      for (const std::uint32_t g : kGroups) {
        const double hp =
            store
                .get_or_run(hp_name(queue, g, n),
                            [&] {
                              return run_hp(scale, n, kK, make_cfg(queue), g);
                            })
                .seconds;
        row.add(base / hp, 2);
        csv.write_row({std::string(kernels::queue_kind_name(queue)),
                       std::to_string(logn), std::to_string(g),
                       std::to_string(base / hp)});
      }
    }
    t.print(std::cout);
    std::cout << "Paper peak improvement (k=2^8): " << paper_peaks[qi]
              << "; improvement grows with N; G=4 near-best.\n\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  return bench_main(
      argc, argv, "fig8.csv",
      [](const Scale& scale) {
        for (QueueKind queue : {QueueKind::kInsertion, QueueKind::kHeap,
                                QueueKind::kMerge}) {
          for (std::uint32_t logn = 13; logn <= 16; ++logn) {
            const std::uint32_t n = 1u << logn;
            register_run(flat_name(queue, n), [=] {
              return run_flat(scale, n, kK, make_cfg(queue));
            });
            for (const std::uint32_t g : kGroups) {
              register_run(hp_name(queue, g, n), [=] {
                return run_hp(scale, n, kK, make_cfg(queue), g);
              });
            }
          }
        }
      },
      report);
}
