// Fig. 6 — Performance improvement of Buffered Search vs k (N = 2^15).
//
// For each queue type, the improvement of three buffering variants over the
// plain (unbuffered) kernel:
//   buffer      — per-thread buffer drained when *that thread's* buffer fills
//   full        — + Intra-Warp Communication (shared flag)
//   full+sorted — + Local Sort of the buffer before draining
//
// Paper shape (Fig. 6a-c): full >= buffer; sorting helps the insertion queue
// most; peak improvements ~5.4x (insertion), ~1.3x (heap), ~1.9x (merge),
// peaking near k = 2^8 and declining at k = 2^10.
#include <iostream>

#include "bench/bench_common.hpp"

namespace {

using namespace gpuksel;
using namespace gpuksel::bench;
using kernels::BufferMode;
using kernels::QueueKind;
using kernels::SelectConfig;

constexpr std::uint32_t kN = 1 << 15;

SelectConfig make_cfg(QueueKind queue, BufferMode mode) {
  SelectConfig cfg;
  cfg.queue = queue;
  cfg.buffer = mode;
  // Fig. 6 studies buffering on the *unoptimized* queues: the merge queue
  // runs unaligned here (Table I lists "Merge Queue aligned" separately).
  cfg.aligned_merge = false;
  return cfg;
}

std::string run_name(QueueKind queue, BufferMode mode, std::uint32_t k) {
  return std::string("fig6/") + std::string(kernels::queue_kind_name(queue)) +
         "/" + std::string(kernels::buffer_mode_name(mode)) + "/k" +
         std::to_string(k);
}

RunResult run(const Scale& scale, QueueKind queue, BufferMode mode,
              std::uint32_t k) {
  return ResultStore::instance().get_or_run(run_name(queue, mode, k), [&] {
    return run_flat(scale, kN, k, make_cfg(queue, mode));
  });
}

void report(const Scale& scale) {
  const QueueKind queues[] = {QueueKind::kInsertion, QueueKind::kHeap,
                              QueueKind::kMerge};
  // Paper peak improvements for the "full+sorted"-style best case.
  const char* paper_peaks[] = {"5.39x @ k=2^8", "1.28x @ k=2^8",
                               "1.85x @ k=2^8"};
  CsvWriter csv(scale.csv_path,
                {"queue", "log2k", "buffer", "full", "full_sorted"});
  for (std::size_t qi = 0; qi < 3; ++qi) {
    const QueueKind queue = queues[qi];
    Table t(std::string("Fig 6") + static_cast<char>('a' + qi) + " — " +
                std::string(kernels::queue_kind_name(queue)) +
                " queue: buffered-search improvement (N=2^15, modeled)",
            {"log2(k)", "base (s)", "buffer", "full", "full+sorted"});
    for (std::uint32_t logk = 5; logk <= 10; ++logk) {
      const std::uint32_t k = 1u << logk;
      const double base = run(scale, queue, BufferMode::kNone, k).seconds;
      const double b = run(scale, queue, BufferMode::kBufferOnly, k).seconds;
      const double f = run(scale, queue, BufferMode::kFull, k).seconds;
      const double fs = run(scale, queue, BufferMode::kFullSorted, k).seconds;
      t.begin_row()
          .add_int(logk)
          .add(format_seconds(base))
          .add(base / b, 2)
          .add(base / f, 2)
          .add(base / fs, 2);
      csv.write_row({std::string(kernels::queue_kind_name(queue)),
                     std::to_string(logk), std::to_string(base / b),
                     std::to_string(base / f), std::to_string(base / fs)});
    }
    t.print(std::cout);
    std::cout << "Paper peak: " << paper_peaks[qi]
              << "; full >= buffer, sorted best on insertion queue.\n\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  return bench_main(
      argc, argv, "fig6.csv",
      [](const Scale& scale) {
        for (QueueKind queue : {QueueKind::kInsertion, QueueKind::kHeap,
                                QueueKind::kMerge}) {
          for (BufferMode mode :
               {BufferMode::kNone, BufferMode::kBufferOnly, BufferMode::kFull,
                BufferMode::kFullSorted}) {
            for (std::uint32_t logk = 5; logk <= 10; ++logk) {
              const std::uint32_t k = 1u << logk;
              register_run(run_name(queue, mode, k), [=] {
                return run_flat(scale, kN, k, make_cfg(queue, mode));
              });
            }
          }
        }
      },
      report);
}
