// Fig. 9 — Overall improvement when Buffered Search and Hierarchical
// Partition are applied together ("buf+hp", buffer full+sorted bsize=16,
// G=4) over the plain flat-scan kernels.
//
//  (a) k in [2^5, 2^10] at N = 2^15;
//  (b) N in [2^13, 2^16] at k = 2^8.
//
// Paper shape: insertion queue peaks at 14.83x (k=2^8) and 16.89x (N=2^16);
// heap 1.25-3.57x; merge 3.25-7.49x.
#include <iostream>

#include "bench/bench_common.hpp"

namespace {

using namespace gpuksel;
using namespace gpuksel::bench;
using kernels::BufferMode;
using kernels::QueueKind;
using kernels::SelectConfig;

constexpr std::uint32_t kG = 4;

SelectConfig base_cfg(QueueKind queue) {
  SelectConfig cfg;
  cfg.queue = queue;
  cfg.aligned_merge = false;
  return cfg;
}

SelectConfig opt_cfg(QueueKind queue) {
  SelectConfig cfg = base_cfg(queue);
  cfg.buffer = BufferMode::kFullSorted;
  return cfg;
}

std::string name(QueueKind queue, const char* variant, std::uint32_t n,
                 std::uint32_t k) {
  return std::string("fig9/") + std::string(kernels::queue_kind_name(queue)) +
         "/" + variant + "/n" + std::to_string(n) + "/k" + std::to_string(k);
}

double improvement(const Scale& scale, QueueKind queue, std::uint32_t n,
                   std::uint32_t k) {
  auto& store = ResultStore::instance();
  const double base =
      store
          .get_or_run(name(queue, "base", n, k),
                      [&] { return run_flat(scale, n, k, base_cfg(queue)); })
          .seconds;
  const double opt =
      store
          .get_or_run(name(queue, "bufhp", n, k),
                      [&] { return run_hp(scale, n, k, opt_cfg(queue), kG); })
          .seconds;
  return base / opt;
}

void report(const Scale& scale) {
  const QueueKind queues[] = {QueueKind::kInsertion, QueueKind::kHeap,
                              QueueKind::kMerge};
  CsvWriter csv(scale.csv_path,
                {"panel", "x", "insertion", "heap", "merge"});

  Table ta("Fig 9a — overall improvement (buf+hp) vs k (N=2^15, modeled)",
           {"log2(k)", "insertion", "heap", "merge"});
  for (std::uint32_t logk = 5; logk <= 10; ++logk) {
    const std::uint32_t k = 1u << logk;
    Table& row = ta.begin_row().add_int(logk);
    std::vector<std::string> cells{"a", std::to_string(logk)};
    for (QueueKind queue : queues) {
      const double imp = improvement(scale, queue, 1u << 15, k);
      row.add(imp, 2);
      cells.push_back(std::to_string(imp));
    }
    csv.write_row(cells);
  }
  ta.print(std::cout);
  std::cout << "Paper: insertion peaks 14.83x @ k=2^8; heap 1.25-3.57x; "
               "merge 3.25-7.49x.\n\n";

  Table tb("Fig 9b — overall improvement (buf+hp) vs N (k=2^8, modeled)",
           {"log2(N)", "insertion", "heap", "merge"});
  for (std::uint32_t logn = 13; logn <= 16; ++logn) {
    const std::uint32_t n = 1u << logn;
    Table& row = tb.begin_row().add_int(logn);
    std::vector<std::string> cells{"b", std::to_string(logn)};
    for (QueueKind queue : queues) {
      const double imp = improvement(scale, queue, n, 1u << 8);
      row.add(imp, 2);
      cells.push_back(std::to_string(imp));
    }
    csv.write_row(cells);
  }
  tb.print(std::cout);
  std::cout << "Paper: insertion peaks 16.89x @ N=2^16; improvement grows "
               "with N for all queues.\n";
}

}  // namespace

int main(int argc, char** argv) {
  return bench_main(
      argc, argv, "fig9.csv",
      [](const Scale& scale) {
        for (QueueKind queue : {QueueKind::kInsertion, QueueKind::kHeap,
                                QueueKind::kMerge}) {
          for (std::uint32_t logk = 5; logk <= 10; ++logk) {
            const std::uint32_t k = 1u << logk;
            register_run(name(queue, "base", 1u << 15, k), [=] {
              return run_flat(scale, 1u << 15, k, base_cfg(queue));
            });
            register_run(name(queue, "bufhp", 1u << 15, k), [=] {
              return run_hp(scale, 1u << 15, k, opt_cfg(queue), kG);
            });
          }
          for (std::uint32_t logn = 13; logn <= 16; ++logn) {
            const std::uint32_t n = 1u << logn;
            if (n == (1u << 15)) continue;  // covered by the k sweep (k=2^8)
            register_run(name(queue, "base", n, 1u << 8), [=] {
              return run_flat(scale, n, 1u << 8, base_cfg(queue));
            });
            register_run(name(queue, "bufhp", n, 1u << 8), [=] {
              return run_hp(scale, n, 1u << 8, opt_cfg(queue), kG);
            });
          }
        }
      },
      report);
}
