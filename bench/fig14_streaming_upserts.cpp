// Fig. 14 (extension) — streaming upserts on a mutable reference set.
//
// A mixed workload over knn::MutableKnn: phases of 64 mutations (48 fresh
// inserts, 8 replaces, 8 removes) each followed by a Q-query serving batch,
// run twice with very different base sizes.  The phase table reports modeled
// queries/sec and the H2D bytes each phase spent, splitting out the
// delta-sync traffic; a forced compaction mid-stream folds the delta back
// into the base and the following phases show the index returning to
// pure-base serving speed.
//
// The headline invariant — the reason a delta shard exists at all — is that
// per-upsert upload bytes scale with the *delta*, never with the base row
// count: both runs execute the identical mutation schedule, so their
// delta-sync byte counts must be exactly equal even though the bases differ
// by 8x.  That equality, the exact transfer identity
//   delta_bytes_uploaded == 4 * (delta_rows_synced * dim +
//                                tombstone_words_synced),
// and the buffer pool's exactly-partitioning accounting are all checked here
// and re-checked by the CI gate on the JSON.
//
// No paper counterpart (the paper's reference sets are immutable); the
// mutable layer composes the paper's exact selection kernels with an
// LSM-style delta + tombstone mask (DESIGN.md §14).
//
// --mutable-json=<path> dumps the gpuksel.mutable_upserts.v1 JSON that
// scripts/bench_to_json.sh records as BENCH_mutable_upserts.json and the
// mutable-smoke CI job gates on.  Everything recorded is modeled/counted
// (never wall clock), so two runs at different --threads= must produce
// byte-identical files.
#include <bit>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.hpp"
#include "knn/batch.hpp"
#include "knn/dataset.hpp"
#include "knn/mutable.hpp"
#include "util/check.hpp"

namespace {

using namespace gpuksel;
using namespace gpuksel::bench;

constexpr std::uint32_t kSmallRows = 4096;
constexpr std::uint32_t kLargeRows = 32768;  // 8x: upsert bytes must not move
constexpr std::uint32_t kDim = 8;
constexpr std::uint32_t kK = 10;
constexpr std::uint32_t kTileRefs = 256;
constexpr std::uint32_t kPhases = 8;
constexpr std::uint32_t kOpsPerPhase = 64;
constexpr std::uint32_t kCompactPhase = 4;  ///< compact() before this search
constexpr std::uint64_t kSeed = 14;

std::string& mutable_json_path() {
  static std::string path;
  return path;
}

/// FNV-1a over the neighbor bits: a deterministic digest of every phase's
/// full answer, so the CI two-run byte-compare covers results, not just
/// counters.
std::uint64_t neighbors_digest(
    const std::vector<std::vector<Neighbor>>& lists) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (const auto& list : lists) {
    mix(list.size());
    for (const Neighbor& n : list) {
      mix(std::bit_cast<std::uint32_t>(n.dist));
      mix(n.index);
    }
  }
  return h;
}

struct PhasePoint {
  std::uint32_t phase = 0;
  std::uint32_t live_rows = 0;
  std::uint32_t delta_rows = 0;
  std::uint32_t tombstones = 0;
  std::uint64_t generation = 0;
  double seconds = 0.0;           ///< modeled serving seconds for the batch
  std::uint64_t bytes_h2d = 0;    ///< phase H2D total (queries + delta sync)
  std::uint64_t delta_bytes = 0;  ///< the delta-sync share of bytes_h2d
  std::uint64_t digest = 0;
  simt::KernelMetrics metrics;
};

struct RunData {
  std::uint32_t base_rows = 0;
  std::uint64_t base_upload_bytes = 0;  ///< one-time warm-up upload
  std::vector<PhasePoint> phases;
  knn::MutableStats stats;
  simt::PoolStats pool;
  double total_seconds = 0.0;
  simt::KernelMetrics total_metrics;
};

/// One deterministic mutation: 6-in-8 fresh insert, 1-in-8 replace of a live
/// id, 1-in-8 remove.  Identical op *counts* for every base size, which is
/// what makes the two runs' delta traffic exactly comparable.
void apply_ops(knn::MutableKnn& index, Rng& rng, std::vector<float>& row) {
  for (std::uint32_t op = 0; op < kOpsPerPhase; ++op) {
    for (auto& v : row) v = rng.uniform_float();
    const auto kind = op % 8;
    if (kind == 6) {
      const auto& ids = index.live_ids();
      index.upsert(ids[rng.uniform_below(ids.size())], row);
    } else if (kind == 7) {
      const auto& ids = index.live_ids();
      GPUKSEL_CHECK(index.remove(ids[rng.uniform_below(ids.size())]),
                    "a live id must be removable");
    } else {
      (void)index.insert(row);
    }
  }
}

RunData run_stream(const Scale& scale, std::uint32_t base_rows,
                   const knn::Dataset& queries, bool check_differential) {
  knn::MutableKnnOptions mopts;
  mopts.batch.batch.tile_refs = kTileRefs;
  knn::MutableKnn index(knn::make_uniform_dataset(base_rows, kDim, kSeed),
                        mopts);
  simt::Device dev;
  scale.configure(dev);

  RunData run;
  run.base_rows = base_rows;
  // Warm-up batch: the one-time base upload happens here so the phase
  // numbers show steady-state serving traffic only.
  (void)index.search(dev, queries, kK);
  run.base_upload_bytes = dev.transfers().bytes_h2d;

  Rng rng(0x14f);
  std::vector<float> row(kDim);
  std::vector<std::vector<Neighbor>> last;
  for (std::uint32_t phase = 0; phase < kPhases; ++phase) {
    apply_ops(index, rng, row);
    if (phase == kCompactPhase) {
      GPUKSEL_CHECK(index.compact(), "mid-stream compaction must adopt");
    }
    const std::uint64_t h2d_before = dev.transfers().bytes_h2d;
    const std::uint64_t delta_before = index.stats().delta_bytes_uploaded;
    knn::KnnResult res = index.search(dev, queries, kK);
    PhasePoint pt;
    pt.phase = phase;
    pt.live_rows = index.live_rows();
    pt.delta_rows = index.delta_rows();
    pt.tombstones = index.tombstones();
    pt.generation = index.generation();
    pt.seconds = res.modeled_seconds;
    pt.bytes_h2d = dev.transfers().bytes_h2d - h2d_before;
    pt.delta_bytes = index.stats().delta_bytes_uploaded - delta_before;
    pt.digest = neighbors_digest(res.neighbors);
    pt.metrics = res.distance_metrics;
    pt.metrics += res.select_metrics;
    run.total_seconds += pt.seconds;
    run.total_metrics += pt.metrics;
    run.phases.push_back(pt);
    last = std::move(res.neighbors);
  }

  run.stats = index.stats();
  run.pool = dev.pool().stats();
  // The transfer identity: every delta byte is a synced row or mask word.
  GPUKSEL_CHECK(run.stats.delta_bytes_uploaded ==
                    4 * (run.stats.delta_rows_synced * kDim +
                         run.stats.tombstone_words_synced),
                "delta transfer identity violated");
  // The pool's exactly-partitioning accounting contract.
  GPUKSEL_CHECK(run.pool.bytes_requested ==
                    run.pool.bytes_served_from_pool +
                        run.pool.bytes_freshly_allocated,
                "pool accounting does not partition");
  if (check_differential) {
    // The differential contract at bench scale: the final streamed answer
    // is byte-identical to a fresh engine over the logically-current rows.
    simt::Device fresh_dev;
    scale.configure(fresh_dev);
    knn::BatchedKnn fresh(index.materialize(), mopts.batch);
    GPUKSEL_CHECK(fresh.search_gpu(fresh_dev, queries, kK).neighbors == last,
                  "streamed answer diverged from a fresh rebuild");
  }
  return run;
}

struct Fig14State {
  knn::Dataset queries;
  RunData small;
  RunData large;
};

Fig14State& state(const Scale& scale) {
  static std::unique_ptr<Fig14State> st;
  if (st != nullptr) return *st;
  st = std::make_unique<Fig14State>();
  st->queries = knn::make_uniform_dataset(scale.queries(), kDim, kSeed + 1);
  st->small = run_stream(scale, kSmallRows, st->queries,
                         /*check_differential=*/true);
  st->large = run_stream(scale, kLargeRows, st->queries,
                         /*check_differential=*/false);
  // The delta-scaling law: identical mutation schedule => identical delta
  // traffic, no matter that the bases differ by 8x.
  GPUKSEL_CHECK(st->small.stats.delta_bytes_uploaded ==
                    st->large.stats.delta_bytes_uploaded,
                "per-upsert bytes must scale with the delta, not the base");
  return *st;
}

void write_pool(std::ostream& os, const simt::PoolStats& p) {
  os << "{\"bytes_requested\": " << p.bytes_requested
     << ", \"bytes_served_from_pool\": " << p.bytes_served_from_pool
     << ", \"bytes_freshly_allocated\": " << p.bytes_freshly_allocated
     << ", \"blocks_acquired\": " << p.blocks_acquired
     << ", \"blocks_reused\": " << p.blocks_reused
     << ", \"blocks_released\": " << p.blocks_released
     << ", \"blocks_trimmed\": " << p.blocks_trimmed
     << ", \"bytes_resident\": " << p.bytes_resident << "}";
}

void write_run(std::ostream& os, const RunData& run, const Scale& scale) {
  os << "{\"rows\": " << run.base_rows
     << ", \"base_upload_bytes\": " << run.base_upload_bytes
     << ",\n     \"stats\": {\"upserts\": " << run.stats.upserts
     << ", \"removes\": " << run.stats.removes
     << ", \"compactions\": " << run.stats.compactions
     << ", \"generation\": " << run.stats.generation
     << ", \"delta_bytes_uploaded\": " << run.stats.delta_bytes_uploaded
     << ", \"delta_rows_synced\": " << run.stats.delta_rows_synced
     << ", \"tombstone_words_synced\": " << run.stats.tombstone_words_synced
     << "},\n     \"pool\": ";
  write_pool(os, run.pool);
  os << ",\n     \"total_modeled_seconds\": " << run.total_seconds
     << ",\n     \"phases\": [";
  const char* sep = "";
  for (const PhasePoint& pt : run.phases) {
    os << sep << "\n       {\"phase\": " << pt.phase
       << ", \"live_rows\": " << pt.live_rows
       << ", \"delta_rows\": " << pt.delta_rows
       << ", \"tombstones\": " << pt.tombstones
       << ", \"generation\": " << pt.generation
       << ", \"modeled_seconds\": " << pt.seconds
       << ", \"queries_per_second\": " << scale.queries() / pt.seconds
       << ", \"bytes_h2d\": " << pt.bytes_h2d
       << ", \"delta_bytes\": " << pt.delta_bytes
       << ", \"digest\": " << pt.digest << "}";
    sep = ",";
  }
  os << "\n     ]}";
}

void write_mutable_json(const Scale& scale, const std::string& path) {
  Fig14State& st = state(scale);
  std::ofstream os(path);
  GPUKSEL_CHECK(os.is_open(), "cannot open mutable json file: " + path);
  os.precision(17);
  os << "{\n  \"schema\": \"gpuksel.mutable_upserts.v1\",\n"
     << "  \"dim\": " << kDim << ",\n  \"k\": " << kK << ",\n"
     << "  \"queries\": " << scale.queries() << ",\n"
     << "  \"phases\": " << kPhases << ",\n"
     << "  \"ops_per_phase\": " << kOpsPerPhase << ",\n"
     << "  \"compact_phase\": " << kCompactPhase << ",\n"
     << "  \"runs\": [\n    ";
  write_run(os, st.small, scale);
  os << ",\n    ";
  write_run(os, st.large, scale);
  os << "\n  ],\n  \"delta_scaling\": {\"small_delta_bytes\": "
     << st.small.stats.delta_bytes_uploaded
     << ", \"large_delta_bytes\": " << st.large.stats.delta_bytes_uploaded
     << ", \"bytes_per_delta_row\": " << kDim * 4 << "}\n}\n";
}

void report(const Scale& scale) {
  Fig14State& st = state(scale);
  Table t("Fig 14 — streaming upserts (N=" + std::to_string(kLargeRows) +
              ", k=" + std::to_string(kK) + ", Q=" +
              std::to_string(scale.queries()) + ", 64 ops/phase, modeled)",
          {"phase", "live rows", "delta", "dead", "gen", "time (us)",
           "queries/s", "phase h2d B", "delta B"});
  CsvWriter csv(scale.csv_path,
                {"phase", "live_rows", "delta_rows", "tombstones",
                 "generation", "modeled_seconds", "queries_per_second",
                 "bytes_h2d", "delta_bytes"});
  for (const PhasePoint& pt : st.large.phases) {
    const double qps = scale.queries() / pt.seconds;
    t.begin_row()
        .add_int(pt.phase)
        .add_int(pt.live_rows)
        .add_int(pt.delta_rows)
        .add_int(pt.tombstones)
        .add_int(static_cast<long long>(pt.generation))
        .add(pt.seconds * 1e6, 1)
        .add(qps, 1)
        .add_int(static_cast<long long>(pt.bytes_h2d))
        .add_int(static_cast<long long>(pt.delta_bytes));
    csv.write_row({std::to_string(pt.phase), std::to_string(pt.live_rows),
                   std::to_string(pt.delta_rows),
                   std::to_string(pt.tombstones),
                   std::to_string(pt.generation), std::to_string(pt.seconds),
                   std::to_string(qps), std::to_string(pt.bytes_h2d),
                   std::to_string(pt.delta_bytes)});
  }
  t.print(std::cout);
  std::cout << "Delta traffic at N=" << kSmallRows << " and N=" << kLargeRows
            << ": " << st.small.stats.delta_bytes_uploaded << " B == "
            << st.large.stats.delta_bytes_uploaded
            << " B (per-upsert bytes scale with the delta, not the base)."
            << "\nPhase " << kCompactPhase
            << " follows a compaction: the delta folds into the base and "
               "serving\nreturns to single-source speed.  The final answer "
               "is byte-identical to a fresh\nrebuild (checked).\n\n";
  if (!mutable_json_path().empty()) {
    write_mutable_json(scale, mutable_json_path());
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Read the fig14-specific flag without consuming anything: bench_main's
  // CliFlags strips every --key=value before handing argv to
  // google-benchmark.
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (const std::string prefix = "--mutable-json=";
        arg.rfind(prefix, 0) == 0) {
      mutable_json_path() = arg.substr(prefix.size());
    }
  }
  return bench_main(
      argc, argv, "fig14.csv",
      [](const Scale& scale) {
        register_run("fig14/stream_small", [scale] {
          const RunData& run = state(scale).small;
          return RunResult{run.total_seconds, run.total_metrics};
        });
        register_run("fig14/stream_large", [scale] {
          const RunData& run = state(scale).large;
          return RunResult{run.total_seconds, run.total_metrics};
        });
      },
      report);
}
