// Table I — execution time (seconds) of k-selection algorithms.
//
// Reproduces every row of the paper's Table I:
//   * Distance Calculation on GPU (tiled distance kernel, modeled seconds)
//   * Data Copy (PCIe model over the actual matrix bytes)
//   * CPU 1 / CPU 16 (std-library heap + OpenMP, measured wall-clock scaled
//     to Q = 2^13 queries; this host has 1 core, so CPU 16 is thread-limited)
//   * GPU-based original: Insertion / Heap / Merge (unaligned) / Merge aligned
//   * GPU-based optimized: each queue + buf+hp, Merge aligned+buf+hp
//   * State of the art: Truncated Bitonic Sort, Quick Multi-Select
// over the paper's two sweeps: k in [2^5, 2^10] at N = 2^15 and
// N in [2^13, 2^16] at k = 2^8.  The published numbers are printed in a
// second table for side-by-side comparison.
#include <omp.h>

#include <cmath>
#include <iostream>
#include <optional>

#include "baselines/cpu_select.hpp"
#include "baselines/qms.hpp"
#include "baselines/tbs.hpp"
#include "bench/bench_common.hpp"
#include "core/kernels/pipeline.hpp"
#include "knn/dataset.hpp"
#include "util/timer.hpp"

namespace {

using namespace gpuksel;
using namespace gpuksel::bench;
using kernels::BufferMode;
using kernels::QueueKind;
using kernels::SelectConfig;

constexpr std::uint32_t kDim = 128;

struct Column {
  std::uint32_t n;
  std::uint32_t k;
  std::string label;
};

std::vector<Column> columns() {
  std::vector<Column> cols;
  for (std::uint32_t logk = 5; logk <= 10; ++logk) {
    cols.push_back({1u << 15, 1u << logk, "k=2^" + std::to_string(logk)});
  }
  for (std::uint32_t logn = 13; logn <= 16; ++logn) {
    cols.push_back({1u << logn, 1u << 8, "N=2^" + std::to_string(logn)});
  }
  return cols;
}

SelectConfig cfg_of(QueueKind queue, bool aligned, bool buffered) {
  SelectConfig cfg;
  cfg.queue = queue;
  cfg.aligned_merge = aligned;
  cfg.buffer = buffered ? BufferMode::kFullSorted : BufferMode::kNone;
  return cfg;
}

// --- row runners (each returns modeled/measured seconds at paper scale) ------

RunResult run_distance(const Scale& scale, std::uint32_t n) {
  // The distance kernel is perfectly regular, so one warp sampled and scaled
  // to Q = 2^13 is exact.
  const std::uint32_t q = simt::kWarpSize;
  const auto queries = knn::make_uniform_dataset(q, kDim, 5);
  const auto refs = knn::make_uniform_dataset(n, kDim, 6);
  simt::Device dev;
  scale.configure(dev);
  const auto out = kernels::gpu_distance_matrix(
      dev, knn::to_dim_major(queries), refs.values, q, n, kDim);
  const auto cm = simt::c2075_model();
  const double sc = static_cast<double>(kPaperQueries) / q;
  return RunResult{cm.kernel_seconds_scaled(out.metrics, sc), out.metrics};
}

RunResult run_data_copy(std::uint32_t n) {
  const auto cm = simt::c2075_model();
  const std::uint64_t bytes =
      std::uint64_t{kPaperQueries} * n * sizeof(float);
  return RunResult{cm.transfer_seconds(bytes), {}};
}

RunResult run_cpu(const Scale& scale, std::uint32_t n, std::uint32_t k,
                  int threads) {
  const auto& matrix = matrix_query_major(scale.queries(), n, 9);
  WallTimer timer;
  const auto result =
      baselines::cpu_select_all(matrix, scale.queries(), n, k, threads);
  const double measured = timer.seconds();
  benchmark::DoNotOptimize(result.front().front().dist);
  return RunResult{measured * scale.factor(), {}};
}

RunResult run_tbs(const Scale& scale, std::uint32_t n, std::uint32_t k) {
  const auto& matrix = matrix_query_major(scale.queries(), n, 10);
  simt::Device dev;
  scale.configure(dev);
  const auto out =
      baselines::tbs_select(dev, matrix, scale.queries(), n, k);
  const auto cm = simt::c2075_model();
  return RunResult{cm.kernel_seconds_scaled(out.metrics, scale.factor()),
                   out.metrics};
}

RunResult run_qms(const Scale& scale, std::uint32_t n, std::uint32_t k) {
  const auto& matrix = matrix_query_major(scale.queries(), n, 11);
  simt::Device dev;
  scale.configure(dev);
  const auto out =
      baselines::qms_select(dev, matrix, scale.queries(), n, k);
  const auto cm = simt::c2075_model();
  return RunResult{cm.kernel_seconds_scaled(out.metrics, scale.factor()),
                   out.metrics};
}

struct Row {
  std::string label;
  // Returns seconds, or nullopt for "-" (unsupported, like TBS at k=2^10).
  std::function<std::optional<double>(const Scale&, const Column&)> run;
};

std::vector<Row> rows() {
  auto sel = [](QueueKind queue, bool aligned, bool buffered, bool hp) {
    return [=](const Scale& scale, const Column& c) -> std::optional<double> {
      const auto cfg = cfg_of(queue, aligned, buffered);
      const RunResult r = hp ? run_hp(scale, c.n, c.k, cfg, 4)
                             : run_flat(scale, c.n, c.k, cfg);
      return r.seconds;
    };
  };
  return {
      {"Distance Calculation on GPU",
       [](const Scale& s, const Column& c) -> std::optional<double> {
         return run_distance(s, c.n).seconds;
       }},
      {"Data Copy",
       [](const Scale&, const Column& c) -> std::optional<double> {
         return run_data_copy(c.n).seconds;
       }},
      {"CPU 1",
       [](const Scale& s, const Column& c) -> std::optional<double> {
         return run_cpu(s, c.n, c.k, 1).seconds;
       }},
      {"CPU 16",
       [](const Scale& s, const Column& c) -> std::optional<double> {
         return run_cpu(s, c.n, c.k, 16).seconds;
       }},
      {"Insertion Queue", sel(QueueKind::kInsertion, false, false, false)},
      {"Heap Queue", sel(QueueKind::kHeap, false, false, false)},
      {"Merge Queue", sel(QueueKind::kMerge, false, false, false)},
      {"Merge Queue aligned", sel(QueueKind::kMerge, true, false, false)},
      {"Insertion Queue buf+hp", sel(QueueKind::kInsertion, false, true, true)},
      {"Heap Queue buf+hp", sel(QueueKind::kHeap, false, true, true)},
      {"Merge Queue buf+hp", sel(QueueKind::kMerge, false, true, true)},
      {"Merge Queue aligned+buf+hp", sel(QueueKind::kMerge, true, true, true)},
      {"Truncated Bitonic Sort",
       [](const Scale& s, const Column& c) -> std::optional<double> {
         if (c.k > baselines::kTbsMaxK) return std::nullopt;  // as published
         return run_tbs(s, c.n, c.k).seconds;
       }},
      {"Quick Multi-Select",
       [](const Scale& s, const Column& c) -> std::optional<double> {
         return run_qms(s, c.n, c.k).seconds;
       }},
  };
}

/// The paper's published Table I, for side-by-side comparison ("-" where the
/// paper has no value).
const char* kPaperTable[][10] = {
    {"0.14", "0.14", "0.14", "0.14", "0.14", "0.14", "0.03", "0.07", "0.14", "0.28"},
    {"0.46", "0.46", "0.46", "0.46", "0.46", "0.46", "0.13", "0.25", "0.49", "0.99"},
    {"0.34", "0.46", "0.68", "1.1", "1.9", "3.45", "0.72", "0.87", "1.08", "1.43"},
    {"0.03", "0.05", "0.07", "0.2", "0.19", "0.42", "0.06", "0.07", "0.08", "0.11"},
    {"0.12", "0.37", "1.16", "3.56", "10.44", "29.03", "1.83", "2.62", "3.53", "4.56"},
    {"0.05", "0.09", "0.19", "0.41", "0.85", "1.71", "0.27", "0.33", "0.4", "0.48"},
    {"0.13", "0.33", "0.89", "2.24", "5.29", "11.57", "1.49", "1.85", "2.22", "2.62"},
    {"0.07", "0.1", "0.16", "0.29", "0.57", "1.1", "0.18", "0.23", "0.29", "0.38"},
    {"0.04", "0.05", "0.1", "0.24", "0.71", "2.58", "0.2", "0.21", "0.24", "0.27"},
    {"0.04", "0.05", "0.08", "0.15", "0.31", "0.74", "0.11", "0.12", "0.15", "0.17"},
    {"0.04", "0.07", "0.13", "0.39", "0.82", "2.77", "0.35", "0.29", "0.4", "0.35"},
    {"0.04", "0.05", "0.08", "0.14", "0.27", "0.58", "0.1", "0.11", "0.14", "0.17"},
    {"0.30", "0.36", "0.44", "0.53", "0.64", "-", "0.13", "0.26", "0.53", "1.04"},
    {"-", "0.21", "0.22", "0.22", "0.23", "-", "0.15", "0.18", "0.22", "0.30"},
};

std::string bench_name(const std::string& row, const Column& c) {
  std::string name = "table1/" + row + "/" + c.label;
  for (auto& ch : name) {
    if (ch == ' ') ch = '_';
    if (ch == '^') ch = 'e';
  }
  return name;
}

void report(const Scale& scale) {
  auto& store = ResultStore::instance();
  const auto cols = columns();
  const auto all_rows = rows();

  std::vector<std::string> headers{"Algorithm"};
  for (const auto& c : cols) headers.push_back(c.label);

  Table ours("Table I (modeled, this reproduction; Q=2^13, seconds)", headers);
  CsvWriter csv(scale.csv_path, headers);
  for (const auto& row : all_rows) {
    Table& r = ours.begin_row().add(row.label);
    std::vector<std::string> cells{row.label};
    for (const auto& c : cols) {
      const std::string name = bench_name(row.label, c);
      double secs = -1.0;
      bool supported = true;
      const RunResult res = store.get_or_run(name, [&] {
        const auto v = row.run(scale, c);
        if (!v) {
          supported = false;
          return RunResult{};
        }
        return RunResult{*v, {}};
      });
      secs = res.seconds;
      // Unsupported configurations (e.g. TBS beyond k=512) memoize as 0.
      if (!supported || secs <= 0.0) {
        r.add("-");
        cells.push_back("-");
      } else {
        r.add(format_seconds(secs));
        cells.push_back(format_seconds(secs));
      }
    }
    csv.write_row(cells);
  }
  ours.print(std::cout);

  Table paper("Table I (paper, NVIDIA Tesla C2075, seconds)", headers);
  for (std::size_t i = 0; i < all_rows.size(); ++i) {
    Table& r = paper.begin_row().add(all_rows[i].label);
    for (std::size_t j = 0; j < cols.size(); ++j) r.add(kPaperTable[i][j]);
  }
  paper.print(std::cout);

  std::cout
      << "\nShape checks (see EXPERIMENTS.md): k-selection dominates distance\n"
         "calculation at large k; Data Copy overshadows CPU-side selection;\n"
         "aligned merge ~an order of magnitude under unaligned; the optimized\n"
         "merge queue (aligned+buf+hp) is the best GPU variant at large k.\n"
      << "CPU rows are measured on this host (1 core) and scaled to Q=2^13;\n"
         "CPU 16 is thread-count-limited here.\n";
}

}  // namespace

int main(int argc, char** argv) {
  return bench_main(
      argc, argv, "table1.csv",
      [](const Scale& scale) {
        const auto cols = columns();
        for (const auto& row : rows()) {
          for (const auto& c : cols) {
            register_run(bench_name(row.label, c),
                         [&scale, run = row.run, c]() {
                           const auto v = run(scale, c);
                           return RunResult{v.value_or(0.0), {}};
                         });
          }
        }
      },
      report);
}
