// Fig. 13 (extension) — IVF recall vs queries/sec at 10^5 reference rows.
//
// The pruned index's operating curve: one IvfKnn over N = 100k gaussian-
// clustered rows (64 clusters, sigma wide enough that clusters overlap and
// nprobe = 1 misses real neighbors), swept over nprobe.  Each point reports
// measured recall@k against the exact full-scan answer and modeled
// queries/sec; nprobe == nlist closes the curve at recall 1.0 and the bench
// asserts that endpoint byte-identical to BatchedKnn — the exactness
// contract at bench scale.
//
// No paper counterpart (the paper's selection is exact); the shape to expect
// is the classic IVFFlat recall/throughput tradeoff of Johnson et al., with
// the qps gain saturating near nlist/nprobe while recall climbs to 1.
//
// Task compaction needs full warps to pay off: the scan groups (query,
// probe) tasks by list, 32 per warp, so modeled speedup requires
// Q * nprobe / nlist >= 32 tasks per list.  The CI operating point runs
// --warps=8 (Q = 256); smaller Q still sweeps correctly but under-fills the
// scan warps and understates qps.
//
// --ivf-json=<path> dumps the gpuksel.ivf_recall.v1 JSON (curve + operating
// point) that scripts/bench_to_json.sh records as BENCH_ivf_recall.json and
// the ivf-smoke CI job gates on.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.hpp"
#include "knn/batch.hpp"
#include "knn/dataset.hpp"
#include "knn/distance.hpp"
#include "knn/ivf.hpp"
#include "knn/rbc.hpp"
#include "util/check.hpp"

namespace {

using namespace gpuksel;
using namespace gpuksel::bench;

constexpr std::uint32_t kN = 100000;  // reference rows (the ISSUE's 10^5)
constexpr std::uint32_t kDim = 8;
constexpr std::uint32_t kK = 10;
constexpr std::uint32_t kNlist = 64;
constexpr std::uint32_t kClusters = 64;
constexpr float kSigma = 0.25f;
constexpr std::uint32_t kTileRefs = 256;
constexpr std::uint64_t kSeed = 7;
/// The recorded operating point the CI recall/speedup gate reads.
constexpr std::uint32_t kOperatingNprobe = 8;

std::string& ivf_json_path() {
  static std::string path;
  return path;
}

std::vector<std::uint32_t> probe_widths() {
  return {1u, 2u, 4u, 8u, 16u, 32u, kNlist};
}

struct CurvePoint {
  std::uint32_t nprobe = 0;
  double recall = 0.0;
  double seconds = 0.0;       ///< modeled pruned-search seconds for the batch
  double avg_scanned = 0.0;   ///< mean probed rows per query
  simt::KernelMetrics metrics;
};

/// Everything the sweep shares: one dataset, one exact baseline, one trained
/// index (the per-nprobe searches reuse the device-resident structures).
struct Fig13State {
  knn::Dataset refs;
  knn::Dataset queries;
  simt::Device flat_device;
  simt::Device ivf_device;
  std::unique_ptr<knn::BatchedKnn> flat;
  std::unique_ptr<knn::IvfKnn> ivf;
  std::vector<std::vector<Neighbor>> exact;
  double baseline_seconds = 0.0;
  simt::KernelMetrics baseline_metrics;
  double train_seconds = 0.0;
  std::map<std::uint32_t, CurvePoint> curve;
};

/// Mean rows a query's nprobe closest lists hold (observability: the scan
/// fraction behind each speedup number).  Probe selection mirrors the
/// kernel's (distance, list id) ordering.
double avg_scanned_rows(const knn::IvfIndex& idx, const knn::Dataset& queries,
                        std::uint32_t nprobe) {
  std::vector<std::pair<float, std::uint32_t>> cents(idx.nlist);
  double total = 0.0;
  for (std::uint32_t q = 0; q < queries.count; ++q) {
    for (std::uint32_t c = 0; c < idx.nlist; ++c) {
      cents[c] = {knn::squared_euclidean(
                      queries.row(q),
                      idx.centroids.data() + std::size_t{c} * idx.dim,
                      idx.dim),
                  c};
    }
    std::sort(cents.begin(), cents.end());
    for (std::uint32_t j = 0; j < nprobe && j < idx.nlist; ++j) {
      const std::uint32_t l = cents[j].second;
      total += idx.list_begin[l + 1] - idx.list_begin[l];
    }
  }
  return queries.count > 0 ? total / queries.count : 0.0;
}

Fig13State& state(const Scale& scale) {
  static std::unique_ptr<Fig13State> st;
  if (st != nullptr) return *st;
  st = std::make_unique<Fig13State>();
  // One clustered draw split into references and queries, so queries live in
  // the same (overlapping) clusters the lists partition.
  const knn::LabelledDataset data = knn::make_gaussian_clusters(
      kN + scale.queries(), kDim, kClusters, kSigma, kSeed);
  st->refs.count = kN;
  st->refs.dim = kDim;
  st->refs.values.assign(
      data.points.values.begin(),
      data.points.values.begin() + std::size_t{kN} * kDim);
  st->queries.count = scale.queries();
  st->queries.dim = kDim;
  st->queries.values.assign(
      data.points.values.begin() + std::size_t{kN} * kDim,
      data.points.values.end());

  scale.configure(st->flat_device);
  scale.configure(st->ivf_device);

  knn::BatchedKnnOptions bopts;
  bopts.batch.tile_refs = kTileRefs;
  st->flat = std::make_unique<knn::BatchedKnn>(st->refs, bopts);
  knn::KnnResult exact =
      st->flat->search_gpu(st->flat_device, st->queries, kK);
  st->exact = std::move(exact.neighbors);
  st->baseline_seconds = exact.modeled_seconds;
  st->baseline_metrics = exact.distance_metrics;
  st->baseline_metrics += exact.select_metrics;

  knn::IvfOptions iopts;
  iopts.params.nlist = kNlist;
  iopts.params.nprobe = kOperatingNprobe;
  iopts.batch.batch.tile_refs = kTileRefs;
  st->ivf = std::make_unique<knn::IvfKnn>(st->refs, iopts);
  st->ivf->train(st->ivf_device);
  st->train_seconds = iopts.batch.cost_model.kernel_seconds(
      st->ivf->index().train_metrics);
  return *st;
}

const CurvePoint& point(const Scale& scale, std::uint32_t nprobe) {
  Fig13State& st = state(scale);
  if (const auto it = st.curve.find(nprobe); it != st.curve.end()) {
    return it->second;
  }
  st.ivf->set_nprobe(nprobe);
  knn::KnnResult res = st.ivf->search_gpu(st.ivf_device, st.queries, kK);
  CurvePoint pt;
  pt.nprobe = nprobe;
  pt.recall = knn::RandomBallCover::recall(res.neighbors, st.exact);
  pt.seconds = res.modeled_seconds;
  pt.avg_scanned = avg_scanned_rows(st.ivf->index(), st.queries, nprobe);
  pt.metrics = res.distance_metrics;
  pt.metrics += res.select_metrics;
  if (nprobe == kNlist) {
    // The exactness contract, asserted where the curve is recorded: probing
    // every list must reproduce the full scan byte for byte.
    GPUKSEL_CHECK(res.neighbors == st.exact,
                  "nprobe == nlist diverged from the exact full scan");
    GPUKSEL_CHECK(pt.recall == 1.0, "full-probe recall must be exactly 1");
  }
  return st.curve.emplace(nprobe, std::move(pt)).first->second;
}

void write_ivf_json(const Scale& scale, const std::string& path) {
  Fig13State& st = state(scale);
  std::ofstream os(path);
  GPUKSEL_CHECK(os.is_open(), "cannot open ivf json file: " + path);
  os.precision(17);
  const double base_qps = scale.queries() / st.baseline_seconds;
  const CurvePoint& op = point(scale, kOperatingNprobe);
  os << "{\n  \"schema\": \"gpuksel.ivf_recall.v1\",\n"
     << "  \"rows\": " << kN << ",\n  \"dim\": " << kDim << ",\n"
     << "  \"queries\": " << scale.queries() << ",\n  \"k\": " << kK << ",\n"
     << "  \"nlist\": " << kNlist << ",\n  \"clusters\": " << kClusters
     << ",\n  \"sigma\": " << kSigma << ",\n"
     << "  \"train_modeled_seconds\": " << st.train_seconds << ",\n"
     << "  \"baseline\": {\"modeled_seconds\": " << st.baseline_seconds
     << ", \"queries_per_second\": " << base_qps << "},\n"
     << "  \"operating_point\": {\"nprobe\": " << op.nprobe
     << ", \"recall\": " << op.recall
     << ", \"queries_per_second\": " << scale.queries() / op.seconds
     << ", \"speedup_vs_full_scan\": " << st.baseline_seconds / op.seconds
     << "},\n  \"curve\": [";
  const char* sep = "";
  for (const std::uint32_t nprobe : probe_widths()) {
    const CurvePoint& pt = point(scale, nprobe);
    os << sep << "\n    {\"nprobe\": " << pt.nprobe
       << ", \"recall\": " << pt.recall
       << ", \"modeled_seconds\": " << pt.seconds
       << ", \"queries_per_second\": " << scale.queries() / pt.seconds
       << ", \"speedup_vs_full_scan\": " << st.baseline_seconds / pt.seconds
       << ", \"avg_scanned_rows\": " << pt.avg_scanned << "}";
    sep = ",";
  }
  os << "\n  ]\n}\n";
}

void report(const Scale& scale) {
  Fig13State& st = state(scale);
  Table t("Fig 13 — IVF recall vs qps (N=" + std::to_string(kN) +
              ", k=" + std::to_string(kK) + ", nlist=" +
              std::to_string(kNlist) + ", Q=" +
              std::to_string(scale.queries()) + ", modeled)",
          {"nprobe", "recall@10", "time (us)", "queries/s", "vs full scan",
           "scanned rows"});
  CsvWriter csv(scale.csv_path,
                {"nprobe", "recall", "modeled_seconds", "queries_per_second",
                 "speedup_vs_full_scan", "avg_scanned_rows"});
  for (const std::uint32_t nprobe : probe_widths()) {
    const CurvePoint& pt = point(scale, nprobe);
    const double qps = scale.queries() / pt.seconds;
    t.begin_row()
        .add_int(nprobe)
        .add(pt.recall, 3)
        .add(pt.seconds * 1e6, 1)
        .add(qps, 1)
        .add(st.baseline_seconds / pt.seconds, 2)
        .add(pt.avg_scanned, 0);
    csv.write_row({std::to_string(nprobe), std::to_string(pt.recall),
                   std::to_string(pt.seconds), std::to_string(qps),
                   std::to_string(st.baseline_seconds / pt.seconds),
                   std::to_string(pt.avg_scanned)});
  }
  t.print(std::cout);
  std::cout << "Full scan: " << st.baseline_seconds * 1e6
            << " us modeled; training (device assignment pass): "
            << st.train_seconds * 1e6
            << " us.\nnprobe == nlist is byte-identical to the full scan "
               "(checked); smaller nprobe rides\nthe recall/qps curve.\n\n";
  if (!ivf_json_path().empty()) write_ivf_json(scale, ivf_json_path());
}

}  // namespace

int main(int argc, char** argv) {
  // Read the fig13-specific flag without consuming anything: bench_main's
  // CliFlags strips every --key=value before handing argv to
  // google-benchmark.
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (const std::string prefix = "--ivf-json=";
        arg.rfind(prefix, 0) == 0) {
      ivf_json_path() = arg.substr(prefix.size());
    }
  }
  return bench_main(
      argc, argv, "fig13.csv",
      [](const Scale& scale) {
        register_run("fig13/full_scan", [scale] {
          const Fig13State& st = state(scale);
          return RunResult{st.baseline_seconds, st.baseline_metrics};
        });
        for (const std::uint32_t nprobe : probe_widths()) {
          register_run("fig13/nprobe" + std::to_string(nprobe),
                       [scale, nprobe] {
                         const CurvePoint& pt = point(scale, nprobe);
                         return RunResult{pt.seconds, pt.metrics};
                       });
        }
      },
      report);
}
