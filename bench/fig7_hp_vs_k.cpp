// Fig. 7 — Hierarchical Partition improvement vs k (N = 2^15, G in
// {2,4,6,8}).  Improvement = plain flat-scan time / (HP build + search) time,
// per queue type.  Construction time is included, as in the paper.
//
// Paper shape: improvement decreases as k grows (more candidates survive each
// level); peaks ~7.4x (insertion), ~3.4x (heap), ~5.7x (merge); G = 4 is the
// best overall trade-off.
#include <iostream>

#include "bench/bench_common.hpp"

namespace {

using namespace gpuksel;
using namespace gpuksel::bench;
using kernels::QueueKind;
using kernels::SelectConfig;

constexpr std::uint32_t kN = 1 << 15;
constexpr std::uint32_t kGroups[] = {2, 4, 6, 8};

SelectConfig make_cfg(QueueKind queue) {
  SelectConfig cfg;
  cfg.queue = queue;
  cfg.aligned_merge = false;  // plain queues, as in Fig. 6/7/8
  return cfg;
}

std::string flat_name(QueueKind queue, std::uint32_t k) {
  return std::string("fig7/") + std::string(kernels::queue_kind_name(queue)) +
         "/flat/k" + std::to_string(k);
}
std::string hp_name(QueueKind queue, std::uint32_t g, std::uint32_t k) {
  return std::string("fig7/") + std::string(kernels::queue_kind_name(queue)) +
         "/hp_g" + std::to_string(g) + "/k" + std::to_string(k);
}

void report(const Scale& scale) {
  auto& store = ResultStore::instance();
  const QueueKind queues[] = {QueueKind::kInsertion, QueueKind::kHeap,
                              QueueKind::kMerge};
  const char* paper_peaks[] = {"7.4x", "3.4x", "5.69x"};
  CsvWriter csv(scale.csv_path, {"queue", "log2k", "G", "improvement"});
  for (std::size_t qi = 0; qi < 3; ++qi) {
    const QueueKind queue = queues[qi];
    Table t(std::string("Fig 7") + static_cast<char>('a' + qi) + " — " +
                std::string(kernels::queue_kind_name(queue)) +
                " queue: HP improvement vs k (N=2^15, modeled)",
            {"log2(k)", "base (s)", "G=2", "G=4", "G=6", "G=8"});
    for (std::uint32_t logk = 5; logk <= 10; ++logk) {
      const std::uint32_t k = 1u << logk;
      const double base =
          store
              .get_or_run(flat_name(queue, k),
                          [&] { return run_flat(scale, kN, k, make_cfg(queue)); })
              .seconds;
      Table& row = t.begin_row().add_int(logk).add(format_seconds(base));
      for (const std::uint32_t g : kGroups) {
        const double hp =
            store
                .get_or_run(hp_name(queue, g, k),
                            [&] {
                              return run_hp(scale, kN, k, make_cfg(queue), g);
                            })
                .seconds;
        row.add(base / hp, 2);
        csv.write_row({std::string(kernels::queue_kind_name(queue)),
                       std::to_string(logk), std::to_string(g),
                       std::to_string(base / hp)});
      }
    }
    t.print(std::cout);
    std::cout << "Paper peak improvement (N=2^15): " << paper_peaks[qi]
              << "; improvement declines as k grows; G=4 near-best.\n\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  return bench_main(
      argc, argv, "fig7.csv",
      [](const Scale& scale) {
        for (QueueKind queue : {QueueKind::kInsertion, QueueKind::kHeap,
                                QueueKind::kMerge}) {
          for (std::uint32_t logk = 5; logk <= 10; ++logk) {
            const std::uint32_t k = 1u << logk;
            register_run(flat_name(queue, k), [=] {
              return run_flat(scale, kN, k, make_cfg(queue));
            });
            for (const std::uint32_t g : kGroups) {
              register_run(hp_name(queue, g, k), [=] {
                return run_hp(scale, kN, k, make_cfg(queue), g);
              });
            }
          }
        }
      },
      report);
}
