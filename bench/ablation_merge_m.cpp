// Ablation — Merge Queue first-level size m (the paper fixes m = 8 "since we
// find that experimentally this configuration can maximize its performance").
// Sweeps m for the aligned merge queue at N = 2^15 over several k.
//
// Expected shape: tiny m triggers merges too often (flat insert is too small
// to absorb bursts); huge m degenerates toward an insertion queue (O(m)
// shifts per insert); the sweet spot sits in the middle.
#include <iostream>

#include "bench/bench_common.hpp"

namespace {

using namespace gpuksel;
using namespace gpuksel::bench;
using kernels::QueueKind;
using kernels::SelectConfig;

constexpr std::uint32_t kN = 1 << 15;
constexpr std::uint32_t kMs[] = {1, 2, 4, 8, 16, 32};

std::string name(std::uint32_t m, std::uint32_t k) {
  return "ablation_merge_m/m" + std::to_string(m) + "/k" + std::to_string(k);
}

SelectConfig cfg_m(std::uint32_t m) {
  SelectConfig cfg;
  cfg.queue = QueueKind::kMerge;
  cfg.aligned_merge = true;
  cfg.merge_m = m;
  return cfg;
}

void report(const Scale& scale) {
  auto& store = ResultStore::instance();
  Table t("Ablation — merge queue level size m (aligned, N=2^15, modeled s)",
          {"log2(k)", "m=1", "m=2", "m=4", "m=8", "m=16", "m=32"});
  CsvWriter csv(scale.csv_path, {"log2k", "m", "seconds"});
  for (std::uint32_t logk = 6; logk <= 10; logk += 2) {
    const std::uint32_t k = 1u << logk;
    Table& row = t.begin_row().add_int(logk);
    for (const std::uint32_t m : kMs) {
      const double secs =
          store
              .get_or_run(name(m, k),
                          [&] { return run_flat(scale, kN, k, cfg_m(m)); })
              .seconds;
      row.add(format_seconds(secs));
      csv.write_row({std::to_string(logk), std::to_string(m),
                     std::to_string(secs)});
    }
  }
  t.print(std::cout);
  std::cout << "Paper: m = 8 maximises merge-queue performance.\n";
}

}  // namespace

int main(int argc, char** argv) {
  return bench_main(
      argc, argv, "ablation_merge_m.csv",
      [](const Scale& scale) {
        for (std::uint32_t logk = 6; logk <= 10; logk += 2) {
          const std::uint32_t k = 1u << logk;
          for (const std::uint32_t m : kMs) {
            register_run(name(m, k),
                         [=] { return run_flat(scale, kN, k, cfg_m(m)); });
          }
        }
      },
      report);
}
