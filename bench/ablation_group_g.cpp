// Ablation — Hierarchical Partition group size G, including the memory
// overhead the paper quotes ("G = 4 ... only costs N/3 extra memory for each
// query but its performance improvement is the best in most cases").
#include <iostream>

#include "bench/bench_common.hpp"
#include "core/kernels/hp_kernels.hpp"

namespace {

using namespace gpuksel;
using namespace gpuksel::bench;
using kernels::QueueKind;
using kernels::SelectConfig;

constexpr std::uint32_t kN = 1 << 15;
constexpr std::uint32_t kK = 1 << 8;
constexpr std::uint32_t kGroups[] = {2, 3, 4, 6, 8, 12, 16};

std::string name(std::uint32_t g) {
  return "ablation_group_g/g" + std::to_string(g);
}

SelectConfig cfg() {
  SelectConfig c;
  c.queue = QueueKind::kMerge;
  c.aligned_merge = true;
  return c;
}

void report(const Scale& scale) {
  auto& store = ResultStore::instance();
  const double base =
      store.get_or_run("ablation_group_g/flat",
                       [&] { return run_flat(scale, kN, kK, cfg()); })
          .seconds;
  Table t("Ablation — HP group size G (merge aligned, k=2^8, N=2^15)",
          {"G", "build+search (s)", "improvement", "extra mem (xN)"});
  CsvWriter csv(scale.csv_path,
                {"G", "seconds", "improvement", "extra_mem_fraction"});
  for (const std::uint32_t g : kGroups) {
    const double secs =
        store.get_or_run(name(g), [&] { return run_hp(scale, kN, kK, cfg(), g); })
            .seconds;
    const double extra =
        static_cast<double>(kernels::hp_extra_elements(kN, g, kK)) / kN;
    t.begin_row()
        .add_int(g)
        .add(format_seconds(secs))
        .add(base / secs, 2)
        .add(extra, 3);
    csv.write_row({std::to_string(g), std::to_string(secs),
                   std::to_string(base / secs), std::to_string(extra)});
  }
  t.print(std::cout);
  std::cout << "Paper: small G costs more memory (G=2 -> ~1.0xN); larger G "
               "cheapens memory but the improvement diminishes; G=4 (~N/3) "
               "is the default.\n";
}

}  // namespace

int main(int argc, char** argv) {
  return bench_main(
      argc, argv, "ablation_group_g.csv",
      [](const Scale& scale) {
        register_run("ablation_group_g/flat",
                     [=] { return run_flat(scale, kN, kK, cfg()); });
        for (const std::uint32_t g : kGroups) {
          register_run(name(g), [=] { return run_hp(scale, kN, kK, cfg(), g); });
        }
      },
      report);
}
