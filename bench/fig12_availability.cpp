// Fig. 12 (extension) — Serving availability vs injected fault rate.
//
// A fixed request stream (R requests of Q queries each) is served through
// ShardedKnn while shard 0's device carries a persistent fault injector at
// varying intensity (the `period` knob: one fault roughly every `period`
// eligible accesses; 0 = fault-free).  Each intensity runs twice: with the
// health state machine ("quarantine") and with the stateless PR 5 policy
// ("no-quarantine", retry + host recompute on every faulted request).
//
// Availability is modeled, not wall clock: a request is *available* when its
// modeled latency stays within kBudgetFactor x the worst fault-free request
// latency (a deadline-style SLO).  Without quarantine every faulted request
// pays two doomed GPU attempts plus the host recompute (~3.5 clean attempts)
// and blows the budget; with quarantine only the request that trips the
// threshold pays full price — quarantined requests cost the host-recompute
// penalty alone and probes one attempt more, both within budget.  Expected
// shape: availability >= 99% with quarantine at every rate, while without it
// the sparse rate merely leaks the odd slow request but the persistent rate
// collapses both availability and queries/sec.
//
// Everything is deterministic: the injector is a pure function of
// (seed, warp, access ordinal) with an unlimited budget (parallel-safe), the
// health machine runs on the request clock, and latencies are modeled — so
// reruns (and different --threads) produce byte-identical CSVs, which the
// bench_to_json.sh determinism gate byte-compares.
//
// No paper counterpart (the paper is single-GPU, fault-free); the scenario
// is the multi-device serving regime of Johnson et al. under device faults.
//
// --health-json=<path> additionally dumps the gpuksel.shards.v1 report of
// the quarantine run at the heaviest fault rate (health-section partition
// checks in CI consume it).
#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "knn/dataset.hpp"
#include "serve/sharded_knn.hpp"
#include "simt/fault_injection.hpp"
#include "util/check.hpp"

namespace {

using namespace gpuksel;
using namespace gpuksel::bench;

constexpr std::uint32_t kN = 256;   // references (4 shards x 64 rows)
constexpr std::uint32_t kDim = 8;
constexpr std::uint32_t kK = 8;
constexpr std::uint32_t kShards = 4;
constexpr std::uint32_t kTileRefs = 32;
constexpr std::uint32_t kQueriesPerRequest = 16;
constexpr std::uint32_t kRequests = 128;
constexpr std::uint32_t kFaultyShard = 0;
/// SLO: a request is available within this multiple of the worst fault-free
/// request latency.  Sits above the quarantined host-serve (~2x) and probe
/// (~2.5x) costs and below the doomed-retry fault path (~3.5x).
constexpr double kBudgetFactor = 3.0;

/// Injector periods (fault intensity knob); 0 = fault-free baseline.  Each
/// request gets its own injector seed, so the per-request fault probability
/// is ~accesses/period (~940 eligible accesses per shard-0 attempt here):
/// the large period faults a rare request (sparse transient faults), the
/// small one faults every request (persistent fault).
std::vector<std::uint64_t> fault_periods() { return {180000u, 64u}; }

std::string& health_json_path() {
  static std::string path;
  return path;
}

struct AvailabilityConfig {
  bool quarantine = true;
  std::uint64_t period = 0;  ///< 0 = no injector

  [[nodiscard]] std::string mode() const {
    if (period == 0) return "none";
    return quarantine ? "quarantine" : "no-quarantine";
  }
  [[nodiscard]] std::string key() const {
    return mode() + "/p" + std::to_string(period);
  }
};

struct AvailabilityRun {
  std::vector<double> latencies;  ///< per-request modeled seconds
  std::uint32_t faulted_requests = 0;
  std::uint32_t degraded_requests = 0;
  std::uint64_t quarantine_entries = 0;
  std::uint64_t quarantine_exits = 0;
  std::uint64_t probe_successes = 0;
  std::uint64_t probe_failures = 0;
  simt::KernelMetrics metrics;  ///< useful + wasted shard work + merges
  std::string report;           ///< gpuksel.shards.v1 JSON

  [[nodiscard]] double total_seconds() const {
    double sum = 0.0;
    for (const double s : latencies) sum += s;
    return sum;
  }
  [[nodiscard]] double qps() const {
    const double total = total_seconds();
    return total > 0.0
               ? kRequests * static_cast<double>(kQueriesPerRequest) / total
               : 0.0;
  }
  [[nodiscard]] double max_latency() const {
    return latencies.empty()
               ? 0.0
               : *std::max_element(latencies.begin(), latencies.end());
  }
  [[nodiscard]] double availability(double budget_seconds) const {
    std::size_t ok = 0;
    for (const double s : latencies) ok += s <= budget_seconds ? 1 : 0;
    return latencies.empty()
               ? 1.0
               : static_cast<double>(ok) / static_cast<double>(latencies.size());
  }
};

std::map<std::string, AvailabilityRun>& runs() {
  static std::map<std::string, AvailabilityRun> store;
  return store;
}

AvailabilityRun run_availability(const Scale& scale,
                                 const AvailabilityConfig& cfg) {
  const auto refs = knn::make_uniform_dataset(kN, kDim, 1);

  serve::ShardedKnnOptions opts;
  opts.num_shards = kShards;
  opts.batch.batch.tile_refs = kTileRefs;
  opts.worker_threads = scale.threads;
  opts.degraded_host_penalty = 2.0;
  opts.health.enabled = cfg.quarantine;
  // Aggressive quarantine: one faulted request in the window trips it, so
  // under a persistent fault only the first request pays the full fault tax.
  opts.health.window = 2;
  opts.health.suspect_faults = 1;
  opts.health.quarantine_faults = 1;
  opts.health.probe_interval = 4;
  opts.health.probe_successes = 2;
  serve::ShardedKnn engine(refs, opts);
  if (scale.profiler != nullptr) engine.attach_profilers();

  AvailabilityRun run;
  run.latencies.reserve(kRequests);
  std::optional<simt::FaultInjector> injector;
  for (std::uint32_t r = 0; r < kRequests; ++r) {
    // Fresh injector seed per request: the fault decision is a pure hash of
    // (seed, warp, access ordinal), so a shared seed would fault every
    // identically-shaped request the same way and the period knob would
    // saturate.  Per-request seeds turn the period into a genuine rate.
    // Unlimited budget keeps the injector parallel-safe: results (and the
    // modeled availability) are bit-identical for any --threads.
    if (cfg.period != 0) {
      injector.emplace(simt::InjectorConfig{
          simt::InjectKind::kOobIndex, /*seed=*/5 + 7919ull * r, cfg.period,
          /*max_faults=*/0, /*kernel_filter=*/"batch_tile_score"});
      engine.shard(kFaultyShard).device().set_fault_injector(&*injector);
    }
    const auto queries =
        knn::make_uniform_dataset(kQueriesPerRequest, kDim, 100 + r);
    const auto res = engine.search(queries, kK);
    run.latencies.push_back(res.modeled_seconds);
    bool faulted = false;
    for (const serve::ShardStats& st : res.shards) {
      faulted = faulted || !st.faults.empty();
      run.metrics += st.metrics;
      run.metrics += st.wasted_metrics;
    }
    run.metrics += res.merge_metrics;
    run.faulted_requests += faulted ? 1 : 0;
    run.degraded_requests += res.degraded ? 1 : 0;
  }
  if (scale.profiler != nullptr) {
    engine.drain_profiles(*scale.profiler, cfg.key() + "/");
  }
  const serve::HealthCounters& hc =
      engine.shard(kFaultyShard).health().counters();
  run.quarantine_entries = hc.quarantine_entries;
  run.quarantine_exits = hc.quarantine_exits;
  run.probe_successes = hc.probe_successes;
  run.probe_failures = hc.probe_failures;
  std::ostringstream report;
  engine.write_shard_report(report);
  run.report = report.str();
  return run;
}

const AvailabilityRun& run(const Scale& scale, const AvailabilityConfig& cfg) {
  auto& store = runs();
  const std::string key = cfg.key();
  if (const auto it = store.find(key); it != store.end()) return it->second;
  return store.emplace(key, run_availability(scale, cfg)).first->second;
}

std::vector<AvailabilityConfig> configs() {
  std::vector<AvailabilityConfig> out;
  out.push_back(AvailabilityConfig{true, 0});  // fault-free baseline
  for (const std::uint64_t period : fault_periods()) {
    out.push_back(AvailabilityConfig{false, period});
    out.push_back(AvailabilityConfig{true, period});
  }
  return out;
}

void report(const Scale& scale) {
  const AvailabilityRun& baseline = run(scale, AvailabilityConfig{true, 0});
  const double budget =
      kBudgetFactor *
      *std::max_element(baseline.latencies.begin(), baseline.latencies.end());

  Table t("Fig 12 — availability under injected faults (N=" +
              std::to_string(kN) + ", k=" + std::to_string(kK) + ", Q=" +
              std::to_string(kQueriesPerRequest) + " x " +
              std::to_string(kRequests) + " requests, modeled, SLO=" +
              std::to_string(kBudgetFactor) + "x fault-free)",
          {"mode", "period", "fault req", "avail", "degraded", "queries/s",
           "quarantines"});
  CsvWriter csv(scale.csv_path,
                {"mode", "fault_period", "request_fault_rate", "availability",
                 "degraded_fraction", "queries_per_second",
                 "quarantine_entries", "quarantine_exits", "probe_successes",
                 "probe_failures", "mean_latency_seconds",
                 "max_latency_seconds"});
  for (const AvailabilityConfig& cfg : configs()) {
    const AvailabilityRun& r = run(scale, cfg);
    const double fault_rate =
        static_cast<double>(r.faulted_requests) / kRequests;
    const double degraded =
        static_cast<double>(r.degraded_requests) / kRequests;
    const double avail = r.availability(budget);
    t.begin_row()
        .add(cfg.mode())
        .add_int(static_cast<long long>(cfg.period))
        .add(fault_rate, 3)
        .add(avail, 3)
        .add(degraded, 3)
        .add(r.qps(), 1)
        .add_int(static_cast<long long>(r.quarantine_entries));
    csv.write_row({cfg.mode(), std::to_string(cfg.period),
                   std::to_string(fault_rate), std::to_string(avail),
                   std::to_string(degraded), std::to_string(r.qps()),
                   std::to_string(r.quarantine_entries),
                   std::to_string(r.quarantine_exits),
                   std::to_string(r.probe_successes),
                   std::to_string(r.probe_failures),
                   std::to_string(r.total_seconds() / kRequests),
                   std::to_string(r.max_latency())});
  }
  t.print(std::cout);
  std::cout << "Without quarantine every faulted request pays two doomed GPU "
               "attempts plus the host\nrecompute; with the health machine "
               "only the tripping request does — later ones are host-\n"
               "served (no retry tax) and periodic probes decide "
               "re-admission.\n\n";
  if (!health_json_path().empty()) {
    std::ofstream os(health_json_path());
    GPUKSEL_CHECK(os.is_open(),
                  "cannot open health report file: " + health_json_path());
    os << run(scale, AvailabilityConfig{true, fault_periods().back()}).report;
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Read the fig12-specific flag without consuming anything: bench_main's
  // CliFlags strips every --key=value before handing argv to
  // google-benchmark.
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (const std::string prefix = "--health-json=";
        arg.rfind(prefix, 0) == 0) {
      health_json_path() = arg.substr(prefix.size());
    }
  }
  return bench_main(
      argc, argv, "fig12.csv",
      [](const Scale& scale) {
        for (const AvailabilityConfig& cfg : configs()) {
          register_run("fig12/" + cfg.key(), [scale, cfg] {
            const AvailabilityRun& r = run(scale, cfg);
            return RunResult{r.total_seconds(), r.metrics};
          });
        }
      },
      report);
}
