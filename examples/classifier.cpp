// k-NN classification — the statistical-classification use case from the
// paper's introduction.
//
//   build/examples/classifier
//
// Trains nothing (k-NN is lazy): labelled points are drawn from a Gaussian
// mixture, a held-out test set is classified by majority vote over the k
// nearest neighbours found with the library, and accuracy is reported for a
// sweep of k.  Host and simulated-GPU searches are cross-checked.
#include <cstdio>
#include <map>
#include <vector>

#include "knn/knn.hpp"

namespace {

using namespace gpuksel;

std::uint32_t majority_vote(const std::vector<Neighbor>& nns,
                            const std::vector<std::uint32_t>& labels) {
  std::map<std::uint32_t, int> votes;
  for (const Neighbor& n : nns) ++votes[labels[n.index]];
  std::uint32_t best = 0;
  int best_votes = -1;
  for (const auto& [label, count] : votes) {
    if (count > best_votes) {
      best = label;
      best_votes = count;
    }
  }
  return best;
}

}  // namespace

int main() {
  constexpr std::uint32_t kDim = 16;
  constexpr std::uint32_t kClusters = 5;
  constexpr float kSigma = 0.08f;

  // One draw from the mixture, split into train and held-out test so both
  // share the same cluster means.
  const auto all = knn::make_gaussian_clusters(2256, kDim, kClusters, kSigma,
                                               21);
  knn::LabelledDataset train, test;
  train.points.dim = test.points.dim = kDim;
  train.points.count = 2000;
  test.points.count = 256;
  train.points.values.assign(all.points.values.begin(),
                             all.points.values.begin() + 2000 * kDim);
  test.points.values.assign(all.points.values.begin() + 2000 * kDim,
                            all.points.values.end());
  train.labels.assign(all.labels.begin(), all.labels.begin() + 2000);
  test.labels.assign(all.labels.begin() + 2000, all.labels.end());
  const knn::BruteForceKnn index(train.points);

  std::printf("train: %u points, test: %u points, %u clusters, sigma %.2f\n",
              train.points.count, test.points.count, kClusters,
              static_cast<double>(kSigma));
  std::printf("%4s  %9s  %9s\n", "k", "host acc", "gpu acc");

  double best_gpu = 0.0;
  for (const std::uint32_t k : {1u, 3u, 7u, 15u, 31u}) {
    const auto host = index.search(test.points, k);
    simt::Device dev;
    const auto gpu = index.search_gpu(dev, test.points, k);

    std::uint32_t host_correct = 0, gpu_correct = 0;
    for (std::uint32_t i = 0; i < test.points.count; ++i) {
      if (majority_vote(host.neighbors[i], train.labels) == test.labels[i]) {
        ++host_correct;
      }
      if (majority_vote(gpu.neighbors[i], train.labels) == test.labels[i]) {
        ++gpu_correct;
      }
    }
    const double host_acc = 100.0 * host_correct / test.points.count;
    const double gpu_acc = 100.0 * gpu_correct / test.points.count;
    best_gpu = std::max(best_gpu, gpu_acc);
    std::printf("%4u  %8.1f%%  %8.1f%%\n", k, host_acc, gpu_acc);
  }

  // Well-separated clusters: accuracy should be high, and host/GPU agree.
  return best_gpu > 90.0 ? 0 : 1;
}
