// Quickstart: the library in ~60 lines.
//
//   build/examples/quickstart
//
// Generates the paper's synthetic workload at laptop scale (random 128-d
// tuples in [0,1]), runs brute-force k-NN on the host and on the simulated
// GPU with the paper's optimized pipeline (Merge Queue, aligned, Buffered
// Search, Hierarchical Partition), checks they agree, and prints the SIMT
// metrics the paper's evaluation is built on.
#include <cstdio>

#include "knn/knn.hpp"

int main() {
  using namespace gpuksel;

  // A reference database and a batch of queries, 128-d uniform tuples.
  const auto refs = knn::make_uniform_dataset(/*count=*/2048, /*dim=*/128,
                                              /*seed=*/1);
  const auto queries = knn::make_uniform_dataset(/*count=*/64, /*dim=*/128,
                                                 /*seed=*/2);
  const std::uint32_t k = 8;

  const knn::BruteForceKnn index(refs);

  // Host path: distance matrix + scalar Merge Queue selection.
  const auto host = index.search(queries, k, Algo::kMergeQueue);

  // Simulated-GPU path: distance kernel + aligned Merge Queue with Buffered
  // Search over a Hierarchical Partition (the paper's best configuration).
  simt::Device dev;
  knn::GpuSearchOptions opts;
  opts.select.queue = kernels::QueueKind::kMerge;
  opts.select.aligned_merge = true;
  opts.select.buffer = kernels::BufferMode::kFullSorted;
  opts.use_hierarchical_partition = true;
  opts.hp_group = 4;
  const auto gpu = index.search_gpu(dev, queries, k, opts);

  std::size_t mismatches = 0;
  for (std::size_t q = 0; q < host.neighbors.size(); ++q) {
    for (std::size_t j = 0; j < k; ++j) {
      if (gpu.neighbors[q][j].index != host.neighbors[q][j].index) {
        ++mismatches;
      }
    }
  }

  std::printf("query 0, %u nearest neighbours (index : squared distance):\n",
              k);
  for (const Neighbor& n : gpu.neighbors[0]) {
    std::printf("  %6u : %.4f\n", n.index, static_cast<double>(n.dist));
  }
  std::printf("\nhost vs simulated-GPU mismatches: %zu (expect 0)\n",
              mismatches);
  std::printf("distance kernel : %llu instr, SIMT efficiency %.3f\n",
              static_cast<unsigned long long>(
                  gpu.distance_metrics.instructions),
              gpu.distance_metrics.simt_efficiency());
  std::printf("selection       : %llu instr, SIMT efficiency %.3f\n",
              static_cast<unsigned long long>(gpu.select_metrics.instructions),
              gpu.select_metrics.simt_efficiency());
  std::printf("modeled GPU time: %.6f s (C2075 cost model)\n",
              gpu.modeled_seconds);
  return mismatches == 0 ? 0 : 1;
}
