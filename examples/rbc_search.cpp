// Random Ball Cover — approximate k-NN built on the selection library.
//
//   build/examples/rbc_search
//
// Cayton's Random Ball Cover [8 in the paper] is one of the GPU k-NN systems
// whose k-selection stage motivated the paper (its odd-even-sort selection
// capped k at 32).  Rebuilt on this library's exact selection it has no such
// cap.  The example sweeps the probe count and reports the recall/speed
// trade-off against exact brute force, including k > 32.
#include <cmath>
#include <cstdio>

#include "knn/knn.hpp"
#include "knn/rbc.hpp"
#include "util/timer.hpp"

int main() {
  using namespace gpuksel;

  const std::uint32_t n = 8192, dim = 16, q = 128, k = 64;  // note k > 32
  const auto points = knn::make_uniform_dataset(n, dim, 31);
  const auto queries = knn::make_uniform_dataset(q, dim, 32);

  // Exact ground truth.
  const knn::BruteForceKnn exact(points);
  WallTimer exact_timer;
  const auto truth = exact.search(queries, k).neighbors;
  const double exact_s = exact_timer.seconds();

  // RBC with ~sqrt(N) representatives, probing more and more balls.
  const auto reps = static_cast<std::uint32_t>(std::sqrt(double(n)) * 2);
  const knn::RandomBallCover rbc(points, reps, 33);

  std::printf("N=%u dim=%u Q=%u k=%u, %u representatives\n", n, dim, q, k,
              rbc.representatives());
  std::printf("exact brute force: %.1f ms\n\n", exact_s * 1e3);
  std::printf("%6s  %8s  %10s  %8s\n", "probe", "recall", "time (ms)",
              "speedup");

  double best_recall = 0.0;
  for (const std::uint32_t probe :
       {1u, 2u, 4u, 8u, 16u, 32u, 64u, rbc.representatives()}) {
    WallTimer timer;
    const auto approx = rbc.query_batch(queries, k, probe);
    const double secs = timer.seconds();
    const double recall = knn::RandomBallCover::recall(approx, truth);
    best_recall = std::max(best_recall, recall);
    std::printf("%6u  %7.1f%%  %10.1f  %7.1fx\n", probe, 100.0 * recall,
                secs * 1e3, exact_s / secs);
  }
  // Probing every ball is exact, so full-probe recall must be 1.
  return best_recall >= 0.999 ? 0 : 1;
}
