// SIMT simulator playground — the substrate as a standalone tool.
//
//   build/examples/simt_playground
//
// Three miniature kernels show how the simulator quantifies the GPU effects
// the paper's techniques target:
//   1. a uniform loop vs a divergent loop (SIMT efficiency),
//   2. coalesced vs strided global loads (memory transactions),
//   3. a shared-memory access pattern with bank conflicts.
#include <cstdio>
#include <numeric>

#include "simt/cost_model.hpp"
#include "simt/device.hpp"

int main() {
  using namespace gpuksel::simt;
  Device dev;

  // 1. Divergence: every lane runs `lane_id + 1` iterations of the same loop
  //    versus all lanes running 32.
  const auto uniform = dev.launch(1, [](WarpContext& ctx, std::uint32_t) {
    for (int i = 0; i < kWarpSize; ++i) ctx.issue(kFullMask);
  });
  const auto divergent = dev.launch(1, [](WarpContext& ctx, std::uint32_t) {
    U32 remaining = U32::iota(1u);  // lane i wants i+1 iterations
    LaneMask active = kFullMask;
    while (active) {
      ctx.issue(active);
      remaining = ctx.add(active, remaining, static_cast<std::uint32_t>(-1));
      active = ctx.pred(active, [&](int l) { return remaining[l] > 0; });
    }
  });
  std::printf("1) divergence\n");
  std::printf("   uniform loop  : %llu instr, efficiency %.3f\n",
              static_cast<unsigned long long>(uniform.instructions),
              uniform.simt_efficiency());
  std::printf("   divergent loop: %llu instr, efficiency %.3f\n\n",
              static_cast<unsigned long long>(divergent.instructions),
              divergent.simt_efficiency());

  // 2. Coalescing: 32 consecutive floats vs a stride-32 gather.
  DeviceBuffer<float> buf(32 * 32);
  std::iota(buf.host().begin(), buf.host().end(), 0.0f);
  const auto coalesced = dev.launch(1, [&](WarpContext& ctx, std::uint32_t) {
    (void)ctx.load(kFullMask, buf.cspan(), U32::iota());
  });
  const auto strided = dev.launch(1, [&](WarpContext& ctx, std::uint32_t) {
    (void)ctx.load(kFullMask, buf.cspan(), U32::iota(0u, 32u));
  });
  std::printf("2) coalescing\n");
  std::printf("   consecutive : %llu transaction(s) per warp load\n",
              static_cast<unsigned long long>(coalesced.global_load_tx));
  std::printf("   stride 32   : %llu transaction(s) per warp load\n\n",
              static_cast<unsigned long long>(strided.global_load_tx));

  // 3. Shared-memory bank conflicts: conflict-free iota vs a 2-way pattern.
  const auto banks = dev.launch(1, [](WarpContext& ctx, std::uint32_t) {
    SharedArray<float> s(ctx, 64);
    (void)s.read(kFullMask, U32::iota());  // conflict-free
    U32 two_way;
    for (int l = 0; l < kWarpSize; ++l) {
      two_way[l] = static_cast<std::uint32_t>(l < 16 ? 32 + l : l - 16);
    }
    (void)s.read(kFullMask, two_way);  // 2-way conflict
  });
  std::printf("3) shared memory\n");
  std::printf("   requests %llu, conflict replays %llu\n\n",
              static_cast<unsigned long long>(banks.shared_requests),
              static_cast<unsigned long long>(banks.shared_conflict_replays));

  // Cost model: what one second of issue or bandwidth looks like.
  const CostModel cm = c2075_model();
  std::printf("C2075 model: %.1f Ginstr/s issue, %.0f GB/s DRAM, "
              "%.2f GB/s PCIe\n",
              cm.issue_rate() / 1e9, cm.dram_bandwidth / 1e9,
              cm.pcie_bandwidth / 1e9);
  return 0;
}
