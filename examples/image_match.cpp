// Image feature matching — the workload that motivates the paper's
// introduction (pairwise matching for 3D reconstruction, Agarwal et al.).
//
//   build/examples/image_match
//
// Two synthetic "images" share a set of scene features: image B contains a
// noisy copy of each of image A's SIFT-like 128-d descriptors plus a field
// of distractors.  For each descriptor of A we find its 2 nearest neighbours
// in B on the simulated GPU and apply Lowe's ratio test; ground truth is
// known by construction, so the example reports precision and recall.
#include <cmath>
#include <cstdio>
#include <vector>

#include "knn/knn.hpp"
#include "util/rng.hpp"

namespace {

using namespace gpuksel;

constexpr std::uint32_t kDim = 128;
constexpr std::uint32_t kShared = 256;       // true correspondences
constexpr std::uint32_t kDistractors = 1536; // unrelated features in B
constexpr float kNoise = 0.02f;
constexpr float kRatio = 0.8f;               // Lowe's ratio threshold

knn::Dataset noisy_copy(const knn::Dataset& src, float sigma,
                        std::uint64_t seed) {
  knn::Dataset out = src;
  Rng rng(seed);
  for (auto& v : out.values) {
    const float u1 = std::max(rng.uniform_float(), 1e-7f);
    const float u2 = rng.uniform_float();
    v += sigma * std::sqrt(-2.0f * std::log(u1)) *
         std::cos(6.28318530718f * u2);
  }
  return out;
}

}  // namespace

int main() {
  // Image A: the query descriptors.
  const auto image_a = knn::make_uniform_dataset(kShared, kDim, 11);

  // Image B: noisy copies of A's features (indices 0..kShared-1) followed by
  // distractors.
  knn::Dataset image_b = noisy_copy(image_a, kNoise, 12);
  const auto distractors = knn::make_uniform_dataset(kDistractors, kDim, 13);
  image_b.values.insert(image_b.values.end(), distractors.values.begin(),
                        distractors.values.end());
  image_b.count += kDistractors;

  const knn::BruteForceKnn index(image_b);
  simt::Device dev;
  knn::GpuSearchOptions opts;  // defaults: merge queue + buf + hp
  opts.select.buffer = kernels::BufferMode::kFullSorted;
  const auto result = index.search_gpu(dev, image_a, /*k=*/2, opts);

  std::uint32_t accepted = 0, correct = 0;
  for (std::uint32_t q = 0; q < kShared; ++q) {
    const auto& nn = result.neighbors[q];
    const float d1 = std::sqrt(nn[0].dist);
    const float d2 = std::sqrt(nn[1].dist);
    if (d1 < kRatio * d2) {
      ++accepted;
      if (nn[0].index == q) ++correct;  // ground truth: same index in B
    }
  }
  const double precision = accepted ? 100.0 * correct / accepted : 0.0;
  const double recall = 100.0 * correct / kShared;

  std::printf("image A: %u descriptors; image B: %u (%u true + %u "
              "distractors)\n",
              kShared, image_b.count, kShared, kDistractors);
  std::printf("ratio test (%.2f): %u matches accepted, %u correct\n",
              static_cast<double>(kRatio), accepted, correct);
  std::printf("precision %.1f%%, recall %.1f%%\n", precision, recall);
  std::printf("modeled GPU time for the matching pass: %.6f s\n",
              result.modeled_seconds);
  // With this noise level the ratio test should be near-perfect.
  return (precision > 95.0 && recall > 80.0) ? 0 : 1;
}
