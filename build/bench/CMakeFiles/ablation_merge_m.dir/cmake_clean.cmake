file(REMOVE_RECURSE
  "CMakeFiles/ablation_merge_m.dir/ablation_merge_m.cpp.o"
  "CMakeFiles/ablation_merge_m.dir/ablation_merge_m.cpp.o.d"
  "ablation_merge_m"
  "ablation_merge_m.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_merge_m.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
