# Empty dependencies file for ablation_merge_m.
# This may be replaced when dependencies are built.
