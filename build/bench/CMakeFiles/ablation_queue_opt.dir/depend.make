# Empty dependencies file for ablation_queue_opt.
# This may be replaced when dependencies are built.
