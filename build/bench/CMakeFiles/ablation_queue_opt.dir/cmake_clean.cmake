file(REMOVE_RECURSE
  "CMakeFiles/ablation_queue_opt.dir/ablation_queue_opt.cpp.o"
  "CMakeFiles/ablation_queue_opt.dir/ablation_queue_opt.cpp.o.d"
  "ablation_queue_opt"
  "ablation_queue_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_queue_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
