file(REMOVE_RECURSE
  "CMakeFiles/fig5_queue_updates.dir/fig5_queue_updates.cpp.o"
  "CMakeFiles/fig5_queue_updates.dir/fig5_queue_updates.cpp.o.d"
  "fig5_queue_updates"
  "fig5_queue_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_queue_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
