# Empty dependencies file for fig5_queue_updates.
# This may be replaced when dependencies are built.
