# Empty dependencies file for fig7_hp_vs_k.
# This may be replaced when dependencies are built.
