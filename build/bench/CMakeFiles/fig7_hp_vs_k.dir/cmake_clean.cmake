file(REMOVE_RECURSE
  "CMakeFiles/fig7_hp_vs_k.dir/fig7_hp_vs_k.cpp.o"
  "CMakeFiles/fig7_hp_vs_k.dir/fig7_hp_vs_k.cpp.o.d"
  "fig7_hp_vs_k"
  "fig7_hp_vs_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_hp_vs_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
