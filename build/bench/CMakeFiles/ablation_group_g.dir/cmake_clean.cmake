file(REMOVE_RECURSE
  "CMakeFiles/ablation_group_g.dir/ablation_group_g.cpp.o"
  "CMakeFiles/ablation_group_g.dir/ablation_group_g.cpp.o.d"
  "ablation_group_g"
  "ablation_group_g.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_group_g.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
