# Empty compiler generated dependencies file for ablation_group_g.
# This may be replaced when dependencies are built.
