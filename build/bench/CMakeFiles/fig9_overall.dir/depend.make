# Empty dependencies file for fig9_overall.
# This may be replaced when dependencies are built.
