
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_merge_strategy.cpp" "bench/CMakeFiles/ablation_merge_strategy.dir/ablation_merge_strategy.cpp.o" "gcc" "bench/CMakeFiles/ablation_merge_strategy.dir/ablation_merge_strategy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gpuksel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/knn/CMakeFiles/gpuksel_knn.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/gpuksel_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gpuksel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
