# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_image_match "/root/repo/build/examples/image_match")
set_tests_properties(example_image_match PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_classifier "/root/repo/build/examples/classifier")
set_tests_properties(example_classifier PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_simt_playground "/root/repo/build/examples/simt_playground")
set_tests_properties(example_simt_playground PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_rbc_search "/root/repo/build/examples/rbc_search")
set_tests_properties(example_rbc_search PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
