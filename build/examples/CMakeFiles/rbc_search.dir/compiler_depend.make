# Empty compiler generated dependencies file for rbc_search.
# This may be replaced when dependencies are built.
