file(REMOVE_RECURSE
  "CMakeFiles/rbc_search.dir/rbc_search.cpp.o"
  "CMakeFiles/rbc_search.dir/rbc_search.cpp.o.d"
  "rbc_search"
  "rbc_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbc_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
