file(REMOVE_RECURSE
  "CMakeFiles/simt_playground.dir/simt_playground.cpp.o"
  "CMakeFiles/simt_playground.dir/simt_playground.cpp.o.d"
  "simt_playground"
  "simt_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simt_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
