# Empty dependencies file for simt_playground.
# This may be replaced when dependencies are built.
