# Empty dependencies file for image_match.
# This may be replaced when dependencies are built.
