file(REMOVE_RECURSE
  "CMakeFiles/image_match.dir/image_match.cpp.o"
  "CMakeFiles/image_match.dir/image_match.cpp.o.d"
  "image_match"
  "image_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
