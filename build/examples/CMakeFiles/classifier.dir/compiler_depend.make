# Empty compiler generated dependencies file for classifier.
# This may be replaced when dependencies are built.
