file(REMOVE_RECURSE
  "CMakeFiles/classifier.dir/classifier.cpp.o"
  "CMakeFiles/classifier.dir/classifier.cpp.o.d"
  "classifier"
  "classifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
