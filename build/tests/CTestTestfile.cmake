# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_simt[1]_include.cmake")
include("/root/repo/build/tests/test_queues[1]_include.cmake")
include("/root/repo/build/tests/test_bitonic[1]_include.cmake")
include("/root/repo/build/tests/test_kselect[1]_include.cmake")
include("/root/repo/build/tests/test_hp[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_hp_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_knn[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_rbc[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_warp_queue[1]_include.cmake")
