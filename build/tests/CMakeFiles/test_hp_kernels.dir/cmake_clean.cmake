file(REMOVE_RECURSE
  "CMakeFiles/test_hp_kernels.dir/hp_kernels_test.cpp.o"
  "CMakeFiles/test_hp_kernels.dir/hp_kernels_test.cpp.o.d"
  "test_hp_kernels"
  "test_hp_kernels.pdb"
  "test_hp_kernels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hp_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
