# Empty dependencies file for test_hp_kernels.
# This may be replaced when dependencies are built.
