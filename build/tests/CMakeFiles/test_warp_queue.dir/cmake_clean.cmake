file(REMOVE_RECURSE
  "CMakeFiles/test_warp_queue.dir/warp_queue_test.cpp.o"
  "CMakeFiles/test_warp_queue.dir/warp_queue_test.cpp.o.d"
  "test_warp_queue"
  "test_warp_queue.pdb"
  "test_warp_queue[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_warp_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
