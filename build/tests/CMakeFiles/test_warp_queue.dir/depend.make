# Empty dependencies file for test_warp_queue.
# This may be replaced when dependencies are built.
