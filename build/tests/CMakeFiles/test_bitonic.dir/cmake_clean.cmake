file(REMOVE_RECURSE
  "CMakeFiles/test_bitonic.dir/bitonic_test.cpp.o"
  "CMakeFiles/test_bitonic.dir/bitonic_test.cpp.o.d"
  "test_bitonic"
  "test_bitonic.pdb"
  "test_bitonic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bitonic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
