file(REMOVE_RECURSE
  "CMakeFiles/gpuksel_core.dir/hierarchical_partition.cpp.o"
  "CMakeFiles/gpuksel_core.dir/hierarchical_partition.cpp.o.d"
  "CMakeFiles/gpuksel_core.dir/kernels/hp_kernels.cpp.o"
  "CMakeFiles/gpuksel_core.dir/kernels/hp_kernels.cpp.o.d"
  "CMakeFiles/gpuksel_core.dir/kernels/pipeline.cpp.o"
  "CMakeFiles/gpuksel_core.dir/kernels/pipeline.cpp.o.d"
  "CMakeFiles/gpuksel_core.dir/kernels/select_kernels.cpp.o"
  "CMakeFiles/gpuksel_core.dir/kernels/select_kernels.cpp.o.d"
  "CMakeFiles/gpuksel_core.dir/kselect.cpp.o"
  "CMakeFiles/gpuksel_core.dir/kselect.cpp.o.d"
  "CMakeFiles/gpuksel_core.dir/queues/bitonic.cpp.o"
  "CMakeFiles/gpuksel_core.dir/queues/bitonic.cpp.o.d"
  "CMakeFiles/gpuksel_core.dir/queues/heap_queue.cpp.o"
  "CMakeFiles/gpuksel_core.dir/queues/heap_queue.cpp.o.d"
  "CMakeFiles/gpuksel_core.dir/queues/insertion_queue.cpp.o"
  "CMakeFiles/gpuksel_core.dir/queues/insertion_queue.cpp.o.d"
  "CMakeFiles/gpuksel_core.dir/queues/merge_queue.cpp.o"
  "CMakeFiles/gpuksel_core.dir/queues/merge_queue.cpp.o.d"
  "libgpuksel_core.a"
  "libgpuksel_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuksel_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
