file(REMOVE_RECURSE
  "libgpuksel_core.a"
)
