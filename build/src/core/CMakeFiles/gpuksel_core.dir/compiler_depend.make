# Empty compiler generated dependencies file for gpuksel_core.
# This may be replaced when dependencies are built.
