
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/hierarchical_partition.cpp" "src/core/CMakeFiles/gpuksel_core.dir/hierarchical_partition.cpp.o" "gcc" "src/core/CMakeFiles/gpuksel_core.dir/hierarchical_partition.cpp.o.d"
  "/root/repo/src/core/kernels/hp_kernels.cpp" "src/core/CMakeFiles/gpuksel_core.dir/kernels/hp_kernels.cpp.o" "gcc" "src/core/CMakeFiles/gpuksel_core.dir/kernels/hp_kernels.cpp.o.d"
  "/root/repo/src/core/kernels/pipeline.cpp" "src/core/CMakeFiles/gpuksel_core.dir/kernels/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/gpuksel_core.dir/kernels/pipeline.cpp.o.d"
  "/root/repo/src/core/kernels/select_kernels.cpp" "src/core/CMakeFiles/gpuksel_core.dir/kernels/select_kernels.cpp.o" "gcc" "src/core/CMakeFiles/gpuksel_core.dir/kernels/select_kernels.cpp.o.d"
  "/root/repo/src/core/kselect.cpp" "src/core/CMakeFiles/gpuksel_core.dir/kselect.cpp.o" "gcc" "src/core/CMakeFiles/gpuksel_core.dir/kselect.cpp.o.d"
  "/root/repo/src/core/queues/bitonic.cpp" "src/core/CMakeFiles/gpuksel_core.dir/queues/bitonic.cpp.o" "gcc" "src/core/CMakeFiles/gpuksel_core.dir/queues/bitonic.cpp.o.d"
  "/root/repo/src/core/queues/heap_queue.cpp" "src/core/CMakeFiles/gpuksel_core.dir/queues/heap_queue.cpp.o" "gcc" "src/core/CMakeFiles/gpuksel_core.dir/queues/heap_queue.cpp.o.d"
  "/root/repo/src/core/queues/insertion_queue.cpp" "src/core/CMakeFiles/gpuksel_core.dir/queues/insertion_queue.cpp.o" "gcc" "src/core/CMakeFiles/gpuksel_core.dir/queues/insertion_queue.cpp.o.d"
  "/root/repo/src/core/queues/merge_queue.cpp" "src/core/CMakeFiles/gpuksel_core.dir/queues/merge_queue.cpp.o" "gcc" "src/core/CMakeFiles/gpuksel_core.dir/queues/merge_queue.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gpuksel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
