
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/knn/dataset.cpp" "src/knn/CMakeFiles/gpuksel_knn.dir/dataset.cpp.o" "gcc" "src/knn/CMakeFiles/gpuksel_knn.dir/dataset.cpp.o.d"
  "/root/repo/src/knn/distance.cpp" "src/knn/CMakeFiles/gpuksel_knn.dir/distance.cpp.o" "gcc" "src/knn/CMakeFiles/gpuksel_knn.dir/distance.cpp.o.d"
  "/root/repo/src/knn/knn.cpp" "src/knn/CMakeFiles/gpuksel_knn.dir/knn.cpp.o" "gcc" "src/knn/CMakeFiles/gpuksel_knn.dir/knn.cpp.o.d"
  "/root/repo/src/knn/rbc.cpp" "src/knn/CMakeFiles/gpuksel_knn.dir/rbc.cpp.o" "gcc" "src/knn/CMakeFiles/gpuksel_knn.dir/rbc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gpuksel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gpuksel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
