# Empty dependencies file for gpuksel_knn.
# This may be replaced when dependencies are built.
