file(REMOVE_RECURSE
  "CMakeFiles/gpuksel_knn.dir/dataset.cpp.o"
  "CMakeFiles/gpuksel_knn.dir/dataset.cpp.o.d"
  "CMakeFiles/gpuksel_knn.dir/distance.cpp.o"
  "CMakeFiles/gpuksel_knn.dir/distance.cpp.o.d"
  "CMakeFiles/gpuksel_knn.dir/knn.cpp.o"
  "CMakeFiles/gpuksel_knn.dir/knn.cpp.o.d"
  "CMakeFiles/gpuksel_knn.dir/rbc.cpp.o"
  "CMakeFiles/gpuksel_knn.dir/rbc.cpp.o.d"
  "libgpuksel_knn.a"
  "libgpuksel_knn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuksel_knn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
