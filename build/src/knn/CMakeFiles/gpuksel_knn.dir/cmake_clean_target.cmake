file(REMOVE_RECURSE
  "libgpuksel_knn.a"
)
