file(REMOVE_RECURSE
  "CMakeFiles/gpuksel_baselines.dir/bucket_select.cpp.o"
  "CMakeFiles/gpuksel_baselines.dir/bucket_select.cpp.o.d"
  "CMakeFiles/gpuksel_baselines.dir/clustered_sort.cpp.o"
  "CMakeFiles/gpuksel_baselines.dir/clustered_sort.cpp.o.d"
  "CMakeFiles/gpuksel_baselines.dir/cpu_select.cpp.o"
  "CMakeFiles/gpuksel_baselines.dir/cpu_select.cpp.o.d"
  "CMakeFiles/gpuksel_baselines.dir/qms.cpp.o"
  "CMakeFiles/gpuksel_baselines.dir/qms.cpp.o.d"
  "CMakeFiles/gpuksel_baselines.dir/radix_select.cpp.o"
  "CMakeFiles/gpuksel_baselines.dir/radix_select.cpp.o.d"
  "CMakeFiles/gpuksel_baselines.dir/sample_select.cpp.o"
  "CMakeFiles/gpuksel_baselines.dir/sample_select.cpp.o.d"
  "CMakeFiles/gpuksel_baselines.dir/tbs.cpp.o"
  "CMakeFiles/gpuksel_baselines.dir/tbs.cpp.o.d"
  "libgpuksel_baselines.a"
  "libgpuksel_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuksel_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
