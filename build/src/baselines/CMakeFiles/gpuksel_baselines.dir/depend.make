# Empty dependencies file for gpuksel_baselines.
# This may be replaced when dependencies are built.
