file(REMOVE_RECURSE
  "libgpuksel_baselines.a"
)
