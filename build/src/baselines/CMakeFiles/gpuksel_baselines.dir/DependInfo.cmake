
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/bucket_select.cpp" "src/baselines/CMakeFiles/gpuksel_baselines.dir/bucket_select.cpp.o" "gcc" "src/baselines/CMakeFiles/gpuksel_baselines.dir/bucket_select.cpp.o.d"
  "/root/repo/src/baselines/clustered_sort.cpp" "src/baselines/CMakeFiles/gpuksel_baselines.dir/clustered_sort.cpp.o" "gcc" "src/baselines/CMakeFiles/gpuksel_baselines.dir/clustered_sort.cpp.o.d"
  "/root/repo/src/baselines/cpu_select.cpp" "src/baselines/CMakeFiles/gpuksel_baselines.dir/cpu_select.cpp.o" "gcc" "src/baselines/CMakeFiles/gpuksel_baselines.dir/cpu_select.cpp.o.d"
  "/root/repo/src/baselines/qms.cpp" "src/baselines/CMakeFiles/gpuksel_baselines.dir/qms.cpp.o" "gcc" "src/baselines/CMakeFiles/gpuksel_baselines.dir/qms.cpp.o.d"
  "/root/repo/src/baselines/radix_select.cpp" "src/baselines/CMakeFiles/gpuksel_baselines.dir/radix_select.cpp.o" "gcc" "src/baselines/CMakeFiles/gpuksel_baselines.dir/radix_select.cpp.o.d"
  "/root/repo/src/baselines/sample_select.cpp" "src/baselines/CMakeFiles/gpuksel_baselines.dir/sample_select.cpp.o" "gcc" "src/baselines/CMakeFiles/gpuksel_baselines.dir/sample_select.cpp.o.d"
  "/root/repo/src/baselines/tbs.cpp" "src/baselines/CMakeFiles/gpuksel_baselines.dir/tbs.cpp.o" "gcc" "src/baselines/CMakeFiles/gpuksel_baselines.dir/tbs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gpuksel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gpuksel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
