file(REMOVE_RECURSE
  "CMakeFiles/gpuksel_util.dir/cli.cpp.o"
  "CMakeFiles/gpuksel_util.dir/cli.cpp.o.d"
  "CMakeFiles/gpuksel_util.dir/csv.cpp.o"
  "CMakeFiles/gpuksel_util.dir/csv.cpp.o.d"
  "CMakeFiles/gpuksel_util.dir/rng.cpp.o"
  "CMakeFiles/gpuksel_util.dir/rng.cpp.o.d"
  "CMakeFiles/gpuksel_util.dir/stats.cpp.o"
  "CMakeFiles/gpuksel_util.dir/stats.cpp.o.d"
  "CMakeFiles/gpuksel_util.dir/table.cpp.o"
  "CMakeFiles/gpuksel_util.dir/table.cpp.o.d"
  "libgpuksel_util.a"
  "libgpuksel_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuksel_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
