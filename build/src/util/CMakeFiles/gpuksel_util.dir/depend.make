# Empty dependencies file for gpuksel_util.
# This may be replaced when dependencies are built.
