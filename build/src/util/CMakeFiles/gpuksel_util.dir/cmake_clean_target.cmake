file(REMOVE_RECURSE
  "libgpuksel_util.a"
)
