#include "knn/mutable.hpp"

#include <algorithm>
#include <utility>

#include "core/kernels/delta_merge.hpp"
#include "knn/distance.hpp"
#include "util/check.hpp"

namespace gpuksel::knn {

namespace {

/// Smallest power of two >= n (delta-shard capacity growth).
std::size_t round_up_pow2(std::size_t n) {
  std::size_t cap = 1;
  while (cap < n) cap <<= 1;
  return cap;
}

}  // namespace

MutableKnn::MutableKnn(Dataset initial, MutableKnnOptions options,
                       std::uint32_t id_base)
    : options_(std::move(options)), dim_(initial.dim) {
  GPUKSEL_CHECK(initial.count >= 1, "MutableKnn needs a non-empty initial set");
  GPUKSEL_CHECK(initial.dim >= 1, "MutableKnn needs dim >= 1");
  const std::uint32_t n = initial.count;
  base_ids_.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) base_ids_[i] = id_base + i;
  next_id_ = id_base + n;
  alive_.assign(n, 1u);
  id_to_slot_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) id_to_slot_[base_ids_[i]] = i;
  if (options_.base == MutableBase::kFlat) {
    flat_ = std::make_unique<BatchedKnn>(std::move(initial), engine_options());
  } else {
    IvfOptions io;
    io.params = options_.ivf;
    io.batch = engine_options();
    ivf_ = std::make_unique<IvfKnn>(std::move(initial), io);
    ivf_->train(compaction_device_);
  }
}

MutableKnn::~MutableKnn() {
  if (compaction_thread_.joinable()) compaction_thread_.join();
}

BatchedKnnOptions MutableKnn::engine_options() const {
  // The wrapped engines always propagate faults: MutableKnn owns the host
  // fallback so a recovered answer covers the *live* rows, not one source.
  BatchedKnnOptions b = options_.batch;
  b.fallback_to_host = false;
  return b;
}

const Dataset& MutableKnn::base_refs() const noexcept {
  return flat_ != nullptr ? flat_->host().refs() : ivf_->batched().host().refs();
}

MutableStats MutableKnn::stats() const noexcept {
  MutableStats s;
  s.upserts = upserts_;
  s.removes = removes_;
  s.compactions = compactions_;
  s.compactions_aborted = compactions_aborted_;
  s.compactions_failed = compactions_failed_;
  s.base_rows = base_rows();
  s.delta_rows = delta_rows();
  s.tombstones = tombstones();
  s.live_rows = live_rows();
  s.generation = generation_;
  s.delta_bytes_uploaded = delta_bytes_uploaded_;
  s.delta_rows_synced = delta_rows_synced_;
  s.tombstone_words_synced = tombstone_words_synced_;
  return s;
}

void MutableKnn::tombstone_slot(std::uint32_t slot) {
  alive_[slot] = 0;
  pending_dead_.push_back(slot);
  if (slot < base_rows()) {
    ++dead_base_;
  } else {
    ++dead_delta_;
  }
}

void MutableKnn::upsert(std::uint32_t id, std::span<const float> row) {
  GPUKSEL_CHECK(row.size() == dim_, "upsert row dim mismatch");
  adopt_pending();
  const auto it = id_to_slot_.find(id);
  if (it != id_to_slot_.end()) tombstone_slot(it->second);
  delta_rows_.insert(delta_rows_.end(), row.begin(), row.end());
  delta_ids_.push_back(id);
  alive_.push_back(1u);
  id_to_slot_[id] = static_cast<std::uint32_t>(alive_.size() - 1);
  next_id_ = std::max(next_id_, id + 1);
  ++upserts_;
  bump_epoch();
}

std::uint32_t MutableKnn::insert(std::span<const float> row) {
  const std::uint32_t id = next_id_;
  upsert(id, row);
  return id;
}

bool MutableKnn::remove(std::uint32_t id) {
  adopt_pending();
  const auto it = id_to_slot_.find(id);
  if (it == id_to_slot_.end()) return false;
  tombstone_slot(it->second);
  id_to_slot_.erase(it);
  ++removes_;
  bump_epoch();
  return true;
}

void MutableKnn::refresh_live_cache() {
  if (live_cache_epoch_ == epoch_) return;
  const std::uint32_t total = base_rows() + delta_rows();
  live_prefix_.assign(total, 0xffffffffu);
  live_ids_cache_.clear();
  live_ids_cache_.reserve(live_rows());
  std::uint32_t pos = 0;
  for (std::uint32_t s = 0; s < total; ++s) {
    if (alive_[s] == 0) continue;
    live_prefix_[s] = pos++;
    live_ids_cache_.push_back(slot_id(s));
  }
  live_cache_epoch_ = epoch_;
}

const std::vector<std::uint32_t>& MutableKnn::live_ids() {
  adopt_pending();
  refresh_live_cache();
  return live_ids_cache_;
}

Dataset MutableKnn::materialize() {
  adopt_pending();
  refresh_live_cache();
  Dataset out;
  out.dim = dim_;
  out.count = live_rows();
  out.values.reserve(std::size_t{out.count} * dim_);
  const Dataset& base = base_refs();
  for (std::uint32_t s = 0; s < base_rows(); ++s) {
    if (alive_[s] == 0) continue;
    const float* row = base.row(s);
    out.values.insert(out.values.end(), row, row + dim_);
  }
  for (std::uint32_t d = 0; d < delta_rows(); ++d) {
    if (alive_[base_rows() + d] == 0) continue;
    const float* row = delta_rows_.data() + std::size_t{d} * dim_;
    out.values.insert(out.values.end(), row, row + dim_);
  }
  return out;
}

void MutableKnn::adopt_pending() {
  std::unique_ptr<Snapshot> snap;
  {
    const std::lock_guard<std::mutex> lk(mu_);
    snap = std::move(pending_);
  }
  if (snap == nullptr) return;
  if (snap->failed) {
    // The rebuild faulted (chaos): the old snapshot keeps serving.
    ++compactions_failed_;
    return;
  }
  if (snap->built_epoch != epoch_) {
    // A mutation landed while the rebuild ran: the snapshot is stale.
    ++compactions_aborted_;
    return;
  }
  flat_ = std::move(snap->flat);
  ivf_ = std::move(snap->ivf);
  base_ids_ = std::move(snap->ids);
  delta_rows_.clear();
  delta_ids_.clear();
  alive_.assign(base_ids_.size(), 1u);
  dead_base_ = 0;
  dead_delta_ = 0;
  id_to_slot_.clear();
  for (std::uint32_t i = 0; i < base_rows(); ++i) id_to_slot_[base_ids_[i]] = i;
  // The device delta cache is wholesale stale; its blocks are recycled into
  // the pool at the next ensure_delta_device on the device that owns them.
  pending_dead_.clear();
  delta_synced_ = 0;
  cache_valid_ = false;
  ++generation_;
  ++compactions_;
  bump_epoch();
}

std::unique_ptr<MutableKnn::Snapshot> MutableKnn::build_snapshot(
    Dataset rows, std::vector<std::uint32_t> ids, std::uint64_t epoch) {
  auto snap = std::make_unique<Snapshot>();
  snap->built_epoch = epoch;
  try {
    if (options_.base == MutableBase::kFlat) {
      snap->flat = std::make_unique<BatchedKnn>(std::move(rows), engine_options());
    } else {
      IvfOptions io;
      io.params = options_.ivf;
      io.batch = engine_options();
      snap->ivf = std::make_unique<IvfKnn>(std::move(rows), io);
      snap->ivf->train(compaction_device_);
    }
    snap->ids = std::move(ids);
  } catch (const SimtFaultError&) {
    snap->flat.reset();
    snap->ivf.reset();
    snap->failed = true;
  }
  return snap;
}

bool MutableKnn::compactable() const noexcept {
  return live_rows() >= 1 && (delta_rows() > 0 || tombstones() > 0);
}

bool MutableKnn::compact() {
  adopt_pending();
  if (compaction_running()) return false;
  if (!compactable()) return false;
  Dataset rows = materialize();
  std::vector<std::uint32_t> ids = live_ids_cache_;
  auto snap = build_snapshot(std::move(rows), std::move(ids), epoch_);
  {
    const std::lock_guard<std::mutex> lk(mu_);
    pending_ = std::move(snap);
  }
  const std::uint64_t before = compactions_;
  adopt_pending();
  return compactions_ > before;
}

bool MutableKnn::maybe_compact() {
  adopt_pending();
  const std::uint32_t total = base_rows() + delta_rows();
  if (total < options_.min_compact_rows) return false;
  const double df = static_cast<double>(delta_rows()) / total;
  const double tf = static_cast<double>(tombstones()) / total;
  if (df <= options_.max_delta_fraction && tf <= options_.max_tombstone_fraction) {
    return false;
  }
  return compact();
}

bool MutableKnn::compact_async() {
  if (compaction_running()) return false;
  finish_compaction();  // join a finished rebuild, adopt or discard it
  if (!compactable()) return false;
  Dataset rows = materialize();
  std::vector<std::uint32_t> ids = live_ids_cache_;
  const std::uint64_t epoch = epoch_;
  compaction_active_.store(true, std::memory_order_release);
  compaction_thread_ = std::thread(
      [this, rows = std::move(rows), ids = std::move(ids), epoch]() mutable {
        auto snap = build_snapshot(std::move(rows), std::move(ids), epoch);
        if (rebuild_hook_) rebuild_hook_();
        {
          const std::lock_guard<std::mutex> lk(mu_);
          pending_ = std::move(snap);
        }
        compaction_active_.store(false, std::memory_order_release);
      });
  return true;
}

void MutableKnn::finish_compaction() {
  if (compaction_thread_.joinable()) compaction_thread_.join();
  adopt_pending();
}

void MutableKnn::ensure_delta_device(simt::Device& dev) {
  const std::uint64_t before = dev.transfers().bytes_h2d;
  const std::uint32_t dcount = delta_rows();
  if (!cache_valid_ || cache_device_ != &dev ||
      cache_generation_ != generation_) {
    // Full rebuild: recycle the stale blocks into the pool of the device
    // they came from (only provably safe when that device is `dev` itself),
    // re-upload every delta row, re-sync every tombstone word.
    if (d_delta_.size() != 0 || d_alive_.size() != 0) {
      if (cache_device_ == &dev) {
        if (d_delta_.size() != 0) dev.release(std::move(d_delta_));
        if (d_alive_.size() != 0) dev.release(std::move(d_alive_));
      }
      d_delta_ = {};
      d_alive_ = {};
    }
    delta_cap_ = round_up_pow2(std::max<std::size_t>(dcount, 4));
    d_delta_ = dev.alloc_pooled<float>(delta_cap_ * dim_, 0.0f);
    if (dcount > 0) {
      dev.upload_into(d_delta_, 0,
                      std::span<const float>(delta_rows_.data(),
                                             std::size_t{dcount} * dim_));
      delta_rows_synced_ += dcount;
    }
    d_alive_ = dev.alloc_pooled<std::uint32_t>(base_rows() + delta_cap_, 1u);
    const std::uint32_t total = base_rows() + dcount;
    static constexpr std::uint32_t kDead = 0u;
    for (std::uint32_t s = 0; s < total; ++s) {
      if (alive_[s] != 0) continue;
      dev.upload_into(d_alive_, s, std::span<const std::uint32_t>(&kDead, 1));
      ++tombstone_words_synced_;
    }
    delta_synced_ = dcount;
    pending_dead_.clear();
    cache_device_ = &dev;
    cache_generation_ = generation_;
    cache_valid_ = true;
  } else {
    if (dcount > delta_synced_) {
      if (dcount > delta_cap_) {
        // Capacity-doubled growth.  The already-synced prefix moves with a
        // device-to-device copy (host-side here, uncharged on the link).
        const std::size_t new_cap = round_up_pow2(dcount);
        auto grown = dev.alloc_pooled<float>(new_cap * dim_, 0.0f);
        const auto& old_rows = std::as_const(d_delta_).host();
        std::copy_n(old_rows.begin(), std::size_t{delta_synced_} * dim_,
                    grown.host().begin());
        dev.release(std::move(d_delta_));
        d_delta_ = std::move(grown);
        auto grown_alive =
            dev.alloc_pooled<std::uint32_t>(base_rows() + new_cap, 1u);
        const auto& old_alive = std::as_const(d_alive_).host();
        std::copy_n(old_alive.begin(), base_rows() + delta_cap_,
                    grown_alive.host().begin());
        dev.release(std::move(d_alive_));
        d_alive_ = std::move(grown_alive);
        delta_cap_ = new_cap;
      }
      const std::uint32_t fresh = dcount - delta_synced_;
      dev.upload_into(
          d_delta_, std::size_t{delta_synced_} * dim_,
          std::span<const float>(
              delta_rows_.data() + std::size_t{delta_synced_} * dim_,
              std::size_t{fresh} * dim_));
      delta_rows_synced_ += fresh;
      delta_synced_ = dcount;
    }
    static constexpr std::uint32_t kDead = 0u;
    for (const std::uint32_t slot : pending_dead_) {
      // A slot dies at most once, so each mask word is charged at most once
      // per generation and device binding.
      dev.upload_into(d_alive_, slot,
                      std::span<const std::uint32_t>(&kDead, 1));
      ++tombstone_words_synced_;
    }
    pending_dead_.clear();
  }
  delta_bytes_uploaded_ += dev.transfers().bytes_h2d - before;
}

KnnResult MutableKnn::host_exact(const Dataset& queries, std::uint32_t k) {
  if (host_cache_epoch_ != epoch_) {
    host_engine_ = std::make_unique<BruteForceKnn>(materialize());
    host_cache_epoch_ = epoch_;
  }
  return host_engine_->search(queries, k, options_.batch.host_fallback_algo,
                              options_.batch.nan_policy);
}

KnnResult MutableKnn::search_host(const Dataset& queries, std::uint32_t k) {
  adopt_pending();
  GPUKSEL_CHECK(queries.count == 0 || queries.dim == dim_,
                "query/reference dim mismatch");
  GPUKSEL_CHECK(k >= 1, "MutableKnn needs k >= 1");
  if (queries.count == 0) return {};
  if (live_rows() == 0) {
    KnnResult r;
    r.neighbors.resize(queries.count);
    return r;
  }
  return host_exact(queries, k);
}

KnnResult MutableKnn::search(simt::Device& dev, const Dataset& queries,
                             std::uint32_t k) {
  adopt_pending();
  GPUKSEL_CHECK(queries.count == 0 || queries.dim == dim_,
                "query/reference dim mismatch");
  GPUKSEL_CHECK(k >= 1, "MutableKnn needs k >= 1");
  if (queries.count == 0) return {};
  if (live_rows() == 0) {
    // A fresh engine over zero rows cannot exist: the convention is one
    // empty neighbor list per query.
    KnnResult r;
    r.neighbors.resize(queries.count);
    return r;
  }
  refresh_live_cache();
  simt::ScopedNanPolicy nan_guard(dev.sanitizer(), options_.batch.nan_policy);
  try {
    return search_device(dev, queries, k);
  } catch (const SimtFaultError& fault) {
    if (!options_.batch.fallback_to_host) throw;
    KnnResult result = host_exact(queries, k);
    result.faults.push_back(fault.record());
    result.used_host_fallback = true;
    return result;
  }
}

KnnResult MutableKnn::search_device(simt::Device& dev, const Dataset& queries,
                                    std::uint32_t k) {
  const std::uint32_t dcount = delta_rows();
  if (dcount == 0 && dead_base_ == 0) {
    // Pure base: slots coincide with logical positions, so the base engine's
    // answer already satisfies the differential contract.
    return flat_ != nullptr ? flat_->search_gpu(dev, queries, k)
                            : ivf_->search_gpu(dev, queries, k);
  }
  ensure_delta_device(dev);
  const auto& cm = options_.batch.cost_model;
  const std::uint32_t B = base_rows();
  // Partial depth k + dead-in-source: the divide-and-merge superset bound —
  // a live row of the true top-k is beaten by fewer than k live rows overall
  // and at most dead_source dead rows inside its own source.
  const std::uint32_t k_base = std::min<std::uint32_t>(B, k + dead_base_);
  KnnResult base = flat_ != nullptr ? flat_->search_gpu(dev, queries, k_base)
                                    : ivf_->search_gpu(dev, queries, k_base);
  KnnResult result;
  result.distance_metrics = base.distance_metrics;
  result.select_metrics = base.select_metrics;
  result.modeled_seconds = base.modeled_seconds;
  std::vector<std::vector<std::vector<Neighbor>>> partials;
  partials.push_back(std::move(base.neighbors));
  if (dcount > 0) {
    const std::uint32_t k_delta = std::min(dcount, k + dead_delta_);
    kernels::BatchOutput delta = kernels::batched_select(
        dev, d_delta_, to_dim_major(queries), queries.count, dcount, dim_,
        k_delta, options_.batch.batch);
    // Delta row d occupies slot B + d.
    for (auto& list : delta.neighbors) {
      for (Neighbor& nb : list) nb.index += B;
    }
    result.distance_metrics += delta.tile_metrics;
    result.select_metrics += delta.reduce_metrics;
    result.modeled_seconds += cm.kernel_seconds(delta.tile_metrics) +
                              cm.kernel_seconds(delta.reduce_metrics);
    partials.push_back(std::move(delta.neighbors));
  }
  kernels::DeltaMergeOutput merged = kernels::delta_merge(
      dev, partials, d_alive_, B + dcount, queries.count, k,
      options_.batch.batch.select);
  result.select_metrics += merged.metrics;
  result.modeled_seconds += cm.kernel_seconds(merged.metrics);
  // Slot -> logical position: strictly monotone over live slots, so the
  // (dist, slot) merge order maps to the fresh engine's (dist, row) order.
  for (auto& list : merged.neighbors) {
    for (Neighbor& nb : list) nb.index = live_prefix_[nb.index];
  }
  result.neighbors = std::move(merged.neighbors);
  return result;
}

}  // namespace gpuksel::knn
