// Brute-force k-NN front end: the public API downstream applications use.
//
// BruteForceKnn holds a reference set and answers batched queries either on
// the host (scalar selection algorithms) or on the simulated GPU (distance
// kernel + the paper's selection kernels), with identical results.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/kernels/hp_kernels.hpp"
#include "core/kernels/pipeline.hpp"
#include "core/kselect.hpp"
#include "knn/dataset.hpp"
#include "simt/cost_model.hpp"
#include "util/check.hpp"

namespace gpuksel::knn {

/// Result of a batched k-NN search.
struct KnnResult {
  /// Per query: the k nearest (squared distance, reference index), ascending.
  std::vector<std::vector<Neighbor>> neighbors;
  /// Metrics of the GPU path (zeros for host searches): distance kernel,
  /// selection kernel(s), and modeled seconds under the given cost model.
  simt::KernelMetrics distance_metrics;
  simt::KernelMetrics select_metrics;
  double modeled_seconds = 0.0;
  /// SIMT faults caught during the GPU path (empty for fault-free runs).
  std::vector<FaultRecord> faults;
  /// True when the answer came from the host fallback after a caught fault.
  bool used_host_fallback = false;
};

/// GPU search options: selection kernel configuration plus optional
/// Hierarchical Partition, NaN handling and fault recovery.
struct GpuSearchOptions {
  kernels::SelectConfig select;
  bool use_hierarchical_partition = true;
  std::uint32_t hp_group = 4;  ///< the paper's default G
  simt::CostModel cost_model = simt::c2075_model();
  /// How NaN distances behave on both the GPU and host paths: kReject makes
  /// them an error, kSortLast ranks them after every real candidate.
  NanPolicy nan_policy = NanPolicy::kPropagate;
  /// When true, a SimtFaultError raised by the GPU pipeline is recorded in
  /// KnnResult::faults and the batch is re-answered on the host path (same
  /// selection tie-breaking, same NaN policy) instead of propagating.
  bool fallback_to_host = false;
  /// Scalar algorithm the host fallback uses.
  Algo host_fallback_algo = Algo::kMergeQueue;
};

class BruteForceKnn {
 public:
  /// Indexes the reference set (row-major `count x dim`).
  explicit BruteForceKnn(Dataset refs);

  [[nodiscard]] std::uint32_t size() const noexcept { return refs_.count; }
  [[nodiscard]] std::uint32_t dim() const noexcept { return refs_.dim; }
  [[nodiscard]] const Dataset& refs() const noexcept { return refs_; }

  /// Host search: distance matrix with OpenMP, then the chosen scalar
  /// selection algorithm per query.  `nan_policy` mirrors the GPU path:
  /// kReject throws PreconditionError on any NaN distance, kSortLast ranks
  /// NaNs after every real candidate.
  [[nodiscard]] KnnResult search(
      const Dataset& queries, std::uint32_t k, Algo algo = Algo::kMergeQueue,
      NanPolicy nan_policy = NanPolicy::kPropagate) const;

  /// Simulated-GPU search: the paper's full pipeline.  The device sanitizer
  /// runs under options.nan_policy for the duration of the call; if a
  /// SimtFaultError escapes the pipeline and options.fallback_to_host is
  /// set, the fault is recorded and the batch is re-answered on the host.
  [[nodiscard]] KnnResult search_gpu(simt::Device& dev, const Dataset& queries,
                                     std::uint32_t k,
                                     const GpuSearchOptions& options = {}) const;

 private:
  [[nodiscard]] KnnResult search_gpu_impl(simt::Device& dev,
                                          const Dataset& queries,
                                          std::uint32_t k,
                                          const GpuSearchOptions& options) const;

  Dataset refs_;
};

}  // namespace gpuksel::knn
