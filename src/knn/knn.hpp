// Brute-force k-NN front end: the public API downstream applications use.
//
// BruteForceKnn holds a reference set and answers batched queries either on
// the host (scalar selection algorithms) or on the simulated GPU (distance
// kernel + the paper's selection kernels), with identical results.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/kernels/hp_kernels.hpp"
#include "core/kernels/pipeline.hpp"
#include "core/kselect.hpp"
#include "knn/dataset.hpp"
#include "simt/cost_model.hpp"

namespace gpuksel::knn {

/// Result of a batched k-NN search.
struct KnnResult {
  /// Per query: the k nearest (squared distance, reference index), ascending.
  std::vector<std::vector<Neighbor>> neighbors;
  /// Metrics of the GPU path (zeros for host searches): distance kernel,
  /// selection kernel(s), and modeled seconds under the given cost model.
  simt::KernelMetrics distance_metrics;
  simt::KernelMetrics select_metrics;
  double modeled_seconds = 0.0;
};

/// GPU search options: selection kernel configuration plus optional
/// Hierarchical Partition.
struct GpuSearchOptions {
  kernels::SelectConfig select;
  bool use_hierarchical_partition = true;
  std::uint32_t hp_group = 4;  ///< the paper's default G
  simt::CostModel cost_model = simt::c2075_model();
};

class BruteForceKnn {
 public:
  /// Indexes the reference set (row-major `count x dim`).
  explicit BruteForceKnn(Dataset refs);

  [[nodiscard]] std::uint32_t size() const noexcept { return refs_.count; }
  [[nodiscard]] std::uint32_t dim() const noexcept { return refs_.dim; }
  [[nodiscard]] const Dataset& refs() const noexcept { return refs_; }

  /// Host search: distance matrix with OpenMP, then the chosen scalar
  /// selection algorithm per query.
  [[nodiscard]] KnnResult search(const Dataset& queries, std::uint32_t k,
                                 Algo algo = Algo::kMergeQueue) const;

  /// Simulated-GPU search: the paper's full pipeline.
  [[nodiscard]] KnnResult search_gpu(simt::Device& dev, const Dataset& queries,
                                     std::uint32_t k,
                                     const GpuSearchOptions& options = {}) const;

 private:
  Dataset refs_;
};

}  // namespace gpuksel::knn
