#include "knn/rbc.hpp"

#include <algorithm>
#include <set>

#include "knn/distance.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace gpuksel::knn {

RandomBallCover::RandomBallCover(Dataset points,
                                 std::uint32_t num_representatives,
                                 std::uint64_t seed)
    : points_(std::move(points)) {
  GPUKSEL_CHECK(num_representatives >= 1, "RBC needs at least one ball");
  GPUKSEL_CHECK(num_representatives <= points_.count,
                "more representatives than points");
  // Representatives: a random sample without replacement.
  const auto perm = random_permutation(points_.count, seed);
  rep_ids_.assign(perm.begin(), perm.begin() + num_representatives);
  balls_.resize(num_representatives);
  // Assign every point to its nearest representative (ties to the first).
  for (std::uint32_t p = 0; p < points_.count; ++p) {
    std::uint32_t best = 0;
    float best_d = squared_euclidean(points_.row(p), points_.row(rep_ids_[0]),
                                     points_.dim);
    for (std::uint32_t r = 1; r < num_representatives; ++r) {
      const float d = squared_euclidean(points_.row(p),
                                        points_.row(rep_ids_[r]), points_.dim);
      if (d < best_d) {
        best_d = d;
        best = r;
      }
    }
    balls_[best].push_back(p);
  }
}

const std::vector<std::uint32_t>& RandomBallCover::ball(std::uint32_t r) const {
  GPUKSEL_CHECK(r < balls_.size(), "ball index out of range");
  return balls_[r];
}

std::vector<Neighbor> RandomBallCover::query(const float* q, std::uint32_t k,
                                             std::uint32_t probe,
                                             Algo algo) const {
  GPUKSEL_CHECK(k >= 1, "RBC query needs k >= 1");
  GPUKSEL_CHECK(probe >= 1, "RBC query needs probe >= 1");
  probe = std::min<std::uint32_t>(probe, representatives());

  // Stage 1: distances to all representatives, select the `probe` nearest —
  // the small k-selection the library accelerates.
  std::vector<float> rep_dists(representatives());
  for (std::uint32_t r = 0; r < representatives(); ++r) {
    rep_dists[r] =
        squared_euclidean(q, points_.row(rep_ids_[r]), points_.dim);
  }
  const auto near_reps = select_k_smallest(rep_dists, probe, algo);

  // Stage 2: exact selection over the union of the probed balls.
  std::vector<float> cand_dists;
  std::vector<std::uint32_t> cand_ids;
  for (const Neighbor& rep : near_reps) {
    for (const std::uint32_t p : balls_[rep.index]) {
      cand_ids.push_back(p);
      cand_dists.push_back(squared_euclidean(q, points_.row(p), points_.dim));
    }
  }
  // All probed balls can be empty (their points claimed by other reps); the
  // honest answer is then "no neighbors found" rather than a selection error.
  if (cand_dists.empty()) return {};
  auto local = select_k_smallest(cand_dists, k, algo);
  for (Neighbor& n : local) n.index = cand_ids[n.index];
  // Re-sort under the *global* point ids so tie order matches exact search.
  std::sort(local.begin(), local.end());
  return local;
}

std::vector<std::vector<Neighbor>> RandomBallCover::query_batch(
    const Dataset& queries, std::uint32_t k, std::uint32_t probe,
    Algo algo) const {
  GPUKSEL_CHECK(queries.dim == points_.dim, "query/point dim mismatch");
  std::vector<std::vector<Neighbor>> out(queries.count);
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(queries.count); ++i) {
    out[static_cast<std::size_t>(i)] =
        query(queries.row(static_cast<std::uint32_t>(i)), k, probe, algo);
  }
  return out;
}

double RandomBallCover::recall(
    const std::vector<std::vector<Neighbor>>& approx,
    const std::vector<std::vector<Neighbor>>& truth) {
  GPUKSEL_CHECK(approx.size() == truth.size(), "batch size mismatch");
  if (truth.empty()) return 1.0;
  double hit = 0;
  double total = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    std::set<std::uint32_t> found;
    for (const Neighbor& n : approx[i]) found.insert(n.index);
    for (const Neighbor& n : truth[i]) {
      hit += found.count(n.index) ? 1 : 0;
      total += 1;
    }
  }
  return total > 0 ? hit / total : 1.0;
}

}  // namespace gpuksel::knn
