#include "knn/dataset.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace gpuksel::knn {

Dataset make_uniform_dataset(std::uint32_t count, std::uint32_t dim,
                             std::uint64_t seed) {
  GPUKSEL_CHECK(dim >= 1, "dataset needs dim >= 1");
  Dataset out;
  out.count = count;
  out.dim = dim;
  out.values = uniform_floats(std::size_t{count} * dim, seed);
  return out;
}

LabelledDataset make_gaussian_clusters(std::uint32_t count, std::uint32_t dim,
                                       std::uint32_t clusters, float sigma,
                                       std::uint64_t seed) {
  GPUKSEL_CHECK(clusters >= 1, "need at least one cluster");
  Rng rng(seed);
  // Cluster means uniform in the unit cube.
  std::vector<float> means(std::size_t{clusters} * dim);
  for (auto& m : means) m = rng.uniform_float();

  LabelledDataset out;
  out.points.count = count;
  out.points.dim = dim;
  out.points.values.resize(std::size_t{count} * dim);
  out.labels.resize(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto label = static_cast<std::uint32_t>(rng.uniform_below(clusters));
    out.labels[i] = label;
    for (std::uint32_t d = 0; d < dim; ++d) {
      // Box-Muller from two uniforms.
      const float u1 = std::max(rng.uniform_float(), 1e-7f);
      const float u2 = rng.uniform_float();
      const float gauss = std::sqrt(-2.0f * std::log(u1)) *
                          std::cos(6.28318530718f * u2);
      out.points.values[std::size_t{i} * dim + d] =
          means[std::size_t{label} * dim + d] + sigma * gauss;
    }
  }
  return out;
}

std::vector<float> to_dim_major(const Dataset& data) {
  std::vector<float> out(data.values.size());
  for (std::uint32_t i = 0; i < data.count; ++i) {
    for (std::uint32_t d = 0; d < data.dim; ++d) {
      out[std::size_t{d} * data.count + i] =
          data.values[std::size_t{i} * data.dim + d];
    }
  }
  return out;
}

}  // namespace gpuksel::knn
