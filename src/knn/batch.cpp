#include "knn/batch.hpp"

#include <utility>

#include "knn/distance.hpp"
#include "util/check.hpp"

namespace gpuksel::knn {

BatchedKnn::BatchedKnn(Dataset refs, BatchedKnnOptions options)
    : host_(std::move(refs)), options_(std::move(options)) {
  GPUKSEL_CHECK(options_.batch.tile_refs >= 1,
                "BatchedKnn needs tile_refs >= 1");
}

std::size_t BatchedKnn::enqueue(Dataset queries, std::uint32_t k) {
  GPUKSEL_CHECK(queries.count == 0 || queries.dim == dim(),
                "query/reference dim mismatch");
  GPUKSEL_CHECK(k >= 1, "BatchedKnn needs k >= 1");
  queue_.push_back(PendingBatch{std::move(queries), k});
  return queue_.size() - 1;
}

std::vector<KnnResult> BatchedKnn::serve(simt::Device& dev) {
  std::vector<KnnResult> results;
  results.reserve(queue_.size());
  while (!queue_.empty()) {
    const PendingBatch& batch = queue_.front();
    // run_batch may throw (fault without fallback): the batch stays queued
    // so the caller can inspect or retry it.
    results.push_back(run_batch(dev, batch.queries, batch.k));
    queue_.pop_front();
  }
  return results;
}

KnnResult BatchedKnn::search_gpu(simt::Device& dev, const Dataset& queries,
                                 std::uint32_t k) {
  GPUKSEL_CHECK(queries.count == 0 || queries.dim == dim(),
                "query/reference dim mismatch");
  GPUKSEL_CHECK(k >= 1, "BatchedKnn needs k >= 1");
  return run_batch(dev, queries, k);
}

void BatchedKnn::set_refs(Dataset refs) {
  GPUKSEL_CHECK(queue_.empty(),
                "BatchedKnn::set_refs with batches still pending");
  host_ = BruteForceKnn(std::move(refs));
  // The generation bump alone invalidates the cached upload (ensure_refs
  // keys on it): the next batch re-uploads even onto the same device with a
  // same-sized set.  The stale d_refs_ block is deliberately kept so
  // ensure_refs can recycle it through the device pool.
  ++generation_;
}

void BatchedKnn::ensure_refs(simt::Device& dev) {
  if (bound_device_ == &dev && uploaded_generation_ == generation_ &&
      d_refs_.size() == std::size_t{size()} * dim()) {
    return;
  }
  if (d_refs_.size() != 0) {
    // Recycle the stale upload's block — but only into the device it came
    // from, and only when that device is provably alive (it is `dev`).
    if (bound_device_ == &dev) dev.release(std::move(d_refs_));
    d_refs_ = {};
  }
  d_refs_ = dev.upload_pooled(std::span<const float>(host_.refs().values));
  bound_device_ = &dev;
  uploaded_generation_ = generation_;
}

KnnResult BatchedKnn::run_batch(simt::Device& dev, const Dataset& queries,
                                std::uint32_t k) {
  if (queries.count == 0) return {};
  // The whole pipeline runs under the configured NaN policy; the guard
  // restores the device's previous policy on every exit path.
  simt::ScopedNanPolicy nan_guard(dev.sanitizer(), options_.nan_policy);
  try {
    ensure_refs(dev);
    kernels::BatchOutput out = kernels::batched_select(
        dev, d_refs_, to_dim_major(queries), queries.count, size(), dim(), k,
        options_.batch);
    KnnResult result;
    result.neighbors = std::move(out.neighbors);
    result.distance_metrics = out.tile_metrics;
    result.select_metrics = out.reduce_metrics;
    const auto& cm = options_.cost_model;
    result.modeled_seconds =
        cm.kernel_seconds(out.tile_metrics) + cm.kernel_seconds(out.reduce_metrics);
    return result;
  } catch (const SimtFaultError& fault) {
    if (!options_.fallback_to_host) throw;
    KnnResult result = host_.search(queries, k, options_.host_fallback_algo,
                                    options_.nan_policy);
    result.faults.push_back(fault.record());
    result.used_host_fallback = true;
    return result;
  }
}

}  // namespace gpuksel::knn
