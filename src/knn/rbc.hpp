// Random Ball Cover (Cayton [8]) — the approximate k-NN index whose
// selection stage motivated part of the paper's related work (its odd-even
// sort limited it to k <= 32; built on this library's selection it has no
// such limit).
//
// Index: pick R random representatives; assign every point to its nearest
// representative ("ball").  Query: find the `probe` nearest representatives
// with an exact selection over the R representative distances, then run an
// exact selection over the union of their balls.  Larger `probe` trades time
// for recall; probe == R degenerates to exact brute force.
#pragma once

#include <cstdint>
#include <vector>

#include "core/kselect.hpp"
#include "knn/dataset.hpp"

namespace gpuksel::knn {

class RandomBallCover {
 public:
  /// Builds the index over `points` with `num_representatives` balls.
  RandomBallCover(Dataset points, std::uint32_t num_representatives,
                  std::uint64_t seed);

  [[nodiscard]] std::uint32_t representatives() const noexcept {
    return static_cast<std::uint32_t>(rep_ids_.size());
  }

  /// Points assigned to representative r (including r itself).
  [[nodiscard]] const std::vector<std::uint32_t>& ball(std::uint32_t r) const;

  /// Approximate k-NN of one query vector (length dim): search the `probe`
  /// nearest balls.  Returns up to k (squared distance, point index) pairs,
  /// ascending; selection inside uses `algo`.
  [[nodiscard]] std::vector<Neighbor> query(const float* q, std::uint32_t k,
                                            std::uint32_t probe,
                                            Algo algo = Algo::kMergeQueue) const;

  /// Batch interface over a query dataset.
  [[nodiscard]] std::vector<std::vector<Neighbor>> query_batch(
      const Dataset& queries, std::uint32_t k, std::uint32_t probe,
      Algo algo = Algo::kMergeQueue) const;

  /// Fraction of true k-NN retrieved, averaged over the batch (evaluation
  /// helper: `truth` must come from an exact search on the same data).
  [[nodiscard]] static double recall(
      const std::vector<std::vector<Neighbor>>& approx,
      const std::vector<std::vector<Neighbor>>& truth);

 private:
  Dataset points_;
  std::vector<std::uint32_t> rep_ids_;            ///< representative point ids
  std::vector<std::vector<std::uint32_t>> balls_; ///< members per rep
};

}  // namespace gpuksel::knn
