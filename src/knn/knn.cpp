#include "knn/knn.hpp"

#include "knn/distance.hpp"
#include "util/check.hpp"

namespace gpuksel::knn {

BruteForceKnn::BruteForceKnn(Dataset refs) : refs_(std::move(refs)) {
  GPUKSEL_CHECK(refs_.count >= 1, "reference set must not be empty");
}

KnnResult BruteForceKnn::search(const Dataset& queries, std::uint32_t k,
                                Algo algo, NanPolicy nan_policy) const {
  if (queries.count == 0) return {};  // an empty batch has an empty answer
  GPUKSEL_CHECK(queries.dim == refs_.dim, "query/reference dim mismatch");
  auto matrix = distance_matrix_host(
      queries.values, refs_.values, queries.count, refs_.count, queries.dim,
      kernels::MatrixLayout::kQueryMajor);
  // Applied to the whole matrix up front: kReject must throw outside the
  // OpenMP region below, and kSortLast then leaves the per-query loop NaN-free.
  apply_nan_policy(matrix, nan_policy);
  KnnResult result;
  result.neighbors.resize(queries.count);
#pragma omp parallel for schedule(static)
  for (std::int64_t q = 0; q < static_cast<std::int64_t>(queries.count); ++q) {
    const std::span<const float> row(
        matrix.data() + static_cast<std::size_t>(q) * refs_.count, refs_.count);
    result.neighbors[static_cast<std::size_t>(q)] =
        select_k_smallest(row, k, algo);
  }
  return result;
}

KnnResult BruteForceKnn::search_gpu(simt::Device& dev, const Dataset& queries,
                                    std::uint32_t k,
                                    const GpuSearchOptions& options) const {
  // An empty batch is answered without touching the device: the selection
  // kernels require >= 1 query (padded_threads(0) launches zero warps).
  if (queries.count == 0) return {};
  GPUKSEL_CHECK(queries.dim == refs_.dim, "query/reference dim mismatch");
  // Run the whole pipeline under the requested NaN policy; the guard restores
  // the device's previous policy on every exit path.
  simt::ScopedNanPolicy nan_guard(dev.sanitizer(), options.nan_policy);
  try {
    return search_gpu_impl(dev, queries, k, options);
  } catch (const SimtFaultError& fault) {
    if (!options.fallback_to_host) throw;
    // The fault aborted the pipeline mid-launch, so partial GPU output is
    // unusable; the host path re-answers the whole batch with the same
    // selection tie-breaking and NaN policy.
    KnnResult result =
        search(queries, k, options.host_fallback_algo, options.nan_policy);
    result.faults.push_back(fault.record());
    result.used_host_fallback = true;
    return result;
  }
}

KnnResult BruteForceKnn::search_gpu_impl(simt::Device& dev,
                                         const Dataset& queries,
                                         std::uint32_t k,
                                         const GpuSearchOptions& options) const {
  const auto queries_dim_major = to_dim_major(queries);
  auto dist = kernels::gpu_distance_matrix(dev, queries_dim_major,
                                           refs_.values, queries.count,
                                           refs_.count, refs_.dim,
                                           options.select.layout);

  const std::span<const float> matrix(dist.matrix.host());
  kernels::SelectOutput sel =
      options.use_hierarchical_partition
          ? kernels::hp_select(dev, matrix, queries.count, refs_.count, k,
                               options.select, options.hp_group)
          : kernels::flat_select(dev, matrix, queries.count, refs_.count, k,
                                 options.select);

  KnnResult result;
  result.neighbors = std::move(sel.neighbors);
  result.distance_metrics = dist.metrics;
  result.select_metrics = sel.metrics + sel.build_metrics;
  const auto& cm = options.cost_model;
  result.modeled_seconds = cm.kernel_seconds(dist.metrics) +
                           cm.kernel_seconds(sel.build_metrics) +
                           cm.kernel_seconds(sel.metrics);
  return result;
}

}  // namespace gpuksel::knn
