// Host-side Euclidean distance computation (reference implementation and the
// CPU half of the paper's CPU-vs-GPU comparison).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/kernels/queue_layout.hpp"

namespace gpuksel::knn {

/// Squared Euclidean distance between two dim-length vectors.
[[nodiscard]] float squared_euclidean(const float* a, const float* b,
                                      std::uint32_t dim) noexcept;

/// Computes the full Q x N squared-distance matrix on the host (OpenMP over
/// queries).  `queries` and `refs` are row-major.  Output is written in the
/// requested device layout so it can be fed straight into the kernels.
[[nodiscard]] std::vector<float> distance_matrix_host(
    std::span<const float> queries, std::span<const float> refs,
    std::uint32_t num_queries, std::uint32_t n, std::uint32_t dim,
    kernels::MatrixLayout layout = kernels::MatrixLayout::kReferenceMajor);

}  // namespace gpuksel::knn
