// Synthetic dataset generators matching the paper's evaluation setup:
// random tuples of dimensionality 128 with values uniform in [0, 1].
#pragma once

#include <cstdint>
#include <vector>

namespace gpuksel::knn {

/// A row-major matrix of feature vectors: element (i, d) at i*dim + d.
struct Dataset {
  std::vector<float> values;
  std::uint32_t count = 0;
  std::uint32_t dim = 0;

  [[nodiscard]] const float* row(std::uint32_t i) const noexcept {
    return values.data() + std::size_t{i} * dim;
  }
};

/// `count` uniform-[0,1) vectors of dimension `dim` (the paper's synthetic
/// workload; dim = 128 there).
[[nodiscard]] Dataset make_uniform_dataset(std::uint32_t count,
                                           std::uint32_t dim,
                                           std::uint64_t seed);

/// A labelled Gaussian-mixture dataset for the classifier example: `clusters`
/// isotropic Gaussians with means uniform in [0,1]^dim and the given sigma.
struct LabelledDataset {
  Dataset points;
  std::vector<std::uint32_t> labels;
};

[[nodiscard]] LabelledDataset make_gaussian_clusters(std::uint32_t count,
                                                     std::uint32_t dim,
                                                     std::uint32_t clusters,
                                                     float sigma,
                                                     std::uint64_t seed);

/// Re-packs a row-major dataset into dim-major order (element (i, d) at
/// d*count + i), the layout the distance kernel wants for queries.
[[nodiscard]] std::vector<float> to_dim_major(const Dataset& data);

}  // namespace gpuksel::knn
