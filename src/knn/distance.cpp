#include "knn/distance.hpp"

#include "util/check.hpp"

namespace gpuksel::knn {

float squared_euclidean(const float* a, const float* b,
                        std::uint32_t dim) noexcept {
  float acc = 0.0f;
  for (std::uint32_t d = 0; d < dim; ++d) {
    const float diff = a[d] - b[d];
    acc += diff * diff;
  }
  return acc;
}

std::vector<float> distance_matrix_host(std::span<const float> queries,
                                        std::span<const float> refs,
                                        std::uint32_t num_queries,
                                        std::uint32_t n, std::uint32_t dim,
                                        kernels::MatrixLayout layout) {
  GPUKSEL_CHECK(queries.size() == std::size_t{num_queries} * dim,
                "query buffer size mismatch");
  GPUKSEL_CHECK(refs.size() == std::size_t{n} * dim,
                "reference buffer size mismatch");
  std::vector<float> out(std::size_t{num_queries} * n);
#pragma omp parallel for schedule(static)
  for (std::int64_t q = 0; q < static_cast<std::int64_t>(num_queries); ++q) {
    const float* qv = queries.data() + static_cast<std::size_t>(q) * dim;
    for (std::uint32_t r = 0; r < n; ++r) {
      const float d = squared_euclidean(qv, refs.data() + std::size_t{r} * dim,
                                        dim);
      const std::size_t idx =
          layout == kernels::MatrixLayout::kReferenceMajor
              ? std::size_t{r} * num_queries + static_cast<std::size_t>(q)
              : static_cast<std::size_t>(q) * n + r;
      out[idx] = d;
    }
  }
  return out;
}

}  // namespace gpuksel::knn
