// IVF (inverted-file) pruned k-NN index: the ROADMAP's step-change item for
// million-row reference sets.
//
// A coarse k-means quantizer splits the reference set into nlist inverted
// lists stored as contiguous row blocks; a query scores the nlist centroids,
// probes only its nprobe closest lists, and merges the per-list partial top-k
// — O(n * nprobe / nlist) distance work instead of O(n).  nprobe is the
// recall/qps knob: nprobe == nlist scans every row exactly once and is
// bit-identical to BatchedKnn (the exactness contract the differential tests
// pin); smaller nprobe trades recall for speed along the fig13 curve.
//
// Determinism: training is host-side k-means++ / Lloyd over a seeded sample
// (serial, fixed iteration order) plus one device assignment pass, so the
// index depends only on (refs, IvfParams) — bit-identical across executor
// thread counts and SIMD backends.  search_host is a scalar mirror of the
// device pipeline with the same (dist, index) ordering and NaN policy and
// produces byte-identical neighbors.
#pragma once

#include <cstdint>
#include <vector>

#include "knn/batch.hpp"

namespace gpuksel::knn {

/// Index-construction parameters.  Everything is seeded: the same refs and
/// params always build the same index.
struct IvfParams {
  std::uint32_t nlist = 16;   ///< inverted lists (clamped to the row count)
  std::uint32_t nprobe = 4;   ///< default lists probed per query
  std::uint32_t kmeans_iters = 8;   ///< Lloyd refinement passes
  std::uint32_t train_sample = 8192;  ///< rows sampled for host training
  std::uint64_t seed = 0x5eedf11eULL;
};

struct IvfOptions {
  IvfParams params;
  /// Batched-pipeline options shared with the exact path: select config,
  /// cost model, NaN policy, fault fallback.
  BatchedKnnOptions batch;
};

/// The trained quantizer + inverted-list geometry (host-resident).
struct IvfIndex {
  std::uint32_t nlist = 0;  ///< effective list count (min(params.nlist, n))
  std::uint32_t dim = 0;
  std::vector<float> centroids;           ///< nlist x dim row-major
  std::vector<std::uint32_t> list_begin;  ///< nlist + 1 sorted-row offsets
  std::vector<std::uint32_t> row_ids;     ///< sorted position -> original row
  simt::KernelMetrics train_metrics;      ///< the "ivf_train" device pass
};

class IvfKnn {
 public:
  /// Indexes the reference set (row-major `count x dim`).  Training is a
  /// separate explicit step (it needs a device for the assignment pass).
  explicit IvfKnn(Dataset refs, IvfOptions options = {});

  [[nodiscard]] std::uint32_t size() const noexcept { return batched_.size(); }
  [[nodiscard]] std::uint32_t dim() const noexcept { return batched_.dim(); }
  [[nodiscard]] const IvfOptions& options() const noexcept { return options_; }
  [[nodiscard]] const IvfIndex& index() const noexcept { return index_; }

  /// The exact batched engine over the same (original-order) reference set:
  /// the differential-test baseline and the owner of the reference
  /// generation the stale-centroid guard checks.
  [[nodiscard]] BatchedKnn& batched() noexcept { return batched_; }
  [[nodiscard]] const BatchedKnn& batched() const noexcept { return batched_; }

  /// Replaces the reference set.  The trained index is invalidated (the
  /// generation guard): search_gpu/search_host refuse until train() runs
  /// again against the new rows.
  void set_refs(Dataset refs);

  /// True when a trained index exists *and* it was built against the current
  /// reference generation.
  [[nodiscard]] bool trained() const noexcept {
    return trained_ && trained_generation_ == batched_.generation();
  }

  /// The recall/qps knob.  Clamped to the effective nlist at search time.
  [[nodiscard]] std::uint32_t nprobe() const noexcept { return nprobe_; }
  void set_nprobe(std::uint32_t nprobe);

  /// Trains the quantizer: seeded host-side k-means++ / Lloyd over a sample,
  /// then one "ivf_train" device pass assigning every row, then the
  /// inverted-list build (rows ascending within each list).
  void train(simt::Device& dev);

  /// Pruned device search: "coarse_quantize" + "list_scan" + "ivf_reduce".
  /// distance_metrics covers coarse + scan, select_metrics the reduce.
  /// Returns min(k, rows scanned) neighbors per query, ascending by
  /// (dist, original row id).  On a caught SimtFaultError with
  /// options.batch.fallback_to_host set, the batch is re-answered by
  /// search_host (byte-identical to the fault-free device result).
  [[nodiscard]] KnnResult search_gpu(simt::Device& dev, const Dataset& queries,
                                     std::uint32_t k);

  /// Scalar mirror of search_gpu (same probes, same candidate ordering, same
  /// NaN policy): byte-identical neighbors, zero device metrics.
  [[nodiscard]] KnnResult search_host(const Dataset& queries,
                                      std::uint32_t k) const;

  /// A shard owning lists [list_lo, list_hi) of a trained global index: the
  /// full centroid set (so probe selection matches the global index), but
  /// only the owned lists hold rows — probes into foreign lists scan
  /// nothing.  Row ids stay global, so merged shard results are byte-
  /// identical to the global index's (shard_merge needs no remap).
  [[nodiscard]] static IvfKnn shard_view(const IvfKnn& global,
                                         std::uint32_t list_lo,
                                         std::uint32_t list_hi,
                                         IvfOptions options);

  /// Offset of this shard's rows in the global *reordered* row space (0 for
  /// a full index): the contiguity key shard reports use.
  [[nodiscard]] std::uint32_t reordered_begin() const noexcept {
    return reordered_begin_;
  }

 private:
  void ensure_device(simt::Device& dev);
  [[nodiscard]] std::vector<std::vector<std::uint32_t>> host_coarse(
      const Dataset& queries, std::uint32_t nprobe) const;

  BatchedKnn batched_;
  IvfOptions options_;
  std::uint32_t nprobe_ = 0;
  IvfIndex index_;
  Dataset sorted_refs_;  ///< rows reordered into list order
  bool trained_ = false;
  std::uint64_t trained_generation_ = 0;
  std::uint32_t reordered_begin_ = 0;

  /// Non-const: stale index uploads are recycled through this device's pool.
  simt::Device* bound_device_ = nullptr;
  simt::DeviceBuffer<float> d_sorted_;
  simt::DeviceBuffer<float> d_centroids_;
};

}  // namespace gpuksel::knn
