// Batched multi-query k-NN serving front end.
//
// BruteForceKnn answers one query set per call and re-uploads nothing but
// also amortizes nothing; BatchedKnn is the serving-path wrapper the ROADMAP
// asks for: the reference set is uploaded to the device once and reused by
// every batch, query batches are accepted into a FIFO queue and served in
// order, and each batch runs the sharded tile pipeline (batch_pipeline.hpp)
// so one staged distance tile is scored against every query in the batch.
// Results are bit-identical to per-query BruteForceKnn::search_gpu.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "core/kernels/batch_pipeline.hpp"
#include "knn/knn.hpp"

namespace gpuksel::knn {

/// Options for the batched GPU path; mirrors GpuSearchOptions where the two
/// paths share semantics (NaN policy, fault fallback, cost model).
struct BatchedKnnOptions {
  kernels::BatchConfig batch;
  simt::CostModel cost_model = simt::c2075_model();
  /// NaN semantics for the whole batched pipeline, including distances
  /// *computed* NaN inside the fused tile kernel (inf-inf, NaN features):
  /// kReject faults, kSortLast ranks them after every real candidate.
  NanPolicy nan_policy = NanPolicy::kPropagate;
  /// When true, a SimtFaultError from the batched pipeline is recorded and
  /// the batch is re-answered on the host path instead of propagating.
  bool fallback_to_host = false;
  Algo host_fallback_algo = Algo::kMergeQueue;
};

class BatchedKnn {
 public:
  /// Indexes the reference set (row-major `count x dim`).
  explicit BatchedKnn(Dataset refs, BatchedKnnOptions options = {});

  [[nodiscard]] std::uint32_t size() const noexcept { return host_.size(); }
  [[nodiscard]] std::uint32_t dim() const noexcept { return host_.dim(); }
  [[nodiscard]] const BatchedKnnOptions& options() const noexcept {
    return options_;
  }
  /// The host-path engine sharing this reference set (fallbacks, tests).
  [[nodiscard]] const BruteForceKnn& host() const noexcept { return host_; }

  /// Replaces the reference set (re-sharding a serving front end).  The
  /// cached device upload is invalidated even when the new set has the same
  /// row count — the amortization key is the host data, not its size.
  void set_refs(Dataset refs);

  /// Monotone counter bumped by every set_refs.  Anything derived from the
  /// reference set (an IvfKnn's trained centroids and inverted lists) records
  /// the generation it was built against and must refuse to serve when the
  /// counter has moved — the stale-centroid guard.
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_;
  }

  /// Appends a query batch to the serving queue; returns its position.
  /// An empty batch is valid (served as an empty result).
  std::size_t enqueue(Dataset queries, std::uint32_t k);

  /// Batches waiting to be served.
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

  /// Serves every pending batch in FIFO order on the device, one KnnResult
  /// per batch.  The reference upload happens on the first batch served on a
  /// device and is reused by the rest (watch transfers().bytes_h2d).  If a
  /// batch faults and fallback_to_host is off, the error propagates with the
  /// faulting batch still at the head of the queue.
  [[nodiscard]] std::vector<KnnResult> serve(simt::Device& dev);

  /// One-shot convenience: serves a single batch immediately, bypassing the
  /// queue (the queue stays untouched).
  [[nodiscard]] KnnResult search_gpu(simt::Device& dev, const Dataset& queries,
                                     std::uint32_t k);

 private:
  struct PendingBatch {
    Dataset queries;
    std::uint32_t k = 0;
  };

  [[nodiscard]] KnnResult run_batch(simt::Device& dev, const Dataset& queries,
                                    std::uint32_t k);
  /// Uploads the reference set if this device doesn't hold it yet.
  void ensure_refs(simt::Device& dev);

  BruteForceKnn host_;
  BatchedKnnOptions options_;
  std::deque<PendingBatch> queue_;
  simt::DeviceBuffer<float> d_refs_;
  /// Non-const: a stale d_refs_ block is recycled through this device's
  /// buffer pool when the same device re-uploads.
  simt::Device* bound_device_ = nullptr;
  /// Generation d_refs_ was uploaded from.  Keying the cached upload on the
  /// generation counter (not the host data pointer) is ABA-proof: a replaced
  /// reference set whose storage lands at the freed set's address and size
  /// can never masquerade as the cached upload, because set_refs always
  /// bumps the generation.  That is also what lets set_refs keep the stale
  /// device block around for pool recycling instead of dropping it.
  std::uint64_t uploaded_generation_ = 0;
  std::uint64_t generation_ = 0;
};

}  // namespace gpuksel::knn
