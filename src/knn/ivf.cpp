#include "knn/ivf.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "core/kernels/ivf_kernels.hpp"
#include "knn/distance.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace gpuksel::knn {

namespace {

/// The device queues only admit candidates that beat the sentinel slot, so a
/// +inf distance (NaN remapped under kSortLast, or a propagated NaN — every
/// lex comparison with it is false) never surfaces.  The host mirror applies
/// the same admission rule.
bool admitted(const Neighbor& n) noexcept { return n < kEmptySlot; }

}  // namespace

IvfKnn::IvfKnn(Dataset refs, IvfOptions options)
    : batched_(std::move(refs), options.batch), options_(std::move(options)) {
  GPUKSEL_CHECK(options_.params.nlist >= 1, "IvfKnn needs nlist >= 1");
  GPUKSEL_CHECK(options_.params.nprobe >= 1, "IvfKnn needs nprobe >= 1");
  GPUKSEL_CHECK(options_.params.train_sample >= 1,
                "IvfKnn needs train_sample >= 1");
  nprobe_ = options_.params.nprobe;
}

void IvfKnn::set_refs(Dataset refs) {
  batched_.set_refs(std::move(refs));
  // trained() now reports false via the generation mismatch even before the
  // eager reset below — the reset just frees the stale structures.
  trained_ = false;
  index_ = {};
  sorted_refs_ = {};
  bound_device_ = nullptr;
  d_sorted_ = {};
  d_centroids_ = {};
}

void IvfKnn::set_nprobe(std::uint32_t nprobe) {
  GPUKSEL_CHECK(nprobe >= 1, "IvfKnn needs nprobe >= 1");
  nprobe_ = nprobe;
}

void IvfKnn::train(simt::Device& dev) {
  const std::uint32_t n = size();
  const std::uint32_t d = dim();
  GPUKSEL_CHECK(n >= 1 && d >= 1, "IvfKnn::train needs a non-empty reference set");
  const IvfParams& p = options_.params;
  const std::uint32_t nlist = std::min(p.nlist, n);
  const Dataset& refs = batched_.host().refs();

  // --- seeded training sample ---------------------------------------------
  std::vector<std::uint32_t> sample;
  if (n > p.train_sample) {
    const std::vector<std::uint32_t> perm = random_permutation(n, p.seed);
    sample.assign(perm.begin(), perm.begin() + p.train_sample);
  } else {
    sample.resize(n);
    std::iota(sample.begin(), sample.end(), 0u);
  }
  const std::size_t s = sample.size();

  // --- k-means++ seeding (serial, fully determined by p.seed) --------------
  Rng rng(p.seed ^ 0x9e3779b97f4a7c15ULL);
  std::vector<float> centroids(std::size_t{nlist} * d);
  const auto centroid = [&](std::uint32_t c) {
    return centroids.data() + std::size_t{c} * d;
  };
  const auto adopt = [&](std::uint32_t c, std::uint32_t row) {
    std::copy_n(refs.row(row), d, centroid(c));
  };
  adopt(0, sample[rng.uniform_below(s)]);
  std::vector<double> mind2(s);
  for (std::size_t i = 0; i < s; ++i) {
    mind2[i] = squared_euclidean(refs.row(sample[i]), centroid(0), d);
  }
  for (std::uint32_t c = 1; c < nlist; ++c) {
    double total = 0.0;
    for (const double v : mind2) total += v;
    std::size_t pick = 0;
    if (std::isfinite(total) && total > 0.0) {
      // D^2 weighting: walk the prefix sums to the drawn mass.
      const double r = rng.uniform_double() * total;
      double acc = 0.0;
      for (std::size_t i = 0; i < s; ++i) {
        acc += mind2[i];
        if (acc > r) {
          pick = i;
          break;
        }
      }
    } else {
      // All-duplicate (or NaN-poisoned) sample: fall back to uniform picks.
      pick = rng.uniform_below(s);
    }
    adopt(c, sample[pick]);
    for (std::size_t i = 0; i < s; ++i) {
      const double d2 = squared_euclidean(refs.row(sample[i]), centroid(c), d);
      if (d2 < mind2[i]) mind2[i] = d2;
    }
  }

  // --- Lloyd refinement (serial, ascending row order) ----------------------
  std::vector<double> sums(std::size_t{nlist} * d);
  std::vector<std::uint32_t> counts(nlist);
  for (std::uint32_t iter = 0; iter < p.kmeans_iters; ++iter) {
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0u);
    for (std::size_t i = 0; i < s; ++i) {
      const float* row = refs.row(sample[i]);
      float best_d = std::numeric_limits<float>::max();
      std::uint32_t best_c = 0;
      for (std::uint32_t c = 0; c < nlist; ++c) {
        const float d2 = squared_euclidean(row, centroid(c), d);
        if (d2 < best_d) {  // (d2, c) lexicographic: first wins ties
          best_d = d2;
          best_c = c;
        }
      }
      double* sum = sums.data() + std::size_t{best_c} * d;
      for (std::uint32_t f = 0; f < d; ++f) sum[f] += row[f];
      ++counts[best_c];
    }
    for (std::uint32_t c = 0; c < nlist; ++c) {
      if (counts[c] == 0) continue;  // empty cluster keeps its old centroid
      float* cen = centroid(c);
      const double* sum = sums.data() + std::size_t{c} * d;
      for (std::uint32_t f = 0; f < d; ++f) {
        cen[f] = static_cast<float>(sum[f] / counts[c]);
      }
    }
  }

  // --- device assignment pass over the full set ----------------------------
  index_ = {};
  index_.nlist = nlist;
  index_.dim = d;
  // Training scratch goes through the pool: a retraining index (background
  // compaction, set_refs churn) reuses the blocks of the previous pass.
  auto d_refs_dm = dev.upload_pooled(
      std::span<const float>(to_dim_major(refs)));
  auto d_cent = dev.upload_pooled(std::span<const float>(centroids));
  std::vector<std::uint32_t> assign = kernels::ivf_assign(
      dev, d_refs_dm, d_cent, n, d, nlist, &index_.train_metrics);
  dev.release(std::move(d_refs_dm));
  dev.release(std::move(d_cent));
  // A row whose every centroid distance is NaN (or remapped +inf) never
  // beats the running-min sentinel and comes back unassigned: pin it to
  // list 0 — deterministic, and search never admits its distances anyway.
  for (std::uint32_t& a : assign) {
    if (a >= nlist) a = 0;
  }
  index_.centroids = std::move(centroids);

  // --- inverted lists: counting sort, original row order within a list -----
  index_.list_begin.assign(std::size_t{nlist} + 1, 0);
  for (std::uint32_t r = 0; r < n; ++r) ++index_.list_begin[assign[r] + 1];
  for (std::uint32_t l = 0; l < nlist; ++l) {
    index_.list_begin[l + 1] += index_.list_begin[l];
  }
  index_.row_ids.resize(n);
  std::vector<std::uint32_t> cursor(index_.list_begin.begin(),
                                    index_.list_begin.end() - 1);
  for (std::uint32_t r = 0; r < n; ++r) {
    index_.row_ids[cursor[assign[r]]++] = r;
  }
  sorted_refs_.values.resize(std::size_t{n} * d);
  sorted_refs_.count = n;
  sorted_refs_.dim = d;
  for (std::uint32_t pos = 0; pos < n; ++pos) {
    std::copy_n(refs.row(index_.row_ids[pos]), d,
                sorted_refs_.values.data() + std::size_t{pos} * d);
  }

  trained_ = true;
  trained_generation_ = batched_.generation();
  reordered_begin_ = 0;
  // Stale serving uploads of the previous index: recycle when they live on
  // the training device (the only device provably alive here), else drop.
  if (bound_device_ == &dev && d_sorted_.size() != 0) {
    dev.release(std::move(d_sorted_));
    dev.release(std::move(d_centroids_));
  }
  bound_device_ = nullptr;
  d_sorted_ = {};
  d_centroids_ = {};
}

void IvfKnn::ensure_device(simt::Device& dev) {
  if (bound_device_ == &dev) return;
  d_sorted_ = dev.upload_pooled(std::span<const float>(sorted_refs_.values));
  d_centroids_ = dev.upload_pooled(std::span<const float>(index_.centroids));
  bound_device_ = &dev;
}

KnnResult IvfKnn::search_gpu(simt::Device& dev, const Dataset& queries,
                             std::uint32_t k) {
  GPUKSEL_CHECK(k >= 1, "IvfKnn needs k >= 1");
  GPUKSEL_CHECK(queries.count == 0 || queries.dim == dim(),
                "query/reference dim mismatch");
  GPUKSEL_CHECK(trained(),
                "IvfKnn::search_gpu without a current trained index (train() "
                "not run, or the reference set changed since training)");
  if (queries.count == 0) return {};
  const std::uint32_t nprobe = std::min(nprobe_, index_.nlist);
  const kernels::SelectConfig& sel = options_.batch.batch.select;
  simt::ScopedNanPolicy nan_guard(dev.sanitizer(), options_.batch.nan_policy);
  try {
    ensure_device(dev);
    const std::vector<float> qdm = to_dim_major(queries);
    simt::KernelMetrics coarse;
    const std::vector<std::vector<std::uint32_t>> probes =
        kernels::ivf_coarse_quantize(dev, d_centroids_, qdm, queries.count,
                                     index_.nlist, dim(), nprobe, sel, &coarse);
    const kernels::IvfListsView lists{index_.list_begin, index_.row_ids};
    kernels::IvfScanOutput out = kernels::ivf_list_scan(
        dev, d_sorted_, lists, qdm, queries.count, dim(), probes, k, sel);
    KnnResult result;
    result.neighbors = std::move(out.neighbors);
    result.distance_metrics = coarse;
    result.distance_metrics += out.scan_metrics;
    result.select_metrics = out.reduce_metrics;
    const auto& cm = options_.batch.cost_model;
    result.modeled_seconds = cm.kernel_seconds(coarse) +
                             cm.kernel_seconds(out.scan_metrics) +
                             cm.kernel_seconds(out.reduce_metrics);
    return result;
  } catch (const SimtFaultError& fault) {
    if (!options_.batch.fallback_to_host) throw;
    KnnResult result = search_host(queries, k);
    result.faults.push_back(fault.record());
    result.used_host_fallback = true;
    return result;
  }
}

std::vector<std::vector<std::uint32_t>> IvfKnn::host_coarse(
    const Dataset& queries, std::uint32_t nprobe) const {
  const std::uint32_t d = dim();
  std::vector<std::vector<std::uint32_t>> probes(queries.count);
  std::vector<float> cdist(index_.nlist);
  std::vector<Neighbor> cands;
  for (std::uint32_t q = 0; q < queries.count; ++q) {
    for (std::uint32_t c = 0; c < index_.nlist; ++c) {
      cdist[c] = squared_euclidean(
          queries.row(q), index_.centroids.data() + std::size_t{c} * d, d);
    }
    apply_nan_policy(cdist, options_.batch.nan_policy);
    cands.clear();
    for (std::uint32_t c = 0; c < index_.nlist; ++c) {
      const Neighbor nb{cdist[c], c};
      if (admitted(nb)) cands.push_back(nb);
    }
    std::sort(cands.begin(), cands.end());
    if (cands.size() > nprobe) cands.resize(nprobe);
    probes[q].reserve(cands.size());
    for (const Neighbor& nb : cands) probes[q].push_back(nb.index);
  }
  return probes;
}

KnnResult IvfKnn::search_host(const Dataset& queries, std::uint32_t k) const {
  GPUKSEL_CHECK(k >= 1, "IvfKnn needs k >= 1");
  GPUKSEL_CHECK(queries.count == 0 || queries.dim == dim(),
                "query/reference dim mismatch");
  GPUKSEL_CHECK(trained(),
                "IvfKnn::search_host without a current trained index (train() "
                "not run, or the reference set changed since training)");
  if (queries.count == 0) return {};
  const std::uint32_t d = dim();
  const std::uint32_t nprobe = std::min(nprobe_, index_.nlist);
  const std::vector<std::vector<std::uint32_t>> probes =
      host_coarse(queries, nprobe);

  KnnResult result;
  result.neighbors.resize(queries.count);
  std::vector<float> dists;
  std::vector<std::uint32_t> ids;
  for (std::uint32_t q = 0; q < queries.count; ++q) {
    dists.clear();
    ids.clear();
    for (const std::uint32_t l : probes[q]) {
      for (std::uint32_t pos = index_.list_begin[l];
           pos < index_.list_begin[l + 1]; ++pos) {
        dists.push_back(squared_euclidean(queries.row(q),
                                          sorted_refs_.row(pos), d));
        ids.push_back(index_.row_ids[pos]);
      }
    }
    apply_nan_policy(dists, options_.batch.nan_policy);
    auto& nbrs = result.neighbors[q];
    for (std::size_t i = 0; i < dists.size(); ++i) {
      const Neighbor nb{dists[i], ids[i]};
      if (admitted(nb)) nbrs.push_back(nb);
    }
    std::sort(nbrs.begin(), nbrs.end());
    if (nbrs.size() > k) nbrs.resize(k);
  }
  return result;
}

IvfKnn IvfKnn::shard_view(const IvfKnn& global, std::uint32_t list_lo,
                          std::uint32_t list_hi, IvfOptions options) {
  GPUKSEL_CHECK(global.trained(), "IvfKnn::shard_view needs a trained index");
  GPUKSEL_CHECK(list_lo < list_hi && list_hi <= global.index_.nlist,
                "IvfKnn::shard_view needs a non-empty list range");
  const std::uint32_t nlist = global.index_.nlist;
  const std::uint32_t d = global.dim();
  const std::uint32_t base = global.index_.list_begin[list_lo];
  const std::uint32_t end = global.index_.list_begin[list_hi];
  const std::uint32_t rows = end - base;
  GPUKSEL_CHECK(rows >= 1, "IvfKnn::shard_view needs at least one owned row");

  Dataset owned;
  owned.count = rows;
  owned.dim = d;
  owned.values.assign(
      global.sorted_refs_.values.begin() + std::size_t{base} * d,
      global.sorted_refs_.values.begin() + std::size_t{end} * d);

  options.params = global.options_.params;
  IvfKnn shard(owned, std::move(options));
  shard.nprobe_ = global.nprobe_;
  shard.index_.nlist = nlist;
  shard.index_.dim = d;
  shard.index_.centroids = global.index_.centroids;  // full quantizer
  shard.index_.list_begin.resize(std::size_t{nlist} + 1);
  for (std::uint32_t l = 0; l <= nlist; ++l) {
    // Foreign lists collapse to empty local ranges; owned lists keep their
    // global extents shifted into local row space.
    shard.index_.list_begin[l] =
        std::clamp(global.index_.list_begin[std::clamp(l, list_lo, list_hi)],
                   base, end) -
        base;
  }
  shard.index_.row_ids.assign(global.index_.row_ids.begin() + base,
                              global.index_.row_ids.begin() + end);
  shard.sorted_refs_ = std::move(owned);
  shard.trained_ = true;
  shard.trained_generation_ = shard.batched_.generation();
  shard.reordered_begin_ = base;
  return shard;
}

}  // namespace gpuksel::knn
