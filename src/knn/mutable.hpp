// Mutable reference sets: streaming upserts and tombstone-aware deletes on
// top of the immutable engines.
//
// MutableKnn wraps a base engine (BatchedKnn or IvfKnn) built over an
// immutable snapshot of rows, plus a small append-only *delta shard* holding
// rows upserted since the snapshot and a *tombstone mask* marking rows
// logically deleted.  A query is answered from both sources — the base
// engine's partial top-k and a batched_select over the delta shard — reduced
// by the tombstone-aware delta_merge kernel, which suppresses dead rows on
// the device before they can enter the merge queue.
//
// The differential contract: search() is byte-identical to building a fresh
// engine over the logically-current rows (live base rows in slot order, then
// live delta rows in insertion order) and searching it.  Neighbor indices
// are *logical positions* in that order — callers that need user-visible ids
// map through live_ids().  For an IVF base the contract holds unreservedly
// right after a compaction (identical training inputs ⇒ identical index) and
// in the exact regime (nprobe == nlist) while a delta/tombstones exist; at
// pruning nprobe the base engine probes the *old* snapshot's lists, which is
// the standard freshness/recall tradeoff of IVF streaming — see DESIGN.md.
//
// Compaction rebuilds the base engine over the live rows on a private
// compaction device, off the serving path (compact_async), and the new
// snapshot is adopted atomically at the next serving operation *only if* no
// mutation happened since the rebuild was captured (epoch check) — otherwise
// it is discarded and counted as aborted.  A fault during the rebuild
// (chaos testing) leaves the old snapshot serving, counted as failed.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "knn/ivf.hpp"

namespace gpuksel::knn {

/// Which engine serves the immutable base snapshot.
enum class MutableBase {
  kFlat,  ///< BatchedKnn: exact, no training step
  kIvf,   ///< IvfKnn: trained on the compaction device at (re)build time
};

struct MutableKnnOptions {
  MutableBase base = MutableBase::kFlat;
  /// IVF construction parameters (kIvf base only).
  IvfParams ivf;
  /// Pipeline options shared by the base engine, the delta scan and the
  /// merge (select config, cost model, NaN policy).  fallback_to_host is
  /// owned by MutableKnn itself: the wrapped engines always propagate so
  /// the composite can fall back over the *live* rows.
  BatchedKnnOptions batch;
  /// maybe_compact() triggers when delta rows exceed this fraction of the
  /// total slot space...
  double max_delta_fraction = 0.25;
  /// ...or tombstones do.
  double max_tombstone_fraction = 0.25;
  /// No automatic compaction below this many total slots (base + delta).
  std::uint32_t min_compact_rows = 64;
};

/// Point-in-time counters; partition invariants the tests pin:
/// base_rows + delta_rows == tombstones + live_rows, and
/// delta_bytes_uploaded == 4 * (delta_rows_synced * dim +
/// tombstone_words_synced).
struct MutableStats {
  std::uint64_t upserts = 0;
  std::uint64_t removes = 0;
  std::uint64_t compactions = 0;          ///< snapshots adopted
  std::uint64_t compactions_aborted = 0;  ///< stale epoch at adoption time
  std::uint64_t compactions_failed = 0;   ///< rebuild faulted; old snapshot serves
  std::uint32_t base_rows = 0;
  std::uint32_t delta_rows = 0;
  std::uint32_t tombstones = 0;  ///< dead slots, base + delta
  std::uint32_t live_rows = 0;
  std::uint64_t generation = 0;  ///< bumped per adopted compaction
  /// H2D bytes spent keeping the delta shard + tombstone mask device-
  /// resident: scales with the *delta*, never with the base row count.
  std::uint64_t delta_bytes_uploaded = 0;
  std::uint64_t delta_rows_synced = 0;       ///< rows uploaded (dim floats each)
  std::uint64_t tombstone_words_synced = 0;  ///< 4-byte mask words uploaded
};

class MutableKnn {
 public:
  /// Builds the initial base snapshot over `initial` (count >= 1), assigning
  /// ids id_base .. id_base + count - 1.  An IVF base trains immediately on
  /// the private compaction device.
  explicit MutableKnn(Dataset initial, MutableKnnOptions options = {},
                      std::uint32_t id_base = 0);
  ~MutableKnn();

  MutableKnn(const MutableKnn&) = delete;
  MutableKnn& operator=(const MutableKnn&) = delete;

  [[nodiscard]] std::uint32_t dim() const noexcept { return dim_; }
  [[nodiscard]] std::uint32_t base_rows() const noexcept {
    return static_cast<std::uint32_t>(base_ids_.size());
  }
  [[nodiscard]] std::uint32_t delta_rows() const noexcept {
    return static_cast<std::uint32_t>(delta_ids_.size());
  }
  [[nodiscard]] std::uint32_t tombstones() const noexcept {
    return dead_base_ + dead_delta_;
  }
  [[nodiscard]] std::uint32_t live_rows() const noexcept {
    return base_rows() + delta_rows() - tombstones();
  }
  [[nodiscard]] std::uint64_t generation() const noexcept { return generation_; }
  [[nodiscard]] const MutableKnnOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] MutableStats stats() const noexcept;
  [[nodiscard]] bool contains(std::uint32_t id) const {
    return id_to_slot_.contains(id);
  }

  /// Inserts or replaces the row with the given id (a replace tombstones the
  /// old slot and appends to the delta shard, like any LSM).
  void upsert(std::uint32_t id, std::span<const float> row);
  /// Inserts under a fresh id (returned).
  std::uint32_t insert(std::span<const float> row);
  /// Tombstones the row; false if the id is not live.
  bool remove(std::uint32_t id);

  /// Exact live top-k (see the differential contract above).  Neighbor
  /// indices are logical positions; map through live_ids() for ids.  When
  /// every row is deleted the result has one empty list per query (a fresh
  /// engine over zero rows cannot exist).
  [[nodiscard]] KnnResult search(simt::Device& dev, const Dataset& queries,
                                 std::uint32_t k);
  /// Scalar-exact mirror over the live rows (also the fault-fallback path).
  [[nodiscard]] KnnResult search_host(const Dataset& queries, std::uint32_t k);

  /// Id of each live logical position, in logical order.
  [[nodiscard]] const std::vector<std::uint32_t>& live_ids();
  /// The logically-current rows, in logical order — exactly what a fresh
  /// engine (or a compaction) would be built over.
  [[nodiscard]] Dataset materialize();

  /// Synchronous compaction on the private device: rebuild over the live
  /// rows, adopt immediately.  False when there is nothing to compact, the
  /// set is fully deleted, an async rebuild is in flight, or the rebuild
  /// faulted (counted in stats; the old snapshot keeps serving).
  bool compact();
  /// compact() iff a threshold in the options is crossed.
  bool maybe_compact();
  /// Starts a rebuild on a background thread; adoption happens at the next
  /// serving operation after it finishes (or in finish_compaction()).
  bool compact_async();
  [[nodiscard]] bool compaction_running() const noexcept {
    return compaction_active_.load(std::memory_order_acquire);
  }
  /// Joins an async rebuild (if any) and adopts or discards its snapshot.
  void finish_compaction();

  /// The private device compactions (and an IVF base's training) run on.
  /// Exposed so chaos tests can attach a fault injector to it.
  [[nodiscard]] simt::Device& compaction_device() noexcept {
    return compaction_device_;
  }
  /// Test seam: runs on the async rebuild thread after the snapshot is built
  /// but before it is published, so tests can pin the mutation/publication
  /// interleaving deterministically.  Set only while no rebuild is in flight.
  void set_rebuild_hook(std::function<void()> hook) {
    rebuild_hook_ = std::move(hook);
  }
  /// The exact batched engine over the current base snapshot (reporting).
  [[nodiscard]] BatchedKnn& base_batched() noexcept {
    return flat_ != nullptr ? *flat_ : ivf_->batched();
  }

 private:
  /// A rebuilt base engine waiting to be adopted.
  struct Snapshot {
    std::unique_ptr<BatchedKnn> flat;
    std::unique_ptr<IvfKnn> ivf;
    std::vector<std::uint32_t> ids;
    std::uint64_t built_epoch = 0;
    bool failed = false;  ///< the rebuild faulted; nothing to adopt
  };

  [[nodiscard]] BatchedKnnOptions engine_options() const;
  [[nodiscard]] const Dataset& base_refs() const noexcept;
  [[nodiscard]] std::uint32_t slot_id(std::uint32_t slot) const noexcept {
    return slot < base_rows() ? base_ids_[slot]
                              : delta_ids_[slot - base_rows()];
  }
  void tombstone_slot(std::uint32_t slot);
  void bump_epoch() noexcept { ++epoch_; }
  void adopt_pending();
  [[nodiscard]] std::unique_ptr<Snapshot> build_snapshot(
      Dataset rows, std::vector<std::uint32_t> ids, std::uint64_t epoch);
  [[nodiscard]] bool compactable() const noexcept;
  void refresh_live_cache();
  void ensure_delta_device(simt::Device& dev);
  [[nodiscard]] KnnResult search_device(simt::Device& dev,
                                        const Dataset& queries,
                                        std::uint32_t k);
  [[nodiscard]] KnnResult host_exact(const Dataset& queries, std::uint32_t k);

  MutableKnnOptions options_;
  std::uint32_t dim_ = 0;

  // --- logical state (serving thread only) --------------------------------
  std::unique_ptr<BatchedKnn> flat_;  ///< exactly one of flat_/ivf_ is set
  std::unique_ptr<IvfKnn> ivf_;
  std::vector<std::uint32_t> base_ids_;   ///< id per base slot
  std::vector<float> delta_rows_;         ///< row-major appended rows
  std::vector<std::uint32_t> delta_ids_;  ///< id per delta slot
  std::vector<std::uint32_t> alive_;      ///< 1/0 per slot (base then delta)
  std::uint32_t dead_base_ = 0;
  std::uint32_t dead_delta_ = 0;
  std::unordered_map<std::uint32_t, std::uint32_t> id_to_slot_;
  std::uint32_t next_id_ = 0;
  std::uint64_t generation_ = 0;  ///< adopted compactions
  std::uint64_t epoch_ = 0;       ///< every logical mutation (incl. adoption)

  std::uint64_t upserts_ = 0;
  std::uint64_t removes_ = 0;
  std::uint64_t compactions_ = 0;
  std::uint64_t compactions_aborted_ = 0;
  std::uint64_t compactions_failed_ = 0;
  std::uint64_t delta_bytes_uploaded_ = 0;
  std::uint64_t delta_rows_synced_ = 0;
  std::uint64_t tombstone_words_synced_ = 0;

  // --- epoch-keyed caches -------------------------------------------------
  std::uint64_t live_cache_epoch_ = ~std::uint64_t{0};
  std::vector<std::uint32_t> live_ids_cache_;   ///< logical position -> id
  std::vector<std::uint32_t> live_prefix_;      ///< slot -> logical position
  std::uint64_t host_cache_epoch_ = ~std::uint64_t{0};
  std::unique_ptr<BruteForceKnn> host_engine_;  ///< over materialize()

  // --- device-resident delta cache (one bound device at a time) -----------
  simt::Device* cache_device_ = nullptr;
  std::uint64_t cache_generation_ = 0;
  bool cache_valid_ = false;
  simt::DeviceBuffer<float> d_delta_;  ///< capacity-padded delta shard
  std::size_t delta_cap_ = 0;          ///< row capacity of d_delta_
  std::uint32_t delta_synced_ = 0;     ///< delta rows already uploaded
  simt::DeviceBuffer<std::uint32_t> d_alive_;  ///< base_rows + delta_cap_ words
  std::vector<std::uint32_t> pending_dead_;    ///< slots awaiting mask sync

  // --- compaction ---------------------------------------------------------
  simt::Device compaction_device_;
  std::function<void()> rebuild_hook_;  ///< test seam, see set_rebuild_hook
  std::thread compaction_thread_;
  std::atomic<bool> compaction_active_{false};
  std::mutex mu_;                      ///< guards pending_
  std::unique_ptr<Snapshot> pending_;  ///< published by the rebuild thread
};

}  // namespace gpuksel::knn
