#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace gpuksel {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double median(std::vector<double> xs) noexcept {
  if (xs.empty()) return 0.0;
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                   xs.end());
  double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  const double lo =
      *std::max_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

double geometric_mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  // Guard the log: a zero factor makes the product (and so the mean) zero,
  // and a negative factor leaves it undefined — both previously came out as
  // NaN (log of a negative) or -inf underflow (log of zero).
  double log_sum = 0.0;
  for (double x : xs) {
    if (x <= 0.0) return 0.0;
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double percentile(std::vector<double> xs, double p) noexcept {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

}  // namespace gpuksel
