// Small descriptive-statistics helpers for the benchmark harness.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace gpuksel {

/// Streaming mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean of a sample; 0 for an empty sample.
double mean(std::span<const double> xs) noexcept;

/// Median of a sample (copies and partially sorts); 0 for an empty sample.
double median(std::vector<double> xs) noexcept;

/// Geometric mean of a sample; 0 for an empty sample.  A zero factor makes
/// the product zero, and the mean of values containing a negative factor is
/// undefined, so both return 0 instead of NaN/underflow.
double geometric_mean(std::span<const double> xs) noexcept;

/// p-th percentile (0..100) with linear interpolation; copies the sample.
double percentile(std::vector<double> xs, double p) noexcept;

}  // namespace gpuksel
