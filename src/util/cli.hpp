// Tiny command-line flag parser for benches and examples.
//
// Flags have the form --name=value or --name (boolean true).  consume()
// removes the flags this parser recognises from argc/argv so leftover
// arguments can be handed to google-benchmark's own Initialize().
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gpuksel {

/// Parses --key=value style flags and hands leftovers to other libraries.
class CliFlags {
 public:
  /// Parses and *removes* all --key[=value] arguments from argv, leaving
  /// anything it does not recognise as a flag (e.g. positional args) alone.
  /// Recognised keys are those queried later; unknown --flags are kept if
  /// `keep_unknown` lists a prefix they match (used for --benchmark_*).
  CliFlags(int& argc, char** argv,
           const std::vector<std::string>& keep_prefixes = {"benchmark"});

  /// Value of a string flag, or `def` when absent.
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& def) const;
  /// Value of an integer flag, or `def` when absent or unparsable.
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t def) const;
  /// Value of an integer flag, or `def` when absent.  Unlike get_int, a flag
  /// that is present but malformed (--threads=abc) or outside
  /// [min_value, max_value] (--batch=-1) is a fatal usage error: throws
  /// PreconditionError naming the flag, the offending text and the accepted
  /// range, so misconfigured CI jobs fail instead of green-running defaults.
  [[nodiscard]] std::int64_t require_int(const std::string& key,
                                         std::int64_t def,
                                         std::int64_t min_value,
                                         std::int64_t max_value) const;
  /// Value of a floating flag, or `def` when absent or unparsable.
  [[nodiscard]] double get_double(const std::string& key, double def) const;
  /// True when the flag is present with no value or a truthy value.
  [[nodiscard]] bool get_bool(const std::string& key, bool def) const;
  /// True when the flag appeared on the command line at all.
  [[nodiscard]] bool has(const std::string& key) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace gpuksel
