// Lightweight runtime checking macros used across the library.
//
// GPUKSEL_CHECK is always on and throws: it guards API misuse (bad k, bad
// group size, mismatched buffer lengths).  GPUKSEL_DEBUG_ASSERT compiles away
// in release builds and guards internal invariants on hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace gpuksel {

/// Thrown when a documented precondition of a public API is violated.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "GPUKSEL_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}
}  // namespace detail

}  // namespace gpuksel

#define GPUKSEL_CHECK(expr, msg)                                            \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::gpuksel::detail::check_failed(#expr, __FILE__, __LINE__, (msg));    \
    }                                                                       \
  } while (0)

#if defined(NDEBUG)
#define GPUKSEL_DEBUG_ASSERT(expr) ((void)0)
#else
#define GPUKSEL_DEBUG_ASSERT(expr) GPUKSEL_CHECK((expr), "debug assertion")
#endif
