// Lightweight runtime checking macros used across the library.
//
// GPUKSEL_CHECK is always on and throws: it guards API misuse (bad k, bad
// group size, mismatched buffer lengths).  GPUKSEL_DEBUG_ASSERT compiles away
// in release builds and guards internal invariants on hot paths.
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace gpuksel {

/// Thrown when a documented precondition of a public API is violated.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// What the SIMT sanitizer detected.  Each value corresponds to one invariant
/// the simulated hardware enforces (or one integrity property the shadow
/// memory models).
enum class FaultKind {
  kOutOfBounds,            ///< global load/store index beyond the buffer
  kUninitializedRead,      ///< global load from a never-written element
  kEccMismatch,            ///< loaded word disagrees with its shadow checksum
  kNanDistance,            ///< NaN loaded while the NaN policy forbids it
  kShuffleInactiveSource,  ///< shuffle reads a lane outside the active mask
  kStoreCollision,         ///< two active lanes store to the same address
  kSharedOutOfBounds,      ///< shared-memory index beyond the array
};

[[nodiscard]] constexpr const char* fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kOutOfBounds: return "out-of-bounds";
    case FaultKind::kUninitializedRead: return "uninitialized-read";
    case FaultKind::kEccMismatch: return "ecc-mismatch";
    case FaultKind::kNanDistance: return "nan-distance";
    case FaultKind::kShuffleInactiveSource: return "shuffle-inactive-source";
    case FaultKind::kStoreCollision: return "store-collision";
    case FaultKind::kSharedOutOfBounds: return "shared-out-of-bounds";
  }
  return "unknown";
}

/// How loads of NaN distances are treated by the sanitizer and by the scalar
/// selection front ends.
enum class NanPolicy {
  kPropagate,  ///< no special handling; NaNs flow through comparisons
  kReject,     ///< a NaN distance raises SimtFaultError / PreconditionError
  kSortLast,   ///< NaNs are remapped to +infinity so they sort after all data
};

[[nodiscard]] constexpr const char* nan_policy_name(NanPolicy policy) noexcept {
  switch (policy) {
    case NanPolicy::kPropagate: return "propagate";
    case NanPolicy::kReject: return "reject";
    case NanPolicy::kSortLast: return "sort-last";
  }
  return "unknown";
}

/// Full context of one detected fault: which kernel, which warp, how many
/// warp instructions had retired when the fault was raised, which lane
/// triggered it, and a human-readable detail string.
struct FaultRecord {
  FaultKind kind = FaultKind::kOutOfBounds;
  std::string kernel;
  std::uint32_t warp_id = 0;
  std::uint64_t instruction = 0;
  int lane = -1;  ///< -1 when no single lane is attributable
  std::string detail;

  [[nodiscard]] std::string to_string() const {
    std::ostringstream os;
    os << "SIMT fault [" << fault_kind_name(kind) << "] in kernel '" << kernel
       << "' warp " << warp_id << " at instruction " << instruction;
    if (lane >= 0) os << " lane " << lane;
    if (!detail.empty()) os << ": " << detail;
    return os.str();
  }
};

/// Thrown by the SIMT sanitizer when a kernel violates a device invariant.
/// Carries the full FaultRecord so callers (e.g. BruteForceKnn host fallback)
/// can log the fault with kernel/warp/instruction context.
class SimtFaultError : public std::runtime_error {
 public:
  explicit SimtFaultError(FaultRecord record)
      : std::runtime_error(record.to_string()), record_(std::move(record)) {}

  [[nodiscard]] const FaultRecord& record() const noexcept { return record_; }
  [[nodiscard]] FaultKind kind() const noexcept { return record_.kind; }
  [[nodiscard]] const std::string& kernel() const noexcept {
    return record_.kernel;
  }
  [[nodiscard]] std::uint32_t warp_id() const noexcept {
    return record_.warp_id;
  }
  [[nodiscard]] std::uint64_t instruction() const noexcept {
    return record_.instruction;
  }

 private:
  FaultRecord record_;
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "GPUKSEL_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}
}  // namespace detail

}  // namespace gpuksel

#define GPUKSEL_CHECK(expr, msg)                                            \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::gpuksel::detail::check_failed(#expr, __FILE__, __LINE__, (msg));    \
    }                                                                       \
  } while (0)

#if defined(NDEBUG)
#define GPUKSEL_DEBUG_ASSERT(expr) ((void)0)
#else
#define GPUKSEL_DEBUG_ASSERT(expr) GPUKSEL_CHECK((expr), "debug assertion")
#endif
