#include "util/csv.hpp"

namespace gpuksel {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path) {
  if (out_) write_cells(header);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  write_cells(cells);
}

void CsvWriter::write_cells(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
}

}  // namespace gpuksel
