// Deterministic pseudo-random number generation.
//
// All experiments in the repository are seeded so that every test, bench and
// example is reproducible bit-for-bit across runs.  The generator is
// xoshiro256** seeded through SplitMix64, which is fast, well distributed and
// has a tiny state — we create one generator per query list so parallel data
// generation is order-independent.
#pragma once

#include <cstdint>
#include <vector>

namespace gpuksel {

/// SplitMix64 step: used for seeding and as a cheap stateless mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna.  Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9d2c5680u) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform float in [0, 1).
  float uniform_float() noexcept {
    return static_cast<float>((*this)() >> 40) * 0x1.0p-24f;
  }

  /// Uniform double in [0, 1).
  double uniform_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound).  bound must be in (0, 2^32].
  std::uint64_t uniform_below(std::uint64_t bound) noexcept {
    // Multiply-shift reduction via 32-bit halves (bias < 2^-64 * bound,
    // irrelevant for test workloads).
    const std::uint64_t x = (*this)();
    const std::uint64_t hi = (x >> 32) * bound;
    const std::uint64_t lo = ((x & 0xffffffffULL) * bound) >> 32;
    return (hi + lo) >> 32;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int s) noexcept {
    return (x << s) | (x >> (64 - s));
  }

  std::uint64_t state_[4]{};
};

/// n uniform floats in [0,1) from the given seed.
std::vector<float> uniform_floats(std::size_t n, std::uint64_t seed);

/// A uniformly random permutation of 0..n-1.
std::vector<std::uint32_t> random_permutation(std::size_t n,
                                              std::uint64_t seed);

}  // namespace gpuksel
