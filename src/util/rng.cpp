#include "util/rng.hpp"

#include <numeric>

namespace gpuksel {

std::vector<float> uniform_floats(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> out(n);
  for (auto& v : out) v = rng.uniform_float();
  return out;
}

std::vector<std::uint32_t> random_permutation(std::size_t n,
                                              std::uint64_t seed) {
  std::vector<std::uint32_t> out(n);
  std::iota(out.begin(), out.end(), 0u);
  Rng rng(seed);
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = rng.uniform_below(i);
    std::swap(out[i - 1], out[j]);
  }
  return out;
}

}  // namespace gpuksel
