#include "util/cli.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "util/check.hpp"

namespace gpuksel {

namespace {

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         std::equal(prefix.begin(), prefix.end(), s.begin());
}

}  // namespace

CliFlags::CliFlags(int& argc, char** argv,
                   const std::vector<std::string>& keep_prefixes) {
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      argv[out++] = argv[i];
      continue;
    }
    std::string body = arg.substr(2);
    const auto eq = body.find('=');
    std::string key = eq == std::string::npos ? body : body.substr(0, eq);
    // Normalise dashes to underscores so --paper-scale == --paper_scale.
    for (auto& c : key) {
      if (c == '-') c = '_';
    }
    bool keep = false;
    for (const auto& prefix : keep_prefixes) {
      if (starts_with(key, prefix)) keep = true;
    }
    if (keep) {
      argv[out++] = argv[i];
      continue;
    }
    values_[key] = eq == std::string::npos ? "1" : body.substr(eq + 1);
  }
  argc = out;
  argv[argc] = nullptr;
}

std::string CliFlags::get(const std::string& key, const std::string& def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

std::int64_t CliFlags::get_int(const std::string& key, std::int64_t def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 0);
  return (end && *end == '\0') ? v : def;
}

std::int64_t CliFlags::require_int(const std::string& key, std::int64_t def,
                                   std::int64_t min_value,
                                   std::int64_t max_value) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  const std::string& text = it->second;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(text.c_str(), &end, 0);
  const bool parsed = end != text.c_str() && end != nullptr && *end == '\0' &&
                      errno != ERANGE;
  if (!parsed || v < min_value || v > max_value) {
    std::ostringstream os;
    os << "--" << key << "=" << text << ": expected an integer in ["
       << min_value << ", " << max_value << "]";
    throw PreconditionError(os.str());
  }
  return v;
}

double CliFlags::get_double(const std::string& key, double def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  return (end && *end == '\0') ? v : def;
}

bool CliFlags::get_bool(const std::string& key, bool def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  return !(v == "0" || v == "false" || v == "no" || v == "off");
}

bool CliFlags::has(const std::string& key) const {
  return values_.count(key) != 0;
}

}  // namespace gpuksel
