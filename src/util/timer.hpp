// Wall-clock timing for the host-side (CPU baseline) measurements.
#pragma once

#include <chrono>

namespace gpuksel {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() noexcept : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gpuksel
