// Fixed-width text-table printing in the style of the paper's Table I.
//
// Benches build a Table, add one row per algorithm, and print it to stdout so
// the output can be compared side by side with the published numbers.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace gpuksel {

/// A rectangular table of strings with a header row, printed with aligned
/// columns.  Cells may be added as strings or formatted numbers.
class Table {
 public:
  /// Creates a table with the given title (printed above the grid) and
  /// column headers.
  Table(std::string title, std::vector<std::string> headers);

  /// Starts a new row; subsequent add() calls fill it left to right.
  Table& begin_row();
  /// Appends a string cell to the current row.
  Table& add(std::string cell);
  /// Appends a number formatted with the given precision ("-" for NaN).
  Table& add(double value, int precision = 2);
  /// Appends an integer cell.
  Table& add_int(long long value);

  /// Number of complete + in-progress data rows.
  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders the table to the stream.
  void print(std::ostream& os) const;

  /// Renders the table to a string.
  [[nodiscard]] std::string str() const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double like the paper's tables: fixed, trimmed trailing zeros.
std::string format_seconds(double seconds);

}  // namespace gpuksel
