#include "util/table.hpp"

#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace gpuksel {

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {
  GPUKSEL_CHECK(!headers_.empty(), "a table needs at least one column");
}

Table& Table::begin_row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::add(std::string cell) {
  GPUKSEL_CHECK(!rows_.empty(), "begin_row() before add()");
  GPUKSEL_CHECK(rows_.back().size() < headers_.size(),
                "row has more cells than headers");
  rows_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::add(double value, int precision) {
  if (std::isnan(value)) return add("-");
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return add(os.str());
}

Table& Table::add_int(long long value) { return add(std::to_string(value)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  if (!title_.empty()) os << title_ << '\n';
  auto rule = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << '+' << std::string(widths[c] + 2, '-');
    }
    os << "+\n";
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << "| " << std::left << std::setw(static_cast<int>(widths[c])) << cell
         << ' ';
    }
    os << "|\n";
  };
  rule();
  print_row(headers_);
  rule();
  for (const auto& row : rows_) print_row(row);
  rule();
}

std::string Table::str() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string format_seconds(double seconds) {
  std::ostringstream os;
  if (seconds >= 10.0) {
    os << std::fixed << std::setprecision(1) << seconds;
  } else if (seconds >= 0.095) {
    os << std::fixed << std::setprecision(2) << seconds;
  } else {
    os << std::fixed << std::setprecision(3) << seconds;
  }
  return os.str();
}

}  // namespace gpuksel
