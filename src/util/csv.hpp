// Minimal CSV writer so bench series can be re-plotted outside the repo.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace gpuksel {

/// Writes rows of cells to a CSV file with RFC-4180 quoting.
class CsvWriter {
 public:
  /// Opens (truncates) the file and writes the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Writes one data row; the cell count should match the header.
  void write_row(const std::vector<std::string>& cells);

  /// True if the file opened successfully.
  [[nodiscard]] bool ok() const noexcept { return static_cast<bool>(out_); }

 private:
  void write_cells(const std::vector<std::string>& cells);

  std::ofstream out_;
};

/// Quotes a CSV cell if it contains a comma, quote or newline.
std::string csv_escape(const std::string& cell);

}  // namespace gpuksel
