// Public scalar k-selection API.
//
// select_k_smallest() is the library's front door: given an unordered list of
// distances it returns the k smallest (distance, index) pairs in ascending
// order.  All algorithms produce identical output (ties broken by index);
// they differ only in cost profile — which is the subject of the paper.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "core/neighbor.hpp"
#include "util/check.hpp"

namespace gpuksel {

/// Selection algorithm choices for the scalar API.
enum class Algo {
  kInsertionQueue,   ///< fully-sorted queue, O(N k)
  kHeapQueue,        ///< binary max-heap, O(N log k)
  kMergeQueue,       ///< the paper's Merge Queue, amortised O(N log^2 k)
  kStdSort,          ///< Selection by Sorting: sort everything, O(N log N)
  kStdNthElement,    ///< Partition-based Selection (introselect), O(N) avg
};

/// Human-readable algorithm name (bench table labels).
[[nodiscard]] std::string_view algo_name(Algo algo) noexcept;

/// Returns the k smallest (dist, index) pairs of `dlist`, ascending by
/// (dist, index).  Returns min(k, N) results.  k must be >= 1 and `dlist`
/// must not be empty.
[[nodiscard]] std::vector<Neighbor> select_k_smallest(
    std::span<const float> dlist, std::uint32_t k,
    Algo algo = Algo::kMergeQueue);

/// Enforces a NaN policy on a distance list in place: kPropagate is a no-op,
/// kReject throws PreconditionError if any element is NaN, kSortLast remaps
/// every NaN to +infinity (after all finite data, before no real candidate —
/// matching the simulated GPU's sanitizer under the same policy).  Returns
/// the number of NaNs found.
std::size_t apply_nan_policy(std::span<float> dlist, NanPolicy policy);

/// Same selection routed through a Hierarchical Partition with group size G
/// built on the fly (construction cost included, as in the paper's figures).
[[nodiscard]] std::vector<Neighbor> select_k_smallest_hp(
    std::span<const float> dlist, std::uint32_t k, std::uint32_t group_size,
    Algo queue_algo = Algo::kMergeQueue);

/// Divide-and-merge selection for lists beyond the studied N range (the
/// paper cites Arefin et al. [18] for this): the list is processed in
/// fixed-size chunks, the k smallest of each chunk survive, and a final
/// selection over the survivors yields the exact global k smallest.  This
/// caps peak working-set size at `chunk_size` while keeping results
/// bit-identical to select_k_smallest.
[[nodiscard]] std::vector<Neighbor> select_k_smallest_chunked(
    std::span<const float> dlist, std::uint32_t k, std::size_t chunk_size,
    Algo algo = Algo::kMergeQueue);

/// Reference oracle used by the test-suite: partial sort by (dist, index).
[[nodiscard]] std::vector<Neighbor> select_k_oracle(
    std::span<const float> dlist, std::uint32_t k);

/// Oracle with a NaN policy applied to a copy of the input first.
[[nodiscard]] std::vector<Neighbor> select_k_oracle(
    std::span<const float> dlist, std::uint32_t k, NanPolicy policy);

}  // namespace gpuksel
