#include "core/kselect.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/hierarchical_partition.hpp"
#include "core/queues/heap_queue.hpp"
#include "core/queues/insertion_queue.hpp"
#include "core/queues/merge_queue.hpp"
#include "util/check.hpp"

namespace gpuksel {

namespace {

template <typename Queue>
std::vector<Neighbor> scan_select(std::span<const float> dlist, Queue queue) {
  for (std::uint32_t i = 0; i < dlist.size(); ++i) {
    queue.try_insert(dlist[i], i);
  }
  return queue.extract_sorted();
}

std::vector<Neighbor> to_neighbors(std::span<const float> dlist) {
  std::vector<Neighbor> all(dlist.size());
  for (std::uint32_t i = 0; i < dlist.size(); ++i) {
    all[i] = Neighbor{dlist[i], i};
  }
  return all;
}

}  // namespace

std::string_view algo_name(Algo algo) noexcept {
  switch (algo) {
    case Algo::kInsertionQueue: return "insertion-queue";
    case Algo::kHeapQueue: return "heap-queue";
    case Algo::kMergeQueue: return "merge-queue";
    case Algo::kStdSort: return "std-sort";
    case Algo::kStdNthElement: return "std-nth-element";
  }
  return "unknown";
}

std::size_t apply_nan_policy(std::span<float> dlist, NanPolicy policy) {
  if (policy == NanPolicy::kPropagate) return 0;
  std::size_t nans = 0;
  for (float& v : dlist) {
    if (std::isnan(v)) ++nans;
  }
  if (nans == 0) return 0;
  GPUKSEL_CHECK(policy != NanPolicy::kReject,
                "NaN distance rejected by NanPolicy::kReject");
  for (float& v : dlist) {
    if (std::isnan(v)) v = std::numeric_limits<float>::infinity();
  }
  return nans;
}

std::vector<Neighbor> select_k_smallest(std::span<const float> dlist,
                                        std::uint32_t k, Algo algo) {
  GPUKSEL_CHECK(k >= 1, "select_k_smallest needs k >= 1");
  GPUKSEL_CHECK(!dlist.empty(), "select_k_smallest needs a non-empty dlist");
  const auto take = static_cast<std::size_t>(
      std::min<std::size_t>(k, dlist.size()));
  switch (algo) {
    case Algo::kInsertionQueue:
      return scan_select(dlist, InsertionQueue(k));
    case Algo::kHeapQueue:
      return scan_select(dlist, HeapQueue(k));
    case Algo::kMergeQueue:
      return scan_select(dlist, MergeQueue(k));
    case Algo::kStdSort: {
      std::vector<Neighbor> all = to_neighbors(dlist);
      std::sort(all.begin(), all.end());
      all.resize(take);
      return all;
    }
    case Algo::kStdNthElement: {
      std::vector<Neighbor> all = to_neighbors(dlist);
      if (take < all.size()) {
        std::nth_element(all.begin(),
                         all.begin() + static_cast<std::ptrdiff_t>(take),
                         all.end());
        all.resize(take);
      }
      std::sort(all.begin(), all.end());
      return all;
    }
  }
  GPUKSEL_CHECK(false, "unreachable: unknown Algo");
  return {};
}

std::vector<Neighbor> select_k_smallest_hp(std::span<const float> dlist,
                                           std::uint32_t k,
                                           std::uint32_t group_size,
                                           Algo queue_algo) {
  GPUKSEL_CHECK(k >= 1, "select_k_smallest_hp needs k >= 1");
  GPUKSEL_CHECK(!dlist.empty(),
                "select_k_smallest_hp needs a non-empty dlist");
  GPUKSEL_CHECK(group_size >= 2,
                "hierarchical partition needs group_size >= 2");
  const HierarchicalPartition hp(dlist, group_size, k);
  switch (queue_algo) {
    case Algo::kInsertionQueue:
      return hp.select([](std::uint32_t kk) { return InsertionQueue(kk); });
    case Algo::kHeapQueue:
      return hp.select([](std::uint32_t kk) { return HeapQueue(kk); });
    case Algo::kMergeQueue:
      return hp.select([](std::uint32_t kk) { return MergeQueue(kk); });
    default:
      GPUKSEL_CHECK(false,
                    "hierarchical partition requires a queue-based algorithm");
      return {};
  }
}

std::vector<Neighbor> select_k_smallest_chunked(std::span<const float> dlist,
                                                std::uint32_t k,
                                                std::size_t chunk_size,
                                                Algo algo) {
  GPUKSEL_CHECK(k >= 1, "select_k_smallest_chunked needs k >= 1");
  GPUKSEL_CHECK(!dlist.empty(),
                "select_k_smallest_chunked needs a non-empty dlist");
  GPUKSEL_CHECK(chunk_size >= 1, "chunk_size must be >= 1");
  std::vector<Neighbor> survivors;
  for (std::size_t first = 0; first < dlist.size(); first += chunk_size) {
    const std::size_t len = std::min(chunk_size, dlist.size() - first);
    for (Neighbor n : select_k_smallest(dlist.subspan(first, len), k, algo)) {
      n.index += static_cast<std::uint32_t>(first);  // globalise the index
      survivors.push_back(n);
    }
  }
  // Final round over the survivors: they carry their own global indices, so
  // a straight partial sort finishes the job exactly.
  const auto take = static_cast<std::ptrdiff_t>(
      std::min<std::size_t>(k, survivors.size()));
  std::partial_sort(survivors.begin(), survivors.begin() + take,
                    survivors.end());
  survivors.resize(static_cast<std::size_t>(take));
  return survivors;
}

std::vector<Neighbor> select_k_oracle(std::span<const float> dlist,
                                      std::uint32_t k) {
  std::vector<Neighbor> all = to_neighbors(dlist);
  const auto take = static_cast<std::ptrdiff_t>(
      std::min<std::size_t>(k, all.size()));
  std::partial_sort(all.begin(), all.begin() + take, all.end());
  all.resize(static_cast<std::size_t>(take));
  return all;
}

std::vector<Neighbor> select_k_oracle(std::span<const float> dlist,
                                      std::uint32_t k, NanPolicy policy) {
  std::vector<float> cleaned(dlist.begin(), dlist.end());
  apply_nan_policy(cleaned, policy);
  return select_k_oracle(cleaned, k);
}

}  // namespace gpuksel
