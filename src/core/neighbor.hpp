// The (distance, index) pair that flows through every selection structure.
#pragma once

#include <cstdint>
#include <limits>

namespace gpuksel {

/// One k-NN candidate: a distance value and the reference index it belongs
/// to.  Selection structures order candidates by (dist, index) so that ties
/// resolve deterministically — the paper's pseudocode compares distances
/// only, which leaves tied results implementation-defined; pinning the tie
/// order makes every algorithm in this repo produce bit-identical output,
/// which the tests rely on.
struct Neighbor {
  float dist = std::numeric_limits<float>::max();
  std::uint32_t index = 0xffffffffu;

  friend constexpr bool operator<(const Neighbor& a, const Neighbor& b) noexcept {
    if (a.dist != b.dist) return a.dist < b.dist;
    return a.index < b.index;
  }
  friend constexpr bool operator>(const Neighbor& a, const Neighbor& b) noexcept {
    return b < a;
  }
  friend constexpr bool operator==(const Neighbor& a, const Neighbor& b) noexcept {
    return a.dist == b.dist && a.index == b.index;
  }
};

/// Sentinel filling empty queue slots: larger than any real candidate.
inline constexpr Neighbor kEmptySlot{};

/// True if the slot still holds the sentinel (never written).
constexpr bool is_empty_slot(const Neighbor& n) noexcept {
  return n.index == kEmptySlot.index &&
         n.dist == std::numeric_limits<float>::max();
}

}  // namespace gpuksel
