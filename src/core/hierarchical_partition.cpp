#include "core/hierarchical_partition.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace gpuksel {

HierarchicalPartition::HierarchicalPartition(std::span<const float> dlist,
                                             std::uint32_t group_size,
                                             std::uint32_t k)
    : base_(dlist), group_(group_size), k_(k) {
  GPUKSEL_CHECK(group_size >= 2, "hierarchical partition needs G >= 2");
  GPUKSEL_CHECK(k >= 1, "hierarchical partition needs k >= 1");
  // Bottom-Up Construction (Algorithm 4): fold each level into group minima
  // until at most k elements remain.  Minima keep the first position that
  // attains them (strict '<' during the scan) — required for tie safety.
  std::span<const float> cur = base_;
  while (cur.size() > k_) {
    const std::size_t next_size = (cur.size() + group_ - 1) / group_;
    std::vector<float> next(next_size);
    for (std::size_t g = 0; g < next_size; ++g) {
      const std::size_t first = g * group_;
      const std::size_t last = std::min(cur.size(), first + group_);
      float min = cur[first];
      for (std::size_t j = first + 1; j < last; ++j) {
        if (cur[j] < min) min = cur[j];
      }
      next[g] = min;
    }
    upper_.push_back(std::move(next));
    cur = upper_.back();
  }
}

std::span<const float> HierarchicalPartition::level(std::size_t l) const {
  GPUKSEL_CHECK(l < level_count(), "hierarchical partition level out of range");
  if (l == 0) return base_;
  return upper_[l - 1];
}

std::size_t HierarchicalPartition::extra_memory_elements() const noexcept {
  std::size_t total = 0;
  for (const auto& lvl : upper_) total += lvl.size();
  return total;
}

}  // namespace gpuksel
