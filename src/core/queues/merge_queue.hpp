// Merge Queue: the paper's primary queue contribution (§III-C, Fig. 1b).
//
// The queue is a single array split into levels: the first and second levels
// hold m elements each, and every further level doubles (m, m, 2m, 4m, ...).
// Invariants:
//  * each level is sorted in decreasing order, so its leftmost element (the
//    Level Head) is the largest of the level;
//  * the level heads themselves decrease from top to bottom, so slot 0 holds
//    the global maximum — the O(1) threshold test `dist < dqueue[0]` needs.
//
// An accepted candidate is insertion-sorted into the first level (pushing the
// level's head out).  Only when the first level's head drops below the second
// level's head does a merge run (*Lazy Update*), and each merge is a Reverse
// Bitonic Merge over the prefix [0, 2*next): the already-sorted prefix is one
// half, the next level the other.  Merges cascade down while level heads are
// out of order.  Amortised insertion cost is O(log^2 k).
//
// Note: Algorithm 2 in the paper triggers the merge on `dqueue[prev] >=
// dqueue[next]`, which contradicts the surrounding text ("only when the head
// of an upper level is smaller than the head of the lower level will a merge
// be required") and would merge on every insert.  We follow the text; the
// tests pin the lazy behaviour.
#pragma once

#include <cstdint>
#include <vector>

#include "core/neighbor.hpp"
#include "core/queues/update_counter.hpp"

namespace gpuksel {

/// How two sorted levels are merged (paper §V future work: Merge Path etc.).
///
/// kReverseBitonic is the paper's network: fixed shape, n/2*log2(n)
/// compare-exchanges, ideal for lockstep warps.  kTwoPointer is the classic
/// sequential merge: only n element moves, but a data-dependent pointer walk
/// — cheaper on a CPU, divergent and gather-heavy on a GPU.  The SIMT
/// ablation bench quantifies exactly that trade-off.
enum class MergeStrategy {
  kReverseBitonic,
  kTwoPointer,
};

class MergeQueue {
 public:
  /// Default size of the first and second levels (the paper finds m = 8
  /// maximises performance; bench/ablation_merge_m reproduces that sweep).
  static constexpr std::uint32_t kDefaultM = 8;

  /// Creates a merge queue able to return the k smallest candidates.
  /// m must be a power of two.  Internal capacity is k rounded up to the
  /// nearest m*2^j (capacity == k whenever k is a power of two >= m, as in
  /// all of the paper's configurations).
  explicit MergeQueue(std::uint32_t k, std::uint32_t m = kDefaultM,
                      UpdateCounter* counter = nullptr,
                      MergeStrategy strategy = MergeStrategy::kReverseBitonic);

  /// Requested k (extract_sorted returns at most this many).
  [[nodiscard]] std::uint32_t k() const noexcept { return k_; }
  /// Internal slot count (m*2^j >= k).
  [[nodiscard]] std::uint32_t capacity() const noexcept {
    return static_cast<std::uint32_t>(slots_.size());
  }
  /// Size of the first and second levels.
  [[nodiscard]] std::uint32_t m() const noexcept { return m_; }

  /// Global maximum held (sentinel while not full).
  [[nodiscard]] const Neighbor& head() const noexcept { return slots_.front(); }

  /// Inserts if the candidate beats the head; returns whether it did.
  bool try_insert(float dist, std::uint32_t index);

  /// The k best candidates sorted ascending, sentinels dropped.
  [[nodiscard]] std::vector<Neighbor> extract_sorted() const;

  /// Raw slot view, for invariant tests.
  [[nodiscard]] const std::vector<Neighbor>& slots() const noexcept {
    return slots_;
  }

  /// Offsets where each level starts: {0, m, 2m, 4m, ...}, for tests.
  [[nodiscard]] const std::vector<std::uint32_t>& level_starts() const noexcept {
    return level_starts_;
  }

  /// True when every level is sorted descending and level heads descend;
  /// the class invariant (exposed for property tests).
  [[nodiscard]] bool invariant_holds() const noexcept;

  /// Number of merge operations performed so far (Lazy Update metric).
  [[nodiscard]] std::uint64_t merge_count() const noexcept {
    return merge_count_;
  }

 private:
  void flat_insert(const Neighbor& cand);
  void merge_prefix(std::uint32_t size);

  std::uint32_t k_;
  std::uint32_t m_;
  std::vector<Neighbor> slots_;
  std::vector<std::uint32_t> level_starts_;
  UpdateCounter* counter_;
  MergeStrategy strategy_;
  std::uint64_t merge_count_ = 0;
};

}  // namespace gpuksel
