// Heap queue: binary max-heap selection queue (paper §III-B).
//
// O(log k) writes per insertion, but the sift-down path depends on the data,
// so threads of one warp walk different tree branches — the irregular access
// pattern that motivates the Merge Queue.
#pragma once

#include <cstdint>
#include <vector>

#include "core/neighbor.hpp"
#include "core/queues/update_counter.hpp"

namespace gpuksel {

class HeapQueue {
 public:
  /// Creates a heap of capacity k filled with sentinel slots.
  explicit HeapQueue(std::uint32_t k, UpdateCounter* counter = nullptr);

  [[nodiscard]] std::uint32_t capacity() const noexcept {
    return static_cast<std::uint32_t>(slots_.size());
  }

  /// The heap root: largest candidate held (sentinel while not full).
  [[nodiscard]] const Neighbor& head() const noexcept { return slots_.front(); }

  /// Replaces the root and sifts down if the candidate beats it.
  bool try_insert(float dist, std::uint32_t index);

  /// The retained candidates sorted ascending, sentinels dropped.
  [[nodiscard]] std::vector<Neighbor> extract_sorted() const;

  /// Raw heap array, for invariant tests.
  [[nodiscard]] const std::vector<Neighbor>& slots() const noexcept {
    return slots_;
  }

 private:
  void sift_down(std::size_t hole, const Neighbor& value);

  std::vector<Neighbor> slots_;
  UpdateCounter* counter_;
};

}  // namespace gpuksel
