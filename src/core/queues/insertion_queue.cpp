#include "core/queues/insertion_queue.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace gpuksel {

InsertionQueue::InsertionQueue(std::uint32_t k, UpdateCounter* counter)
    : slots_(k, kEmptySlot), counter_(counter) {
  GPUKSEL_CHECK(k >= 1, "insertion queue needs k >= 1");
}

bool InsertionQueue::try_insert(float dist, std::uint32_t index) {
  const Neighbor cand{dist, index};
  if (!(cand < slots_[0])) return false;
  // Shift larger elements toward the head; the old head falls out.
  std::size_t i = 0;
  while (i + 1 < slots_.size() && slots_[i + 1] > cand) {
    slots_[i] = slots_[i + 1];
    if (counter_) counter_->record(i);
    ++i;
  }
  slots_[i] = cand;
  if (counter_) counter_->record(i);
  return true;
}

std::vector<Neighbor> InsertionQueue::extract_sorted() const {
  std::vector<Neighbor> out;
  out.reserve(slots_.size());
  for (auto it = slots_.rbegin(); it != slots_.rend(); ++it) {
    if (!is_empty_slot(*it)) out.push_back(*it);
  }
  return out;
}

}  // namespace gpuksel
