// Bitonic merge networks, including the paper's Reverse Bitonic Merge.
//
// The original bitonic merge network (Fig. 2a) merges one ascending and one
// descending run.  Merge Queue levels are all sorted *descending*, so the
// paper flips the first stage into cross compare-exchanges (Fig. 2b): element
// i of the first half is compared with element n-1-i of the second half.
// After that stage both halves are bitonic and every element of the first
// half is >= every element of the second half, so the standard stages finish
// each half independently.  The network shape is fixed — n/2 * log2(n)
// compare-exchanges in log2(n) stages — which is what makes it ideal for
// lockstep execution on a warp.
#pragma once

#include <cstdint>
#include <span>

#include "core/neighbor.hpp"
#include "core/queues/update_counter.hpp"

namespace gpuksel {

/// Compare-exchange putting the larger candidate at position i.
/// Returns true if a swap happened.  Counter records both writes of a swap.
bool compare_exchange_desc(std::span<Neighbor> data, std::size_t i,
                           std::size_t j, UpdateCounter* counter = nullptr);

/// Merges a *bitonic* sequence into descending order in place.
/// data.size() must be a power of two.
void bitonic_merge_descending(std::span<Neighbor> data,
                              UpdateCounter* counter = nullptr);

/// Reverse Bitonic Merge: merges two descending-sorted halves of `data` into
/// one descending-sorted whole, in place.  data.size() must be a power of two
/// (each half is data.size()/2 elements).
void reverse_bitonic_merge_descending(std::span<Neighbor> data,
                                      UpdateCounter* counter = nullptr);

/// Full bitonic sort into descending order; data.size() must be a power of
/// two.  Used by Local Sort and the Truncated Bitonic Sort baseline.
void bitonic_sort_descending(std::span<Neighbor> data,
                             UpdateCounter* counter = nullptr);

/// Full bitonic sort into ascending order; data.size() must be a power of two.
void bitonic_sort_ascending(std::span<Neighbor> data,
                            UpdateCounter* counter = nullptr);

/// Number of compare-exchange operations a merge of size n performs
/// (n/2 * log2 n); the fixed cost the complexity analysis in §III-C uses.
std::uint64_t bitonic_merge_compare_count(std::size_t n) noexcept;

}  // namespace gpuksel
