#include "core/queues/merge_queue.hpp"

#include <algorithm>
#include <span>

#include "core/queues/bitonic.hpp"
#include "util/check.hpp"

namespace gpuksel {

namespace {

bool is_pow2(std::uint32_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::uint32_t round_capacity(std::uint32_t k, std::uint32_t m) {
  if (k <= m) return k;  // single insertion-sorted level
  std::uint32_t cap = 2 * m;
  while (cap < k) cap *= 2;
  return cap;
}

}  // namespace

MergeQueue::MergeQueue(std::uint32_t k, std::uint32_t m, UpdateCounter* counter,
                       MergeStrategy strategy)
    : k_(k), m_(m), counter_(counter), strategy_(strategy) {
  GPUKSEL_CHECK(k >= 1, "merge queue needs k >= 1");
  GPUKSEL_CHECK(is_pow2(m), "merge queue level size m must be a power of two");
  slots_.assign(round_capacity(k, m), kEmptySlot);
  level_starts_.push_back(0);
  if (slots_.size() > m_) {
    for (std::uint32_t start = m_; start < slots_.size(); start *= 2) {
      level_starts_.push_back(start);
    }
  }
}

void MergeQueue::flat_insert(const Neighbor& cand) {
  // Insertion-sort into the first level; the level's head falls out.
  const std::uint32_t level0 = std::min<std::uint32_t>(m_, capacity());
  std::uint32_t i = 0;
  while (i + 1 < level0 && slots_[i + 1] > cand) {
    slots_[i] = slots_[i + 1];
    if (counter_) counter_->record(i);
    ++i;
  }
  slots_[i] = cand;
  if (counter_) counter_->record(i);
}

bool MergeQueue::try_insert(float dist, std::uint32_t index) {
  const Neighbor cand{dist, index};
  if (!(cand < slots_[0])) return false;
  flat_insert(cand);
  // Lazy Update: cascade merges only while a level head rises above the head
  // of the level before it.
  const std::uint32_t cap = capacity();
  for (std::uint32_t prev = 0, next = m_; next < cap; prev = next, next *= 2) {
    if (!(slots_[prev] < slots_[next])) break;
    // The prefix [0, next) is sorted descending (flat_insert for the first
    // level, the previous merge otherwise); level [next, 2*next) is sorted
    // descending by the structure invariant — merging the two halves
    // re-sorts the whole prefix [0, 2*next).
    merge_prefix(2 * next);
    ++merge_count_;
  }
  return true;
}

void MergeQueue::merge_prefix(std::uint32_t size) {
  const std::span<Neighbor> prefix(slots_.data(), size);
  if (strategy_ == MergeStrategy::kReverseBitonic) {
    reverse_bitonic_merge_descending(prefix, counter_);
    return;
  }
  // Two-pointer merge of the two descending halves through a scratch buffer.
  const std::uint32_t half = size / 2;
  std::vector<Neighbor> scratch(size);
  std::uint32_t i = 0;
  std::uint32_t j = half;
  for (std::uint32_t out = 0; out < size; ++out) {
    const bool take_left =
        i < half && (j >= size || !(slots_[i] < slots_[j]));
    scratch[out] = take_left ? slots_[i++] : slots_[j++];
  }
  for (std::uint32_t out = 0; out < size; ++out) {
    if (!(slots_[out] == scratch[out])) {
      slots_[out] = scratch[out];
      if (counter_) counter_->record(out);
    }
  }
}

std::vector<Neighbor> MergeQueue::extract_sorted() const {
  std::vector<Neighbor> out;
  out.reserve(slots_.size());
  for (const Neighbor& n : slots_) {
    if (!is_empty_slot(n)) out.push_back(n);
  }
  std::sort(out.begin(), out.end());
  if (out.size() > k_) out.resize(k_);
  return out;
}

bool MergeQueue::invariant_holds() const noexcept {
  for (std::size_t l = 0; l < level_starts_.size(); ++l) {
    const std::uint32_t start = level_starts_[l];
    const std::uint32_t end = l + 1 < level_starts_.size() ? level_starts_[l + 1]
                                                           : capacity();
    for (std::uint32_t i = start; i + 1 < end; ++i) {
      if (slots_[i] < slots_[i + 1]) return false;
    }
    if (l > 0 && slots_[level_starts_[l - 1]] < slots_[start]) return false;
  }
  return true;
}

}  // namespace gpuksel
