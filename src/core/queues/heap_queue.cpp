#include "core/queues/heap_queue.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace gpuksel {

HeapQueue::HeapQueue(std::uint32_t k, UpdateCounter* counter)
    : slots_(k, kEmptySlot), counter_(counter) {
  GPUKSEL_CHECK(k >= 1, "heap queue needs k >= 1");
}

bool HeapQueue::try_insert(float dist, std::uint32_t index) {
  const Neighbor cand{dist, index};
  if (!(cand < slots_[0])) return false;
  sift_down(0, cand);
  return true;
}

void HeapQueue::sift_down(std::size_t hole, const Neighbor& value) {
  const std::size_t n = slots_.size();
  while (true) {
    const std::size_t left = 2 * hole + 1;
    if (left >= n) break;
    const std::size_t right = left + 1;
    std::size_t big = left;
    if (right < n && slots_[right] > slots_[left]) big = right;
    if (!(slots_[big] > value)) break;
    slots_[hole] = slots_[big];
    if (counter_) counter_->record(hole);
    hole = big;
  }
  slots_[hole] = value;
  if (counter_) counter_->record(hole);
}

std::vector<Neighbor> HeapQueue::extract_sorted() const {
  std::vector<Neighbor> out;
  out.reserve(slots_.size());
  for (const Neighbor& n : slots_) {
    if (!is_empty_slot(n)) out.push_back(n);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace gpuksel
