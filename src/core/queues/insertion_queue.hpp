// Insertion queue: the classic fully-sorted selection queue (paper §III-B).
//
// The queue keeps its k entries sorted in decreasing order, head (largest)
// at position 0.  An accepted candidate pushes the head out and every larger
// element shifts one slot toward the head — O(k) writes per insertion, which
// is exactly why Fig. 5 shows its update count exploding with k.
#pragma once

#include <cstdint>
#include <vector>

#include "core/neighbor.hpp"
#include "core/queues/update_counter.hpp"

namespace gpuksel {

class InsertionQueue {
 public:
  /// Creates a queue of capacity k filled with sentinel slots.
  explicit InsertionQueue(std::uint32_t k, UpdateCounter* counter = nullptr);

  /// Number of slots (k).
  [[nodiscard]] std::uint32_t capacity() const noexcept {
    return static_cast<std::uint32_t>(slots_.size());
  }

  /// Current threshold: the largest candidate held (sentinel when not full).
  [[nodiscard]] const Neighbor& head() const noexcept { return slots_.front(); }

  /// Inserts if the candidate beats the head; returns whether it did.
  bool try_insert(float dist, std::uint32_t index);

  /// The retained candidates sorted ascending, sentinels dropped.
  [[nodiscard]] std::vector<Neighbor> extract_sorted() const;

  /// Raw slot view (descending order), for tests.
  [[nodiscard]] const std::vector<Neighbor>& slots() const noexcept {
    return slots_;
  }

 private:
  std::vector<Neighbor> slots_;
  UpdateCounter* counter_;
};

}  // namespace gpuksel
