// Per-position write instrumentation shared by the queue structures.
//
// The paper's Fig. 5 characterises the three queues by *where* in the queue
// writes land (per-position updates) and how many writes happen in total.
// Queues accept an optional UpdateCounter and bump it on every slot write.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

namespace gpuksel {

/// Counts writes to each queue position.
class UpdateCounter {
 public:
  explicit UpdateCounter(std::size_t positions) : counts_(positions, 0) {}

  void record(std::size_t position) noexcept {
    if (position < counts_.size()) ++counts_[position];
  }

  [[nodiscard]] const std::vector<std::uint64_t>& per_position() const noexcept {
    return counts_;
  }

  [[nodiscard]] std::uint64_t total() const noexcept {
    return std::accumulate(counts_.begin(), counts_.end(),
                           std::uint64_t{0});
  }

  void reset() noexcept {
    std::fill(counts_.begin(), counts_.end(), std::uint64_t{0});
  }

 private:
  std::vector<std::uint64_t> counts_;
};

}  // namespace gpuksel
