#include "core/queues/bitonic.hpp"

#include <bit>
#include <utility>

#include "util/check.hpp"

namespace gpuksel {

namespace {

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

}  // namespace

bool compare_exchange_desc(std::span<Neighbor> data, std::size_t i,
                           std::size_t j, UpdateCounter* counter) {
  GPUKSEL_DEBUG_ASSERT(i < j && j < data.size());
  if (data[j] > data[i]) {
    std::swap(data[i], data[j]);
    if (counter) {
      counter->record(i);
      counter->record(j);
    }
    return true;
  }
  return false;
}

void bitonic_merge_descending(std::span<Neighbor> data, UpdateCounter* counter) {
  const std::size_t n = data.size();
  GPUKSEL_CHECK(is_pow2(n), "bitonic merge size must be a power of two");
  for (std::size_t dist = n / 2; dist >= 1; dist /= 2) {
    for (std::size_t i = 0; i < n; ++i) {
      if ((i & dist) == 0) {
        compare_exchange_desc(data, i, i + dist, counter);
      }
    }
  }
}

void reverse_bitonic_merge_descending(std::span<Neighbor> data,
                                      UpdateCounter* counter) {
  const std::size_t n = data.size();
  GPUKSEL_CHECK(is_pow2(n), "reverse bitonic merge size must be a power of two");
  if (n < 2) return;
  const std::size_t half = n / 2;
  // Cross stage (the dashed box in Fig. 2b): i vs n-1-i.
  for (std::size_t i = 0; i < half; ++i) {
    compare_exchange_desc(data, i, n - 1 - i, counter);
  }
  // Each half is now bitonic and the halves are separated; finish them with
  // the standard stages.
  if (half >= 2) {
    bitonic_merge_descending(data.subspan(0, half), counter);
    bitonic_merge_descending(data.subspan(half, half), counter);
  }
}

namespace {

void bitonic_sort_desc_impl(std::span<Neighbor> data, UpdateCounter* counter) {
  const std::size_t n = data.size();
  if (n < 2) return;
  const std::size_t half = n / 2;
  bitonic_sort_desc_impl(data.subspan(0, half), counter);
  bitonic_sort_desc_impl(data.subspan(half, half), counter);
  reverse_bitonic_merge_descending(data, counter);
}

}  // namespace

void bitonic_sort_descending(std::span<Neighbor> data, UpdateCounter* counter) {
  GPUKSEL_CHECK(is_pow2(data.size()) || data.empty(),
                "bitonic sort size must be a power of two");
  bitonic_sort_desc_impl(data, counter);
}

void bitonic_sort_ascending(std::span<Neighbor> data, UpdateCounter* counter) {
  bitonic_sort_descending(data, counter);
  // Reverse in place; counter records the moved slots.
  const std::size_t n = data.size();
  for (std::size_t i = 0; i * 2 + 1 < n; ++i) {
    std::swap(data[i], data[n - 1 - i]);
    if (counter) {
      counter->record(i);
      counter->record(n - 1 - i);
    }
  }
}

std::uint64_t bitonic_merge_compare_count(std::size_t n) noexcept {
  if (n < 2) return 0;
  const auto log2n = static_cast<std::uint64_t>(std::bit_width(n) - 1);
  return (n / 2) * log2n;
}

}  // namespace gpuksel
