// Hierarchical Partition (paper §III-E, Fig. 4, Algorithm 4).
//
// Bottom-Up Construction folds the distance list into levels of group minima
// (group size G) until at most k elements remain; Top-Down search then visits
// only the sub-groups of current k-NN candidates, so selection touches
// ~G*k*log_G(N/k) elements instead of N.  Construction is a linear streaming
// scan (O(N) time, O(N/(G-1)) extra space) and, on the GPU, perfectly
// coalesced — which is why paying it on every query is still a large win.
//
// Correctness note (property-tested): group minima keep the *first* position
// achieving the minimum, and queues order candidates by (value, position).
// With those two rules the k smallest elements of each level always have
// their group representative among the k smallest of the level above, so
// Top-Down search can never prune a true k-NN.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/neighbor.hpp"

namespace gpuksel {

class HierarchicalPartition {
 public:
  /// Builds the hierarchy over `dlist` for queries of at most `k` neighbors
  /// with group size `G >= 2`.  The bottom level aliases `dlist`, which must
  /// outlive this object.
  HierarchicalPartition(std::span<const float> dlist, std::uint32_t group_size,
                        std::uint32_t k);

  [[nodiscard]] std::uint32_t group_size() const noexcept { return group_; }
  [[nodiscard]] std::uint32_t k() const noexcept { return k_; }

  /// Number of levels including the bottom (original) list.
  [[nodiscard]] std::size_t level_count() const noexcept {
    return upper_.size() + 1;
  }

  /// Level l values; level 0 is the original list.
  [[nodiscard]] std::span<const float> level(std::size_t l) const;

  /// Elements stored in the upper levels (the paper's O(N/(G-1)) overhead).
  [[nodiscard]] std::size_t extra_memory_elements() const noexcept;

  /// Top-Down search: returns the k smallest (dist, index) of the bottom
  /// list, sorted ascending.  `make_queue(k)` constructs the selection queue
  /// used at every level (InsertionQueue, HeapQueue or MergeQueue).
  template <typename MakeQueue>
  [[nodiscard]] std::vector<Neighbor> select(MakeQueue&& make_queue) const {
    // Candidate positions at the current level; start with every slot of the
    // topmost level (its size is <= k by construction).
    const std::size_t top = level_count() - 1;
    std::vector<std::uint32_t> candidates(level(top).size());
    for (std::uint32_t i = 0; i < candidates.size(); ++i) candidates[i] = i;

    for (std::size_t l = top; l > 0; --l) {
      const std::span<const float> child = level(l - 1);
      auto queue = make_queue(k_);
      for (const std::uint32_t pos : candidates) {
        const std::size_t first = std::size_t{pos} * group_;
        const std::size_t last =
            std::min(child.size(), first + group_);
        for (std::size_t j = first; j < last; ++j) {
          queue.try_insert(child[j], static_cast<std::uint32_t>(j));
        }
      }
      std::vector<Neighbor> kept = queue.extract_sorted();
      candidates.clear();
      for (const Neighbor& n : kept) candidates.push_back(n.index);
      if (l == 1) return kept;
    }
    // Single level: the hierarchy is trivial (N <= k); select directly.
    auto queue = make_queue(k_);
    for (std::uint32_t j = 0; j < level(0).size(); ++j) {
      queue.try_insert(level(0)[j], j);
    }
    return queue.extract_sorted();
  }

 private:
  std::span<const float> base_;
  std::vector<std::vector<float>> upper_;
  std::uint32_t group_;
  std::uint32_t k_;
};

}  // namespace gpuksel
