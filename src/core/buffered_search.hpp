// Buffered Search, scalar reference semantics (paper §III-D, Algorithm 3).
//
// On the GPU the point of buffering is warp alignment (SIMT efficiency); that
// effect lives in the SIMT kernels.  This scalar version pins down the
// *algorithmic* semantics the kernels must match bit-for-bit: candidates are
// staged in a small buffer, and when the buffer fills it is locally sorted
// ascending and drained into the queue — draining smallest-first shrinks the
// queue head early so later buffer entries can be rejected without insertion.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/neighbor.hpp"
#include "util/check.hpp"

namespace gpuksel {

/// Statistics describing how much work buffering avoided.
struct BufferedSearchStats {
  std::uint64_t buffered = 0;        ///< candidates staged in the buffer
  std::uint64_t inserted = 0;        ///< candidates actually inserted
  std::uint64_t rejected_late = 0;   ///< buffered but rejected at drain time
  std::uint64_t flushes = 0;         ///< buffer drains (incl. the final one)
};

/// Scans `dlist` and selects the k smallest into `queue` (any of the three
/// queue types), staging candidates in a buffer of `buffer_size` entries.
/// When `local_sort` is set the buffer is sorted ascending before draining.
/// Returns drain statistics; the queue afterwards holds exactly the same
/// contents as a direct scan would produce.
template <typename Queue>
BufferedSearchStats buffered_select(std::span<const float> dlist, Queue& queue,
                                    std::uint32_t buffer_size,
                                    bool local_sort = true) {
  GPUKSEL_CHECK(buffer_size >= 1, "buffered search needs buffer_size >= 1");
  BufferedSearchStats stats;
  std::vector<Neighbor> buffer;
  buffer.reserve(buffer_size);

  auto drain = [&] {
    if (buffer.empty()) return;
    if (local_sort) std::sort(buffer.begin(), buffer.end());
    for (const Neighbor& cand : buffer) {
      if (queue.try_insert(cand.dist, cand.index)) {
        ++stats.inserted;
      } else {
        ++stats.rejected_late;
      }
    }
    buffer.clear();
    ++stats.flushes;
  };

  for (std::uint32_t i = 0; i < dlist.size(); ++i) {
    const Neighbor cand{dlist[i], i};
    if (cand < queue.head()) {
      buffer.push_back(cand);
      ++stats.buffered;
      if (buffer.size() == buffer_size) drain();
    }
  }
  drain();
  return stats;
}

}  // namespace gpuksel
