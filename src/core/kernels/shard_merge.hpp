// Cross-device top-k reduction for the sharded serving layer.
//
// Each DeviceShard answers a query batch over its own partition of the
// reference set and ships back a per-query partial top-k list (already
// remapped to global indices).  shard_merge() uploads those partials to the
// merge device as sentinel-padded per-thread slabs — one slab per shard,
// mirroring the per-tile slabs of batch_pipeline — and reduces them with the
// same two-pointer merge queue the batched reduce step uses.
//
// Exactness: every shard's partial top-k is a superset of that shard's
// contribution to the global top-k (the divide-and-merge argument of
// select_k_smallest_chunked, applied at partition granularity), shards cover
// disjoint global index ranges, and all ordering is lexicographic
// (dist, index) — so the merged result is bit-identical to running the whole
// reference set through one device, which tests/sharded_knn_test.cpp asserts
// for every shard count, uneven splits, and host-recomputed (excluded)
// shards alike.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/kernels/select_kernels.hpp"
#include "core/neighbor.hpp"
#include "simt/device.hpp"

namespace gpuksel::kernels {

/// Result of one cross-shard reduction.
struct ShardMergeOutput {
  /// Per query: the min(k, total candidates) nearest (dist, index), ascending.
  std::vector<std::vector<Neighbor>> neighbors;
  /// Metrics of the single "shard_merge" launch.
  simt::KernelMetrics metrics;
};

/// Merges per-shard partial top-k lists into exact global results on `dev`.
/// `partials[s][q]` is shard s's (ascending) candidate list for query q with
/// globally-remapped indices; every shard must answer all `num_queries`
/// queries.  Ragged lists (k > shard size, excluded shards) are
/// sentinel-padded.  `cfg` supplies the queue layout and merge parameters;
/// the reduction always runs a two-pointer merge queue regardless of
/// cfg.queue, like the batched reduce step.  An empty batch launches nothing.
[[nodiscard]] ShardMergeOutput shard_merge(
    simt::Device& dev,
    std::span<const std::vector<std::vector<Neighbor>>> partials,
    std::uint32_t num_queries, std::uint32_t k, const SelectConfig& cfg);

}  // namespace gpuksel::kernels
