// Warp-synchronous queue operations: one lane = one query's queue.
//
// All three queue structures from the paper, executed in lockstep under
// active-lane masks.  The cost asymmetries the paper measures fall out
// directly:
//  * insertion queue: the shift loop runs for max-over-lanes iterations while
//    only the still-shifting lanes are active — heavy divergence, O(k) depth;
//  * heap queue: short O(log k) sift-down, but lanes walk different tree
//    paths, so the gathered loads splinter into many transactions;
//  * merge queue: a bounded O(m) flat insert plus occasional merge networks
//    whose shape is *identical across lanes* — with Aligned Merge the whole
//    warp runs the network together (perfect SIMT efficiency), without it
//    each lane's network runs under a sparse mask.
//
// Every operation matches the scalar queues bit-for-bit (same (dist, index)
// ordering), which the kernel-vs-scalar tests assert.
#pragma once

#include <cstdint>

#include "core/kernels/queue_layout.hpp"
#include "core/queues/merge_queue.hpp"
#include "simt/warp.hpp"
#include "simt/warp_ops.hpp"
#include "util/check.hpp"

namespace gpuksel::kernels {

/// Which queue structure a kernel maintains per thread.
enum class QueueKind {
  kInsertion,
  kHeap,
  kMerge,
};

/// Internal slot count for a merge queue returning k results with first-level
/// size m (mirrors MergeQueue::capacity()).
constexpr std::uint32_t merge_capacity(std::uint32_t k, std::uint32_t m) noexcept {
  if (k <= m) return k;
  std::uint32_t cap = 2 * m;
  while (cap < k) cap *= 2;
  return cap;
}

/// Per-warp selection queues (one per lane) living in interleaved device
/// memory, with the head (global max) cached in registers.
class WarpQueue {
 public:
  /// `view.length` must equal the queue capacity for `kind`
  /// (k, or merge_capacity(k, m) for the merge queue).  When `strategy` is
  /// kTwoPointer, `scratch` must view a per-thread array of the same
  /// capacity (the sequential merge is out-of-place).
  /// `cache_head` keeps the queue head in registers (an optimization beyond
  /// the paper — Algorithm 1 re-reads dqueue[0] from memory per element);
  /// off by default for fidelity.
  WarpQueue(WarpContext& ctx, ThreadArrayView view, U32 thread,
            LaneMask kernel_mask, QueueKind kind, std::uint32_t m,
            bool aligned_merge, simt::SharedArray<int>* flag,
            MergeStrategy strategy = MergeStrategy::kReverseBitonic,
            ThreadArrayView scratch = {}, bool cache_head = false)
      : ctx_(ctx),
        view_(view),
        scratch_(scratch),
        thread_(thread),
        kernel_mask_(kernel_mask),
        kind_(kind),
        m_(m),
        aligned_(aligned_merge),
        strategy_(strategy),
        cache_head_(cache_head),
        flag_(flag) {
    if (kind_ == QueueKind::kMerge &&
        strategy_ == MergeStrategy::kTwoPointer) {
      GPUKSEL_CHECK(scratch_.length >= view_.length,
                    "two-pointer merge needs a scratch array of queue size");
    }
  }

  /// Sentinel-fills the queues and the cached head.
  void init() {
    view_.fill_sentinel(ctx_, kernel_mask_, thread_);
    head_.dist = F32::filled(simt::kFloatSentinel);
    head_.index = U32::filled(simt::kIndexSentinel);
  }

  /// Lanes (within m) whose candidate beats their queue head.
  ///
  /// Paper-faithful mode (cache_head == false) re-reads the head distance
  /// from the queue each call (Algorithm 1 line 2); the index is only
  /// fetched for lanes whose distance ties exactly, preserving the
  /// (dist, index) ordering at ~one extra load per tie.
  LaneMask accepts(LaneMask m, const EntryLanes& cand) {
    if (cache_head_) return entry_lt(ctx_, m, cand, head_);
    const U32 idx0 = view_.flat(ctx_, m, thread_, 0);
    const F32 head_d = ctx_.load(m, view_.dist, idx0);
    const LaneMask less = ctx_.cmp_lt(m, cand.dist, head_d);
    const LaneMask tied = ctx_.cmp_eq(m, cand.dist, head_d);
    if (!tied) return less;
    const U32 head_i = ctx_.load(tied, view_.index, idx0);
    const LaneMask tie_wins = ctx_.cmp_lt(tied, cand.index, head_i);
    return less | tie_wins;
  }

  [[nodiscard]] const EntryLanes& head() const noexcept { return head_; }

  /// Re-reads the head into the register cache after the queue storage was
  /// filled externally (the Hierarchical Partition inherit-and-offer step).
  void adopt(LaneMask m) { refresh_head(m); }

  /// Inserts the candidate for lanes in `ins` (each must have passed
  /// accepts()), maintaining the structure invariant and the cached head.
  void insert(LaneMask ins, const EntryLanes& cand) {
    if (!ins) return;
    switch (kind_) {
      case QueueKind::kInsertion:
        insert_insertion(ins, cand);
        break;
      case QueueKind::kHeap:
        insert_heap(ins, cand);
        break;
      case QueueKind::kMerge:
        insert_merge(ins, cand);
        break;
    }
  }

 private:
  // --- insertion queue: shift larger elements toward the head ------------
  void insert_insertion(LaneMask ins, const EntryLanes& cand) {
    const std::uint32_t cap = view_.length;
    U32 pos = ctx_.imm(ins, 0u);
    LaneMask act = ins;
    while (act) {
      // cond: pos + 1 < cap && queue[pos + 1] > cand
      const LaneMask in_range = ctx_.inc_lt(act, pos, cap);
      if (!in_range) break;
      U32 next_pos = ctx_.add(in_range, pos, 1u);
      const EntryLanes next = view_.load_gather(ctx_, in_range, thread_, next_pos);
      const LaneMask shift = entry_lt(ctx_, in_range, cand, next);
      if (shift) {
        view_.store_gather(ctx_, shift, thread_, pos, next);
        ctx_.cpy(shift, pos, next_pos);
      }
      act = shift;
    }
    view_.store_gather(ctx_, ins, thread_, pos, cand);
    refresh_head(ins);
  }

  // --- heap queue: replace the root, sift down ----------------------------
  void insert_heap(LaneMask ins, const EntryLanes& cand) {
    const std::uint32_t cap = view_.length;
    U32 hole = ctx_.imm(ins, 0u);
    LaneMask act = ins;
    while (act) {
      const U32 left = ctx_.mad(act, hole, 2u, 1u);
      const LaneMask has_left = ctx_.cmp_lt(act, left, cap);
      if (!has_left) break;
      const EntryLanes l = view_.load_gather(ctx_, has_left, thread_, left);
      U32 right = ctx_.add(has_left, left, 1u);
      const LaneMask has_right = ctx_.cmp_lt(has_left, right, cap);
      EntryLanes r{F32::filled(0.0f), U32::filled(0u)};
      if (has_right) r = view_.load_gather(ctx_, has_right, thread_, right);
      const LaneMask take_right = has_right & entry_lt(ctx_, has_left, l, r);
      U32 big = ctx_.select(has_left, take_right, right, left);
      EntryLanes big_e{ctx_.select(has_left, take_right, r.dist, l.dist),
                       ctx_.select(has_left, take_right, r.index, l.index)};
      const LaneMask cont = entry_lt(ctx_, has_left, cand, big_e);
      if (cont) {
        view_.store_gather(ctx_, cont, thread_, hole, big_e);
        ctx_.cpy(cont, hole, big);
      }
      act = cont;
    }
    view_.store_gather(ctx_, ins, thread_, hole, cand);
    refresh_head(ins);
  }

  // --- merge queue: flat insert + lazy cascading merges -------------------
  void insert_merge(LaneMask ins, const EntryLanes& cand) {
    const std::uint32_t cap = view_.length;
    const std::uint32_t level0 = m_ < cap ? m_ : cap;
    // Flat insert (insertion sort bounded by the first level).
    {
      U32 pos = ctx_.imm(ins, 0u);
      LaneMask act = ins;
      while (act) {
        const LaneMask in_range = ctx_.inc_lt(act, pos, level0);
        if (!in_range) break;
        U32 next_pos = ctx_.add(in_range, pos, 1u);
        const EntryLanes next =
            view_.load_gather(ctx_, in_range, thread_, next_pos);
        const LaneMask shift = entry_lt(ctx_, in_range, cand, next);
        if (shift) {
          view_.store_gather(ctx_, shift, thread_, pos, next);
          ctx_.cpy(shift, pos, next_pos);
        }
        act = shift;
      }
      view_.store_gather(ctx_, ins, thread_, pos, cand);
    }
    // Lazy Update cascade.  In aligned mode the invariant check runs for the
    // whole warp and any violating lane pulls every lane into the merge
    // (Intra-Warp Communication, Algorithm 2 lines 2-8); otherwise each
    // lane's merge runs under its own sparse mask.
    for (std::uint32_t prev = 0, next = m_; next < cap; prev = next, next *= 2) {
      const LaneMask check = aligned_ ? kernel_mask_ : ins;
      const EntryLanes ep = view_.load(ctx_, check, thread_, prev);
      const EntryLanes en = view_.load(ctx_, check, thread_, next);
      const LaneMask need = entry_lt(ctx_, check, ep, en);
      LaneMask merge_mask;
      if (aligned_) {
        if (flag_ != nullptr) {
          // The shared flag the paper uses: clear, set by violating lanes,
          // read by everyone.
          flag_->write_bcast(kernel_mask_, 0, 0);
          if (need) flag_->write_bcast(need, 0, 1);
          const auto f = flag_->read_bcast(kernel_mask_, 0);
          merge_mask = f[0] != 0 ? kernel_mask_ : LaneMask{0};
        } else {
          merge_mask = ctx_.any(kernel_mask_, need) ? kernel_mask_ : LaneMask{0};
        }
      } else {
        merge_mask = need;
      }
      if (!merge_mask) break;
      if (strategy_ == MergeStrategy::kReverseBitonic) {
        reverse_bitonic_merge(merge_mask, 2 * next);
      } else {
        two_pointer_merge(merge_mask, 2 * next);
      }
    }
    refresh_head(ins);
  }

  /// Branch-free compare-exchange putting the larger entry at slot i.
  void cmpex(LaneMask m, std::uint32_t i, std::uint32_t j) {
    const EntryLanes a = view_.load(ctx_, m, thread_, i);
    const EntryLanes b = view_.load(ctx_, m, thread_, j);
    const LaneMask sw = entry_lt(ctx_, m, a, b);
    const EntryLanes hi{ctx_.select(m, sw, b.dist, a.dist),
                        ctx_.select(m, sw, b.index, a.index)};
    const EntryLanes lo{ctx_.select(m, sw, a.dist, b.dist),
                        ctx_.select(m, sw, a.index, b.index)};
    view_.store(ctx_, m, thread_, i, hi);
    view_.store(ctx_, m, thread_, j, lo);
  }

  /// Reverse Bitonic Merge of the prefix [0, size): two descending halves
  /// into one descending run.  The network shape is data-independent, so all
  /// lanes in `m` execute it in perfect lockstep with coalesced accesses.
  void reverse_bitonic_merge(LaneMask m, std::uint32_t size) {
    const auto prof = ctx_.region("reverse_bitonic_merge");
    const std::uint32_t half = size / 2;
    for (std::uint32_t i = 0; i < half; ++i) {
      cmpex(m, i, size - 1 - i);
    }
    for (std::uint32_t dist = half / 2; dist >= 1; dist /= 2) {
      for (std::uint32_t i = 0; i < size; ++i) {
        if ((i & dist) == 0) cmpex(m, i, i + dist);
      }
    }
  }

  /// Sequential two-pointer merge of the two descending halves of the
  /// prefix [0, size) through the scratch array (the §V future-work
  /// alternative).  The trip count is uniform (`size` steps), but the two
  /// read pointers advance data-dependently per lane, so the loads are
  /// divergent gathers — the cost profile the ablation bench contrasts with
  /// the bitonic network's lockstep, coalesced compare-exchanges.
  void two_pointer_merge(LaneMask m, std::uint32_t size) {
    const auto prof = ctx_.region("two_pointer_merge");
    const std::uint32_t half = size / 2;
    U32 i = ctx_.imm(m, 0u);
    U32 j = ctx_.imm(m, half);
    for (std::uint32_t out = 0; out < size; ++out) {
      const LaneMask has_l = ctx_.cmp_lt(m, i, half);
      const LaneMask has_r = ctx_.cmp_lt(m, j, size);
      EntryLanes le{F32::filled(0.0f), U32::filled(0u)};
      EntryLanes re{F32::filled(0.0f), U32::filled(0u)};
      if (has_l) le = view_.load_gather(ctx_, has_l, thread_, i);
      if (has_r) re = view_.load_gather(ctx_, has_r, thread_, j);
      const LaneMask both = has_l & has_r;
      const LaneMask lt = entry_lt(ctx_, both, le, re);
      // Descending output: take the left element when it is >= the right
      // one, or when the right half is exhausted.
      const LaneMask take_left = (has_l & ~has_r) | (both & ~lt);
      const EntryLanes out_e{ctx_.select(m, take_left, le.dist, re.dist),
                             ctx_.select(m, take_left, le.index, re.index)};
      scratch_.store(ctx_, m, thread_, out, out_e);
      U32 inc_i = ctx_.add(take_left, i, 1u);
      ctx_.cpy(take_left, i, inc_i);
      const LaneMask take_right = m & ~take_left;
      U32 inc_j = ctx_.add(take_right, j, 1u);
      ctx_.cpy(take_right, j, inc_j);
    }
    // Copy back (uniform slots: coalesced).
    for (std::uint32_t out = 0; out < size; ++out) {
      const EntryLanes e = scratch_.load(ctx_, m, thread_, out);
      view_.store(ctx_, m, thread_, out, e);
    }
  }

  /// Reloads the cached head registers for lanes whose queues changed
  /// (no-op in paper-faithful mode, where the head lives in memory only).
  void refresh_head(LaneMask changed) {
    if (!cache_head_) return;
    const EntryLanes h = view_.load(ctx_, changed, thread_, 0);
    head_.dist = ctx_.select(kernel_mask_, changed, h.dist, head_.dist);
    head_.index = ctx_.select(kernel_mask_, changed, h.index, head_.index);
  }

  WarpContext& ctx_;
  ThreadArrayView view_;
  ThreadArrayView scratch_;
  U32 thread_;
  LaneMask kernel_mask_;
  QueueKind kind_;
  std::uint32_t m_;
  bool aligned_;
  MergeStrategy strategy_;
  bool cache_head_;
  simt::SharedArray<int>* flag_;
  EntryLanes head_{};
};

}  // namespace gpuksel::kernels
