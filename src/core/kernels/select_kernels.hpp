// Simulated-GPU k-selection kernels (flat scan over the distance list).
//
// One thread (lane) per query, as in the paper: a warp processes 32 queries
// in lockstep.  The kernel scans the distance matrix and maintains a
// per-thread queue (insertion / heap / merge), optionally staging candidates
// through Buffered Search (§III-D) with Intra-Warp Communication and Local
// Sort.  Results are bit-identical to the scalar select_k_smallest().
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "core/kernels/queue_layout.hpp"
#include "core/kernels/warp_queue.hpp"
#include "core/queues/merge_queue.hpp"
#include "core/neighbor.hpp"
#include "simt/device.hpp"

namespace gpuksel::kernels {

/// Candidate staging policy for Buffered Search (Fig. 6 series).
enum class BufferMode {
  kNone,        ///< insert directly on every hit (the "original" kernels)
  kBufferOnly,  ///< each thread drains its own buffer when it fills
  kFull,        ///< + Intra-Warp Communication: any full buffer drains all
  kFullSorted,  ///< + Local Sort: buffers sorted ascending before draining
};

[[nodiscard]] std::string_view queue_kind_name(QueueKind kind) noexcept;
[[nodiscard]] std::string_view buffer_mode_name(BufferMode mode) noexcept;

/// Kernel configuration (one row of the paper's comparison space).
struct SelectConfig {
  QueueKind queue = QueueKind::kMerge;
  /// Merge queue only: synchronize merge networks across the warp
  /// ("Merge Queue aligned" in Table I).
  bool aligned_merge = true;
  BufferMode buffer = BufferMode::kNone;
  std::uint32_t buffer_size = 16;
  /// Merge queue first/second level size (paper: m = 8).
  std::uint32_t merge_m = 8;
  /// How merge-queue levels are merged (paper default: the Reverse Bitonic
  /// network; kTwoPointer is the §V future-work alternative, see
  /// bench/ablation_merge_strategy).
  MergeStrategy merge_strategy = MergeStrategy::kReverseBitonic;
  MatrixLayout layout = MatrixLayout::kReferenceMajor;
  /// Per-thread queue layout.  kInterleaved (CUDA local-memory order) is the
  /// default — calibration against the paper's Table I shows it models the
  /// artifact far better than naive row-major queues (which would invert the
  /// aligned-merge result); kRowMajor remains available for
  /// bench/ablation_queue_opt.
  QueueLayout queue_layout = QueueLayout::kInterleaved;
  /// Keep the queue head in a register instead of re-reading dqueue[0] per
  /// element.  On-by-default for the same calibration reason; turning it off
  /// models a naive Algorithm-1 implementation (see ablation_queue_opt).
  bool cache_head = true;
};

/// Selection result plus the metrics the cost model consumes.
struct SelectOutput {
  /// Per query: the k nearest (dist, index), ascending.
  std::vector<std::vector<Neighbor>> neighbors;
  /// Metrics of the selection kernel itself.
  simt::KernelMetrics metrics;
  /// Metrics of Hierarchical Partition construction (zero for flat scans).
  simt::KernelMetrics build_metrics;
};

/// Runs the flat-scan selection kernel over a Q x N distance matrix stored in
/// `cfg.layout` order.  k must be >= 1; returns min(k, n) neighbors/query.
[[nodiscard]] SelectOutput flat_select(simt::Device& dev,
                                       std::span<const float> distances,
                                       std::uint32_t num_queries,
                                       std::uint32_t n, std::uint32_t k,
                                       const SelectConfig& cfg);

// --- shared plumbing (used by the HP kernels and the baselines) -----------

/// Thread count padded to a whole number of warps.
[[nodiscard]] constexpr std::uint32_t padded_threads(std::uint32_t q) noexcept {
  return (q + simt::kWarpSize - 1) / simt::kWarpSize * simt::kWarpSize;
}

/// Queue capacity for a configuration (merge queues may round k up).
[[nodiscard]] std::uint32_t queue_capacity(const SelectConfig& cfg,
                                           std::uint32_t k) noexcept;

/// Gathers per-query results from interleaved queue buffers: drops sentinel
/// slots, sorts ascending, truncates to k.
[[nodiscard]] std::vector<std::vector<Neighbor>> extract_queues(
    const simt::DeviceBuffer<float>& dist,
    const simt::DeviceBuffer<std::uint32_t>& index, std::uint32_t num_queries,
    std::uint32_t stride, std::uint32_t capacity, std::uint32_t k,
    QueueLayout layout = QueueLayout::kInterleaved);

/// Body of the flat-scan kernel for one warp; exposed so the Hierarchical
/// Partition kernels can reuse the buffered-insert machinery.
class BufferedInserter {
 public:
  /// `buffer` must be sized cfg.buffer_size (power of two when sorting);
  /// ignored when cfg.buffer == kNone.
  BufferedInserter(WarpContext& ctx, WarpQueue& queue, LaneMask kernel_mask,
                   ThreadArrayView buffer, U32 thread, BufferMode mode,
                   std::uint32_t buffer_size, simt::SharedArray<int>* flag);

  /// Offers one candidate to the active lanes (stage or insert directly).
  void offer(LaneMask m, const EntryLanes& cand);

  /// Drains whatever is still buffered (end of scan).
  void finish();

 private:
  void drain(LaneMask lanes);
  void local_sort(LaneMask lanes);

  /// Shared-memory slot used for the buffer-full flag (the merge queue's
  /// aligned-merge flag lives in slot 0 of the same array).
  static constexpr std::size_t kFlagSlot = 1;

  WarpContext& ctx_;
  WarpQueue& queue_;
  LaneMask kernel_mask_;
  ThreadArrayView buffer_;
  U32 thread_;
  BufferMode mode_;
  std::uint32_t buffer_size_;
  simt::SharedArray<int>* flag_;
  U32 cur_;
};

}  // namespace gpuksel::kernels
