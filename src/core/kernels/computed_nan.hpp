// NaN policy for distances *computed* in registers by fused kernels.
//
// The load-path sanitizer in WarpContext only sees NaNs that are loaded from
// device memory.  Fused distance+select kernels (batch_pipeline, ivf_kernels)
// compute distances in registers, so they apply the same policy to the
// accumulator themselves: kReject faults, kSortLast remaps to +infinity so
// the NaN ranks after every real candidate.  The fixup is free, like the
// load-path remap: hardware charges nothing for it, it is a sanitizer
// semantic.
#pragma once

#include <cmath>
#include <limits>
#include <sstream>

#include "simt/warp.hpp"

namespace gpuksel::kernels {

inline void apply_computed_nan_policy(simt::WarpContext& ctx,
                                      simt::LaneMask act, simt::F32& acc,
                                      const simt::U32& thread,
                                      std::uint32_t ref) {
  const simt::SanitizerConfig* san = ctx.sanitizer();
  if (san == nullptr || san->nan_policy == NanPolicy::kPropagate) return;
  for (int i = 0; i < simt::kWarpSize; ++i) {
    if (!simt::lane_active(act, i) || !std::isnan(acc[i])) continue;
    if (san->nan_policy == NanPolicy::kReject) {
      std::ostringstream os;
      os << "NaN distance computed for query " << thread[i] << " x ref " << ref
         << " under NanPolicy::kReject";
      ctx.fault(FaultKind::kNanDistance, i, os.str());
    }
    acc[i] = std::numeric_limits<float>::infinity();
  }
}

}  // namespace gpuksel::kernels
