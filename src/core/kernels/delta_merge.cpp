#include "core/kernels/delta_merge.hpp"

#include <algorithm>

#include "core/kernels/warp_queue.hpp"
#include "util/check.hpp"

namespace gpuksel::kernels {

DeltaMergeOutput delta_merge(
    simt::Device& dev,
    std::span<const std::vector<std::vector<Neighbor>>> partials,
    const simt::DeviceBuffer<std::uint32_t>& alive, std::uint32_t num_slots,
    std::uint32_t num_queries, std::uint32_t k, const SelectConfig& cfg) {
  GPUKSEL_CHECK(k >= 1, "delta_merge needs k >= 1");
  GPUKSEL_CHECK(!partials.empty(), "delta_merge needs at least one source");
  GPUKSEL_CHECK(alive.size() >= num_slots,
                "delta_merge alive mask smaller than the slot space");
  DeltaMergeOutput out;
  if (num_queries == 0) return out;  // an empty batch is merged for free

  const auto num_sources = static_cast<std::uint32_t>(partials.size());
  std::uint32_t slot_cap = 0;
  for (const auto& source : partials) {
    GPUKSEL_CHECK(source.size() == num_queries,
                  "delta_merge: every source must answer every query");
    for (const auto& list : source) {
      slot_cap = std::max(slot_cap, static_cast<std::uint32_t>(list.size()));
    }
  }
  if (slot_cap == 0) {  // all sources empty-handed: nothing to select from
    out.neighbors.resize(num_queries);
    return out;
  }

  const std::uint32_t threads = padded_threads(num_queries);
  const std::uint32_t num_warps = threads / simt::kWarpSize;
  // Always a two-pointer merge queue, like the other reductions: partials
  // arrive sorted and mostly below the threshold.
  SelectConfig merge_cfg = cfg;
  merge_cfg.queue = QueueKind::kMerge;
  const std::uint32_t red_cap = queue_capacity(merge_cfg, k);

  // One sentinel-padded slab of per-thread candidate lists per source, built
  // host-side in the view's layout and uploaded through the pool (merge
  // slabs are same-shaped request to request — the recycling sweet spot).
  std::vector<simt::DeviceBuffer<float>> sdist;
  std::vector<simt::DeviceBuffer<std::uint32_t>> sidx;
  sdist.reserve(num_sources);
  sidx.reserve(num_sources);
  const std::size_t slab = std::size_t{slot_cap} * threads;
  for (const auto& source : partials) {
    std::vector<float> dist(slab, simt::kFloatSentinel);
    std::vector<std::uint32_t> index(slab, simt::kIndexSentinel);
    for (std::uint32_t q = 0; q < num_queries; ++q) {
      for (std::size_t j = 0; j < source[q].size(); ++j) {
        const std::size_t flat =
            merge_cfg.queue_layout == QueueLayout::kInterleaved
                ? j * threads + q
                : std::size_t{q} * slot_cap + j;
        dist[flat] = source[q][j].dist;
        index[flat] = source[q][j].index;
      }
    }
    sdist.push_back(dev.upload_pooled(std::span<const float>(dist)));
    sidx.push_back(dev.upload_pooled(std::span<const std::uint32_t>(index)));
  }

  auto fdist = dev.alloc<float>(std::size_t{red_cap} * threads);
  auto fidx = dev.alloc<std::uint32_t>(std::size_t{red_cap} * threads);
  auto rdscr = dev.alloc<float>(std::size_t{red_cap} * threads);
  auto riscr = dev.alloc<std::uint32_t>(std::size_t{red_cap} * threads);

  // Views are built host-side before the launch: DeviceBuffer::span() is not
  // safe to call from parallel warp workers (it refreshes the shadow).
  std::vector<ThreadArrayView> source_views;
  source_views.reserve(num_sources);
  for (std::uint32_t s = 0; s < num_sources; ++s) {
    source_views.push_back(ThreadArrayView{sdist[s].span(), sidx[s].span(),
                                           threads, slot_cap,
                                           merge_cfg.queue_layout});
  }
  const ThreadArrayView fview{fdist.span(), fidx.span(), threads, red_cap,
                              merge_cfg.queue_layout};
  const ThreadArrayView rsview{rdscr.span(), riscr.span(), threads, red_cap,
                               merge_cfg.queue_layout};
  const auto alive_span = alive.cspan();

  out.metrics = dev.launch(
      "delta_merge", num_warps, [&](WarpContext& ctx, std::uint32_t warp) {
        const std::uint32_t base = warp * simt::kWarpSize;
        const int live = static_cast<int>(
            std::min<std::uint32_t>(simt::kWarpSize, num_queries - base));
        const LaneMask act = simt::first_lanes(live);
        const U32 thread = ctx.lane_offset(act, base);

        simt::SharedArray<int> flag(ctx, 2, 0);
        WarpQueue queue(ctx, fview, thread, act, QueueKind::kMerge,
                        merge_cfg.merge_m, merge_cfg.aligned_merge, &flag,
                        MergeStrategy::kTwoPointer, rsview,
                        merge_cfg.cache_head);
        queue.init();

        const auto prof = ctx.region("delta_merge");
        // Sources in ascending order, slots in list order.  Sentinel padding
        // never gathers (the mask load would be out of bounds) and never
        // inserts; a real candidate additionally needs a live mask word.
        for (std::uint32_t s = 0; s < num_sources; ++s) {
          for (std::uint32_t j = 0; j < slot_cap; ++j) {
            const EntryLanes e = source_views[s].load(ctx, act, thread, j);
            const LaneMask have = ctx.pred(act, [&](int i) {
              return e.index[i] != simt::kIndexSentinel;
            });
            const U32 a = ctx.load(have, alive_span, e.index);
            const LaneMask livem =
                ctx.pred(have, [&](int i) { return a[i] != 0; });
            const LaneMask want = queue.accepts(livem, e);
            if (want) queue.insert(want, e);
          }
        }
      });

  // The slabs are dead after the launch: recycle them for the next request.
  for (auto& buf : sdist) dev.release(std::move(buf));
  for (auto& buf : sidx) dev.release(std::move(buf));

  out.neighbors = extract_queues(fdist, fidx, num_queries, threads, red_cap, k,
                                 merge_cfg.queue_layout);
  return out;
}

}  // namespace gpuksel::kernels
