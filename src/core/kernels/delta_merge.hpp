// Tombstone-aware merge of base + delta partial top-k lists.
//
// The mutable index (knn/mutable.hpp) answers a query from two sources: the
// immutable base engine and the small append-only delta shard.  Each source
// ships a per-query partial top-k list whose indices are *slot ids* — base
// rows occupy slots [0, base_rows), delta rows slots [base_rows, num_slots).
// delta_merge() reduces those partials with the same two-pointer merge queue
// shard_merge uses, with one extra admission step: each candidate's slot is
// gathered from the device-resident alive mask and tombstoned slots (mask
// word 0) are suppressed before the queue sees them.
//
// Exactness (the differential contract): each source's partial is fetched at
// k + (dead slots in that source) depth, so by the divide-and-merge superset
// argument the live candidates surviving suppression contain the exact
// top-k over the logically-current rows; slot order is strictly monotone in
// logical-row order over live slots, so the (dist, slot) merge order is
// isomorphic to the fresh-engine's (dist, row) order and the caller's
// slot -> logical-position remap yields byte-identical results.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/kernels/select_kernels.hpp"
#include "core/neighbor.hpp"
#include "simt/device.hpp"

namespace gpuksel::kernels {

/// Result of one tombstone-aware reduction.
struct DeltaMergeOutput {
  /// Per query: up to k nearest *live* (dist, slot), ascending.  Fewer than
  /// k entries when fewer live candidates survived suppression.
  std::vector<std::vector<Neighbor>> neighbors;
  /// Metrics of the single "delta_merge" launch.
  simt::KernelMetrics metrics;
};

/// Merges per-source partial top-k lists (slot-indexed, ascending, ragged
/// lists sentinel-padded) into the exact live top-k on `dev`, suppressing
/// every candidate whose alive-mask word is 0.  `alive` must hold at least
/// `num_slots` words (capacity padding beyond that is ignored); every source
/// must answer all `num_queries` queries.  An empty batch launches nothing.
[[nodiscard]] DeltaMergeOutput delta_merge(
    simt::Device& dev,
    std::span<const std::vector<std::vector<Neighbor>>> partials,
    const simt::DeviceBuffer<std::uint32_t>& alive, std::uint32_t num_slots,
    std::uint32_t num_queries, std::uint32_t k, const SelectConfig& cfg);

}  // namespace gpuksel::kernels
