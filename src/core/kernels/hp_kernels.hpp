// Hierarchical Partition kernels (paper §III-E) on the simulated GPU.
//
// Bottom-Up Construction is a streaming group-minimum fold, one thread per
// query: every lane reads element j of its own list in lockstep, so the loads
// coalesce perfectly and SIMT efficiency is ~1 — the reason paying O(N)
// construction per query is still profitable.  Top-Down search then expands
// only the sub-groups of the current candidates, inserting at most G*k
// elements per level into a fresh queue (ping-pong buffers), reusing the same
// WarpQueue/BufferedInserter machinery as the flat kernels so every queue and
// buffering variant composes with HP (the paper's "buf+hp" rows).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/kernels/select_kernels.hpp"

namespace gpuksel::kernels {

/// Host-side mirror of the level structure: sizes[0] = N, each next level is
/// ceil(prev / G), stopping once size <= k.  sizes.size() == 1 means the
/// hierarchy is trivial (N <= k).
[[nodiscard]] std::vector<std::uint32_t> hp_level_sizes(std::uint32_t n,
                                                        std::uint32_t group,
                                                        std::uint32_t k);

/// Extra device memory per query (elements) the hierarchy costs — the
/// paper's N/(G-1) bound; reported by the G ablation bench.
[[nodiscard]] std::uint64_t hp_extra_elements(std::uint32_t n,
                                              std::uint32_t group,
                                              std::uint32_t k);

/// Runs Hierarchical Partition selection (construction + top-down search)
/// over a Q x N distance matrix.  `cfg` selects the queue and buffering used
/// during the search; `group` is the paper's G (>= 2).  Results are
/// bit-identical to select_k_smallest_hp().  out.build_metrics holds the
/// construction kernel's metrics, out.metrics the search kernel's; the
/// paper's figures charge both.
[[nodiscard]] SelectOutput hp_select(simt::Device& dev,
                                     std::span<const float> distances,
                                     std::uint32_t num_queries, std::uint32_t n,
                                     std::uint32_t k, const SelectConfig& cfg,
                                     std::uint32_t group);

}  // namespace gpuksel::kernels
