#include "core/kernels/shard_merge.hpp"

#include <algorithm>

#include "core/kernels/warp_queue.hpp"
#include "util/check.hpp"

namespace gpuksel::kernels {

ShardMergeOutput shard_merge(
    simt::Device& dev,
    std::span<const std::vector<std::vector<Neighbor>>> partials,
    std::uint32_t num_queries, std::uint32_t k, const SelectConfig& cfg) {
  GPUKSEL_CHECK(k >= 1, "shard_merge needs k >= 1");
  GPUKSEL_CHECK(!partials.empty(), "shard_merge needs at least one shard");
  ShardMergeOutput out;
  if (num_queries == 0) return out;  // an empty batch is merged for free

  const auto num_shards = static_cast<std::uint32_t>(partials.size());
  std::uint32_t slot_cap = 0;
  for (const auto& shard : partials) {
    GPUKSEL_CHECK(shard.size() == num_queries,
                  "shard_merge: every shard must answer every query");
    for (const auto& list : shard) {
      slot_cap = std::max(slot_cap, static_cast<std::uint32_t>(list.size()));
    }
  }
  if (slot_cap == 0) {  // all shards empty-handed: nothing to select from
    out.neighbors.resize(num_queries);
    return out;
  }

  const std::uint32_t threads = padded_threads(num_queries);
  const std::uint32_t num_warps = threads / simt::kWarpSize;
  // The reduction is always a merge queue (two-pointer), like batch_reduce:
  // partials arrive sorted and mostly below the threshold.
  SelectConfig merge_cfg = cfg;
  merge_cfg.queue = QueueKind::kMerge;
  const std::uint32_t red_cap = queue_capacity(merge_cfg, k);

  // One sentinel-padded slab of per-thread candidate lists per shard, built
  // host-side in the view's layout and uploaded (that transfer is the cost
  // of shipping partials to the merge device).
  std::vector<simt::DeviceBuffer<float>> sdist;
  std::vector<simt::DeviceBuffer<std::uint32_t>> sidx;
  sdist.reserve(num_shards);
  sidx.reserve(num_shards);
  const std::size_t slab = std::size_t{slot_cap} * threads;
  for (const auto& shard : partials) {
    std::vector<float> dist(slab, simt::kFloatSentinel);
    std::vector<std::uint32_t> index(slab, simt::kIndexSentinel);
    for (std::uint32_t q = 0; q < num_queries; ++q) {
      for (std::size_t j = 0; j < shard[q].size(); ++j) {
        const std::size_t flat = merge_cfg.queue_layout == QueueLayout::kInterleaved
                                     ? j * threads + q
                                     : std::size_t{q} * slot_cap + j;
        dist[flat] = shard[q][j].dist;
        index[flat] = shard[q][j].index;
      }
    }
    sdist.push_back(dev.upload(std::move(dist)));
    sidx.push_back(dev.upload(std::move(index)));
  }

  auto fdist = dev.alloc<float>(std::size_t{red_cap} * threads);
  auto fidx = dev.alloc<std::uint32_t>(std::size_t{red_cap} * threads);
  auto rdscr = dev.alloc<float>(std::size_t{red_cap} * threads);
  auto riscr = dev.alloc<std::uint32_t>(std::size_t{red_cap} * threads);

  // Views are built host-side before the launch: DeviceBuffer::span() is not
  // safe to call from parallel warp workers (it refreshes the shadow).
  std::vector<ThreadArrayView> shard_views;
  shard_views.reserve(num_shards);
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    shard_views.push_back(ThreadArrayView{sdist[s].span(), sidx[s].span(),
                                          threads, slot_cap,
                                          merge_cfg.queue_layout});
  }
  const ThreadArrayView fview{fdist.span(), fidx.span(), threads, red_cap,
                              merge_cfg.queue_layout};
  const ThreadArrayView rsview{rdscr.span(), riscr.span(), threads, red_cap,
                               merge_cfg.queue_layout};

  out.metrics = dev.launch(
      "shard_merge", num_warps, [&](WarpContext& ctx, std::uint32_t warp) {
        const std::uint32_t base = warp * simt::kWarpSize;
        const int live = static_cast<int>(
            std::min<std::uint32_t>(simt::kWarpSize, num_queries - base));
        const LaneMask act = simt::first_lanes(live);
        const U32 thread = ctx.lane_offset(act, base);

        simt::SharedArray<int> flag(ctx, 2, 0);
        WarpQueue queue(ctx, fview, thread, act, QueueKind::kMerge,
                        merge_cfg.merge_m, merge_cfg.aligned_merge, &flag,
                        MergeStrategy::kTwoPointer, rsview,
                        merge_cfg.cache_head);
        queue.init();

        const auto prof = ctx.region("shard_merge");
        // Shards in ascending order, slots in list order: candidates arrive
        // in a deterministic sequence, and the sentinel padding of ragged
        // lists is rejected by accepts() (nothing beats the sentinel).
        for (std::uint32_t s = 0; s < num_shards; ++s) {
          for (std::uint32_t j = 0; j < slot_cap; ++j) {
            const EntryLanes e = shard_views[s].load(ctx, act, thread, j);
            const LaneMask want = queue.accepts(act, e);
            if (want) queue.insert(want, e);
          }
        }
      });

  out.neighbors = extract_queues(fdist, fidx, num_queries, threads, red_cap, k,
                                 merge_cfg.queue_layout);
  return out;
}

}  // namespace gpuksel::kernels
