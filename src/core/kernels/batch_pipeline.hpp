// Batched multi-query selection over sharded distance tiles.
//
// The serving-path counterpart of pipeline.hpp: instead of materializing the
// full Q x N distance matrix and selecting over it, the reference set is
// sharded into fixed-size tiles and one fused kernel is launched per
// (tile, query-batch) pair.  Each kernel stages the tile's reference vectors
// through shared memory once per warp and scores them against every query
// lane in the batch before the next tile loads — the FAISS-style tile-reuse
// amortization — feeding candidates straight into the paper's per-lane
// queues (merge/insertion/heap + Buffered Search) to keep a per-tile partial
// top-k.  A final reduce kernel merges the per-tile partials per query with
// the two-pointer merge queue.
//
// Exactness: each tile's top-k is a superset of the tile's contribution to
// the global top-k (same divide-and-merge argument as
// select_k_smallest_chunked), tiles cover disjoint ascending index ranges,
// and all ordering is lexicographic (dist, index) — so the reduced result is
// bit-identical to a flat scan, and distances replicate gpu_distance_matrix's
// FP op order exactly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/kernels/select_kernels.hpp"
#include "core/neighbor.hpp"
#include "simt/device.hpp"

namespace gpuksel::kernels {

/// Shape of the batched pipeline: how the reference set is sharded and which
/// per-lane queue configuration scores each tile.
struct BatchConfig {
  /// References per shard.  Each shard gets its own fused
  /// distance+select launch; smaller tiles mean more launches with less
  /// work each (more partials to reduce), larger tiles approach the flat
  /// scan.  Must be >= 1.
  std::uint32_t tile_refs = 256;
  /// Per-lane queue configuration for the tile scan.  The reduce step always
  /// runs a merge queue with the two-pointer strategy regardless of
  /// `select.queue`: partials arrive sorted-descending and mostly below the
  /// threshold, the regime the sequential merge handles with uniform cost.
  SelectConfig select;
};

/// Result of one batched selection: per-query neighbors plus the metrics of
/// the two kernel classes (all tile launches summed, and the reduce launch).
struct BatchOutput {
  /// Per query: the min(k, n) nearest (dist, index), ascending.
  std::vector<std::vector<Neighbor>> neighbors;
  /// Sum over all "batch_tile_score" launches (fused distance + tile select).
  simt::KernelMetrics tile_metrics;
  /// The single "batch_reduce" launch merging per-tile partials.
  simt::KernelMetrics reduce_metrics;
  /// Number of shards the reference set was split into.
  std::uint32_t num_tiles = 0;
};

/// Number of shards a reference set of n rows splits into.
[[nodiscard]] constexpr std::uint32_t batch_num_tiles(
    std::uint32_t n, std::uint32_t tile_refs) noexcept {
  return tile_refs == 0 ? 0 : (n + tile_refs - 1) / tile_refs;
}

/// Runs the batched pipeline for one query batch against a device-resident
/// reference set (row-major n x dim, uploaded once by the caller so its
/// transfer cost amortizes over every batch served).  `queries_dim_major`
/// is the dim-major host buffer of the batch (see to_dim_major); k must be
/// >= 1, n and dim >= 1.  An empty batch (num_queries == 0) is valid and
/// launches nothing.
[[nodiscard]] BatchOutput batched_select(simt::Device& dev,
                                         const simt::DeviceBuffer<float>& refs,
                                         std::span<const float> queries_dim_major,
                                         std::uint32_t num_queries,
                                         std::uint32_t n, std::uint32_t dim,
                                         std::uint32_t k,
                                         const BatchConfig& cfg);

}  // namespace gpuksel::kernels
