// Distance-calculation kernel and the end-to-end k-NN pipeline.
//
// The paper's pipeline (§II-A) is: Euclidean distance matrix on the GPU (the
// method of Garcia et al. [3]), then k-selection.  The distance kernel here
// is thread-per-query with a shared-memory reference tile — the same blocking
// idea that makes [3] run near peak: the query vector stays in registers
// (statically indexed), each reference element is read once into shared
// memory per warp, and the distance matrix is written coalesced.
#pragma once

#include <cstdint>
#include <span>

#include "core/kernels/select_kernels.hpp"
#include "simt/device.hpp"

namespace gpuksel::kernels {

/// Output of the distance kernel: the device-resident Q x N matrix (in the
/// requested layout) plus its kernel metrics.
struct DistanceOutput {
  simt::DeviceBuffer<float> matrix;
  simt::KernelMetrics metrics;
};

/// Computes squared Euclidean distances between every (query, reference)
/// pair.  `queries` is dim-major (element (q,d) at d*num_queries + q) so lane
/// loads coalesce; `refs` is row-major (element (r,d) at r*dim + d) so shared
/// tiles copy contiguously.  Squared distances preserve the k-NN order and
/// match what [3]-style GEMM pipelines produce before the final sqrt.
[[nodiscard]] DistanceOutput gpu_distance_matrix(
    simt::Device& dev, std::span<const float> queries,
    std::span<const float> refs, std::uint32_t num_queries, std::uint32_t n,
    std::uint32_t dim, MatrixLayout out_layout = MatrixLayout::kReferenceMajor);

/// References per shared-memory tile in the distance kernel.
inline constexpr std::uint32_t kDistanceTileRefs = 8;

}  // namespace gpuksel::kernels
