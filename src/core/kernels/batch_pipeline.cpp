#include "core/kernels/batch_pipeline.hpp"

#include <algorithm>
#include <vector>

#include "core/kernels/computed_nan.hpp"
#include "core/kernels/pipeline.hpp"
#include "util/check.hpp"

namespace gpuksel::kernels {

BatchOutput batched_select(simt::Device& dev,
                           const simt::DeviceBuffer<float>& refs,
                           std::span<const float> queries_dim_major,
                           std::uint32_t num_queries, std::uint32_t n,
                           std::uint32_t dim, std::uint32_t k,
                           const BatchConfig& cfg) {
  GPUKSEL_CHECK(k >= 1, "batched_select needs k >= 1");
  GPUKSEL_CHECK(n >= 1, "batched_select needs a non-empty reference set");
  GPUKSEL_CHECK(dim >= 1, "batched_select needs dim >= 1");
  GPUKSEL_CHECK(cfg.tile_refs >= 1, "batched_select needs tile_refs >= 1");
  // >= rather than ==: a capacity-padded reference buffer (the mutable
  // index's pooled delta shard grows in place) is valid — the pipeline only
  // ever reads the first n * dim elements.
  GPUKSEL_CHECK(refs.size() >= std::size_t{n} * dim,
                "reference buffer too small");
  GPUKSEL_CHECK(queries_dim_major.size() == std::size_t{num_queries} * dim,
                "query buffer size mismatch");
  if (cfg.select.buffer == BufferMode::kFullSorted) {
    GPUKSEL_CHECK((cfg.select.buffer_size & (cfg.select.buffer_size - 1)) == 0,
                  "Local Sort needs a power-of-two buffer size");
  }

  BatchOutput out;
  out.num_tiles = batch_num_tiles(n, cfg.tile_refs);
  if (num_queries == 0) return out;  // an empty batch is served for free

  const SelectConfig& sel = cfg.select;
  const std::uint32_t threads = padded_threads(num_queries);
  const std::uint32_t num_warps = threads / simt::kWarpSize;
  const std::uint32_t num_tiles = out.num_tiles;
  // Per-tile partial queues keep the tile-scan queue's capacity; the reduce
  // queue is always a merge queue, whose capacity may round k up.
  const std::uint32_t tile_cap = queue_capacity(sel, k);
  SelectConfig reduce_cfg = sel;
  reduce_cfg.queue = QueueKind::kMerge;
  const std::uint32_t red_cap = queue_capacity(reduce_cfg, k);

  auto d_queries = dev.upload(queries_dim_major);
  // One slab of per-thread queues per tile: tile t's queues live at flat
  // offset t*tile_cap*threads, each viewed in sel.queue_layout order.
  auto pdist = dev.alloc<float>(std::size_t{num_tiles} * tile_cap * threads);
  auto pidx =
      dev.alloc<std::uint32_t>(std::size_t{num_tiles} * tile_cap * threads);
  auto fdist = dev.alloc<float>(std::size_t{red_cap} * threads);
  auto fidx = dev.alloc<std::uint32_t>(std::size_t{red_cap} * threads);
  auto dbuf = dev.alloc<float>(
      sel.buffer == BufferMode::kNone ? 0 : std::size_t{sel.buffer_size} * threads);
  auto ibuf = dev.alloc<std::uint32_t>(
      sel.buffer == BufferMode::kNone ? 0 : std::size_t{sel.buffer_size} * threads);
  const bool tile_two_pointer = sel.queue == QueueKind::kMerge &&
                                sel.merge_strategy == MergeStrategy::kTwoPointer;
  auto tdscr =
      dev.alloc<float>(tile_two_pointer ? std::size_t{tile_cap} * threads : 0);
  auto tiscr = dev.alloc<std::uint32_t>(
      tile_two_pointer ? std::size_t{tile_cap} * threads : 0);
  // The reduce merge is always two-pointer, so it always needs scratch.
  auto rdscr = dev.alloc<float>(std::size_t{red_cap} * threads);
  auto riscr = dev.alloc<std::uint32_t>(std::size_t{red_cap} * threads);

  const auto q_span = d_queries.cspan();
  const auto r_span = refs.cspan();
  // Views are built host-side before any launch: DeviceBuffer::span() is not
  // safe to call from parallel warp workers (it refreshes the shadow).
  std::vector<ThreadArrayView> tile_views;
  tile_views.reserve(num_tiles);
  {
    const auto pd = pdist.span();
    const auto pi = pidx.span();
    for (std::uint32_t t = 0; t < num_tiles; ++t) {
      const std::size_t ofs = std::size_t{t} * tile_cap * threads;
      const std::size_t len = std::size_t{tile_cap} * threads;
      tile_views.push_back(ThreadArrayView{pd.subspan(ofs, len),
                                           pi.subspan(ofs, len), threads,
                                           tile_cap, sel.queue_layout});
    }
  }
  const ThreadArrayView bview{dbuf.span(), ibuf.span(), threads,
                              sel.buffer_size, sel.queue_layout};
  const ThreadArrayView tsview{tdscr.span(), tiscr.span(), threads,
                               tile_two_pointer ? tile_cap : 0,
                               sel.queue_layout};
  const ThreadArrayView fview{fdist.span(), fidx.span(), threads, red_cap,
                              sel.queue_layout};
  const ThreadArrayView rsview{rdscr.span(), riscr.span(), threads, red_cap,
                               sel.queue_layout};

  // --- phase 1: one fused distance+select launch per tile -------------------
  for (std::uint32_t t = 0; t < num_tiles; ++t) {
    const std::uint32_t tile_begin = t * cfg.tile_refs;
    const std::uint32_t tile_end =
        std::min<std::uint32_t>(tile_begin + cfg.tile_refs, n);
    const ThreadArrayView qview = tile_views[t];
    out.tile_metrics += dev.launch(
        "batch_tile_score", num_warps, [&](WarpContext& ctx, std::uint32_t warp) {
          const std::uint32_t base = warp * simt::kWarpSize;
          const int live = static_cast<int>(
              std::min<std::uint32_t>(simt::kWarpSize, num_queries - base));
          const LaneMask act = simt::first_lanes(live);
          U32 thread;
          ctx.alu(act, thread, [&](int i) { return base + i; });

          // Query vector into registers, dim-major (coalesced) — the same
          // loads gpu_distance_matrix issues, once per tile launch instead
          // of once per query set: the reuse the batch amortizes.
          std::vector<F32> qreg(dim);
          for (std::uint32_t d = 0; d < dim; ++d) {
            U32 idx;
            ctx.alu(act, idx,
                    [&](int i) { return d * num_queries + thread[i]; });
            qreg[d] = ctx.load(act, q_span, idx);
          }

          simt::SharedArray<int> flag(ctx, 2, 0);
          WarpQueue queue(ctx, qview, thread, act, sel.queue, sel.merge_m,
                          sel.aligned_merge, &flag, sel.merge_strategy, tsview,
                          sel.cache_head);
          queue.init();
          BufferedInserter inserter(ctx, queue, act, bview, thread, sel.buffer,
                                    sel.buffer_size, &flag);

          simt::SharedArray<float> stage(ctx,
                                         std::size_t{kDistanceTileRefs} * dim);
          for (std::uint32_t r0 = tile_begin; r0 < tile_end;
               r0 += kDistanceTileRefs) {
            const std::uint32_t rt =
                std::min(kDistanceTileRefs, tile_end - r0);
            const std::uint32_t total = rt * dim;
            {
              // Cooperative stage copy under the full warp, exactly as in
              // gpu_distance_matrix: the staged refs are then scored by
              // every query lane of the batch before the next stage loads.
              const auto prof = ctx.region("tile_copy");
              for (std::uint32_t ofs = 0; ofs < total;
                   ofs += simt::kWarpSize) {
                const LaneMask in_range = ctx.pred(simt::kFullMask, [&](int i) {
                  return ofs + static_cast<std::uint32_t>(i) < total;
                });
                if (!in_range) break;
                U32 src;
                ctx.alu(in_range, src,
                        [&](int i) { return r0 * dim + ofs + i; });
                const F32 v = ctx.load(in_range, r_span, src);
                U32 dst;
                ctx.alu(in_range, dst, [&](int i) { return ofs + i; });
                stage.write(in_range, dst, v);
              }
            }
            const auto prof = ctx.region("batch_tile_score");
            for (std::uint32_t r = 0; r < rt; ++r) {
              // Identical FP op order to gpu_distance_matrix, so batched
              // distances are bit-identical to the scalar pipeline's.
              F32 acc = ctx.imm(act, 0.0f);
              for (std::uint32_t d = 0; d < dim; ++d) {
                const F32 ref_v =
                    stage.read_bcast(act, std::size_t{r} * dim + d);
                F32 diff;
                ctx.alu(act, diff,
                        [&](int i) { return qreg[d][i] - ref_v[i]; });
                ctx.alu(act, acc,
                        [&](int i) { return acc[i] + diff[i] * diff[i]; });
              }
              const std::uint32_t ref = r0 + r;
              apply_computed_nan_policy(ctx, act, acc, thread, ref);
              const EntryLanes cand{acc, ctx.imm(act, ref)};
              inserter.offer(act, cand);
            }
          }
          {
            const auto prof = ctx.region("batch_tile_score");
            inserter.finish();
          }
        });
  }

  // --- phase 2: merge the per-tile partials per query -----------------------
  out.reduce_metrics = dev.launch(
      "batch_reduce", num_warps, [&](WarpContext& ctx, std::uint32_t warp) {
        const std::uint32_t base = warp * simt::kWarpSize;
        const int live = static_cast<int>(
            std::min<std::uint32_t>(simt::kWarpSize, num_queries - base));
        const LaneMask act = simt::first_lanes(live);
        U32 thread;
        ctx.alu(act, thread, [&](int i) { return base + i; });

        simt::SharedArray<int> flag(ctx, 2, 0);
        WarpQueue queue(ctx, fview, thread, act, QueueKind::kMerge,
                        reduce_cfg.merge_m, reduce_cfg.aligned_merge, &flag,
                        MergeStrategy::kTwoPointer, rsview,
                        reduce_cfg.cache_head);
        queue.init();

        const auto prof = ctx.region("batch_reduce");
        // Tiles in ascending order, slots in queue order: candidates arrive
        // in a deterministic sequence, and sentinel slots of underfull
        // partials are rejected by accepts() (nothing beats the sentinel).
        for (std::uint32_t t = 0; t < num_tiles; ++t) {
          for (std::uint32_t j = 0; j < tile_cap; ++j) {
            const EntryLanes e = tile_views[t].load(ctx, act, thread, j);
            const LaneMask want = queue.accepts(act, e);
            if (want) queue.insert(want, e);
          }
        }
      });

  out.neighbors = extract_queues(fdist, fidx, num_queries, threads, red_cap, k,
                                 sel.queue_layout);
  return out;
}

}  // namespace gpuksel::kernels
