// Device-side data layout for per-thread queues, buffers and distance lists.
//
// Each GPU thread (lane) owns one query.  Per-thread arrays (queues,
// candidate buffers) default to the *interleaved* layout — element j of
// thread t lives at j*num_threads + t — exactly how CUDA lays out local
// memory, so that when a warp's lanes access the same element index in
// lockstep the 32 addresses are consecutive and coalesce into one or two
// 128-byte transactions.  Divergent indices (heap sift-down paths) scatter
// across segments and get charged accordingly; the layout is what turns
// "regular data structure" (paper §III-C) into measurable transactions.
// A naive row-major layout is also provided (see QueueLayout and
// bench/ablation_queue_opt).
//
// The distance matrix supports both orientations; reference-major is the
// coalesced one for thread-per-query kernels and is the default.  The
// query-major layout exists for the layout ablation.
#pragma once

#include <cstdint>

#include "simt/warp.hpp"
#include "simt/warp_ops.hpp"

namespace gpuksel::kernels {

using simt::DeviceSpan;
using simt::F32;
using simt::LaneMask;
using simt::U32;
using simt::WarpContext;

/// Orientation of the Q x N distance matrix in device memory.
enum class MatrixLayout {
  kReferenceMajor,  ///< element (q, r) at r*Q + q — warp accesses coalesce
  kQueryMajor,      ///< element (q, r) at q*N + r — warp accesses stride by N
};

/// Layout of per-thread arrays (queues, buffers) in device memory.
///
/// kRowMajor is what the paper's artifact uses: each thread's queue is a
/// contiguous row, so even lockstep same-slot accesses scatter across 32
/// segments.  kInterleaved is the CUDA local-memory layout (slot j of thread
/// t at j*threads + t): lockstep accesses coalesce.  The paper-faithful
/// default is kRowMajor; bench/ablation_queue_opt quantifies the difference.
enum class QueueLayout {
  kRowMajor,
  kInterleaved,
};

/// A (distance, index) pair held in warp registers.
struct EntryLanes {
  F32 dist;
  U32 index;
};

/// Lexicographic (dist, index) less-than across lanes: one warp instruction,
/// matching the scalar Neighbor ordering so results are bit-identical.
inline LaneMask entry_lt(WarpContext& ctx, LaneMask m, const EntryLanes& a,
                         const EntryLanes& b) {
  return ctx.lex_lt(m, a.dist, a.index, b.dist, b.index);
}

/// View of the Q x N distance matrix for a warp whose lanes hold `query`.
struct DistanceMatrixView {
  DeviceSpan<const float> data;
  std::uint32_t num_queries = 0;
  std::uint32_t n = 0;
  MatrixLayout layout = MatrixLayout::kReferenceMajor;

  /// Loads element `ref` of every active lane's query list.
  F32 load(WarpContext& ctx, LaneMask m, const U32& query,
           std::uint32_t ref) const {
    const U32 idx = layout == MatrixLayout::kReferenceMajor
                        ? ctx.add(m, query, ref * num_queries)
                        : ctx.mad(m, query, n, ref);
    return ctx.load(m, data, idx);
  }

  /// Loads with a *per-lane* reference index (Top-Down search).
  F32 load_gather(WarpContext& ctx, LaneMask m, const U32& query,
                  const U32& ref) const {
    const U32 idx = layout == MatrixLayout::kReferenceMajor
                        ? ctx.mad(m, ref, num_queries, query)
                        : ctx.mad(m, query, n, ref);
    return ctx.load(m, data, idx);
  }
};

/// View of a per-thread (dist, index) array: queues and buffers.
struct ThreadArrayView {
  DeviceSpan<float> dist;
  DeviceSpan<std::uint32_t> index;
  std::uint32_t stride = 0;    ///< total threads (Q padded to warp multiple)
  std::uint32_t length = 0;    ///< per-thread element count
  QueueLayout layout = QueueLayout::kInterleaved;

  /// Flat index of element `slot` (same for all lanes) of lane-owned arrays.
  U32 flat(WarpContext& ctx, LaneMask m, const U32& thread,
           std::uint32_t slot) const {
    return layout == QueueLayout::kInterleaved
               ? ctx.add(m, thread, slot * stride)
               : ctx.mad(m, thread, length, slot);
  }

  /// Flat index with per-lane slot (divergent access).
  U32 flat_gather(WarpContext& ctx, LaneMask m, const U32& thread,
                  const U32& slot) const {
    return layout == QueueLayout::kInterleaved
               ? ctx.mad(m, slot, stride, thread)
               : ctx.mad(m, thread, length, slot);
  }

  EntryLanes load(WarpContext& ctx, LaneMask m, const U32& thread,
                  std::uint32_t slot) const {
    const U32 idx = flat(ctx, m, thread, slot);
    EntryLanes e;
    ctx.load_pair(m, dist, index, idx, e.dist, e.index);
    return e;
  }

  EntryLanes load_gather(WarpContext& ctx, LaneMask m, const U32& thread,
                         const U32& slot) const {
    const U32 idx = flat_gather(ctx, m, thread, slot);
    EntryLanes e;
    ctx.load_pair(m, dist, index, idx, e.dist, e.index);
    return e;
  }

  void store(WarpContext& ctx, LaneMask m, const U32& thread,
             std::uint32_t slot, const EntryLanes& e) const {
    const U32 idx = flat(ctx, m, thread, slot);
    ctx.store_pair(m, dist, index, idx, e.dist, e.index);
  }

  void store_gather(WarpContext& ctx, LaneMask m, const U32& thread,
                    const U32& slot, const EntryLanes& e) const {
    const U32 idx = flat_gather(ctx, m, thread, slot);
    ctx.store_pair(m, dist, index, idx, e.dist, e.index);
  }

  /// Fills every slot of the active lanes with the empty sentinel.
  void fill_sentinel(WarpContext& ctx, LaneMask m, const U32& thread) const {
    for (std::uint32_t j = 0; j < length; ++j) {
      const U32 idx = flat(ctx, m, thread, j);
      ctx.store(m, dist, idx, simt::kFloatSentinel);
      ctx.store(m, index, idx, simt::kIndexSentinel);
    }
  }
};

}  // namespace gpuksel::kernels
