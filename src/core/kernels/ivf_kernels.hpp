// Device kernels for the IVF (inverted-file) pruned index.
//
// Three launches make up the IVF pipeline on top of the paper's selection
// machinery:
//
//  * "ivf_train" — the final assignment pass of index construction: one lane
//    per reference row scores the row against every centroid (staged through
//    shared memory, same FP op order as the batched distance kernel) and
//    keeps the lexicographically (dist, centroid) smallest.  The host-side
//    k-means++/Lloyd trainer produces the centroids; running the full-set
//    assignment on the device makes the dominant O(n * nlist * dim) cost of
//    training show up honestly in the profiler.
//
//  * "coarse_quantize" — queries vs centroids through the fused tile kernel
//    with a per-lane WarpQueue keeping the nprobe closest lists.  Structure
//    is batch_tile_score with the centroid set as the only tile.
//
//  * "list_scan" (+ the "ivf_reduce" merge) — the pruned scan.  The modeled
//    cost charges every warp instruction regardless of how many lanes are
//    masked on, so scanning each short list with a full query warp would
//    erase the pruning win.  Instead the (query, probe-rank) pairs are
//    compacted host-side into *tasks* grouped by list: warps never straddle
//    lists, each lane of a warp scans the same contiguous row block for its
//    own task's query, and one launch covers every non-empty task group.
//    Per-task partial queues live in one slab indexed by the task's
//    *compacted* slot (warp * 32 + lane), so every queue access in the scan
//    is one coalesced request; a slot map carries (q, probe-rank) -> slot
//    into the reduce, and tasks with no warp (empty lists, ragged probes,
//    padding) resolve to a shared spare slot whose sentinel fill the reduce
//    rejects for free.  The reduce merges the nprobe partials per query with
//    the two-pointer merge queue, exactly like batch_reduce.
//
// Exactness: candidates carry *original* reference row ids, distances
// replicate the batched kernel's FP op order, and all ordering is
// lexicographic (dist, index) — so with nprobe == nlist the lists partition
// the reference set, every row is scanned exactly once, and the result is
// bit-identical to batched_select over the original set.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/kernels/select_kernels.hpp"
#include "core/neighbor.hpp"
#include "simt/device.hpp"

namespace gpuksel::kernels {

/// Assigns every reference row to its lexicographically nearest centroid.
/// `refs_dim_major` is the n x dim reference set in dim-major order (element
/// (r, d) at d*n + r, the coalesced layout for row-per-lane kernels);
/// `centroids` is nlist x dim row-major, device-resident.  Returns one
/// centroid id per row.  Launch name / profiler region: "ivf_train".
[[nodiscard]] std::vector<std::uint32_t> ivf_assign(
    simt::Device& dev, const simt::DeviceBuffer<float>& refs_dim_major,
    const simt::DeviceBuffer<float>& centroids, std::uint32_t n,
    std::uint32_t dim, std::uint32_t nlist, simt::KernelMetrics* metrics);

/// Selects the `nprobe` closest centroids per query with the fused tile
/// kernel + WarpQueue.  `queries_dim_major` is the query batch in dim-major
/// order; `centroids` is nlist x dim row-major, device-resident.  Returns
/// per query the nprobe list ids ascending by (distance, list id).
/// Launch name / profiler region: "coarse_quantize".
[[nodiscard]] std::vector<std::vector<std::uint32_t>> ivf_coarse_quantize(
    simt::Device& dev, const simt::DeviceBuffer<float>& centroids,
    std::span<const float> queries_dim_major, std::uint32_t num_queries,
    std::uint32_t nlist, std::uint32_t dim, std::uint32_t nprobe,
    const SelectConfig& cfg, simt::KernelMetrics* metrics);

/// Inverted-list geometry of a device-resident reference set reordered so
/// each list is one contiguous row block.
struct IvfListsView {
  /// list l's rows occupy sorted positions [list_begin[l], list_begin[l+1]).
  std::span<const std::uint32_t> list_begin;  ///< nlist + 1 offsets
  /// Original reference row id of each sorted position (the candidate ids
  /// the kernels emit).
  std::span<const std::uint32_t> row_ids;
};

/// Output of the pruned scan: per-query neighbors (original row ids) plus
/// the metrics of the scan and reduce launches.
struct IvfScanOutput {
  std::vector<std::vector<Neighbor>> neighbors;
  simt::KernelMetrics scan_metrics;    ///< the "list_scan" launch
  simt::KernelMetrics reduce_metrics;  ///< the "ivf_reduce" launch
  /// Task-compaction shape (observability): warps launched and reference
  /// rows actually scanned (sum of probed list sizes over all tasks).
  std::uint32_t scan_warps = 0;
  std::uint64_t scanned_rows = 0;
};

/// Scans each query's probed lists (`probes[q]` = nprobe list ids from
/// ivf_coarse_quantize) against the reordered reference set
/// (`sorted_refs` = n x dim row-major in list order) and reduces the
/// per-task partial top-k to min(k, scanned rows) neighbors per query,
/// ascending by (dist, original row id).  Probe lists may be ragged (NaN
/// remapping can shrink a query's selection); an empty probes[q] yields an
/// empty result for that query.
[[nodiscard]] IvfScanOutput ivf_list_scan(
    simt::Device& dev, const simt::DeviceBuffer<float>& sorted_refs,
    const IvfListsView& lists, std::span<const float> queries_dim_major,
    std::uint32_t num_queries, std::uint32_t dim,
    const std::vector<std::vector<std::uint32_t>>& probes, std::uint32_t k,
    const SelectConfig& cfg);

}  // namespace gpuksel::kernels
