#include "core/kernels/pipeline.hpp"

#include <algorithm>
#include <vector>

#include "util/check.hpp"

namespace gpuksel::kernels {

DistanceOutput gpu_distance_matrix(simt::Device& dev,
                                   std::span<const float> queries,
                                   std::span<const float> refs,
                                   std::uint32_t num_queries, std::uint32_t n,
                                   std::uint32_t dim,
                                   MatrixLayout out_layout) {
  GPUKSEL_CHECK(queries.size() == std::size_t{num_queries} * dim,
                "query buffer size mismatch");
  GPUKSEL_CHECK(refs.size() == std::size_t{n} * dim,
                "reference buffer size mismatch");

  auto d_queries = dev.upload(queries);
  auto d_refs = dev.upload(refs);
  DistanceOutput out{dev.alloc<float>(std::size_t{num_queries} * n), {}};

  const std::uint32_t threads = padded_threads(num_queries);
  const std::uint32_t num_warps = threads / simt::kWarpSize;
  const auto q_span = d_queries.cspan();
  const auto r_span = d_refs.cspan();
  auto m_span = out.matrix.span();

  out.metrics = dev.launch("gpu_distance_matrix", num_warps,
                           [&](WarpContext& ctx, std::uint32_t warp) {
    const std::uint32_t base = warp * simt::kWarpSize;
    const int live = static_cast<int>(
        std::min<std::uint32_t>(simt::kWarpSize, num_queries - base));
    const LaneMask act = simt::first_lanes(live);
    U32 thread;
    ctx.alu(act, thread, [&](int i) { return base + i; });

    // Query vector into registers: statically-indexed, so a real compiler
    // keeps it in the register file; loads coalesce (dim-major layout).
    std::vector<F32> qreg(dim);
    for (std::uint32_t d = 0; d < dim; ++d) {
      U32 idx;
      ctx.alu(act, idx, [&](int i) { return d * num_queries + thread[i]; });
      qreg[d] = ctx.load(act, q_span, idx);
    }

    simt::SharedArray<float> tile(ctx, std::size_t{kDistanceTileRefs} * dim);
    for (std::uint32_t r0 = 0; r0 < n; r0 += kDistanceTileRefs) {
      const std::uint32_t rt = std::min(kDistanceTileRefs, n - r0);
      // Cooperative tile copy: all 32 lanes stream rt*dim contiguous floats
      // (the copy uses the full warp even when some lanes own no query —
      // exactly what a CUDA block-level copy does).
      const std::uint32_t total = rt * dim;
      {
        const auto prof = ctx.region("tile_copy");
        for (std::uint32_t ofs = 0; ofs < total; ofs += simt::kWarpSize) {
          const LaneMask in_range =
              ctx.pred(simt::kFullMask, [&](int i) {
                return ofs + static_cast<std::uint32_t>(i) < total;
              });
          if (!in_range) break;
          U32 src;
          ctx.alu(in_range, src, [&](int i) { return r0 * dim + ofs + i; });
          const F32 v = ctx.load(in_range, r_span, src);
          U32 dst;
          ctx.alu(in_range, dst, [&](int i) { return ofs + i; });
          tile.write(in_range, dst, v);
        }
      }
      // Accumulate squared distances against the tile.
      const auto prof = ctx.region("distance_tile");
      for (std::uint32_t r = 0; r < rt; ++r) {
        F32 acc = ctx.imm(act, 0.0f);
        for (std::uint32_t d = 0; d < dim; ++d) {
          const F32 ref_v = tile.read_bcast(act, std::size_t{r} * dim + d);
          // diff = q - ref; acc = fma(diff, diff, acc): two instructions.
          F32 diff;
          ctx.alu(act, diff, [&](int i) { return qreg[d][i] - ref_v[i]; });
          ctx.alu(act, acc, [&](int i) { return acc[i] + diff[i] * diff[i]; });
        }
        const std::uint32_t ref = r0 + r;
        U32 idx;
        if (out_layout == MatrixLayout::kReferenceMajor) {
          ctx.alu(act, idx, [&](int i) { return ref * num_queries + thread[i]; });
        } else {
          ctx.alu(act, idx, [&](int i) { return thread[i] * n + ref; });
        }
        ctx.store(act, m_span, idx, acc);
      }
    }
  });

  return out;
}

}  // namespace gpuksel::kernels
