#include "core/kernels/select_kernels.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace gpuksel::kernels {

std::string_view queue_kind_name(QueueKind kind) noexcept {
  switch (kind) {
    case QueueKind::kInsertion: return "insertion";
    case QueueKind::kHeap: return "heap";
    case QueueKind::kMerge: return "merge";
  }
  return "unknown";
}

std::string_view buffer_mode_name(BufferMode mode) noexcept {
  switch (mode) {
    case BufferMode::kNone: return "none";
    case BufferMode::kBufferOnly: return "buffer";
    case BufferMode::kFull: return "full";
    case BufferMode::kFullSorted: return "full+sorted";
  }
  return "unknown";
}

std::uint32_t queue_capacity(const SelectConfig& cfg, std::uint32_t k) noexcept {
  return cfg.queue == QueueKind::kMerge ? merge_capacity(k, cfg.merge_m) : k;
}

std::vector<std::vector<Neighbor>> extract_queues(
    const simt::DeviceBuffer<float>& dist,
    const simt::DeviceBuffer<std::uint32_t>& index, std::uint32_t num_queries,
    std::uint32_t stride, std::uint32_t capacity, std::uint32_t k,
    QueueLayout layout) {
  std::vector<std::vector<Neighbor>> out(num_queries);
  const auto& d = dist.host();
  const auto& id = index.host();
  for (std::uint32_t q = 0; q < num_queries; ++q) {
    auto& nbrs = out[q];
    nbrs.reserve(capacity);
    for (std::uint32_t j = 0; j < capacity; ++j) {
      const std::size_t flat = layout == QueueLayout::kInterleaved
                                   ? std::size_t{j} * stride + q
                                   : std::size_t{q} * capacity + j;
      const Neighbor n{d[flat], id[flat]};
      if (!is_empty_slot(n)) nbrs.push_back(n);
    }
    std::sort(nbrs.begin(), nbrs.end());
    if (nbrs.size() > k) nbrs.resize(k);
  }
  return out;
}

// --- BufferedInserter ------------------------------------------------------

BufferedInserter::BufferedInserter(WarpContext& ctx, WarpQueue& queue,
                                   LaneMask kernel_mask, ThreadArrayView buffer,
                                   U32 thread, BufferMode mode,
                                   std::uint32_t buffer_size,
                                   simt::SharedArray<int>* flag)
    : ctx_(ctx),
      queue_(queue),
      kernel_mask_(kernel_mask),
      buffer_(buffer),
      thread_(thread),
      mode_(mode),
      buffer_size_(buffer_size),
      flag_(flag),
      cur_(U32::filled(0u)) {
  if (mode_ == BufferMode::kFullSorted) {
    // Local Sort reads the whole buffer, so stale slots must stay sentinels.
    buffer_.fill_sentinel(ctx_, kernel_mask_, thread_);
  }
  if (flag_ != nullptr &&
      (mode_ == BufferMode::kFull || mode_ == BufferMode::kFullSorted)) {
    flag_->write_bcast(kernel_mask_, kFlagSlot, 0);
  }
}

void BufferedInserter::offer(LaneMask m, const EntryLanes& cand) {
  const LaneMask want = queue_.accepts(m, cand);
  if (mode_ == BufferMode::kNone) {
    if (want) queue_.insert(want, cand);
    return;
  }
  // Stage accepted candidates into the per-thread buffer (Algorithm 3 l.4-7).
  if (want) {
    buffer_.store_gather(ctx_, want, thread_, cur_, cand);
    cur_ = ctx_.add(want, cur_, 1u);
  }
  const LaneMask full =
      ctx_.pred(m, [&](int i) { return cur_[i] == buffer_size_; });
  if (mode_ == BufferMode::kBufferOnly) {
    // Without intra-warp communication each thread drains alone — the drain
    // runs under a (usually sparse) mask.
    if (full) drain(full);
    return;
  }
  // Intra-Warp Communication (Algorithm 3 l.8-10): full lanes raise the
  // shared flag; everyone reads it each round and drains together.
  if (full) flag_->write_bcast(full, kFlagSlot, 1);
  const auto f = flag_->read_bcast(m, kFlagSlot);
  if (f[0] != 0) {
    const LaneMask staged =
        ctx_.pred(m, [&](int i) { return cur_[i] > 0; });
    drain(staged);
    flag_->write_bcast(m, kFlagSlot, 0);
  }
}

void BufferedInserter::finish() {
  if (mode_ == BufferMode::kNone) return;
  const LaneMask staged =
      ctx_.pred(kernel_mask_, [&](int i) { return cur_[i] > 0; });
  if (staged) drain(staged);
}

void BufferedInserter::drain(LaneMask lanes) {
  const auto prof = ctx_.region("buffer_flush");
  if (mode_ == BufferMode::kFullSorted) local_sort(lanes);
  for (std::uint32_t j = 0; j < buffer_size_; ++j) {
    const LaneMask valid =
        ctx_.pred(lanes, [&](int i) { return j < cur_[i]; });
    if (!valid) continue;
    const EntryLanes e = buffer_.load(ctx_, valid, thread_, j);
    const LaneMask want = queue_.accepts(valid, e);
    if (want) queue_.insert(want, e);
    if (mode_ == BufferMode::kFullSorted) {
      // Restore the sentinel so the next Local Sort sees a clean tail.
      ctx_.store(valid, buffer_.dist, buffer_.flat(ctx_, valid, thread_, j),
                 simt::kFloatSentinel);
      ctx_.store(valid, buffer_.index, buffer_.flat(ctx_, valid, thread_, j),
                 simt::kIndexSentinel);
    }
  }
  ctx_.mov(lanes, cur_, 0u);
}

void BufferedInserter::local_sort(LaneMask lanes) {
  // Per-thread ascending bitonic sort of the buffer, run in lockstep: sort
  // descending with the fixed network, then reverse.  Matches the scalar
  // buffered_select() drain order bit-for-bit.
  const auto prof = ctx_.region("local_sort");
  const std::uint32_t n = buffer_size_;
  auto cmpex_desc = [&](std::uint32_t i, std::uint32_t j) {
    const EntryLanes a = buffer_.load(ctx_, lanes, thread_, i);
    const EntryLanes b = buffer_.load(ctx_, lanes, thread_, j);
    const LaneMask sw = entry_lt(ctx_, lanes, a, b);
    const EntryLanes hi{ctx_.select(lanes, sw, b.dist, a.dist),
                        ctx_.select(lanes, sw, b.index, a.index)};
    const EntryLanes lo{ctx_.select(lanes, sw, a.dist, b.dist),
                        ctx_.select(lanes, sw, a.index, b.index)};
    buffer_.store(ctx_, lanes, thread_, i, hi);
    buffer_.store(ctx_, lanes, thread_, j, lo);
  };
  // Recursive bitonic sort, iterative form (sizes double, then merge).
  for (std::uint32_t size = 2; size <= n; size *= 2) {
    // Reverse-bitonic merge each `size` block (both halves sorted desc).
    for (std::uint32_t base = 0; base < n; base += size) {
      const std::uint32_t half = size / 2;
      for (std::uint32_t i = 0; i < half; ++i) {
        cmpex_desc(base + i, base + size - 1 - i);
      }
      for (std::uint32_t dist = half / 2; dist >= 1; dist /= 2) {
        for (std::uint32_t i = 0; i < size; ++i) {
          if ((i & dist) == 0) cmpex_desc(base + i, base + i + dist);
        }
      }
    }
  }
  // Reverse into ascending order.
  for (std::uint32_t i = 0; 2 * i + 1 < n; ++i) {
    const std::uint32_t j = n - 1 - i;
    const EntryLanes a = buffer_.load(ctx_, lanes, thread_, i);
    const EntryLanes b = buffer_.load(ctx_, lanes, thread_, j);
    buffer_.store(ctx_, lanes, thread_, i, b);
    buffer_.store(ctx_, lanes, thread_, j, a);
  }
}

// --- flat scan kernel --------------------------------------------------------

SelectOutput flat_select(simt::Device& dev, std::span<const float> distances,
                         std::uint32_t num_queries, std::uint32_t n,
                         std::uint32_t k, const SelectConfig& cfg) {
  GPUKSEL_CHECK(k >= 1, "flat_select needs k >= 1");
  GPUKSEL_CHECK(num_queries >= 1, "flat_select needs at least one query");
  GPUKSEL_CHECK(distances.size() == std::size_t{num_queries} * n,
                "distance matrix size mismatch");
  if (cfg.buffer == BufferMode::kFullSorted) {
    GPUKSEL_CHECK((cfg.buffer_size & (cfg.buffer_size - 1)) == 0,
                  "Local Sort needs a power-of-two buffer size");
  }

  const std::uint32_t threads = padded_threads(num_queries);
  const std::uint32_t capacity = queue_capacity(cfg, k);
  auto dlist = dev.upload(distances);
  auto dqueue = dev.alloc<float>(std::size_t{capacity} * threads);
  auto iqueue = dev.alloc<std::uint32_t>(std::size_t{capacity} * threads);
  auto dbuf = dev.alloc<float>(
      cfg.buffer == BufferMode::kNone ? 0 : std::size_t{cfg.buffer_size} * threads);
  auto ibuf = dev.alloc<std::uint32_t>(
      cfg.buffer == BufferMode::kNone ? 0 : std::size_t{cfg.buffer_size} * threads);
  const bool two_pointer = cfg.queue == QueueKind::kMerge &&
                           cfg.merge_strategy == MergeStrategy::kTwoPointer;
  auto dscratch =
      dev.alloc<float>(two_pointer ? std::size_t{capacity} * threads : 0);
  auto iscratch = dev.alloc<std::uint32_t>(
      two_pointer ? std::size_t{capacity} * threads : 0);

  const DistanceMatrixView dm{dlist.cspan(), num_queries, n, cfg.layout};
  const ThreadArrayView qview{dqueue.span(), iqueue.span(), threads, capacity,
                              cfg.queue_layout};
  const ThreadArrayView bview{dbuf.span(), ibuf.span(), threads,
                              cfg.buffer_size, cfg.queue_layout};
  const ThreadArrayView sview{dscratch.span(), iscratch.span(), threads,
                              two_pointer ? capacity : 0, cfg.queue_layout};

  const std::uint32_t num_warps = threads / simt::kWarpSize;
  SelectOutput out;
  out.metrics = dev.launch("flat_select", num_warps,
                           [&](WarpContext& ctx, std::uint32_t warp) {
    const std::uint32_t base = warp * simt::kWarpSize;
    const int live = static_cast<int>(
        std::min<std::uint32_t>(simt::kWarpSize, num_queries - base));
    const LaneMask act = simt::first_lanes(live);
    U32 thread;
    ctx.alu(act, thread, [&](int i) { return base + i; });

    // Slot 0: aligned-merge flag; slot 1: buffer-full flag (Algorithm 3).
    simt::SharedArray<int> flag(ctx, 2, 0);
    WarpQueue queue(ctx, qview, thread, act, cfg.queue, cfg.merge_m,
                    cfg.aligned_merge, &flag, cfg.merge_strategy, sview,
                    cfg.cache_head);
    queue.init();
    BufferedInserter inserter(ctx, queue, act, bview, thread, cfg.buffer,
                              cfg.buffer_size, &flag);

    {
      const auto prof = ctx.region("scan");
      for (std::uint32_t i = 0; i < n; ++i) {
        const F32 d = dm.load(ctx, act, thread, i);
        const EntryLanes cand{d, ctx.imm(act, i)};
        inserter.offer(act, cand);
      }
      inserter.finish();
    }
  });

  out.neighbors = extract_queues(dqueue, iqueue, num_queries, threads,
                                 capacity, k, cfg.queue_layout);
  return out;
}

}  // namespace gpuksel::kernels
