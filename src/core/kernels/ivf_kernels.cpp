#include "core/kernels/ivf_kernels.hpp"

#include <algorithm>
#include <vector>

#include "core/kernels/computed_nan.hpp"
#include "core/kernels/pipeline.hpp"
#include "util/check.hpp"

namespace gpuksel::kernels {

std::vector<std::uint32_t> ivf_assign(
    simt::Device& dev, const simt::DeviceBuffer<float>& refs_dim_major,
    const simt::DeviceBuffer<float>& centroids, std::uint32_t n,
    std::uint32_t dim, std::uint32_t nlist, simt::KernelMetrics* metrics) {
  GPUKSEL_CHECK(n >= 1 && dim >= 1 && nlist >= 1,
                "ivf_assign needs n, dim, nlist >= 1");
  GPUKSEL_CHECK(refs_dim_major.size() == std::size_t{n} * dim,
                "reference buffer size mismatch");
  GPUKSEL_CHECK(centroids.size() == std::size_t{nlist} * dim,
                "centroid buffer size mismatch");

  const std::uint32_t threads = padded_threads(n);
  const std::uint32_t num_warps = threads / simt::kWarpSize;
  auto d_assign = dev.alloc<std::uint32_t>(n);
  const auto r_span = refs_dim_major.cspan();
  const auto c_span = centroids.cspan();
  const auto a_span = d_assign.span();

  const simt::KernelMetrics launch_metrics = dev.launch(
      "ivf_train", num_warps, [&](WarpContext& ctx, std::uint32_t warp) {
        const auto whole = ctx.region("ivf_train");
        const std::uint32_t base = warp * simt::kWarpSize;
        const int live = static_cast<int>(
            std::min<std::uint32_t>(simt::kWarpSize, n - base));
        const LaneMask act = simt::first_lanes(live);
        U32 thread;
        ctx.alu(act, thread, [&](int i) { return base + i; });

        // Row vector into registers, dim-major (coalesced), exactly as the
        // batched kernel loads its query lanes.
        std::vector<F32> row(dim);
        for (std::uint32_t d = 0; d < dim; ++d) {
          U32 idx;
          ctx.alu(act, idx, [&](int i) { return d * n + thread[i]; });
          row[d] = ctx.load(act, r_span, idx);
        }

        // Running lexicographic minimum over all centroids; k = 1 needs no
        // queue structure.
        F32 best_d = ctx.imm(act, simt::kFloatSentinel);
        U32 best_i = ctx.imm(act, simt::kIndexSentinel);
        simt::SharedArray<float> stage(ctx,
                                       std::size_t{kDistanceTileRefs} * dim);
        for (std::uint32_t c0 = 0; c0 < nlist; c0 += kDistanceTileRefs) {
          const std::uint32_t ct = std::min(kDistanceTileRefs, nlist - c0);
          const std::uint32_t total = ct * dim;
          {
            const auto prof = ctx.region("tile_copy");
            for (std::uint32_t ofs = 0; ofs < total; ofs += simt::kWarpSize) {
              const LaneMask in_range = ctx.pred(simt::kFullMask, [&](int i) {
                return ofs + static_cast<std::uint32_t>(i) < total;
              });
              if (!in_range) break;
              U32 src;
              ctx.alu(in_range, src, [&](int i) { return c0 * dim + ofs + i; });
              const F32 v = ctx.load(in_range, c_span, src);
              U32 dst;
              ctx.alu(in_range, dst, [&](int i) { return ofs + i; });
              stage.write(in_range, dst, v);
            }
          }
          for (std::uint32_t c = 0; c < ct; ++c) {
            // Same FP op order as the batched distance kernel.
            F32 acc = ctx.imm(act, 0.0f);
            for (std::uint32_t d = 0; d < dim; ++d) {
              const F32 cen_v = stage.read_bcast(act, std::size_t{c} * dim + d);
              F32 diff;
              ctx.alu(act, diff, [&](int i) { return row[d][i] - cen_v[i]; });
              ctx.alu(act, acc, [&](int i) { return acc[i] + diff[i] * diff[i]; });
            }
            const std::uint32_t cid = c0 + c;
            apply_computed_nan_policy(ctx, act, acc, thread, cid);
            const U32 cand = ctx.imm(act, cid);
            const LaneMask better = ctx.lex_lt(act, acc, cand, best_d, best_i);
            best_d = ctx.select(act, better, acc, best_d);
            best_i = ctx.select(act, better, cand, best_i);
          }
        }
        ctx.store(act, a_span, thread, best_i);
      });
  if (metrics != nullptr) *metrics += launch_metrics;
  return dev.download(d_assign);
}

std::vector<std::vector<std::uint32_t>> ivf_coarse_quantize(
    simt::Device& dev, const simt::DeviceBuffer<float>& centroids,
    std::span<const float> queries_dim_major, std::uint32_t num_queries,
    std::uint32_t nlist, std::uint32_t dim, std::uint32_t nprobe,
    const SelectConfig& cfg, simt::KernelMetrics* metrics) {
  GPUKSEL_CHECK(nlist >= 1 && dim >= 1, "ivf_coarse_quantize needs data");
  GPUKSEL_CHECK(nprobe >= 1 && nprobe <= nlist,
                "ivf_coarse_quantize needs nprobe in [1, nlist]");
  GPUKSEL_CHECK(centroids.size() == std::size_t{nlist} * dim,
                "centroid buffer size mismatch");
  GPUKSEL_CHECK(queries_dim_major.size() == std::size_t{num_queries} * dim,
                "query buffer size mismatch");
  if (num_queries == 0) return {};

  const std::uint32_t threads = padded_threads(num_queries);
  const std::uint32_t num_warps = threads / simt::kWarpSize;
  const std::uint32_t cap = queue_capacity(cfg, nprobe);
  const bool two_pointer = cfg.queue == QueueKind::kMerge &&
                           cfg.merge_strategy == MergeStrategy::kTwoPointer;

  auto d_queries = dev.upload(queries_dim_major);
  auto qdist = dev.alloc<float>(std::size_t{cap} * threads);
  auto qidx = dev.alloc<std::uint32_t>(std::size_t{cap} * threads);
  auto dbuf = dev.alloc<float>(
      cfg.buffer == BufferMode::kNone ? 0 : std::size_t{cfg.buffer_size} * threads);
  auto ibuf = dev.alloc<std::uint32_t>(
      cfg.buffer == BufferMode::kNone ? 0 : std::size_t{cfg.buffer_size} * threads);
  auto dscr = dev.alloc<float>(two_pointer ? std::size_t{cap} * threads : 0);
  auto iscr = dev.alloc<std::uint32_t>(two_pointer ? std::size_t{cap} * threads : 0);

  const auto q_span = d_queries.cspan();
  const auto c_span = centroids.cspan();
  const ThreadArrayView qview{qdist.span(), qidx.span(), threads, cap,
                              cfg.queue_layout};
  const ThreadArrayView bview{dbuf.span(), ibuf.span(), threads,
                              cfg.buffer_size, cfg.queue_layout};
  const ThreadArrayView sview{dscr.span(), iscr.span(), threads,
                              two_pointer ? cap : 0, cfg.queue_layout};

  const simt::KernelMetrics launch_metrics = dev.launch(
      "coarse_quantize", num_warps, [&](WarpContext& ctx, std::uint32_t warp) {
        const auto whole = ctx.region("coarse_quantize");
        const std::uint32_t base = warp * simt::kWarpSize;
        const int live = static_cast<int>(
            std::min<std::uint32_t>(simt::kWarpSize, num_queries - base));
        const LaneMask act = simt::first_lanes(live);
        U32 thread;
        ctx.alu(act, thread, [&](int i) { return base + i; });

        std::vector<F32> qreg(dim);
        for (std::uint32_t d = 0; d < dim; ++d) {
          U32 idx;
          ctx.alu(act, idx, [&](int i) { return d * num_queries + thread[i]; });
          qreg[d] = ctx.load(act, q_span, idx);
        }

        simt::SharedArray<int> flag(ctx, 2, 0);
        WarpQueue queue(ctx, qview, thread, act, cfg.queue, cfg.merge_m,
                        cfg.aligned_merge, &flag, cfg.merge_strategy, sview,
                        cfg.cache_head);
        queue.init();
        BufferedInserter inserter(ctx, queue, act, bview, thread, cfg.buffer,
                                  cfg.buffer_size, &flag);

        simt::SharedArray<float> stage(ctx,
                                       std::size_t{kDistanceTileRefs} * dim);
        for (std::uint32_t c0 = 0; c0 < nlist; c0 += kDistanceTileRefs) {
          const std::uint32_t ct = std::min(kDistanceTileRefs, nlist - c0);
          const std::uint32_t total = ct * dim;
          {
            const auto prof = ctx.region("tile_copy");
            for (std::uint32_t ofs = 0; ofs < total; ofs += simt::kWarpSize) {
              const LaneMask in_range = ctx.pred(simt::kFullMask, [&](int i) {
                return ofs + static_cast<std::uint32_t>(i) < total;
              });
              if (!in_range) break;
              U32 src;
              ctx.alu(in_range, src, [&](int i) { return c0 * dim + ofs + i; });
              const F32 v = ctx.load(in_range, c_span, src);
              U32 dst;
              ctx.alu(in_range, dst, [&](int i) { return ofs + i; });
              stage.write(in_range, dst, v);
            }
          }
          for (std::uint32_t c = 0; c < ct; ++c) {
            F32 acc = ctx.imm(act, 0.0f);
            for (std::uint32_t d = 0; d < dim; ++d) {
              const F32 cen_v = stage.read_bcast(act, std::size_t{c} * dim + d);
              F32 diff;
              ctx.alu(act, diff, [&](int i) { return qreg[d][i] - cen_v[i]; });
              ctx.alu(act, acc, [&](int i) { return acc[i] + diff[i] * diff[i]; });
            }
            const std::uint32_t cid = c0 + c;
            apply_computed_nan_policy(ctx, act, acc, thread, cid);
            const EntryLanes cand{acc, ctx.imm(act, cid)};
            inserter.offer(act, cand);
          }
        }
        inserter.finish();
      });
  if (metrics != nullptr) *metrics += launch_metrics;

  const std::vector<std::vector<Neighbor>> nearest = extract_queues(
      qdist, qidx, num_queries, threads, cap, nprobe, cfg.queue_layout);
  std::vector<std::vector<std::uint32_t>> probes(num_queries);
  for (std::uint32_t q = 0; q < num_queries; ++q) {
    probes[q].reserve(nearest[q].size());
    for (const Neighbor& nb : nearest[q]) probes[q].push_back(nb.index);
  }
  return probes;
}

IvfScanOutput ivf_list_scan(simt::Device& dev,
                            const simt::DeviceBuffer<float>& sorted_refs,
                            const IvfListsView& lists,
                            std::span<const float> queries_dim_major,
                            std::uint32_t num_queries, std::uint32_t dim,
                            const std::vector<std::vector<std::uint32_t>>& probes,
                            std::uint32_t k, const SelectConfig& cfg) {
  GPUKSEL_CHECK(k >= 1 && dim >= 1, "ivf_list_scan needs k, dim >= 1");
  GPUKSEL_CHECK(lists.list_begin.size() >= 2,
                "ivf_list_scan needs at least one list");
  const auto nlist =
      static_cast<std::uint32_t>(lists.list_begin.size() - 1);
  const std::uint32_t n = lists.list_begin[nlist];
  GPUKSEL_CHECK(sorted_refs.size() == std::size_t{n} * dim,
                "sorted reference buffer size mismatch");
  GPUKSEL_CHECK(lists.row_ids.size() == n, "row id table size mismatch");
  GPUKSEL_CHECK(probes.size() == num_queries,
                "one probe list per query required");

  IvfScanOutput out;
  if (num_queries == 0) return out;
  // Probe lists may be ragged: under NanPolicy::kSortLast a query whose
  // centroid distances all remap to +inf selects fewer than nprobe lists
  // (possibly zero).  The task id space is sized by the widest query; absent
  // (q, j) pairs simply have no task, and their slab slots stay sentinel.
  std::size_t nprobe_max = 0;
  for (const auto& p : probes) nprobe_max = std::max(nprobe_max, p.size());
  const auto nprobe = static_cast<std::uint32_t>(nprobe_max);
  if (nprobe == 0) {
    out.neighbors.assign(num_queries, {});
    return out;
  }

  // --- host-side task compaction -------------------------------------------
  // Task t = (q, j) scans list probes[q][j].  Tasks are grouped by list
  // (queries ascending within a list) and padded to whole warps, so one
  // warp's lanes share one contiguous row block — no lane of any warp is
  // masked off for list-length reasons, which is what keeps the modeled cost
  // proportional to the rows actually scanned.  A task's queue lives at its
  // *compacted* slot (warp * 32 + lane): warp-consecutive slots keep every
  // queue access in the scan coalesced (thread = raw q*nprobe+j ids would
  // scatter each request across 32 cache lines).  slot_of_task maps the raw
  // id back to the slot for the reduce; absent tasks (ragged probes, empty
  // lists, warp padding) map to one shared spare slot that keeps its
  // sentinel fill and is rejected by the reduce for free.
  std::vector<std::vector<std::uint32_t>> tasks_by_list(nlist);
  for (std::uint32_t q = 0; q < num_queries; ++q) {
    GPUKSEL_CHECK(probes[q].size() <= nprobe, "probe list wider than nprobe");
    for (std::uint32_t j = 0; j < probes[q].size(); ++j) {
      const std::uint32_t l = probes[q][j];
      GPUKSEL_CHECK(l < nlist, "probe list id out of range");
      tasks_by_list[l].push_back(q * nprobe + j);
    }
  }
  std::vector<std::uint32_t> warp_list;
  std::vector<std::uint32_t> task_slots;
  for (std::uint32_t l = 0; l < nlist; ++l) {
    const std::uint32_t rows = lists.list_begin[l + 1] - lists.list_begin[l];
    if (rows == 0 || tasks_by_list[l].empty()) continue;
    const auto& tasks = tasks_by_list[l];
    out.scanned_rows += std::uint64_t{rows} * tasks.size();
    for (std::size_t t0 = 0; t0 < tasks.size(); t0 += simt::kWarpSize) {
      warp_list.push_back(l);
      for (std::size_t i = 0; i < simt::kWarpSize; ++i) {
        task_slots.push_back(t0 + i < tasks.size() ? tasks[t0 + i]
                                                   : simt::kIndexSentinel);
      }
    }
  }
  out.scan_warps = static_cast<std::uint32_t>(warp_list.size());
  const std::uint32_t spare_slot = out.scan_warps * simt::kWarpSize;
  const std::uint32_t total_slots = spare_slot + 1;
  std::vector<std::uint32_t> slot_of_task(
      std::size_t{num_queries} * nprobe, spare_slot);
  for (std::uint32_t s = 0; s < spare_slot; ++s) {
    if (task_slots[s] != simt::kIndexSentinel) slot_of_task[task_slots[s]] = s;
  }

  const std::uint32_t stride = total_slots;  // compacted task-slot space
  const std::uint32_t tile_cap = queue_capacity(cfg, k);
  SelectConfig reduce_cfg = cfg;
  reduce_cfg.queue = QueueKind::kMerge;
  const std::uint32_t red_cap = queue_capacity(reduce_cfg, k);
  const std::uint32_t threads_q = padded_threads(num_queries);
  const std::uint32_t warps_q = threads_q / simt::kWarpSize;
  const bool scan_two_pointer = cfg.queue == QueueKind::kMerge &&
                                cfg.merge_strategy == MergeStrategy::kTwoPointer;

  auto d_queries = dev.upload(queries_dim_major);
  auto d_tasks = dev.upload(std::move(task_slots));
  auto d_slotmap = dev.upload(std::move(slot_of_task));
  // Per-task partial queues, pre-filled with the sentinel: only the padding
  // lanes and the spare slot rely on the fill, but pre-filling everything
  // keeps the slab free of uninitialized reads by construction.
  auto pdist = dev.alloc<float>(std::size_t{tile_cap} * stride,
                                simt::kFloatSentinel);
  auto pidx = dev.alloc<std::uint32_t>(std::size_t{tile_cap} * stride,
                                       simt::kIndexSentinel);
  auto fdist = dev.alloc<float>(std::size_t{red_cap} * threads_q);
  auto fidx = dev.alloc<std::uint32_t>(std::size_t{red_cap} * threads_q);
  auto dbuf = dev.alloc<float>(
      cfg.buffer == BufferMode::kNone ? 0 : std::size_t{cfg.buffer_size} * stride);
  auto ibuf = dev.alloc<std::uint32_t>(
      cfg.buffer == BufferMode::kNone ? 0 : std::size_t{cfg.buffer_size} * stride);
  auto tdscr =
      dev.alloc<float>(scan_two_pointer ? std::size_t{tile_cap} * stride : 0);
  auto tiscr = dev.alloc<std::uint32_t>(
      scan_two_pointer ? std::size_t{tile_cap} * stride : 0);
  auto rdscr = dev.alloc<float>(std::size_t{red_cap} * threads_q);
  auto riscr = dev.alloc<std::uint32_t>(std::size_t{red_cap} * threads_q);

  const auto q_span = d_queries.cspan();
  const auto r_span = sorted_refs.cspan();
  const auto t_span = d_tasks.cspan();
  const auto sm_span = d_slotmap.cspan();
  const ThreadArrayView taskview{pdist.span(), pidx.span(), stride, tile_cap,
                                 cfg.queue_layout};
  const ThreadArrayView bview{dbuf.span(), ibuf.span(), stride,
                              cfg.buffer_size, cfg.queue_layout};
  const ThreadArrayView tsview{tdscr.span(), tiscr.span(), stride,
                               scan_two_pointer ? tile_cap : 0,
                               cfg.queue_layout};
  const ThreadArrayView fview{fdist.span(), fidx.span(), threads_q, red_cap,
                              cfg.queue_layout};
  const ThreadArrayView rsview{rdscr.span(), riscr.span(), threads_q, red_cap,
                               cfg.queue_layout};

  // --- phase 1: one fused scan launch over all task warps ------------------
  if (out.scan_warps > 0) {
    out.scan_metrics = dev.launch(
        "list_scan", out.scan_warps, [&](WarpContext& ctx, std::uint32_t warp) {
          const auto whole = ctx.region("list_scan");
          const std::uint32_t list = warp_list[warp];
          const std::uint32_t row_begin = lists.list_begin[list];
          const std::uint32_t row_end = lists.list_begin[list + 1];

          U32 slot;
          ctx.alu(simt::kFullMask, slot,
                  [&](int i) { return warp * simt::kWarpSize + i; });
          const U32 task = ctx.load(simt::kFullMask, t_span, slot);
          const LaneMask act = ctx.pred(simt::kFullMask, [&](int i) {
            return task[i] != simt::kIndexSentinel;
          });
          U32 qid;
          ctx.alu(act, qid, [&](int i) { return task[i] / nprobe; });

          std::vector<F32> qreg(dim);
          for (std::uint32_t d = 0; d < dim; ++d) {
            U32 idx;
            ctx.alu(act, idx, [&](int i) { return d * num_queries + qid[i]; });
            qreg[d] = ctx.load(act, q_span, idx);
          }

          simt::SharedArray<int> flag(ctx, 2, 0);
          // The queue is addressed by the warp-consecutive compacted slot,
          // not the raw task id: interleaved layout then keeps every queue
          // load/store one coalesced request.
          WarpQueue queue(ctx, taskview, slot, act, cfg.queue, cfg.merge_m,
                          cfg.aligned_merge, &flag, cfg.merge_strategy, tsview,
                          cfg.cache_head);
          queue.init();
          BufferedInserter inserter(ctx, queue, act, bview, slot, cfg.buffer,
                                    cfg.buffer_size, &flag);

          simt::SharedArray<float> stage(ctx,
                                         std::size_t{kDistanceTileRefs} * dim);
          for (std::uint32_t r0 = row_begin; r0 < row_end;
               r0 += kDistanceTileRefs) {
            const std::uint32_t rt = std::min(kDistanceTileRefs, row_end - r0);
            const std::uint32_t total = rt * dim;
            {
              const auto prof = ctx.region("tile_copy");
              for (std::uint32_t ofs = 0; ofs < total;
                   ofs += simt::kWarpSize) {
                const LaneMask in_range = ctx.pred(simt::kFullMask, [&](int i) {
                  return ofs + static_cast<std::uint32_t>(i) < total;
                });
                if (!in_range) break;
                U32 src;
                ctx.alu(in_range, src,
                        [&](int i) { return r0 * dim + ofs + i; });
                const F32 v = ctx.load(in_range, r_span, src);
                U32 dst;
                ctx.alu(in_range, dst, [&](int i) { return ofs + i; });
                stage.write(in_range, dst, v);
              }
            }
            for (std::uint32_t r = 0; r < rt; ++r) {
              // Identical FP op order to the batched kernel, and the
              // candidate carries its *original* reference row id — the two
              // halves of the nprobe == nlist bit-identity contract.
              F32 acc = ctx.imm(act, 0.0f);
              for (std::uint32_t d = 0; d < dim; ++d) {
                const F32 ref_v =
                    stage.read_bcast(act, std::size_t{r} * dim + d);
                F32 diff;
                ctx.alu(act, diff,
                        [&](int i) { return qreg[d][i] - ref_v[i]; });
                ctx.alu(act, acc,
                        [&](int i) { return acc[i] + diff[i] * diff[i]; });
              }
              const std::uint32_t ref = lists.row_ids[r0 + r];
              apply_computed_nan_policy(ctx, act, acc, qid, ref);
              const EntryLanes cand{acc, ctx.imm(act, ref)};
              inserter.offer(act, cand);
            }
          }
          inserter.finish();
        });
  }

  // --- phase 2: merge the nprobe partials per query ------------------------
  out.reduce_metrics = dev.launch(
      "ivf_reduce", warps_q, [&](WarpContext& ctx, std::uint32_t warp) {
        const auto whole = ctx.region("ivf_reduce");
        const std::uint32_t base = warp * simt::kWarpSize;
        const int live = static_cast<int>(
            std::min<std::uint32_t>(simt::kWarpSize, num_queries - base));
        const LaneMask act = simt::first_lanes(live);
        U32 thread;
        ctx.alu(act, thread, [&](int i) { return base + i; });

        simt::SharedArray<int> flag(ctx, 2, 0);
        WarpQueue queue(ctx, fview, thread, act, QueueKind::kMerge,
                        reduce_cfg.merge_m, reduce_cfg.aligned_merge, &flag,
                        MergeStrategy::kTwoPointer, rsview,
                        reduce_cfg.cache_head);
        queue.init();

        // Probe ranks in ascending order, slots in queue order: a
        // deterministic candidate sequence, like batch_reduce's tile loop.
        // Each lane gathers its own task's queue through the slot map; an
        // absent task resolves to the spare slot's sentinel fill, which
        // accepts() rejects (nothing beats the sentinel).
        for (std::uint32_t j = 0; j < nprobe; ++j) {
          U32 map_idx;
          ctx.alu(act, map_idx, [&](int i) { return thread[i] * nprobe + j; });
          const U32 tslot = ctx.load(act, sm_span, map_idx);
          for (std::uint32_t s = 0; s < tile_cap; ++s) {
            const EntryLanes e = taskview.load(ctx, act, tslot, s);
            const LaneMask want = queue.accepts(act, e);
            if (want) queue.insert(want, e);
          }
        }
      });

  out.neighbors = extract_queues(fdist, fidx, num_queries, threads_q, red_cap,
                                 k, cfg.queue_layout);
  return out;
}

}  // namespace gpuksel::kernels
