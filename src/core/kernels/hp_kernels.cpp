#include "core/kernels/hp_kernels.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace gpuksel::kernels {

std::vector<std::uint32_t> hp_level_sizes(std::uint32_t n, std::uint32_t group,
                                          std::uint32_t k) {
  GPUKSEL_CHECK(group >= 2, "hierarchical partition needs G >= 2");
  GPUKSEL_CHECK(k >= 1, "hierarchical partition needs k >= 1");
  std::vector<std::uint32_t> sizes{n};
  while (sizes.back() > k) {
    sizes.push_back((sizes.back() + group - 1) / group);
  }
  return sizes;
}

std::uint64_t hp_extra_elements(std::uint32_t n, std::uint32_t group,
                                std::uint32_t k) {
  const auto sizes = hp_level_sizes(n, group, k);
  std::uint64_t extra = 0;
  for (std::size_t l = 1; l < sizes.size(); ++l) extra += sizes[l];
  return extra;
}

namespace {

/// Interleaved per-thread view of one hierarchy level's values.
struct LevelView {
  simt::DeviceSpan<float> data;
  std::uint32_t stride = 0;
  std::uint32_t size = 0;

  F32 load(WarpContext& ctx, LaneMask m, const U32& thread,
           std::uint32_t slot) const {
    U32 idx;
    ctx.alu(m, idx, [&](int i) { return slot * stride + thread[i]; });
    return ctx.load(m, data, idx);
  }

  F32 load_gather(WarpContext& ctx, LaneMask m, const U32& thread,
                  const U32& slot) const {
    U32 idx;
    ctx.alu(m, idx, [&](int i) { return slot[i] * stride + thread[i]; });
    return ctx.load(m, data, idx);
  }

  void store(WarpContext& ctx, LaneMask m, const U32& thread,
             std::uint32_t slot, const F32& v) const {
    U32 idx;
    ctx.alu(m, idx, [&](int i) { return slot * stride + thread[i]; });
    ctx.store(m, data, idx, v);
  }
};

}  // namespace

SelectOutput hp_select(simt::Device& dev, std::span<const float> distances,
                       std::uint32_t num_queries, std::uint32_t n,
                       std::uint32_t k, const SelectConfig& cfg,
                       std::uint32_t group) {
  GPUKSEL_CHECK(k >= 1, "hp_select needs k >= 1");
  GPUKSEL_CHECK(distances.size() == std::size_t{num_queries} * n,
                "distance matrix size mismatch");
  const auto sizes = hp_level_sizes(n, group, k);
  if (sizes.size() == 1) {
    // Trivial hierarchy (N <= k): the flat kernel is the whole search.
    return flat_select(dev, distances, num_queries, n, k, cfg);
  }

  const std::uint32_t threads = padded_threads(num_queries);
  const std::uint32_t capacity = queue_capacity(cfg, k);
  auto dlist = dev.upload(distances);
  const DistanceMatrixView dm{dlist.cspan(), num_queries, n, cfg.layout};

  // Device storage for the upper levels, per-thread interleaved.
  std::vector<simt::DeviceBuffer<float>> level_bufs;
  level_bufs.reserve(sizes.size() - 1);
  for (std::size_t l = 1; l < sizes.size(); ++l) {
    level_bufs.emplace_back(std::size_t{sizes[l]} * threads);
  }
  auto level_view = [&](std::size_t l) {
    return LevelView{level_bufs[l - 1].span(), threads, sizes[l]};
  };

  const std::uint32_t num_warps = threads / simt::kWarpSize;

  SelectOutput out;
  // ---- Bottom-Up Construction (Algorithm 4) -------------------------------
  out.build_metrics =
      dev.launch("hp_build", num_warps,
                 [&](WarpContext& ctx, std::uint32_t warp) {
        const std::uint32_t base = warp * simt::kWarpSize;
        const int live = static_cast<int>(
            std::min<std::uint32_t>(simt::kWarpSize, num_queries - base));
        const LaneMask act = simt::first_lanes(live);
        U32 thread;
        ctx.alu(act, thread, [&](int i) { return base + i; });

        for (std::size_t l = 0; l + 1 < sizes.size(); ++l) {
          const auto prof = ctx.region("hp_build_level");
          const LevelView next = level_view(l + 1);
          F32 run_min = ctx.imm(act, simt::kFloatSentinel);
          for (std::uint32_t j = 0; j < sizes[l]; ++j) {
            const F32 v = l == 0 ? dm.load(ctx, act, thread, j)
                                 : level_view(l).load(ctx, act, thread, j);
            const LaneMask smaller = ctx.cmp_lt(act, v, run_min);
            run_min = ctx.select(act, smaller, v, run_min);
            if ((j + 1) % group == 0 || j + 1 == sizes[l]) {
              next.store(ctx, act, thread, j / group, run_min);
              run_min = ctx.imm(act, simt::kFloatSentinel);
            }
          }
        }
      });

  // ---- Top-Down search ----------------------------------------------------
  // Ping-pong queues: candidates of the current level are read from one while
  // the next level's selection fills the other.
  auto dq_a = dev.alloc<float>(std::size_t{capacity} * threads);
  auto iq_a = dev.alloc<std::uint32_t>(std::size_t{capacity} * threads);
  auto dq_b = dev.alloc<float>(std::size_t{capacity} * threads);
  auto iq_b = dev.alloc<std::uint32_t>(std::size_t{capacity} * threads);
  const ThreadArrayView qa{dq_a.span(), iq_a.span(), threads, capacity,
                           cfg.queue_layout};
  const ThreadArrayView qb{dq_b.span(), iq_b.span(), threads, capacity,
                           cfg.queue_layout};
  auto dbuf = dev.alloc<float>(
      cfg.buffer == BufferMode::kNone ? 0
                                      : std::size_t{cfg.buffer_size} * threads);
  auto ibuf = dev.alloc<std::uint32_t>(
      cfg.buffer == BufferMode::kNone ? 0
                                      : std::size_t{cfg.buffer_size} * threads);
  const ThreadArrayView bview{dbuf.span(), ibuf.span(), threads,
                              cfg.buffer_size, cfg.queue_layout};
  const bool two_pointer = cfg.queue == QueueKind::kMerge &&
                           cfg.merge_strategy == MergeStrategy::kTwoPointer;
  auto dscratch =
      dev.alloc<float>(two_pointer ? std::size_t{capacity} * threads : 0);
  auto iscratch = dev.alloc<std::uint32_t>(
      two_pointer ? std::size_t{capacity} * threads : 0);
  const ThreadArrayView sview{dscratch.span(), iscratch.span(), threads,
                              two_pointer ? capacity : 0, cfg.queue_layout};

  const std::size_t top = sizes.size() - 1;
  // Whether the final (level 0) results land in queue A or B depends on the
  // number of ping-pong swaps: after the top-level fill of A, the descent
  // fills B, A, B, ... `top` times, so an odd descent count ends in B.
  const bool result_in_a = top % 2 == 0;

  out.metrics = dev.launch("hp_topdown", num_warps,
                           [&](WarpContext& ctx, std::uint32_t warp) {
    const std::uint32_t base = warp * simt::kWarpSize;
    const int live = static_cast<int>(
        std::min<std::uint32_t>(simt::kWarpSize, num_queries - base));
    const LaneMask act = simt::first_lanes(live);
    U32 thread;
    ctx.alu(act, thread, [&](int i) { return base + i; });

    simt::SharedArray<int> flag(ctx, 2, 0);

    // Select within the topmost level into the first queue; its size is <= k,
    // so this keeps every top-level element as a candidate.
    ThreadArrayView src = qa;
    ThreadArrayView dst = qb;
    {
      const auto prof = ctx.region("hp_top_select");
      WarpQueue queue(ctx, src, thread, act, cfg.queue, cfg.merge_m,
                      cfg.aligned_merge, &flag, cfg.merge_strategy, sview,
                      cfg.cache_head);
      queue.init();
      BufferedInserter inserter(ctx, queue, act, bview, thread, cfg.buffer,
                                cfg.buffer_size, &flag);
      const LevelView lv = level_view(top);
      for (std::uint32_t j = 0; j < sizes[top]; ++j) {
        const F32 v = lv.load(ctx, act, thread, j);
        inserter.offer(act, EntryLanes{v, ctx.imm(act, j)});
      }
      inserter.finish();
    }

    // Walk down with *inherit-and-offer*: every group minimum recurs verbatim
    // among its children, so the next level's queue starts as a copy of the
    // current one with each candidate's position remapped to the child that
    // attains its value.  The remap is an order-isomorphism (values are
    // unchanged; equal-value entries keep their index order because the new
    // positions live in disjoint, order-preserving group ranges), so every
    // queue invariant carries over.  Only the G-1 non-minimum children per
    // candidate are then offered — against a threshold that is already the
    // exact k-th smallest — which is what keeps Top-Down search cheap.
    // The result is provably the k smallest of all visited children, i.e.
    // identical to re-selecting from scratch.
    for (std::size_t l = top; l >= 1; --l) {
      const std::uint32_t child_size = sizes[l - 1];
      auto load_child = [&](LaneMask m, const U32& child_pos) {
        return l - 1 == 0
                   ? dm.load_gather(ctx, m, thread, child_pos)
                   : level_view(l - 1).load_gather(ctx, m, thread, child_pos);
      };

      WarpQueue queue(ctx, dst, thread, act, cfg.queue, cfg.merge_m,
                      cfg.aligned_merge, &flag, cfg.merge_strategy, sview,
                      cfg.cache_head);
      // Phase A: copy src -> dst slot-wise, remapping each valid entry's
      // position to its first value-equal child; record which child was
      // consumed so Phase B can skip it.
      {
        const auto prof = ctx.region("hp_inherit");
        for (std::uint32_t c = 0; c < capacity; ++c) {
          const EntryLanes e = src.load(ctx, act, thread, c);
          const LaneMask valid = ctx.pred(
              act, [&](int i) { return e.index[i] != simt::kIndexSentinel; });
          U32 new_pos = U32::filled(simt::kIndexSentinel);
          if (valid) {
            U32 child_base;
            ctx.alu(valid, child_base,
                    [&](int i) { return e.index[i] * group; });
            LaneMask found = 0;
            for (std::uint32_t g = 0; g < group && (found & valid) != valid;
                 ++g) {
              const U32 child_pos = ctx.add(valid, child_base, g);
              const LaneMask in_range =
                  ctx.pred(valid & ~found,
                           [&](int i) { return child_pos[i] < child_size; });
              if (!in_range) continue;
              const F32 v = load_child(in_range, child_pos);
              const LaneMask eq = ctx.pred(
                  in_range, [&](int i) { return v[i] == e.dist[i]; });
              new_pos = ctx.select(act, eq, child_pos, new_pos);
              found |= eq;
            }
          }
          dst.store(ctx, act, thread, c, EntryLanes{e.dist, new_pos});
        }
        queue.adopt(act);
      }

      // Phase B: offer the remaining children of every candidate; the
      // inherited threshold rejects almost all of them without insertion.
      // Candidates are re-read from the *immutable* src snapshot (offers
      // mutate dst, so dst slots cannot be walked), and the consumed minimum
      // child is re-identified with the same first-value-match rule.
      {
        const auto prof = ctx.region("hp_offer");
        BufferedInserter inserter(ctx, queue, act, bview, thread, cfg.buffer,
                                  cfg.buffer_size, &flag);
        for (std::uint32_t c = 0; c < capacity; ++c) {
          const EntryLanes e = src.load(ctx, act, thread, c);
          const LaneMask valid = ctx.pred(
              act, [&](int i) { return e.index[i] != simt::kIndexSentinel; });
          if (!valid) continue;
          const U32 child_base = ctx.mul(valid, e.index, group);
          LaneMask found = 0;
          for (std::uint32_t g = 0; g < group; ++g) {
            const U32 child_pos = ctx.add(valid, child_base, g);
            const LaneMask in_range = ctx.pred(
                valid, [&](int i) { return child_pos[i] < child_size; });
            if (!in_range) continue;
            // Per-lane gathers — the divergent part of Top-Down search the
            // paper's G trade-off is about.
            const F32 v = load_child(in_range, child_pos);
            const LaneMask eq =
                ctx.pred(in_range & ~found,
                         [&](int i) { return v[i] == e.dist[i]; });
            found |= eq;
            const LaneMask offerable = in_range & ~eq;
            if (offerable) inserter.offer(offerable, EntryLanes{v, child_pos});
          }
        }
        inserter.finish();
      }
      std::swap(src, dst);
    }
  });

  out.neighbors = result_in_a
                      ? extract_queues(dq_a, iq_a, num_queries, threads,
                                       capacity, k, cfg.queue_layout)
                      : extract_queues(dq_b, iq_b, num_queries, threads,
                                       capacity, k, cfg.queue_layout);
  return out;
}

}  // namespace gpuksel::kernels
