// WarpExecutor: a persistent host worker pool for grid-level parallelism.
//
// Warps of one launch are independent (the CUDA grid contract), so the
// simulator may execute them on parallel host threads.  The executor keeps
// its workers alive across launches — a launch posts a [0, num_warps) index
// range, workers pull warp ids off a shared atomic cursor, and the caller
// thread participates, so an executor built for N threads runs warps on the
// caller plus N-1 workers.
//
// Determinism contract (asserted by tests/executor_determinism_test.cpp):
//  * the executor only partitions *work*; every per-warp side effect lands in
//    a slot indexed by warp id, and Device::launch reduces those slots in
//    ascending warp order, so metrics are bit-identical for any thread count;
//  * faults follow *first-fault-wins in warp order*, matching the serial
//    loop exactly: when warp w faults, warps with id > w are cancelled, but
//    warps with id < w still run to completion — if one of them also faults,
//    it becomes the winner (serial execution would have hit it first).  The
//    single rethrown exception is therefore the fault of the lowest faulting
//    warp id at its first faulting instruction, for any thread count.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <limits>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "util/check.hpp"

namespace gpuksel::simt {

/// What aborted a parallel launch: the winning (lowest-warp) exception.
struct LaunchAbort {
  std::uint32_t warp_id = 0;
  std::exception_ptr error;  ///< SimtFaultError or any other kernel exception
};

class WarpExecutor {
 public:
  /// Builds a pool that runs work on `threads` host threads in total (the
  /// caller plus threads-1 persistent workers).  threads >= 1.
  explicit WarpExecutor(unsigned threads);
  ~WarpExecutor();

  WarpExecutor(const WarpExecutor&) = delete;
  WarpExecutor& operator=(const WarpExecutor&) = delete;

  [[nodiscard]] unsigned thread_count() const noexcept { return threads_; }

  /// Runs `body(w)` once for every w in [0, num_warps), distributing warps
  /// over the pool, and blocks until all are retired.  On kernel exceptions
  /// the first-fault-wins rule above picks a single winner, which is
  /// rethrown; the winning warp id is also left in `last_abort()` so the
  /// caller can attribute the abort without re-parsing the exception.
  void run(std::size_t num_warps,
           const std::function<void(std::uint32_t)>& body);

  /// The abort of the most recent run() on this executor, or nullopt if that
  /// run completed cleanly.  Only meaningful between run() calls.
  [[nodiscard]] const std::optional<LaunchAbort>& last_abort() const noexcept {
    return abort_;
  }

 private:
  static constexpr std::uint32_t kNoAbort =
      std::numeric_limits<std::uint32_t>::max();

  void worker_loop();
  /// Pulls warps off the shared cursor until the range is exhausted; shared
  /// by workers and the calling thread.
  void drain();
  void execute_one(std::uint32_t w);

  const unsigned threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_work_;  ///< wakes workers for a new generation
  std::condition_variable cv_done_;  ///< wakes run() when the job retires
  std::uint64_t generation_ = 0;     ///< bumped per run(), guarded by mu_
  bool shutdown_ = false;
  unsigned active_ = 0;  ///< workers currently inside drain()

  // Per-run state.  Written by run() under mu_ while no worker is active;
  // read by draining threads without the lock (made safe by the active_
  // handshake: a worker only enters drain() after observing the new
  // generation under mu_, and run() never mutates while active_ > 0).
  const std::function<void(std::uint32_t)>* body_ = nullptr;
  std::size_t num_warps_ = 0;
  // Each hot atomic gets its own cache line: next_ is hammered by every
  // worker claiming warps, retired_ by every completion — sharing a line
  // (with each other or the cold fields above) would bounce it per warp.
  alignas(64) std::atomic<std::size_t> next_{0};
  alignas(64) std::atomic<std::size_t> retired_{0};
  /// Lowest warp id that threw so far; warps above it are cancelled.
  alignas(64) std::atomic<std::uint32_t> abort_warp_{kNoAbort};
  std::mutex abort_mu_;
  std::optional<LaunchAbort> abort_;
};

/// Process-wide default thread count: GPUKSEL_THREADS if set and >= 1, else
/// std::thread::hardware_concurrency() (1 when unknown).
[[nodiscard]] unsigned default_worker_threads() noexcept;

}  // namespace gpuksel::simt
