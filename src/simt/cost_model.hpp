// Cost model converting simulator metrics into modeled seconds.
//
// Calibrated to the paper's NVIDIA Tesla C2075 (Fermi): 14 SMs with two warp
// schedulers each at 1.15 GHz, 144 GB/s GDDR5 served in 128-byte
// transactions, and a PCIe link whose effective bandwidth is back-solved from
// the paper's own "Data Copy" row (0.46 s to move the 2^13 x 2^15 float
// distance matrix => ~2.33 GB/s, typical for PCIe 2.0 with pinned-memory
// overheads of that era).
//
// A kernel's modeled time is the roofline max of its instruction-issue time
// and its DRAM time: with thousands of resident warps both pipelines overlap,
// so the slower one bounds throughput.
#pragma once

#include <cstdint>

#include "simt/metrics.hpp"

namespace gpuksel::simt {

/// Scales *all* counters of a sampled launch to the full warp count (warp
/// sampling; see DESIGN.md §1).  Every counter must scale together or the
/// derived ratios (simt_efficiency, transactions_per_request) silently drift:
/// scaling only instructions/tx leaves useful_lane_slots and global_requests
/// at their sampled values, inflating efficiency and deflating the replay
/// factor by the scale factor itself.  Rounds to nearest so integral scales
/// preserve the ratios exactly.
[[nodiscard]] inline KernelMetrics scale_metrics(const KernelMetrics& m,
                                                 double scale) noexcept {
  const auto mul = [scale](std::uint64_t v) noexcept {
    return static_cast<std::uint64_t>(static_cast<double>(v) * scale + 0.5);
  };
  KernelMetrics s;
  s.instructions = mul(m.instructions);
  s.useful_lane_slots = mul(m.useful_lane_slots);
  s.global_load_tx = mul(m.global_load_tx);
  s.global_store_tx = mul(m.global_store_tx);
  s.global_requests = mul(m.global_requests);
  s.shared_requests = mul(m.shared_requests);
  s.shared_conflict_replays = mul(m.shared_conflict_replays);
  return s;
}

struct CostModel {
  double sm_count = 14.0;
  double schedulers_per_sm = 2.0;
  double clock_hz = 1.15e9;
  double dram_bandwidth = 144.0e9;       // bytes/s
  double transaction_bytes = 128.0;
  double pcie_bandwidth = 2.33e9;        // bytes/s, calibrated to Table I
  double pcie_latency_s = 20e-6;         // per-transfer launch overhead

  /// Peak warp-instruction issue rate of the whole chip.
  [[nodiscard]] double issue_rate() const noexcept {
    return sm_count * schedulers_per_sm * clock_hz;
  }

  /// Time to issue the recorded instructions, chip fully occupied.
  [[nodiscard]] double instruction_seconds(const KernelMetrics& m) const noexcept {
    return static_cast<double>(m.instructions) / issue_rate();
  }

  /// Time for the recorded global transactions at peak DRAM bandwidth.
  [[nodiscard]] double memory_seconds(const KernelMetrics& m) const noexcept {
    return static_cast<double>(m.global_tx()) * transaction_bytes /
           dram_bandwidth;
  }

  /// Roofline estimate of kernel time.
  [[nodiscard]] double kernel_seconds(const KernelMetrics& m) const noexcept {
    const double ti = instruction_seconds(m);
    const double tm = memory_seconds(m);
    return ti > tm ? ti : tm;
  }

  /// Kernel time when the simulated warps are a sample of `scale`x as many
  /// real warps (warp sampling; see DESIGN.md §1).
  [[nodiscard]] double kernel_seconds_scaled(const KernelMetrics& m,
                                             double scale) const noexcept {
    return kernel_seconds(scale_metrics(m, scale));
  }

  /// Modeled host<->device copy time for `bytes` bytes.  A zero-byte
  /// transfer models as 0 s: no copy is issued for an empty batch or a
  /// zero-row delta, so there is no launch to pay PCIe latency on.
  [[nodiscard]] double transfer_seconds(std::uint64_t bytes) const noexcept {
    if (bytes == 0) return 0.0;
    return pcie_latency_s + static_cast<double>(bytes) / pcie_bandwidth;
  }
};

/// The default (paper-calibrated) cost model.
[[nodiscard]] inline CostModel c2075_model() noexcept { return CostModel{}; }

}  // namespace gpuksel::simt
