// Simulated device memory: buffers, spans and the transaction model.
//
// Device buffers live in host memory (the simulator is functional), but every
// warp access through WarpContext is charged in 128-byte transactions, the
// GDDR5 granularity of the paper's Tesla C2075.  Each buffer is modeled as
// starting on a transaction boundary, so transaction counts depend only on
// the element indices a warp touches — deterministic and unit-testable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace gpuksel::simt {

/// Bytes per global-memory transaction (Fermi L1 line / coalescing window).
inline constexpr std::size_t kTransactionBytes = 128;

/// A non-owning view of device memory handed to kernels.
///
/// The `offset` of a span within its buffer is tracked so that sub-spans
/// still produce correct transaction segmentation.
template <typename T>
class DeviceSpan {
 public:
  DeviceSpan() = default;
  DeviceSpan(T* data, std::size_t size, std::size_t byte_offset = 0) noexcept
      : data_(data), size_(size), byte_offset_(byte_offset) {}

  /// Implicit widening to a const view.
  operator DeviceSpan<const T>() const noexcept {  // NOLINT(google-explicit-constructor)
    return DeviceSpan<const T>(data_, size_, byte_offset_);
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] T* data() const noexcept { return data_; }

  /// Raw element access (simulator-internal; kernels go through WarpContext).
  T& at(std::size_t i) const {
#if defined(GPUKSEL_BOUNDS_CHECK)
    GPUKSEL_CHECK(i < size_, "device span index out of range");
#endif
    return data_[i];
  }

  /// Byte offset of element i from the start of the underlying buffer.
  [[nodiscard]] std::size_t byte_offset(std::size_t i) const noexcept {
    return byte_offset_ + i * sizeof(T);
  }

  /// Sub-span of `count` elements starting at `first`.
  [[nodiscard]] DeviceSpan subspan(std::size_t first, std::size_t count) const {
    GPUKSEL_CHECK(first + count <= size_, "device subspan out of range");
    return DeviceSpan(data_ + first, count, byte_offset(first));
  }

 private:
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t byte_offset_ = 0;
};

/// An owning device allocation.
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  explicit DeviceBuffer(std::size_t n, T fill = T{}) : storage_(n, fill) {}
  explicit DeviceBuffer(std::vector<T> host) : storage_(std::move(host)) {}

  [[nodiscard]] std::size_t size() const noexcept { return storage_.size(); }
  [[nodiscard]] std::size_t bytes() const noexcept {
    return storage_.size() * sizeof(T);
  }

  [[nodiscard]] DeviceSpan<T> span() noexcept {
    return DeviceSpan<T>(storage_.data(), storage_.size());
  }
  [[nodiscard]] DeviceSpan<const T> cspan() const noexcept {
    return DeviceSpan<const T>(storage_.data(), storage_.size());
  }

  /// Simulator-side view of the contents (tests and host verification).
  [[nodiscard]] const std::vector<T>& host() const noexcept { return storage_; }
  [[nodiscard]] std::vector<T>& host() noexcept { return storage_; }

 private:
  std::vector<T> storage_;
};

/// PCIe-like host<->device link model.  The paper's "Data Copy" row measures
/// moving the distance matrix across this link; we reproduce it by counting
/// the bytes actually transferred and dividing by a calibrated bandwidth.
struct TransferStats {
  std::uint64_t bytes_h2d = 0;
  std::uint64_t bytes_d2h = 0;
};

}  // namespace gpuksel::simt
