// Simulated device memory: buffers, spans and the transaction model.
//
// Device buffers live in host memory (the simulator is functional), but every
// warp access through WarpContext is charged in 128-byte transactions, the
// GDDR5 granularity of the paper's Tesla C2075.  Each buffer is modeled as
// starting on a transaction boundary, so transaction counts depend only on
// the element indices a warp touches — deterministic and unit-testable.
//
// Every buffer also carries shadow memory for the sanitizer (sanitizer.hpp):
// one word per element recording whether the element was ever written and a
// 7-bit checksum of its current value.  (The checksum fits a byte; storage is
// a 32-bit word so the lane engine can gather/scatter shadow rows with the
// same dword instructions it uses for data.)  WarpContext consults the shadow on
// loads (uninitialized-read poisoning, ECC-style corruption detection) and
// refreshes it on stores.  Host-side mutation through the non-const host()
// accessor marks the shadow dirty; the next span() recomputes it, modeling a
// host->device memcpy of freshly initialized data.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "simt/lane_vec.hpp"
#include "simt/sanitizer.hpp"
#include "util/check.hpp"

namespace gpuksel::simt {

/// Bytes per global-memory transaction (Fermi L1 line / coalescing window).
inline constexpr std::size_t kTransactionBytes = 128;

/// A non-owning view of device memory handed to kernels.
///
/// The `offset` of a span within its buffer is tracked so that sub-spans
/// still produce correct transaction segmentation.
template <typename T>
class DeviceSpan {
 public:
  DeviceSpan() = default;
  DeviceSpan(T* data, std::size_t size, std::size_t byte_offset = 0,
             std::uint32_t* shadow = nullptr, bool pristine = false) noexcept
      : data_(data),
        size_(size),
        byte_offset_(byte_offset),
        shadow_(shadow),
        pristine_(pristine) {}

  /// Implicit widening to a const view.
  operator DeviceSpan<const T>() const noexcept {  // NOLINT(google-explicit-constructor)
    return DeviceSpan<const T>(data_, size_, byte_offset_, shadow_, pristine_);
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] T* data() const noexcept { return data_; }

  /// Raw element access (simulator-internal; kernels go through WarpContext).
  /// Writing through a mutable element here bypasses the shadow, so this is
  /// the sanctioned "silent corruption" hook for ECC testing: touching a
  /// non-const element forfeits the span's pristine bit, forcing the next
  /// load through this span to re-verify the shadow.
  T& at(std::size_t i) const {
#if defined(GPUKSEL_BOUNDS_CHECK)
    GPUKSEL_CHECK(i < size_, "device span index out of range");
#endif
    if constexpr (!std::is_const_v<T>) pristine_ = false;
    return data_[i];
  }

  /// Store-path write used by WarpContext, which refreshes the shadow as part
  /// of the same operation — so pristineness is preserved (unlike at()).
  void store_at(std::size_t i, T v) const {
#if defined(GPUKSEL_BOUNDS_CHECK)
    GPUKSEL_CHECK(i < size_, "device span index out of range");
#endif
    data_[i] = v;
  }

  /// Byte offset of element i from the start of the underlying buffer.
  [[nodiscard]] std::size_t byte_offset(std::size_t i) const noexcept {
    return byte_offset_ + i * sizeof(T);
  }

  /// Sub-span of `count` elements starting at `first`.
  [[nodiscard]] DeviceSpan subspan(std::size_t first, std::size_t count) const {
    // Written to be overflow-proof: `first + count <= size_` can wrap for
    // huge `first`, silently accepting a wild view.
    GPUKSEL_CHECK(first <= size_ && count <= size_ - first,
                  "device subspan out of range");
    return DeviceSpan(data_ + first, count, byte_offset(first),
                      shadow_ != nullptr ? shadow_ + first : nullptr,
                      pristine_);
  }

  /// True when every element of the underlying buffer was initialized at
  /// construction/upload and the shadow has been consistent ever since (every
  /// store through WarpContext refreshes both together).  The lane engine
  /// uses this to prove poison/ECC checks vacuous and skip the shadow gather
  /// on loads; a buffer born uninitialized() never becomes pristine.
  [[nodiscard]] bool pristine() const noexcept { return pristine_; }

  /// Sanitizer shadow word of element i (kShadowUninit if never written).
  [[nodiscard]] bool has_shadow() const noexcept { return shadow_ != nullptr; }
  [[nodiscard]] std::uint32_t* shadow_data() const noexcept {
    return shadow_;
  }
  [[nodiscard]] std::uint32_t shadow_at(std::size_t i) const noexcept {
    return shadow_[i];
  }
  void set_shadow(std::size_t i, std::uint32_t value) const noexcept {
    shadow_[i] = value;
  }

 private:
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t byte_offset_ = 0;
  std::uint32_t* shadow_ = nullptr;
  // Mutable: a raw write through at() on a value-copied span must still be
  // able to revoke trust (see at()).
  mutable bool pristine_ = false;
};

/// An owning device allocation with sanitizer shadow memory.
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  explicit DeviceBuffer(std::size_t n, T fill = T{})
      : storage_(n, fill), shadow_(n, shadow_of(fill)) {}
  explicit DeviceBuffer(std::vector<T> host) : storage_(std::move(host)) {
    rebuild_shadow();
  }

  /// A buffer whose contents are garbage until written: reading an element
  /// before any store faults under the sanitizer's poison check.  (Elements
  /// are value-initialized under the hood; only the shadow says "uninit".)
  [[nodiscard]] static DeviceBuffer uninitialized(std::size_t n) {
    DeviceBuffer buf;
    buf.storage_.assign(n, T{});
    buf.shadow_.assign(n, kShadowUninit);
    buf.pristine_ = false;
    return buf;
  }

  [[nodiscard]] std::size_t size() const noexcept { return storage_.size(); }
  [[nodiscard]] std::size_t bytes() const noexcept {
    return storage_.size() * sizeof(T);
  }

  [[nodiscard]] DeviceSpan<T> span() noexcept {
    refresh_shadow_if_dirty();
    return DeviceSpan<T>(storage_.data(), storage_.size(), 0, shadow_.data(),
                         pristine_);
  }
  [[nodiscard]] DeviceSpan<const T> cspan() const noexcept {
    refresh_shadow_if_dirty();
    return DeviceSpan<const T>(storage_.data(), storage_.size(), 0,
                               shadow_.data(), pristine_);
  }

  /// Simulator-side view of the contents (tests and host verification).  The
  /// mutable overload counts as a host write: the shadow is rebuilt (and the
  /// whole buffer considered initialized) at the next span()/cspan().
  [[nodiscard]] const std::vector<T>& host() const noexcept { return storage_; }
  [[nodiscard]] std::vector<T>& host() noexcept {
    shadow_dirty_ = true;
    return storage_;
  }

 private:
  void rebuild_shadow() const {
    shadow_.resize(storage_.size());
    if constexpr (sizeof(T) == 4) {
      lanevec::shadow_fill(storage_.data(), shadow_.data(), storage_.size());
    } else {
      for (std::size_t i = 0; i < storage_.size(); ++i) {
        shadow_[i] = shadow_of(storage_[i]);
      }
    }
  }
  void refresh_shadow_if_dirty() const noexcept {
    if (!shadow_dirty_) return;
    rebuild_shadow();
    shadow_dirty_ = false;
    // A rebuilt shadow marks every element initialized and consistent: the
    // host write modeled a fresh upload.
    pristine_ = true;
  }

  std::vector<T> storage_;
  // Shadow state is metadata about storage_, not logical buffer content, so
  // const views may refresh it.
  mutable std::vector<std::uint32_t> shadow_;
  mutable bool shadow_dirty_ = false;
  // Whether the whole buffer is initialized with a consistent shadow (see
  // DeviceSpan::pristine).  True from the filling constructors, false from
  // uninitialized(); host mutation re-establishes it via the rebuild above.
  mutable bool pristine_ = true;
};

/// PCIe-like host<->device link model.  The paper's "Data Copy" row measures
/// moving the distance matrix across this link; we reproduce it by counting
/// the bytes actually transferred and dividing by a calibrated bandwidth.
struct TransferStats {
  std::uint64_t bytes_h2d = 0;
  std::uint64_t bytes_d2h = 0;
};

}  // namespace gpuksel::simt
