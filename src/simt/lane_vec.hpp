// lanevec: the host-SIMD backend of the lane engine.
//
// Every WarpContext operation is semantically "do X on 32 lanes under a
// mask".  This header provides that 32-wide body three ways:
//
//  * a portable scalar reference (always compiled — it *defines* the
//    semantics, and is the fallback when SIMD is compiled out or disabled);
//  * an AVX2 tier (4 x 256-bit vectors, mask expansion via compares);
//  * an AVX-512 tier (2 x 512-bit vectors; LaneMask maps 1:1 onto a pair of
//    __mmask16, so predication is native).
//
// The tier is chosen at build time (CMake: GPUKSEL_SIMD / GPUKSEL_SIMD_ISA
// set GPUKSEL_SIMD_AVX512 or GPUKSEL_SIMD_AVX2) and can be switched off at
// run time (`GPUKSEL_SIMD=0` env, or set_enabled(false) — used by the
// differential tests to run both paths in one binary).
//
// Bit-identity contract: for every operation here the vector tiers produce
// exactly the bits the scalar reference produces, for every mask and every
// payload (including NaN and subnormals):
//  * per-lane float add/sub/mul in AVX2/AVX-512 are IEEE-754 binary32 ops,
//    identical to their scalar counterparts (the build sets -ffp-contract=off
//    so no path fuses a*b+c into an FMA);
//  * compares use the ordered-quiet predicates (_CMP_LT_OQ etc.), matching
//    scalar `<` on NaN (false) and +/-0 (equal);
//  * scatter commits lane 0..31 in order, so colliding stores resolve
//    "highest lane wins" exactly like the scalar commit loop;
//  * detection helpers (bounds, poison, ECC, collisions) only *detect*; the
//    caller re-runs the scalar loop on violation to reproduce the exact
//    fault record, so fault ordering and messages cannot drift.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <type_traits>

#include "simt/types.hpp"

#if defined(GPUKSEL_SIMD_AVX512) || defined(GPUKSEL_SIMD_AVX2)
// GCC's unmasked AVX-512 intrinsics pass _mm512_undefined_epi32() (the
// self-initialized `__Y = __Y` idiom) to their masked builtins; under -O2
// inlining that trips -Wmaybe-uninitialized at the header's own lines.
// Suppress the warning for those lines only.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#include <immintrin.h>
#pragma GCC diagnostic pop
#define GPUKSEL_SIMD_COMPILED 1
#else
#define GPUKSEL_SIMD_COMPILED 0
#endif

namespace gpuksel::simt::lanevec {

/// True when a 4-byte lane type can take the vector tiers; anything else
/// falls through to the scalar reference at compile time.
template <typename T>
inline constexpr bool lane32 =
    sizeof(T) == 4 && std::is_trivially_copyable_v<T> &&
    (std::is_same_v<T, float> || std::is_integral_v<T>);

// --- runtime switch ---------------------------------------------------------

namespace detail {

inline bool detect_enabled() noexcept {
#if defined(GPUKSEL_SIMD_AVX512)
  if (!__builtin_cpu_supports("avx512f") ||
      !__builtin_cpu_supports("avx512bw") ||
      !__builtin_cpu_supports("avx512vl") ||
      !__builtin_cpu_supports("avx512cd")) {
    return false;
  }
#elif defined(GPUKSEL_SIMD_AVX2)
  if (!__builtin_cpu_supports("avx2")) return false;
#else
  return false;
#endif
  const char* env = std::getenv("GPUKSEL_SIMD");
  if (env != nullptr &&
      (env[0] == '0' || env[0] == 'n' || env[0] == 'N' || env[0] == 'f' ||
       env[0] == 'F' ||
       ((env[0] == 'o' || env[0] == 'O') &&
        (env[1] == 'f' || env[1] == 'F')))) {
    return false;
  }
  return true;
}

inline std::atomic<bool> g_enabled{detect_enabled()};

}  // namespace detail

/// Whether any vector tier was compiled in at all.
[[nodiscard]] constexpr bool compiled() noexcept {
  return GPUKSEL_SIMD_COMPILED != 0;
}

[[nodiscard]] inline const char* backend_name() noexcept {
#if defined(GPUKSEL_SIMD_AVX512)
  return "avx512";
#elif defined(GPUKSEL_SIMD_AVX2)
  return "avx2";
#else
  return "scalar";
#endif
}

/// Whether the vector tier is live right now (compiled in, supported by the
/// host CPU, and not switched off).
[[nodiscard]] inline bool enabled() noexcept {
#if GPUKSEL_SIMD_COMPILED
  return detail::g_enabled.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

/// Force the scalar reference (false) or re-enable the vector tier (true).
/// Enabling is a no-op when no tier is compiled in or the CPU lacks it.
inline void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on && compiled() && detail::detect_enabled(),
                          std::memory_order_relaxed);
}

// --- scalar reference -------------------------------------------------------
//
// These loops define the semantics of every operation.  The vector tiers
// below must match them bit for bit.

namespace ref {

template <typename T, typename F>
inline void lanes(LaneMask m, F&& f) {
  for (int i = 0; i < kWarpSize; ++i) {
    if (lane_active(m, i)) f(i);
  }
}

}  // namespace ref

// --- AVX-512 primitives -----------------------------------------------------

#if defined(GPUKSEL_SIMD_AVX512)

namespace v512 {

inline __m512i load_lo(const void* p) noexcept {
  return _mm512_load_si512(p);
}
inline __m512i load_hi(const void* p) noexcept {
  return _mm512_load_si512(static_cast<const char*>(p) + 64);
}
inline void store_lo(void* p, __m512i v) noexcept { _mm512_store_si512(p, v); }
inline void store_hi(void* p, __m512i v) noexcept {
  _mm512_store_si512(static_cast<char*>(p) + 64, v);
}
inline __mmask16 klo(LaneMask m) noexcept {
  return static_cast<__mmask16>(m & 0xffffu);
}
inline __mmask16 khi(LaneMask m) noexcept {
  return static_cast<__mmask16>(m >> 16);
}
inline LaneMask join(__mmask16 lo, __mmask16 hi) noexcept {
  return static_cast<LaneMask>(static_cast<std::uint32_t>(lo) |
                               (static_cast<std::uint32_t>(hi) << 16));
}
inline __m512i iota_lo() noexcept {
  return _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14,
                           15);
}
inline __m512i iota_hi() noexcept {
  return _mm512_setr_epi32(16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28,
                           29, 30, 31);
}

}  // namespace v512

#endif  // GPUKSEL_SIMD_AVX512

// --- AVX2 primitives --------------------------------------------------------

#if defined(GPUKSEL_SIMD_AVX2) && !defined(GPUKSEL_SIMD_AVX512)

namespace v256 {

inline __m256i load(const void* p, int group) noexcept {
  return _mm256_load_si256(
      reinterpret_cast<const __m256i*>(static_cast<const char*>(p)) + group);
}
inline void store(void* p, int group, __m256i v) noexcept {
  _mm256_store_si256(reinterpret_cast<__m256i*>(static_cast<char*>(p)) + group,
                     v);
}
/// Expand 8 mask bits (lanes 8g..8g+7) into a per-dword all-ones/zero vector.
inline __m256i mask_vec(LaneMask m, int group) noexcept {
  const __m256i bits = _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
  const __m256i v = _mm256_set1_epi32(
      static_cast<int>((m >> (8 * group)) & 0xffu));
  return _mm256_cmpeq_epi32(_mm256_and_si256(v, bits), bits);
}
/// Collapse a per-dword compare result into 8 mask bits for lanes 8g..8g+7.
inline LaneMask mask_bits(__m256i cmp, int group) noexcept {
  const int bits = _mm256_movemask_ps(_mm256_castsi256_ps(cmp));
  return static_cast<LaneMask>(static_cast<std::uint32_t>(bits) << (8 * group));
}
inline __m256i blend(__m256i bg, __m256i val, __m256i mask) noexcept {
  return _mm256_blendv_epi8(bg, val, mask);
}
/// Unsigned 32-bit a < b (AVX2 has signed compares only).
inline __m256i cmplt_epu32(__m256i a, __m256i b) noexcept {
  const __m256i sign = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  return _mm256_cmpgt_epi32(_mm256_xor_si256(b, sign),
                            _mm256_xor_si256(a, sign));
}

}  // namespace v256

#endif  // AVX2-only

// --- register moves and ALU -------------------------------------------------

/// dst[i] = v for active lanes.
template <typename T>
inline void fill(LaneMask m, WarpVar<T>& dst, T v) noexcept {
#if defined(GPUKSEL_SIMD_AVX512)
  if constexpr (lane32<T>) {
    if (enabled()) {
      std::uint32_t bits;
      std::memcpy(&bits, &v, 4);
      const __m512i b = _mm512_set1_epi32(static_cast<int>(bits));
      using namespace v512;
      store_lo(&dst, _mm512_mask_mov_epi32(load_lo(&dst), klo(m), b));
      store_hi(&dst, _mm512_mask_mov_epi32(load_hi(&dst), khi(m), b));
      return;
    }
  }
#elif defined(GPUKSEL_SIMD_AVX2)
  if constexpr (lane32<T>) {
    if (enabled()) {
      std::uint32_t bits;
      std::memcpy(&bits, &v, 4);
      const __m256i b = _mm256_set1_epi32(static_cast<int>(bits));
      using namespace v256;
      for (int g = 0; g < 4; ++g) {
        store(&dst, g, blend(load(&dst, g), b, mask_vec(m, g)));
      }
      return;
    }
  }
#endif
  ref::lanes<T>(m, [&](int i) { dst[i] = v; });
}

/// dst[i] = src[i] for active lanes.
template <typename T>
inline void copy(LaneMask m, WarpVar<T>& dst, const WarpVar<T>& src) noexcept {
#if defined(GPUKSEL_SIMD_AVX512)
  if constexpr (lane32<T>) {
    if (enabled()) {
      using namespace v512;
      store_lo(&dst, _mm512_mask_mov_epi32(load_lo(&dst), klo(m),
                                           load_lo(&src)));
      store_hi(&dst, _mm512_mask_mov_epi32(load_hi(&dst), khi(m),
                                           load_hi(&src)));
      return;
    }
  }
#elif defined(GPUKSEL_SIMD_AVX2)
  if constexpr (lane32<T>) {
    if (enabled()) {
      using namespace v256;
      for (int g = 0; g < 4; ++g) {
        store(&dst, g, blend(load(&dst, g), load(&src, g), mask_vec(m, g)));
      }
      return;
    }
  }
#endif
  ref::lanes<T>(m, [&](int i) { dst[i] = src[i]; });
}

// Binary ALU ops write the full result register: active lanes get the op,
// inactive lanes get a[i] (the conventional "r = a; op over active" shape
// WarpContext uses).  r must not alias b; aliasing a is fine.

#if defined(GPUKSEL_SIMD_AVX512)
#define GPUKSEL_LV_BINOP_512(OPF, OPI)                                        \
  if constexpr (lane32<T>) {                                                  \
    if (enabled()) {                                                          \
      using namespace v512;                                                   \
      if constexpr (std::is_same_v<T, float>) {                               \
        const __m512 alo = _mm512_castsi512_ps(load_lo(&a));                  \
        const __m512 ahi = _mm512_castsi512_ps(load_hi(&a));                  \
        const __m512 blo = _mm512_castsi512_ps(load_lo(&b));                  \
        const __m512 bhi = _mm512_castsi512_ps(load_hi(&b));                  \
        store_lo(&r, _mm512_castps_si512(OPF(alo, klo(m), alo, blo)));        \
        store_hi(&r, _mm512_castps_si512(OPF(ahi, khi(m), ahi, bhi)));        \
      } else {                                                                \
        const __m512i alo = load_lo(&a);                                      \
        const __m512i ahi = load_hi(&a);                                      \
        store_lo(&r, OPI(alo, klo(m), alo, load_lo(&b)));                     \
        store_hi(&r, OPI(ahi, khi(m), ahi, load_hi(&b)));                     \
      }                                                                       \
      return;                                                                 \
    }                                                                         \
  }
#endif

/// r[i] = active ? a[i] + b[i] : a[i].
template <typename T>
inline void add(LaneMask m, WarpVar<T>& r, const WarpVar<T>& a,
                const WarpVar<T>& b) noexcept {
#if defined(GPUKSEL_SIMD_AVX512)
  GPUKSEL_LV_BINOP_512(_mm512_mask_add_ps, _mm512_mask_add_epi32)
#elif defined(GPUKSEL_SIMD_AVX2)
  if constexpr (lane32<T>) {
    if (enabled()) {
      using namespace v256;
      for (int g = 0; g < 4; ++g) {
        const __m256i av = load(&a, g);
        __m256i sum;
        if constexpr (std::is_same_v<T, float>) {
          sum = _mm256_castps_si256(_mm256_add_ps(
              _mm256_castsi256_ps(av), _mm256_castsi256_ps(load(&b, g))));
        } else {
          sum = _mm256_add_epi32(av, load(&b, g));
        }
        store(&r, g, blend(av, sum, mask_vec(m, g)));
      }
      return;
    }
  }
#endif
  // NaN note: an add where exactly one operand is NaN returns that NaN's
  // payload bit-exactly on every tier.  When BOTH operands are NaN the
  // result is a quiet NaN with an *unspecified* payload — compilers freely
  // commute the add (scalar addss and vaddps alike), and x86 keeps whichever
  // operand codegen put first.  No kernel adds two NaNs (accumulators start
  // finite), so the bit-identity contract carves this single case out.
  for (int i = 0; i < kWarpSize; ++i) {
    r[i] = lane_active(m, i) ? static_cast<T>(a[i] + b[i]) : a[i];
  }
}

/// r[i] = active ? a[i] - b[i] : a[i].
template <typename T>
inline void sub(LaneMask m, WarpVar<T>& r, const WarpVar<T>& a,
                const WarpVar<T>& b) noexcept {
#if defined(GPUKSEL_SIMD_AVX512)
  GPUKSEL_LV_BINOP_512(_mm512_mask_sub_ps, _mm512_mask_sub_epi32)
#elif defined(GPUKSEL_SIMD_AVX2)
  if constexpr (lane32<T>) {
    if (enabled()) {
      using namespace v256;
      for (int g = 0; g < 4; ++g) {
        const __m256i av = load(&a, g);
        __m256i dif;
        if constexpr (std::is_same_v<T, float>) {
          dif = _mm256_castps_si256(_mm256_sub_ps(
              _mm256_castsi256_ps(av), _mm256_castsi256_ps(load(&b, g))));
        } else {
          dif = _mm256_sub_epi32(av, load(&b, g));
        }
        store(&r, g, blend(av, dif, mask_vec(m, g)));
      }
      return;
    }
  }
#endif
  for (int i = 0; i < kWarpSize; ++i) {
    r[i] = lane_active(m, i) ? static_cast<T>(a[i] - b[i]) : a[i];
  }
}

#if defined(GPUKSEL_SIMD_AVX512)
#undef GPUKSEL_LV_BINOP_512
#endif

/// r[i] = active ? a[i] + b : a[i]  (immediate addend).
template <typename T>
inline void add_s(LaneMask m, WarpVar<T>& r, const WarpVar<T>& a,
                  T b) noexcept {
  const WarpVar<T> bv = WarpVar<T>::filled(b);
  add(m, r, a, bv);
}

/// r[i] = active ? a[i] * b : a[i]  (immediate multiplier).
template <typename T>
inline void mul_s(LaneMask m, WarpVar<T>& r, const WarpVar<T>& a,
                  T b) noexcept {
#if defined(GPUKSEL_SIMD_AVX512)
  if constexpr (lane32<T>) {
    if (enabled()) {
      using namespace v512;
      std::uint32_t bits;
      std::memcpy(&bits, &b, 4);
      if constexpr (std::is_same_v<T, float>) {
        const __m512 bv = _mm512_set1_ps(b);
        const __m512 alo = _mm512_castsi512_ps(load_lo(&a));
        const __m512 ahi = _mm512_castsi512_ps(load_hi(&a));
        store_lo(&r, _mm512_castps_si512(
                         _mm512_mask_mul_ps(alo, klo(m), alo, bv)));
        store_hi(&r, _mm512_castps_si512(
                         _mm512_mask_mul_ps(ahi, khi(m), ahi, bv)));
      } else {
        const __m512i bv = _mm512_set1_epi32(static_cast<int>(bits));
        const __m512i alo = load_lo(&a);
        const __m512i ahi = load_hi(&a);
        store_lo(&r, _mm512_mask_mullo_epi32(alo, klo(m), alo, bv));
        store_hi(&r, _mm512_mask_mullo_epi32(ahi, khi(m), ahi, bv));
      }
      return;
    }
  }
#elif defined(GPUKSEL_SIMD_AVX2)
  if constexpr (lane32<T>) {
    if (enabled()) {
      using namespace v256;
      std::uint32_t bits;
      std::memcpy(&bits, &b, 4);
      const __m256i bv = _mm256_set1_epi32(static_cast<int>(bits));
      for (int g = 0; g < 4; ++g) {
        const __m256i av = load(&a, g);
        __m256i prod;
        if constexpr (std::is_same_v<T, float>) {
          prod = _mm256_castps_si256(_mm256_mul_ps(_mm256_castsi256_ps(av),
                                                   _mm256_castsi256_ps(bv)));
        } else {
          prod = _mm256_mullo_epi32(av, bv);
        }
        store(&r, g, blend(av, prod, mask_vec(m, g)));
      }
      return;
    }
  }
#endif
  for (int i = 0; i < kWarpSize; ++i) {
    r[i] = lane_active(m, i) ? static_cast<T>(a[i] * b) : a[i];
  }
}

/// r[i] = (m & take) lane active ? a[i] : b[i]  (the predicated select).
template <typename T>
inline void select(LaneMask m, LaneMask take, WarpVar<T>& r,
                   const WarpVar<T>& a, const WarpVar<T>& b) noexcept {
  const LaneMask k = m & take;
#if defined(GPUKSEL_SIMD_AVX512)
  if constexpr (lane32<T>) {
    if (enabled()) {
      using namespace v512;
      store_lo(&r, _mm512_mask_mov_epi32(load_lo(&b), klo(k), load_lo(&a)));
      store_hi(&r, _mm512_mask_mov_epi32(load_hi(&b), khi(k), load_hi(&a)));
      return;
    }
  }
#elif defined(GPUKSEL_SIMD_AVX2)
  if constexpr (lane32<T>) {
    if (enabled()) {
      using namespace v256;
      for (int g = 0; g < 4; ++g) {
        store(&r, g, blend(load(&b, g), load(&a, g), mask_vec(k, g)));
      }
      return;
    }
  }
#endif
  for (int i = 0; i < kWarpSize; ++i) {
    r[i] = lane_active(k, i) ? a[i] : b[i];
  }
}

// --- fused address-generation ops (fresh registers, zero background) --------

/// r[i] = active ? a[i] * mul + addc : 0  (fresh register).
template <typename T>
inline void mad_s(LaneMask m, WarpVar<T>& r, const WarpVar<T>& a, T mul,
                  T addc) noexcept {
  static_assert(std::is_integral_v<T>, "mad_s is integer address math");
#if defined(GPUKSEL_SIMD_AVX512)
  if constexpr (lane32<T>) {
    if (enabled()) {
      using namespace v512;
      const __m512i mv = _mm512_set1_epi32(static_cast<int>(mul));
      const __m512i av = _mm512_set1_epi32(static_cast<int>(addc));
      store_lo(&r, _mm512_maskz_add_epi32(
                       klo(m), _mm512_mullo_epi32(load_lo(&a), mv), av));
      store_hi(&r, _mm512_maskz_add_epi32(
                       khi(m), _mm512_mullo_epi32(load_hi(&a), mv), av));
      return;
    }
  }
#elif defined(GPUKSEL_SIMD_AVX2)
  if constexpr (lane32<T>) {
    if (enabled()) {
      using namespace v256;
      const __m256i mv = _mm256_set1_epi32(static_cast<int>(mul));
      const __m256i av = _mm256_set1_epi32(static_cast<int>(addc));
      for (int g = 0; g < 4; ++g) {
        const __m256i val =
            _mm256_add_epi32(_mm256_mullo_epi32(load(&a, g), mv), av);
        store(&r, g, _mm256_and_si256(val, mask_vec(m, g)));
      }
      return;
    }
  }
#endif
  for (int i = 0; i < kWarpSize; ++i) {
    r[i] = lane_active(m, i) ? static_cast<T>(a[i] * mul + addc) : T{0};
  }
}

/// r[i] = active ? a[i] * mul + b[i] : 0  (fresh register).
template <typename T>
inline void mad_v(LaneMask m, WarpVar<T>& r, const WarpVar<T>& a, T mul,
                  const WarpVar<T>& b) noexcept {
  static_assert(std::is_integral_v<T>, "mad_v is integer address math");
#if defined(GPUKSEL_SIMD_AVX512)
  if constexpr (lane32<T>) {
    if (enabled()) {
      using namespace v512;
      const __m512i mv = _mm512_set1_epi32(static_cast<int>(mul));
      store_lo(&r, _mm512_maskz_add_epi32(
                       klo(m), _mm512_mullo_epi32(load_lo(&a), mv),
                       load_lo(&b)));
      store_hi(&r, _mm512_maskz_add_epi32(
                       khi(m), _mm512_mullo_epi32(load_hi(&a), mv),
                       load_hi(&b)));
      return;
    }
  }
#elif defined(GPUKSEL_SIMD_AVX2)
  if constexpr (lane32<T>) {
    if (enabled()) {
      using namespace v256;
      const __m256i mv = _mm256_set1_epi32(static_cast<int>(mul));
      for (int g = 0; g < 4; ++g) {
        const __m256i val = _mm256_add_epi32(
            _mm256_mullo_epi32(load(&a, g), mv), load(&b, g));
        store(&r, g, _mm256_and_si256(val, mask_vec(m, g)));
      }
      return;
    }
  }
#endif
  for (int i = 0; i < kWarpSize; ++i) {
    r[i] = lane_active(m, i) ? static_cast<T>(a[i] * mul + b[i]) : T{0};
  }
}

/// r[i] = active ? base + i : 0  (the ubiquitous thread-index register).
template <typename T>
inline void lane_offset(LaneMask m, WarpVar<T>& r, T base) noexcept {
  static_assert(std::is_integral_v<T>, "lane_offset is integer address math");
#if defined(GPUKSEL_SIMD_AVX512)
  if constexpr (lane32<T>) {
    if (enabled()) {
      using namespace v512;
      const __m512i bv = _mm512_set1_epi32(static_cast<int>(base));
      store_lo(&r, _mm512_maskz_add_epi32(klo(m), iota_lo(), bv));
      store_hi(&r, _mm512_maskz_add_epi32(khi(m), iota_hi(), bv));
      return;
    }
  }
#elif defined(GPUKSEL_SIMD_AVX2)
  if constexpr (lane32<T>) {
    if (enabled()) {
      using namespace v256;
      const __m256i bv = _mm256_set1_epi32(static_cast<int>(base));
      for (int g = 0; g < 4; ++g) {
        const __m256i io = _mm256_add_epi32(
            _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7),
            _mm256_set1_epi32(8 * g));
        store(&r, g,
              _mm256_and_si256(_mm256_add_epi32(io, bv), mask_vec(m, g)));
      }
      return;
    }
  }
#endif
  for (int i = 0; i < kWarpSize; ++i) {
    r[i] = lane_active(m, i) ? static_cast<T>(base + static_cast<T>(i)) : T{0};
  }
}

/// acc[i] = active ? acc[i] + d[i]*d[i] : acc[i] — the distance-kernel inner
/// step, kept as two separately rounded IEEE ops (mul then add, no FMA).
inline void add_sq(LaneMask m, WarpVar<float>& acc,
                   const WarpVar<float>& d) noexcept {
#if defined(GPUKSEL_SIMD_AVX512)
  if (enabled()) {
    using namespace v512;
    const __m512 alo = _mm512_castsi512_ps(load_lo(&acc));
    const __m512 ahi = _mm512_castsi512_ps(load_hi(&acc));
    const __m512 dlo = _mm512_castsi512_ps(load_lo(&d));
    const __m512 dhi = _mm512_castsi512_ps(load_hi(&d));
    store_lo(&acc, _mm512_castps_si512(_mm512_mask_add_ps(
                       alo, klo(m), alo, _mm512_mul_ps(dlo, dlo))));
    store_hi(&acc, _mm512_castps_si512(_mm512_mask_add_ps(
                       ahi, khi(m), ahi, _mm512_mul_ps(dhi, dhi))));
    return;
  }
#elif defined(GPUKSEL_SIMD_AVX2)
  if (enabled()) {
    using namespace v256;
    for (int g = 0; g < 4; ++g) {
      const __m256 av = _mm256_castsi256_ps(load(&acc, g));
      const __m256 dv = _mm256_castsi256_ps(load(&d, g));
      const __m256 sum = _mm256_add_ps(av, _mm256_mul_ps(dv, dv));
      store(&acc, g,
            blend(_mm256_castps_si256(av), _mm256_castps_si256(sum),
                  mask_vec(m, g)));
    }
    return;
  }
#endif
  for (int i = 0; i < kWarpSize; ++i) {
    if (lane_active(m, i)) {
      const float sq = d[i] * d[i];
      acc[i] = acc[i] + sq;  // both-NaN payload unspecified; see add()
    }
  }
}

/// r[i] = active ? (i >= delta ? src[i-delta] : 0) : r[i] — the Hillis-Steele
/// scan shift.  r and src must not alias.
inline void shift_up_zero(LaneMask m, WarpVar<std::uint32_t>& r,
                          const WarpVar<std::uint32_t>& src,
                          int delta) noexcept {
#if defined(GPUKSEL_SIMD_AVX512)
  if (enabled() && delta >= 0 && delta < kWarpSize) {
    using namespace v512;
    const __m512i dv = _mm512_set1_epi32(delta);
    const __m512i idx_lo = _mm512_sub_epi32(iota_lo(), dv);
    const __m512i idx_hi = _mm512_sub_epi32(iota_hi(), dv);
    // Lanes with i < delta have a negative selector; mask them to zero.
    const __mmask16 ok_lo =
        _mm512_cmpge_epi32_mask(idx_lo, _mm512_setzero_si512());
    const __mmask16 ok_hi =
        _mm512_cmpge_epi32_mask(idx_hi, _mm512_setzero_si512());
    const __m512i slo = load_lo(&src);
    const __m512i shi = load_hi(&src);
    const __m512i val_lo =
        _mm512_maskz_permutex2var_epi32(ok_lo, slo, idx_lo, shi);
    const __m512i val_hi =
        _mm512_maskz_permutex2var_epi32(ok_hi, slo, idx_hi, shi);
    store_lo(&r, _mm512_mask_mov_epi32(load_lo(&r), klo(m), val_lo));
    store_hi(&r, _mm512_mask_mov_epi32(load_hi(&r), khi(m), val_hi));
    return;
  }
#endif
  for (int i = 0; i < kWarpSize; ++i) {
    if (lane_active(m, i)) {
      r[i] = i >= delta ? src[i - delta] : 0u;
    }
  }
}

/// r[i] = active ? 2*stride*(p/stride) + p%stride : 0, with p = base + i —
/// the bitonic network's lower-pair position for per-lane pair p.  `stride`
/// must be a power of two (every bitonic stage's is), so the divmod is a bit
/// splice: shift the high bits of p left by one and keep the low log2(stride)
/// bits in place.
inline void bitonic_low_index(LaneMask m, WarpVar<std::uint32_t>& r,
                              std::uint32_t base, std::uint32_t stride)
    noexcept {
  const std::uint32_t lo_bits = stride - 1u;
#if defined(GPUKSEL_SIMD_AVX512)
  if (enabled()) {
    using namespace v512;
    const __m512i bv = _mm512_set1_epi32(static_cast<int>(base));
    const __m512i lm = _mm512_set1_epi32(static_cast<int>(lo_bits));
    auto half = [&](__m512i iota, __mmask16 k) {
      const __m512i p = _mm512_add_epi32(iota, bv);
      const __m512i low = _mm512_and_si512(p, lm);
      const __m512i high = _mm512_slli_epi32(_mm512_andnot_si512(lm, p), 1);
      return _mm512_maskz_or_epi32(k, high, low);
    };
    store_lo(&r, half(iota_lo(), klo(m)));
    store_hi(&r, half(iota_hi(), khi(m)));
    return;
  }
#endif
  for (int i = 0; i < kWarpSize; ++i) {
    if (lane_active(m, i)) {
      const std::uint32_t p = base + static_cast<std::uint32_t>(i);
      r[i] = 2u * stride * (p / stride) + (p % stride);
    } else {
      r[i] = 0u;
    }
  }
}

// --- predicates -------------------------------------------------------------

namespace detail {

enum class Cmp { kLt, kLe, kGt, kGe, kEq };

template <Cmp C, typename T>
inline bool cmp1(T a, T b) noexcept {
  if constexpr (C == Cmp::kLt) return a < b;
  if constexpr (C == Cmp::kLe) return a <= b;
  if constexpr (C == Cmp::kGt) return a > b;
  if constexpr (C == Cmp::kGe) return a >= b;
  return a == b;
}

#if defined(GPUKSEL_SIMD_AVX512)
template <Cmp C, typename T>
inline __mmask16 cmp512(__mmask16 k, __m512i a, __m512i b) noexcept {
  if constexpr (std::is_same_v<T, float>) {
    const __m512 af = _mm512_castsi512_ps(a);
    const __m512 bf = _mm512_castsi512_ps(b);
    // Ordered-quiet predicates: false on NaN operands, matching scalar.
    if constexpr (C == Cmp::kLt)
      return _mm512_mask_cmp_ps_mask(k, af, bf, _CMP_LT_OQ);
    if constexpr (C == Cmp::kLe)
      return _mm512_mask_cmp_ps_mask(k, af, bf, _CMP_LE_OQ);
    if constexpr (C == Cmp::kGt)
      return _mm512_mask_cmp_ps_mask(k, af, bf, _CMP_GT_OQ);
    if constexpr (C == Cmp::kGe)
      return _mm512_mask_cmp_ps_mask(k, af, bf, _CMP_GE_OQ);
    return _mm512_mask_cmp_ps_mask(k, af, bf, _CMP_EQ_OQ);
  } else if constexpr (std::is_signed_v<T>) {
    if constexpr (C == Cmp::kLt) return _mm512_mask_cmplt_epi32_mask(k, a, b);
    if constexpr (C == Cmp::kLe) return _mm512_mask_cmple_epi32_mask(k, a, b);
    if constexpr (C == Cmp::kGt) return _mm512_mask_cmpgt_epi32_mask(k, a, b);
    if constexpr (C == Cmp::kGe) return _mm512_mask_cmpge_epi32_mask(k, a, b);
    return _mm512_mask_cmpeq_epi32_mask(k, a, b);
  } else {
    if constexpr (C == Cmp::kLt) return _mm512_mask_cmplt_epu32_mask(k, a, b);
    if constexpr (C == Cmp::kLe) return _mm512_mask_cmple_epu32_mask(k, a, b);
    if constexpr (C == Cmp::kGt) return _mm512_mask_cmpgt_epu32_mask(k, a, b);
    if constexpr (C == Cmp::kGe) return _mm512_mask_cmpge_epu32_mask(k, a, b);
    return _mm512_mask_cmpeq_epu32_mask(k, a, b);
  }
}
#endif

#if defined(GPUKSEL_SIMD_AVX2) && !defined(GPUKSEL_SIMD_AVX512)
template <Cmp C, typename T>
inline __m256i cmp256(__m256i a, __m256i b) noexcept {
  if constexpr (std::is_same_v<T, float>) {
    const __m256 af = _mm256_castsi256_ps(a);
    const __m256 bf = _mm256_castsi256_ps(b);
    __m256 r;
    if constexpr (C == Cmp::kLt) r = _mm256_cmp_ps(af, bf, _CMP_LT_OQ);
    else if constexpr (C == Cmp::kLe) r = _mm256_cmp_ps(af, bf, _CMP_LE_OQ);
    else if constexpr (C == Cmp::kGt) r = _mm256_cmp_ps(af, bf, _CMP_GT_OQ);
    else if constexpr (C == Cmp::kGe) r = _mm256_cmp_ps(af, bf, _CMP_GE_OQ);
    else r = _mm256_cmp_ps(af, bf, _CMP_EQ_OQ);
    return _mm256_castps_si256(r);
  } else if constexpr (std::is_signed_v<T>) {
    if constexpr (C == Cmp::kLt) return _mm256_cmpgt_epi32(b, a);
    if constexpr (C == Cmp::kLe)
      return _mm256_xor_si256(_mm256_cmpgt_epi32(a, b),
                              _mm256_set1_epi32(-1));
    if constexpr (C == Cmp::kGt) return _mm256_cmpgt_epi32(a, b);
    if constexpr (C == Cmp::kGe)
      return _mm256_xor_si256(_mm256_cmpgt_epi32(b, a),
                              _mm256_set1_epi32(-1));
    return _mm256_cmpeq_epi32(a, b);
  } else {
    if constexpr (C == Cmp::kLt) return v256::cmplt_epu32(a, b);
    if constexpr (C == Cmp::kLe)
      return _mm256_xor_si256(v256::cmplt_epu32(b, a),
                              _mm256_set1_epi32(-1));
    if constexpr (C == Cmp::kGt) return v256::cmplt_epu32(b, a);
    if constexpr (C == Cmp::kGe)
      return _mm256_xor_si256(v256::cmplt_epu32(a, b),
                              _mm256_set1_epi32(-1));
    return _mm256_cmpeq_epi32(a, b);
  }
}
#endif

template <Cmp C, typename T>
inline LaneMask cmp_vv(LaneMask m, const WarpVar<T>& a,
                       const WarpVar<T>& b) noexcept {
#if defined(GPUKSEL_SIMD_AVX512)
  if constexpr (lane32<T>) {
    if (enabled()) {
      using namespace v512;
      return join(cmp512<C, T>(klo(m), load_lo(&a), load_lo(&b)),
                  cmp512<C, T>(khi(m), load_hi(&a), load_hi(&b)));
    }
  }
#elif defined(GPUKSEL_SIMD_AVX2)
  if constexpr (lane32<T>) {
    if (enabled()) {
      using namespace v256;
      LaneMask out = 0;
      for (int g = 0; g < 4; ++g) {
        out |= mask_bits(cmp256<C, T>(load(&a, g), load(&b, g)), g);
      }
      return out & m;
    }
  }
#endif
  LaneMask out = 0;
  for (int i = 0; i < kWarpSize; ++i) {
    if (lane_active(m, i) && cmp1<C>(a[i], b[i])) out |= lane_bit(i);
  }
  return out;
}

}  // namespace detail

template <typename T>
inline LaneMask cmp_lt(LaneMask m, const WarpVar<T>& a,
                       const WarpVar<T>& b) noexcept {
  return detail::cmp_vv<detail::Cmp::kLt>(m, a, b);
}
template <typename T>
inline LaneMask cmp_le(LaneMask m, const WarpVar<T>& a,
                       const WarpVar<T>& b) noexcept {
  return detail::cmp_vv<detail::Cmp::kLe>(m, a, b);
}
template <typename T>
inline LaneMask cmp_gt(LaneMask m, const WarpVar<T>& a,
                       const WarpVar<T>& b) noexcept {
  return detail::cmp_vv<detail::Cmp::kGt>(m, a, b);
}
template <typename T>
inline LaneMask cmp_ge(LaneMask m, const WarpVar<T>& a,
                       const WarpVar<T>& b) noexcept {
  return detail::cmp_vv<detail::Cmp::kGe>(m, a, b);
}
template <typename T>
inline LaneMask cmp_eq(LaneMask m, const WarpVar<T>& a,
                       const WarpVar<T>& b) noexcept {
  return detail::cmp_vv<detail::Cmp::kEq>(m, a, b);
}
template <typename T>
inline LaneMask cmp_lt_s(LaneMask m, const WarpVar<T>& a, T b) noexcept {
  return detail::cmp_vv<detail::Cmp::kLt>(m, a, WarpVar<T>::filled(b));
}
template <typename T>
inline LaneMask cmp_gt_s(LaneMask m, const WarpVar<T>& a, T b) noexcept {
  return detail::cmp_vv<detail::Cmp::kGt>(m, a, WarpVar<T>::filled(b));
}
template <typename T>
inline LaneMask cmp_eq_s(LaneMask m, const WarpVar<T>& a, T b) noexcept {
  return detail::cmp_vv<detail::Cmp::kEq>(m, a, WarpVar<T>::filled(b));
}

/// Lexicographic (dist, index) less-than over active lanes:
/// (ad < bd) || (ad == bd && ai < bi).  Matches the scalar entry compare for
/// every payload: NaN dists compare false on both legs, +/-0 compare equal.
inline LaneMask cmp_lex_lt(LaneMask m, const WarpVar<float>& ad,
                           const WarpVar<std::uint32_t>& ai,
                           const WarpVar<float>& bd,
                           const WarpVar<std::uint32_t>& bi) noexcept {
  const LaneMask lt = cmp_lt(m, ad, bd);
  const LaneMask eq = detail::cmp_vv<detail::Cmp::kEq>(m, ad, bd);
  const LaneMask ilt = cmp_lt(m, ai, bi);
  return (lt | (eq & ilt)) & m;
}

/// Mask of active lanes where base + i < bound (u32, fused iota compare).
inline LaneMask cmp_iota_lt(LaneMask m, std::uint32_t base,
                            std::uint32_t bound) noexcept {
  // base + i never wraps in kernel usage (base is a tile offset); the scalar
  // reference is the same expression, so wrap behavior matches regardless.
  LaneMask out = 0;
#if defined(GPUKSEL_SIMD_AVX512)
  if (enabled()) {
    using namespace v512;
    const __m512i bv = _mm512_set1_epi32(static_cast<int>(base));
    const __m512i bd = _mm512_set1_epi32(static_cast<int>(bound));
    const __mmask16 lo = _mm512_mask_cmplt_epu32_mask(
        klo(m), _mm512_add_epi32(iota_lo(), bv), bd);
    const __mmask16 hi = _mm512_mask_cmplt_epu32_mask(
        khi(m), _mm512_add_epi32(iota_hi(), bv), bd);
    return join(lo, hi);
  }
#endif
  for (int i = 0; i < kWarpSize; ++i) {
    if (lane_active(m, i) &&
        base + static_cast<std::uint32_t>(i) < bound) {
      out |= lane_bit(i);
    }
  }
  return out;
}

/// Mask of active lanes where a[i] + 1 < bound (u32, the queue-advance test).
inline LaneMask cmp_inc_lt(LaneMask m, const WarpVar<std::uint32_t>& a,
                           std::uint32_t bound) noexcept {
#if defined(GPUKSEL_SIMD_AVX512)
  if (enabled()) {
    using namespace v512;
    const __m512i one = _mm512_set1_epi32(1);
    const __m512i bd = _mm512_set1_epi32(static_cast<int>(bound));
    const __mmask16 lo = _mm512_mask_cmplt_epu32_mask(
        klo(m), _mm512_add_epi32(load_lo(&a), one), bd);
    const __mmask16 hi = _mm512_mask_cmplt_epu32_mask(
        khi(m), _mm512_add_epi32(load_hi(&a), one), bd);
    return join(lo, hi);
  }
#endif
  LaneMask out = 0;
  for (int i = 0; i < kWarpSize; ++i) {
    if (lane_active(m, i) && a[i] + 1u < bound) out |= lane_bit(i);
  }
  return out;
}

/// Mask of active lanes where (a[i] & bits) != 0 — the bitonic direction
/// test and other single-instruction bit probes.
inline LaneMask test_bits(LaneMask m, const WarpVar<std::uint32_t>& a,
                          std::uint32_t bits) noexcept {
#if defined(GPUKSEL_SIMD_AVX512)
  if (enabled()) {
    using namespace v512;
    const __m512i bv = _mm512_set1_epi32(static_cast<int>(bits));
    return join(_mm512_mask_test_epi32_mask(klo(m), load_lo(&a), bv),
                _mm512_mask_test_epi32_mask(khi(m), load_hi(&a), bv));
  }
#endif
  LaneMask out = 0;
  for (int i = 0; i < kWarpSize; ++i) {
    if (lane_active(m, i) && (a[i] & bits) != 0u) out |= lane_bit(i);
  }
  return out;
}

/// True iff a and b hold identical bits in every one of the 32 lanes (a host
/// helper for memoizing pure per-access models, not a charged warp op).
inline bool equal_all(const WarpVar<std::uint32_t>& a,
                      const WarpVar<std::uint32_t>& b) noexcept {
#if defined(GPUKSEL_SIMD_AVX512)
  if (enabled()) {
    using namespace v512;
    return _mm512_cmpneq_epi32_mask(load_lo(&a), load_lo(&b)) == 0 &&
           _mm512_cmpneq_epi32_mask(load_hi(&a), load_hi(&b)) == 0;
  }
#endif
  return std::memcmp(&a.lanes, &b.lanes, sizeof(a.lanes)) == 0;
}

// --- shuffles ---------------------------------------------------------------

/// r[i] = active ? src[from[i] & 31] : src[i].
template <typename T>
inline void permute(LaneMask m, WarpVar<T>& r, const WarpVar<T>& src,
                    const WarpVar<std::uint32_t>& from) noexcept {
#if defined(GPUKSEL_SIMD_AVX512)
  if constexpr (lane32<T>) {
    if (enabled()) {
      using namespace v512;
      // vpermt2d uses the selector's low 5 bits — the & 31 is free.
      const __m512i slo = load_lo(&src);
      const __m512i shi = load_hi(&src);
      store_lo(&r, _mm512_mask_permutex2var_epi32(slo, klo(m), load_lo(&from),
                                                  shi));
      // mask_permutex2var keeps *a* (first arg) on masked-off lanes, which
      // would be src[i-0..15] — not src[i] — for the high half, so blend
      // explicitly instead.
      const __m512i phi = _mm512_permutex2var_epi32(slo, load_hi(&from), shi);
      store_hi(&r, _mm512_mask_mov_epi32(shi, khi(m), phi));
      return;
    }
  }
#elif defined(GPUKSEL_SIMD_AVX2)
  if constexpr (lane32<T>) {
    if (enabled()) {
      using namespace v256;
      // Gather from the register spilled to (aligned, in-bounds) memory.
      const __m256i five = _mm256_set1_epi32(31);
      const int* base = reinterpret_cast<const int*>(&src);
      for (int g = 0; g < 4; ++g) {
        const __m256i idx = _mm256_and_si256(load(&from, g), five);
        const __m256i val = _mm256_i32gather_epi32(base, idx, 4);
        store(&r, g, blend(load(&src, g), val, mask_vec(m, g)));
      }
      return;
    }
  }
#endif
  for (int i = 0; i < kWarpSize; ++i) {
    r[i] = lane_active(m, i)
               ? src[from[i] % static_cast<std::uint32_t>(kWarpSize)]
               : src[i];
  }
}

/// r[i] = active ? src[i ^ lanemask] : src[i]  (butterfly step).
template <typename T>
inline void permute_xor(LaneMask m, WarpVar<T>& r, const WarpVar<T>& src,
                        int lanemask) noexcept {
#if defined(GPUKSEL_SIMD_AVX512)
  if constexpr (lane32<T>) {
    if (enabled()) {
      using namespace v512;
      const __m512i lm = _mm512_set1_epi32(lanemask);
      const __m512i slo = load_lo(&src);
      const __m512i shi = load_hi(&src);
      const __m512i plo = _mm512_permutex2var_epi32(
          slo, _mm512_xor_si512(iota_lo(), lm), shi);
      const __m512i phi = _mm512_permutex2var_epi32(
          slo, _mm512_xor_si512(iota_hi(), lm), shi);
      store_lo(&r, _mm512_mask_mov_epi32(slo, klo(m), plo));
      store_hi(&r, _mm512_mask_mov_epi32(shi, khi(m), phi));
      return;
    }
  }
#elif defined(GPUKSEL_SIMD_AVX2)
  if constexpr (lane32<T>) {
    if (enabled() && lanemask >= 0 && lanemask < kWarpSize) {
      using namespace v256;
      // i ^ lm decomposes: swap 8-lane groups by lm>>3, rotate within the
      // group by lm&7 via permutevar8x32.
      const int xg = lanemask >> 3;
      const __m256i idx = _mm256_xor_si256(
          _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7),
          _mm256_set1_epi32(lanemask & 7));
      for (int g = 0; g < 4; ++g) {
        const __m256i val =
            _mm256_permutevar8x32_epi32(load(&src, g ^ xg), idx);
        store(&r, g, blend(load(&src, g), val, mask_vec(m, g)));
      }
      return;
    }
  }
#endif
  for (int i = 0; i < kWarpSize; ++i) {
    r[i] = lane_active(m, i) ? src[i ^ lanemask] : src[i];
  }
}

/// r[i] = active ? src[src_lane & 31] : src[i]  (broadcast).
template <typename T>
inline void broadcast(LaneMask m, WarpVar<T>& r, const WarpVar<T>& src,
                      int src_lane) noexcept {
  const T v = src[src_lane % kWarpSize];
  if (&r != &src) r = src;
  fill(m, r, v);
}

/// Mask of active lanes whose shuffle source lane (from[i] & 31) is inactive
/// in m — the lockstep violation detector for general shuffles.
inline LaneMask permute_inactive_sources(LaneMask m,
                                         const WarpVar<std::uint32_t>& from)
    noexcept {
#if defined(GPUKSEL_SIMD_AVX512)
  if (enabled()) {
    using namespace v512;
    // Expand m into a per-lane 0/1 table and permute it by `from`.
    const __m512i mv = _mm512_set1_epi32(static_cast<int>(m));
    const __m512i one = _mm512_set1_epi32(1);
    const __m512i tbl_lo =
        _mm512_and_si512(_mm512_srlv_epi32(mv, iota_lo()), one);
    const __m512i tbl_hi =
        _mm512_and_si512(_mm512_srlv_epi32(mv, iota_hi()), one);
    const __m512i src_ok_lo =
        _mm512_permutex2var_epi32(tbl_lo, load_lo(&from), tbl_hi);
    const __m512i src_ok_hi =
        _mm512_permutex2var_epi32(tbl_lo, load_hi(&from), tbl_hi);
    const __mmask16 bad_lo = _mm512_mask_cmpeq_epi32_mask(
        klo(m), src_ok_lo, _mm512_setzero_si512());
    const __mmask16 bad_hi = _mm512_mask_cmpeq_epi32_mask(
        khi(m), src_ok_hi, _mm512_setzero_si512());
    return join(bad_lo, bad_hi);
  }
#endif
  LaneMask bad = 0;
  for (int i = 0; i < kWarpSize; ++i) {
    if (lane_active(m, i) &&
        !lane_active(m, static_cast<int>(
                            from[i] % static_cast<std::uint32_t>(kWarpSize)))) {
      bad |= lane_bit(i);
    }
  }
  return bad;
}

/// Same violation mask for the xor butterfly: bit i set iff lane i is active
/// but lane i^lanemask is not.  Pure bit math — permuting the mask by the
/// xor pattern is a butterfly swap of its bits per set bit of lanemask.
inline LaneMask xor_inactive_sources(LaneMask m, int lanemask) noexcept {
  LaneMask src_active = m;
  constexpr LaneMask kKeep[5] = {0x55555555u, 0x33333333u, 0x0f0f0f0fu,
                                 0x00ff00ffu, 0x0000ffffu};
  for (int s = 0; s < 5; ++s) {
    const int b = 1 << s;
    if ((lanemask & b) == 0) continue;
    // Swap bit blocks of width b: bit i of the result = bit i^b of input.
    const LaneMask keep = kKeep[s];
    src_active = ((src_active & keep) << b) | ((src_active >> b) & keep);
  }
  return m & ~src_active;
}

// --- global memory ----------------------------------------------------------

/// Contiguity probe: if every active lane's index equals c + lane for one
/// base c (so the access is a unit-stride run — the dominant pattern: lane
/// offsets into interleaved thread arrays and distance rows), returns c;
/// otherwise -1.  Returns -1 when the vector backend is off or the mask is
/// empty: the scalar engine has no bulk load/store to exploit it, and
/// keeping the probe vector-only means the scalar reference path is
/// byte-for-byte the seed engine's.  Callers use a non-negative c to take
/// masked contiguous loads/stores instead of hardware gather/scatter and to
/// collapse the transaction/collision models to closed forms — all of which
/// are exact, not approximations: a unit-stride run of 4-byte lanes touches
/// ceil-range segments with no duplicate addresses by construction.
[[nodiscard]] inline std::int64_t contig_base(
    LaneMask m, const WarpVar<std::uint32_t>& idx) noexcept {
  if (m == 0 || !enabled()) return -1;
  const int first = lowest_lane(m);
  const std::uint32_t f = idx[first];
  if (f < static_cast<std::uint32_t>(first)) return -1;  // c would wrap
  const std::uint32_t c = f - static_cast<std::uint32_t>(first);
#if defined(GPUKSEL_SIMD_AVX512)
  using namespace v512;
  const __m512i cv = _mm512_set1_epi32(static_cast<int>(c));
  const __mmask16 bad_lo = _mm512_mask_cmpneq_epu32_mask(
      klo(m), load_lo(&idx), _mm512_add_epi32(cv, iota_lo()));
  const __mmask16 bad_hi = _mm512_mask_cmpneq_epu32_mask(
      khi(m), load_hi(&idx), _mm512_add_epi32(cv, iota_hi()));
  if ((static_cast<std::uint32_t>(bad_lo) |
       static_cast<std::uint32_t>(bad_hi)) != 0) {
    return -1;
  }
  return static_cast<std::int64_t>(c);
#elif defined(GPUKSEL_SIMD_AVX2)
  using namespace v256;
  const __m256i iota8 = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  for (int g = 0; g < 4; ++g) {
    const __m256i expect = _mm256_add_epi32(
        _mm256_set1_epi32(static_cast<int>(c + 8u * static_cast<unsigned>(g))),
        iota8);
    const LaneMask eq = mask_bits(_mm256_cmpeq_epi32(load(&idx, g), expect), g);
    const LaneMask want = m & (0xffu << (8 * g));
    if ((eq & want) != want) return -1;
  }
  return static_cast<std::int64_t>(c);
#else
  return -1;  // unreachable: enabled() is constant-false without a tier
#endif
}

/// gather() specialised for a contiguous run established by contig_base():
/// r[i] = active ? base[c + i] : 0, via masked unit-stride loads (masked-out
/// elements are architecturally suppressed — never read, never faulted).
template <typename T>
inline void gather_contig(LaneMask m, WarpVar<T>& r, const T* base,
                          std::int64_t c) noexcept {
#if defined(GPUKSEL_SIMD_AVX512) && !defined(GPUKSEL_BOUNDS_CHECK)
  if constexpr (lane32<T>) {
    if (enabled()) {
      using namespace v512;
      const T* p = base + c;
      store_lo(&r, _mm512_maskz_loadu_epi32(klo(m), p));
      store_hi(&r, _mm512_maskz_loadu_epi32(khi(m), p + 16));
      return;
    }
  }
#elif defined(GPUKSEL_SIMD_AVX2) && !defined(GPUKSEL_BOUNDS_CHECK)
  if constexpr (lane32<T>) {
    if (enabled()) {
      using namespace v256;
      const int* p = reinterpret_cast<const int*>(base + c);
      for (int g = 0; g < 4; ++g) {
        store(&r, g, _mm256_maskload_epi32(p + 8 * g, mask_vec(m, g)));
      }
      return;
    }
  }
#endif
  for (int i = 0; i < kWarpSize; ++i) {
    r[i] = lane_active(m, i)
               ? base[static_cast<std::size_t>(c) + static_cast<unsigned>(i)]
               : T{};
  }
}

/// scatter() specialised for a contiguous run: base[c + i] = v[i] for active
/// lanes.  Unit stride means all addresses are distinct, so there is no
/// collision order to preserve; masked-out elements are never written.
template <typename T>
inline void scatter_contig(LaneMask m, T* base, std::int64_t c,
                           const WarpVar<T>& v) noexcept {
#if defined(GPUKSEL_SIMD_AVX512) && !defined(GPUKSEL_BOUNDS_CHECK)
  if constexpr (lane32<T>) {
    if (enabled()) {
      using namespace v512;
      T* p = base + c;
      _mm512_mask_storeu_epi32(p, klo(m), load_lo(&v));
      _mm512_mask_storeu_epi32(p + 16, khi(m), load_hi(&v));
      return;
    }
  }
#elif defined(GPUKSEL_SIMD_AVX2) && !defined(GPUKSEL_BOUNDS_CHECK)
  if constexpr (lane32<T>) {
    if (enabled()) {
      using namespace v256;
      int* p = reinterpret_cast<int*>(base + c);
      for (int g = 0; g < 4; ++g) {
        _mm256_maskstore_epi32(p + 8 * g, mask_vec(m, g), load(&v, g));
      }
      return;
    }
  }
#endif
  for (int i = 0; i < kWarpSize; ++i) {
    if (lane_active(m, i)) {
      base[static_cast<std::size_t>(c) + static_cast<unsigned>(i)] = v[i];
    }
  }
}

/// r[i] = active ? base[idx[i]] : 0  (gather; idx must be in bounds for
/// active lanes — the caller has either checked or accepted UB, exactly as
/// the scalar loop would).
template <typename T>
inline void gather(LaneMask m, WarpVar<T>& r, const T* base,
                   const WarpVar<std::uint32_t>& idx) noexcept {
#if defined(GPUKSEL_SIMD_AVX512) && !defined(GPUKSEL_BOUNDS_CHECK)
  if constexpr (lane32<T>) {
    if (enabled()) {
      using namespace v512;
      const __m512i lo = _mm512_mask_i32gather_epi32(
          _mm512_setzero_si512(), klo(m), load_lo(&idx), base, 4);
      const __m512i hi = _mm512_mask_i32gather_epi32(
          _mm512_setzero_si512(), khi(m), load_hi(&idx), base, 4);
      store_lo(&r, lo);
      store_hi(&r, hi);
      return;
    }
  }
#elif defined(GPUKSEL_SIMD_AVX2) && !defined(GPUKSEL_BOUNDS_CHECK)
  if constexpr (lane32<T>) {
    if (enabled()) {
      using namespace v256;
      for (int g = 0; g < 4; ++g) {
        const __m256i mv = mask_vec(m, g);
        const __m256i val = _mm256_mask_i32gather_epi32(
            _mm256_setzero_si256(), reinterpret_cast<const int*>(base),
            load(&idx, g), mv, 4);
        store(&r, g, val);
      }
      return;
    }
  }
#endif
  for (int i = 0; i < kWarpSize; ++i) {
    r[i] = lane_active(m, i) ? base[idx[i]] : T{};
  }
}

/// base[idx[i]] = v[i] for active lanes, committed in lane order (highest
/// lane wins a collision) — AVX-512 scatter guarantees LSB-to-MSB commit.
template <typename T>
inline void scatter(LaneMask m, T* base, const WarpVar<std::uint32_t>& idx,
                    const WarpVar<T>& v) noexcept {
#if defined(GPUKSEL_SIMD_AVX512) && !defined(GPUKSEL_BOUNDS_CHECK)
  if constexpr (lane32<T>) {
    if (enabled()) {
      using namespace v512;
      _mm512_mask_i32scatter_epi32(base, klo(m), load_lo(&idx), load_lo(&v),
                                   4);
      _mm512_mask_i32scatter_epi32(base, khi(m), load_hi(&idx), load_hi(&v),
                                   4);
      return;
    }
  }
#endif
  for (int i = 0; i < kWarpSize; ++i) {
    if (lane_active(m, i)) base[idx[i]] = v[i];
  }
}

// --- sanitizer fast paths ---------------------------------------------------

/// Whole-buffer shadow rebuild: shadow[i] = the 7-bit XOR-fold word of
/// data[i] (bit-identical to shadow_of<T> for 4-byte T).  Used when a host
/// write dirties a buffer and the next span() models a fresh upload; the
/// lane engine folds 16 elements per step.
template <typename T>
inline void shadow_fill(const T* data, std::uint32_t* shadow,
                        std::size_t n) noexcept {
  static_assert(sizeof(T) == 4, "vector shadow fold is 4-byte only");
  std::size_t i = 0;
#if defined(GPUKSEL_SIMD_AVX512)
  if (enabled()) {
    const __m512i x80 = _mm512_set1_epi32(0x80);
    const __m512i x7f = _mm512_set1_epi32(0x7f);
    const __m512i xff = _mm512_set1_epi32(0xff);
    for (; i + 16 <= n; i += 16) {
      __m512i t = _mm512_loadu_si512(data + i);
      t = _mm512_xor_si512(t, _mm512_srli_epi32(t, 16));
      t = _mm512_xor_si512(t, _mm512_srli_epi32(t, 8));
      t = _mm512_and_si512(t, xff);
      t = _mm512_and_si512(_mm512_xor_si512(t, _mm512_srli_epi32(t, 7)), x7f);
      _mm512_storeu_si512(shadow + i, _mm512_or_si512(t, x80));
    }
  }
#elif defined(GPUKSEL_SIMD_AVX2)
  if (enabled()) {
    const __m256i x80 = _mm256_set1_epi32(0x80);
    const __m256i x7f = _mm256_set1_epi32(0x7f);
    const __m256i xff = _mm256_set1_epi32(0xff);
    for (; i + 8 <= n; i += 8) {
      __m256i t = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(data + i));
      t = _mm256_xor_si256(t, _mm256_srli_epi32(t, 16));
      t = _mm256_xor_si256(t, _mm256_srli_epi32(t, 8));
      t = _mm256_and_si256(t, xff);
      t = _mm256_and_si256(_mm256_xor_si256(t, _mm256_srli_epi32(t, 7)), x7f);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(shadow + i),
                          _mm256_or_si256(t, x80));
    }
  }
#endif
  for (; i < n; ++i) {
    std::uint32_t x;
    std::memcpy(&x, data + i, 4);
    x ^= x >> 16;
    x ^= x >> 8;
    x &= 0xffu;
    x = (x ^ (x >> 7)) & 0x7fu;
    shadow[i] = x | 0x80u;
  }
}

/// The 7-bit XOR-fold shadow word of every lane (all 32, mask-independent),
/// matching shadow_of<T> for 4-byte T bit for bit (value range 0x80..0xff,
/// widened to a u32 lane so it gathers/scatters like data).
template <typename T>
inline void shadow_words(const WarpVar<T>& v,
                         WarpVar<std::uint32_t>& out) noexcept {
  static_assert(sizeof(T) == 4, "vector shadow fold is 4-byte only");
#if defined(GPUKSEL_SIMD_AVX512)
  if (enabled()) {
    using namespace v512;
    const __m512i x80 = _mm512_set1_epi32(0x80);
    const __m512i x7f = _mm512_set1_epi32(0x7f);
    const __m512i xff = _mm512_set1_epi32(0xff);
    auto fold = [&](__m512i x) {
      __m512i t = _mm512_xor_si512(x, _mm512_srli_epi32(x, 16));
      t = _mm512_xor_si512(t, _mm512_srli_epi32(t, 8));
      t = _mm512_and_si512(t, xff);
      t = _mm512_and_si512(_mm512_xor_si512(t, _mm512_srli_epi32(t, 7)), x7f);
      return _mm512_or_si512(t, x80);
    };
    store_lo(&out, fold(load_lo(&v)));
    store_hi(&out, fold(load_hi(&v)));
    return;
  }
#elif defined(GPUKSEL_SIMD_AVX2)
  if (enabled()) {
    using namespace v256;
    const __m256i x80 = _mm256_set1_epi32(0x80);
    const __m256i x7f = _mm256_set1_epi32(0x7f);
    const __m256i xff = _mm256_set1_epi32(0xff);
    for (int g = 0; g < 4; ++g) {
      __m256i t = load(&v, g);
      t = _mm256_xor_si256(t, _mm256_srli_epi32(t, 16));
      t = _mm256_xor_si256(t, _mm256_srli_epi32(t, 8));
      t = _mm256_and_si256(t, xff);
      t = _mm256_and_si256(_mm256_xor_si256(t, _mm256_srli_epi32(t, 7)), x7f);
      t = _mm256_or_si256(t, x80);
      store(&out, g, t);
    }
    return;
  }
#endif
  for (int i = 0; i < kWarpSize; ++i) {
    std::uint32_t x;
    std::memcpy(&x, &v[i], 4);
    std::uint32_t t = x ^ (x >> 16);
    t ^= t >> 8;
    std::uint8_t fold = static_cast<std::uint8_t>(t & 0xffu);
    fold = static_cast<std::uint8_t>((fold ^ (fold >> 7)) & 0x7f);
    out[i] = 0x80u | fold;
  }
}

/// Mask of active lanes where expect[i] != 0 and got[i] != expect[i] — the
/// ECC-mismatch detector over a gathered shadow row (uninitialized shadows
/// are exempt).
inline LaneMask shadow_mismatch_mask(LaneMask m,
                                     const WarpVar<std::uint32_t>& expect,
                                     const WarpVar<std::uint32_t>& got)
    noexcept {
#if defined(GPUKSEL_SIMD_AVX512)
  if (enabled()) {
    using namespace v512;
    const __m512i zero = _mm512_setzero_si512();
    const __m512i elo = load_lo(&expect);
    const __m512i ehi = load_hi(&expect);
    const __mmask16 lo =
        _mm512_mask_cmpneq_epu32_mask(
            _mm512_mask_cmpneq_epu32_mask(klo(m), elo, zero), load_lo(&got),
            elo);
    const __mmask16 hi =
        _mm512_mask_cmpneq_epu32_mask(
            _mm512_mask_cmpneq_epu32_mask(khi(m), ehi, zero), load_hi(&got),
            ehi);
    return join(lo, hi);
  }
#elif defined(GPUKSEL_SIMD_AVX2)
  if (enabled()) {
    using namespace v256;
    LaneMask written = 0;
    LaneMask same = 0;
    for (int g = 0; g < 4; ++g) {
      const __m256i e = load(&expect, g);
      written |= mask_bits(
          _mm256_xor_si256(_mm256_cmpeq_epi32(e, _mm256_setzero_si256()),
                           _mm256_set1_epi32(-1)),
          g);
      same |= mask_bits(_mm256_cmpeq_epi32(load(&got, g), e), g);
    }
    return m & written & ~same;
  }
#endif
  LaneMask out = 0;
  for (int i = 0; i < kWarpSize; ++i) {
    if (lane_active(m, i) && expect[i] != 0 && got[i] != expect[i]) {
      out |= lane_bit(i);
    }
  }
  return out;
}

/// Mask of active lanes with idx[i] >= size (the bounds-check detector).
inline LaneMask oob_mask(LaneMask m, const WarpVar<std::uint32_t>& idx,
                         std::size_t size) noexcept {
  if (size > 0xffffffffull) return 0;  // a u32 index can never reach it
  const std::uint32_t s = static_cast<std::uint32_t>(size);
#if defined(GPUKSEL_SIMD_AVX512)
  if (enabled()) {
    using namespace v512;
    const __m512i sv = _mm512_set1_epi32(static_cast<int>(s));
    return join(_mm512_mask_cmpge_epu32_mask(klo(m), load_lo(&idx), sv),
                _mm512_mask_cmpge_epu32_mask(khi(m), load_hi(&idx), sv));
  }
#elif defined(GPUKSEL_SIMD_AVX2)
  if (enabled()) {
    using namespace v256;
    const __m256i sv = _mm256_set1_epi32(static_cast<int>(s));
    LaneMask out = 0;
    for (int g = 0; g < 4; ++g) {
      const __m256i lt = cmplt_epu32(load(&idx, g), sv);
      out |= mask_bits(_mm256_xor_si256(lt, _mm256_set1_epi32(-1)), g);
    }
    return out & m;
  }
#endif
  LaneMask out = 0;
  for (int i = 0; i < kWarpSize; ++i) {
    if (lane_active(m, i) && idx[i] >= s) out |= lane_bit(i);
  }
  return out;
}

/// True iff two active lanes hold the same idx value (exact; detection only —
/// the caller reruns the scalar pairwise loop to produce the fault record).
inline bool has_collision(LaneMask m, const WarpVar<std::uint32_t>& idx)
    noexcept {
  if (popcount(m) < 2) return false;
#if defined(GPUKSEL_SIMD_AVX512)
  if (enabled()) {
    using namespace v512;
    const __m512i lo = load_lo(&idx);
    const __m512i hi = load_hi(&idx);
    // Fast path: all active residues mod 32 distinct => all values distinct.
    // Catches the per-thread-array pattern slot*threads + thread (threads a
    // warp multiple), where idx mod 32 is exactly the lane id.
    {
      const __m512i one = _mm512_set1_epi32(1);
      const __m512i b31 = _mm512_set1_epi32(31);
      const __m512i bits_lo =
          _mm512_maskz_sllv_epi32(klo(m), one, _mm512_and_si512(lo, b31));
      const __m512i bits_hi =
          _mm512_maskz_sllv_epi32(khi(m), one, _mm512_and_si512(hi, b31));
      alignas(64) std::uint64_t folded[8];
      _mm512_store_si512(folded, _mm512_or_si512(bits_lo, bits_hi));
      std::uint64_t acc = 0;
      for (int i = 0; i < 8; ++i) acc |= folded[i];
      const std::uint32_t used = static_cast<std::uint32_t>(acc | (acc >> 32));
      if (std::popcount(used) == popcount(m)) return false;
    }
    // Within-half duplicates via vpconflictd: element j's result holds one
    // bit per preceding equal element; restrict those bits to active
    // predecessors and the test to active lanes.
    const __m512i active_lo = _mm512_set1_epi32(static_cast<int>(m & 0xffffu));
    const __m512i active_hi = _mm512_set1_epi32(static_cast<int>(m >> 16));
    const __mmask16 dup_lo = _mm512_mask_test_epi32_mask(
        klo(m), _mm512_conflict_epi32(lo), active_lo);
    if (dup_lo != 0) return true;
    const __mmask16 dup_hi = _mm512_mask_test_epi32_mask(
        khi(m), _mm512_conflict_epi32(hi), active_hi);
    if (dup_hi != 0) return true;
    // Cross-half: disjoint value ranges (the usual ascending-index case)
    // settle it in two reductions; otherwise broadcast each active low lane
    // against the high half.
    std::uint32_t rest = m & 0xffffu;
    const __mmask16 k_hi = khi(m);
    if (k_hi != 0 && rest != 0) {
      const __m512i ones = _mm512_set1_epi32(-1);
      const std::uint32_t lo_max = _mm512_reduce_max_epu32(
          _mm512_maskz_mov_epi32(klo(m), lo));
      const std::uint32_t hi_min = _mm512_reduce_min_epu32(
          _mm512_mask_mov_epi32(ones, k_hi, hi));
      if (lo_max < hi_min) return false;
      const std::uint32_t hi_max = _mm512_reduce_max_epu32(
          _mm512_maskz_mov_epi32(k_hi, hi));
      const std::uint32_t lo_min = _mm512_reduce_min_epu32(
          _mm512_mask_mov_epi32(ones, klo(m), lo));
      if (hi_max < lo_min) return false;
      while (rest != 0) {
        const int i = std::countr_zero(rest);
        rest &= rest - 1;
        const __m512i bc = _mm512_set1_epi32(static_cast<int>(idx[i]));
        if (_mm512_mask_cmpeq_epi32_mask(k_hi, hi, bc) != 0) return true;
      }
    }
    return false;
  }
#endif
  for (int i = 0; i < kWarpSize; ++i) {
    if (!lane_active(m, i)) continue;
    for (int j = i + 1; j < kWarpSize; ++j) {
      if (lane_active(m, j) && idx[i] == idx[j]) return true;
    }
  }
  return false;
}

/// Number of distinct 128-byte segments touched by the active lanes of a
/// global access at byte offset `base_bytes` with 4-byte elements: the
/// coalescing model's transaction count.  Exact for every input.
inline int count_segments4(LaneMask m, std::size_t base_bytes,
                           const WarpVar<std::uint32_t>& idx) noexcept {
  if (m == 0) return 0;
  alignas(64) std::uint64_t segs[kWarpSize];
#if defined(GPUKSEL_SIMD_AVX512)
  if (enabled()) {
    using namespace v512;
    const __m512i base = _mm512_set1_epi64(
        static_cast<long long>(base_bytes));
    auto segs_of = [&](int group) {
      // Load each 8-lane group straight from the register's memory image —
      // no 512->256 extraction intrinsics (whose GCC forms carry an
      // undefined-value argument that trips -Wmaybe-uninitialized).
      const __m256i idx8 = _mm256_load_si256(
          reinterpret_cast<const __m256i*>(&idx) + group);
      const __m512i wide = _mm512_cvtepu32_epi64(idx8);
      const __m512i bytes =
          _mm512_add_epi64(_mm512_slli_epi64(wide, 2), base);
      return _mm512_srli_epi64(bytes, 7);  // / kTransactionBytes (128)
    };
    const __m512i s0 = segs_of(0);
    const __m512i s1 = segs_of(1);
    const __m512i s2 = segs_of(2);
    const __m512i s3 = segs_of(3);
    // Fast path: every active lane in the same segment (the coalesced case).
    const int first = lowest_lane(m);
    const std::uint64_t fseg =
        (base_bytes + static_cast<std::uint64_t>(idx[first]) * 4u) >> 7;
    const __m512i fv = _mm512_set1_epi64(static_cast<long long>(fseg));
    const __mmask8 k0 = static_cast<__mmask8>(m & 0xff);
    const __mmask8 k1 = static_cast<__mmask8>((m >> 8) & 0xff);
    const __mmask8 k2 = static_cast<__mmask8>((m >> 16) & 0xff);
    const __mmask8 k3 = static_cast<__mmask8>((m >> 24) & 0xff);
    if (_mm512_mask_cmpneq_epi64_mask(k0, s0, fv) == 0 &&
        _mm512_mask_cmpneq_epi64_mask(k1, s1, fv) == 0 &&
        _mm512_mask_cmpneq_epi64_mask(k2, s2, fv) == 0 &&
        _mm512_mask_cmpneq_epi64_mask(k3, s3, fv) == 0) {
      return 1;
    }
    _mm512_store_si512(segs, s0);
    _mm512_store_si512(segs + 8, s1);
    _mm512_store_si512(segs + 16, s2);
    _mm512_store_si512(segs + 24, s3);
  } else
#endif
  {
    for (int i = 0; i < kWarpSize; ++i) {
      if (lane_active(m, i)) {
        segs[i] = (base_bytes + static_cast<std::uint64_t>(idx[i]) * 4u) >> 7;
      }
    }
  }
  // Range-bitmap count: when every active segment sits within 64 of the
  // minimum (true for every access stride these kernels generate), distinct
  // segments are bits in one 64-bit word and the count is a popcount.
  {
    std::uint64_t mn = ~std::uint64_t{0};
    for (std::uint32_t rest = m; rest != 0; rest &= rest - 1) {
      const std::uint64_t s = segs[std::countr_zero(rest)];
      if (s < mn) mn = s;
    }
    std::uint64_t bits = 0;
    bool in_range = true;
    for (std::uint32_t rest = m; rest != 0; rest &= rest - 1) {
      const std::uint64_t d = segs[std::countr_zero(rest)] - mn;
      if (d >= 64) {
        in_range = false;
        break;
      }
      bits |= std::uint64_t{1} << d;
    }
    if (in_range) return std::popcount(bits);
  }
  // Distinct count (order-free, so identical to the scalar dedupe); the
  // distinct set is tiny in practice so the quadratic scan is cheap.
  std::uint64_t seen[kWarpSize];
  int n = 0;
  for (int i = 0; i < kWarpSize; ++i) {
    if (!lane_active(m, i)) continue;
    const std::uint64_t s = segs[i];
    bool dup = false;
    for (int j = 0; j < n; ++j) {
      if (seen[j] == s) {
        dup = true;
        break;
      }
    }
    if (!dup) seen[n++] = s;
  }
  return n;
}

/// Bank-conflict replay degree for a shared access touching 4-byte words
/// `words[i]` under mask m (1 = conflict-free).  Fast paths cover broadcast
/// and all-banks-distinct; the histogram fallback is exact.
inline int shared_degree(LaneMask m, const WarpVar<std::uint32_t>& words)
    noexcept {
  if (m == 0) return 1;
#if defined(GPUKSEL_SIMD_AVX512)
  if (enabled()) {
    using namespace v512;
    const __m512i wlo = load_lo(&words);
    const __m512i whi = load_hi(&words);
    const int first = lowest_lane(m);
    const __m512i fv = _mm512_set1_epi32(static_cast<int>(words[first]));
    if (_mm512_mask_cmpneq_epi32_mask(klo(m), wlo, fv) == 0 &&
        _mm512_mask_cmpneq_epi32_mask(khi(m), whi, fv) == 0) {
      return 1;  // broadcast: every active lane reads the same word
    }
    // All banks distinct => conflict-free: OR together 1 << (word % 32) and
    // compare the population with the active-lane count.
    const __m512i one = _mm512_set1_epi32(1);
    const __m512i b31 = _mm512_set1_epi32(31);
    const __m512i bits_lo =
        _mm512_maskz_sllv_epi32(klo(m), one, _mm512_and_si512(wlo, b31));
    const __m512i bits_hi =
        _mm512_maskz_sllv_epi32(khi(m), one, _mm512_and_si512(whi, b31));
    alignas(64) std::uint64_t folded[8];
    _mm512_store_si512(folded, _mm512_or_si512(bits_lo, bits_hi));
    std::uint64_t acc = 0;
    for (int i = 0; i < 8; ++i) acc |= folded[i];
    const std::uint32_t used =
        static_cast<std::uint32_t>(acc | (acc >> 32));
    if (std::popcount(used) == popcount(m)) return 1;
  }
#endif
  // Exact histogram: a bank replays once per *distinct* word it serves, so
  // each lane's word counts only if no earlier active lane already brought
  // it (A,B,A in one bank is degree 2, not 3).  O(lanes^2) compares, but the
  // fast paths above absorb the common broadcast/conflict-free shapes.
  std::uint8_t per_bank_words[kWarpSize] = {};
  for (int i = 0; i < kWarpSize; ++i) {
    if (!lane_active(m, i)) continue;
    const std::uint32_t word = words[i];
    bool seen = false;
    for (int j = 0; j < i; ++j) {
      if (lane_active(m, j) && words[j] == word) {
        seen = true;
        break;
      }
    }
    if (seen) continue;
    ++per_bank_words[word % kWarpSize];
  }
  int degree = 1;
  for (int b = 0; b < kWarpSize; ++b) {
    degree = degree > per_bank_words[b] ? degree : per_bank_words[b];
  }
  return degree;
}

// --- NaN policy helpers -----------------------------------------------------

/// Mask of active lanes holding NaN.
inline LaneMask isnan_mask(LaneMask m, const WarpVar<float>& v) noexcept {
#if defined(GPUKSEL_SIMD_AVX512)
  if (enabled()) {
    using namespace v512;
    const __m512 lo = _mm512_castsi512_ps(load_lo(&v));
    const __m512 hi = _mm512_castsi512_ps(load_hi(&v));
    return join(_mm512_mask_cmp_ps_mask(klo(m), lo, lo, _CMP_UNORD_Q),
                _mm512_mask_cmp_ps_mask(khi(m), hi, hi, _CMP_UNORD_Q));
  }
#elif defined(GPUKSEL_SIMD_AVX2)
  if (enabled()) {
    using namespace v256;
    LaneMask out = 0;
    for (int g = 0; g < 4; ++g) {
      const __m256 x = _mm256_castsi256_ps(load(&v, g));
      out |= mask_bits(_mm256_castps_si256(_mm256_cmp_ps(x, x, _CMP_UNORD_Q)),
                       g);
    }
    return out & m;
  }
#endif
  LaneMask out = 0;
  for (int i = 0; i < kWarpSize; ++i) {
    if (lane_active(m, i) && v[i] != v[i]) out |= lane_bit(i);
  }
  return out;
}

/// v[i] = +inf where active and NaN (NanPolicy::kSortLast remap).
inline void nan_to_inf(LaneMask m, WarpVar<float>& v) noexcept {
  const LaneMask nans = isnan_mask(m, v);
  if (nans == 0) return;
  fill(nans, v, std::numeric_limits<float>::infinity());
}

}  // namespace gpuksel::simt::lanevec
