// Deterministic, seeded fault injection for the SIMT simulator.
//
// A FaultInjector attaches to a Device (Device::set_fault_injector) and is
// consulted by WarpContext on every global load/store.  Whether a given
// access is faulted is a pure function of (seed, kernel filter, warp id,
// per-warp access counter): the counter is reset at every launch, so the
// same program with the same seed always faults the same access in the same
// way — runs are reproducible bug reports, not heisenbugs.
//
// Four fault classes model the hardware failure modes a production k-NN
// service has to survive:
//  * kBitFlip   — one bit of one loaded word is flipped (cosmic-ray upset;
//                 caught by the sanitizer's ECC shadow checksum);
//  * kNanInject — a loaded float becomes quiet NaN (hostile/corrupt
//                 distances; caught by NanPolicy::kReject, sorted last under
//                 kSortLast);
//  * kLaneDrop  — one active lane's load is dropped and its destination
//                 register poisoned with NaN (lane falling out of lockstep);
//  * kOobIndex  — one lane's effective address is pushed past the end of the
//                 buffer (bad indexing; caught by the bounds check).
//
// Loads are eligible for every class; stores only for kOobIndex — a
// corrupted store that is never re-read on-device could silently flow into
// results extracted host-side, violating the detected-or-masked contract the
// fault-injection tests enforce.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "simt/types.hpp"

namespace gpuksel::simt {

enum class InjectKind {
  kBitFlip,
  kNanInject,
  kLaneDrop,
  kOobIndex,
};

[[nodiscard]] constexpr const char* inject_kind_name(InjectKind kind) noexcept {
  switch (kind) {
    case InjectKind::kBitFlip: return "bit-flip";
    case InjectKind::kNanInject: return "nan-inject";
    case InjectKind::kLaneDrop: return "lane-drop";
    case InjectKind::kOobIndex: return "oob-index";
  }
  return "unknown";
}

struct InjectorConfig {
  InjectKind kind = InjectKind::kBitFlip;
  std::uint64_t seed = 0;
  /// On average one in `period` eligible accesses is faulted.
  std::uint64_t period = 256;
  /// Stop injecting after this many faults (0 = unlimited).
  std::uint32_t max_faults = 1;
  /// Only fault launches whose kernel name equals this (empty = all) — the
  /// hook for targeting one pipeline phase.
  std::string kernel_filter;
};

/// The concrete corruption chosen for one access.
struct PlannedFault {
  InjectKind kind = InjectKind::kBitFlip;
  int lane = 0;               ///< victim lane (always active in the mask)
  int bit = 0;                ///< bit to flip (kBitFlip)
  std::uint32_t oob_extra = 1;  ///< elements past the end (kOobIndex)
};

/// What was injected, for determinism assertions and fault logs.
struct InjectionEvent {
  std::string kernel;
  std::uint32_t warp_id = 0;
  std::uint64_t access = 0;  ///< per-warp global-access ordinal in the launch
  InjectKind kind = InjectKind::kBitFlip;
  int lane = 0;
  int bit = 0;
  std::uint32_t oob_extra = 0;

  friend bool operator==(const InjectionEvent&,
                         const InjectionEvent&) = default;
};

class FaultInjector {
 public:
  explicit FaultInjector(InjectorConfig cfg);

  /// Called by Device::launch before the first warp runs: resets the
  /// per-warp access counters that make decisions launch-deterministic.
  void begin_launch(const char* kernel, std::size_t num_warps);

  /// Whether this launch's injection decisions are a pure function of
  /// (seed, warp id, per-warp access ordinal) — i.e. independent of the
  /// order warps execute in — so Device::launch may run warps on parallel
  /// host threads.  True when the kernel filter rejects the launch, when
  /// max_faults is 0 (unlimited: no cross-warp budget), or when the budget
  /// is already spent.  A launch with remaining *bounded* budget must run
  /// serially: which access consumes the budget depends on warp order.
  [[nodiscard]] bool parallel_safe() const noexcept;

  /// Called by Device::launch after the last warp retires (or after the
  /// winning fault is chosen on an aborted launch): merges the per-warp
  /// staged event logs into events() in ascending warp order.  On an abort,
  /// `up_to_warp` limits the merge to warps the serial loop would have run
  /// (ids <= the faulting warp), keeping the log bit-identical to a serial
  /// execution for every thread count.
  void end_launch(std::uint32_t up_to_warp =
                      std::numeric_limits<std::uint32_t>::max());

  /// Consulted once per global load/store instruction.  Returns the fault to
  /// apply to this access, or nullopt to leave it untouched.  `is_load` and
  /// `is_float` gate the eligible fault classes (see file comment).
  [[nodiscard]] std::optional<PlannedFault> on_global_access(
      std::uint32_t warp_id, LaneMask active, bool is_load, bool is_float);

  /// Whether the current launch passed the kernel filter.  False means
  /// on_global_access is a guaranteed no-op until the next begin_launch, so
  /// WarpContext may skip consulting the injector entirely (the per-warp
  /// access counters it would have bumped are reset at every launch and only
  /// read on enabled launches).
  [[nodiscard]] bool kernel_enabled() const noexcept { return kernel_enabled_; }

  [[nodiscard]] const InjectorConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const std::vector<InjectionEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::uint32_t fault_count() const noexcept {
    return static_cast<std::uint32_t>(events_.size());
  }

  /// Clears the event log and counters (fresh run with the same config).
  void reset();

 private:
  InjectorConfig cfg_;
  std::string current_kernel_;
  bool kernel_enabled_ = false;
  std::vector<std::uint64_t> access_counts_;  ///< per warp, this launch
  std::vector<InjectionEvent> events_;
  /// Per-warp event staging for order-free (parallel-safe) launches: each
  /// warp appends only to its own log, so no synchronisation is needed;
  /// end_launch() concatenates the logs in warp order.  Empty for launches
  /// with a live bounded budget, which write straight to events_ (Device
  /// runs those serially).
  std::vector<std::vector<InjectionEvent>> staged_;
};

}  // namespace gpuksel::simt
