#include "simt/profiler.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <ostream>

#include "util/check.hpp"
#include "util/csv.hpp"

namespace gpuksel::simt {

// --- WarpProfile ------------------------------------------------------------

RegionStats& WarpProfile::stats_for(const char* name) {
  for (RegionStats& r : regions_) {
    if (r.name == name) return r;
  }
  // Different translation units may hold distinct copies of equal literals.
  for (RegionStats& r : regions_) {
    if (std::strcmp(r.name.c_str(), name) == 0) return r;
  }
  regions_.push_back(RegionStats{name, 0, {}});
  return regions_.back();
}

void WarpProfile::enter(const char* name, const KernelMetrics& now) {
  stats_for(name);  // register at entry so regions() is first-entered order
  stack_.push_back(OpenRegion{name, now, {}, now.instructions});
}

void WarpProfile::close_top(const KernelMetrics& now) {
  OpenRegion top = stack_.back();
  stack_.pop_back();
  const KernelMetrics inclusive = now - top.at_entry;
  RegionStats& stats = stats_for(top.name);
  stats.calls += 1;
  stats.self += inclusive - top.child_inclusive;
  if (stack_.empty()) {
    top_level_inclusive_ += inclusive;
  } else {
    stack_.back().child_inclusive += inclusive;
  }
  if (spans_.size() < span_capacity_) {
    spans_.push_back(TraceSpan{top.name,
                               static_cast<std::uint32_t>(stack_.size()),
                               top.begin_instructions, now.instructions});
  } else {
    ++dropped_;
  }
}

void WarpProfile::exit(const KernelMetrics& now) {
  if (stack_.empty()) return;  // unbalanced exit: ignore defensively
  close_top(now);
}

void WarpProfile::finalize(const KernelMetrics& final_metrics) {
  while (!stack_.empty()) close_top(final_metrics);
}

// --- Profiler: record building ----------------------------------------------

namespace {

/// Merges `add` into `into`, keyed by region name, preserving first-seen
/// order (deterministic: callers iterate warps in ascending id).
void merge_regions(std::vector<RegionStats>& into,
                   const std::vector<RegionStats>& add) {
  for (const RegionStats& r : add) {
    bool found = false;
    for (RegionStats& existing : into) {
      if (existing.name == r.name) {
        existing.calls += r.calls;
        existing.self += r.self;
        found = true;
        break;
      }
    }
    if (!found) into.push_back(r);
  }
}

bool any_counter(const KernelMetrics& m) noexcept {
  return m.instructions != 0 || m.useful_lane_slots != 0 ||
         m.global_load_tx != 0 || m.global_store_tx != 0 ||
         m.global_requests != 0 || m.shared_requests != 0 ||
         m.shared_conflict_replays != 0;
}

}  // namespace

void Profiler::record_launch(const char* kernel_name, unsigned worker_threads,
                             double wall_seconds,
                             std::vector<KernelMetrics> per_warp,
                             std::vector<WarpProfile> profiles,
                             const KernelMetrics& total) {
  KernelRecord rec;
  rec.kernel = kernel_name;
  rec.launch_index = records_.size();
  rec.num_warps = per_warp.size();
  rec.worker_threads = worker_threads;
  rec.wall_seconds = wall_seconds;
  rec.total = total;

  rec.warp_regions.reserve(profiles.size());
  rec.warp_spans.reserve(profiles.size());
  for (std::size_t w = 0; w < profiles.size(); ++w) {
    WarpProfile& p = profiles[w];
    std::vector<RegionStats> regions = p.regions();
    const KernelMetrics unattributed = per_warp[w] - p.attributed();
    if (any_counter(unattributed) || regions.empty()) {
      regions.push_back(RegionStats{kUnattributedRegion, 0, unattributed});
    }
    merge_regions(rec.regions, regions);
    rec.warp_regions.push_back(std::move(regions));
    rec.warp_spans.push_back(p.spans());
    rec.dropped_spans += p.dropped_spans();
  }
  rec.per_warp = std::move(per_warp);

  rec.instruction_seconds = model_.instruction_seconds(rec.total);
  rec.memory_seconds = model_.memory_seconds(rec.total);
  rec.kernel_seconds = model_.kernel_seconds(rec.total);
  rec.memory_bound = rec.memory_seconds > rec.instruction_seconds;

  records_.push_back(std::move(rec));
}

void Profiler::absorb(const Profiler& other, const std::string& kernel_prefix) {
  records_.reserve(records_.size() + other.records_.size());
  for (const KernelRecord& rec : other.records_) {
    KernelRecord copy = rec;
    copy.kernel = kernel_prefix + rec.kernel;
    copy.launch_index = records_.size();
    records_.push_back(std::move(copy));
  }
}

// --- JSON helpers -----------------------------------------------------------

namespace {

void json_double(std::ostream& os, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os << buf;
}

void json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

void write_metrics_json(std::ostream& os, const KernelMetrics& m) {
  os << "{\"instructions\": " << m.instructions
     << ", \"useful_lane_slots\": " << m.useful_lane_slots
     << ", \"global_load_tx\": " << m.global_load_tx
     << ", \"global_store_tx\": " << m.global_store_tx
     << ", \"global_requests\": " << m.global_requests
     << ", \"shared_requests\": " << m.shared_requests
     << ", \"shared_conflict_replays\": " << m.shared_conflict_replays
     << ", \"simt_efficiency\": ";
  json_double(os, m.simt_efficiency());
  os << ", \"transactions_per_request\": ";
  json_double(os, m.transactions_per_request());
  os << "}";
}

// --- exports ----------------------------------------------------------------

void Profiler::write_report(std::ostream& os) const {
  os << "{\n  \"schema\": \"gpuksel.profile.v1\",\n"
     << "  \"timeline_unit\": \"warp_instructions\",\n"
     << "  \"kernels\": [";
  const char* rec_sep = "";
  for (const KernelRecord& rec : records_) {
    os << rec_sep << "\n    {\n      \"kernel\": ";
    rec_sep = ",";
    json_string(os, rec.kernel);
    os << ",\n      \"launch_index\": " << rec.launch_index
       << ",\n      \"num_warps\": " << rec.num_warps
       << ",\n      \"worker_threads\": "
       << (include_host_info_ ? rec.worker_threads : 0)
       << ",\n      \"wall_seconds\": ";
    json_double(os, include_host_info_ ? rec.wall_seconds : 0.0);
    os << ",\n      \"metrics\": ";
    write_metrics_json(os, rec.total);
    os << ",\n      \"cost\": {\"instruction_seconds\": ";
    json_double(os, rec.instruction_seconds);
    os << ", \"memory_seconds\": ";
    json_double(os, rec.memory_seconds);
    os << ", \"kernel_seconds\": ";
    json_double(os, rec.kernel_seconds);
    os << ", \"bound\": \"" << (rec.memory_bound ? "memory" : "instruction")
       << "\"}";
    os << ",\n      \"dropped_spans\": " << rec.dropped_spans;
    os << ",\n      \"regions\": [";
    const char* sep = "";
    for (const RegionStats& r : rec.regions) {
      os << sep << "\n        {\"name\": ";
      sep = ",";
      json_string(os, r.name);
      os << ", \"calls\": " << r.calls << ", \"self\": ";
      write_metrics_json(os, r.self);
      os << "}";
    }
    os << (rec.regions.empty() ? "]" : "\n      ]");
    os << ",\n      \"per_warp\": [";
    sep = "";
    for (const KernelMetrics& m : rec.per_warp) {
      os << sep << "\n        ";
      sep = ",";
      write_metrics_json(os, m);
    }
    os << (rec.per_warp.empty() ? "]" : "\n      ]");
    os << "\n    }";
  }
  os << (records_.empty() ? "]" : "\n  ]") << "\n}\n";
}

void Profiler::write_trace(std::ostream& os) const {
  os << "{\"traceEvents\": [";
  const char* sep = "";
  for (const KernelRecord& rec : records_) {
    const std::uint64_t pid = rec.launch_index;
    os << sep << "\n  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": "
       << pid << ", \"tid\": 0, \"args\": {\"name\": ";
    sep = ",";
    json_string(os, rec.kernel + " #" + std::to_string(rec.launch_index));
    os << "}}";
    for (std::size_t w = 0; w < rec.num_warps; ++w) {
      // One root span per warp covering its whole execution, so the
      // timeline shows per-warp load imbalance even without regions.
      os << ",\n  {\"name\": ";
      json_string(os, rec.kernel);
      os << ", \"ph\": \"X\", \"pid\": " << pid << ", \"tid\": " << w
         << ", \"ts\": 0, \"dur\": " << rec.per_warp[w].instructions << "}";
      if (w >= rec.warp_spans.size()) continue;
      for (const TraceSpan& span : rec.warp_spans[w]) {
        os << ",\n  {\"name\": ";
        json_string(os, span.name);
        os << ", \"ph\": \"X\", \"pid\": " << pid << ", \"tid\": " << w
           << ", \"ts\": " << span.begin_instructions << ", \"dur\": "
           << span.end_instructions - span.begin_instructions
           << ", \"args\": {\"depth\": " << span.depth << "}}";
      }
    }
  }
  os << (records_.empty() ? "]" : "\n]")
     << ", \"displayTimeUnit\": \"ms\", \"metadata\": {\"timeline_unit\": "
        "\"warp_instructions\"}}\n";
}

void Profiler::write_regions_csv(std::ostream& os) const {
  os << "kernel,launch_index,region,calls,instructions,useful_lane_slots,"
        "simt_efficiency,global_load_tx,global_store_tx,global_requests,"
        "shared_requests,shared_conflict_replays\n";
  for (const KernelRecord& rec : records_) {
    for (const RegionStats& r : rec.regions) {
      char eff[40];
      std::snprintf(eff, sizeof eff, "%.17g", r.self.simt_efficiency());
      os << csv_escape(rec.kernel) << ',' << rec.launch_index << ','
         << csv_escape(r.name) << ',' << r.calls << ','
         << r.self.instructions << ',' << r.self.useful_lane_slots << ','
         << eff << ',' << r.self.global_load_tx << ','
         << r.self.global_store_tx << ',' << r.self.global_requests << ','
         << r.self.shared_requests << ',' << r.self.shared_conflict_replays
         << '\n';
    }
  }
}

void Profiler::write_files(const std::string& report_path,
                           const std::string& trace_path,
                           const std::string& csv_path) const {
  const auto open = [](const std::string& path) {
    std::ofstream os(path);
    GPUKSEL_CHECK(os.is_open(), "cannot open profile output file: " + path);
    return os;
  };
  if (!report_path.empty()) {
    auto os = open(report_path);
    write_report(os);
  }
  if (!trace_path.empty()) {
    auto os = open(trace_path);
    write_trace(os);
  }
  if (!csv_path.empty()) {
    auto os = open(csv_path);
    write_regions_csv(os);
  }
}

}  // namespace gpuksel::simt
