// Device buffer suballocator / recycler.
//
// Every DeviceBuffer is backed by a host std::vector whose capacity survives
// a move (the "device allocation").  The pool keeps released storage blocks
// on size-bucketed free lists and serves later acquisitions best-fit (the
// smallest free block whose capacity covers the request), so a serving front
// end that repeatedly re-uploads same-shaped data — delta shards, compaction
// rebuilds, per-request merge slabs — stops paying a fresh allocation per
// upload.  The model is FAISS/vuk-style frame recycling: `release` returns a
// block to the pool, `trim` frees everything idle.
//
// Accounting contract (CI gates it): every acquisition is served from the
// pool XOR freshly allocated, so
//     bytes_requested == bytes_served_from_pool + bytes_freshly_allocated
// holds exactly at all times.  `bytes_resident` tracks the capacity bytes
// currently idle on the free lists (what trim() would return).
//
// The pool recycles only the storage block, never the contents: a reused
// block is resized and refilled before DeviceBuffer construction, and the
// buffer's sanitizer shadow is rebuilt from the new contents — a recycled
// upload is indistinguishable from a fresh one to every kernel.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <type_traits>
#include <vector>

#include "simt/memory.hpp"

namespace gpuksel::simt {

/// Cumulative pool accounting.  bytes_requested partitions exactly into
/// bytes_served_from_pool + bytes_freshly_allocated (every request is one or
/// the other, never both, never neither).
struct PoolStats {
  std::uint64_t bytes_requested = 0;
  std::uint64_t bytes_served_from_pool = 0;
  std::uint64_t bytes_freshly_allocated = 0;
  std::uint64_t blocks_acquired = 0;  ///< total acquisitions (fill + acquire)
  std::uint64_t blocks_reused = 0;    ///< acquisitions served from a free block
  std::uint64_t blocks_released = 0;  ///< buffers returned via release()
  std::uint64_t blocks_trimmed = 0;   ///< free blocks dropped by trim()
  std::uint64_t bytes_resident = 0;   ///< capacity bytes idle on free lists
};

class BufferPool {
 public:
  BufferPool() = default;
  // Free blocks are plain vectors; moving the pool moves them.  Copying a
  // pool would double-count bytes_resident, so it is disallowed.
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Allocates n elements filled with `fill` (cudaMemset-style: contents
  /// count as initialized), reusing a free block when one fits.
  template <typename T>
  [[nodiscard]] DeviceBuffer<T> acquire(std::size_t n, T fill = T{}) {
    std::vector<T> storage = take<T>(n);
    storage.assign(n, fill);
    return DeviceBuffer<T>(std::move(storage));
  }

  /// Copies `host` into a (possibly recycled) block and wraps it as a device
  /// buffer.  The caller charges the transfer; the pool only owns storage.
  template <typename T>
  [[nodiscard]] DeviceBuffer<T> fill(std::span<const T> host) {
    std::vector<T> storage = take<T>(host.size());
    storage.assign(host.begin(), host.end());
    return DeviceBuffer<T>(std::move(storage));
  }

  /// Returns a buffer's backing block to the free lists for reuse.  The
  /// block keeps its capacity; its contents are dead.
  template <typename T>
  void release(DeviceBuffer<T>&& buf) {
    std::vector<T> storage = std::move(buf.host());
    if (storage.capacity() == 0) return;  // nothing worth keeping
    stats_.blocks_released += 1;
    stats_.bytes_resident += storage.capacity() * sizeof(T);
    free_list<T>().emplace(storage.capacity(), std::move(storage));
  }

  /// Drops every idle free block; returns the capacity bytes freed.
  std::uint64_t trim();

  [[nodiscard]] const PoolStats& stats() const noexcept { return stats_; }
  /// Free blocks currently held (across both element types).
  [[nodiscard]] std::size_t free_blocks() const noexcept {
    return free_f32_.size() + free_u32_.size();
  }

 private:
  /// Best-fit take: the smallest free block with capacity >= n, else a fresh
  /// allocation.  Accounts the request to exactly one side of the partition.
  template <typename T>
  [[nodiscard]] std::vector<T> take(std::size_t n) {
    const std::uint64_t bytes = std::uint64_t{n} * sizeof(T);
    stats_.bytes_requested += bytes;
    stats_.blocks_acquired += 1;
    auto& list = free_list<T>();
    const auto it = list.lower_bound(n);
    if (it != list.end()) {
      stats_.bytes_served_from_pool += bytes;
      stats_.blocks_reused += 1;
      stats_.bytes_resident -= std::uint64_t{it->first} * sizeof(T);
      std::vector<T> storage = std::move(it->second);
      list.erase(it);
      return storage;
    }
    stats_.bytes_freshly_allocated += bytes;
    return {};
  }

  template <typename T>
  [[nodiscard]] std::multimap<std::size_t, std::vector<T>>& free_list() {
    static_assert(std::is_same_v<T, float> || std::is_same_v<T, std::uint32_t>,
                  "BufferPool recycles float and uint32 device buffers");
    if constexpr (std::is_same_v<T, float>) {
      return free_f32_;
    } else {
      return free_u32_;
    }
  }

  /// Free blocks keyed by capacity (elements); lower_bound == best fit.
  std::multimap<std::size_t, std::vector<float>> free_f32_;
  std::multimap<std::size_t, std::vector<std::uint32_t>> free_u32_;
  PoolStats stats_;
};

}  // namespace gpuksel::simt
