#include "simt/sanitizer.hpp"

#include <sstream>

namespace gpuksel::simt {

std::string to_string(const SanitizerConfig& cfg) {
  std::ostringstream os;
  bool any = false;
  const auto add = [&](bool on, const char* name) {
    if (!on) return;
    if (any) os << '+';
    os << name;
    any = true;
  };
  add(cfg.bounds, "bounds");
  add(cfg.poison, "poison");
  add(cfg.ecc, "ecc");
  add(cfg.lockstep, "lockstep");
  if (!any) os << "off";
  os << " nan=" << nan_policy_name(cfg.nan_policy);
  return os.str();
}

void raise_fault(FaultRecord record) { throw SimtFaultError(std::move(record)); }

}  // namespace gpuksel::simt
