// Warp-level collective building blocks used by kernels and baselines:
// butterfly reductions, inclusive scans, and keyed min-reduction.  All cost
// accounting flows through the WarpContext operations these are built from.
#pragma once

#include <cstdint>
#include <limits>

#include "simt/warp.hpp"

namespace gpuksel::simt {

/// Key/value pair held across a warp (e.g. distance + reference index).
struct KeyedLanes {
  F32 keys;
  U32 values;
};

/// Warp-wide minimum of (key, value) with the arg carried along; after the
/// call every lane holds the minimum over the *active* lanes.  Ties resolve
/// to the smaller value (index), which keeps selection results deterministic.
/// Inactive lanes contribute nothing: their registers are neutralised to the
/// sentinel before the butterfly, so a partial mask is safe (unlike a raw
/// __shfl_xor reduction, whose inactive partners are undefined).
inline KeyedLanes reduce_min_keyed(WarpContext& ctx, LaneMask m,
                                   KeyedLanes in) {
  KeyedLanes clean{F32::filled(std::numeric_limits<float>::max()),
                   U32::filled(0xffffffffu)};
  clean.keys = ctx.select(kFullMask, m, in.keys, clean.keys);
  clean.values = ctx.select(kFullMask, m, in.values, clean.values);
  for (int delta = kWarpSize / 2; delta > 0; delta /= 2) {
    const F32 other_key = ctx.shfl_xor(kFullMask, clean.keys, delta);
    const U32 other_val = ctx.shfl_xor(kFullMask, clean.values, delta);
    const LaneMask take = ctx.lex_lt(kFullMask, other_key, other_val,
                                     clean.keys, clean.values);
    clean.keys = ctx.select(kFullMask, take, other_key, clean.keys);
    clean.values = ctx.select(kFullMask, take, other_val, clean.values);
  }
  return clean;
}

/// Warp-wide maximum of a float register over the active lanes; inactive
/// lanes are neutralised first so partial masks are safe.
inline F32 reduce_max(WarpContext& ctx, LaneMask m, F32 v) {
  F32 clean = F32::filled(std::numeric_limits<float>::lowest());
  clean = ctx.select(kFullMask, m, v, clean);
  for (int delta = kWarpSize / 2; delta > 0; delta /= 2) {
    const F32 other = ctx.shfl_xor(kFullMask, clean, delta);
    const LaneMask take = ctx.cmp_gt(kFullMask, other, clean);
    clean = ctx.select(kFullMask, take, other, clean);
  }
  return clean;
}

/// Warp-wide sum of a u32 register across active lanes (inactive lanes
/// contribute 0); every active lane receives the total.
inline U32 reduce_sum(WarpContext& ctx, LaneMask m, U32 v) {
  // Zero out inactive contributions first so butterfly partners are safe.
  U32 clean = ctx.imm(kFullMask, 0u);
  clean = ctx.select(kFullMask, m, v, clean);
  for (int delta = kWarpSize / 2; delta > 0; delta /= 2) {
    const U32 other = ctx.shfl_xor(kFullMask, clean, delta);
    clean = ctx.add(kFullMask, clean, other);
  }
  return clean;
}

/// Exclusive prefix sum across the full warp (Hillis–Steele, 5 steps).
/// Lane i receives the sum of v over lanes < i.
inline U32 prefix_sum_exclusive(WarpContext& ctx, U32 v) {
  const LaneMask m = kFullMask;
  U32 inclusive = v;
  for (int delta = 1; delta < kWarpSize; delta *= 2) {
    const U32 shifted = ctx.shift_up_zero(m, inclusive, delta);
    inclusive = ctx.add(m, inclusive, shifted);
  }
  return ctx.sub(m, inclusive, v);
}

/// Largest representable float, used as the queue sentinel ("+infinity").
inline constexpr float kFloatSentinel = std::numeric_limits<float>::max();

/// Sentinel index marking an empty queue slot.
inline constexpr std::uint32_t kIndexSentinel = 0xffffffffu;

}  // namespace gpuksel::simt
