#include "simt/fault_injection.hpp"

#include "util/check.hpp"

namespace gpuksel::simt {

namespace {

/// splitmix64 finalizer: a full-avalanche mix so consecutive access counters
/// land on uncorrelated decisions.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// The index-th active lane of `m` (wrapping), for picking a victim lane.
int nth_active_lane(LaneMask m, std::uint32_t nth) noexcept {
  const int active = popcount(m);
  if (active == 0) return -1;
  std::uint32_t target = nth % static_cast<std::uint32_t>(active);
  for (int i = 0; i < kWarpSize; ++i) {
    if (!lane_active(m, i)) continue;
    if (target == 0) return i;
    --target;
  }
  return -1;
}

}  // namespace

FaultInjector::FaultInjector(InjectorConfig cfg) : cfg_(std::move(cfg)) {
  GPUKSEL_CHECK(cfg_.period >= 1, "injector period must be >= 1");
}

void FaultInjector::begin_launch(const char* kernel, std::size_t num_warps) {
  current_kernel_ = kernel != nullptr ? kernel : "kernel";
  kernel_enabled_ =
      cfg_.kernel_filter.empty() || cfg_.kernel_filter == current_kernel_;
  access_counts_.assign(num_warps, 0);
  // Order-free launches stage events per warp (merged by end_launch); a
  // launch with a live bounded budget commits straight to events_ because
  // the budget check needs the globally-ordered count — Device::launch runs
  // such launches serially (see parallel_safe()).
  staged_.clear();
  if (kernel_enabled_ && cfg_.max_faults == 0) staged_.resize(num_warps);
}

bool FaultInjector::parallel_safe() const noexcept {
  if (!kernel_enabled_) return true;
  if (cfg_.max_faults == 0) return true;
  return fault_count() >= cfg_.max_faults;
}

void FaultInjector::end_launch(std::uint32_t up_to_warp) {
  for (std::size_t w = 0; w < staged_.size(); ++w) {
    if (w > up_to_warp) break;
    for (auto& ev : staged_[w]) events_.push_back(std::move(ev));
  }
  staged_.clear();
}

std::optional<PlannedFault> FaultInjector::on_global_access(
    std::uint32_t warp_id, LaneMask active, bool is_load, bool is_float) {
  if (warp_id >= access_counts_.size()) {
    // Direct WarpContext construction outside Device::launch; not tracked.
    return std::nullopt;
  }
  const std::uint64_t access = access_counts_[warp_id]++;
  if (!kernel_enabled_ || active == 0) return std::nullopt;
  if (staged_.empty() && cfg_.max_faults != 0 &&
      fault_count() >= cfg_.max_faults) {
    return std::nullopt;
  }
  // Stores only take address faults; value faults are load-side so every
  // corruption is observable on-device (see header).
  if (!is_load && cfg_.kind != InjectKind::kOobIndex) return std::nullopt;
  if ((cfg_.kind == InjectKind::kNanInject ||
       cfg_.kind == InjectKind::kLaneDrop) &&
      !is_float) {
    return std::nullopt;
  }

  const std::uint64_t h =
      mix64(cfg_.seed ^ mix64(warp_id * 0x51ed2701u + 1) ^ mix64(access));
  if (h % cfg_.period != 0) return std::nullopt;

  const std::uint64_t h2 = mix64(h);
  PlannedFault fault;
  fault.kind = cfg_.kind;
  fault.lane = nth_active_lane(active, static_cast<std::uint32_t>(h2));
  fault.bit = static_cast<int>((h2 >> 32) % 32);
  fault.oob_extra = 1 + static_cast<std::uint32_t>((h2 >> 40) % 64);
  if (fault.lane < 0) return std::nullopt;

  InjectionEvent event{current_kernel_, warp_id, access, fault.kind,
                       fault.lane,      fault.bit, fault.oob_extra};
  if (!staged_.empty()) {
    // Order-free launch, possibly on parallel host threads: append to this
    // warp's own log only.  Distinct vector elements are distinct memory
    // locations, so concurrent warps never touch the same log.
    staged_[warp_id].push_back(std::move(event));
  } else {
    events_.push_back(std::move(event));
  }
  return fault;
}

void FaultInjector::reset() {
  events_.clear();
  staged_.clear();
  access_counts_.clear();
  current_kernel_.clear();
  kernel_enabled_ = false;
}

}  // namespace gpuksel::simt
