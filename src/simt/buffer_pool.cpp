#include "simt/buffer_pool.hpp"

namespace gpuksel::simt {

std::uint64_t BufferPool::trim() {
  const std::uint64_t freed = stats_.bytes_resident;
  stats_.blocks_trimmed += free_f32_.size() + free_u32_.size();
  free_f32_.clear();
  free_u32_.clear();
  stats_.bytes_resident = 0;
  return freed;
}

}  // namespace gpuksel::simt
