// Device: allocation, host<->device transfer accounting, kernel launch.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "simt/buffer_pool.hpp"
#include "simt/executor.hpp"
#include "simt/fault_injection.hpp"
#include "simt/memory.hpp"
#include "simt/metrics.hpp"
#include "simt/profiler.hpp"
#include "simt/sanitizer.hpp"
#include "simt/warp.hpp"

namespace gpuksel::simt {

/// How a launch may schedule its warps on the host.
enum class LaunchPolicy {
  /// Warps may run on parallel host threads (the grid contract: warps of one
  /// launch are independent).  This is the default; results, metrics and
  /// faults are bit-identical to serial execution for any thread count.
  kParallel,
  /// Warps run one after another on the calling thread, in warp-id order.
  /// For kernels that (deliberately) share scratch between warps, like the
  /// QMS baseline's per-query partition buffers.
  kSerial,
};

/// The simulated GPU.  Owns transfer statistics, the sanitizer configuration
/// every launched warp checks against, an optional fault injector, and runs
/// kernels warp by warp.  Warps are independent (grid-level parallelism), so
/// the launcher executes them on a persistent pool of host worker threads
/// (WarpExecutor) — sized by set_worker_threads() / GPUKSEL_THREADS,
/// defaulting to hardware_concurrency() — with per-warp metrics reduced in
/// warp order and first-fault-wins abort semantics, so every observable
/// outcome is bit-identical to the one-thread serial loop.
class Device {
 public:
  /// Allocates an uninitialised device buffer of n elements: reading an
  /// element before any store faults under the sanitizer's poison check.
  template <typename T>
  DeviceBuffer<T> alloc(std::size_t n) {
    return DeviceBuffer<T>::uninitialized(n);
  }

  /// Allocates a device buffer of n elements filled with `fill`
  /// (cudaMemset-style: the contents count as initialized).
  template <typename T>
  DeviceBuffer<T> alloc(std::size_t n, T fill) {
    return DeviceBuffer<T>(n, fill);
  }

  /// Copies host data to a new device buffer, charging the PCIe link.
  template <typename T>
  DeviceBuffer<T> upload(std::span<const T> host) {
    transfers_.bytes_h2d += host.size() * sizeof(T);
    return DeviceBuffer<T>(std::vector<T>(host.begin(), host.end()));
  }

  /// Vector overload: one copy into the by-value parameter (zero for
  /// rvalues), moved straight into the device buffer — the span path would
  /// pay a second host-side copy building its intermediate vector.
  template <typename T>
  DeviceBuffer<T> upload(std::vector<T> host) {
    transfers_.bytes_h2d += host.size() * sizeof(T);
    return DeviceBuffer<T>(std::move(host));
  }

  /// Copies a device buffer back to the host, charging the PCIe link.
  template <typename T>
  std::vector<T> download(const DeviceBuffer<T>& buf) {
    transfers_.bytes_d2h += buf.bytes();
    return buf.host();
  }

  /// This device's buffer recycler.  Pooled uploads/allocations reuse
  /// released storage blocks best-fit; stats() partitions exactly.
  [[nodiscard]] BufferPool& pool() noexcept { return pool_; }
  [[nodiscard]] const BufferPool& pool() const noexcept { return pool_; }

  /// upload() through the pool: charges the PCIe link identically, but the
  /// backing block is recycled from a released buffer when one fits.
  template <typename T>
  DeviceBuffer<T> upload_pooled(std::span<const T> host) {
    transfers_.bytes_h2d += host.size() * sizeof(T);
    return pool_.fill(host);
  }

  /// alloc(n, fill) through the pool (cudaMemset model: initialized contents,
  /// no transfer charge).
  template <typename T>
  DeviceBuffer<T> alloc_pooled(std::size_t n, T fill = T{}) {
    return pool_.acquire<T>(n, fill);
  }

  /// Returns a buffer's backing block to this device's pool.
  template <typename T>
  void release(DeviceBuffer<T>&& buf) {
    pool_.release(std::move(buf));
  }

  /// Partial in-place upload (cudaMemcpy into an existing allocation):
  /// copies `host` into `buf` at element offset `first`, charging only the
  /// copied bytes.  The host-side write marks the buffer's shadow dirty, so
  /// the next span() models the whole buffer as freshly uploaded.
  template <typename T>
  void upload_into(DeviceBuffer<T>& buf, std::size_t first,
                   std::span<const T> host) {
    GPUKSEL_CHECK(first <= buf.size() && host.size() <= buf.size() - first,
                  "upload_into out of range");
    transfers_.bytes_h2d += host.size() * sizeof(T);
    std::copy(host.begin(), host.end(), buf.host().begin() + first);
  }

  /// Runs `kernel(WarpContext&, warp_id)` for warp_id in [0, num_warps) and
  /// returns the metrics summed over all warps.  The name labels the launch
  /// in fault reports and is the key the injector's kernel filter matches.
  ///
  /// Under LaunchPolicy::kParallel (the default) warps are distributed over
  /// the worker pool; each warp accumulates into its own KernelMetrics slot
  /// and the slots are reduced in ascending warp order, so the sum is
  /// bit-identical to serial execution.  A faulting warp aborts the launch
  /// with first-fault-wins semantics (see WarpExecutor); metrics are not
  /// updated on an aborted launch, matching the serial loop.  The launch
  /// falls back to the serial loop when only one thread or warp is
  /// available, when the policy demands it, or when an attached injector
  /// has a live bounded fault budget (whose spend order is inherently
  /// serial — see FaultInjector::parallel_safe).
  template <typename Kernel>
  KernelMetrics launch(const char* kernel_name, std::size_t num_warps,
                       Kernel&& kernel,
                       LaunchPolicy policy = LaunchPolicy::kParallel) {
    if (injector_ != nullptr) injector_->begin_launch(kernel_name, num_warps);
    const unsigned threads = worker_threads();
    const bool serial =
        policy == LaunchPolicy::kSerial || threads <= 1 || num_warps <= 1 ||
        (injector_ != nullptr && !injector_->parallel_safe());
    // Per-warp slots (metrics and, when profiling, region profiles) are
    // reduced in ascending warp order below, so the aggregate — and the
    // whole profile — is bit-identical to serial execution.
    std::vector<KernelMetrics> slots(num_warps);
    std::vector<WarpProfile> profiles;
    if (profiler_ != nullptr) {
      profiles.resize(num_warps);
      for (WarpProfile& p : profiles) {
        p.set_span_capacity(profiler_->max_spans_per_warp());
      }
    }
    WarpProfile* const profile0 = profiles.empty() ? nullptr : profiles.data();
    const auto start = std::chrono::steady_clock::now();
    if (serial) {
      for (std::size_t w = 0; w < num_warps; ++w) {
        WarpContext ctx(slots[w], static_cast<std::uint32_t>(w), &sanitizer_,
                        injector_, kernel_name,
                        profile0 == nullptr ? nullptr : profile0 + w);
        try {
          kernel(ctx, static_cast<std::uint32_t>(w));
        } catch (...) {
          if (injector_ != nullptr) {
            injector_->end_launch(static_cast<std::uint32_t>(w));
          }
          throw;
        }
      }
    } else {
      WarpExecutor& exec = executor(threads);
      try {
        exec.run(num_warps, [&](std::uint32_t w) {
          WarpContext ctx(slots[w], w, &sanitizer_, injector_, kernel_name,
                          profile0 == nullptr ? nullptr : profile0 + w);
          kernel(ctx, w);
        });
      } catch (...) {
        if (injector_ != nullptr) {
          injector_->end_launch(exec.last_abort()->warp_id);
        }
        throw;
      }
    }
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    KernelMetrics total;
    for (std::size_t w = 0; w < num_warps; ++w) {
      if (profiler_ != nullptr) profiles[w].finalize(slots[w]);
      total += slots[w];
    }
    if (injector_ != nullptr) injector_->end_launch();
    if (profiler_ != nullptr) {
      profiler_->record_launch(kernel_name, serial ? 1u : threads, wall,
                               std::move(slots), std::move(profiles), total);
    }
    last_launch_ = total;
    cumulative_ += total;
    return total;
  }

  template <typename Kernel>
  KernelMetrics launch(std::size_t num_warps, Kernel&& kernel,
                       LaunchPolicy policy = LaunchPolicy::kParallel) {
    return launch("kernel", num_warps, std::forward<Kernel>(kernel), policy);
  }

  /// Sets how many host threads launches may use: n >= 2 enables the pool,
  /// n == 1 forces the serial loop, n == 0 restores the default
  /// (GPUKSEL_THREADS env var, else hardware_concurrency).
  void set_worker_threads(unsigned n) {
    requested_threads_ = n;
    if (executor_ != nullptr && executor_->thread_count() != worker_threads()) {
      executor_.reset();
    }
  }

  /// The thread count the next parallel launch will use.
  [[nodiscard]] unsigned worker_threads() const noexcept {
    return requested_threads_ != 0 ? requested_threads_
                                   : default_worker_threads();
  }

  [[nodiscard]] SanitizerConfig& sanitizer() noexcept { return sanitizer_; }
  [[nodiscard]] const SanitizerConfig& sanitizer() const noexcept {
    return sanitizer_;
  }

  /// Attaches (or with nullptr detaches) a fault injector; not owned.
  void set_fault_injector(FaultInjector* injector) noexcept {
    injector_ = injector;
  }
  [[nodiscard]] FaultInjector* fault_injector() const noexcept {
    return injector_;
  }

  /// Attaches (or with nullptr detaches) a profiler; not owned.  While
  /// attached, every completed launch appends one KernelRecord (aborted
  /// launches record nothing, matching the metrics contract).
  void set_profiler(Profiler* profiler) noexcept { profiler_ = profiler; }
  [[nodiscard]] Profiler* profiler() const noexcept { return profiler_; }

  [[nodiscard]] const KernelMetrics& last_launch() const noexcept {
    return last_launch_;
  }
  [[nodiscard]] const KernelMetrics& cumulative() const noexcept {
    return cumulative_;
  }
  [[nodiscard]] const TransferStats& transfers() const noexcept {
    return transfers_;
  }

  /// Clears cumulative metrics and transfer counters.
  void reset_stats() noexcept {
    last_launch_ = {};
    cumulative_ = {};
    transfers_ = {};
  }

 private:
  /// The pool, built lazily at the first parallel launch and kept across
  /// launches; rebuilt only when the thread count changes.
  WarpExecutor& executor(unsigned threads) {
    if (executor_ == nullptr || executor_->thread_count() != threads) {
      executor_ = std::make_unique<WarpExecutor>(threads);
    }
    return *executor_;
  }

  KernelMetrics last_launch_;
  KernelMetrics cumulative_;
  TransferStats transfers_;
  BufferPool pool_;
  SanitizerConfig sanitizer_;
  FaultInjector* injector_ = nullptr;
  Profiler* profiler_ = nullptr;
  unsigned requested_threads_ = 0;  ///< 0 = default_worker_threads()
  std::unique_ptr<WarpExecutor> executor_;
};

}  // namespace gpuksel::simt
