// Device: allocation, host<->device transfer accounting, kernel launch.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "simt/fault_injection.hpp"
#include "simt/memory.hpp"
#include "simt/metrics.hpp"
#include "simt/sanitizer.hpp"
#include "simt/warp.hpp"

namespace gpuksel::simt {

/// The simulated GPU.  Owns transfer statistics, the sanitizer configuration
/// every launched warp checks against, an optional fault injector, and runs
/// kernels warp by warp; warps are independent (grid-level parallelism), so
/// the launcher may execute them in any order or in parallel host threads.
class Device {
 public:
  /// Allocates an uninitialised device buffer of n elements: reading an
  /// element before any store faults under the sanitizer's poison check.
  template <typename T>
  DeviceBuffer<T> alloc(std::size_t n) {
    return DeviceBuffer<T>::uninitialized(n);
  }

  /// Allocates a device buffer of n elements filled with `fill`
  /// (cudaMemset-style: the contents count as initialized).
  template <typename T>
  DeviceBuffer<T> alloc(std::size_t n, T fill) {
    return DeviceBuffer<T>(n, fill);
  }

  /// Copies host data to a new device buffer, charging the PCIe link.
  template <typename T>
  DeviceBuffer<T> upload(std::span<const T> host) {
    transfers_.bytes_h2d += host.size() * sizeof(T);
    return DeviceBuffer<T>(std::vector<T>(host.begin(), host.end()));
  }

  template <typename T>
  DeviceBuffer<T> upload(const std::vector<T>& host) {
    return upload(std::span<const T>(host));
  }

  /// Copies a device buffer back to the host, charging the PCIe link.
  template <typename T>
  std::vector<T> download(const DeviceBuffer<T>& buf) {
    transfers_.bytes_d2h += buf.bytes();
    return buf.host();
  }

  /// Runs `kernel(WarpContext&, warp_id)` for warp_id in [0, num_warps) and
  /// returns the metrics summed over all warps.  The name labels the launch
  /// in fault reports and is the key the injector's kernel filter matches.
  template <typename Kernel>
  KernelMetrics launch(const char* kernel_name, std::size_t num_warps,
                       Kernel&& kernel) {
    if (injector_ != nullptr) injector_->begin_launch(kernel_name, num_warps);
    KernelMetrics total;
    for (std::size_t w = 0; w < num_warps; ++w) {
      KernelMetrics per_warp;
      WarpContext ctx(per_warp, static_cast<std::uint32_t>(w), &sanitizer_,
                      injector_, kernel_name);
      kernel(ctx, static_cast<std::uint32_t>(w));
      total += per_warp;
    }
    last_launch_ = total;
    cumulative_ += total;
    return total;
  }

  template <typename Kernel>
  KernelMetrics launch(std::size_t num_warps, Kernel&& kernel) {
    return launch("kernel", num_warps, std::forward<Kernel>(kernel));
  }

  [[nodiscard]] SanitizerConfig& sanitizer() noexcept { return sanitizer_; }
  [[nodiscard]] const SanitizerConfig& sanitizer() const noexcept {
    return sanitizer_;
  }

  /// Attaches (or with nullptr detaches) a fault injector; not owned.
  void set_fault_injector(FaultInjector* injector) noexcept {
    injector_ = injector;
  }
  [[nodiscard]] FaultInjector* fault_injector() const noexcept {
    return injector_;
  }

  [[nodiscard]] const KernelMetrics& last_launch() const noexcept {
    return last_launch_;
  }
  [[nodiscard]] const KernelMetrics& cumulative() const noexcept {
    return cumulative_;
  }
  [[nodiscard]] const TransferStats& transfers() const noexcept {
    return transfers_;
  }

  /// Clears cumulative metrics and transfer counters.
  void reset_stats() noexcept {
    last_launch_ = {};
    cumulative_ = {};
    transfers_ = {};
  }

 private:
  KernelMetrics last_launch_;
  KernelMetrics cumulative_;
  TransferStats transfers_;
  SanitizerConfig sanitizer_;
  FaultInjector* injector_ = nullptr;
};

}  // namespace gpuksel::simt
