// Fundamental SIMT types: lane masks and per-lane register variables.
//
// The simulator executes kernels in *warp-synchronous* (explicit-mask) style:
// a warp instruction operates on all 32 lanes at once, and an active-lane
// mask selects which lanes actually commit results.  This is precisely the
// execution model CUDA hardware enforces; writing it out explicitly is what
// lets us count divergence instead of merely suffering it.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <type_traits>

namespace gpuksel::simt {

/// Number of lanes per warp, matching NVIDIA hardware (and the paper).
inline constexpr int kWarpSize = 32;

/// One bit per lane; bit i set means lane i is active.
using LaneMask = std::uint32_t;

/// Mask with all 32 lanes active.
inline constexpr LaneMask kFullMask = 0xffffffffu;

/// Mask with exactly lane `lane` active.
constexpr LaneMask lane_bit(int lane) noexcept {
  return LaneMask{1} << lane;
}

/// Mask with the first n lanes active (n in [0, 32]).
constexpr LaneMask first_lanes(int n) noexcept {
  return n >= kWarpSize ? kFullMask : (LaneMask{1} << n) - 1;
}

/// Number of active lanes in the mask.
constexpr int popcount(LaneMask m) noexcept { return std::popcount(m); }

/// True if lane `lane` is active in `m`.
constexpr bool lane_active(LaneMask m, int lane) noexcept {
  return (m & lane_bit(lane)) != 0;
}

/// Index of the lowest active lane; kWarpSize when the mask is empty.
constexpr int lowest_lane(LaneMask m) noexcept {
  return m == 0 ? kWarpSize : std::countr_zero(m);
}

/// A per-lane register: one value of T for each of the 32 lanes.
///
/// WarpVar is a plain aggregate; *all* cost accounting happens through
/// WarpContext operations, so WarpVar itself has value semantics and free
/// element access (used by kernels only for setup and by tests for
/// inspection).
template <typename T>
struct alignas(64) WarpVar {
  std::array<T, kWarpSize> lanes{};

  constexpr T& operator[](int lane) noexcept { return lanes[lane]; }
  constexpr const T& operator[](int lane) const noexcept {
    return lanes[lane];
  }

  /// All lanes set to the same value.
  static constexpr WarpVar filled(T value) noexcept {
    WarpVar v;
    v.lanes.fill(value);
    return v;
  }

  /// Lane i gets value i (the canonical threadIdx.x % 32 register).
  static constexpr WarpVar iota(T start = T{0}, T step = T{1}) noexcept {
    WarpVar v;
    T cur = start;
    for (int i = 0; i < kWarpSize; ++i, cur = static_cast<T>(cur + step)) {
      v.lanes[i] = cur;
    }
    return v;
  }
};

using F32 = WarpVar<float>;
using U32 = WarpVar<std::uint32_t>;
using I32 = WarpVar<std::int32_t>;

// The vector backend (lane_vec.hpp) loads WarpVar storage directly with
// aligned 64-byte vector moves; these pin the layout that makes that legal.
static_assert(sizeof(F32) == kWarpSize * sizeof(float) &&
                  sizeof(U32) == kWarpSize * sizeof(std::uint32_t) &&
                  sizeof(I32) == kWarpSize * sizeof(std::int32_t),
              "WarpVar<4-byte T> must be exactly 32 packed lanes");
static_assert(alignof(F32) >= 64 && alignof(U32) >= 64 && alignof(I32) >= 64,
              "WarpVar must be 64-byte aligned for full-width vector loads");
static_assert(std::is_trivially_copyable_v<F32> &&
                  std::is_trivially_copyable_v<U32> &&
                  std::is_trivially_copyable_v<I32>,
              "WarpVar lanes must be raw bits; the backend memcpy/loads them");

}  // namespace gpuksel::simt
