#include "simt/executor.hpp"

#include <cstdlib>

namespace gpuksel::simt {

WarpExecutor::WarpExecutor(unsigned threads) : threads_(threads) {
  GPUKSEL_CHECK(threads >= 1, "executor needs at least one thread");
  workers_.reserve(threads - 1);
  for (unsigned i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

WarpExecutor::~WarpExecutor() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : workers_) t.join();
}

void WarpExecutor::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    cv_work_.wait(lk, [&] { return shutdown_ || generation_ != seen; });
    if (shutdown_) return;
    seen = generation_;
    ++active_;
    lk.unlock();
    drain();
    lk.lock();
    if (--active_ == 0) cv_done_.notify_all();
  }
}

void WarpExecutor::drain() {
  while (true) {
    const std::size_t w = next_.fetch_add(1, std::memory_order_relaxed);
    if (w >= num_warps_) break;
    execute_one(static_cast<std::uint32_t>(w));
    if (retired_.fetch_add(1, std::memory_order_acq_rel) + 1 == num_warps_) {
      std::lock_guard<std::mutex> lk(mu_);
      cv_done_.notify_all();
    }
  }
}

void WarpExecutor::execute_one(std::uint32_t w) {
  // Cancellation: a warp above the current best abort can be skipped — the
  // serial loop would never have reached it.  Warps *below* must still run
  // so a lower fault can claim the win (see header).
  if (w > abort_warp_.load(std::memory_order_acquire)) return;
  try {
    (*body_)(w);
  } catch (...) {
    std::lock_guard<std::mutex> lk(abort_mu_);
    if (w < abort_warp_.load(std::memory_order_relaxed)) {
      abort_warp_.store(w, std::memory_order_release);
      abort_ = LaunchAbort{w, std::current_exception()};
    }
  }
}

void WarpExecutor::run(std::size_t num_warps,
                       const std::function<void(std::uint32_t)>& body) {
  if (num_warps == 0) {
    abort_.reset();
    return;
  }
  {
    std::unique_lock<std::mutex> lk(mu_);
    // A worker late to the previous generation may still be inside drain();
    // wait it out so per-run state can be reset safely.
    cv_done_.wait(lk, [&] { return active_ == 0; });
    body_ = &body;
    num_warps_ = num_warps;
    next_.store(0, std::memory_order_relaxed);
    retired_.store(0, std::memory_order_relaxed);
    abort_warp_.store(kNoAbort, std::memory_order_relaxed);
    abort_.reset();
    ++generation_;
  }
  cv_work_.notify_all();
  drain();  // the calling thread is pool member #0
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] {
      return active_ == 0 && retired_.load(std::memory_order_acquire) >= num_warps_;
    });
    body_ = nullptr;
  }
  if (abort_.has_value()) std::rethrow_exception(abort_->error);
}

unsigned default_worker_threads() noexcept {
  static const unsigned resolved = [] {
    if (const char* env = std::getenv("GPUKSEL_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v >= 1) return static_cast<unsigned>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? hw : 1u;
  }();
  return resolved;
}

}  // namespace gpuksel::simt
