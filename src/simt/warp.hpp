// WarpContext: the instruction set of the simulated SIMT machine.
//
// Kernels are written in warp-synchronous style: every operation takes an
// active-lane mask and executes for all 32 lanes at once; inactive lanes keep
// their previous register values (predicated execution).  Host-side `if`/`for`
// over masks plays the role of the hardware's divergence stack: a path whose
// mask is empty is skipped (as hardware does for a unanimous branch), and a
// path executed with a sparse mask is charged full instruction slots — that
// charge *is* branch divergence.
//
// Cost accounting conventions (asserted by tests):
//  * every WarpContext operation issues exactly one warp instruction unless
//    documented otherwise (reductions and conflicted shared accesses issue
//    more);
//  * useful lane-slots accrue popcount(mask) per issued instruction;
//  * global accesses additionally count one 128-byte transaction per distinct
//    segment touched by active lanes (coalescing model);
//  * shared accesses replay once per conflicting bank access.
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <type_traits>

#include "simt/fault_injection.hpp"
#include "simt/lane_vec.hpp"
#include "simt/memory.hpp"
#include "simt/metrics.hpp"
#include "simt/profiler.hpp"
#include "simt/sanitizer.hpp"
#include "simt/types.hpp"
#include "util/check.hpp"

namespace gpuksel::simt {

class ScopedRegion;

class WarpContext {
 public:
  /// Direct construction (unit tests) leaves `sanitizer` null: no checks, the
  /// legacy permissive machine.  Device::launch always passes its sanitizer
  /// and, when a profiler is attached, this warp's WarpProfile slot.
  WarpContext(KernelMetrics& metrics, std::uint32_t warp_id,
              const SanitizerConfig* sanitizer = nullptr,
              FaultInjector* injector = nullptr,
              const char* kernel_name = "kernel",
              WarpProfile* profile = nullptr) noexcept
      : metrics_(metrics),
        warp_id_(warp_id),
        sanitizer_(sanitizer),
        injector_(injector),
        kernel_name_(kernel_name),
        profile_(profile),
        unchecked_((injector == nullptr || !injector->kernel_enabled()) &&
                   (sanitizer == nullptr || !sanitizer->any_check_on())),
        injector_live_(injector != nullptr && injector->kernel_enabled()),
        shadow_checks_(sanitizer != nullptr &&
                       (sanitizer->poison || sanitizer->ecc)) {}

  WarpContext(const WarpContext&) = delete;
  WarpContext& operator=(const WarpContext&) = delete;

  [[nodiscard]] std::uint32_t warp_id() const noexcept { return warp_id_; }
  [[nodiscard]] KernelMetrics& metrics() noexcept { return metrics_; }
  [[nodiscard]] const SanitizerConfig* sanitizer() const noexcept {
    return sanitizer_;
  }
  [[nodiscard]] const char* kernel_name() const noexcept {
    return kernel_name_;
  }

  /// Reports a sanitizer fault with full execution context (public so that
  /// SharedArray can report through its owning context).
  [[noreturn]] void fault(FaultKind kind, int lane, std::string detail) const {
    raise_fault(FaultRecord{kind, kernel_name_, warp_id_,
                            metrics_.instructions, lane, std::move(detail)});
  }

  /// The canonical lane-index register (threadIdx.x % 32).  Free: it is a
  /// hardware special register.
  [[nodiscard]] static U32 lane_id() noexcept {
    return U32::iota();
  }

  /// Charges `count` warp instructions executed under mask `m`.
  void issue(LaneMask m, std::uint64_t count = 1) noexcept {
    metrics_.instructions += count;
    metrics_.useful_lane_slots +=
        count * static_cast<std::uint64_t>(popcount(m));
  }

  // --- profiling regions ----------------------------------------------------

  /// Opens a named profiling region scoped to the returned guard; counters
  /// accrued while it is the innermost open region are attributed to `name`.
  /// Free (regions charge no instructions) and a no-op when no profiler is
  /// attached.  `name` must be a string literal (stable for the launch).
  [[nodiscard]] ScopedRegion region(const char* name);

  /// Raw region controls for non-RAII callers; prefer region().
  void enter_region(const char* name) {
    if (profile_ != nullptr) profile_->enter(name, metrics_);
  }
  void exit_region() {
    if (profile_ != nullptr) profile_->exit(metrics_);
  }

  // --- register moves -----------------------------------------------------

  /// Broadcast an immediate into active lanes of `dst` (move-immediate).
  template <typename T>
  void mov(LaneMask m, WarpVar<T>& dst, T value) noexcept {
    issue(m);
    if constexpr (lanevec::lane32<T>) {
      lanevec::fill(m, dst, value);
    } else {
      for_active(m, [&](int i) { dst[i] = value; });
    }
  }

  /// Fresh register holding `value` in every lane.
  template <typename T>
  WarpVar<T> imm(LaneMask m, T value) noexcept {
    WarpVar<T> v = WarpVar<T>::filled(value);
    issue(m);
    return v;
  }

  /// Copy active lanes of `src` into `dst`.
  template <typename T>
  void cpy(LaneMask m, WarpVar<T>& dst, const WarpVar<T>& src) noexcept {
    issue(m);
    if constexpr (lanevec::lane32<T>) {
      lanevec::copy(m, dst, src);
    } else {
      for_active(m, [&](int i) { dst[i] = src[i]; });
    }
  }

  // --- ALU -----------------------------------------------------------------

  /// Generic one-instruction ALU op: dst[i] = f(i) for active lanes.  The
  /// functor must be a per-lane expression over already-held registers.
  /// Executes lane-by-lane — the escape hatch for irregular per-lane logic;
  /// the typed ops below cover the hot shapes with the vector backend.
  template <typename T, typename F>
  void alu(LaneMask m, WarpVar<T>& dst, F&& f) noexcept {
    issue(m);
    for_active(m, [&](int i) { dst[i] = f(i); });
  }

  template <typename T>
  WarpVar<T> add(LaneMask m, const WarpVar<T>& a, const WarpVar<T>& b) noexcept {
    if constexpr (lanevec::lane32<T>) {
      WarpVar<T> r;
      issue(m);
      lanevec::add(m, r, a, b);
      return r;
    } else {
      WarpVar<T> r = a;
      alu(m, r, [&](int i) { return static_cast<T>(a[i] + b[i]); });
      return r;
    }
  }

  template <typename T>
  WarpVar<T> add(LaneMask m, const WarpVar<T>& a, T b) noexcept {
    if constexpr (lanevec::lane32<T>) {
      WarpVar<T> r;
      issue(m);
      lanevec::add_s(m, r, a, b);
      return r;
    } else {
      WarpVar<T> r = a;
      alu(m, r, [&](int i) { return static_cast<T>(a[i] + b); });
      return r;
    }
  }

  template <typename T>
  WarpVar<T> sub(LaneMask m, const WarpVar<T>& a, const WarpVar<T>& b) noexcept {
    if constexpr (lanevec::lane32<T>) {
      WarpVar<T> r;
      issue(m);
      lanevec::sub(m, r, a, b);
      return r;
    } else {
      WarpVar<T> r = a;
      alu(m, r, [&](int i) { return static_cast<T>(a[i] - b[i]); });
      return r;
    }
  }

  template <typename T>
  WarpVar<T> mul(LaneMask m, const WarpVar<T>& a, T b) noexcept {
    if constexpr (lanevec::lane32<T>) {
      WarpVar<T> r;
      issue(m);
      lanevec::mul_s(m, r, a, b);
      return r;
    } else {
      WarpVar<T> r = a;
      alu(m, r, [&](int i) { return static_cast<T>(a[i] * b); });
      return r;
    }
  }

  /// dst[i] = cond lane i active in `take` ? a[i] : b[i] — a select executed
  /// under `m` (both operands already in registers).
  template <typename T>
  WarpVar<T> select(LaneMask m, LaneMask take, const WarpVar<T>& a,
                    const WarpVar<T>& b) noexcept {
    if constexpr (lanevec::lane32<T>) {
      WarpVar<T> r;
      issue(m);
      lanevec::select(m, take, r, a, b);
      return r;
    } else {
      WarpVar<T> r = b;
      alu(m, r, [&](int i) { return lane_active(take, i) ? a[i] : b[i]; });
      return r;
    }
  }

  // --- fused typed ops (one instruction each, vector-backed) ----------------
  //
  // These cover the address-generation and inner-loop shapes that dominated
  // the kernels' generic alu()/pred() lambdas.  Each is exactly one issued
  // instruction with the same lane semantics the lambda form had.

  /// Fresh register: r[i] = a[i] * mul + addc for active lanes, 0 elsewhere
  /// (matching the default-initialized WarpVar a lambda alu would write into).
  template <typename T>
  WarpVar<T> mad(LaneMask m, const WarpVar<T>& a, T mul, T addc) noexcept {
    static_assert(std::is_integral_v<T>, "mad is integer address math");
    WarpVar<T> r;
    issue(m);
    lanevec::mad_s(m, r, a, mul, addc);
    return r;
  }

  /// Fresh register: r[i] = a[i] * mul + b[i] for active lanes, 0 elsewhere.
  template <typename T>
  WarpVar<T> mad(LaneMask m, const WarpVar<T>& a, T mul,
                 const WarpVar<T>& b) noexcept {
    static_assert(std::is_integral_v<T>, "mad is integer address math");
    WarpVar<T> r;
    issue(m);
    lanevec::mad_v(m, r, a, mul, b);
    return r;
  }

  /// Fresh register: r[i] = base + i for active lanes, 0 elsewhere — the
  /// canonical flat-thread-index computation.
  [[nodiscard]] U32 lane_offset(LaneMask m, std::uint32_t base) noexcept {
    U32 r;
    issue(m);
    lanevec::lane_offset(m, r, base);
    return r;
  }

  /// acc[i] += d[i]*d[i] for active lanes — the distance-kernel inner step.
  /// Two separately rounded IEEE ops (mul, then add); never an FMA.
  void add_sq(LaneMask m, F32& acc, const F32& d) noexcept {
    issue(m);
    lanevec::add_sq(m, acc, d);
  }

  /// Fresh register: r[i] = i >= delta ? src[i-delta] : 0 for active lanes —
  /// the Hillis-Steele scan shift (one instruction, like the lambda it
  /// replaces).
  [[nodiscard]] U32 shift_up_zero(LaneMask m, const U32& src,
                                  int delta) noexcept {
    U32 r;
    issue(m);
    lanevec::shift_up_zero(m, r, src, delta);
    return r;
  }

  /// Fresh register: the bitonic network's lower-pair position for per-lane
  /// pair p = base + i at power-of-two stride — r[i] = 2*stride*(p/stride) +
  /// p%stride for active lanes, 0 elsewhere (one instruction, like the alu
  /// lambda it replaces).
  [[nodiscard]] U32 bitonic_low_index(LaneMask m, std::uint32_t base,
                                      std::uint32_t stride) noexcept {
    U32 r;
    issue(m);
    lanevec::bitonic_low_index(m, r, base, stride);
    return r;
  }

  /// Mask of active lanes where (a[i] & bits) != 0 — a one-instruction bit
  /// probe (the bitonic direction test).
  LaneMask test_any(LaneMask m, const U32& a, std::uint32_t bits) noexcept {
    issue(m);
    return lanevec::test_bits(m, a, bits);
  }

  // --- predicates ----------------------------------------------------------

  /// Generic compare producing a predicate mask restricted to `m`.  Lane-by-
  /// lane escape hatch; the typed compares below are vector-backed.
  template <typename F>
  LaneMask pred(LaneMask m, F&& f) noexcept {
    issue(m);
    LaneMask out = 0;
    for_active(m, [&](int i) {
      if (f(i)) out |= lane_bit(i);
    });
    return out;
  }

  template <typename T>
  LaneMask cmp_lt(LaneMask m, const WarpVar<T>& a, const WarpVar<T>& b) noexcept {
    if constexpr (lanevec::lane32<T>) {
      issue(m);
      return lanevec::cmp_lt(m, a, b);
    } else {
      return pred(m, [&](int i) { return a[i] < b[i]; });
    }
  }
  template <typename T>
  LaneMask cmp_lt(LaneMask m, const WarpVar<T>& a, T b) noexcept {
    if constexpr (lanevec::lane32<T>) {
      issue(m);
      return lanevec::cmp_lt_s(m, a, b);
    } else {
      return pred(m, [&](int i) { return a[i] < b; });
    }
  }
  template <typename T>
  LaneMask cmp_le(LaneMask m, const WarpVar<T>& a, const WarpVar<T>& b) noexcept {
    if constexpr (lanevec::lane32<T>) {
      issue(m);
      return lanevec::cmp_le(m, a, b);
    } else {
      return pred(m, [&](int i) { return a[i] <= b[i]; });
    }
  }
  template <typename T>
  LaneMask cmp_gt(LaneMask m, const WarpVar<T>& a, const WarpVar<T>& b) noexcept {
    if constexpr (lanevec::lane32<T>) {
      issue(m);
      return lanevec::cmp_gt(m, a, b);
    } else {
      return pred(m, [&](int i) { return a[i] > b[i]; });
    }
  }
  template <typename T>
  LaneMask cmp_gt(LaneMask m, const WarpVar<T>& a, T b) noexcept {
    if constexpr (lanevec::lane32<T>) {
      issue(m);
      return lanevec::cmp_gt_s(m, a, b);
    } else {
      return pred(m, [&](int i) { return a[i] > b; });
    }
  }
  template <typename T>
  LaneMask cmp_ge(LaneMask m, const WarpVar<T>& a, const WarpVar<T>& b) noexcept {
    if constexpr (lanevec::lane32<T>) {
      issue(m);
      return lanevec::cmp_ge(m, a, b);
    } else {
      return pred(m, [&](int i) { return a[i] >= b[i]; });
    }
  }
  template <typename T>
  LaneMask cmp_eq(LaneMask m, const WarpVar<T>& a, T b) noexcept {
    if constexpr (lanevec::lane32<T>) {
      issue(m);
      return lanevec::cmp_eq_s(m, a, b);
    } else {
      return pred(m, [&](int i) { return a[i] == b; });
    }
  }
  template <typename T>
  LaneMask cmp_eq(LaneMask m, const WarpVar<T>& a, const WarpVar<T>& b) noexcept {
    if constexpr (lanevec::lane32<T>) {
      issue(m);
      return lanevec::cmp_eq(m, a, b);
    } else {
      return pred(m, [&](int i) { return a[i] == b[i]; });
    }
  }

  /// Lexicographic (dist, index) less-than — the queue-entry order predicate:
  /// (ad[i], ai[i]) < (bd[i], bi[i]) with distances compared first and ties
  /// broken by index.  One instruction, identical to the pred() lambda form
  /// for every payload (NaN distances compare false on both legs).
  LaneMask lex_lt(LaneMask m, const F32& ad, const U32& ai, const F32& bd,
                  const U32& bi) noexcept {
    issue(m);
    return lanevec::cmp_lex_lt(m, ad, ai, bd, bi);
  }

  /// Mask of active lanes where base + i < bound (fused iota compare).
  LaneMask iota_lt(LaneMask m, std::uint32_t base,
                   std::uint32_t bound) noexcept {
    issue(m);
    return lanevec::cmp_iota_lt(m, base, bound);
  }

  /// Mask of active lanes where a[i] + 1 < bound (the queue-advance test).
  LaneMask inc_lt(LaneMask m, const U32& a, std::uint32_t bound) noexcept {
    issue(m);
    return lanevec::cmp_inc_lt(m, a, bound);
  }

  // --- votes and shuffles --------------------------------------------------

  /// __ballot_sync: one instruction; the predicate is already a mask in our
  /// representation, so this just charges the vote and returns it.
  LaneMask ballot(LaneMask m, LaneMask predicate) noexcept {
    issue(m);
    return predicate & m;
  }

  /// __any_sync.
  bool any(LaneMask m, LaneMask predicate) noexcept {
    issue(m);
    return (predicate & m) != 0;
  }

  /// __all_sync.
  bool all(LaneMask m, LaneMask predicate) noexcept {
    issue(m);
    return (predicate & m) == m;
  }

  /// __shfl_sync: every active lane reads `src` from lane `from[i] % 32`.
  /// Reading from a lane outside the mask returns stale data on hardware;
  /// the sanitizer's lockstep check faults instead.
  template <typename T>
  WarpVar<T> shfl(LaneMask m, const WarpVar<T>& src, const U32& from) {
    if (lockstep_on() &&
        lanevec::permute_inactive_sources(m, from) != 0) {
      // A violation exists; rerun the scalar walk so the first faulting
      // lane (ascending order) and its message match the reference engine.
      for_active(m, [&](int i) {
        check_shuffle_source(m, i, static_cast<int>(from[i] % kWarpSize));
      });
    }
    if constexpr (lanevec::lane32<T>) {
      WarpVar<T> r;
      issue(m);
      lanevec::permute(m, r, src, from);
      return r;
    } else {
      WarpVar<T> r = src;
      alu(m, r, [&](int i) { return src[from[i] % kWarpSize]; });
      return r;
    }
  }

  /// __shfl_xor_sync with a compile-time lane mask (butterfly step).
  template <typename T>
  WarpVar<T> shfl_xor(LaneMask m, const WarpVar<T>& src, int lanemask) {
    if (lockstep_on() &&
        lanevec::xor_inactive_sources(m, lanemask) != 0) {
      for_active(m, [&](int i) {
        check_shuffle_source(m, i, (i ^ lanemask) % kWarpSize);
      });
    }
    if constexpr (lanevec::lane32<T>) {
      WarpVar<T> r;
      issue(m);
      lanevec::permute_xor(m, r, src, lanemask);
      return r;
    } else {
      WarpVar<T> r = src;
      alu(m, r, [&](int i) { return src[i ^ lanemask]; });
      return r;
    }
  }

  /// Broadcast the value held by `src_lane` to all active lanes.
  template <typename T>
  WarpVar<T> shfl_bcast(LaneMask m, const WarpVar<T>& src, int src_lane) {
    if (lockstep_on() && m != 0) {
      check_shuffle_source(m, lowest_lane(m), src_lane % kWarpSize);
    }
    if constexpr (lanevec::lane32<T>) {
      WarpVar<T> r;
      issue(m);
      lanevec::broadcast(m, r, src, src_lane);
      return r;
    } else {
      WarpVar<T> r = src;
      alu(m, r, [&](int) { return src[src_lane % kWarpSize]; });
      return r;
    }
  }

  // --- global memory ---------------------------------------------------------

  /// Gather: dst[i] = span[idx[i]] for active lanes.  One instruction, one
  /// request, and one transaction per distinct 128-byte segment touched.
  ///
  /// Under a sanitizer the load additionally runs, in order: fault injection
  /// on the effective address, bounds check, uninitialized-read check, fault
  /// injection on the loaded values, ECC shadow verification, NaN policy.
  template <typename T>
  WarpVar<T> load(LaneMask m, DeviceSpan<const T> span, const U32& idx) {
    WarpVar<T> r{};
    issue(m);
    // Fast path: with no injector and every sanitizer check off, the
    // per-access decisions below are all constant no — skip them rather than
    // re-deriving that per lane.  Cost accounting is identical either way.
    if (unchecked_) {
      const std::int64_t contig = contig_of<T>(m, idx);
      charge_transactions<T>(m, span, idx, /*is_store=*/false, contig);
      gather_values(m, span, idx, r, contig);
      return r;
    }
    if (injector_live_) [[unlikely]] {
      const auto planned = consult_injector<T>(m, /*is_load=*/true);
      U32 eidx = idx;
      if (planned) apply_index_fault(*planned, span.size(), eidx);
      checked_load_tail(m, span, eidx, r, planned ? &*planned : nullptr);
      return r;
    }
    checked_load_tail(m, span, idx, r, nullptr);
    return r;
  }

  /// The per-access check pipeline shared by both load entry points: bounds,
  /// transaction charge, poison, element gather, value fault (when an
  /// injector planned one), ECC verify and NaN policy — in the reference
  /// engine's order.
  template <typename T>
  void checked_load_tail(LaneMask m, DeviceSpan<const T> span, const U32& eidx,
                         WarpVar<T>& r, const PlannedFault* planned) {
    const std::int64_t contig = contig_of<T>(m, eidx);
    check_bounds(m, span.size(), eidx, /*is_store=*/false);
    charge_transactions<T>(m, span, eidx, /*is_store=*/false, contig);
    // A pristine span's shadow is consistent by construction (rebuilt at
    // upload, refreshed by every store), so the poison and ECC checks are
    // provably vacuous and the shadow gather feeding them can be skipped —
    // unless an injector is live, whose planned value faults must still trip
    // the ECC verify.  Verdicts and metrics are unchanged either way.
    const bool shadow_trusted = span.pristine() && !injector_live_;
    // The poison check (pre-load) and the ECC verify (post-load) consult the
    // same shadow row; gather it once here for both.
    U32 sh{};
    if (shadow_checks_ && span.has_shadow() && !shadow_trusted) {
      if (contig >= 0) {
        lanevec::gather_contig(m, sh, span.shadow_data(), contig);
      } else {
        lanevec::gather(m, sh, span.shadow_data(), eidx);
      }
      check_initialized(m, span, eidx, sh);
    }
    gather_values(m, span, eidx, r, contig);
    if (planned != nullptr) apply_value_fault(*planned, r);
    verify_loaded(m, span, eidx, r, sh, shadow_trusted);
  }

  template <typename T>
  WarpVar<T> load(LaneMask m, DeviceSpan<T> span, const U32& idx) {
    return load(m, DeviceSpan<const T>(span), idx);
  }

  /// Scatter: span[idx[i]] = v[i] for active lanes.  Lanes writing the same
  /// address commit in lane order (highest lane wins), matching CUDA's
  /// undefined-but-single-winner semantics deterministically — unless the
  /// sanitizer's lockstep check is on, in which case a collision faults (all
  /// kernels in this repo write thread-distinct addresses).
  template <typename T>
  void store(LaneMask m, DeviceSpan<T> span, const U32& idx,
             const WarpVar<T>& v) {
    issue(m);
    // Fast path (see load): no checks to run, and the has_shadow branch is
    // hoisted out of the lane loop.  Shadow bytes are still maintained so a
    // later launch with ecc/poison re-enabled sees coherent metadata.
    if (unchecked_) {
      const std::int64_t contig = contig_of<T>(m, idx);
      charge_transactions<T>(m, span, idx, /*is_store=*/true, contig);
      scatter_values(m, span, idx, v, contig);
      return;
    }
    if (injector_live_) [[unlikely]] {
      const auto planned = consult_injector<T>(m, /*is_load=*/false);
      U32 eidx = idx;
      if (planned) apply_index_fault(*planned, span.size(), eidx);
      checked_store_tail(m, span, eidx, v);
      return;
    }
    checked_store_tail(m, span, idx, v);
  }

  /// The store-side check pipeline shared by both store entry points.
  template <typename T>
  void checked_store_tail(LaneMask m, DeviceSpan<T> span, const U32& eidx,
                          const WarpVar<T>& v) {
    const std::int64_t contig = contig_of<T>(m, eidx);
    check_bounds(m, span.size(), eidx, /*is_store=*/true);
    // A unit-stride run has 32 distinct addresses by construction, so the
    // collision check can only come up empty — skip the scan.
    if (contig < 0) check_store_collisions(m, eidx);
    charge_transactions<T>(m, span, eidx, /*is_store=*/true, contig);
    scatter_values(m, span, eidx, v, contig);
  }

  /// Store an immediate to span[idx[i]] for active lanes.
  template <typename T>
  void store(LaneMask m, DeviceSpan<T> span, const U32& idx, T value) {
    store(m, span, idx, WarpVar<T>::filled(value));
  }

  // --- paired accesses ------------------------------------------------------
  //
  // Per-thread queues split one logical entry across a float array and an
  // index array addressed by the same index vector, so every queue touch is
  // two accesses with identical shape.  The paired entry points charge
  // exactly what two plain calls would — two requests, two transaction
  // counts — but share the stride probe and the segmentation, which are
  // equal because both spans have 4-byte elements and transaction-aligned
  // bases.  With any check or injector armed they ARE two plain calls.

  /// ra = a[idx], rb = b[idx] under one index vector.
  template <typename A, typename B>
  void load_pair(LaneMask m, DeviceSpan<const A> a, DeviceSpan<const B> b,
                 const U32& idx, WarpVar<A>& ra, WarpVar<B>& rb) {
    static_assert(sizeof(A) == 4 && sizeof(B) == 4,
                  "paired access requires matching 4-byte elements");
    if (unchecked_ && same_segmentation(a, b)) {
      issue(m, 2);
      const std::int64_t contig = contig_of<A>(m, idx);
      const auto n =
          static_cast<std::uint64_t>(transaction_count<A>(m, a, idx, contig));
      metrics_.global_requests += 2;
      metrics_.global_load_tx += 2 * n;
      gather_values(m, a, idx, ra, contig);
      gather_values(m, b, idx, rb, contig);
      return;
    }
    ra = load(m, a, idx);
    rb = load(m, b, idx);
  }

  /// Mutable-span convenience, mirroring load(DeviceSpan<T>).
  template <typename A, typename B>
  void load_pair(LaneMask m, DeviceSpan<A> a, DeviceSpan<B> b, const U32& idx,
                 WarpVar<A>& ra, WarpVar<B>& rb) {
    load_pair(m, DeviceSpan<const A>(a), DeviceSpan<const B>(b), idx, ra, rb);
  }

  /// a[idx] = va, b[idx] = vb under one index vector.
  template <typename A, typename B>
  void store_pair(LaneMask m, DeviceSpan<A> a, DeviceSpan<B> b,
                  const U32& idx, const WarpVar<A>& va, const WarpVar<B>& vb) {
    static_assert(sizeof(A) == 4 && sizeof(B) == 4,
                  "paired access requires matching 4-byte elements");
    if (unchecked_ && same_segmentation(a, b)) {
      issue(m, 2);
      const std::int64_t contig = contig_of<A>(m, idx);
      const auto n =
          static_cast<std::uint64_t>(transaction_count<A>(m, a, idx, contig));
      metrics_.global_requests += 2;
      metrics_.global_store_tx += 2 * n;
      scatter_values(m, a, idx, va, contig);
      scatter_values(m, b, idx, vb, contig);
      return;
    }
    store(m, a, idx, va);
    store(m, b, idx, vb);
  }

  // --- shared memory accounting (used by SharedArray) -----------------------

  /// Charges one shared request issued under `m` touching the given 4-byte
  /// bank words; replays once per extra conflicting access in a bank.
  void charge_shared(LaneMask m, const U32& bank_words) noexcept {
    // Broadcast/all-distinct patterns resolve in a few vector ops; genuinely
    // conflicted requests fall back to the exact per-bank histogram inside
    // shared_degree, so the modeled degree never changes.  The degree is a
    // pure function of (mask, words), and warp-cooperative sorts issue the
    // same access shape several times back to back (read dist, read index,
    // then write both), so a two-entry memo removes most recomputation —
    // for both backends, without touching the modeled cost.
    int degree = -1;
    for (const DegreeMemo& e : degree_memo_) {
      if (e.valid && e.mask == m && lanevec::equal_all(e.words, bank_words)) {
        degree = e.degree;
        break;
      }
    }
    if (degree < 0) {
      // Second level: warp-cooperative sorting networks replay the *same*
      // index shapes once per outer data tile (TBS re-sorts its truncation
      // n/chunk times with identical (mask, words) pairs), so a hashed cache
      // turns every histogram recomputation after the first tile into a
      // lookup.  Collisions just recompute — the degree stored is always
      // exact, so the modeled replay count cannot drift.
      if (degree_cache_.empty()) degree_cache_.resize(kDegreeCacheSize);
      const std::size_t h = hash_words(m, bank_words) & (kDegreeCacheSize - 1);
      DegreeMemo& c = degree_cache_[h];
      if (c.valid && c.mask == m && lanevec::equal_all(c.words, bank_words)) {
        degree = c.degree;
      } else {
        degree = lanevec::shared_degree(m, bank_words);
        c.words = bank_words;
        c.mask = m;
        c.degree = degree;
        c.valid = true;
      }
      // Refresh the MRU pair in place (round-robin victim: one 32-word copy
      // instead of the two an MRU shift would cost).
      DegreeMemo& slot = degree_memo_[memo_evict_];
      memo_evict_ ^= 1;
      slot.words = bank_words;
      slot.mask = m;
      slot.degree = degree;
      slot.valid = true;
    }
    issue(m, static_cast<std::uint64_t>(degree));
    metrics_.shared_requests += 1;
    metrics_.shared_conflict_replays += static_cast<std::uint64_t>(degree - 1);
  }

  /// Broadcast variant: every active lane touches the same bank word, whose
  /// conflict degree is 1 by definition, so the word vector and the memo scan
  /// are skipped outright.  Charges exactly what charge_shared would.
  void charge_shared_broadcast(LaneMask m) noexcept {
    issue(m, 1);
    metrics_.shared_requests += 1;
  }

 private:
  /// Two spans segment identically iff their elements are the same width
  /// (enforced by the callers' static_asserts) and their bases sit at the
  /// same offset within a transaction.
  template <typename SpanA, typename SpanB>
  static bool same_segmentation(const SpanA& a, const SpanB& b) noexcept {
    return a.byte_offset(0) % kTransactionBytes ==
           b.byte_offset(0) % kTransactionBytes;
  }

  template <typename F>
  static void for_active(LaneMask m, F&& f) {
    for (int i = 0; i < kWarpSize; ++i) {
      if (lane_active(m, i)) f(i);
    }
  }

  // --- vectorized element movement ------------------------------------------

  /// dst[i] = span[idx[i]] for active lanes; inactive lanes keep dst's zeros.
  /// Indices must already be bounds-checked (or the span trusted).
  /// The access's unit-stride base (lanevec::contig_base) or -1, computed
  /// once per load/store and threaded through charging, collision checks and
  /// element movement.  Debug bounds-check builds always take the scalar
  /// .at() paths, so the probe is skipped there.
  template <typename T>
  static std::int64_t contig_of(LaneMask m, const U32& idx) noexcept {
#if defined(GPUKSEL_BOUNDS_CHECK)
    (void)m;
    (void)idx;
    return -1;
#else
    if constexpr (lanevec::lane32<T>) {
      return lanevec::contig_base(m, idx);
    } else {
      return -1;
    }
#endif
  }

  template <typename T>
  void gather_values(LaneMask m, DeviceSpan<const T> span, const U32& idx,
                     WarpVar<T>& r, std::int64_t contig) const {
#if defined(GPUKSEL_BOUNDS_CHECK)
    (void)contig;
    for_active(m, [&](int i) { r[i] = span.at(idx[i]); });
#else
    if constexpr (lanevec::lane32<T>) {
      if (contig >= 0) {
        lanevec::gather_contig(m, r, span.data(), contig);
      } else {
        lanevec::gather(m, r, span.data(), idx);
      }
    } else {
      for_active(m, [&](int i) { r[i] = span.at(idx[i]); });
    }
#endif
  }

  /// span[idx[i]] = v[i] for active lanes, plus the shadow checksum when the
  /// span carries one.  Colliding lanes commit lowest-to-highest in both the
  /// vector scatter and the shadow loop, so highest lane wins for value and
  /// shadow alike — exactly the scalar engine's order.
  template <typename T>
  void scatter_values(LaneMask m, DeviceSpan<T> span, const U32& idx,
                      const WarpVar<T>& v, std::int64_t contig) const {
    const bool shadow = span.has_shadow();
#if defined(GPUKSEL_BOUNDS_CHECK)
    (void)contig;
    for_active(m, [&](int i) {
      span.store_at(idx[i], v[i]);
      if (shadow) span.set_shadow(idx[i], shadow_of(v[i]));
    });
#else
    if constexpr (lanevec::lane32<T>) {
      if (contig >= 0) {
        lanevec::scatter_contig(m, span.data(), contig, v);
        if (shadow) {
          U32 sh;
          lanevec::shadow_words(v, sh);
          lanevec::scatter_contig(m, span.shadow_data(), contig, sh);
        }
        return;
      }
      lanevec::scatter(m, span.data(), idx, v);
      if (shadow) {
        U32 sh;
        lanevec::shadow_words(v, sh);
        lanevec::scatter(m, span.shadow_data(), idx, sh);
      }
    } else {
      for_active(m, [&](int i) {
        span.store_at(idx[i], v[i]);
        if (shadow) span.set_shadow(idx[i], shadow_of(v[i]));
      });
    }
#endif
  }

  // --- sanitizer / fault-injection plumbing ---------------------------------

  [[nodiscard]] bool lockstep_on() const noexcept {
    return sanitizer_ != nullptr && sanitizer_->lockstep;
  }
  [[nodiscard]] bool bounds_on() const noexcept {
    return sanitizer_ != nullptr && sanitizer_->bounds;
  }

  void check_shuffle_source(LaneMask m, int lane, int src_lane) const {
    if (lane_active(m, src_lane)) return;
    std::ostringstream os;
    os << "shuffle reads lane " << src_lane << " which is inactive in mask 0x"
       << std::hex << m;
    fault(FaultKind::kShuffleInactiveSource, lane, os.str());
  }

  template <typename T>
  std::optional<PlannedFault> consult_injector(LaneMask m, bool is_load) {
    if (injector_ == nullptr) return std::nullopt;
    return injector_->on_global_access(warp_id_, m, is_load,
                                       std::is_floating_point_v<T>);
  }

  /// Applies the address-corrupting fault class.  Only armed when the bounds
  /// check will catch it — otherwise the simulator itself would read out of
  /// range, which models nothing.
  void apply_index_fault(const PlannedFault& planned, std::size_t size,
                         U32& eidx) const noexcept {
    if (planned.kind != InjectKind::kOobIndex || !bounds_on()) return;
    eidx[planned.lane] = static_cast<std::uint32_t>(size + planned.oob_extra);
  }

  /// Applies the value-corrupting fault classes to freshly loaded registers.
  template <typename T>
  void apply_value_fault(const PlannedFault& planned, WarpVar<T>& r) const {
    switch (planned.kind) {
      case InjectKind::kBitFlip:
        if constexpr (sizeof(T) == 4) {
          auto word = std::bit_cast<std::uint32_t>(r[planned.lane]);
          word ^= (1u << planned.bit);
          r[planned.lane] = std::bit_cast<T>(word);
        }
        break;
      case InjectKind::kNanInject:
      case InjectKind::kLaneDrop:
        // A dropped lane leaves its destination register unwritten; the
        // simulator poisons it so the loss is observable, like NaN injection.
        if constexpr (std::is_floating_point_v<T>) {
          r[planned.lane] = std::numeric_limits<T>::quiet_NaN();
        }
        break;
      case InjectKind::kOobIndex:
        break;  // applied to the address, not the value
    }
  }

  void check_bounds(LaneMask m, std::size_t size, const U32& idx,
                    bool is_store) const {
    if (!bounds_on()) return;
    // Vector detect; the scalar walk below only runs to attribute a fault to
    // its lane with the reference engine's message and ordering.
    if (lanevec::oob_mask(m, idx, size) == 0) return;
    for_active(m, [&](int i) {
      if (idx[i] < size) return;
      std::ostringstream os;
      os << "global " << (is_store ? "store" : "load") << " index " << idx[i]
         << " >= size " << size;
      fault(FaultKind::kOutOfBounds, i, os.str());
    });
  }

  /// `sh` is the shadow row already gathered by load() for the active lanes.
  template <typename T>
  void check_initialized(LaneMask m, DeviceSpan<const T> span, const U32& idx,
                         const U32& sh) const {
    if (sanitizer_ == nullptr || !sanitizer_->poison || !span.has_shadow()) {
      return;
    }
    if (lanevec::cmp_eq_s(m, sh, std::uint32_t{kShadowUninit}) == 0) return;
    for_active(m, [&](int i) {
      if (span.shadow_at(idx[i]) != kShadowUninit) return;
      std::ostringstream os;
      os << "global load of element " << idx[i] << " before any store";
      fault(FaultKind::kUninitializedRead, i, os.str());
    });
  }

  /// ECC decode at the consumer: the loaded (possibly injector-corrupted)
  /// register must match the shadow checksum written alongside the element.
  /// Runs before NaN remapping so a legitimate stored NaN never false-trips.
  /// `sh` is the shadow row already gathered by load() for the active lanes.
  template <typename T>
  void verify_loaded(LaneMask m, DeviceSpan<const T> span, const U32& idx,
                     WarpVar<T>& r, const U32& sh,
                     bool shadow_trusted = false) const {
    if (sanitizer_ == nullptr) return;
    if (sanitizer_->ecc && span.has_shadow() && !shadow_trusted) {
      if constexpr (lanevec::lane32<T>) {
        // Recompute all 32 checksums in-register and compare against the
        // pre-gathered shadow row in one shot; faults rerun the scalar walk.
        U32 got;
        lanevec::shadow_words(r, got);
        if (lanevec::shadow_mismatch_mask(m, sh, got) != 0) {
          for_active(m, [&](int i) {
            const std::uint32_t e = span.shadow_at(idx[i]);
            if (e == kShadowUninit || shadow_of(r[i]) == e) return;
            std::ostringstream os;
            os << "loaded word at element " << idx[i]
               << " disagrees with its shadow checksum (corrupted memory)";
            fault(FaultKind::kEccMismatch, i, os.str());
          });
        }
      } else {
        for_active(m, [&](int i) {
          const std::uint32_t expect = span.shadow_at(idx[i]);
          if (expect == kShadowUninit || shadow_of(r[i]) == expect) return;
          std::ostringstream os;
          os << "loaded word at element " << idx[i]
             << " disagrees with its shadow checksum (corrupted memory)";
          fault(FaultKind::kEccMismatch, i, os.str());
        });
      }
    }
    if constexpr (std::is_same_v<T, float>) {
      if (sanitizer_->nan_policy == NanPolicy::kReject) {
        if (lanevec::isnan_mask(m, r) != 0) {
          for_active(m, [&](int i) {
            if (!std::isnan(r[i])) return;
            std::ostringstream os;
            os << "NaN loaded from element " << idx[i]
               << " under NanPolicy::kReject";
            fault(FaultKind::kNanDistance, i, os.str());
          });
        }
      } else if (sanitizer_->nan_policy == NanPolicy::kSortLast) {
        lanevec::nan_to_inf(m, r);
      }
    } else if constexpr (std::is_floating_point_v<T>) {
      if (sanitizer_->nan_policy == NanPolicy::kReject) {
        for_active(m, [&](int i) {
          if (!std::isnan(r[i])) return;
          std::ostringstream os;
          os << "NaN loaded from element " << idx[i]
             << " under NanPolicy::kReject";
          fault(FaultKind::kNanDistance, i, os.str());
        });
      } else if (sanitizer_->nan_policy == NanPolicy::kSortLast) {
        for_active(m, [&](int i) {
          if (std::isnan(r[i])) r[i] = std::numeric_limits<T>::infinity();
        });
      }
    }
  }

  void check_store_collisions(LaneMask m, const U32& idx) const {
    if (!lockstep_on()) return;
    // One conflict-detection pass answers "any duplicate address?"; the
    // quadratic walk below only runs to name the colliding lane pair.
    if (!lanevec::has_collision(m, idx)) return;
    for (int i = 0; i < kWarpSize; ++i) {
      if (!lane_active(m, i)) continue;
      for (int j = i + 1; j < kWarpSize; ++j) {
        if (!lane_active(m, j) || idx[i] != idx[j]) continue;
        std::ostringstream os;
        os << "lanes " << i << " and " << j
           << " both store to element " << idx[i] << " under mask 0x"
           << std::hex << m;
        fault(FaultKind::kStoreCollision, j, os.str());
      }
    }
  }

  template <typename T, typename SpanT>
  void charge_transactions(LaneMask m, const SpanT& span, const U32& idx,
                           bool is_store, std::int64_t contig = -1) {
    const int n = transaction_count<T>(m, span, idx, contig);
    metrics_.global_requests += 1;
    if (is_store) {
      metrics_.global_store_tx += static_cast<std::uint64_t>(n);
    } else {
      metrics_.global_load_tx += static_cast<std::uint64_t>(n);
    }
  }

  /// Distinct 128-byte segments touched by the access — the counting half of
  /// charge_transactions, shared with the paired load/store fast paths.
  template <typename T, typename SpanT>
  int transaction_count(LaneMask m, const SpanT& span, const U32& idx,
                        std::int64_t contig = -1) {
    int n = 0;
    if constexpr (sizeof(T) == 4) {
      if (contig >= 0) {
        // Unit-stride run: the active lanes cover bytes first..last, a range
        // under 128 bytes whose end segments are both touched (by the lanes
        // that define them), so the distinct count is the closed form
        // hi - lo + 1 — identical to the dedupe below, n ∈ {1, 2}.
        const auto c = static_cast<std::uint64_t>(contig);
        const std::uint64_t first = static_cast<std::uint64_t>(lowest_lane(m));
        const std::uint64_t last =
            31u - static_cast<std::uint64_t>(std::countl_zero(m));
        const std::uint64_t base_b = span.byte_offset(0);
        const std::uint64_t lo = (base_b + (c + first) * 4u) / kTransactionBytes;
        const std::uint64_t hi = (base_b + (c + last) * 4u) / kTransactionBytes;
        n = static_cast<int>(hi - lo) + 1;
      } else {
        // Segment numbers for all 32 lanes compute in-register; the common
        // fully-coalesced case (every lane in one 128-byte line) resolves
        // without materializing the segment list at all.
        n = lanevec::count_segments4(m, span.byte_offset(0), idx);
      }
    } else {
      alignas(64) std::uint64_t segments[kWarpSize];
      for (int i = 0; i < kWarpSize; ++i) {
        if (!lane_active(m, i)) continue;
        const std::uint64_t seg = span.byte_offset(idx[i]) / kTransactionBytes;
        bool seen = false;
        for (int j = 0; j < n; ++j) {
          if (segments[j] == seg) {
            seen = true;
            break;
          }
        }
        if (!seen) segments[n++] = seg;
      }
    }
    return n;
  }

  KernelMetrics& metrics_;
  std::uint32_t warp_id_;
  const SanitizerConfig* sanitizer_ = nullptr;
  FaultInjector* injector_ = nullptr;
  const char* kernel_name_ = "kernel";
  WarpProfile* profile_ = nullptr;
  /// No injector armed for this launch (absent, or kernel-filtered out) and
  /// no live sanitizer check at construction: global accesses take the
  /// branch-free fast path.  Cached once per warp — the config cannot change
  /// mid-launch.
  bool unchecked_ = false;
  /// Injector present and armed for this kernel: only then does the checked
  /// access path pay for the consult + effective-index copy.
  bool injector_live_ = false;
  /// Shadow row consulted on loads (poison or ecc on); cached like the above.
  bool shadow_checks_ = false;
  /// Two-entry memo for the shared bank-conflict degree: warp-cooperative
  /// sorts re-issue the same (mask, word-vector) access shape several times
  /// back to back (read dist, read index, write both), and the degree is a
  /// pure function of that pair.
  struct DegreeMemo {
    U32 words{};
    LaneMask mask = 0;
    int degree = 0;
    bool valid = false;
  };
  DegreeMemo degree_memo_[2];
  int memo_evict_ = 0;
  /// Direct-mapped second-level degree cache (see charge_shared).  512
  /// entries cover the distinct access shapes of a chunk-512 bitonic network
  /// with room to spare; ~72 KiB per warp context sits comfortably in L2.
  static constexpr std::size_t kDegreeCacheSize = 512;
  static std::size_t hash_words(LaneMask m, const U32& w) noexcept {
    const auto* p = reinterpret_cast<const std::uint64_t*>(&w.lanes[0]);
    std::uint64_t acc = 0x9e3779b97f4a7c15ULL ^ m;
    for (int i = 0; i < kWarpSize / 2; ++i) {
      acc = (acc ^ p[i]) * 0x100000001b3ULL;
    }
    return static_cast<std::size_t>(acc >> 32);
  }
  /// Allocated on the first MRU miss: warps that never touch shared memory
  /// (or only broadcast) skip the 72 KiB footprint entirely.
  std::vector<DegreeMemo> degree_cache_;
};

/// RAII guard for a WarpContext profiling region; closes it on destruction.
/// Obtained from WarpContext::region() — guaranteed copy elision means the
/// region opens and closes exactly once per guard.
class ScopedRegion {
 public:
  ScopedRegion(WarpContext& ctx, const char* name) : ctx_(ctx) {
    ctx_.enter_region(name);
  }
  ~ScopedRegion() { ctx_.exit_region(); }

  ScopedRegion(const ScopedRegion&) = delete;
  ScopedRegion& operator=(const ScopedRegion&) = delete;

 private:
  WarpContext& ctx_;
};

inline ScopedRegion WarpContext::region(const char* name) {
  return ScopedRegion(*this, name);
}

/// Per-warp shared-memory array with bank-conflict accounting.  The paper
/// places one "volatile shared int flag" per warp for Intra-Warp
/// Communication and uses shared scratch in the warp-cooperative baselines.
template <typename T>
class SharedArray {
 public:
  SharedArray(WarpContext& ctx, std::size_t n, T fill = T{})
      : ctx_(ctx),
        data_(n, fill),
        // Cached for the lifetime of the array: shared arrays live inside one
        // kernel launch, and the sanitizer config is fixed per launch (the
        // same contract WarpContext uses for its own cached check flags).
        lockstep_(ctx.sanitizer() != nullptr && ctx.sanitizer()->lockstep) {
    static_assert(sizeof(T) % 4 == 0 || sizeof(T) == 4 || sizeof(T) <= 4,
                  "shared bank model assumes word-multiple elements");
  }

  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

  /// Gather from shared memory.
  WarpVar<T> read(LaneMask m, const U32& idx) {
    check_indices(m, idx);
    charge(m, idx);
    WarpVar<T> r{};
    if constexpr (lanevec::lane32<T>) {
      const std::int64_t contig = lanevec::contig_base(m, idx);
      if (contig >= 0) {
        lanevec::gather_contig(m, r, static_cast<const T*>(data_.data()),
                               contig);
        return r;
      }
      lanevec::gather(m, r, static_cast<const T*>(data_.data()), idx);
    } else {
      for (int i = 0; i < kWarpSize; ++i) {
        if (lane_active(m, i)) r[i] = at(idx[i]);
      }
    }
    return r;
  }

  /// Scatter to shared memory (highest active lane wins on collisions when
  /// the sanitizer is off; a fault when its lockstep check is on).
  void write(LaneMask m, const U32& idx, const WarpVar<T>& v) {
    check_indices(m, idx);
    const std::int64_t contig =
        lanevec::lane32<T> ? lanevec::contig_base(m, idx) : -1;
    // Unit-stride writes cannot collide; the scan would only come up empty.
    if (contig < 0) check_collisions(m, idx);
    charge(m, idx);
    if constexpr (lanevec::lane32<T>) {
      if (contig >= 0) {
        lanevec::scatter_contig(m, data_.data(), contig, v);
        return;
      }
      lanevec::scatter(m, data_.data(), idx, v);
    } else {
      for (int i = 0; i < kWarpSize; ++i) {
        if (lane_active(m, i)) at(idx[i]) = v[i];
      }
    }
  }

  /// All active lanes read slot `slot` (a broadcast: conflict-free).
  WarpVar<T> read_bcast(LaneMask m, std::size_t slot) {
    check_slot(slot);
    charge_bcast(m);
    return WarpVar<T>::filled(at(slot));
  }

  /// All active lanes write `value` to slot `slot` (the paper's flag write;
  /// a deliberate single-address broadcast, exempt from the collision check).
  void write_bcast(LaneMask m, std::size_t slot, T value) {
    check_slot(slot);
    charge_bcast(m);
    at(slot) = value;
  }

  /// Simulator-side access for verification.
  [[nodiscard]] const std::vector<T>& host() const noexcept { return data_; }

 private:
  T& at(std::size_t i) {
    GPUKSEL_DEBUG_ASSERT(i < data_.size());
    return data_[i];
  }

  [[nodiscard]] bool lockstep_on() const noexcept { return lockstep_; }

  void check_indices(LaneMask m, const U32& idx) const {
    if (!lockstep_on()) return;
    if (lanevec::oob_mask(m, idx, data_.size()) == 0) return;
    for (int i = 0; i < kWarpSize; ++i) {
      if (!lane_active(m, i) || idx[i] < data_.size()) continue;
      std::ostringstream os;
      os << "shared index " << idx[i] << " >= array size " << data_.size();
      ctx_.fault(FaultKind::kSharedOutOfBounds, i, os.str());
    }
  }

  void check_slot(std::size_t slot) const {
    if (!lockstep_on() || slot < data_.size()) return;
    std::ostringstream os;
    os << "shared slot " << slot << " >= array size " << data_.size();
    ctx_.fault(FaultKind::kSharedOutOfBounds, -1, os.str());
  }

  void check_collisions(LaneMask m, const U32& idx) const {
    if (!lockstep_on()) return;
    if (!lanevec::has_collision(m, idx)) return;
    for (int i = 0; i < kWarpSize; ++i) {
      if (!lane_active(m, i)) continue;
      for (int j = i + 1; j < kWarpSize; ++j) {
        if (!lane_active(m, j) || idx[i] != idx[j]) continue;
        std::ostringstream os;
        os << "lanes " << i << " and " << j << " both write shared element "
           << idx[i];
        ctx_.fault(FaultKind::kStoreCollision, j, os.str());
      }
    }
  }

  void charge(LaneMask m, const U32& idx) {
    if constexpr (sizeof(T) <= 4) {
      // One word per element: the element index *is* the bank word, so hand
      // the index vector straight to the bank model (no scaled copy).
      ctx_.charge_shared(m, idx);
    } else {
      U32 words;
      const std::uint32_t words_per_elem =
          static_cast<std::uint32_t>(sizeof(T) / 4);
      // Full-mask scale: inactive lanes' word numbers are never consulted by
      // the bank model, so computing all 32 is harmless and branch-free.
      lanevec::mad_s(kFullMask, words, idx, words_per_elem, 0u);
      ctx_.charge_shared(m, words);
    }
  }

  // Single-slot access: all lanes hit one word regardless of element width
  // (the model charges the element's first word, as charge() does), so the
  // degree is 1 without consulting the bank histogram.
  void charge_bcast(LaneMask m) { ctx_.charge_shared_broadcast(m); }

  WarpContext& ctx_;
  std::vector<T> data_;
  const bool lockstep_;
};

}  // namespace gpuksel::simt
